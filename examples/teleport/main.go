// Teleportation demo: the paper's Fig. 2 circuit — the physical
// mechanism behind every 4-cycle "global move" the schedulers place —
// run on the state-vector simulator, plus the same mechanism viewed from
// the scheduler's side as a move list.
//
//	go run ./examples/teleport
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"os"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/machine"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/sim"
)

func main() {
	physical()
	scheduled()
}

// physical teleports an arbitrary state through Fig. 2's circuit.
func physical() {
	prog, err := machine.TeleportProgram(
		[]qasm.Opcode{qasm.Ry, qasm.Rz},
		[]float64{1.234, 0.567},
	)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.NewState(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.RunProgram(prog); err != nil {
		log.Fatal(err)
	}
	// The prepared state α|0> + β|1> should now live on qubit 2.
	alpha := math.Cos(1.234 / 2)
	beta := math.Sin(1.234 / 2)
	var p1 float64
	for i := uint64(0); i < 8; i++ {
		if i&4 != 0 {
			p1 += math.Pow(cmplx.Abs(st.Amplitude(i)), 2)
		}
	}
	fmt.Println("Fig. 2 quantum teleportation on the simulator:")
	fmt.Printf("  prepared |ψ> = %.3f|0> + e^iφ %.3f|1> on the source qubit\n", alpha, beta)
	fmt.Printf("  measured P(destination = 1) = %.6f (expected %.6f)\n\n", p1, beta*beta)
}

// scheduled shows the same 4-cycle move as the scheduler sees it.
func scheduled() {
	prog, err := core.Build(`
module main() {
  qbit a;
  qbit b;
  H(a);
  CNOT(a, b);
  T(b);
  CNOT(a, b);
}
`, core.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mod := prog.EntryModule()
	g, err := dag.Build(mod)
	if err != nil {
		log.Fatal(err)
	}
	s, err := lpfs.Schedule(mod, g, lpfs.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the same teleports from the compiler's point of view")
	fmt.Printf("(each starred move is one Fig. 2 circuit, %d cycles when unmasked):\n", comm.TeleportCycles)
	if err := comm.WriteSchedule(os.Stdout, s, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d timesteps + %d stall cycles = %d cycles; %d EPR pairs consumed\n",
		s.Length(), res.Cycles-int64(s.Length()), res.Cycles, res.EPRPairs)
}
