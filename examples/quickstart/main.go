// Quickstart: compile a Scaffold-lite program, schedule it onto a
// Multi-SIMD(k,d) machine, and read the paper's metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/scaffold-go/multisimd/internal/core"
)

// A small quantum program: prepare a GHZ state on 4 qubits, then run a
// round of Toffoli-based parity computation into an ancilla.
const source = `
module parity(qbit x[4], qbit out) {
  CNOT(x[0], out);
  CNOT(x[1], out);
  CNOT(x[2], out);
  CNOT(x[3], out);
}

module main() {
  qbit q[4];
  qbit anc;
  H(q[0]);
  for (i = 0; i < 3; i++) {
    CNOT(q[i], q[i+1]);
  }
  Toffoli(q[0], q[1], anc);
  parity(q, anc);
  MeasZ(anc);
}
`

func main() {
	// 1. Compile: parse -> check -> lower -> decompose -> flatten.
	prog, err := core.Build(source, core.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Evaluate on a Multi-SIMD(2, inf) machine with both schedulers.
	for _, sched := range []core.Scheduler{core.RCP, core.LPFS} {
		m, err := core.Evaluate(prog, core.EvalOptions{Scheduler: sched, K: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s: %d gates over %d steps (%.2fx vs sequential, cp bound %.2fx), %d cycles with communication (%.2fx vs naive)\n",
			sched, m.TotalGates, m.ZeroCommSteps, m.SpeedupVsSeq(), m.CPSpeedup(),
			m.CommCycles, m.SpeedupVsNaive())
	}

	// 3. Emit the flat QASM-HL the hardware control system would consume.
	var qasm strings.Builder
	n, err := core.EmitQASM(&qasm, prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQASM (%d instructions):\n", n)
	lines := strings.Split(strings.TrimSpace(qasm.String()), "\n")
	for i, line := range lines {
		if i >= 12 {
			fmt.Printf("  ... %d more lines\n", len(lines)-12)
			break
		}
		fmt.Println(" ", line)
	}
	_ = os.Stdout
}
