// Ground State Estimation workload: demonstrates the paper's §5.2
// observation that GSE gains the most from communication-aware
// scheduling (+308% in the paper) because its two key registers — phase
// and state — undergo long runs of operations without ever moving
// between regions.
//
//	go run ./examples/moleculegse
package main

import (
	"fmt"
	"log"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
)

func main() {
	b := bench.GSESized(2, 4, 6)
	prog, err := core.Build(b.Source, core.PipelineOptions{FTh: 2000})
	if err != nil {
		log.Fatal(err)
	}

	m, err := core.Evaluate(prog, core.EvalOptions{Scheduler: core.LPFS, K: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GSE (M=2): %d gates, critical path %d (%.2fx max parallelism)\n",
		m.TotalGates, m.CriticalPath, m.CPSpeedup())
	fmt.Println()
	fmt.Println("GSE is almost fully serial, so parallelism alone buys nothing —")
	fmt.Printf("zero-communication speedup vs sequential: %.2fx\n\n", m.SpeedupVsSeq())
	fmt.Println("but its qubits never leave their regions, so against the naive")
	fmt.Println("move-every-step model (the paper's Fig. 7 baseline):")
	fmt.Printf("  naive movement:      %d cycles\n", m.NaiveCycles)
	fmt.Printf("  communication-aware: %d cycles\n", m.CommCycles)
	fmt.Printf("  speedup:             %.2fx\n", m.SpeedupVsNaive())
	fmt.Printf("  teleports needed:    %d (for %d gates)\n\n", m.GlobalMoves, m.TotalGates)

	pct := 100 * (m.SpeedupVsNaive() - m.SpeedupVsSeq()) / m.SpeedupVsSeq()
	fmt.Printf("communication awareness adds %+.0f%% here — the paper reports +308%%\n", pct)
	fmt.Println("for GSE, its largest gain across the whole benchmark suite.")
}
