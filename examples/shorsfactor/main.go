// Shor's factoring workload: demonstrates the paper's §5.4 result that
// rotation-heavy code is sensitive to the number of SIMD regions k,
// because decomposed rotations are long serial Clifford+T blackboxes
// that can only parallelize across regions (Table 2, Fig. 9).
//
//	go run ./examples/shorsfactor
package main

import (
	"fmt"
	"log"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/resource"
)

func main() {
	b := bench.ShorsSized(4, 16)
	prog, err := core.Build(b.Source, core.PipelineOptions{FTh: 2000})
	if err != nil {
		log.Fatal(err)
	}

	est, err := resource.New(prog)
	if err != nil {
		log.Fatal(err)
	}
	gates, err := est.TotalGates()
	if err != nil {
		log.Fatal(err)
	}
	q, err := est.MinQubits()
	if err != nil {
		log.Fatal(err)
	}
	rot := 0
	for _, name := range est.Reachable() {
		if len(name) > 3 && name[:3] == "rz_" {
			rot++
		}
	}
	fmt.Printf("Shor's (n=4, 16 exponent bits): %d gates, Q=%d, %d distinct rotation blackboxes\n\n",
		gates, q, rot)

	fmt.Println("speedup over naive movement vs machine size (LPFS, unlimited scratchpads):")
	fmt.Printf("%-5s %12s %12s\n", "k", "cycles", "speedup")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		m, err := core.Evaluate(prog, core.EvalOptions{Scheduler: core.LPFS, K: k, Comm: comm.Options{LocalCapacity: -1}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %12d %12.2f\n", k, m.CommCycles, m.SpeedupVsNaive())
	}
	fmt.Println("\nThe rising curve is the paper's Fig. 9: each decomposed rotation")
	fmt.Println("angle occupies its own SIMD region, so more regions directly buy")
	fmt.Println("parallelism until the rotation supply is exhausted.")
}
