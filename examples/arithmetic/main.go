// Reversible arithmetic as a library: build a custom fixed-point
// computation out of the CTQG generators, verify it bit-exactly on the
// simulator, then look at what the compiler does with it — the workflow
// a downstream user follows to bring their own kernels onto the
// Multi-SIMD machine.
//
//	go run ./examples/arithmetic
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"strings"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ctqg"
	"github.com/scaffold-go/multisimd/internal/sim"
)

const n = 3 // operand width

func main() {
	// Compose a kernel from library circuits:
	//   p    = a * b            (2n-bit product)
	//   c   += p mod 2^n        (in-place add, carry into ovf)
	//   flag = c < a            (comparator)
	var sb strings.Builder
	sb.WriteString(ctqg.Adder("add", n))
	sb.WriteString(ctqg.CtrlCopy("ccopy", n))
	sb.WriteString(ctqg.CtrlAdder("cadd", "ccopy", "add", n))
	sb.WriteString(ctqg.Multiplier("mul", "cadd", n))
	sb.WriteString(ctqg.CarryOf("carry", n))
	sb.WriteString(ctqg.LessThan("lt", "carry", n))
	fmt.Fprintf(&sb, `
module kernel(qbit a[%d], qbit b[%d], qbit c[%d], qbit p[%d], qbit cin, qbit ovf, qbit flag) {
  mul(a, b, p, cin);
  add(p[0:%d], c, cin, ovf);
  lt(c, a, cin, flag);
}
`, n, n, n, 2*n, n)

	a, b, c := uint64(3), uint64(3), uint64(7)
	sb.WriteString("module main() {\n")
	fmt.Fprintf(&sb, "  qbit a[%d];\n  qbit b[%d];\n  qbit c[%d];\n  qbit p[%d];\n  qbit cin;\n  qbit ovf;\n  qbit flag;\n", n, n, n, 2*n)
	emitInit(&sb, "a", a)
	emitInit(&sb, "b", b)
	emitInit(&sb, "c", c)
	sb.WriteString("  kernel(a, b, c, p, cin, ovf, flag);\n}\n")

	prog, err := core.Frontend(sb.String(), core.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	entry := prog.EntryModule()
	st, err := sim.NewState(entry.TotalSlots() + n + 1) // ancilla room
	if err != nil {
		log.Fatal(err)
	}
	if err := st.RunProgram(prog); err != nil {
		log.Fatal(err)
	}
	basis := dominant(st)
	read := func(reg string) uint64 {
		r, ok := entry.RegRange(reg)
		if !ok {
			log.Fatalf("no register %q", reg)
		}
		return extract(basis, r.Start, r.Len)
	}
	prod := read("p")
	sum := read("c")
	ovf := read("ovf")
	flag := read("flag")

	mask := uint64(1<<n - 1)
	wantProd := a * b
	wantSum := (c + (wantProd & mask)) & mask
	wantOvf := (c + (wantProd & mask)) >> n
	wantFlag := uint64(0)
	if wantSum < a {
		wantFlag = 1
	}
	fmt.Printf("kernel(a=%d, b=%d, c=%d):\n", a, b, c)
	fmt.Printf("  p = a*b           = %2d (expected %d)\n", prod, wantProd)
	fmt.Printf("  c += p mod %d      = %2d carry %d (expected %d carry %d)\n", 1<<n, sum, ovf, wantSum, wantOvf)
	fmt.Printf("  flag = c < a      = %2d (expected %d)\n", flag, wantFlag)
	if prod != wantProd || sum != wantSum || ovf != wantOvf || flag != wantFlag {
		log.Fatal("kernel semantics wrong")
	}

	// Now through the full compiler: decompose, flatten, schedule.
	built, err := core.Build(sb.String(), core.PipelineOptions{FTh: 2000})
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.Evaluate(built, core.EvalOptions{Scheduler: core.LPFS, K: 4, Comm: comm.Options{LocalCapacity: -1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled: %d Clifford+T gates over %d qubits (Q)\n", m.TotalGates, m.MinQubits)
	fmt.Printf("LPFS on Multi-SIMD(4,inf) with scratchpads: %d cycles, %.2fx over naive movement\n",
		m.CommCycles, m.SpeedupVsNaive())
}

func emitInit(sb *strings.Builder, reg string, v uint64) {
	for i := 0; i < n; i++ {
		if v&(1<<uint(i)) != 0 {
			fmt.Fprintf(sb, "  X(%s[%d]);\n", reg, i)
		}
	}
}

func dominant(st *sim.State) uint64 {
	for i := uint64(0); i < 1<<uint(st.N()); i++ {
		if cmplx.Abs(st.Amplitude(i)) > 0.999 {
			return i
		}
	}
	log.Fatal("state not a basis state")
	return 0
}

func extract(basis uint64, start, length int) uint64 {
	var v uint64
	for i := 0; i < length; i++ {
		if basis&(1<<uint(start+i)) != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}
