// Grover search end to end: verify the generated circuit actually finds
// the marked element on the state-vector simulator, then scale it up and
// compare RCP vs LPFS schedules across machine sizes.
//
//	go run ./examples/groversearch
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/sim"
)

func main() {
	semantics()
	scheduling()
}

// semantics simulates a 4-qubit Grover instance and checks amplitude
// amplification concentrates probability on the marked element.
func semantics() {
	const n = 4
	b := bench.GroversSized(n, 3) // round(pi/4*sqrt(16)) = 3 iterations
	prog, err := core.Frontend(b.Source, core.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	qubits := prog.EntryModule().TotalSlots() + n // room for MCX ancillae
	st, err := sim.NewState(qubits)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.RunProgram(prog); err != nil {
		log.Fatal(err)
	}
	// The oracle marks the alternating pattern: bit i = 1 for odd i.
	marked := uint64(0)
	for i := 1; i < n; i += 2 {
		marked |= 1 << uint(i)
	}
	var pMarked, pRest float64
	for idx := uint64(0); idx < 1<<uint(qubits); idx++ {
		p := cmplx.Abs(st.Amplitude(idx))
		p *= p
		if idx&(1<<n-1) == marked {
			pMarked += p
		} else {
			pRest += p
		}
	}
	fmt.Printf("semantic check: P(marked=%04b) = %.3f after 3 Grover iterations (uniform would be %.3f)\n",
		marked, pMarked, 1.0/16)
	if pMarked < 0.5 {
		log.Fatalf("amplitude amplification failed: %.3f", pMarked)
	}

	// 4 qubits, 3 iterations: the textbook optimum boosts the marked
	// element to ~96%.
	fmt.Println()
}

// scheduling compiles a larger instance and sweeps the machine size.
func scheduling() {
	b := bench.GroversSized(8, 12)
	prog, err := core.Build(b.Source, core.PipelineOptions{FTh: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Grover n=8 on Multi-SIMD(k,inf):")
	fmt.Printf("%-5s %10s %10s %12s %12s\n", "k", "rcp steps", "lpfs steps", "rcp naive-x", "lpfs naive-x")
	for _, k := range []int{1, 2, 4, 8} {
		r, err := core.Evaluate(prog, core.EvalOptions{Scheduler: core.RCP, K: k, Comm: comm.Options{LocalCapacity: -1}})
		if err != nil {
			log.Fatal(err)
		}
		l, err := core.Evaluate(prog, core.EvalOptions{Scheduler: core.LPFS, K: k, Comm: comm.Options{LocalCapacity: -1}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %10d %10d %12.2f %12.2f\n",
			k, r.ZeroCommSteps, l.ZeroCommSteps, r.SpeedupVsNaive(), l.SpeedupVsNaive())
	}
}
