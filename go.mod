module github.com/scaffold-go/multisimd

go 1.24
