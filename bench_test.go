// Package multisimd's benchmark harness regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks (the cmd/qbench
// tool prints the same data as human-readable tables):
//
//	BenchmarkFig5Histogram    — module gate-count histograms + FTh
//	BenchmarkFig6Parallelism  — RCP/LPFS speedup vs sequential, k=2,4
//	BenchmarkFig7CommAware    — speedup vs naive movement, k=2,4
//	BenchmarkFig8LocalMemory  — scratchpad capacity sweep at k=4
//	BenchmarkFig9ShorsK       — Shor's k-sensitivity with local memory
//	BenchmarkTable1MinQubits  — Q per benchmark
//	BenchmarkTable2Rotations  — parallel-rotation serialization vs k
//
// Speedups are attached to the benchmark output via ReportMetric, so
// `go test -bench . -benchmem` prints the paper's series alongside the
// harness's own runtime costs.
package multisimd

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/resource"
	"github.com/scaffold-go/multisimd/internal/sim"
)

const benchFTh = 2000

var (
	workloadOnce     sync.Once
	workloadFlat     []core.Workload
	workloadUnflat   []core.Workload
	workloadBuildErr error
)

func workloads(b *testing.B) (flat, unflat []core.Workload) {
	workloadOnce.Do(func() {
		for _, w := range bench.AllSmall() {
			opts := w.Pipeline
			opts.FTh = benchFTh
			p, err := core.Build(w.Source, opts)
			if err != nil {
				workloadBuildErr = fmt.Errorf("%s: %w", w.Name, err)
				return
			}
			workloadFlat = append(workloadFlat, core.Workload{Name: w.Name, Params: w.Params, Prog: p})
			opts.SkipFlatten = true
			u, err := core.Build(w.Source, opts)
			if err != nil {
				workloadBuildErr = fmt.Errorf("%s: %w", w.Name, err)
				return
			}
			workloadUnflat = append(workloadUnflat, core.Workload{Name: w.Name, Params: w.Params, Prog: u})
		}
	})
	if workloadBuildErr != nil {
		b.Fatal(workloadBuildErr)
	}
	return workloadFlat, workloadUnflat
}

func metricName(parts ...string) string { return strings.Join(parts, "_") }

// BenchmarkFig5Histogram regenerates Fig. 5: the percentage of modules
// per gate-count bucket and the fraction flattenable at FTh.
func BenchmarkFig5Histogram(b *testing.B) {
	_, unflat := workloads(b)
	var rows []core.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Fig5(unflat, benchFTh)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.FlattenedPct, metricName(r.Name, "flattenable_pct"))
	}
}

// BenchmarkFig6Parallelism regenerates Fig. 6 for every benchmark.
func BenchmarkFig6Parallelism(b *testing.B) {
	flat, _ := workloads(b)
	for _, w := range flat {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var rows []core.Fig6Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.Fig6([]core.Workload{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.RCP2, "rcp_k2_x")
			b.ReportMetric(r.RCP4, "rcp_k4_x")
			b.ReportMetric(r.LPFS2, "lpfs_k2_x")
			b.ReportMetric(r.LPFS4, "lpfs_k4_x")
			b.ReportMetric(r.CP, "cp_x")
		})
	}
}

// BenchmarkFig7CommAware regenerates Fig. 7 for every benchmark.
func BenchmarkFig7CommAware(b *testing.B) {
	flat, _ := workloads(b)
	for _, w := range flat {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var rows []core.Fig7Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.Fig7([]core.Workload{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.RCP2, "rcp_k2_x")
			b.ReportMetric(r.RCP4, "rcp_k4_x")
			b.ReportMetric(r.LPFS2, "lpfs_k2_x")
			b.ReportMetric(r.LPFS4, "lpfs_k4_x")
		})
	}
}

// BenchmarkFig8LocalMemory regenerates Fig. 8: the scratchpad sweep on
// Multi-SIMD(4, inf).
func BenchmarkFig8LocalMemory(b *testing.B) {
	flat, _ := workloads(b)
	for _, w := range flat {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var rows []core.Fig8Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.Fig8([]core.Workload{w})
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			labels := []string{"none", "q4", "q2", "inf"}
			for ci, lbl := range labels {
				b.ReportMetric(r.RCP[ci], metricName("rcp", lbl, "x"))
				b.ReportMetric(r.LPFS[ci], metricName("lpfs", lbl, "x"))
			}
		})
	}
}

// BenchmarkFig9ShorsK regenerates Fig. 9: Shor's speedup as k grows,
// with unlimited local memory.
func BenchmarkFig9ShorsK(b *testing.B) {
	w, err := buildFig9Workload()
	if err != nil {
		b.Fatal(err)
	}
	var rows []core.Fig9Row
	for i := 0; i < b.N; i++ {
		rows, err = core.Fig9(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Scheduler.Name(), fmt.Sprintf("k%d", r.K), "x"))
	}
}

func buildFig9Workload() (core.Workload, error) {
	sb := bench.ShorsSized(4, 16)
	opts := sb.Pipeline
	opts.FTh = benchFTh
	p, err := core.Build(sb.Source, opts)
	if err != nil {
		return core.Workload{}, err
	}
	return core.Workload{Name: sb.Name, Params: sb.Params, Prog: p}, nil
}

// BenchmarkTable1MinQubits regenerates Table 1: Q per benchmark.
func BenchmarkTable1MinQubits(b *testing.B) {
	_, unflat := workloads(b)
	var rows []core.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.Table1(unflat)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Q), metricName(r.Name, "Q"))
	}
}

// BenchmarkTable2Rotations regenerates Table 2: n data-parallel
// rotations serialize after decomposition unless k grows.
func BenchmarkTable2Rotations(b *testing.B) {
	var res *core.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Table2(8, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range res.SortedKs() {
		b.ReportMetric(float64(res.StepsAtK[k]), fmt.Sprintf("steps_k%d", k))
	}
}

// --- Evaluation-engine benchmarks: worker pool and cache. ---

// engineSweep runs one experiment sweep with the given worker count and
// cache temperature. Cold runs leave Workload.Cache nil, the seed
// behavior (each Evaluate dedupes internally but shares nothing); warm
// runs pre-populate one shared cache before the timer starts.
func engineSweep(b *testing.B, workers int, warm bool, sweep func([]core.Workload) error) {
	flat, _ := workloads(b)
	ws := make([]core.Workload, len(flat))
	copy(ws, flat)
	for j := range ws {
		ws[j].Workers = workers
	}
	if warm {
		cache := core.NewEvalCache()
		for j := range ws {
			ws[j].Cache = cache
		}
		if err := sweep(ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep(ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkEngineFig6 measures the fig6 sweep (both schedulers, k=2,4,
// all benchmarks) serial vs 8-worker pool vs warm-cache. The pool's
// wall-clock win scales with available cores (workers_8 on a single-CPU
// host measures only the pool's overhead — GOMAXPROCS is reported so
// results read correctly either way); the cache win is core-independent.
func BenchmarkEngineFig6(b *testing.B) {
	sweep := func(ws []core.Workload) error { _, err := core.Fig6(ws); return err }
	b.Run("serial_cold", func(b *testing.B) { engineSweep(b, 1, false, sweep) })
	b.Run("workers8_cold", func(b *testing.B) { engineSweep(b, 8, false, sweep) })
	b.Run("workers8_warm", func(b *testing.B) { engineSweep(b, 8, true, sweep) })
}

// BenchmarkEngineFig8 measures the fig8 local-memory sweep (8 configs
// per benchmark sharing 2 schedule sets) serial vs 8-worker pool vs
// warm-cache.
func BenchmarkEngineFig8(b *testing.B) {
	sweep := func(ws []core.Workload) error { _, err := core.Fig8(ws); return err }
	b.Run("serial_cold", func(b *testing.B) { engineSweep(b, 1, false, sweep) })
	b.Run("workers8_cold", func(b *testing.B) { engineSweep(b, 8, false, sweep) })
	b.Run("workers8_warm", func(b *testing.B) { engineSweep(b, 8, true, sweep) })
}

// --- Toolflow micro-benchmarks: the compiler itself under load. ---

// BenchmarkCompileSHA1 measures the full pipeline on the scaled SHA-1.
func BenchmarkCompileSHA1(b *testing.B) {
	src := bench.SHA1Sized(6, 8, 8, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := src.Pipeline
		opts.FTh = benchFTh
		if _, err := core.Build(src.Source, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCPScheduler and BenchmarkLPFSScheduler measure fine-grained
// scheduling of one materialized SHA-1 leaf.
func schedulerLeaf(b *testing.B) (*dag.Graph, func()) {
	flat, _ := workloads(b)
	var prog = flat[5].Prog // SHA-1
	est, err := resource.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	var biggest string
	var size int64
	for _, name := range est.Reachable() {
		m := prog.Modules[name]
		if m.IsLeaf() {
			if s := m.MaterializedSize(); s > size {
				size, biggest = s, name
			}
		}
	}
	mat, err := prog.Modules[biggest].Materialize(1 << 22)
	if err != nil {
		b.Fatal(err)
	}
	g, err := dag.Build(mat)
	if err != nil {
		b.Fatal(err)
	}
	return g, func() { b.SetBytes(size) }
}

func BenchmarkRCPScheduler(b *testing.B) {
	g, _ := schedulerLeaf(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rcp.Schedule(g.M, g, rcp.Options{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Len()), "leaf_ops")
}

func BenchmarkLPFSScheduler(b *testing.B) {
	g, _ := schedulerLeaf(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lpfs.Schedule(g.M, g, lpfs.Options{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Len()), "leaf_ops")
}

// BenchmarkCommAnalysis measures the movement pass over an LPFS schedule.
func BenchmarkCommAnalysis(b *testing.B) {
	g, _ := schedulerLeaf(b)
	s, err := lpfs.Schedule(g.M, g, lpfs.Options{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comm.Analyze(s, comm.Options{LocalCapacity: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures state-vector gate throughput at 16 qubits.
func BenchmarkSimulator(b *testing.B) {
	st, err := sim.NewState(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Apply(2 /* Z */, 0, i%16); err != nil {
			b.Fatal(err)
		}
		if err := st.Apply(10 /* CNOT */, 0, i%16, (i+1)%16); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extended studies (DESIGN.md: sens-d, sens-epr, ablation, fth). ---

// BenchmarkSensD reproduces §5.4's claim that d below 32 causes only
// marginal changes.
func BenchmarkSensD(b *testing.B) {
	flat, _ := workloads(b)
	var rows []core.SensDRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.SensD(flat, core.LPFS, 4, []int{2, 8, 32, 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		d := fmt.Sprintf("d%d", r.D)
		if r.D == 0 {
			d = "dinf"
		}
		b.ReportMetric(r.Speedup, metricName(r.Name, d, "x"))
	}
}

// BenchmarkSensEPR sweeps the EPR distribution bandwidth (§2.3).
func BenchmarkSensEPR(b *testing.B) {
	flat, _ := workloads(b)
	var rows []core.SensEPRRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.SensEPR(flat, core.LPFS, 4, []int{1, 4, 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		bw := fmt.Sprintf("bw%d", r.Bandwidth)
		if r.Bandwidth == 0 {
			bw = "bwinf"
		}
		b.ReportMetric(r.Speedup, metricName(r.Name, bw, "x"))
	}
}

// BenchmarkAblationLPFS compares LPFS option settings (§4.2).
func BenchmarkAblationLPFS(b *testing.B) {
	flat, _ := workloads(b)
	var rows []core.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.AblationLPFS(flat, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Name, sanitize(r.Variant), "x"))
	}
}

// BenchmarkAblationRCP compares RCP weight settings (§4.1).
func BenchmarkAblationRCP(b *testing.B) {
	flat, _ := workloads(b)
	var rows []core.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.AblationRCP(flat, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Name, sanitize(r.Variant), "x"))
	}
}

// BenchmarkAblationComm compares the masked (§2.3) and strict (§4.4)
// movement accountings.
func BenchmarkAblationComm(b *testing.B) {
	flat, _ := workloads(b)
	var rows []core.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.AblationComm(flat, core.LPFS, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Name, sanitize(r.Variant), "x"))
	}
}

// BenchmarkSweepFTh measures schedule quality across flattening
// thresholds (§3.1.1).
func BenchmarkSweepFTh(b *testing.B) {
	var srcs []core.SourceWorkload
	for _, w := range bench.AllSmall() {
		srcs = append(srcs, core.SourceWorkload{Name: w.Name, Source: w.Source, Pipeline: w.Pipeline})
	}
	var rows []core.FThRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = core.SweepFTh(srcs, core.LPFS, 4, []int64{100, 2000, 50000})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Name, fmt.Sprintf("fth%d", r.FTh), "x"))
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '(', ')', '+':
			return '_'
		}
		return r
	}, s)
}
