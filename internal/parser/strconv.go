package parser

import (
	"fmt"
	"strconv"

	"github.com/scaffold-go/multisimd/internal/scaffold"
)

func parseInt(t scaffold.Token) (int64, error) {
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parser: %s: bad integer %q: %w", t.Pos, t.Text, err)
	}
	return n, nil
}

func parseFloat(t scaffold.Token) (float64, error) {
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, fmt.Errorf("parser: %s: bad float %q: %w", t.Pos, t.Text, err)
	}
	return f, nil
}
