package parser

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestParseModuleShapes(t *testing.T) {
	p := parseOK(t, `
module helper(qbit a, qbit b[4], cbit out) {
  H(a);
}
module main() {
  qbit q[2];
  cbit c;
  helper(q[0], q, c);
}
`)
	if len(p.Modules) != 2 {
		t.Fatalf("got %d modules", len(p.Modules))
	}
	h := p.Modules[0]
	if h.Name != "helper" || len(h.Params) != 3 {
		t.Fatalf("helper: %+v", h)
	}
	if h.Params[0].Size != 1 || h.Params[1].Size != 4 || !h.Params[2].Classical {
		t.Errorf("params: %+v", h.Params)
	}
	m := p.Modules[1]
	if len(m.Body.Stmts) != 3 {
		t.Fatalf("main has %d stmts", len(m.Body.Stmts))
	}
	call, ok := m.Body.Stmts[2].(*ast.CallStmt)
	if !ok || call.Callee != "helper" || len(call.Args) != 3 {
		t.Fatalf("call: %+v", m.Body.Stmts[2])
	}
	if !call.Args[1].IsWhole() {
		t.Error("whole-register arg misparsed")
	}
}

func TestParseGateKinds(t *testing.T) {
	p := parseOK(t, `
module main() {
  qbit q[3];
  X(q[0]);
  CNOT(q[0], q[1]);
  Toffoli(q[0], q[1], q[2]);
  Rz(q[0], 1.5);
  Rz(q[1], -0.5);
  CRz(q[0], q[1], 3.14159/4);
}
`)
	body := p.Modules[0].Body.Stmts
	if len(body) != 7 {
		t.Fatalf("got %d stmts", len(body))
	}
	rz := body[4].(*ast.GateStmt)
	if rz.Angle == nil || len(rz.Args) != 1 {
		t.Fatalf("Rz misparsed: %+v", rz)
	}
	crz := body[6].(*ast.GateStmt)
	if crz.Angle == nil || len(crz.Args) != 2 {
		t.Fatalf("CRz misparsed: %+v", crz)
	}
	if _, ok := crz.Angle.(*ast.BinExpr); !ok {
		t.Errorf("CRz angle should be a division expression, got %T", crz.Angle)
	}
}

func TestParseSliceArgs(t *testing.T) {
	p := parseOK(t, `
module f(qbit x[4]) {
  H(x[0]);
}
module main() {
  qbit q[8];
  f(q[0:4]);
  f(q[4:8]);
}
`)
	call := p.Modules[1].Body.Stmts[1].(*ast.CallStmt)
	if !call.Args[0].IsSlice() {
		t.Fatal("slice arg misparsed")
	}
}

func TestParseForAndIf(t *testing.T) {
	p := parseOK(t, `
module main() {
  qbit q[8];
  for (i = 0; i < 8; i++) {
    H(q[i]);
    if (i % 2 == 0) {
      X(q[i]);
    } else {
      Z(q[i]);
    }
  }
}
`)
	loop := p.Modules[0].Body.Stmts[1].(*ast.ForStmt)
	if loop.Var != "i" {
		t.Fatalf("loop var %q", loop.Var)
	}
	iff := loop.Body.Stmts[1].(*ast.IfStmt)
	if iff.Else == nil {
		t.Error("else branch lost")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	p := parseOK(t, `
module main() {
  qbit q[32];
  H(q[1+2*3]);
}
`)
	g := p.Modules[0].Body.Stmts[1].(*ast.GateStmt)
	idx := g.Args[0].Index.(*ast.BinExpr)
	// Must parse as 1 + (2*3): top-level op is Plus.
	if idx.Op.String() != "'+'" {
		t.Errorf("precedence broken: top op %v", idx.Op)
	}
	if _, ok := idx.R.(*ast.BinExpr); !ok {
		t.Errorf("right side should be 2*3, got %T", idx.R)
	}
}

func TestParseShift(t *testing.T) {
	p := parseOK(t, `
module main() {
  qbit q[64];
  for (i = 0; i < 1 << 5; i++) {
    H(q[0]);
  }
}
`)
	loop := p.Modules[0].Body.Stmts[1].(*ast.ForStmt)
	if _, ok := loop.Hi.(*ast.BinExpr); !ok {
		t.Errorf("shift expression lost: %T", loop.Hi)
	}
}

func TestParseNegative(t *testing.T) {
	parseOK(t, `
module main() {
  qbit q;
  Rz(q, -1.5);
  Rz(q, -(1+2));
}
`)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module { }",                                // missing name
		"module m() { qbit q[; }",                   // bad decl
		"module m() { H(q) }",                       // missing semicolon
		"module m() { for (i = 0; j < 3; i++) {} }", // mismatched loop var
		"module m() { for (i = 0; i < 3; j++) {} }", // mismatched increment
		"module m() { if (1) {} }",                  // missing comparison
		"module m() { Rz(q); }",                     // rotation missing angle
		"module m(qbit a[0]) { }",                   // zero-size param
		"module m() { qbit q[2]; H(q[0); }",         // unbalanced bracket
		"module m() {",                              // EOF in block
		"stuff",                                     // garbage
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
