package parser

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/printer"
	"github.com/scaffold-go/multisimd/internal/sema"
)

// FuzzParse asserts the front end never panics and that anything it
// accepts survives a print/re-parse round trip. Seeds run as part of the
// normal test suite; `go test -fuzz FuzzParse ./internal/parser` explores
// further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module main() { }",
		"module main() { qbit q[4]; H(q[0]); }",
		"module f(qbit a, cbit c) { MeasZ(a); } module main() { qbit q; cbit c; f(q, c); }",
		"module main() { qbit q[8]; for (i = 0; i < 8; i++) { if (i % 2 == 0) { X(q[i]); } } }",
		"module main() { qbit q; Rz(q, -(3.14 / 4)); }",
		"module m(qbit x[2]) { Swap(x[0], x[1]); } module main() { qbit q[4]; m(q[1:3]); }",
		"module main() { qbit q[1 << 3]; H(q[7]); }",
		"module main() { qbit q; /* block */ H(q); // line\n }",
		"module main() { qbit q[2]; CNOT(q[0], q[1]) }", // missing semicolon
		"module main() { qbit q; H(q[0:2]); }",          // slice as gate operand
		"module main() { qbit q; Frobnicate(q); }",      // unknown call
		"module 123() {}", // bad name
		"module main() { for (i = 0; j < 2; i++) {} }", // mismatched var
		"qbit stray;", // decl at top level
		"module main() { qbit q[999999999999999999]; }", // huge size
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs must round-trip through the printer.
		text := printer.Program(prog)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("printer output rejected: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		_ = again
		// Sema must terminate without panicking on anything parseable.
		_ = sema.Check(prog)
	})
}
