// Package parser builds Scaffold-lite ASTs from source text.
//
// Grammar (EBNF, informal):
//
//	program   = { module } .
//	module    = "module" ident "(" [ params ] ")" block .
//	params    = param { "," param } .
//	param     = ("qbit"|"cbit") ident [ "[" intlit "]" ] .
//	block     = "{" { stmt } "}" .
//	stmt      = decl ";" | gate ";" | call ";" | for | if .
//	decl      = ("qbit"|"cbit") ident [ "[" expr "]" ] .
//	gate/call = ident "(" [ qargs ] ")" .   // gate if ident names a builtin
//	for       = "for" "(" ident "=" expr ";" ident "<" expr ";" ident "++" ")" block .
//	if        = "if" "(" expr relop expr ")" block [ "else" block ] .
//	qarg      = ident | ident "[" expr "]" | ident "[" expr ":" expr "]" | expr .
//	expr      = term { ("+"|"-") term } .
//	term      = shift { ("*"|"/"|"%") shift } .
//	shift     = unary { "<<" unary } .
//	unary     = [ "-" ] primary .
//	primary   = intlit | floatlit | ident | "(" expr ")" .
//
// Trailing numeric arguments of rotation gates parse as angle expressions.
package parser

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/scaffold"
)

type parser struct {
	toks []scaffold.Token
	pos  int
}

// Parse parses a whole source file.
func Parse(src string) (*ast.Program, error) {
	toks, err := scaffold.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for p.cur().Kind != scaffold.EOF {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		prog.Modules = append(prog.Modules, m)
	}
	return prog, nil
}

func (p *parser) cur() scaffold.Token  { return p.toks[p.pos] }
func (p *parser) next() scaffold.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKind(k scaffold.Kind) bool { return p.cur().Kind == k }

func (p *parser) expect(k scaffold.Kind) (scaffold.Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("parser: %s: expected %s, found %s %q", t.Pos, k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseModule() (*ast.Module, error) {
	kw, err := p.expect(scaffold.KwModule)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(scaffold.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.LParen); err != nil {
		return nil, err
	}
	m := &ast.Module{Name: name.Text, Pos: kw.Pos}
	if !p.peekKind(scaffold.RParen) {
		for {
			param, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, param)
			if !p.peekKind(scaffold.Comma) {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(scaffold.RParen); err != nil {
		return nil, err
	}
	m.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) parseParam() (ast.Param, error) {
	t := p.cur()
	classical := false
	switch t.Kind {
	case scaffold.KwQbit:
	case scaffold.KwCbit:
		classical = true
	default:
		return ast.Param{}, fmt.Errorf("parser: %s: expected parameter type, found %q", t.Pos, t.Text)
	}
	p.next()
	name, err := p.expect(scaffold.Ident)
	if err != nil {
		return ast.Param{}, err
	}
	param := ast.Param{Name: name.Text, Size: 1, Classical: classical, Pos: t.Pos}
	if p.peekKind(scaffold.LBracket) {
		p.next()
		sz, err := p.expect(scaffold.Int)
		if err != nil {
			return ast.Param{}, err
		}
		n, err := parseInt(sz)
		if err != nil {
			return ast.Param{}, err
		}
		if n <= 0 {
			return ast.Param{}, fmt.Errorf("parser: %s: parameter %s has non-positive size %d", sz.Pos, name.Text, n)
		}
		param.Size = int(n)
		if _, err := p.expect(scaffold.RBracket); err != nil {
			return ast.Param{}, err
		}
	}
	return param, nil
}

func (p *parser) parseBlock() (*ast.Block, error) {
	if _, err := p.expect(scaffold.LBrace); err != nil {
		return nil, err
	}
	b := &ast.Block{}
	for !p.peekKind(scaffold.RBrace) {
		if p.peekKind(scaffold.EOF) {
			return nil, fmt.Errorf("parser: %s: unexpected EOF in block", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume '}'
	return b, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case scaffold.KwQbit, scaffold.KwCbit:
		return p.parseDecl()
	case scaffold.KwFor:
		return p.parseFor()
	case scaffold.KwIf:
		return p.parseIf()
	case scaffold.Ident:
		return p.parseGateOrCall()
	}
	return nil, fmt.Errorf("parser: %s: unexpected token %q at statement start", t.Pos, t.Text)
}

func (p *parser) parseDecl() (ast.Stmt, error) {
	t := p.next()
	classical := t.Kind == scaffold.KwCbit
	name, err := p.expect(scaffold.Ident)
	if err != nil {
		return nil, err
	}
	d := &ast.DeclStmt{Name: name.Text, Classical: classical, Pos: t.Pos}
	if p.peekKind(scaffold.LBracket) {
		p.next()
		d.Size, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scaffold.RBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(scaffold.Semicolon); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	t := p.next()
	if _, err := p.expect(scaffold.LParen); err != nil {
		return nil, err
	}
	v, err := p.expect(scaffold.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.Assign); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.Semicolon); err != nil {
		return nil, err
	}
	v2, err := p.expect(scaffold.Ident)
	if err != nil {
		return nil, err
	}
	if v2.Text != v.Text {
		return nil, fmt.Errorf("parser: %s: loop condition variable %q does not match %q", v2.Pos, v2.Text, v.Text)
	}
	if _, err := p.expect(scaffold.Lt); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.Semicolon); err != nil {
		return nil, err
	}
	v3, err := p.expect(scaffold.Ident)
	if err != nil {
		return nil, err
	}
	if v3.Text != v.Text {
		return nil, fmt.Errorf("parser: %s: loop increment variable %q does not match %q", v3.Pos, v3.Text, v.Text)
	}
	if _, err := p.expect(scaffold.PlusPlus); err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ast.ForStmt{Var: v.Text, Lo: lo, Hi: hi, Body: body, Pos: t.Pos}, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	t := p.next()
	if _, err := p.expect(scaffold.LParen); err != nil {
		return nil, err
	}
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	opTok := p.cur()
	switch opTok.Kind {
	case scaffold.Lt, scaffold.Le, scaffold.Gt, scaffold.Ge, scaffold.EqEq, scaffold.NotEq:
		p.next()
	default:
		return nil, fmt.Errorf("parser: %s: expected comparison operator, found %q", opTok.Pos, opTok.Text)
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &ast.IfStmt{Cond: ast.Cond{Op: opTok.Kind, L: l, R: r, Pos: opTok.Pos}, Then: then, Pos: t.Pos}
	if p.peekKind(scaffold.KwElse) {
		p.next()
		stmt.Else, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseGateOrCall() (ast.Stmt, error) {
	name := p.next()
	if _, err := p.expect(scaffold.LParen); err != nil {
		return nil, err
	}
	var qargs []ast.QubitExpr
	var angle ast.Expr
	op, isGate := qasm.ByName(name.Text)
	if !p.peekKind(scaffold.RParen) {
		for {
			if isGate && op.IsRotation() && len(qargs) == op.Arity() {
				// Final argument of a rotation is the angle expression.
				a, err := p.parseAngle()
				if err != nil {
					return nil, err
				}
				angle = a
			} else {
				q, err := p.parseQubitArg()
				if err != nil {
					return nil, err
				}
				qargs = append(qargs, q)
			}
			if !p.peekKind(scaffold.Comma) {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(scaffold.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(scaffold.Semicolon); err != nil {
		return nil, err
	}
	if isGate {
		if op.IsRotation() && angle == nil {
			return nil, fmt.Errorf("parser: %s: rotation %s missing angle argument", name.Pos, name.Text)
		}
		return &ast.GateStmt{Name: name.Text, Args: qargs, Angle: angle, Pos: name.Pos}, nil
	}
	return &ast.CallStmt{Callee: name.Text, Args: qargs, Pos: name.Pos}, nil
}

// parseAngle parses an angle expression, which may include float literals.
func (p *parser) parseAngle() (ast.Expr, error) { return p.parseExpr() }

func (p *parser) parseQubitArg() (ast.QubitExpr, error) {
	name, err := p.expect(scaffold.Ident)
	if err != nil {
		return ast.QubitExpr{}, err
	}
	q := ast.QubitExpr{Name: name.Text, Pos: name.Pos}
	if !p.peekKind(scaffold.LBracket) {
		return q, nil
	}
	p.next()
	q.Index, err = p.parseExpr()
	if err != nil {
		return ast.QubitExpr{}, err
	}
	if p.peekKind(scaffold.Colon) {
		p.next()
		q.SliceHi, err = p.parseExpr()
		if err != nil {
			return ast.QubitExpr{}, err
		}
	}
	if _, err := p.expect(scaffold.RBracket); err != nil {
		return ast.QubitExpr{}, err
	}
	return q, nil
}

func (p *parser) parseExpr() (ast.Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != scaffold.Plus && t.Kind != scaffold.Minus {
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: t.Kind, L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) parseTerm() (ast.Expr, error) {
	l, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != scaffold.Star && t.Kind != scaffold.Slash && t.Kind != scaffold.Percent {
			return l, nil
		}
		p.next()
		r, err := p.parseShift()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: t.Kind, L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) parseShift() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekKind(scaffold.Shl) {
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: t.Kind, L: l, R: r, Pos: t.Pos}
	}
	return l, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.peekKind(scaffold.Minus) {
		t := p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.NegExpr{E: e, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case scaffold.Int:
		p.next()
		n, err := parseInt(t)
		if err != nil {
			return nil, err
		}
		return &ast.IntLit{Value: n, Pos: t.Pos}, nil
	case scaffold.Float:
		p.next()
		f, err := parseFloat(t)
		if err != nil {
			return nil, err
		}
		return &ast.FloatLit{Value: f, Pos: t.Pos}, nil
	case scaffold.Ident:
		p.next()
		return &ast.VarRef{Name: t.Text, Pos: t.Pos}, nil
	case scaffold.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scaffold.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("parser: %s: unexpected token %q in expression", t.Pos, t.Text)
}
