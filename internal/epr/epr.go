// Package epr plans the static pre-distribution of EPR pairs that the
// paper's teleportation-based communication depends on (§2.3: "Our
// compiler schedules the pre-distribution of EPR pairs statically, as
// with other parts of the overall schedule", and "longer distances do
// imply higher EPR bandwidth requirements").
//
// Given a communication-annotated schedule, the planner derives, for
// every teleport, when its EPR pair must be issued from the generator at
// global memory so that it arrives (over a channel of finite bandwidth
// and latency) before the move fires. The result is a per-cycle issue
// plan plus the buffering each region needs to hold pairs that arrive
// early — the quantities a machine designer would size the distribution
// network with.
package epr

import (
	"fmt"
	"sort"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Config describes the EPR distribution network.
type Config struct {
	// Bandwidth is the number of pairs the generator can issue per
	// timestep (>= 1).
	Bandwidth int
	// Latency is the timesteps a pair spends in a channel between issue
	// and availability at its region (>= 0).
	Latency int
}

// Validate rejects ill-formed configurations.
func (c Config) Validate() error {
	if c.Bandwidth < 1 {
		return fmt.Errorf("epr: bandwidth must be >= 1, got %d", c.Bandwidth)
	}
	if c.Latency < 0 {
		return fmt.Errorf("epr: latency must be >= 0, got %d", c.Latency)
	}
	return nil
}

// Issue is one planned pair emission.
type Issue struct {
	// IssueAt is the generator cycle (may be negative: pairs needed at
	// the very first boundaries are distributed before computation
	// starts, exactly the paper's pre-distribution).
	IssueAt int
	// NeededAt is the step boundary whose teleport consumes the pair.
	NeededAt int
	// Region is the consuming SIMD region (the destination side of the
	// teleport; the other half stays at global memory or the source).
	Region int32
	// Slot is the qubit being moved, for diagnostics.
	Slot int
}

// Plan is a complete pre-distribution schedule.
type Plan struct {
	Issues []Issue
	// Pairs is the total EPR pairs distributed (== teleport count).
	Pairs int
	// PreIssued counts pairs issued before cycle 0 (the warm-up the
	// paper's pre-distribution performs).
	PreIssued int
	// MaxBuffered is the peak number of pairs sitting delivered-but-
	// unconsumed across all regions, sizing the regions' pair buffers.
	MaxBuffered int
	// MakespanOK reports whether every pair arrives by its boundary
	// without delaying the computation (always true: the planner issues
	// early, pre-issuing before cycle 0 when bandwidth demands it).
	MakespanOK bool
}

// Build derives the pre-distribution plan for one analyzed schedule.
//
// The planner walks boundaries in reverse time, assigning each teleport
// the latest generator cycle that still meets its deadline under the
// bandwidth cap: latest-issue keeps buffers minimal, and any overflow
// pushes issues earlier — ultimately before cycle 0, which is the
// paper's pre-distribution warm-up.
func Build(s *schedule.Schedule, res *comm.Result, cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(res.Boundaries) != len(s.Steps) {
		return nil, fmt.Errorf("epr: %d boundaries for %d steps", len(res.Boundaries), len(s.Steps))
	}

	// Collect teleports per boundary, in time order.
	type need struct {
		boundary int
		region   int32
		slot     int
	}
	var needs []need
	for b := range res.Boundaries {
		for _, mv := range res.Boundaries[b] {
			if mv.Kind != comm.GlobalMove {
				continue
			}
			region := int32(-1)
			switch {
			case mv.To.Kind == comm.InRegion:
				region = mv.To.Region
			case mv.From.Kind == comm.InRegion:
				region = mv.From.Region
			}
			needs = append(needs, need{boundary: b, region: region, slot: mv.Slot})
		}
	}

	plan := &Plan{Pairs: len(needs), MakespanOK: true}
	if len(needs) == 0 {
		return plan, nil
	}

	// Latest-issue assignment under the bandwidth cap, scanning needs
	// from the last backwards. capacityAt[c] tracks pairs already issued
	// at cycle c; jumpTo[c] path-compresses over full cycles so the scan
	// stays near-linear even when many teleports share a deadline.
	capacityAt := map[int]int{}
	jumpTo := map[int]int{}
	var findFree func(c int) int
	findFree = func(c int) int {
		if j, ok := jumpTo[c]; ok {
			root := findFree(j)
			jumpTo[c] = root
			return root
		}
		if capacityAt[c] >= cfg.Bandwidth {
			root := findFree(c - 1)
			jumpTo[c] = root
			return root
		}
		return c
	}
	plan.Issues = make([]Issue, 0, len(needs))
	for i := len(needs) - 1; i >= 0; i-- {
		n := needs[i]
		deadline := n.boundary - cfg.Latency // must be issued by here
		c := findFree(deadline)
		capacityAt[c]++
		plan.Issues = append(plan.Issues, Issue{
			IssueAt:  c,
			NeededAt: n.boundary,
			Region:   n.region,
			Slot:     n.slot,
		})
		if c < 0 {
			plan.PreIssued++
		}
	}
	// Present the plan in issue-time order (ties by deadline).
	sort.Slice(plan.Issues, func(a, b int) bool {
		if plan.Issues[a].IssueAt != plan.Issues[b].IssueAt {
			return plan.Issues[a].IssueAt < plan.Issues[b].IssueAt
		}
		return plan.Issues[a].NeededAt < plan.Issues[b].NeededAt
	})

	// Peak buffering: pairs delivered (issue + latency) but not yet
	// consumed (boundary).
	type ev struct {
		t int
		d int
	}
	var events []ev
	for _, is := range plan.Issues {
		arrive := is.IssueAt + cfg.Latency
		events = append(events, ev{t: arrive, d: 1}, ev{t: is.NeededAt, d: -1})
	}
	// Process arrivals before consumes at the same time: a pair arriving
	// exactly at its boundary still occupies the buffer momentarily.
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].d > events[b].d
	})
	cur := 0
	for _, e := range events {
		cur += e.d
		if cur > plan.MaxBuffered {
			plan.MaxBuffered = cur
		}
	}
	return plan, nil
}
