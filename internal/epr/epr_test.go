package epr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/epr"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func analyzed(t *testing.T, m *ir.Module, steps []schedule.Step, k int) (*schedule.Schedule, *comm.Result) {
	t.Helper()
	s := &schedule.Schedule{M: m, K: k, Steps: steps}
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestConfigValidation(t *testing.T) {
	if err := (epr.Config{Bandwidth: 0}).Validate(); err == nil {
		t.Error("bandwidth 0 accepted")
	}
	if err := (epr.Config{Bandwidth: 1, Latency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestPlanCoversEveryTeleport(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.H, 2)
	m.Gate(qasm.CNOT, 0, 2)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}, nil}},
		{Regions: [][]int32{nil, {1}}},
		{Regions: [][]int32{nil, {2}}},
	}
	s, res := analyzed(t, m, steps, 2)
	plan, err := epr.Build(s, res, epr.Config{Bandwidth: 2, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int64(plan.Pairs) != res.GlobalMoves {
		t.Errorf("planned %d pairs for %d teleports", plan.Pairs, res.GlobalMoves)
	}
	for _, is := range plan.Issues {
		if is.IssueAt+1 > is.NeededAt {
			t.Errorf("pair for boundary %d issued too late (%d + latency 1)", is.NeededAt, is.IssueAt)
		}
	}
}

func TestBandwidthForcesPreIssue(t *testing.T) {
	// 4 teleports all needed at boundary 0 with bandwidth 1: three must
	// be issued before cycle 0 (pre-distribution).
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	steps := []schedule.Step{{Regions: [][]int32{{0, 1, 2, 3}}}}
	s, res := analyzed(t, m, steps, 1)
	plan, err := epr.Build(s, res, epr.Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pairs != 4 {
		t.Fatalf("pairs: %d", plan.Pairs)
	}
	if plan.PreIssued != 3 {
		t.Errorf("pre-issued %d, want 3", plan.PreIssued)
	}
	// With bandwidth 4 everything issues at the deadline, nothing early.
	wide, err := epr.Build(s, res, epr.Config{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wide.PreIssued != 0 {
		t.Errorf("wide channel still pre-issued %d", wide.PreIssued)
	}
	if wide.MaxBuffered != 4 {
		t.Errorf("buffered %d, want 4 (all arrive at their boundary)", wide.MaxBuffered)
	}
}

func TestLatencyShiftsIssues(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Gate(qasm.H, 0)
	steps := []schedule.Step{{Regions: [][]int32{{0}}}}
	s, res := analyzed(t, m, steps, 1)
	plan, err := epr.Build(s, res, epr.Config{Bandwidth: 1, Latency: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Issues) != 1 || plan.Issues[0].IssueAt != -5 {
		t.Errorf("issues: %+v", plan.Issues)
	}
	if plan.PreIssued != 1 {
		t.Errorf("pre-issued %d", plan.PreIssued)
	}
}

func TestEmptySchedule(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	s := &schedule.Schedule{M: m, K: 1}
	plan, err := epr.Build(s, &comm.Result{}, epr.Config{Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pairs != 0 || len(plan.Issues) != 0 {
		t.Errorf("plan: %+v", plan)
	}
}

// Property: for random scheduled circuits, the plan covers every
// teleport, meets every deadline, and never exceeds bandwidth at any
// cycle.
func TestPlanInvariantsQuick(t *testing.T) {
	f := func(seed int64, bwRaw, latRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bw := int(bwRaw%3) + 1
		lat := int(latRaw % 4)
		m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: 5}})
		for i := 0; i < 40; i++ {
			if rng.Intn(2) == 0 {
				m.Gate(qasm.H, rng.Intn(5))
			} else {
				a := rng.Intn(5)
				b := (a + 1 + rng.Intn(4)) % 5
				m.Gate(qasm.CNOT, a, b)
			}
		}
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		s, err := lpfs.Schedule(m, g, lpfs.Options{K: 2})
		if err != nil {
			return false
		}
		res, err := comm.Analyze(s, comm.Options{})
		if err != nil {
			return false
		}
		plan, err := epr.Build(s, res, epr.Config{Bandwidth: bw, Latency: lat})
		if err != nil {
			return false
		}
		if int64(plan.Pairs) != res.GlobalMoves {
			return false
		}
		perCycle := map[int]int{}
		for _, is := range plan.Issues {
			if is.IssueAt+lat > is.NeededAt {
				return false // deadline missed
			}
			perCycle[is.IssueAt]++
			if perCycle[is.IssueAt] > bw {
				return false // bandwidth violated
			}
		}
		return plan.MaxBuffered >= 1 || plan.Pairs == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
