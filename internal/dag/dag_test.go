package dag_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// chainModule builds n serial H gates on one qubit.
func chainModule(n int) *ir.Module {
	m := ir.NewModule("chain", nil, []ir.Reg{{Name: "q", Size: 1}})
	for i := 0; i < n; i++ {
		m.Gate(qasm.H, 0)
	}
	return m
}

// parallelModule builds n independent H gates on n qubits.
func parallelModule(n int) *ir.Module {
	m := ir.NewModule("par", nil, []ir.Reg{{Name: "q", Size: n}})
	for i := 0; i < n; i++ {
		m.Gate(qasm.H, i)
	}
	return m
}

func TestChainGraph(t *testing.T) {
	g, err := dag.Build(chainModule(10))
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPath() != 10 {
		t.Errorf("cp = %d", g.CriticalPath())
	}
	if len(g.Roots()) != 1 || g.Roots()[0] != 0 {
		t.Errorf("roots: %v", g.Roots())
	}
	for i := int32(0); i < 10; i++ {
		if g.Slack(i) != 0 {
			t.Errorf("slack(%d) = %d on a chain", i, g.Slack(i))
		}
	}
	done := make([]bool, 10)
	path := g.NextLongestPath(done, g.Roots())
	if len(path) != 10 {
		t.Errorf("longest path length %d", len(path))
	}
}

func TestParallelGraph(t *testing.T) {
	g, err := dag.Build(parallelModule(8))
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPath() != 1 {
		t.Errorf("cp = %d", g.CriticalPath())
	}
	if len(g.Roots()) != 8 {
		t.Errorf("roots: %d", len(g.Roots()))
	}
}

func TestDiamondDependencies(t *testing.T) {
	// H(a); H(b); CNOT(a,b); H(a); X(c) — the CNOT depends on both
	// initial gates; the last H depends on the CNOT; X(c) floats free.
	m := ir.NewModule("d", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.H, 0).Gate(qasm.H, 1).Gate(qasm.CNOT, 0, 1).Gate(qasm.H, 0).Gate(qasm.X, 2)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPath() != 3 {
		t.Errorf("cp = %d", g.CriticalPath())
	}
	if len(g.Preds[2]) != 2 {
		t.Errorf("CNOT preds: %v", g.Preds[2])
	}
	// Both H gates sit on length-3 chains: zero slack. The free X can
	// slide anywhere: slack = cp - 1.
	if g.Slack(0) != 0 || g.Slack(1) != 0 || g.Slack(4) != 2 {
		t.Errorf("slack: %d %d %d", g.Slack(0), g.Slack(1), g.Slack(4))
	}
}

func TestBuildRejectsCalls(t *testing.T) {
	m := ir.NewModule("bad", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("other", ir.Range{Start: 0, Len: 1})
	if _, err := dag.Build(m); err == nil {
		t.Error("accepted call op")
	}
}

func TestBuildRejectsCounts(t *testing.T) {
	m := ir.NewModule("bad", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Ops = append(m.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.H, Args: []int{0}, Count: 3})
	if _, err := dag.Build(m); err == nil {
		t.Error("accepted unmaterialized count")
	}
}

func TestNextLongestPathSkipsDone(t *testing.T) {
	g, err := dag.Build(chainModule(5))
	if err != nil {
		t.Fatal(err)
	}
	done := make([]bool, 5)
	done[0], done[1] = true, true
	path := g.NextLongestPath(done, []int32{2})
	if len(path) != 3 || path[0] != 2 {
		t.Errorf("path: %v", path)
	}
	for i := range done {
		done[i] = true
	}
	if p := g.NextLongestPath(done, []int32{2}); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
}

// randomLeaf builds a random two-register circuit for property tests.
func randomLeaf(rng *rand.Rand, nOps, nQubits int) *ir.Module {
	m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: nQubits}})
	for i := 0; i < nOps; i++ {
		switch rng.Intn(3) {
		case 0:
			m.Gate(qasm.H, rng.Intn(nQubits))
		case 1:
			a := rng.Intn(nQubits)
			b := (a + 1 + rng.Intn(nQubits-1)) % nQubits
			m.Gate(qasm.CNOT, a, b)
		default:
			m.Gate(qasm.T, rng.Intn(nQubits))
		}
	}
	return m
}

// Property: depth and height are consistent — depth+height-1 <= cp, with
// equality exactly on critical nodes, and slack is non-negative.
func TestDepthHeightInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomLeaf(rng, 60, 5)
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		cp := int32(g.CriticalPath())
		onCP := false
		for i := 0; i < g.Len(); i++ {
			d, h := g.Depth[i], g.Height[i]
			if d < 1 || h < 1 || d+h-1 > cp {
				return false
			}
			if g.Slack(int32(i)) < 0 {
				return false
			}
			if d+h-1 == cp {
				onCP = true
			}
		}
		return onCP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: edges always point from lower to higher op index, and every
// dependency implies strictly increasing depth.
func TestEdgeDirectionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomLeaf(rng, 80, 6)
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		for i := 0; i < g.Len(); i++ {
			for _, p := range g.Preds[i] {
				if p >= int32(i) || g.Depth[p] >= g.Depth[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
