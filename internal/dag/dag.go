// Package dag builds the gate-dependency DAG of a materialized leaf
// module and provides the graph analyses the schedulers need: ASAP
// depths, heights, the critical path, slack, and longest-path extraction
// for LPFS (paper §4.2).
//
// Dependencies follow from the no-cloning theorem (paper §3.1.1): any
// shared operand between two operations orders them, so each op depends
// on the previous op touching each of its qubits.
package dag

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ir"
)

// Graph is the dependency DAG over a module's ops. Node i corresponds to
// Module.Ops[i].
type Graph struct {
	M     *ir.Module
	Preds [][]int32
	Succs [][]int32
	// Depth is the 1-based ASAP level: 1 + max depth of predecessors.
	Depth []int32
	// Height is the 1-based longest path to any sink: 1 + max successor
	// height.
	Height []int32
	cp     int32
}

// Build constructs the graph. The module must be a materialized leaf:
// gate ops only, Count <= 1.
func Build(m *ir.Module) (*Graph, error) {
	n := len(m.Ops)
	g := &Graph{
		M:      m,
		Preds:  make([][]int32, n),
		Succs:  make([][]int32, n),
		Depth:  make([]int32, n),
		Height: make([]int32, n),
	}
	last := make([]int32, m.TotalSlots())
	for i := range last {
		last[i] = -1
	}
	for i := 0; i < n; i++ {
		op := &m.Ops[i]
		if op.Kind != ir.GateOp {
			return nil, fmt.Errorf("dag: module %s op %d is a call; materialize and flatten leaves first", m.Name, i)
		}
		if op.EffCount() != 1 {
			return nil, fmt.Errorf("dag: module %s op %d has count %d; materialize first", m.Name, i, op.Count)
		}
		var depth int32
		for _, slot := range op.Args {
			p := last[slot]
			if p >= 0 {
				if !contains(g.Preds[i], p) {
					g.Preds[i] = append(g.Preds[i], p)
					g.Succs[p] = append(g.Succs[p], int32(i))
				}
				if g.Depth[p] > depth {
					depth = g.Depth[p]
				}
			}
			last[slot] = int32(i)
		}
		g.Depth[i] = depth + 1
		if g.Depth[i] > g.cp {
			g.cp = g.Depth[i]
		}
	}
	// Heights in reverse order: successors always have larger indices
	// because dependencies point backward in the linear op order.
	for i := n - 1; i >= 0; i-- {
		var h int32
		for _, s := range g.Succs[i] {
			if g.Height[s] > h {
				h = g.Height[s]
			}
		}
		g.Height[i] = h + 1
	}
	return g, nil
}

func contains(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Depth) }

// CriticalPath returns the length (in ops) of the longest dependency
// chain — the paper's theoretical speedup bound (Fig. 6 "cp" bars).
func (g *Graph) CriticalPath() int { return int(g.cp) }

// Slack returns how many levels op i can slip without stretching the
// critical path: ALAP(i) - ASAP(i).
func (g *Graph) Slack(i int32) int32 {
	return g.cp - g.Height[i] + 1 - g.Depth[i]
}

// Roots returns nodes with no predecessors, i.e. the initial ready set.
func (g *Graph) Roots() []int32 {
	var roots []int32
	for i := range g.Preds {
		if len(g.Preds[i]) == 0 {
			roots = append(roots, int32(i))
		}
	}
	return roots
}

// NextLongestPath extracts a maximal dependency chain starting from the
// candidate node set (typically the current ready list), skipping nodes
// already marked done. It greedily starts at the candidate with the
// largest static height and extends through the not-done successor of
// largest height — exact for the first extraction and a tight
// approximation for refills (paper's Refill option). Returns nil when no
// candidate remains.
func (g *Graph) NextLongestPath(done []bool, candidates []int32) []int32 {
	best := int32(-1)
	for _, c := range candidates {
		if done[c] {
			continue
		}
		if best < 0 || g.Height[c] > g.Height[best] {
			best = c
		}
	}
	if best < 0 {
		return nil
	}
	path := []int32{best}
	cur := best
	for {
		next := int32(-1)
		for _, s := range g.Succs[cur] {
			if done[s] {
				continue
			}
			if next < 0 || g.Height[s] > g.Height[next] {
				next = s
			}
		}
		if next < 0 {
			return path
		}
		path = append(path, next)
		cur = next
	}
}
