package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(b byte, s string) Key {
	k := Key(sha256.Sum256([]byte(s)))
	k[0] = b // pin the shard
	return k
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(3, "round-trip")
	payload := []byte("hello, characterization")

	if _, ok := s.Get(k); ok {
		t.Fatal("Get before Put returned a record")
	}
	s.Put(k, payload)
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %q, %v; want %q, true", got, ok, payload)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 write, 1 entry", st)
	}
	if st.Bytes != int64(headerSize+len(payload)) {
		t.Fatalf("Bytes = %d; want %d", st.Bytes, headerSize+len(payload))
	}
}

func TestPutIdempotent(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(0, "idempotent")
	s.Put(k, []byte("first"))
	s.Put(k, []byte("first")) // same content address: dropped
	if st := s.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats after double Put = %+v; want 1 write, 1 entry", st)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	k := testKey(9, "empty")
	s.Put(k, nil)
	got, ok := s.Get(k)
	if !ok || len(got) != 0 {
		t.Fatalf("Get = %q, %v; want empty, true", got, ok)
	}
}

// TestReopen simulates a process restart: records written by one Store
// must be served by a fresh Store over the same directory.
func TestReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir})
	keys := map[Key][]byte{}
	for i := 0; i < 20; i++ {
		k := testKey(byte(i*13), fmt.Sprintf("reopen-%d", i))
		v := []byte(fmt.Sprintf("payload-%d", i))
		keys[k] = v
		s1.Put(k, v)
	}
	s1.Close()

	s2 := mustOpen(t, Options{Dir: dir})
	if got := s2.Len(); got != len(keys) {
		t.Fatalf("reopened Len = %d; want %d", got, len(keys))
	}
	for k, want := range keys {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopened Get(%s) = %q, %v; want %q", k, got, ok, want)
		}
	}
}

// TestCrossProcessVisibility: a record written directly to the shard
// directory after Open (as a sibling process would) is found via the
// stat fallback, not missed forever.
func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	k := testKey(7, "sibling")
	payload := []byte("written by another process")

	// A second store over the same dir plays the sibling.
	sib := mustOpen(t, Options{Dir: dir})
	sib.Put(k, payload)

	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get of sibling-written record = %q, %v; want %q, true", got, ok, payload)
	}
}

func corruptRecord(t *testing.T, s *Store, k Key, mutate func([]byte) []byte) string {
	t.Helper()
	st := s.stripe(k)
	path := s.path(st, k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read record: %v", err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatalf("rewrite record: %v", err)
	}
	return path
}

func TestTruncatedRecordIsMissAndQuarantined(t *testing.T) {
	for _, cut := range []int{0, 3, headerSize - 1, headerSize + 2} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, Options{Dir: dir})
			k := testKey(1, "truncate")
			s.Put(k, []byte("a payload that will be torn"))
			path := corruptRecord(t, s, k, func(b []byte) []byte { return b[:cut] })

			if _, ok := s.Get(k); ok {
				t.Fatal("Get of truncated record returned ok")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d; want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt record still in shard dir: err=%v", err)
			}
			q := filepath.Join(dir, "quarantine", k.String()+".bad")
			if _, err := os.Stat(q); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
			// The miss is permanent, not a crash loop.
			if _, ok := s.Get(k); ok {
				t.Fatal("second Get after quarantine returned ok")
			}
		})
	}
}

func TestBadChecksumIsMissAndQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	k := testKey(2, "checksum")
	s.Put(k, []byte("bits that will rot"))
	corruptRecord(t, s, k, func(b []byte) []byte {
		b[len(b)-1] ^= 0xff // flip a payload bit
		return b
	})
	if _, ok := s.Get(k); ok {
		t.Fatal("Get of bit-rotted record returned ok")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v; want 1 corrupt, 0 entries", st)
	}
}

func TestBadMagicAndVersionAreMisses(t *testing.T) {
	cases := map[string]func([]byte) []byte{
		"magic": func(b []byte) []byte {
			copy(b[0:4], "NOPE")
			return b
		},
		"version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], recordVersion+1)
			return b
		},
		"length": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			return b
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := mustOpen(t, Options{Dir: t.TempDir()})
			k := testKey(4, "header-"+name)
			s.Put(k, []byte("payload"))
			corruptRecord(t, s, k, mutate)
			if _, ok := s.Get(k); ok {
				t.Fatal("Get of mangled record returned ok")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d; want 1", st.Corrupt)
			}
		})
	}
}

// TestTornTempCleanedAtOpen: a crash mid-write leaves a *.tmp behind;
// Open must sweep it and not index it.
func TestTornTempCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, Options{Dir: dir})
	k := testKey(5, "torn-tmp")
	s1.Put(k, []byte("durable"))
	st := s1.stripe(k)
	tmp := filepath.Join(st.dir, "put-123.tmp")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := mustOpen(t, Options{Dir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived reopen: err=%v", err)
	}
	if got := s2.Len(); got != 1 {
		t.Fatalf("Len after reopen = %d; want 1", got)
	}
}

// TestConcurrentSameShard hammers one shard with concurrent writers and
// readers; run under -race this is the striping-correctness check.
func TestConcurrentSameShard(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	const n = 64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := testKey(6, fmt.Sprintf("c-%d", i)) // all shard 6
				s.Put(k, []byte(fmt.Sprintf("value-%d", i)))
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := testKey(6, fmt.Sprintf("c-%d", i))
				if v, ok := s.Get(k); ok && !bytes.Equal(v, []byte(fmt.Sprintf("value-%d", i))) {
					t.Errorf("Get(c-%d) = %q", i, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d; want %d", got, n)
	}
	for i := 0; i < n; i++ {
		k := testKey(6, fmt.Sprintf("c-%d", i))
		v, ok := s.Get(k)
		if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("value-%d", i))) {
			t.Fatalf("final Get(c-%d) = %q, %v", i, v, ok)
		}
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	k := testKey(8, "ro")
	w.Put(k, []byte("seed record"))
	w.Close()

	ro := mustOpen(t, Options{Dir: dir, ReadOnly: true})
	if v, ok := ro.Get(k); !ok || !bytes.Equal(v, []byte("seed record")) {
		t.Fatalf("read-only Get = %q, %v", v, ok)
	}
	k2 := testKey(8, "ro-put")
	ro.Put(k2, []byte("dropped"))
	if _, ok := ro.Get(k2); ok {
		t.Fatal("Put on read-only store persisted a record")
	}
	if n := ro.Compact(0); n != 0 {
		t.Fatalf("Compact on read-only store removed %d records", n)
	}
	if got := ro.Len(); got != 1 {
		t.Fatalf("read-only Len = %d; want 1", got)
	}
}

// TestReadOnlyCorruptSkippedInPlace: a read-only store must not mutate
// the seed directory even when it finds corruption.
func TestReadOnlyCorruptSkippedInPlace(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	k := testKey(10, "ro-corrupt")
	w.Put(k, []byte("seed"))
	path := corruptRecord(t, w, k, func(b []byte) []byte {
		b[headerSize] ^= 0xff
		return b
	})
	w.Close()

	ro := mustOpen(t, Options{Dir: dir, ReadOnly: true})
	if _, ok := ro.Get(k); ok {
		t.Fatal("read-only Get of corrupt record returned ok")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("read-only store moved the corrupt seed record: %v", err)
	}
	if st := ro.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d; want 1", st.Corrupt)
	}
}

func TestCompactBoundsBytes(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	payload := bytes.Repeat([]byte("x"), 100)
	recSize := int64(headerSize + len(payload))
	var keys []Key
	for i := 0; i < 10; i++ {
		k := testKey(byte(i), fmt.Sprintf("compact-%d", i))
		keys = append(keys, k)
		s.Put(k, payload)
		// Strictly increasing mtimes so eviction order is deterministic.
		st := s.stripe(k)
		ts := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(s.path(st, k), ts, ts)
		st.mu.Lock()
		st.index[k] = indexEntry{size: recSize, atime: ts}
		st.mu.Unlock()
	}

	target := 4 * recSize
	removed := s.Compact(target)
	if removed != 6 {
		t.Fatalf("Compact removed %d; want 6", removed)
	}
	st := s.Stats()
	if st.Bytes > target || st.Entries != 4 || st.Compacted != 6 {
		t.Fatalf("stats after compact = %+v; want ≤%d bytes, 4 entries", st, target)
	}
	// Oldest six gone, newest four still served.
	for i, k := range keys {
		_, ok := s.Get(k)
		if want := i >= 6; ok != want {
			t.Fatalf("Get(compact-%d) ok=%v; want %v", i, ok, want)
		}
	}
}

func TestCompactNoopUnderTarget(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	s.Put(testKey(0, "small"), []byte("tiny"))
	if n := s.Compact(1 << 20); n != 0 {
		t.Fatalf("Compact under target removed %d records", n)
	}
}

func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{
		Dir:          dir,
		MaxBytes:     int64(headerSize + 10),
		CompactEvery: 5 * time.Millisecond,
	})
	for i := 0; i < 8; i++ {
		s.Put(testKey(byte(i*31), fmt.Sprintf("bg-%d", i)), bytes.Repeat([]byte("y"), 10))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Stats(); st.Bytes <= int64(headerSize+10) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background compaction never reached target: %+v", s.Stats())
}

func TestNewKeyDomainsAndParts(t *testing.T) {
	a := NewKey("comm/v1", []byte("ab"), []byte("c"))
	b := NewKey("comm/v1", []byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("length-prefixing failed: shifted parts collide")
	}
	c := NewKey("sched/v1", []byte("ab"), []byte("c"))
	if a == c {
		t.Fatal("domain separation failed")
	}
	if a != NewKey("comm/v1", []byte("ab"), []byte("c")) {
		t.Fatal("NewKey not deterministic")
	}
}

func TestOpenValidatesShards(t *testing.T) {
	for _, n := range []int{-1, 3, 257, 512} {
		if _, err := Open(Options{Dir: t.TempDir(), Shards: n}); err == nil {
			t.Fatalf("Open with Shards=%d succeeded", n)
		}
	}
	s := mustOpen(t, Options{Dir: t.TempDir(), Shards: 8})
	k := testKey(0xff, "mask") // 0xff & 7 = stripe 7
	s.Put(k, []byte("v"))
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get with 8 shards = %q, %v", v, ok)
	}
}
