// Package cas is a persistent, sharded, content-addressed record store:
// the disk layer behind core.EvalCache. Records are keyed by a 32-byte
// content hash and stored one file per record under a two-hex-digit
// shard directory; every record carries a versioned header (magic,
// version, length, checksum) following the report schema-versioning
// discipline, so a torn or corrupted file — a crash mid-write, a bad
// disk, a truncation — is detected, quarantined and reported as a miss,
// never a wrong answer and never a crash.
//
// Concurrency is lock-striped per shard: readers and writers of
// different shards never contend, and within a shard the per-record
// write protocol (temp file + atomic rename) keeps concurrent readers
// safe. Multiple processes may share one store directory — writes are
// atomic renames and reads re-stat on index misses, so a record written
// by a sibling process becomes visible without coordination.
//
// A store can be opened ReadOnly to serve as an immutable seed layer
// (the committed bench/baselines corpus qschedd preloads at warm
// start): Gets work, Puts are dropped, corrupt records are skipped in
// place instead of quarantined.
package cas

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Key is a 32-byte content address (a SHA-256 of whatever identifies
// the record; see core's cache key derivation).
type Key [32]byte

// String renders the key as the 64-hex-digit record file stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Record format constants. The header is fixed-size, little-endian:
//
//	offset 0  magic   "QCAS" (4 bytes)
//	offset 4  version uint32 (currently 1)
//	offset 8  length  uint64 (payload bytes)
//	offset 16 crc     uint32 (Castagnoli CRC-32 of the payload)
//	offset 20 payload
//
// Version increments on any incompatible layout change; readers treat
// unknown versions as misses (quarantined), so old and new binaries can
// share a directory without crashing each other.
const (
	recordVersion = 1
	headerSize    = 20
)

var (
	recordMagic = [4]byte{'Q', 'C', 'A', 'S'}
	crcTable    = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures a Store. Only Dir is required.
type Options struct {
	// Dir is the store root; created if missing (unless ReadOnly).
	Dir string
	// Shards is the lock-stripe and directory fan-out (power of two,
	// max 256). Default 64.
	Shards int
	// ReadOnly opens the store as an immutable seed layer: Puts and
	// compaction are disabled and corrupt records are skipped without
	// quarantining.
	ReadOnly bool
	// MaxBytes bounds total record bytes on disk; Compact (and the
	// background compactor) evicts least-recently-used records past it.
	// 0 means unbounded.
	MaxBytes int64
	// CompactEvery runs Compact(MaxBytes) periodically in the
	// background when both it and MaxBytes are positive.
	CompactEvery time.Duration
}

// Stats is a point-in-time traffic and occupancy snapshot.
type Stats struct {
	Hits        int64 // records served (validated)
	Misses      int64 // lookups with no record
	Writes      int64 // records persisted
	WriteErrors int64 // failed persists (store stays consistent; entry absent)
	Corrupt     int64 // records failing validation (quarantined unless read-only)
	Compacted   int64 // records evicted by compaction
	Entries     int   // records currently indexed
	Bytes       int64 // record bytes currently indexed (payload + header)
}

// Store is the persistent record store. Safe for concurrent use.
type Store struct {
	opts    Options
	mask    byte
	stripes []*stripe

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// stripe is one shard: a directory, its record index and the lock
// serializing access to both.
type stripe struct {
	mu    sync.Mutex
	dir   string
	index map[Key]indexEntry
	bytes int64

	hits, misses, writes, writeErrs, corrupt, compacted int64
}

// indexEntry caches a record file's size and last-touch time so Stats
// and Compact never re-walk the directory.
type indexEntry struct {
	size  int64
	atime time.Time
}

// Open opens (and, unless ReadOnly, creates) a store rooted at
// opts.Dir, rebuilding the index from the shard directories and
// clearing any temp files a crashed writer left behind.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("cas: Dir is required")
	}
	if opts.Shards == 0 {
		opts.Shards = 64
	}
	if opts.Shards < 1 || opts.Shards > 256 || opts.Shards&(opts.Shards-1) != 0 {
		return nil, fmt.Errorf("cas: Shards must be a power of two in [1,256], got %d", opts.Shards)
	}
	s := &Store{
		opts:    opts,
		mask:    byte(opts.Shards - 1),
		stripes: make([]*stripe, opts.Shards),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := range s.stripes {
		st := &stripe{
			dir:   filepath.Join(opts.Dir, "shards", fmt.Sprintf("%02x", i)),
			index: map[Key]indexEntry{},
		}
		if !opts.ReadOnly {
			if err := os.MkdirAll(st.dir, 0o755); err != nil {
				return nil, fmt.Errorf("cas: %w", err)
			}
		}
		if err := st.load(); err != nil {
			return nil, err
		}
		s.stripes[i] = st
	}
	if !opts.ReadOnly {
		if err := os.MkdirAll(s.quarantineDir(), 0o755); err != nil {
			return nil, fmt.Errorf("cas: %w", err)
		}
	}
	if !opts.ReadOnly && opts.MaxBytes > 0 && opts.CompactEvery > 0 {
		go s.compactLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

func (s *Store) quarantineDir() string { return filepath.Join(s.opts.Dir, "quarantine") }

// load rebuilds one stripe's index from its directory: record files are
// indexed by their hex-key names, leftover temp files are removed, and
// anything unrecognized is ignored (validation stays lazy, at Get).
func (st *stripe) load() error {
	ents, err := os.ReadDir(st.dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(st.dir, name))
			continue
		}
		k, ok := keyFromName(name)
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.index[k] = indexEntry{size: info.Size(), atime: info.ModTime()}
		st.bytes += info.Size()
	}
	return nil
}

func keyFromName(name string) (Key, bool) {
	if !strings.HasSuffix(name, ".rec") {
		return Key{}, false
	}
	raw, err := hex.DecodeString(strings.TrimSuffix(name, ".rec"))
	if err != nil || len(raw) != len(Key{}) {
		return Key{}, false
	}
	var k Key
	copy(k[:], raw)
	return k, true
}

func (s *Store) stripe(k Key) *stripe { return s.stripes[k[0]&s.mask] }

func (s *Store) path(st *stripe, k Key) string {
	return filepath.Join(st.dir, k.String()+".rec")
}

// Get returns the payload stored under k. A missing record is a plain
// miss; a record failing validation (bad magic, unknown version, short
// file, checksum mismatch) counts as corrupt, is quarantined (moved
// aside for post-mortem, unless the store is read-only), and is also a
// miss — corruption is never an error to the caller.
func (s *Store) Get(k Key) ([]byte, bool) {
	st := s.stripe(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	path := s.path(st, k)
	ent, ok := st.index[k]
	if !ok {
		// A sibling process may have written the record after our index
		// was built; one stat keeps cross-process sharing working.
		info, err := os.Stat(path)
		if err != nil {
			st.misses++
			return nil, false
		}
		ent = indexEntry{size: info.Size(), atime: info.ModTime()}
		st.index[k] = ent
		st.bytes += ent.size
	}
	data, err := os.ReadFile(path)
	if err != nil {
		st.dropLocked(k)
		st.misses++
		return nil, false
	}
	payload, err := decodeRecord(data)
	if err != nil {
		st.corrupt++
		s.quarantineLocked(st, k, path)
		st.misses++
		return nil, false
	}
	// Touch for LRU-ish compaction ordering; best-effort.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	ent.atime = now
	st.index[k] = ent
	st.hits++
	return payload, true
}

// Put persists payload under k. Writes are atomic (temp file + rename)
// and idempotent — a key already present is left alone, since equal
// keys address equal content. On a read-only store Put is a no-op.
// Errors are absorbed into WriteErrors: the store is a cache, and a
// failed persist only costs a future recompute.
func (s *Store) Put(k Key, payload []byte) {
	if s.opts.ReadOnly {
		return
	}
	st := s.stripe(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.index[k]; ok {
		return
	}
	data := encodeRecord(payload)
	tmp, err := os.CreateTemp(st.dir, "put-*.tmp")
	if err != nil {
		st.writeErrs++
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		st.writeErrs++
		return
	}
	if err := os.Rename(tmp.Name(), s.path(st, k)); err != nil {
		os.Remove(tmp.Name())
		st.writeErrs++
		return
	}
	st.index[k] = indexEntry{size: int64(len(data)), atime: time.Now()}
	st.bytes += int64(len(data))
	st.writes++
}

// Delete removes the record under k, if present (e.g. a stale schedule
// record whose module no longer rebinds).
func (s *Store) Delete(k Key) {
	if s.opts.ReadOnly {
		return
	}
	st := s.stripe(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	os.Remove(s.path(st, k))
	st.dropLocked(k)
}

// dropLocked removes k from the stripe index (file already gone or
// being discarded). Caller holds st.mu.
func (st *stripe) dropLocked(k Key) {
	if ent, ok := st.index[k]; ok {
		st.bytes -= ent.size
		delete(st.index, k)
	}
}

// quarantineLocked moves a corrupt record aside (read-only stores skip
// the move) and drops it from the index. Caller holds st.mu.
func (s *Store) quarantineLocked(st *stripe, k Key, path string) {
	if !s.opts.ReadOnly {
		dst := filepath.Join(s.quarantineDir(), k.String()+".bad")
		if err := os.Rename(path, dst); err != nil {
			os.Remove(path)
		}
	}
	st.dropLocked(k)
}

// Stats sums per-stripe counters; each stripe is read under its lock,
// so per-stripe counts are mutually consistent.
func (s *Store) Stats() Stats {
	var out Stats
	for _, st := range s.stripes {
		st.mu.Lock()
		out.Hits += st.hits
		out.Misses += st.misses
		out.Writes += st.writes
		out.WriteErrors += st.writeErrs
		out.Corrupt += st.corrupt
		out.Compacted += st.compacted
		out.Entries += len(st.index)
		out.Bytes += st.bytes
		st.mu.Unlock()
	}
	return out
}

// Len returns the number of indexed records.
func (s *Store) Len() int { return s.Stats().Entries }

// Compact evicts least-recently-touched records until the store holds
// at most target bytes, returning how many records it removed.
// Directory growth stays bounded: the background compactor calls this
// with Options.MaxBytes.
func (s *Store) Compact(target int64) int {
	if s.opts.ReadOnly || target < 0 {
		return 0
	}
	type victim struct {
		k     Key
		st    *stripe
		size  int64
		atime time.Time
	}
	var total int64
	var all []victim
	for _, st := range s.stripes {
		st.mu.Lock()
		for k, ent := range st.index {
			all = append(all, victim{k: k, st: st, size: ent.size, atime: ent.atime})
		}
		total += st.bytes
		st.mu.Unlock()
	}
	if total <= target {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i].atime.Before(all[j].atime) })
	removed := 0
	for _, v := range all {
		if total <= target {
			break
		}
		v.st.mu.Lock()
		if _, ok := v.st.index[v.k]; ok {
			os.Remove(s.path(v.st, v.k))
			v.st.dropLocked(v.k)
			v.st.compacted++
			removed++
			total -= v.size
		}
		v.st.mu.Unlock()
	}
	return removed
}

func (s *Store) compactLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Compact(s.opts.MaxBytes)
		case <-s.stopCh:
			return
		}
	}
}

// Close stops the background compactor. The store itself holds no open
// files between calls, so Close never fails.
func (s *Store) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	<-s.done
}

// encodeRecord frames a payload: header (magic, version, length, crc)
// then the payload bytes.
func encodeRecord(payload []byte) []byte {
	data := make([]byte, headerSize+len(payload))
	copy(data[0:4], recordMagic[:])
	binary.LittleEndian.PutUint32(data[4:8], recordVersion)
	binary.LittleEndian.PutUint64(data[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(data[16:20], crc32.Checksum(payload, crcTable))
	copy(data[headerSize:], payload)
	return data
}

// decodeRecord validates framing and returns the payload.
func decodeRecord(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("cas: record truncated at %d bytes", len(data))
	}
	if [4]byte(data[0:4]) != recordMagic {
		return nil, fmt.Errorf("cas: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != recordVersion {
		return nil, fmt.Errorf("cas: record version %d, this build reads %d", v, recordVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)-headerSize) != n {
		return nil, fmt.Errorf("cas: payload length %d, header says %d", len(data)-headerSize, n)
	}
	payload := data[headerSize:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[16:20]); got != want {
		return nil, fmt.Errorf("cas: checksum %08x, header says %08x", got, want)
	}
	return payload, nil
}
