package cas

import (
	"crypto/sha256"
	"encoding/binary"
)

// NewKey derives a content address from a domain string and a sequence
// of byte parts. The domain separates record kinds (e.g. comm results
// vs schedules) so identical inputs in different domains never collide,
// and each part is length-prefixed so shifting bytes between adjacent
// parts changes the key. Bump the version suffix in the domain string
// whenever the payload encoding changes incompatibly — old records then
// simply stop matching instead of being misdecoded.
func NewKey(domain string, parts ...[]byte) Key {
	h := sha256.New()
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(domain)))
	h.Write(lenBuf[:])
	h.Write([]byte(domain))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}
