package numa_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/numa"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func TestBankOf(t *testing.T) {
	// k=4, 2 banks: regions 0,1 -> bank 0; regions 2,3 -> bank 1.
	cases := []struct {
		region int32
		k, b   int
		want   int
	}{
		{0, 4, 2, 0}, {1, 4, 2, 0}, {2, 4, 2, 1}, {3, 4, 2, 1},
		{0, 4, 4, 0}, {3, 4, 4, 3},
		{5, 8, 2, 1},
		{7, 8, 4, 3},
		{0, 1, 1, 0},
	}
	for _, c := range cases {
		if got := numa.BankOf(c.region, c.k, c.b); got != c.want {
			t.Errorf("BankOf(%d, k=%d, banks=%d) = %d, want %d", c.region, c.k, c.b, got, c.want)
		}
	}
}

func TestRoundRobin(t *testing.T) {
	a := numa.RoundRobin(5, 2)
	want := numa.Assignment{0, 1, 0, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("slot %d -> bank %d, want %d", i, a[i], want[i])
		}
	}
}

// pinnedSchedule puts qubit 0's ops in region 0 and qubit 1's in region
// 3 on a k=4 machine, alternating steps so every use teleports in.
func pinnedSchedule(t *testing.T) (*schedule.Schedule, *comm.Result) {
	t.Helper()
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	var steps []schedule.Step
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, 0)
		m.Gate(qasm.H, 1)
		steps = append(steps,
			schedule.Step{Regions: [][]int32{{int32(2 * i)}, nil, nil, nil}},
			schedule.Step{Regions: [][]int32{nil, nil, nil, {int32(2*i + 1)}}},
		)
	}
	s := &schedule.Schedule{M: m, K: 4, Steps: steps}
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestAffinityBeatsRoundRobinOnPinnedQubits(t *testing.T) {
	s, res := pinnedSchedule(t)
	cfg := numa.Config{Banks: 2}

	aff := numa.Affinity(s, 2)
	// Qubit 0 lives in region 0 (bank 0); qubit 1 in region 3 (bank 1).
	if aff[0] != 0 || aff[1] != 1 {
		t.Fatalf("affinity: %v", aff)
	}
	affRes, err := numa.Analyze(s, res, aff, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if affRes.FarMoves != 0 {
		t.Errorf("affinity mapping still has %d far moves", affRes.FarMoves)
	}

	// An adversarial mapping (swapped) makes every teleport far.
	bad := numa.Assignment{1, 0}
	badRes, err := numa.Analyze(s, res, bad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if badRes.NearMoves != 0 {
		t.Errorf("swapped mapping still near: %+v", badRes)
	}
	if badRes.Cycles <= affRes.Cycles {
		t.Errorf("far mapping should cost more: %d vs %d", badRes.Cycles, affRes.Cycles)
	}
	if affRes.FarFraction() != 0 || badRes.FarFraction() != 1 {
		t.Errorf("fractions: %g %g", affRes.FarFraction(), badRes.FarFraction())
	}
}

func TestSingleBankIsUniform(t *testing.T) {
	s, res := pinnedSchedule(t)
	a := numa.RoundRobin(s.M.TotalSlots(), 1)
	r, err := numa.Analyze(s, res, a, numa.Config{Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.FarMoves != 0 || r.Cycles != res.Cycles {
		t.Errorf("single bank not uniform: %+v", r)
	}
}

// TestExplicitZeroFarPenalty is the regression test for the config bug
// where FarPenalty was a plain int and an explicit 0 was
// indistinguishable from "unset", silently promoting a free inter-bank
// channel to the 2-cycle default.
func TestExplicitZeroFarPenalty(t *testing.T) {
	s, res := pinnedSchedule(t)
	allFar := numa.Assignment{1, 0} // every teleport crosses banks

	zero := 0
	zeroRes, err := numa.Analyze(s, res, allFar, numa.Config{Banks: 2, FarPenalty: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if zeroRes.FarMoves == 0 {
		t.Fatal("mapping expected to produce far moves")
	}
	if zeroRes.Cycles != res.Cycles {
		t.Errorf("explicit zero penalty charged %d extra cycles",
			zeroRes.Cycles-res.Cycles)
	}

	defRes, err := numa.Analyze(s, res, allFar, numa.Config{Banks: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantExtra := numa.DefaultFarPenalty * defRes.FarMoves
	if defRes.Cycles != res.Cycles+wantExtra {
		t.Errorf("nil penalty: cycles = %d, want baseline %d + default %d",
			defRes.Cycles, res.Cycles, wantExtra)
	}

	three := 3
	cfg := numa.Config{Banks: 2, FarPenalty: &three}
	custRes, err := numa.Analyze(s, res, allFar, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if custRes.Cycles != res.Cycles+3*custRes.FarMoves {
		t.Errorf("custom penalty not applied: %+v", custRes)
	}

	neg := -1
	if err := (numa.Config{Banks: 2, FarPenalty: &neg}).Validate(); err == nil {
		t.Error("negative penalty accepted")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	s, res := pinnedSchedule(t)
	if _, err := numa.Analyze(s, res, numa.Assignment{0}, numa.Config{Banks: 2}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := numa.Analyze(s, res, numa.Assignment{5, 5}, numa.Config{Banks: 2}); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if _, err := numa.Analyze(s, res, numa.RoundRobin(2, 2), numa.Config{Banks: 0}); err == nil {
		t.Error("banks=0 accepted")
	}
}

// Property: affinity never has more far moves than round-robin, and
// both account every teleport exactly once.
func TestAffinityDominatesQuick(t *testing.T) {
	f := func(seed int64, banksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		banks := int(banksRaw%3) + 1
		m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: 6}})
		for i := 0; i < 50; i++ {
			if rng.Intn(2) == 0 {
				m.Gate(qasm.H, rng.Intn(6))
			} else {
				a := rng.Intn(6)
				b := (a + 1 + rng.Intn(5)) % 6
				m.Gate(qasm.CNOT, a, b)
			}
		}
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		s, err := lpfs.Schedule(m, g, lpfs.Options{K: 4})
		if err != nil {
			return false
		}
		res, err := comm.Analyze(s, comm.Options{})
		if err != nil {
			return false
		}
		cfg := numa.Config{Banks: banks}
		affMoves, err := numa.Analyze(s, res, numa.AffinityMoves(s, res, banks), cfg)
		if err != nil {
			return false
		}
		affUse, err := numa.Analyze(s, res, numa.Affinity(s, banks), cfg)
		if err != nil {
			return false
		}
		rr, err := numa.Analyze(s, res, numa.RoundRobin(s.M.TotalSlots(), banks), cfg)
		if err != nil {
			return false
		}
		for _, r := range []*numa.Result{affMoves, affUse, rr} {
			if r.NearMoves+r.FarMoves != res.GlobalMoves {
				return false
			}
		}
		// Move-weighted affinity is per-qubit optimal: it dominates any
		// fixed assignment (theorem, not heuristic).
		return affMoves.FarMoves <= rr.FarMoves && affMoves.FarMoves <= affUse.FarMoves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
