// Package numa models the distributed global memory the paper defers to
// future work (§2.3: "To minimize EPR bandwidth requirements, future
// work will investigate distributed global memory and compiler
// algorithms for mapping to such a non-uniform memory architecture").
//
// The single global memory splits into B banks, each adjacent to a
// contiguous band of SIMD regions. Teleportation remains
// distance-insensitive in latency, but a pair sourced from a remote bank
// ties up the longer inter-bank channel: the model charges each far
// global move an extra stall (default 2 cycles) at its boundary.
//
// Two qubit-to-bank mapping policies are provided: RoundRobin (the
// oblivious baseline) and Affinity, the compiler algorithm the paper
// anticipates — each qubit homes to the bank adjacent to the region
// where it is used most. The Fig. 10-style experiment in cmd/qbench
// (-experiment numa) compares them.
package numa

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// DefaultFarPenalty is the extra stall charged per far-bank teleport.
const DefaultFarPenalty = 2

// Config describes the banked global memory.
type Config struct {
	// Banks is the number of memory banks (>= 1).
	Banks int
	// FarPenalty is the extra cycles charged when a teleport's EPR pair
	// comes from a non-adjacent bank; nil defaults to DefaultFarPenalty.
	// A pointer keeps an explicit zero representable: &0 models banks
	// whose inter-bank channel is as fast as the local one, which the
	// old int field silently promoted to the default.
	FarPenalty *int
}

func (c Config) farPenalty() int {
	if c.FarPenalty == nil {
		return DefaultFarPenalty
	}
	return *c.FarPenalty
}

// Validate rejects ill-formed configurations.
func (c Config) Validate() error {
	if c.Banks < 1 {
		return fmt.Errorf("numa: banks must be >= 1, got %d", c.Banks)
	}
	if c.FarPenalty != nil && *c.FarPenalty < 0 {
		return fmt.Errorf("numa: far penalty must be >= 0, got %d", *c.FarPenalty)
	}
	return nil
}

// BankOf maps a SIMD region to its adjacent bank: regions split into
// contiguous bands of k/banks regions each.
func BankOf(region int32, k, banks int) int {
	if region < 0 || k <= 0 {
		return 0
	}
	b := int(region) * banks / k
	if b >= banks {
		b = banks - 1
	}
	return b
}

// Assignment maps each qubit slot to its home bank.
type Assignment []int

// RoundRobin assigns qubits to banks obliviously by slot index.
func RoundRobin(slots, banks int) Assignment {
	a := make(Assignment, slots)
	for s := range a {
		a[s] = s % banks
	}
	return a
}

// Affinity assigns each qubit to the bank adjacent to the region where
// it is used most (ties to the lower bank), falling back to round-robin
// for untouched qubits. This is the usage-weighted mapping pass the
// paper's future-work plan calls for.
func Affinity(s *schedule.Schedule, banks int) Assignment {
	slots := s.M.TotalSlots()
	counts := make([][]int, slots)
	for i := range counts {
		counts[i] = make([]int, banks)
	}
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			bank := BankOf(int32(r), s.K, banks)
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					counts[slot][bank]++
				}
			}
		}
	}
	a := make(Assignment, slots)
	for slot := range a {
		best, bestN := slot%banks, 0
		for b, n := range counts[slot] {
			if n > bestN {
				best, bestN = b, n
			}
		}
		a[slot] = best
	}
	return a
}

// Result summarizes a NUMA analysis.
type Result struct {
	// NearMoves and FarMoves partition the schedule's teleports by
	// whether their EPR pair came from the adjacent bank.
	NearMoves int64
	FarMoves  int64
	// ExtraCycles is the total far-bank stall added.
	ExtraCycles int64
	// Cycles is the NUMA-adjusted runtime: the uniform-memory cycles
	// plus ExtraCycles.
	Cycles int64
	// PerBankLoad counts teleports served by each bank.
	PerBankLoad []int64
}

// FarFraction returns the share of teleports crossing banks.
func (r *Result) FarFraction() float64 {
	total := r.NearMoves + r.FarMoves
	if total == 0 {
		return 0
	}
	return float64(r.FarMoves) / float64(total)
}

// Analyze charges each global move against the banked memory: a
// teleport whose qubit homes in a bank not adjacent to the involved
// region pays the far penalty. Local scratchpad moves are unaffected.
func Analyze(s *schedule.Schedule, res *comm.Result, assign Assignment, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(assign) < s.M.TotalSlots() {
		return nil, fmt.Errorf("numa: assignment covers %d slots of %d", len(assign), s.M.TotalSlots())
	}
	out := &Result{PerBankLoad: make([]int64, cfg.Banks)}
	penalty := int64(cfg.farPenalty())
	for b := range res.Boundaries {
		for _, mv := range res.Boundaries[b] {
			if mv.Kind != comm.GlobalMove {
				continue
			}
			region := int32(-1)
			switch {
			case mv.To.Kind == comm.InRegion:
				region = mv.To.Region
			case mv.From.Kind == comm.InRegion:
				region = mv.From.Region
			}
			home := assign[mv.Slot]
			if home < 0 || home >= cfg.Banks {
				return nil, fmt.Errorf("numa: slot %d assigned to bank %d of %d", mv.Slot, home, cfg.Banks)
			}
			out.PerBankLoad[home]++
			if region >= 0 && BankOf(region, s.K, cfg.Banks) != home {
				out.FarMoves++
				out.ExtraCycles += penalty
			} else {
				out.NearMoves++
			}
		}
	}
	out.Cycles = res.Cycles + out.ExtraCycles
	return out, nil
}

// AffinityMoves assigns each qubit to the bank that serves most of its
// teleports in the analyzed schedule — per-qubit optimal, since each
// global move is charged independently: no fixed assignment can have
// fewer far moves. Prefer this when the communication annotations are
// already available; Affinity approximates it from usage alone.
func AffinityMoves(s *schedule.Schedule, res *comm.Result, banks int) Assignment {
	slots := s.M.TotalSlots()
	counts := make([][]int, slots)
	for i := range counts {
		counts[i] = make([]int, banks)
	}
	for b := range res.Boundaries {
		for _, mv := range res.Boundaries[b] {
			if mv.Kind != comm.GlobalMove {
				continue
			}
			region := int32(-1)
			switch {
			case mv.To.Kind == comm.InRegion:
				region = mv.To.Region
			case mv.From.Kind == comm.InRegion:
				region = mv.From.Region
			}
			if region >= 0 {
				counts[mv.Slot][BankOf(region, s.K, banks)]++
			}
		}
	}
	a := make(Assignment, slots)
	for slot := range a {
		best, bestN := slot%banks, 0
		for bk, n := range counts[slot] {
			if n > bestN {
				best, bestN = bk, n
			}
		}
		a[slot] = best
	}
	return a
}
