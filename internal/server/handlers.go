package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/epr"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/request"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// maxBodyBytes bounds request bodies; inline programs fit comfortably,
// runaway uploads do not.
const maxBodyBytes = 8 << 20

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer"; nobody reads the response, but the
// instruments count it as an error distinctly from server faults.
const statusClientClosedRequest = 499

// maxLogPhases caps the per-phase rows a slow request's access-log
// entry carries; the tail folds into "(other)" rows per category.
const maxLogPhases = 12

// recorderDecisionCap bounds the per-flight decision log collected for
// the flight recorder; recorderDecisionTail is how much of it a request
// record keeps (the end of the log is where a stall shows).
const (
	recorderDecisionCap  = 4096
	recorderDecisionTail = 64
)

// decisionTail returns the last max entries of a decision log.
func decisionTail(l *obs.DecisionLog, max int) []obs.Decision {
	ents := l.Entries()
	if len(ents) > max {
		ents = ents[len(ents)-max:]
	}
	return ents
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the structured error envelope, stamping the request
// id and recording the failure on the request's info record for the
// access log. r may be nil in direct handler tests.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	body := ErrorBody{Code: code, Message: msg}
	var id string
	if r != nil {
		id = requestID(r)
		if info := reqInfoFrom(r.Context()); info != nil {
			info.errMsg = msg
			if status == http.StatusTooManyRequests {
				body.QueueDepth = info.queueDepth
			}
		}
	}
	writeJSON(w, status, ErrorResponse{
		Schema:    SchemaVersion,
		RequestID: id,
		Error:     body,
	})
}

// decode reads one JSON value from the body, strictly: unknown fields,
// trailing garbage and oversized bodies are all bad_request. A false
// return means the 400 has already been written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, err.Error())
		return false
	}
	if dec.More() {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// flightStats is the observability payload one evaluation flight
// produces alongside its result. Followers inherit the leader's stats
// (the evaluation happened once); the access log distinguishes them by
// role and leader id.
type flightStats struct {
	queueWaitMS float64
	evalMS      float64
	cache       obs.AccessCache
	phases      []obs.PhaseSummary

	// spans/decisions feed the flight recorder; empty when telemetry is
	// off (nobody pays for copies the recorder would drop).
	spans     []obs.SpanEvent
	decisions []obs.Decision
}

// evalResult is what one evaluation flight produces: the metrics,
// the per-flight observability stats and, when profiling was
// requested, the assembled schedule report.
type evalResult struct {
	m     *core.Metrics
	rep   *report.Report
	stats flightStats
}

// evaluate runs req through the shared flight group: identical
// concurrent requests collapse onto one admission slot and one engine
// run against the shared cache. The boolean reports whether this call
// joined an existing flight.
func (s *Server) evaluate(ctx context.Context, req request.Config, prog programBuilder) (evalResult, bool, error) {
	p, err := prog()
	if err != nil {
		return evalResult{}, false, err
	}
	key := req.Key(p)
	fn := func(workCtx context.Context) (any, error) {
		s.wg.Add(1)
		defer s.wg.Done()
		admitStart := time.Now()
		release, err := s.admit(workCtx)
		if err != nil {
			return nil, err
		}
		defer release()
		queueWait := time.Since(admitStart)
		evalCtx, cancel := context.WithTimeout(workCtx, s.opts.Timeout)
		defer cancel()

		eopts, err := req.EvalOptions()
		if err != nil {
			return nil, err
		}
		eopts.Cache = s.cache
		eopts.Workers = s.opts.Workers
		// Each flight runs under its own tracer so a slow request can
		// dump exactly its own phase breakdown; engine counters still
		// aggregate into the shared registry.
		tr := obs.NewTracer()
		eopts.Obs = &obs.Observer{Trace: tr, Metrics: s.reg}
		// With the flight recorder on, also capture the scheduler's
		// decision log so a postmortem can say not just how long the
		// schedule phase took but what it chose.
		var dlog *obs.DecisionLog
		if s.recorder != nil {
			dlog = obs.NewDecisionLogLimit(obs.LevelStep, recorderDecisionCap)
			eopts.Scheduler = core.WithDecisionLog(eopts.Scheduler, dlog)
		}
		var collector *report.Collector
		if req.Profile {
			collector = report.NewCollector()
			eopts.Profile = collector
		}
		// The cache is shared by every concurrent flight, so a global
		// Stats() delta around the evaluation would bleed other flights'
		// hits and misses into this request's log. A per-evaluation
		// recorder attributes exactly this run's traffic.
		rec := &core.CacheRecorder{}
		eopts.CacheStats = rec
		evalStart := time.Now()
		m, err := core.EvaluateContext(evalCtx, p, eopts)
		if err != nil {
			return nil, err
		}
		delta := rec.Stats()
		res := evalResult{m: m, stats: flightStats{
			queueWaitMS: float64(queueWait.Microseconds()) / 1000,
			evalMS:      float64(time.Since(evalStart).Microseconds()) / 1000,
			cache: obs.AccessCache{
				CommHits: delta.CommHits, CommMisses: delta.CommMisses,
				SchedHits: delta.SchedHits, SchedMisses: delta.SchedMisses,
				DiskHits: delta.DiskHits, DiskMisses: delta.DiskMisses,
			},
			phases: tr.Phases(maxLogPhases),
		}}
		if s.recorder != nil {
			res.stats.spans = tr.Events()
			res.stats.decisions = decisionTail(dlog, recorderDecisionTail)
		}
		if collector != nil {
			res.rep = core.BuildReport(collector, req.Label(), m, eopts)
		}
		return res, nil
	}
	val, deduped, leaderID, shared, err := s.flights.do(ctx, s.base, key, fn)
	if deduped {
		s.dedupCounter.Inc()
	}
	if info := reqInfoFrom(ctx); info != nil {
		info.key = key
		info.fingerprint = p.Fingerprint().String()
		switch {
		case deduped:
			info.role = "follower"
			info.leaderID = leaderID
		case shared:
			info.role = "leader"
		default:
			info.role = "solo"
		}
	}
	if err != nil {
		return evalResult{}, deduped, err
	}
	res := val.(evalResult)
	if info := reqInfoFrom(ctx); info != nil {
		info.queueWaitMS = res.stats.queueWaitMS
		info.evalMS = res.stats.evalMS
		c := res.stats.cache
		info.cache = &c
		info.phases = res.stats.phases
		info.spans = res.stats.spans
		info.decisions = res.stats.decisions
	}
	return res, deduped, nil
}

// programBuilder defers the (comparatively cheap) parse+lower step so
// evaluate can map its failures to compile_failed.
type programBuilder = func() (*ir.Program, error)

// writeEvalError maps an evaluation failure to its transport shape.
func (s *Server) writeEvalError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSecs(), 10))
		if r != nil {
			if info := reqInfoFrom(r.Context()); info != nil {
				info.queueDepth = s.queued.Load()
			}
		}
		writeError(w, r, http.StatusTooManyRequests, CodeOverloaded,
			"evaluation queue full; retry shortly")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusGatewayTimeout, CodeTimeout,
			"evaluation exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		if s.draining.Load() {
			writeError(w, r, http.StatusServiceUnavailable, CodeShuttingDown,
				"server shutting down")
			return
		}
		writeError(w, r, statusClientClosedRequest, CodeBadRequest,
			"client closed request")
	default:
		writeError(w, r, http.StatusUnprocessableEntity, CodeEvalFailed, err.Error())
	}
}

// parseConfig decodes, defaults and validates the shared request
// config; on failure the error response has been written and ok is
// false.
func (s *Server) parseConfig(w http.ResponseWriter, r *http.Request) (request.Config, bool) {
	var req request.Config
	if !s.decode(w, r, &req) {
		return req, false
	}
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalid, err.Error())
		return req, false
	}
	return req, true
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseConfig(w, r)
	if !ok {
		return
	}
	res, deduped, err := s.compile(w, r, req)
	if err != nil {
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Schema:    SchemaVersion,
		RequestID: requestID(r),
		Label:     req.Label(),
		Request:   req,
		Deduped:   deduped,
		Metrics:   metricsBody(res.m),
	})
}

// compile builds and evaluates req, writing the error response itself
// on failure (callers just return on err != nil).
func (s *Server) compile(w http.ResponseWriter, r *http.Request, req request.Config) (evalResult, bool, error) {
	built := false
	res, deduped, err := s.evaluate(r.Context(), req, func() (*ir.Program, error) {
		p, berr := req.Build(nil)
		built = berr == nil
		return p, berr
	})
	if err != nil {
		if !built {
			writeError(w, r, http.StatusBadRequest, CodeCompileFailed, err.Error())
		} else {
			s.writeEvalError(w, r, err)
		}
	}
	return res, deduped, err
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseConfig(w, r)
	if !ok {
		return
	}
	req.Verify = true
	res, deduped, err := s.compile(w, r, req)
	if err != nil {
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{
		Schema:    SchemaVersion,
		RequestID: requestID(r),
		Label:     req.Label(),
		Request:   req,
		Deduped:   deduped,
		Verified:  true,
		Metrics:   metricsBody(res.m),
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseConfig(w, r)
	if !ok {
		return
	}
	req.Profile = true
	res, _, err := s.compile(w, r, req)
	if err != nil {
		return
	}
	// report.Report is itself the versioned contract (Schema field).
	writeJSON(w, http.StatusOK, res.rep)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var sreq ScheduleRequest
	if !s.decode(w, r, &sreq) {
		return
	}
	sreq.Config = sreq.Config.WithDefaults()
	if err := sreq.Config.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalid, err.Error())
		return
	}
	if sreq.Module == "" {
		writeError(w, r, http.StatusBadRequest, CodeInvalid, "module is required")
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.writeEvalError(w, r, err)
		return
	}
	defer release()

	resp, code, err := s.scheduleModule(sreq)
	if err != nil {
		writeError(w, r, code, codeFor(code), err.Error())
		return
	}
	resp.RequestID = requestID(r)
	writeJSON(w, http.StatusOK, resp)
}

func codeFor(status int) string {
	if status == http.StatusBadRequest {
		return CodeCompileFailed
	}
	return CodeEvalFailed
}

// scheduleModule produces the fine-grained leaf schedule the CLI's
// -dump flag prints, as a structured response.
func (s *Server) scheduleModule(sreq ScheduleRequest) (*ScheduleResponse, int, error) {
	prog, err := sreq.Config.Build(nil)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	mod := prog.Module(sreq.Module)
	if mod == nil {
		var leaves []string
		for _, n := range prog.Order {
			if prog.Modules[n].IsLeaf() {
				leaves = append(leaves, n)
			}
		}
		return nil, http.StatusBadRequest,
			fmt.Errorf("no module %q; leaf modules: %s", sreq.Module, strings.Join(leaves, ", "))
	}
	if !mod.IsLeaf() {
		return nil, http.StatusBadRequest,
			fmt.Errorf("module %q is not a leaf; only fine-grained schedules can be served", sreq.Module)
	}
	eopts, err := sreq.Config.EvalOptions()
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	mat, err := mod.Materialize(1 << 22)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	g, err := dag.Build(mat)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	sched, err := eopts.Scheduler.Schedule(mat, g, sreq.K, sreq.D)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	res, err := comm.Analyze(sched, sreq.Comm())
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	eprCfg := epr.Config{Bandwidth: 2, Latency: 1}
	if sreq.EPRBandwidth > 0 {
		eprCfg.Bandwidth = int(sreq.EPRBandwidth)
	}
	plan, err := epr.Build(sched, res, eprCfg)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	var text strings.Builder
	if err := comm.WriteSchedule(&text, sched, res); err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	return &ScheduleResponse{
		Schema:       SchemaVersion,
		Module:       sreq.Module,
		Ops:          g.Len(),
		CriticalPath: g.CriticalPath(),
		Steps:        sched.Length(),
		Cycles:       res.Cycles,
		GlobalMoves:  res.GlobalMoves,
		LocalMoves:   res.LocalMoves,
		EPR: EPRBody{
			Bandwidth:   eprCfg.Bandwidth,
			Latency:     eprCfg.Latency,
			Pairs:       plan.Pairs,
			PreIssued:   plan.PreIssued,
			MaxBuffered: plan.MaxBuffered,
			MakespanOK:  plan.MakespanOK,
		},
		Text: text.String(),
	}, http.StatusOK, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Schema:   SchemaVersion,
		Status:   status,
		Inflight: len(s.sem),
		Queued:   s.queued.Load(),
		Cache:    s.cache.Stats(),
	})
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	var benches []string
	for _, b := range bench.Gated() {
		benches = append(benches, b.Name)
	}
	writeJSON(w, http.StatusOK, VersionResponse{
		Schema:     SchemaVersion,
		Service:    "qschedd",
		API:        "v1",
		GoVersion:  runtime.Version(),
		Schedulers: schedule.Names(),
		Benchmarks: benches,
	})
}

// debugState assembles the introspection snapshot (shared by the JSON
// endpoint and the dashboard).
func (s *Server) debugState() DebugStateResponse {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	infos := s.flights.snapshot()
	flights := make([]FlightState, 0, len(infos))
	for _, fi := range infos {
		flights = append(flights, FlightState{
			Key:      fi.key,
			AgeMS:    float64(fi.age.Microseconds()) / 1000,
			Waiters:  fi.waiters,
			LeaderID: fi.leaderID,
		})
	}
	sort.Slice(flights, func(i, j int) bool { return flights[i].AgeMS > flights[j].AgeMS })
	var telemStats *telem.Stats
	if s.telem != nil {
		st := s.telem.Stats()
		telemStats = &st
	}
	return DebugStateResponse{
		Schema:      DebugSchemaVersion,
		Status:      status,
		UptimeMS:    float64(time.Since(s.started).Microseconds()) / 1000,
		MaxInflight: s.opts.MaxInflight,
		Inflight:    len(s.sem),
		QueueDepth:  s.queued.Load(),
		QueueCap:    s.opts.MaxQueue,
		Flights:     flights,
		Cache:       s.cache.Stats(),
		Runtime: RuntimeState{
			Goroutines:     s.reg.Gauge(obs.GaugeGoroutines).Value(),
			HeapAllocBytes: s.reg.Gauge(obs.GaugeHeapAlloc).Value(),
			HeapSysBytes:   s.reg.Gauge(obs.GaugeHeapSys).Value(),
			GCCount:        s.reg.Gauge(obs.GaugeGCCount).Value(),
			GCPauseTotalNS: s.reg.Gauge(obs.GaugeGCPauseTotal).Value(),
			GCPauseLastNS:  s.reg.Gauge(obs.GaugeGCPauseLast).Value(),
		},
		SlowRequests: s.slow.list(),
		Telemetry:    telemStats,
	}
}

func (s *Server) handleDebugState(w http.ResponseWriter, r *http.Request) {
	state := s.debugState()
	state.RequestID = requestID(r)
	writeJSON(w, http.StatusOK, state)
}
