package server

// The telemetry API surface: range queries over the persistent store
// and operator-triggered postmortem snapshots. Both answer
// telemetry_disabled (404) when the daemon runs without -telemetry-dir,
// so probes can distinguish "off" from "empty".

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs/telem"
)

// maxRangeWindow bounds one range query; asking for a year of 2s
// samples is a mistake, not a dashboard.
const maxRangeWindow = 7 * 24 * time.Hour

// parseTimeParam accepts unix milliseconds or RFC 3339.
func parseTimeParam(v string) (time.Time, error) {
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.UnixMilli(ms), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("want unix milliseconds or RFC 3339, got %q", v)
	}
	return t, nil
}

// parseStepParam accepts a Go duration ("30s") or integer milliseconds.
func parseStepParam(v string) (time.Duration, error) {
	if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("want a duration or integer milliseconds, got %q", v)
	}
	return d, nil
}

// handleMetricsRange answers GET /v1/metrics/range?name=&from=&to=&step=.
// Defaults: to = now, from = to - 1h, step = raw samples. Without a
// name it lists the known series instead.
func (s *Server) handleMetricsRange(w http.ResponseWriter, r *http.Request) {
	if s.telem == nil {
		writeError(w, r, http.StatusNotFound, CodeTelemetryOff,
			"telemetry store not configured; start qschedd with -telemetry-dir")
		return
	}
	q := r.URL.Query()
	to := time.Now()
	if v := q.Get("to"); v != "" {
		t, err := parseTimeParam(v)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "to: "+err.Error())
			return
		}
		to = t
	}
	from := to.Add(-time.Hour)
	if v := q.Get("from"); v != "" {
		t, err := parseTimeParam(v)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "from: "+err.Error())
			return
		}
		from = t
	}
	if !from.Before(to) {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest, "from must precede to")
		return
	}
	if to.Sub(from) > maxRangeWindow {
		writeError(w, r, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("window exceeds %s; narrow the range", maxRangeWindow))
		return
	}
	var step time.Duration
	if v := q.Get("step"); v != "" {
		d, err := parseStepParam(v)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "step: "+err.Error())
			return
		}
		if d < 0 {
			writeError(w, r, http.StatusBadRequest, CodeBadRequest, "step must be non-negative")
			return
		}
		step = d
	}

	resp := MetricsRangeResponse{
		Schema:    TelemetrySchemaVersion,
		RequestID: requestID(r),
		FromMS:    from.UnixMilli(),
		ToMS:      to.UnixMilli(),
		StepMS:    step.Milliseconds(),
	}
	if name := q.Get("name"); name != "" {
		resp.Name = name
		resp.Points = s.telem.Query(name, from, to, step)
	} else {
		resp.Series = s.telem.Series()
	}
	if resp.Points == nil {
		resp.Points = []telem.Point{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugSnapshot answers POST /v1/debug/snapshot: freeze the
// flight recorder into a manual postmortem bundle right now. Manual
// snapshots bypass the automatic bundles' rate limit — an operator
// asking twice means it.
func (s *Server) handleDebugSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.telem == nil {
		writeError(w, r, http.StatusNotFound, CodeTelemetryOff,
			"telemetry store not configured; start qschedd with -telemetry-dir")
		return
	}
	n := s.recorder.Len()
	path, err := s.writeBundle("manual", requestID(r), nil)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, CodeSnapshotFailed, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Schema:    TelemetrySchemaVersion,
		RequestID: requestID(r),
		Trigger:   "manual",
		Path:      path,
		Requests:  n,
	})
}
