package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
)

// openTelem opens a telemetry store in a fresh temp dir, sealing every
// sample so tests never race the in-memory buffer.
func openTelem(t *testing.T, dir string) *telem.Store {
	t.Helper()
	st, err := telem.Open(telem.Options{Dir: dir, SealSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestTelemetryEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{SampleEvery: -1})
	resp, data := get(t, ts.URL+"/v1/metrics/range?name=server.requests")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("range status %d: %s", resp.StatusCode, data)
	}
	var er ErrorResponse
	decodeInto(t, data, &er)
	if er.Error.Code != CodeTelemetryOff {
		t.Fatalf("range error code %q, want %q", er.Error.Code, CodeTelemetryOff)
	}
	resp, data = post(t, ts.URL+"/v1/debug/snapshot", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &er)
	if er.Error.Code != CodeTelemetryOff {
		t.Fatalf("snapshot error code %q, want %q", er.Error.Code, CodeTelemetryOff)
	}
}

func TestMetricsRangeQueryAndSeries(t *testing.T) {
	st := openTelem(t, t.TempDir())
	now := time.Now()
	for i := 0; i < 5; i++ {
		st.Append(now.Add(time.Duration(i-5)*time.Second),
			map[string]float64{"server.requests": float64(10 + i), "server.inflight": 1})
	}
	_, ts := newTestServer(t, Options{SampleEvery: -1, Telemetry: st})

	var mr MetricsRangeResponse
	resp, data := get(t, ts.URL+"/v1/metrics/range?name=server.requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &mr)
	if mr.Schema != TelemetrySchemaVersion || mr.Name != "server.requests" {
		t.Fatalf("envelope = %+v", mr)
	}
	if len(mr.Points) != 5 || mr.Points[4].V != 14 {
		t.Fatalf("points = %+v, want the 5 appended samples", mr.Points)
	}

	// Step folding via the query param (2s buckets over 2s-spaced... here
	// 1s-spaced samples: 2s buckets keep the last of each pair).
	resp, data = get(t, ts.URL+"/v1/metrics/range?name=server.requests&step=2s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &mr)
	if len(mr.Points) >= 5 || len(mr.Points) == 0 {
		t.Fatalf("stepped points = %+v, want a folded series", mr.Points)
	}
	if mr.StepMS != 2000 {
		t.Fatalf("step_ms = %d, want 2000", mr.StepMS)
	}

	// Explicit window in unix milliseconds, empty range: points is [],
	// never null.
	from := now.Add(-100 * time.Hour).UnixMilli()
	to := now.Add(-99 * time.Hour).UnixMilli()
	resp, data = get(t, fmt.Sprintf("%s/v1/metrics/range?name=server.requests&from=%d&to=%d", ts.URL, from, to))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), `"points": []`) {
		t.Fatalf("empty range must serialize points as []: %s", data)
	}

	// No name: the series listing.
	resp, data = get(t, ts.URL+"/v1/metrics/range")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	decodeInto(t, data, &mr)
	if !reflect.DeepEqual(mr.Series, []string{"server.inflight", "server.requests"}) {
		t.Fatalf("series = %v", mr.Series)
	}

	// Bad params are bad_request, not 500s.
	for _, q := range []string{"from=nope", "step=-5s", "from=2&to=1", "step=banana"} {
		resp, data = get(t, ts.URL+"/v1/metrics/range?name=x&"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d: %s", q, resp.StatusCode, data)
		}
	}
}

func TestSnapshotEndpointWritesBundle(t *testing.T) {
	dir := t.TempDir()
	st := openTelem(t, dir)
	_, ts := newTestServer(t, Options{SampleEvery: -1, Telemetry: st})

	// Prime the flight recorder with one real evaluation. RCP logs a
	// decision per scheduled step, so the tail is never empty here
	// (lpfs only logs refills/deadlocks, which a tiny program has none of).
	resp, data := postWithID(t, ts.URL+"/v1/compile", "prime-1", compileBody(tinySource, "rcp", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d: %s", resp.StatusCode, data)
	}

	resp, data = postWithID(t, ts.URL+"/v1/debug/snapshot", "snap-1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, data)
	}
	var sr SnapshotResponse
	decodeInto(t, data, &sr)
	if sr.Trigger != "manual" || sr.RequestID != "snap-1" || sr.Path == "" {
		t.Fatalf("snapshot response = %+v", sr)
	}
	b, err := telem.ReadBundle(sr.Path)
	if err != nil {
		t.Fatalf("ReadBundle(%s): %v", sr.Path, err)
	}
	if b.Trigger != "manual" || b.RequestID != "snap-1" || b.Service != "qschedd" {
		t.Fatalf("bundle header = %+v", b)
	}
	if filepath.Dir(sr.Path) != filepath.Join(dir, "postmortem") {
		t.Fatalf("bundle landed in %s, want under the telemetry dir", sr.Path)
	}
	// The ring (and so the bundle) carries the primed compile, spans,
	// decision tail and all — self-contained postmortem context.
	found := false
	for _, rec := range b.Recent {
		if rec.ID == "prime-1" {
			found = true
			if len(rec.Spans) == 0 {
				t.Fatalf("recorded request has no spans: %+v", rec)
			}
			if len(rec.Decisions) == 0 {
				t.Fatalf("recorded request has no decision tail: %+v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("bundle recent ring misses the primed request: %+v", b.Recent)
	}
	if len(b.State) == 0 || len(b.Metrics.Counters) == 0 {
		t.Fatal("bundle misses debug state or metrics snapshot")
	}
}

// waitForBundle polls the postmortem dir until a bundle with the given
// trigger appears.
func waitForBundle(t *testing.T, dir, trigger string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		paths, err := filepath.Glob(filepath.Join(dir, "postmortem", "pm-*-"+trigger+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) > 0 {
			return paths[len(paths)-1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q bundle appeared under %s", trigger, dir)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSlowRequestBundleReplaysAccessLogPhases is the acceptance path:
// a slow request auto-writes a postmortem bundle whose trace fragment
// replays into exactly the per-phase aggregation the access log showed.
func TestSlowRequestBundleReplaysAccessLogPhases(t *testing.T) {
	dir := t.TempDir()
	st := openTelem(t, dir)
	var buf syncBuffer
	_, ts := newTestServer(t, Options{
		SampleEvery:   -1,
		Telemetry:     st,
		AccessLog:     obs.NewAccessLog(&buf),
		SlowThreshold: time.Nanosecond, // every request is "slow"
	})

	resp, data := postWithID(t, ts.URL+"/v1/compile", "slow-1", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d: %s", resp.StatusCode, data)
	}
	entry := waitForEntry(t, &buf, "slow-1")
	if !entry.Slow || len(entry.Phases) == 0 {
		t.Fatalf("access entry not slow or phaseless: %+v", entry)
	}

	path := waitForBundle(t, dir, "slow")
	b, err := telem.ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger != "slow" || b.RequestID != "slow-1" || b.Request == nil {
		t.Fatalf("bundle header = %+v", b)
	}
	replayed := obs.AggregatePhases(b.RequestEvents("slow-1"), maxLogPhases)
	if len(replayed) == 0 || !reflect.DeepEqual(replayed, entry.Phases) {
		t.Fatalf("replayed phases = %+v\naccess log had %+v", replayed, entry.Phases)
	}
	// The fragment is a loadable trace: events carry the Perfetto
	// complete-span shape.
	if b.Trace.DisplayTimeUnit != "ms" || len(b.Trace.TraceEvents) == 0 {
		t.Fatalf("trace fragment = %+v", b.Trace)
	}
}

// TestAutoBundleRateLimit: back-to-back slow requests inside the gap
// produce exactly one automatic bundle.
func TestAutoBundleRateLimit(t *testing.T) {
	dir := t.TempDir()
	st := openTelem(t, dir)
	_, ts := newTestServer(t, Options{
		SampleEvery:   -1,
		Telemetry:     st,
		SlowThreshold: time.Nanosecond,
		BundleMinGap:  time.Hour,
	})
	for i := 0; i < 4; i++ {
		resp, data := postWithID(t, ts.URL+"/v1/compile", fmt.Sprintf("burst-%d", i), compileBody(tinySource, "lpfs", 2))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile status %d: %s", resp.StatusCode, data)
		}
	}
	waitForBundle(t, dir, "slow")
	paths, err := filepath.Glob(filepath.Join(dir, "postmortem", "pm-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("%d bundles inside the min gap, want 1: %v", len(paths), paths)
	}
}

// TestNoAutoSnapshot: with automatic bundles off, slow requests write
// nothing but POST /v1/debug/snapshot still works.
func TestNoAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	st := openTelem(t, dir)
	_, ts := newTestServer(t, Options{
		SampleEvery:    -1,
		Telemetry:      st,
		SlowThreshold:  time.Nanosecond,
		NoAutoSnapshot: true,
	})
	resp, data := postWithID(t, ts.URL+"/v1/compile", "quiet-1", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d: %s", resp.StatusCode, data)
	}
	if paths, _ := filepath.Glob(filepath.Join(dir, "postmortem", "pm-*.json")); len(paths) != 0 {
		t.Fatalf("auto bundle written despite NoAutoSnapshot: %v", paths)
	}
	resp, data = post(t, ts.URL+"/v1/debug/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manual snapshot status %d: %s", resp.StatusCode, data)
	}
}

// TestTelemetryRestartPersistence is the durability acceptance path: a
// second server over the same -telemetry-dir serves the first server's
// history from /v1/metrics/range and renders it on the dashboard.
func TestTelemetryRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()

	st1 := openTelem(t, dir)
	for i := 0; i < 10; i++ {
		st1.Append(now.Add(time.Duration(i-10)*time.Second), map[string]float64{
			"server.requests":          float64(100 + 7*i),
			"server.inflight":          float64(i % 3),
			"server.queued":            0,
			"runtime.heap_alloc_bytes": float64(20 << 20),
			"runtime.goroutines":       12,
			"server.latency_ms.p95":    8,
		})
	}
	_, ts1 := newTestServer(t, Options{SampleEvery: -1, Telemetry: st1})
	resp, data := get(t, ts1.URL+"/v1/metrics/range?name=server.requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart status %d: %s", resp.StatusCode, data)
	}
	var before MetricsRangeResponse
	decodeInto(t, data, &before)
	if len(before.Points) != 10 {
		t.Fatalf("pre-restart points = %+v", before.Points)
	}
	st1.Close() // SIGTERM path: seal the tail

	// "Reboot": fresh store and server over the same directory.
	st2 := openTelem(t, dir)
	_, ts2 := newTestServer(t, Options{SampleEvery: -1, Telemetry: st2})
	resp, data = get(t, fmt.Sprintf("%s/v1/metrics/range?name=server.requests&from=%d&to=%d",
		ts2.URL, before.FromMS, before.ToMS))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart status %d: %s", resp.StatusCode, data)
	}
	var after MetricsRangeResponse
	decodeInto(t, data, &after)
	if !reflect.DeepEqual(after.Points, before.Points) {
		t.Fatalf("history diverged across restart:\npre  %+v\npost %+v", before.Points, after.Points)
	}

	// The dashboard's sparklines rebuild from the same persisted store.
	resp, data = get(t, ts2.URL+"/v1/dashboard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	body := string(data)
	if !strings.Contains(body, "requests/s (last") {
		t.Fatalf("dashboard does not render the telemetry-backed trend:\n%.400s", body)
	}
	if !strings.Contains(body, "telemetry") {
		t.Fatal("dashboard misses the telemetry status rows")
	}

	// Debug state reports the store.
	resp, data = get(t, ts2.URL+"/v1/debug/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug state status %d", resp.StatusCode)
	}
	var ds DebugStateResponse
	decodeInto(t, data, &ds)
	if ds.Telemetry == nil || ds.Telemetry.Segments == 0 {
		t.Fatalf("debug state telemetry = %+v", ds.Telemetry)
	}
}

// TestTelemetryDisabledHotPathZeroAlloc guards the disabled path's
// cost: the exact branch the instrument middleware runs per request
// when telemetry is off must not allocate.
func TestTelemetryDisabledHotPathZeroAlloc(t *testing.T) {
	s := New(Options{SampleEvery: -1, SlowThreshold: -1})
	defer s.Close()
	if s.recorder != nil || s.telem != nil {
		t.Fatal("telemetry unexpectedly enabled")
	}
	info := &reqInfo{id: "x", endpoint: "healthz"}
	start := time.Now()
	if n := testing.AllocsPerRun(200, func() {
		if s.recorder != nil {
			s.recordRequest(info, nil, 200, start, time.Millisecond, false)
		}
	}); n != 0 {
		t.Fatalf("disabled telemetry branch allocated %.1f per run, want 0", n)
	}
}
