package server

import (
	"context"
	"net/http"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// reqInfo accumulates what one request did as it flows through the
// handlers, so the middleware can emit a single complete access-log
// entry after the response is written. The middleware creates it and
// stores it in the request context; handlers fill fields as facts
// become known. All writes happen on the request's handler goroutine
// (flight results are copied out after the flight completes), so no
// lock is needed.
type reqInfo struct {
	id       string
	endpoint string

	// Evaluation attribution, filled by Server.evaluate.
	role        string // "leader", "follower", "solo"
	leaderID    string // set on followers only
	fingerprint string
	key         string
	queueWaitMS float64
	evalMS      float64
	cache       *obs.AccessCache
	phases      []obs.PhaseSummary

	// Flight-recorder payload (filled only when telemetry is enabled):
	// the evaluation's raw spans and decision-log tail.
	spans     []obs.SpanEvent
	decisions []obs.Decision

	// Error context, filled by writeError.
	queueDepth int64 // admission queue depth at a 429
	errMsg     string
}

// reqInfoKey is the context key for the per-request info record.
type reqInfoKey struct{}

func withReqInfo(ctx context.Context, info *reqInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, info)
}

// reqInfoFrom returns the request's info record, or nil outside the
// instrumented handler chain (direct handler tests). Callers must
// nil-check.
func reqInfoFrom(ctx context.Context) *reqInfo {
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return info
}

// requestID is a convenience for handlers stamping response envelopes.
func requestID(r *http.Request) string {
	return obs.RequestID(r.Context())
}
