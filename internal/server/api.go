// Package server is the compile service behind cmd/qschedd: a
// long-running daemon exposing the pipeline over a versioned HTTP/JSON
// API. Every response carries a schema number; every error is a
// structured body, never bare text. Concurrent requests share one
// core.EvalCache, identical in-flight requests are coalesced into a
// single evaluation, and admission control bounds the work the daemon
// accepts at once.
package server

import (
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/request"
)

// SchemaVersion is stamped on every response envelope (success and
// error alike) so clients can detect contract drift.
const SchemaVersion = 1

// Error codes returned in ErrorBody.Code.
const (
	CodeBadRequest    = "bad_request"     // undecodable or oversized body
	CodeInvalid       = "invalid_request" // body decoded but failed validation
	CodeCompileFailed = "compile_failed"  // program build (parse/lower) failed
	CodeEvalFailed    = "evaluation_failed"
	CodeOverloaded    = "overloaded" // admission queue full; retry later
	CodeTimeout       = "timeout"    // evaluation exceeded the request deadline
	CodeShuttingDown  = "shutting_down"
)

// ErrorBody is the structured error payload.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Schema int       `json:"schema"`
	Error  ErrorBody `json:"error"`
}

// MetricsBody mirrors core.Metrics for the wire, denormalizing the
// derived speedups so responses are self-contained.
type MetricsBody struct {
	TotalGates     int64   `json:"total_gates"`
	MinQubits      int64   `json:"min_qubits"`
	Modules        int     `json:"modules"`
	Leaves         int     `json:"leaves"`
	CriticalPath   int64   `json:"critical_path"`
	ZeroCommSteps  int64   `json:"zero_comm_steps"`
	CommCycles     int64   `json:"comm_cycles"`
	GlobalMoves    int64   `json:"global_moves"`
	LocalMoves     int64   `json:"local_moves"`
	SeqCycles      int64   `json:"seq_cycles"`
	NaiveCycles    int64   `json:"naive_cycles"`
	SpeedupVsSeq   float64 `json:"speedup_vs_seq"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	CPSpeedup      float64 `json:"cp_speedup"`
}

func metricsBody(m *core.Metrics) MetricsBody {
	return MetricsBody{
		TotalGates:     m.TotalGates,
		MinQubits:      m.MinQubits,
		Modules:        m.Modules,
		Leaves:         m.Leaves,
		CriticalPath:   m.CriticalPath,
		ZeroCommSteps:  m.ZeroCommSteps,
		CommCycles:     m.CommCycles,
		GlobalMoves:    m.GlobalMoves,
		LocalMoves:     m.LocalMoves,
		SeqCycles:      m.SeqCycles,
		NaiveCycles:    m.NaiveCycles,
		SpeedupVsSeq:   m.SpeedupVsSeq(),
		SpeedupVsNaive: m.SpeedupVsNaive(),
		CPSpeedup:      m.CPSpeedup(),
	}
}

// CompileResponse answers POST /v1/compile. Request carries the
// normalized configuration the evaluation actually ran under (defaults
// applied), and Deduped reports whether this request was served by
// joining an identical in-flight evaluation.
type CompileResponse struct {
	Schema  int            `json:"schema"`
	Label   string         `json:"label"`
	Request request.Config `json:"request"`
	Deduped bool           `json:"deduped"`
	Metrics MetricsBody    `json:"metrics"`
}

// VerifyResponse answers POST /v1/verify: the same evaluation with the
// independent legality oracle forced on. Verified is always true on a
// 2xx — an illegal schedule is an evaluation_failed error.
type VerifyResponse struct {
	Schema   int            `json:"schema"`
	Label    string         `json:"label"`
	Request  request.Config `json:"request"`
	Deduped  bool           `json:"deduped"`
	Verified bool           `json:"verified"`
	Metrics  MetricsBody    `json:"metrics"`
}

// ScheduleRequest asks for the fine-grained schedule of one leaf
// module (the qsched -dump surface, as JSON). The embedded Config
// supplies the program and machine the same way /v1/compile takes them.
type ScheduleRequest struct {
	request.Config
	Module string `json:"module"`
}

// EPRBody summarizes the EPR pre-distribution plan of a leaf schedule.
type EPRBody struct {
	Bandwidth   int  `json:"bandwidth"`
	Latency     int  `json:"latency"`
	Pairs       int  `json:"pairs"`
	PreIssued   int  `json:"pre_issued"`
	MaxBuffered int  `json:"max_buffered"`
	MakespanOK  bool `json:"makespan_ok"`
}

// ScheduleResponse answers POST /v1/schedule. Text is the paper's
// timestep/region/move-list rendering of the schedule.
type ScheduleResponse struct {
	Schema       int     `json:"schema"`
	Module       string  `json:"module"`
	Ops          int     `json:"ops"`
	CriticalPath int     `json:"critical_path"`
	Steps        int     `json:"steps"`
	Cycles       int64   `json:"cycles"`
	GlobalMoves  int64   `json:"global_moves"`
	LocalMoves   int64   `json:"local_moves"`
	EPR          EPRBody `json:"epr"`
	Text         string  `json:"text"`
}

// HealthResponse answers GET /v1/healthz.
type HealthResponse struct {
	Schema   int             `json:"schema"`
	Status   string          `json:"status"` // "ok" or "draining"
	Inflight int             `json:"inflight"`
	Queued   int64           `json:"queued"`
	Cache    core.CacheStats `json:"cache"`
}

// VersionResponse answers GET /v1/version.
type VersionResponse struct {
	Schema     int      `json:"schema"`
	Service    string   `json:"service"`
	API        string   `json:"api"`
	GoVersion  string   `json:"go"`
	Schedulers []string `json:"schedulers"`
	Benchmarks []string `json:"benchmarks"`
}
