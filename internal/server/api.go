// Package server is the compile service behind cmd/qschedd: a
// long-running daemon exposing the pipeline over a versioned HTTP/JSON
// API. Every response carries a schema number; every error is a
// structured body, never bare text. Concurrent requests share one
// core.EvalCache, identical in-flight requests are coalesced into a
// single evaluation, and admission control bounds the work the daemon
// accepts at once.
package server

import (
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
	"github.com/scaffold-go/multisimd/internal/request"
)

// SchemaVersion is stamped on every response envelope (success and
// error alike) so clients can detect contract drift.
const SchemaVersion = 1

// Error codes returned in ErrorBody.Code.
const (
	CodeBadRequest    = "bad_request"     // undecodable or oversized body
	CodeInvalid       = "invalid_request" // body decoded but failed validation
	CodeCompileFailed = "compile_failed"  // program build (parse/lower) failed
	CodeEvalFailed    = "evaluation_failed"
	CodeOverloaded    = "overloaded" // admission queue full; retry later
	CodeTimeout       = "timeout"    // evaluation exceeded the request deadline
	CodeShuttingDown  = "shutting_down"
	// CodeTelemetryOff answers the telemetry endpoints when the server
	// runs without a telemetry store (-telemetry-dir unset).
	CodeTelemetryOff = "telemetry_disabled"
	// CodeSnapshotFailed marks a postmortem bundle that could not be
	// written (disk full, permissions).
	CodeSnapshotFailed = "snapshot_failed"
)

// ErrorBody is the structured error payload. QueueDepth is set on
// overloaded (429) responses only: the admission queue depth observed
// at rejection, so clients and operators see how far behind the server
// was.
type ErrorBody struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	QueueDepth int64  `json:"queue_depth,omitempty"`
}

// ErrorResponse is the envelope every non-2xx response carries.
// RequestID echoes the request's X-Request-ID (accepted or generated),
// matching the access-log line for the same request.
type ErrorResponse struct {
	Schema    int       `json:"schema"`
	RequestID string    `json:"request_id,omitempty"`
	Error     ErrorBody `json:"error"`
}

// MetricsBody mirrors core.Metrics for the wire, denormalizing the
// derived speedups so responses are self-contained.
type MetricsBody struct {
	TotalGates     int64   `json:"total_gates"`
	MinQubits      int64   `json:"min_qubits"`
	Modules        int     `json:"modules"`
	Leaves         int     `json:"leaves"`
	CriticalPath   int64   `json:"critical_path"`
	ZeroCommSteps  int64   `json:"zero_comm_steps"`
	CommCycles     int64   `json:"comm_cycles"`
	GlobalMoves    int64   `json:"global_moves"`
	LocalMoves     int64   `json:"local_moves"`
	SeqCycles      int64   `json:"seq_cycles"`
	NaiveCycles    int64   `json:"naive_cycles"`
	SpeedupVsSeq   float64 `json:"speedup_vs_seq"`
	SpeedupVsNaive float64 `json:"speedup_vs_naive"`
	CPSpeedup      float64 `json:"cp_speedup"`
}

func metricsBody(m *core.Metrics) MetricsBody {
	return MetricsBody{
		TotalGates:     m.TotalGates,
		MinQubits:      m.MinQubits,
		Modules:        m.Modules,
		Leaves:         m.Leaves,
		CriticalPath:   m.CriticalPath,
		ZeroCommSteps:  m.ZeroCommSteps,
		CommCycles:     m.CommCycles,
		GlobalMoves:    m.GlobalMoves,
		LocalMoves:     m.LocalMoves,
		SeqCycles:      m.SeqCycles,
		NaiveCycles:    m.NaiveCycles,
		SpeedupVsSeq:   m.SpeedupVsSeq(),
		SpeedupVsNaive: m.SpeedupVsNaive(),
		CPSpeedup:      m.CPSpeedup(),
	}
}

// CompileResponse answers POST /v1/compile. Request carries the
// normalized configuration the evaluation actually ran under (defaults
// applied), and Deduped reports whether this request was served by
// joining an identical in-flight evaluation.
type CompileResponse struct {
	Schema    int            `json:"schema"`
	RequestID string         `json:"request_id,omitempty"`
	Label     string         `json:"label"`
	Request   request.Config `json:"request"`
	Deduped   bool           `json:"deduped"`
	Metrics   MetricsBody    `json:"metrics"`
}

// VerifyResponse answers POST /v1/verify: the same evaluation with the
// independent legality oracle forced on. Verified is always true on a
// 2xx — an illegal schedule is an evaluation_failed error.
type VerifyResponse struct {
	Schema    int            `json:"schema"`
	RequestID string         `json:"request_id,omitempty"`
	Label     string         `json:"label"`
	Request   request.Config `json:"request"`
	Deduped   bool           `json:"deduped"`
	Verified  bool           `json:"verified"`
	Metrics   MetricsBody    `json:"metrics"`
}

// ScheduleRequest asks for the fine-grained schedule of one leaf
// module (the qsched -dump surface, as JSON). The embedded Config
// supplies the program and machine the same way /v1/compile takes them.
type ScheduleRequest struct {
	request.Config
	Module string `json:"module"`
}

// EPRBody summarizes the EPR pre-distribution plan of a leaf schedule.
type EPRBody struct {
	Bandwidth   int  `json:"bandwidth"`
	Latency     int  `json:"latency"`
	Pairs       int  `json:"pairs"`
	PreIssued   int  `json:"pre_issued"`
	MaxBuffered int  `json:"max_buffered"`
	MakespanOK  bool `json:"makespan_ok"`
}

// ScheduleResponse answers POST /v1/schedule. Text is the paper's
// timestep/region/move-list rendering of the schedule.
type ScheduleResponse struct {
	Schema       int     `json:"schema"`
	RequestID    string  `json:"request_id,omitempty"`
	Module       string  `json:"module"`
	Ops          int     `json:"ops"`
	CriticalPath int     `json:"critical_path"`
	Steps        int     `json:"steps"`
	Cycles       int64   `json:"cycles"`
	GlobalMoves  int64   `json:"global_moves"`
	LocalMoves   int64   `json:"local_moves"`
	EPR          EPRBody `json:"epr"`
	Text         string  `json:"text"`
}

// HealthResponse answers GET /v1/healthz.
type HealthResponse struct {
	Schema   int             `json:"schema"`
	Status   string          `json:"status"` // "ok" or "draining"
	Inflight int             `json:"inflight"`
	Queued   int64           `json:"queued"`
	Cache    core.CacheStats `json:"cache"`
}

// VersionResponse answers GET /v1/version.
type VersionResponse struct {
	Schema     int      `json:"schema"`
	Service    string   `json:"service"`
	API        string   `json:"api"`
	GoVersion  string   `json:"go"`
	Schedulers []string `json:"schedulers"`
	Benchmarks []string `json:"benchmarks"`
}

// DebugSchemaVersion versions the /v1/debug/state contract
// independently of the request/response schema: the snapshot evolves
// with the server's internals, not with the compile API.
const DebugSchemaVersion = 1

// FlightState is one in-flight deduplicated evaluation.
type FlightState struct {
	// Key is the full dedup identity (program fingerprint + config).
	Key string `json:"key"`
	// AgeMS is how long the flight has been running.
	AgeMS float64 `json:"age_ms"`
	// Waiters counts requests currently attached (leader included).
	Waiters int `json:"waiters"`
	// LeaderID is the request id that started the flight.
	LeaderID string `json:"leader_id,omitempty"`
}

// RuntimeState is the latest runtime-sampler snapshot (zero when the
// sampler is disabled).
type RuntimeState struct {
	Goroutines     int64 `json:"goroutines"`
	HeapAllocBytes int64 `json:"heap_alloc_bytes"`
	HeapSysBytes   int64 `json:"heap_sys_bytes"`
	GCCount        int64 `json:"gc_count"`
	GCPauseTotalNS int64 `json:"gc_pause_total_ns"`
	GCPauseLastNS  int64 `json:"gc_pause_last_ns"`
}

// SlowRequest is one entry of the recent-slow ring: a request whose
// wall time met the server's slow threshold.
type SlowRequest struct {
	ID       string  `json:"id"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	DurMS    float64 `json:"dur_ms"`
	Time     string  `json:"ts"`
}

// DebugStateResponse answers GET /v1/debug/state: a point-in-time
// snapshot of what the server is doing right now — the live flight
// table, admission state, cache totals, runtime health and recent slow
// requests.
type DebugStateResponse struct {
	Schema    int     `json:"schema"`
	RequestID string  `json:"request_id,omitempty"`
	Status    string  `json:"status"` // "ok" or "draining"
	UptimeMS  float64 `json:"uptime_ms"`

	MaxInflight int   `json:"max_inflight"`
	Inflight    int   `json:"inflight"`
	QueueDepth  int64 `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`

	Flights      []FlightState   `json:"flights"`
	Cache        core.CacheStats `json:"cache"`
	Runtime      RuntimeState    `json:"runtime"`
	SlowRequests []SlowRequest   `json:"slow_requests"`

	// Telemetry is the persistent store's occupancy and maintenance
	// counters; nil when the server runs without -telemetry-dir.
	Telemetry *telem.Stats `json:"telemetry,omitempty"`
}

// TelemetrySchemaVersion versions the /v1/metrics/range and
// /v1/debug/snapshot contracts, independently of the compile API and
// of the on-disk segment/bundle schemas.
const TelemetrySchemaVersion = 1

// MetricsRangeResponse answers GET /v1/metrics/range. With a name, it
// carries that series' points inside [from, to] folded onto the step
// grid; without one, it lists every series the store knows.
type MetricsRangeResponse struct {
	Schema    int    `json:"schema"`
	RequestID string `json:"request_id,omitempty"`

	Name   string `json:"name,omitempty"`
	FromMS int64  `json:"from_ms"`
	ToMS   int64  `json:"to_ms"`
	StepMS int64  `json:"step_ms,omitempty"`
	// Points is never null: an empty range is []. On a series listing
	// (no name) it is [] and Series carries the names.
	Points []telem.Point `json:"points"`
	Series []string      `json:"series,omitempty"`
}

// SnapshotResponse answers POST /v1/debug/snapshot: where the manual
// postmortem bundle landed.
type SnapshotResponse struct {
	Schema    int    `json:"schema"`
	RequestID string `json:"request_id,omitempty"`
	Trigger   string `json:"trigger"`
	Path      string `json:"path"`
	// Requests is how many flight-recorder records the bundle carries.
	Requests int `json:"requests"`
}
