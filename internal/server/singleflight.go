package server

import (
	"context"
	"sync"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// flight is one in-progress evaluation shared by every request that
// asked for the same dedup key. The work runs under its own context;
// that context is cancelled the moment the last interested request
// walks away, so abandoned work actually stops.
type flight struct {
	done    chan struct{} // closed when the work function returns
	cancel  context.CancelFunc
	waiters int
	shared  bool // a second waiter joined at some point
	start   time.Time
	// leaderID is the request id of the caller that started the flight;
	// followers log it so one evaluation's fan-in is reconstructible
	// from access logs alone.
	leaderID string
	val      any
	err      error
}

// flightGroup coalesces concurrent requests carrying identical dedup
// keys into one evaluation. Unlike the classic singleflight pattern,
// waiters are refcounted: a request whose context ends leaves the
// flight, and when the count hits zero the work context is cancelled
// and the key retired so later arrivals start fresh instead of joining
// doomed work.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// do returns fn's result for key, joining an identical in-flight call
// when one exists. joined reports whether this call was deduplicated
// onto an existing flight; leaderID is the id of the request that
// started the flight (this caller's own id when it is the leader);
// shared reports whether the flight served more than one request. fn
// runs on a context derived from base (the server's lifetime), not from
// ctx: one caller leaving must not kill work other callers still wait
// on.
func (g *flightGroup) do(ctx, base context.Context, key string, fn func(context.Context) (any, error)) (val any, joined bool, leaderID string, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		f.shared = true
		g.mu.Unlock()
		return g.wait(ctx, key, f, true)
	}
	workCtx, cancel := context.WithCancel(base)
	// The leader's request id rides the work context too, so engine
	// spans and decision logs attribute to the request that actually
	// ran the evaluation.
	workCtx = obs.WithRequestID(workCtx, obs.RequestID(ctx))
	f := &flight{
		done: make(chan struct{}), cancel: cancel, waiters: 1,
		start: time.Now(), leaderID: obs.RequestID(ctx),
	}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn(workCtx)
		g.mu.Lock()
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or the caller's context ends,
// whichever comes first, maintaining the waiter refcount.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight, joined bool) (any, bool, string, bool, error) {
	select {
	case <-f.done:
		g.mu.Lock()
		shared := f.shared
		g.mu.Unlock()
		return f.val, joined, f.leaderID, shared, f.err
	case <-ctx.Done():
	}
	g.mu.Lock()
	f.waiters--
	abandoned := f.waiters == 0
	if abandoned && g.flights[key] == f {
		// Nobody is listening anymore: retire the key so new arrivals
		// start fresh work rather than joining a cancelled flight.
		delete(g.flights, key)
	}
	shared := f.shared
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
	return nil, joined, f.leaderID, shared, ctx.Err()
}

// flightInfo is one in-flight evaluation's public state, the
// /v1/debug/state view of the flight table.
type flightInfo struct {
	key      string
	age      time.Duration
	waiters  int
	leaderID string
}

// snapshot copies the current flight table (unordered).
func (g *flightGroup) snapshot() []flightInfo {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]flightInfo, 0, len(g.flights))
	for key, f := range g.flights {
		out = append(out, flightInfo{
			key: key, age: now.Sub(f.start),
			waiters: f.waiters, leaderID: f.leaderID,
		})
	}
	return out
}
