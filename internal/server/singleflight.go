package server

import (
	"context"
	"sync"
)

// flight is one in-progress evaluation shared by every request that
// asked for the same dedup key. The work runs under its own context;
// that context is cancelled the moment the last interested request
// walks away, so abandoned work actually stops.
type flight struct {
	done    chan struct{} // closed when the work function returns
	cancel  context.CancelFunc
	waiters int
	val     any
	err     error
}

// flightGroup coalesces concurrent requests carrying identical dedup
// keys into one evaluation. Unlike the classic singleflight pattern,
// waiters are refcounted: a request whose context ends leaves the
// flight, and when the count hits zero the work context is cancelled
// and the key retired so later arrivals start fresh instead of joining
// doomed work.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// do returns fn's result for key, joining an identical in-flight call
// when one exists. The boolean reports whether this call was
// deduplicated onto an existing flight. fn runs on a context derived
// from base (the server's lifetime), not from ctx: one caller leaving
// must not kill work other callers still wait on.
func (g *flightGroup) do(ctx, base context.Context, key string, fn func(context.Context) (any, error)) (any, bool, error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, f, true)
	}
	workCtx, cancel := context.WithCancel(base)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn(workCtx)
		g.mu.Lock()
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or the caller's context ends,
// whichever comes first, maintaining the waiter refcount.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight, joined bool) (any, bool, error) {
	select {
	case <-f.done:
		return f.val, joined, f.err
	case <-ctx.Done():
	}
	g.mu.Lock()
	f.waiters--
	abandoned := f.waiters == 0
	if abandoned && g.flights[key] == f {
		// Nobody is listening anymore: retire the key so new arrivals
		// start fresh work rather than joining a cancelled flight.
		delete(g.flights, key)
	}
	g.mu.Unlock()
	if abandoned {
		f.cancel()
	}
	return nil, joined, ctx.Err()
}
