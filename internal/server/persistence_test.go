package server

import (
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs"
)

// TestConcurrentLeaderCacheAttribution is the attribution regression
// test: two concurrent, non-identical leaders share one cache, and the
// per-request cache deltas in their access-log entries must sum EXACTLY
// to the shared cache's global delta. The old implementation read
// global counters around each evaluation, so concurrent flights bled
// traffic into each other's logs. Run under -race this also exercises
// the recorder's atomics against the striped cache.
func TestConcurrentLeaderCacheAttribution(t *testing.T) {
	g := newGated("gated-attr")
	var buf syncBuffer
	s, ts := newTestServer(t, Options{AccessLog: obs.NewAccessLog(&buf)})

	// Non-identical programs that still share their first three leaves,
	// so the two flights race on overlapping cache keys.
	bodyA := rawBody(manyLeafSource(3), g.name, 2)
	bodyB := rawBody(manyLeafSource(5), g.name, 2)

	before := s.Cache().Stats()
	var wg sync.WaitGroup
	status := make([]int, 2)
	for i, b := range []struct{ id, body string }{
		{"leader-a", bodyA},
		{"leader-b", bodyB},
	} {
		wg.Add(1)
		go func(i int, id, body string) {
			defer wg.Done()
			resp, _ := postWithID(t, ts.URL+"/v1/compile", id, body)
			status[i] = resp.StatusCode
		}(i, b.id, b.body)
	}
	// Both flights must be in the air — blocked on the gate — before
	// either is released, or the test degenerates to sequential runs.
	deadline := time.Now().Add(15 * time.Second)
	for len(s.flights.snapshot()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second flight never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(g.release)
	wg.Wait()
	for i, code := range status {
		if code != http.StatusOK {
			t.Fatalf("leader %d finished with status %d", i, code)
		}
	}

	ea := waitForEntry(t, &buf, "leader-a")
	eb := waitForEntry(t, &buf, "leader-b")
	if ea.Cache == nil || eb.Cache == nil {
		t.Fatalf("cache blocks missing: a=%+v b=%+v", ea.Cache, eb.Cache)
	}
	global := s.Cache().Stats().Sub(before)
	sum := obs.AccessCache{
		CommHits:    ea.Cache.CommHits + eb.Cache.CommHits,
		CommMisses:  ea.Cache.CommMisses + eb.Cache.CommMisses,
		SchedHits:   ea.Cache.SchedHits + eb.Cache.SchedHits,
		SchedMisses: ea.Cache.SchedMisses + eb.Cache.SchedMisses,
		DiskHits:    ea.Cache.DiskHits + eb.Cache.DiskHits,
		DiskMisses:  ea.Cache.DiskMisses + eb.Cache.DiskMisses,
	}
	want := obs.AccessCache{
		CommHits:    global.CommHits,
		CommMisses:  global.CommMisses,
		SchedHits:   global.SchedHits,
		SchedMisses: global.SchedMisses,
		DiskHits:    global.DiskHits,
		DiskMisses:  global.DiskMisses,
	}
	if !reflect.DeepEqual(sum, want) {
		t.Errorf("per-request deltas do not sum to the global delta:\n a=%+v\n b=%+v\n sum=%+v\n global=%+v",
			*ea.Cache, *eb.Cache, sum, want)
	}
	if sum.SchedMisses == 0 {
		t.Error("no schedule misses recorded across two cold leaders")
	}
}

// TestDrainTrackerRate pins the rate estimator on synthetic timestamps.
func TestDrainTrackerRate(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var d drainTracker
	if got := d.rate(now); got != 0 {
		t.Errorf("empty tracker rate = %v, want 0", got)
	}
	d.note(now.Add(-time.Second))
	if got := d.rate(now); got != 0 {
		t.Errorf("single-sample rate = %v, want 0", got)
	}
	// 10 completions over the last 10 seconds ≈ 1/s.
	d = drainTracker{}
	for i := 10; i >= 1; i-- {
		d.note(now.Add(-time.Duration(i) * time.Second))
	}
	if got := d.rate(now); got < 0.9 || got > 1.1 {
		t.Errorf("rate = %v, want ~1/s", got)
	}
	// Samples beyond the window are ignored.
	d = drainTracker{}
	d.note(now.Add(-drainWindow - time.Hour))
	d.note(now.Add(-drainWindow - time.Minute))
	if got := d.rate(now); got != 0 {
		t.Errorf("stale-sample rate = %v, want 0", got)
	}
}

// TestRetryAfterBounds: no signal floors at 1s; a slow drain against a
// deep queue is capped at 30s; a healthy drain prices proportionally.
func TestRetryAfterBounds(t *testing.T) {
	s := New(Options{MaxInflight: 1})
	defer s.Close()
	if got := s.retryAfterSecs(); got != 1 {
		t.Errorf("cold server Retry-After = %d, want 1", got)
	}
	// ~2 completions/second observed, 9 queued → ceil(10/2) = 5s.
	now := time.Now()
	for i := 20; i >= 1; i-- {
		s.drains.note(now.Add(-time.Duration(i) * 500 * time.Millisecond))
	}
	s.queued.Store(9)
	if got := s.retryAfterSecs(); got < 4 || got > 6 {
		t.Errorf("Retry-After = %d, want ~5", got)
	}
	// Glacial drain: 2 completions a minute apart, queue of 100 → cap.
	s2 := New(Options{MaxInflight: 1})
	defer s2.Close()
	s2.drains.note(now.Add(-90 * time.Second))
	s2.drains.note(now.Add(-30 * time.Second))
	s2.queued.Store(100)
	if got := s2.retryAfterSecs(); got != retryAfterMax {
		t.Errorf("Retry-After = %d, want cap %d", got, retryAfterMax)
	}
}

// TestServerRestartServesFromDisk is the warm-restart story end to end
// at the package level (CI repeats it against the real daemon): a
// compile served by one server process survives into a fresh server
// over the same cache directory, which answers the repeat request from
// the disk layer with identical metrics and zero recomputation.
func TestServerRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	body := compileBody(tinySource, "lpfs", 2)

	cache1, err := core.OpenEvalCache(core.CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Options{Cache: cache1})
	resp, data := post(t, ts1.URL+"/v1/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming compile: %d: %s", resp.StatusCode, data)
	}
	var first CompileResponse
	decodeInto(t, data, &first)
	if st := s1.Cache().Stats(); st.DiskWrites == 0 {
		t.Fatalf("no write-through persistence happened: %+v", st)
	}
	ts1.Close()
	cache1.Close()

	cache2, err := core.OpenEvalCache(core.CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Options{Cache: cache2})
	resp, data = post(t, ts2.URL+"/v1/compile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat compile: %d: %s", resp.StatusCode, data)
	}
	var second CompileResponse
	decodeInto(t, data, &second)
	if !reflect.DeepEqual(first.Metrics, second.Metrics) {
		t.Errorf("metrics changed across restart:\n first=%+v\n second=%+v", first.Metrics, second.Metrics)
	}

	st := s2.Cache().Stats()
	if st.DiskHits == 0 {
		t.Errorf("repeat request not served from the disk layer: %+v", st)
	}
	if st.CommMisses != 0 || st.SchedMisses != 0 {
		t.Errorf("restart recomputed work a disk hit should have saved: %+v", st)
	}

	// The debug endpoint surfaces the same disk-layer stats.
	resp, data = get(t, ts2.URL+"/v1/debug/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug state: %d", resp.StatusCode)
	}
	var ds DebugStateResponse
	decodeInto(t, data, &ds)
	if ds.Cache.DiskHits == 0 || ds.Cache.DiskEntries == 0 {
		t.Errorf("debug state hides the disk layer: %+v", ds.Cache)
	}
}
