package server

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/request"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// TestCompileMatchesInProcessEngine is the service-side determinism
// property: soak-generated programs submitted to /v1/compile produce
// exactly the metrics the in-process engine computes for the same
// request.Config — the daemon adds transport, dedup and caching but
// never changes a result. Configs rotate across schedulers, machine
// shapes and communication models; every failure logs the seed and a
// replay hint.
func TestCompileMatchesInProcessEngine(t *testing.T) {
	const trials = 8
	_, ts := newTestServer(t, Options{})

	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		gen := verify.ProgramGenOptions{Loops: true, Wide: trial%2 == 1, Measure: trial%3 == 2}
		p := verify.RandomProgram(rand.New(rand.NewSource(seed)), gen)
		src, err := verify.ProgramScaffold(p)
		if err != nil {
			t.Fatalf("trial %d seed %d: scaffold: %v", trial, seed, err)
		}

		cfg := request.Config{
			Source:    src,
			Scheduler: []string{"lpfs", "rcp"}[trial%2],
			K:         []int{2, 4, 8}[trial%3],
			D:         []int{0, 0, 2, 4}[trial%4],
			Local:     []int{0, 2, -1}[trial%3],
			NoOverlap: trial%5 == 3,
			Verify:    true,
		}.WithDefaults()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d seed %d: config: %v", trial, seed, err)
		}

		// In-process reference: same Config, same Build + Evaluate path.
		prog, err := cfg.Build(nil)
		if err != nil {
			t.Fatalf("trial %d seed %d: build: %v", trial, seed, err)
		}
		eopts, err := cfg.EvalOptions()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(prog, eopts)
		if err != nil {
			t.Fatalf("trial %d seed %d: evaluate: %v", trial, seed, err)
		}

		body, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp, data := post(t, ts.URL+"/v1/compile", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d seed %d: /v1/compile: %d %s\nreplay: verify.RandomProgram(rand.New(rand.NewSource(%d)), %+v)",
				trial, seed, resp.StatusCode, data, seed, gen)
		}
		var cr CompileResponse
		decodeInto(t, data, &cr)
		if !reflect.DeepEqual(cr.Metrics, metricsBody(want)) {
			t.Errorf("trial %d seed %d (%s k=%d d=%d local=%d): service metrics diverge from engine\n service: %+v\n engine:  %+v\nreplay: verify.RandomProgram(rand.New(rand.NewSource(%d)), %+v)",
				trial, seed, cfg.Scheduler, cfg.K, cfg.D, cfg.Local, cr.Metrics, metricsBody(want), seed, gen)
		}

		// Resubmitting the identical request must return identical
		// metrics (warm daemon cache vs cold).
		resp2, data2 := post(t, ts.URL+"/v1/compile", string(body))
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("trial %d seed %d: warm resubmit: %d %s", trial, seed, resp2.StatusCode, data2)
		}
		var cr2 CompileResponse
		decodeInto(t, data2, &cr2)
		if !reflect.DeepEqual(cr2.Metrics, cr.Metrics) {
			t.Errorf("trial %d seed %d: warm resubmit metrics diverge:\n cold: %+v\n warm: %+v", trial, seed, cr.Metrics, cr2.Metrics)
		}
	}
}
