package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the access log writes
// entries after the response has been flushed to the client, so tests
// must synchronize their reads against the middleware's writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) entries(t *testing.T) []obs.AccessEntry {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []obs.AccessEntry
	for _, line := range strings.Split(b.buf.String(), "\n") {
		if line == "" {
			continue
		}
		var e obs.AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access log line not JSON: %v: %s", err, line)
		}
		out = append(out, e)
	}
	return out
}

// waitForEntry polls until the access log holds an entry with the given
// request id (the middleware logs after the client sees the response).
func waitForEntry(t *testing.T, b *syncBuffer, id string) obs.AccessEntry {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, e := range b.entries(t) {
			if e.ID == id {
				return e
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access-log entry for id %q", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// postWithID posts body with an explicit X-Request-ID header.
func postWithID(t *testing.T, url, id, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRequestIDEndToEnd is the acceptance path: one compile with
// X-Request-ID: demo produces the same id in the response header and
// envelope, one access-log line carrying it, and — with the slow
// threshold forced to zero distance — the per-phase span breakdown.
func TestRequestIDEndToEnd(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Options{
		AccessLog:     obs.NewAccessLog(&buf),
		SlowThreshold: time.Nanosecond, // every request is "slow"
	})

	resp, data := postWithID(t, ts.URL+"/v1/compile", "demo", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "demo" {
		t.Errorf("response header id %q, want demo", got)
	}
	var cr CompileResponse
	decodeInto(t, data, &cr)
	if cr.RequestID != "demo" {
		t.Errorf("envelope request_id %q, want demo", cr.RequestID)
	}

	e := waitForEntry(t, &buf, "demo")
	if e.Endpoint != "compile" || e.Method != "POST" || e.Path != "/v1/compile" || e.Status != 200 {
		t.Errorf("entry basics wrong: %+v", e)
	}
	if e.Role != "solo" {
		t.Errorf("role %q, want solo", e.Role)
	}
	if e.Fingerprint == "" || e.Key == "" || !strings.Contains(e.Key, e.Fingerprint) {
		t.Errorf("fingerprint/key missing or inconsistent: fp=%q key=%q", e.Fingerprint, e.Key)
	}
	if e.Bytes == 0 || e.DurMS <= 0 || e.EvalMS <= 0 {
		t.Errorf("sizes/timings missing: bytes=%d dur=%v eval=%v", e.Bytes, e.DurMS, e.EvalMS)
	}
	if e.Cache == nil || e.Cache.SchedMisses == 0 {
		t.Errorf("cold compile's cache traffic missing: %+v", e.Cache)
	}
	if !e.Slow || len(e.Phases) == 0 {
		t.Fatalf("slow request lacks phase dump: slow=%v phases=%v", e.Slow, e.Phases)
	}
	hasEngine := false
	for _, p := range e.Phases {
		if p.Cat == "engine" && p.MS > 0 {
			hasEngine = true
		}
	}
	if !hasEngine {
		t.Errorf("phase dump has no engine span: %+v", e.Phases)
	}

	// A generated id: no header supplied, one is minted and echoed.
	resp, data = post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr2 CompileResponse
	decodeInto(t, data, &cr2)
	if cr2.RequestID == "" || cr2.RequestID == "demo" {
		t.Errorf("generated request_id %q", cr2.RequestID)
	}
	if got := resp.Header.Get("X-Request-ID"); got != cr2.RequestID {
		t.Errorf("header id %q != envelope id %q", got, cr2.RequestID)
	}
	// The warm repeat serves straight from the comm cache.
	e2 := waitForEntry(t, &buf, cr2.RequestID)
	if e2.Role != "solo" || e2.Cache == nil || e2.Cache.CommHits == 0 {
		t.Errorf("warm repeat entry: %+v cache=%+v", e2, e2.Cache)
	}
}

// TestFollowerInheritsLeaderEvaluation: a deduplicated request logs its
// own id, the follower role, and the leader's id — while inheriting the
// leader's evaluation stats.
func TestFollowerInheritsLeaderEvaluation(t *testing.T) {
	g := newGated("gated-follower")
	var buf syncBuffer
	s, ts := newTestServer(t, Options{AccessLog: obs.NewAccessLog(&buf)})
	body := rawBody(manyLeafSource(4), g.name, 2)

	type result struct {
		id      string
		deduped bool
		status  int
	}
	results := make(chan result, 2)
	launch := func(id string) {
		go func() {
			resp, data := postWithID(t, ts.URL+"/v1/compile", id, body)
			var cr CompileResponse
			_ = json.Unmarshal(data, &cr)
			results <- result{id, cr.Deduped, resp.StatusCode}
		}()
	}
	launch("req-a")
	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("leader evaluation never started")
	}
	launch("req-b")
	// Wait for the second request to join the flight before releasing.
	deadline := time.Now().Add(15 * time.Second)
	for {
		s.flights.mu.Lock()
		waiters := 0
		for _, f := range s.flights.flights {
			waiters = f.waiters
		}
		s.flights.mu.Unlock()
		if waiters == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(g.release)

	var leaderID, followerID string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("request %s: status %d", r.id, r.status)
		}
		if r.deduped {
			followerID = r.id
		} else {
			leaderID = r.id
		}
	}
	if leaderID == "" || followerID == "" {
		t.Fatalf("no leader/follower split: leader=%q follower=%q", leaderID, followerID)
	}

	le := waitForEntry(t, &buf, leaderID)
	fe := waitForEntry(t, &buf, followerID)
	if le.Role != "leader" || le.LeaderID != "" {
		t.Errorf("leader entry role=%q leader_id=%q, want leader/\"\"", le.Role, le.LeaderID)
	}
	if fe.Role != "follower" || fe.LeaderID != leaderID {
		t.Errorf("follower entry role=%q leader_id=%q, want follower/%q", fe.Role, fe.LeaderID, leaderID)
	}
	if fe.ID == le.ID {
		t.Error("follower logged the leader's id as its own")
	}
	if fe.EvalMS != le.EvalMS || fe.EvalMS <= 0 {
		t.Errorf("follower did not inherit the leader's evaluation wall: leader=%v follower=%v", le.EvalMS, fe.EvalMS)
	}
	if fe.Key != le.Key {
		t.Errorf("keys differ: %q vs %q", le.Key, fe.Key)
	}
}

// TestOverloadCarriesIDAndQueueDepth: a 429 rejection echoes the
// request id and reports the admission queue depth it observed.
func TestOverloadCarriesIDAndQueueDepth(t *testing.T) {
	g := newGated("gated-overload")
	var buf syncBuffer
	_, ts := newTestServer(t, Options{
		MaxInflight: 1, MaxQueue: 1,
		AccessLog: obs.NewAccessLog(&buf),
	})

	// First request holds the only slot; second fills the queue; the
	// third is rejected with the queue's depth in the envelope.
	done := make(chan int, 2)
	hold := func(src string) {
		go func() {
			resp, _ := post(t, ts.URL+"/v1/compile", rawBody(src, g.name, 2))
			done <- resp.StatusCode
		}()
	}
	hold(manyLeafSource(3))
	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("slot-holding evaluation never started")
	}
	hold(manyLeafSource(4))
	// Wait until the second request is actually queued.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, data := get(t, ts.URL+"/v1/healthz")
		var h HealthResponse
		decodeInto(t, data, &h)
		resp.Body.Close()
		if h.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, data := postWithID(t, ts.URL+"/v1/compile", "reject-me", rawBody(manyLeafSource(5), "lpfs", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	var e ErrorResponse
	decodeInto(t, data, &e)
	if e.RequestID != "reject-me" {
		t.Errorf("429 envelope request_id %q, want reject-me", e.RequestID)
	}
	if e.Error.Code != CodeOverloaded || e.Error.QueueDepth != 1 {
		t.Errorf("429 body %+v, want overloaded with queue_depth 1", e.Error)
	}
	le := waitForEntry(t, &buf, "reject-me")
	if le.Status != http.StatusTooManyRequests || le.QueueDepth != 1 || le.Err == "" {
		t.Errorf("429 access entry %+v", le)
	}

	close(g.release)
	for i := 0; i < 2; i++ {
		if status := <-done; status != http.StatusOK {
			t.Errorf("held request finished with %d", status)
		}
	}
}

// TestAccessLogSchema pins the access-log field set: required keys are
// always present, and nothing outside the documented schema appears.
// New fields must be added to the allowed set deliberately.
func TestAccessLogSchema(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Options{AccessLog: obs.NewAccessLog(&buf)})
	if resp, data := postWithID(t, ts.URL+"/v1/compile", "schema-check", compileBody(tinySource, "lpfs", 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	waitForEntry(t, &buf, "schema-check")

	buf.mu.Lock()
	raw := buf.buf.String()
	buf.mu.Unlock()
	line := strings.Split(strings.TrimSpace(raw), "\n")[0]
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("entry not JSON: %v", err)
	}

	required := []string{"ts", "id", "endpoint", "method", "path", "status", "bytes", "dur_ms"}
	for _, k := range required {
		if _, ok := m[k]; !ok {
			t.Errorf("required key %q missing from %s", k, line)
		}
	}
	allowed := map[string]bool{
		"ts": true, "id": true, "endpoint": true, "method": true, "path": true,
		"status": true, "bytes": true, "dur_ms": true,
		"role": true, "leader_id": true, "fingerprint": true, "key": true,
		"queue_wait_ms": true, "eval_ms": true, "cache": true,
		"queue_depth": true, "slow": true, "phases": true, "error": true,
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
		if !allowed[k] {
			t.Errorf("undocumented access-log key %q (add it to the schema deliberately)", k)
		}
	}
	sort.Strings(keys)
	t.Logf("access-log keys: %v", keys)
}

// TestDebugStateAndDashboard exercises the two introspection endpoints
// after real traffic: schema-versioned JSON state and a self-contained
// HTML dashboard.
func TestDebugStateAndDashboard(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if resp, data := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}

	resp, data := get(t, ts.URL+"/v1/debug/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/state status %d", resp.StatusCode)
	}
	var st DebugStateResponse
	decodeInto(t, data, &st)
	if st.Schema != DebugSchemaVersion || st.Status != "ok" {
		t.Errorf("state envelope %+v", st)
	}
	if st.RequestID == "" {
		t.Error("debug state missing its own request id")
	}
	if st.MaxInflight < 1 || st.UptimeMS <= 0 {
		t.Errorf("state basics: %+v", st)
	}
	if len(st.Flights) != 0 {
		t.Errorf("idle server shows flights: %+v", st.Flights)
	}
	if st.Cache.SchedMisses == 0 {
		t.Errorf("cache stats empty after compile: %+v", st.Cache)
	}
	if st.Runtime.Goroutines < 1 || st.Runtime.HeapAllocBytes <= 0 {
		t.Errorf("runtime sampler never ran: %+v", st.Runtime)
	}

	resp, data = get(t, ts.URL+"/v1/dashboard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard content type %q", ct)
	}
	html := string(data)
	if !strings.Contains(html, "qschedd") || !strings.Contains(html, "requests/s") {
		t.Errorf("dashboard missing expected content")
	}
	// Self-contained: the same banned-token list CI enforces on report
	// HTML artifacts.
	for _, banned := range []string{"<script", "<link", "<img", "http://", "https://", "url(", "@import", "src="} {
		if strings.Contains(html, banned) {
			t.Errorf("dashboard contains banned token %q (must be self-contained)", banned)
		}
	}
}

// TestIntrospectionRaceClean hammers the debug endpoints while compiles
// run; under -race this is the data-race gate for the observability
// surface.
func TestIntrospectionRaceClean(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Options{
		MaxInflight: 2, MaxQueue: 64,
		AccessLog:     obs.NewAccessLog(&buf),
		SlowThreshold: time.Nanosecond,
		SampleEvery:   10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2+i%3))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("compile status %d", resp.StatusCode)
			}
		}(i)
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if resp, _ := get(t, ts.URL+"/v1/debug/state"); resp.StatusCode != http.StatusOK {
					t.Errorf("debug/state status %d", resp.StatusCode)
				}
				if resp, _ := get(t, ts.URL+"/v1/dashboard"); resp.StatusCode != http.StatusOK {
					t.Errorf("dashboard status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
}

// TestSanitizedHeaderID: hostile header ids are sanitized before they
// reach logs and envelopes.
func TestSanitizedHeaderID(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile",
		strings.NewReader(compileBody(tinySource, "lpfs", 2)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "evil id\twith\tcontrol")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr CompileResponse
	decodeInto(t, data, &cr)
	if cr.RequestID != "evilidwithcontrol" {
		t.Errorf("sanitized id %q, want evilidwithcontrol", cr.RequestID)
	}
}
