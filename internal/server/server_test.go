package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

const tinySource = `
module kernel(qbit x[2]) {
  H(x[0]);
  CNOT(x[0], x[1]);
}
module main() {
  qbit q[4];
  kernel(q[0:2]);
  kernel(q[2:4]);
}
`

// manyLeafSource builds a program with n structurally distinct leaf
// modules, giving an evaluation plenty of independent pool tasks.
func manyLeafSource(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "module leaf%d() {\n  qbit q[2];\n", i)
		for j := 0; j <= i; j++ {
			sb.WriteString("  H(q[0]);\n  CNOT(q[0], q[1]);\n")
		}
		sb.WriteString("}\n")
	}
	sb.WriteString("module main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  leaf%d();\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// gatedScheduler counts Schedule calls and blocks each one until the
// test closes release, then delegates to LPFS. Registered under a
// unique name per test, it freezes server-side evaluations so tests
// can observe in-flight state deterministically.
type gatedScheduler struct {
	name    string
	calls   *atomic.Int64
	started chan struct{} // one token per Schedule call start
	release chan struct{} // closed to let calls proceed
}

func newGated(name string) gatedScheduler {
	g := gatedScheduler{
		name:    name,
		calls:   &atomic.Int64{},
		started: make(chan struct{}, 256),
		release: make(chan struct{}),
	}
	schedule.Register(g)
	return g
}

func (g gatedScheduler) Name() string { return g.name }

func (g gatedScheduler) Schedule(m *ir.Module, gr *dag.Graph, k, d int) (*schedule.Schedule, error) {
	g.calls.Add(1)
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	return core.LPFS.Schedule(m, gr, k, d)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
}

func compileBody(source, sched string, k int) string {
	b, _ := json.Marshal(map[string]any{"source": source, "scheduler": sched, "k": k})
	return string(b)
}

// rawBody is compileBody with the flattening threshold pinned low so
// multi-leaf test programs keep their leaves (the default FTh inlines
// small modules into main).
func rawBody(source, sched string, k int) string {
	b, _ := json.Marshal(map[string]any{"source": source, "scheduler": sched, "k": k, "fth": 1})
	return string(b)
}

// TestMalformedJSON pins the structured-error contract: undecodable
// bodies, unknown fields and validation failures all come back as 400
// with a schema-stamped error envelope, never bare text.
func TestMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, code string
	}{
		{"not json", "{this is not json", CodeBadRequest},
		{"unknown field", `{"sorce": "module main() {}"}`, CodeBadRequest},
		{"trailing garbage", `{"source": "x"} extra`, CodeBadRequest},
		{"fails validation", `{}`, CodeInvalid},
		{"both source and bench", `{"source": "x", "bench": "Grovers"}`, CodeInvalid},
	}
	for _, tc := range cases {
		resp, data := post(t, ts.URL+"/v1/compile", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", tc.name, ct)
		}
		var e ErrorResponse
		decodeInto(t, data, &e)
		if e.Schema != SchemaVersion || e.Error.Code != tc.code || e.Error.Message == "" {
			t.Errorf("%s: error envelope %+v, want schema %d code %s", tc.name, e, SchemaVersion, tc.code)
		}
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr CompileResponse
	decodeInto(t, data, &cr)
	if cr.Schema != SchemaVersion || cr.Deduped {
		t.Errorf("envelope %+v", cr)
	}
	if cr.Request.Scheduler != "lpfs" || cr.Request.K != 2 || cr.Request.Entry != "main" {
		t.Errorf("normalized request not echoed: %+v", cr.Request)
	}
	if cr.Metrics.TotalGates == 0 || cr.Metrics.CommCycles == 0 || cr.Metrics.SpeedupVsSeq <= 0 {
		t.Errorf("degenerate metrics: %+v", cr.Metrics)
	}
	// A syntactically broken program is compile_failed, still structured.
	resp, data = post(t, ts.URL+"/v1/compile", compileBody("module main( {", "lpfs", 2))
	var e ErrorResponse
	decodeInto(t, data, &e)
	if resp.StatusCode != http.StatusBadRequest || e.Error.Code != CodeCompileFailed {
		t.Errorf("broken program: status %d body %+v", resp.StatusCode, e)
	}
}

// TestCompileDedup is the acceptance gate: 50 concurrent identical
// compile requests produce exactly one cold evaluation. The gated
// scheduler freezes the leader mid-run until all 50 requests have
// joined the flight, so the coalescing is asserted, not raced.
func TestCompileDedup(t *testing.T) {
	g := newGated("gated-dedup")
	s, ts := newTestServer(t, Options{})
	const clients = 50
	body := rawBody(manyLeafSource(6), g.name, 2)

	type outcome struct {
		status  int
		deduped bool
	}
	results := make(chan outcome, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, data := post(t, ts.URL+"/v1/compile", body)
			var cr CompileResponse
			_ = json.Unmarshal(data, &cr)
			results <- outcome{resp.StatusCode, cr.Deduped}
		}()
	}

	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("leader evaluation never started")
	}
	// Wait until every request has joined the single flight.
	deadline := time.Now().Add(15 * time.Second)
	for {
		s.flights.mu.Lock()
		var waiters, flights int
		for _, f := range s.flights.flights {
			flights++
			waiters = f.waiters
		}
		s.flights.mu.Unlock()
		if flights == 1 && waiters == clients {
			break
		}
		if flights > 1 {
			t.Fatalf("identical requests split into %d flights", flights)
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the flight", waiters, clients)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// While the flight is frozen, /v1/debug/state must show it live:
	// one flight, every client attached, the leader identified.
	resp, data := get(t, ts.URL+"/v1/debug/state")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/state status %d", resp.StatusCode)
	}
	var st DebugStateResponse
	decodeInto(t, data, &st)
	if len(st.Flights) != 1 {
		t.Fatalf("debug state shows %d flights, want 1: %+v", len(st.Flights), st.Flights)
	}
	if f := st.Flights[0]; f.Waiters < 2 || f.Waiters != clients || f.Key == "" || f.LeaderID == "" || f.AgeMS <= 0 {
		t.Errorf("live flight state %+v, want %d waiters with key, leader id and age", f, clients)
	}
	close(g.release)

	var leaders, followers int
	for i := 0; i < clients; i++ {
		o := <-results
		if o.status != http.StatusOK {
			t.Fatalf("request returned status %d", o.status)
		}
		if o.deduped {
			followers++
		} else {
			leaders++
		}
	}
	if leaders != 1 || followers != clients-1 {
		t.Errorf("%d leaders / %d followers, want 1 / %d", leaders, followers, clients-1)
	}
	// One cold evaluation: 6 leaves x widths {1,2} = 12 scheduled tasks,
	// each a cache miss, and nothing ever hit a warm entry.
	if n := g.calls.Load(); n != 12 {
		t.Errorf("scheduler ran %d times across %d requests, want 12 (one evaluation)", n, clients)
	}
	cst := s.Cache().Stats()
	if cst.CommMisses != 12 || cst.SchedMisses != 12 || cst.CommHits != 0 {
		t.Errorf("cache traffic shows more than one cold evaluation: %+v", cst)
	}
}

// TestCancellationStopsWork: when the only client of an evaluation
// disconnects mid-compile, the flight's work context is cancelled, the
// engine abandons its remaining tasks, and the server drains to idle.
func TestCancellationStopsWork(t *testing.T) {
	g := newGated("gated-cancel")
	s, ts := newTestServer(t, Options{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/compile", strings.NewReader(rawBody(manyLeafSource(6), g.name, 2)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errs := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errs <- err
	}()

	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("evaluation never started")
	}
	cancel() // client walks away mid-compile
	if err := <-errs; err == nil {
		t.Fatal("cancelled request returned a response")
	}
	// The server notices the disconnect asynchronously; the flight is
	// retired (and its work context cancelled) the moment the last
	// waiter leaves. Only then open the gate: the one in-flight
	// scheduler call finishes, and the engine must not start the other
	// 11 tasks under a dead context.
	deadline := time.Now().Add(15 * time.Second)
	for {
		s.flights.mu.Lock()
		n := len(s.flights.flights)
		s.flights.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned flight never retired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(g.release)
	drainCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("server did not drain after cancellation: %v", err)
	}
	if n := g.calls.Load(); n != 1 {
		t.Errorf("scheduler ran %d tasks after the client left, want 1 (of 12)", n)
	}
}

// TestQueueFull429: with one evaluation slot busy and no queue, a
// non-identical request is rejected with 429, Retry-After, and the
// structured overloaded body.
func TestQueueFull429(t *testing.T) {
	g := newGated("gated-queue")
	_, ts := newTestServer(t, Options{MaxInflight: 1, MaxQueue: -1})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/compile", compileBody(tinySource, g.name, 2))
		done <- resp.StatusCode
	}()
	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("slot-holding evaluation never started")
	}

	resp, data := post(t, ts.URL+"/v1/compile", compileBody(manyLeafSource(3), "lpfs", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	// Retry-After is derived from the observed drain rate, so only its
	// presence and bounds are contractual.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After %q, want an integer in [1, 30]", ra)
	}
	var e ErrorResponse
	decodeInto(t, data, &e)
	if e.Schema != SchemaVersion || e.Error.Code != CodeOverloaded {
		t.Errorf("error envelope %+v", e)
	}

	close(g.release)
	if status := <-done; status != http.StatusOK {
		t.Errorf("slot holder finished with %d", status)
	}
}

// TestGracefulDrain: draining flips healthz, Drain blocks while work
// is in flight, and the in-flight request still completes successfully.
func TestGracefulDrain(t *testing.T) {
	g := newGated("gated-drain")
	s, ts := newTestServer(t, Options{})

	done := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/compile", compileBody(tinySource, g.name, 2))
		done <- resp.StatusCode
	}()
	select {
	case <-g.started:
	case <-time.After(15 * time.Second):
		t.Fatal("evaluation never started")
	}

	s.SetDraining()
	resp, data := get(t, ts.URL+"/v1/healthz")
	var h HealthResponse
	decodeInto(t, data, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "draining" {
		t.Errorf("healthz while draining: status %d body %+v", resp.StatusCode, h)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, stop := context.WithTimeout(context.Background(), 15*time.Second)
		defer stop()
		drained <- s.Drain(ctx)
	}()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while an evaluation was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(g.release)
	if status := <-done; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain", status)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain did not complete after work finished: %v", err)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := post(t, ts.URL+"/v1/verify", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr VerifyResponse
	decodeInto(t, data, &vr)
	if !vr.Verified || !vr.Request.Verify || vr.Metrics.TotalGates == 0 {
		t.Errorf("verify response %+v", vr)
	}
}

func TestReportEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := post(t, ts.URL+"/v1/report", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rep report.Report
	decodeInto(t, data, &rep)
	if rep.Schema != report.SchemaVersion {
		t.Errorf("report schema %d, want %d", rep.Schema, report.SchemaVersion)
	}
	if rep.Totals.TotalGates == 0 || len(rep.Modules) == 0 {
		t.Errorf("empty report: totals %+v, %d modules", rep.Totals, len(rep.Modules))
	}
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"source": ` + string(mustJSON(tinySource)) + `, "k": 2, "module": "kernel"}`
	resp, data := post(t, ts.URL+"/v1/schedule", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr ScheduleResponse
	decodeInto(t, data, &sr)
	if sr.Module != "kernel" || sr.Ops == 0 || sr.Steps == 0 || sr.Text == "" {
		t.Errorf("schedule response %+v", sr)
	}
	if sr.EPR.Bandwidth != 2 {
		t.Errorf("default EPR bandwidth %d, want 2", sr.EPR.Bandwidth)
	}

	// Unknown module: 400 naming the available leaves.
	body = `{"source": ` + string(mustJSON(tinySource)) + `, "k": 2, "module": "nope"}`
	resp, data = post(t, ts.URL+"/v1/schedule", body)
	var e ErrorResponse
	decodeInto(t, data, &e)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(e.Error.Message, "kernel") {
		t.Errorf("unknown module: status %d body %+v", resp.StatusCode, e)
	}
}

func TestHealthzAndVersion(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, data := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup compile: %d %s", resp.StatusCode, data)
	}

	resp, data = get(t, ts.URL+"/v1/healthz")
	var h HealthResponse
	decodeInto(t, data, &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Schema != SchemaVersion {
		t.Errorf("healthz %d %+v", resp.StatusCode, h)
	}
	if h.Cache.CommEntries == 0 {
		t.Errorf("healthz cache stats empty after a compile: %+v", h.Cache)
	}

	resp, data = get(t, ts.URL+"/v1/version")
	var v VersionResponse
	decodeInto(t, data, &v)
	if resp.StatusCode != http.StatusOK || v.Service != "qschedd" || v.API != "v1" {
		t.Errorf("version %d %+v", resp.StatusCode, v)
	}
	has := func(xs []string, want string) bool {
		for _, x := range xs {
			if x == want {
				return true
			}
		}
		return false
	}
	if !has(v.Schedulers, "lpfs") || !has(v.Schedulers, "rcp") {
		t.Errorf("schedulers %v missing built-ins", v.Schedulers)
	}
	if len(v.Benchmarks) == 0 {
		t.Error("no benchmarks listed")
	}
}

// TestObservabilitySameMux: the API, Prometheus metrics and pprof all
// answer on the one listener, and the per-endpoint instruments show up
// in the scrape.
func TestObservabilitySameMux(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if resp, data := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", 2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"server_compile_requests", "server_compile_latency_ms"} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("scrape missing %s:\n%s", want, prom)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestConcurrentMixedRequests hammers distinct configurations in
// parallel; under -race this exercises the shared cache, flight group
// and admission paths together.
func TestConcurrentMixedRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInflight: 2, MaxQueue: 64})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := 2 + i%3
			resp, data := post(t, ts.URL+"/v1/compile", compileBody(tinySource, "lpfs", k))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("k=%d: status %d %s", k, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
