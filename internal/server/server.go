package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
)

// Options configures a Server. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// MaxInflight bounds concurrent evaluations (not HTTP connections:
	// deduplicated followers and the cheap read-only endpoints are
	// free). Default: GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds evaluations waiting for an inflight slot before
	// the server answers 429. Default: 4 * MaxInflight. Set negative
	// for no queue at all.
	MaxQueue int
	// Timeout is the per-evaluation deadline. Default: 2 minutes.
	Timeout time.Duration
	// Workers is the engine worker-pool size per evaluation (0 = the
	// engine's own default).
	Workers int
	// Registry receives the per-endpoint request counters and latency
	// histograms, and is served at /metrics. Default: a fresh registry.
	Registry *obs.Registry
	// Cache is the shared evaluation cache. Default: a fresh cache.
	Cache *core.EvalCache

	// AccessLog receives one structured JSON line per request (nil =
	// access logging off). Build with obs.NewAccessLog.
	AccessLog *obs.AccessLog
	// SlowThreshold marks requests whose wall time meets or exceeds it
	// as slow: their access-log entries carry the per-phase span
	// breakdown and they enter the dashboard's recent-slow ring.
	// Default: 1 second. Set negative to disable slow tracking.
	SlowThreshold time.Duration
	// SampleEvery is the period of the runtime sampler and the
	// dashboard history ring. Default: 2 seconds. Set negative to
	// disable sampling (no runtime gauges, empty dashboard sparklines).
	SampleEvery time.Duration

	// Telemetry is the persistent telemetry store (nil = telemetry off:
	// no sampler persistence, no flight recorder, the telemetry
	// endpoints answer telemetry_disabled, and the request hot path pays
	// nothing). The caller opens and closes it; the server only appends.
	Telemetry *telem.Store
	// FlightRecords bounds the flight recorder's recent-request ring
	// (0 = telem.DefaultFlightRecords). Only meaningful with Telemetry.
	FlightRecords int
	// NoAutoSnapshot disables the automatic postmortem bundles written
	// when a request ends slow, overloaded (429) or errored (5xx);
	// POST /v1/debug/snapshot keeps working. The zero value — automatic
	// bundles on — is the useful default.
	NoAutoSnapshot bool
	// BundleMinGap rate-limits automatic bundles: at most one per gap
	// (an overload storm must not turn into a disk-write storm).
	// Default 10s; negative = no limit.
	BundleMinGap time.Duration
}

// errBusy marks an admission rejection (queue full).
var errBusy = errors.New("server: admission queue full")

// Server is the compile service: one shared cache and flight group,
// admission control, and the /v1 handler surface. Create with New,
// mount Handler, and Close when done.
type Server struct {
	opts    Options
	cache   *core.EvalCache
	flights *flightGroup
	sem     chan struct{}
	queued  atomic.Int64
	reg     *obs.Registry
	mux     *http.ServeMux
	started time.Time

	// base is the parent of every evaluation context; Close cancels it
	// so draining work stops even if clients hang around.
	base     context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup // in-flight evaluation leaders
	draining atomic.Bool

	accessLog   *obs.AccessLog
	stopSampler func()
	history     *history
	slow        *slowRing
	drains      drainTracker

	telem      *telem.Store
	recorder   *telem.FlightRecorder
	lastBundle atomic.Int64 // unix nanos of the last automatic bundle

	inflightGauge *obs.Gauge
	queuedGauge   *obs.Gauge
	dedupCounter  *obs.Counter
	rejectCounter *obs.Counter
	reqsAll       *obs.Counter
	errsAll       *obs.Counter
	latAll        *obs.Histogram
}

// New builds a Server from opts, applying defaults for zero fields.
func New(opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 4 * opts.MaxInflight
	}
	if opts.MaxQueue < 0 {
		opts.MaxQueue = 0
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Minute
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Cache == nil {
		opts.Cache = core.NewEvalCache()
	}
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = time.Second
	}
	if opts.SampleEvery == 0 {
		opts.SampleEvery = 2 * time.Second
	}
	if opts.BundleMinGap == 0 {
		opts.BundleMinGap = 10 * time.Second
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		cache:   opts.Cache,
		flights: newFlightGroup(),
		sem:     make(chan struct{}, opts.MaxInflight),
		reg:     opts.Registry,
		mux:     nil,
		started: time.Now(),
		base:    base,
		stop:    stop,

		accessLog: opts.AccessLog,
		history:   newHistory(historySamples),
		slow:      newSlowRing(slowRingSize),

		inflightGauge: opts.Registry.Gauge("server.inflight"),
		queuedGauge:   opts.Registry.Gauge("server.queued"),
		dedupCounter:  opts.Registry.Counter("server.deduped"),
		rejectCounter: opts.Registry.Counter("server.rejected"),
		reqsAll:       opts.Registry.Counter("server.requests"),
		errsAll:       opts.Registry.Counter("server.errors"),
		latAll:        opts.Registry.Histogram("server.latency_ms"),
	}
	if opts.Telemetry != nil {
		s.telem = opts.Telemetry
		s.recorder = telem.NewFlightRecorder(opts.FlightRecords)
	}
	s.routes()
	if opts.SampleEvery > 0 {
		s.stopSampler = s.startSampler(opts.SampleEvery)
	}
	return s
}

// routes wires the /v1 surface plus the shared-mux observability
// endpoints (metrics, pprof) — one port, no conflicts.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("POST /v1/schedule", s.instrument("schedule", s.handleSchedule))
	s.mux.HandleFunc("POST /v1/report", s.instrument("report", s.handleReport))
	s.mux.HandleFunc("POST /v1/verify", s.instrument("verify", s.handleVerify))
	s.mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	s.mux.HandleFunc("GET /v1/debug/state", s.instrument("debug_state", s.handleDebugState))
	s.mux.HandleFunc("POST /v1/debug/snapshot", s.instrument("debug_snapshot", s.handleDebugSnapshot))
	s.mux.HandleFunc("GET /v1/metrics/range", s.instrument("metrics_range", s.handleMetricsRange))
	s.mux.HandleFunc("GET /v1/dashboard", s.instrument("dashboard", s.handleDashboard))
	obs.RegisterMetrics(s.mux, s.reg)
	obs.RegisterPprof(s.mux)
}

// Handler returns the server's full HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the instrument registry (the same one /metrics
// serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache exposes the shared evaluation cache, e.g. for tests asserting
// hit/miss traffic.
func (s *Server) Cache() *core.EvalCache { return s.cache }

// SetDraining flips the health status reported by /v1/healthz; the
// daemon sets it when shutdown begins so load balancers stop routing
// here while in-flight work drains.
func (s *Server) SetDraining() { s.draining.Store(true) }

// Drain blocks until every in-flight evaluation has finished or ctx
// expires. Call after http.Server.Shutdown has stopped new arrivals.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels the context under every evaluation, aborting whatever
// Drain did not see finish, and stops the runtime sampler.
func (s *Server) Close() {
	s.stop()
	if s.stopSampler != nil {
		s.stopSampler()
	}
}

// admit claims an evaluation slot, waiting in the bounded queue when
// all slots are busy. It returns errBusy when the queue is full and the
// caller's context error if the client leaves while queued.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	claim := func() func() {
		s.inflightGauge.Add(1)
		return func() {
			s.inflightGauge.Add(-1)
			// A released slot is one queue position drained; the tracker's
			// observed rate prices the Retry-After of 429 responses.
			s.drains.note(time.Now())
			<-s.sem
		}
	}
	select {
	case s.sem <- struct{}{}:
		return claim(), nil
	default:
	}
	if n := s.queued.Add(1); n > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		s.rejectCounter.Inc()
		return nil, errBusy
	}
	s.queuedGauge.Add(1)
	defer func() {
		s.queued.Add(-1)
		s.queuedGauge.Add(-1)
	}()
	select {
	case s.sem <- struct{}{}:
		return claim(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// drainTracker remembers recent evaluation-completion times so 429
// responses can price their Retry-After from the observed drain rate
// instead of a hardcoded constant: a queue of 20 draining at 2/s tells
// the client to come back in 10s, not hammer every second.
type drainTracker struct {
	mu   sync.Mutex
	ring [drainSamples]time.Time
	n    int64
}

const (
	drainSamples = 32
	// drainWindow bounds how far back the rate estimate looks: a burst
	// an hour ago says nothing about the current queue.
	drainWindow   = 2 * time.Minute
	retryAfterMin = 1
	retryAfterMax = 30
)

func (d *drainTracker) note(t time.Time) {
	d.mu.Lock()
	d.ring[d.n%drainSamples] = t
	d.n++
	d.mu.Unlock()
}

// rate returns completions per second observed across the retained
// samples inside the window, or 0 when there is not enough signal.
func (d *drainTracker) rate(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	cutoff := now.Add(-drainWindow)
	var oldest time.Time
	count := 0
	kept := d.n
	if kept > drainSamples {
		kept = drainSamples
	}
	for i := int64(0); i < kept; i++ {
		t := d.ring[i]
		if t.Before(cutoff) {
			continue
		}
		if count == 0 || t.Before(oldest) {
			oldest = t
		}
		count++
	}
	if count < 2 {
		return 0
	}
	span := now.Sub(oldest).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(count) / span
}

// retryAfterSecs converts queue depth over drain rate into the
// Retry-After seconds of a 429, clamped to [1, 30]. With no observed
// drains (a cold or wedged server) it stays at the floor — the old
// constant behavior.
func (s *Server) retryAfterSecs() int64 {
	rate := s.drains.rate(time.Now())
	if rate <= 0 {
		return retryAfterMin
	}
	eta := int64(math.Ceil(float64(s.queued.Load()+1) / rate))
	if eta < retryAfterMin {
		return retryAfterMin
	}
	if eta > retryAfterMax {
		return retryAfterMax
	}
	return eta
}

// statusWriter remembers the response code and counts body bytes for
// the latency/error instruments and the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the request-observability middleware:
// request-id accept/generate, per-endpoint and aggregate instruments,
// the access-log entry, and slow-request tracking.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.reg.Counter("server." + name + ".requests")
	errs := s.reg.Counter("server." + name + ".errors")
	lat := s.reg.Histogram("server." + name + ".latency_ms")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		s.reqsAll.Inc()

		id := obs.SanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		info := &reqInfo{id: id, endpoint: name}
		ctx := obs.WithRequestID(r.Context(), id)
		r = r.WithContext(withReqInfo(ctx, info))

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)

		dur := time.Since(start)
		if sw.code >= 400 {
			errs.Inc()
			s.errsAll.Inc()
		}
		lat.Observe(dur.Milliseconds())
		s.latAll.Observe(dur.Milliseconds())

		slow := s.opts.SlowThreshold > 0 && dur >= s.opts.SlowThreshold
		if slow {
			s.slow.add(SlowRequest{
				ID: id, Endpoint: name, Status: sw.code,
				DurMS: float64(dur.Microseconds()) / 1000,
				Time:  start.UTC().Format(accessTimeFormat),
			})
		}
		if s.accessLog.Enabled() {
			e := &obs.AccessEntry{
				Time:     start.UTC().Format(accessTimeFormat),
				ID:       id,
				Endpoint: name,
				Method:   r.Method,
				Path:     r.URL.Path,
				Status:   sw.code,
				Bytes:    sw.bytes,
				DurMS:    float64(dur.Microseconds()) / 1000,

				Role:        info.role,
				LeaderID:    info.leaderID,
				Fingerprint: info.fingerprint,
				Key:         info.key,
				QueueWaitMS: info.queueWaitMS,
				EvalMS:      info.evalMS,
				Cache:       info.cache,
				QueueDepth:  info.queueDepth,
				Slow:        slow,
				Err:         info.errMsg,
			}
			if slow {
				e.Phases = info.phases
			}
			s.accessLog.Log(e)
		}
		// Flight recorder + automatic postmortems (telemetry enabled
		// only; a nil recorder costs this one branch).
		if s.recorder != nil {
			s.recordRequest(info, r, sw.code, start, dur, slow)
		}
	}
}

// recordRequest feeds the flight recorder and, when the request ended
// badly, freezes the ring into an automatic postmortem bundle. Runs
// after the response is written, so bundle I/O never delays a client.
func (s *Server) recordRequest(info *reqInfo, r *http.Request, status int, start time.Time, dur time.Duration, slow bool) {
	rec := telem.RequestRecord{
		ID:       info.id,
		Endpoint: info.endpoint,
		Status:   status,
		Time:     start.UTC().Format(accessTimeFormat),
		DurMS:    float64(dur.Microseconds()) / 1000,
		Role:     info.role,

		QueueWaitMS: info.queueWaitMS,
		EvalMS:      info.evalMS,
		Cache:       info.cache,
		Err:         info.errMsg,

		Phases:    info.phases,
		Spans:     info.spans,
		Decisions: info.decisions,
	}
	s.recorder.Record(rec)

	var trigger string
	switch {
	case status == http.StatusTooManyRequests:
		trigger = "overloaded"
	case status >= 500:
		trigger = "error"
	case slow:
		trigger = "slow"
	default:
		return
	}
	if s.opts.NoAutoSnapshot || !s.bundleGapElapsed(time.Now()) {
		return
	}
	_, _ = s.writeBundle(trigger, rec.ID, &rec)
}

// bundleGapElapsed claims the automatic-bundle rate-limit slot: true
// means the caller may write (and the timestamp has been advanced).
func (s *Server) bundleGapElapsed(now time.Time) bool {
	gap := s.opts.BundleMinGap
	if gap < 0 {
		return true
	}
	last := s.lastBundle.Load()
	return now.UnixNano()-last >= gap.Nanoseconds() &&
		s.lastBundle.CompareAndSwap(last, now.UnixNano())
}

// writeBundle freezes the flight recorder, metrics and debug state into
// one postmortem bundle under <telemetry-dir>/postmortem.
func (s *Server) writeBundle(trigger, requestID string, req *telem.RequestRecord) (string, error) {
	now := time.Now()
	state, _ := json.Marshal(s.debugState())
	b := telem.BuildBundle("qschedd", trigger, now.UTC().Format(accessTimeFormat),
		requestID, req, s.recorder.Recent(), s.reg.Snapshot(), state)
	return telem.WriteBundle(filepath.Join(s.telem.Dir(), "postmortem"), b, now)
}

// accessTimeFormat is RFC 3339 with millisecond precision, the access
// log's and dashboard's timestamp format.
const accessTimeFormat = "2006-01-02T15:04:05.000Z07:00"
