package server

// The ops dashboard: GET /v1/dashboard renders a self-contained HTML
// page — inline CSS and inline SVG sparklines, no scripts, no external
// assets (the same discipline as internal/report's HTML artifacts, and
// CI asserts it) — showing what the server is doing right now.
// Refreshing is plain <meta http-equiv="refresh">: the page re-renders
// server-side from the history ring, so it works with every asset
// policy a browser can enforce.

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/obs/telem"
)

const (
	// historySamples bounds the dashboard history ring; at the default
	// 2s sample period this is five minutes of trend.
	historySamples = 150
	// slowRingSize bounds the recent-slow-requests ring.
	slowRingSize = 20
)

// histSample is one dashboard history point: cumulative counters plus
// instantaneous gauges at sample time. Rates derive from consecutive
// samples at render time.
type histSample struct {
	t          time.Time
	requests   int64
	errors     int64
	inflight   int64
	queued     int64
	heapAlloc  int64
	goroutines int64
}

// history is a bounded ring of samples, oldest first.
type history struct {
	mu      sync.Mutex
	samples []histSample
	max     int
}

func newHistory(max int) *history { return &history{max: max} }

func (h *history) add(s histSample) {
	h.mu.Lock()
	h.samples = append(h.samples, s)
	if len(h.samples) > h.max {
		h.samples = h.samples[len(h.samples)-h.max:]
	}
	h.mu.Unlock()
}

func (h *history) list() []histSample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]histSample, len(h.samples))
	copy(out, h.samples)
	return out
}

// slowRing keeps the most recent slow requests, newest first in list().
type slowRing struct {
	mu      sync.Mutex
	entries []SlowRequest
	max     int
}

func newSlowRing(max int) *slowRing { return &slowRing{max: max} }

func (r *slowRing) add(e SlowRequest) {
	r.mu.Lock()
	r.entries = append(r.entries, e)
	if len(r.entries) > r.max {
		r.entries = r.entries[len(r.entries)-r.max:]
	}
	r.mu.Unlock()
}

func (r *slowRing) list() []SlowRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowRequest, len(r.entries))
	for i, e := range r.entries {
		out[len(out)-1-i] = e
	}
	return out
}

// sampleNow reads the instruments the dashboard trends.
func (s *Server) sampleNow() histSample {
	return histSample{
		t:          time.Now(),
		requests:   s.reqsAll.Value(),
		errors:     s.errsAll.Value(),
		inflight:   s.inflightGauge.Value(),
		queued:     s.queuedGauge.Value(),
		heapAlloc:  s.reg.Gauge(obs.GaugeHeapAlloc).Value(),
		goroutines: s.reg.Gauge(obs.GaugeGoroutines).Value(),
	}
}

// startSampler runs the runtime sampler, the dashboard history ring
// and (when telemetry is on) the persistent snapshot appender on one
// cadence until the returned stop function is called.
func (s *Server) startSampler(every time.Duration) func() {
	stopRuntime := obs.StartRuntimeSampler(s.reg, every)
	s.history.add(s.sampleNow())
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.history.add(s.sampleNow())
				if s.telem != nil {
					s.telem.Append(time.Now(), telem.Flatten(s.reg.Snapshot()))
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			stopRuntime()
		})
	}
}

// trendSeries is the dashboard's four sparkline inputs, oldest first.
type trendSeries struct {
	rates, inflight, queued, heap []float64
}

// dashTrendPoints bounds how many points a telemetry-backed sparkline
// folds the window onto (an SVG polyline past ~300 points is pixels).
const dashTrendPoints = 300

// dashTrendWindow is how far back the telemetry-backed dashboard looks,
// clamped to the store's retention.
const dashTrendWindow = 6 * time.Hour

// trendFromTelem rebuilds the dashboard trends from the persistent
// store. The returned window is 0 when there is no store or not enough
// persisted history yet (callers fall back to the in-memory ring).
func (s *Server) trendFromTelem(now time.Time) (trendSeries, time.Duration) {
	var t trendSeries
	if s.telem == nil {
		return t, 0
	}
	window := dashTrendWindow
	if ret := s.telem.Retention(); ret > 0 && ret < window {
		window = ret
	}
	from := now.Add(-window)
	step := window / dashTrendPoints
	if step < s.opts.SampleEvery {
		step = s.opts.SampleEvery
	}
	reqs := s.telem.Query("server.requests", from, now, step)
	if len(reqs) < 2 {
		// A short history (just-started daemon) can fold into a single
		// step bucket; retry at raw resolution before giving up on the
		// store. Raw is bounded here: little history is the premise.
		step = 0
		reqs = s.telem.Query("server.requests", from, now, step)
	}
	if len(reqs) < 2 {
		return t, 0
	}
	for i := 1; i < len(reqs); i++ {
		dt := float64(reqs[i].TSMS-reqs[i-1].TSMS) / 1000
		if dt <= 0 {
			continue
		}
		d := reqs[i].V - reqs[i-1].V
		if d < 0 {
			d = 0 // counter reset across a restart, not negative traffic
		}
		t.rates = append(t.rates, d/dt)
	}
	for _, p := range s.telem.Query("server.inflight", from, now, step) {
		t.inflight = append(t.inflight, p.V)
	}
	for _, p := range s.telem.Query("server.queued", from, now, step) {
		t.queued = append(t.queued, p.V)
	}
	for _, p := range s.telem.Query(obs.GaugeHeapAlloc, from, now, step) {
		t.heap = append(t.heap, p.V/(1<<20))
	}
	return t, window
}

// trendFromRing is the in-memory fallback: the pre-telemetry dashboard
// behavior, five minutes of ring.
func trendFromRing(samples []histSample) trendSeries {
	var t trendSeries
	for i, sm := range samples {
		if i > 0 {
			dt := sm.t.Sub(samples[i-1].t).Seconds()
			if dt > 0 {
				t.rates = append(t.rates, float64(sm.requests-samples[i-1].requests)/dt)
			}
		}
		t.inflight = append(t.inflight, float64(sm.inflight))
		t.queued = append(t.queued, float64(sm.queued))
		t.heap = append(t.heap, float64(sm.heapAlloc)/(1<<20))
	}
	return t
}

// sparkView is one precomputed SVG sparkline: geometry is done in Go so
// the template stays declarative.
type sparkView struct {
	Title  string
	Latest string
	Points string // polyline points, empty when fewer than 2 samples
	W, H   int
}

// sparkline builds a sparkView from a series (oldest first).
func sparkline(title, latest string, series []float64) sparkView {
	const w, h = 220, 40
	v := sparkView{Title: title, Latest: latest, W: w, H: h}
	if len(series) < 2 {
		return v
	}
	lo, hi := series[0], series[0]
	for _, x := range series {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	for i, x := range series {
		px := float64(i) / float64(len(series)-1) * float64(w-4)
		py := float64(h-4) - (x-lo)/span*float64(h-8)
		fmt.Fprintf(&b, "%.1f,%.1f ", px+2, py+2)
	}
	v.Points = strings.TrimSpace(b.String())
	return v
}

// dashRow is one key/value line of the dashboard status block.
type dashRow struct{ Name, Value string }

// dashView is the template's input.
type dashView struct {
	Service   string
	Refresh   int
	Generated string
	Status    []dashRow
	Latency   []dashRow
	Sparks    []sparkView
	Flights   []FlightState
	Slow      []SlowRequest
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	state := s.debugState()
	snap := s.reg.Snapshot()

	// With a telemetry store the trends rebuild from persisted history —
	// hours of sparkline that survive restarts. Without one (or before
	// the first seal lands), the in-memory ring's five minutes stand in.
	trends, window := s.trendFromTelem(time.Now())
	if window == 0 {
		trends = trendFromRing(s.history.list())
		window = time.Duration(historySamples) * s.opts.SampleEvery
	}
	latestRate := 0.0
	if n := len(trends.rates); n > 0 {
		latestRate = trends.rates[n-1]
	}
	rateTitle := "requests/s"
	if window > 0 {
		rateTitle = fmt.Sprintf("requests/s (last %s)", window.Round(time.Second))
	}

	cache := state.Cache
	schedTotal := cache.SchedHits + cache.SchedMisses
	schedRate := 0.0
	if schedTotal > 0 {
		schedRate = float64(cache.SchedHits) / float64(schedTotal)
	}

	refresh := int(s.opts.SampleEvery / time.Second)
	if refresh < 1 {
		refresh = 2
	}
	view := dashView{
		Service:   "qschedd",
		Refresh:   refresh,
		Generated: time.Now().UTC().Format(accessTimeFormat),
		Status: []dashRow{
			{"status", state.Status},
			{"uptime", time.Duration(state.UptimeMS * float64(time.Millisecond)).Round(time.Second).String()},
			{"requests", fmt.Sprint(s.reqsAll.Value())},
			{"errors", fmt.Sprint(s.errsAll.Value())},
			{"deduped", fmt.Sprint(s.dedupCounter.Value())},
			{"rejected (429)", fmt.Sprint(s.rejectCounter.Value())},
			{"inflight / max", fmt.Sprintf("%d / %d", state.Inflight, state.MaxInflight)},
			{"queued / cap", fmt.Sprintf("%d / %d", state.QueueDepth, state.QueueCap)},
			{"sched cache hit rate", fmt.Sprintf("%.1f%% (%d/%d)", schedRate*100, cache.SchedHits, schedTotal)},
			{"comm cache hit rate", fmt.Sprintf("%.1f%%", cache.CommHitRate()*100)},
			{"mem cache", fmt.Sprintf("%d+%d entries, %.1f MiB, %d evicted",
				cache.SchedEntries, cache.CommEntries, float64(cache.MemBytes)/(1<<20), cache.MemEvictions)},
			{"disk cache", fmt.Sprintf("%d records, %.1f MiB, %d hits / %d misses",
				cache.DiskEntries, float64(cache.DiskBytes)/(1<<20), cache.DiskHits, cache.DiskMisses)},
			{"disk writes / corrupt", fmt.Sprintf("%d / %d", cache.DiskWrites, cache.DiskCorrupt)},
			{"goroutines", fmt.Sprint(state.Runtime.Goroutines)},
			{"heap", fmt.Sprintf("%.1f MiB", float64(state.Runtime.HeapAllocBytes)/(1<<20))},
			{"gc pauses", fmt.Sprintf("%d total, %.2fms last", state.Runtime.GCCount,
				float64(state.Runtime.GCPauseLastNS)/1e6)},
		},
		Sparks: []sparkView{
			sparkline(rateTitle, fmt.Sprintf("%.1f", latestRate), trends.rates),
			sparkline("inflight", fmt.Sprint(state.Inflight), trends.inflight),
			sparkline("queued", fmt.Sprint(state.QueueDepth), trends.queued),
			sparkline("heap MiB", fmt.Sprintf("%.1f", float64(state.Runtime.HeapAllocBytes)/(1<<20)), trends.heap),
		},
		Flights: state.Flights,
		Slow:    state.SlowRequests,
	}
	if ts := state.Telemetry; ts != nil {
		view.Status = append(view.Status,
			dashRow{"telemetry", fmt.Sprintf("%d segments, %.1f MiB, %d series, %d buffered",
				ts.Segments, float64(ts.Bytes)/(1<<20), ts.Series, ts.BufferedSamples)},
			dashRow{"telemetry maintenance", fmt.Sprintf("%d sealed, %d downsampled, %d aged out, %d over budget, %d corrupt",
				ts.Sealed, ts.Downsampled, ts.DroppedAge, ts.DroppedBudget, ts.Corrupt)},
		)
	}
	// Latency quantile table: every endpoint histogram plus the
	// aggregate, from the same snapshot /metrics serves.
	for _, name := range []string{"server.latency_ms", "server.compile.latency_ms",
		"server.schedule.latency_ms", "server.report.latency_ms", "server.verify.latency_ms"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		label := strings.TrimSuffix(strings.TrimPrefix(name, "server."), ".latency_ms")
		if label == "latency_ms" {
			label = "all"
		}
		view.Latency = append(view.Latency, dashRow{
			label,
			fmt.Sprintf("n=%d p50≤%s p95≤%s p99≤%s", h.Count,
				quantileLabel(h.P50), quantileLabel(h.P95), quantileLabel(h.P99)),
		})
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTemplate.Execute(w, view)
}

// quantileLabel renders a power-of-two quantile bound, -1 being +Inf.
func quantileLabel(v int64) string {
	if v < 0 {
		return "+Inf"
	}
	return fmt.Sprintf("%dms", v)
}

var dashTemplate = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{{.Refresh}}">
<title>{{.Service}} dashboard</title>
<style>
body { font-family: ui-monospace, monospace; margin: 1.5rem; background: #101418; color: #d8dee6; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.4rem; }
table { border-collapse: collapse; }
td, th { padding: 0.15rem 0.8rem 0.15rem 0; text-align: left; font-size: 0.85rem; }
th { color: #8aa0b4; font-weight: normal; border-bottom: 1px solid #2a3440; }
.muted { color: #8aa0b4; }
.sparks { display: flex; flex-wrap: wrap; gap: 1.2rem; margin-top: 0.6rem; }
.spark { background: #161c22; padding: 0.5rem 0.7rem; border-radius: 4px; }
.spark .t { font-size: 0.75rem; color: #8aa0b4; }
.spark .v { font-size: 0.95rem; }
svg polyline { fill: none; stroke: #5fb3f9; stroke-width: 1.5; }
</style>
</head>
<body>
<h1>{{.Service}} <span class="muted">ops dashboard · generated {{.Generated}} · refreshes every {{.Refresh}}s</span></h1>
<table>
{{range .Status}}<tr><td class="muted">{{.Name}}</td><td>{{.Value}}</td></tr>
{{end}}</table>
<div class="sparks">
{{range .Sparks}}<div class="spark"><div class="t">{{.Title}}</div><div class="v">{{.Latest}}</div>
<svg width="{{.W}}" height="{{.H}}" viewBox="0 0 {{.W}} {{.H}}">{{if .Points}}<polyline points="{{.Points}}"/>{{end}}</svg></div>
{{end}}</div>
<h2>latency (power-of-two bucket bounds)</h2>
{{if .Latency}}<table>
{{range .Latency}}<tr><td class="muted">{{.Name}}</td><td>{{.Value}}</td></tr>
{{end}}</table>{{else}}<p class="muted">no requests yet</p>{{end}}
<h2>in-flight evaluations</h2>
{{if .Flights}}<table>
<tr><th>key</th><th>age ms</th><th>waiters</th><th>leader</th></tr>
{{range .Flights}}<tr><td>{{.Key}}</td><td>{{printf "%.1f" .AgeMS}}</td><td>{{.Waiters}}</td><td>{{.LeaderID}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none</p>{{end}}
<h2>recent slow requests</h2>
{{if .Slow}}<table>
<tr><th>time</th><th>id</th><th>endpoint</th><th>status</th><th>ms</th></tr>
{{range .Slow}}<tr><td>{{.Time}}</td><td>{{.ID}}</td><td>{{.Endpoint}}</td><td>{{.Status}}</td><td>{{printf "%.1f" .DurMS}}</td></tr>
{{end}}</table>{{else}}<p class="muted">none</p>{{end}}
</body>
</html>
`))
