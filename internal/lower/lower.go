// Package lower translates Scaffold-lite ASTs into the hierarchical IR.
//
// Control flow is fully classical (paper §3.1), so lowering resolves it:
// if/else evaluates its condition at compile time and lowers one branch;
// for loops either unroll, or — when the body does not reference the loop
// variable — collapse. A collapsed loop whose body is a single operation
// becomes that operation with a Count multiplier; a multi-op body is
// outlined into a synthetic module invoked with Count = trip count. This
// preserves (AB)^n semantics exactly while keeping paper-scale programs
// (10^7–10^12 gates) representable without materializing them.
package lower

import (
	"fmt"
	"sort"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/scaffold"
)

// Options configures lowering.
type Options struct {
	// UnrollLimit is the largest trip count of a loop-variable-independent
	// loop that is unrolled inline rather than collapsed. Zero means the
	// default of 32.
	UnrollLimit int64
	// MaxUnroll bounds the trip count of loops that must unroll because
	// their bodies index by the loop variable. Zero means the default of
	// 1 << 22.
	MaxUnroll int64
}

func (o Options) unrollLimit() int64 {
	if o.UnrollLimit == 0 {
		return 32
	}
	return o.UnrollLimit
}

func (o Options) maxUnroll() int64 {
	if o.MaxUnroll == 0 {
		return 1 << 22
	}
	return o.MaxUnroll
}

// Lower converts a checked AST into an IR program rooted at entry.
func Lower(prog *ast.Program, entry string, opts Options) (*ir.Program, error) {
	l := &lowerer{
		opts: opts,
		mods: map[string]*ast.Module{},
		out:  ir.NewProgram(entry),
	}
	for _, m := range prog.Modules {
		l.mods[m.Name] = m
	}
	for _, m := range prog.Modules {
		im, err := l.lowerModule(m)
		if err != nil {
			return nil, err
		}
		l.out.Add(im)
	}
	if l.out.Module(entry) == nil {
		return nil, fmt.Errorf("lower: entry module %q not defined", entry)
	}
	if err := l.out.Validate(); err != nil {
		return nil, err
	}
	return l.out, nil
}

type lowerer struct {
	opts Options
	mods map[string]*ast.Module
	out  *ir.Program
	syn  int // synthetic module counter
}

// regBinding maps a source register to its slot range; classical
// registers have Quantum == false and occupy no slots.
type regBinding struct {
	rng     ir.Range
	quantum bool
}

type modScope struct {
	m    *ir.Module
	regs map[string]regBinding
	vars map[string]int64
	// localCache hoists locals declared inside loops: the same declaration
	// reuses its slots across iterations (ancilla reuse, matching the
	// paper's sequential-reuse model for Q).
	localCache map[string]ir.Range
}

func (l *lowerer) lowerModule(m *ast.Module) (*ir.Module, error) {
	var params []ir.Reg
	regs := map[string]regBinding{}
	off := 0
	for _, p := range m.Params {
		if p.Classical {
			regs[p.Name] = regBinding{quantum: false}
			continue
		}
		params = append(params, ir.Reg{Name: p.Name, Size: p.Size})
		regs[p.Name] = regBinding{rng: ir.Range{Start: off, Len: p.Size}, quantum: true}
		off += p.Size
	}
	im := ir.NewModule(m.Name, params, nil)
	sc := &modScope{m: im, regs: regs, vars: map[string]int64{}, localCache: map[string]ir.Range{}}
	if err := l.lowerBlock(sc, m.Body); err != nil {
		return nil, err
	}
	return im, nil
}

func (l *lowerer) lowerBlock(sc *modScope, b *ast.Block) error {
	shadowed := map[string]*regBinding{}
	declared := []string{}
	defer func() {
		for _, name := range declared {
			if prev := shadowed[name]; prev != nil {
				sc.regs[name] = *prev
			} else {
				delete(sc.regs, name)
			}
		}
	}()
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.DeclStmt:
			if err := l.lowerDecl(sc, st, shadowed, &declared); err != nil {
				return err
			}
		case *ast.GateStmt:
			if err := l.lowerGate(sc, st); err != nil {
				return err
			}
		case *ast.CallStmt:
			if err := l.lowerCall(sc, st); err != nil {
				return err
			}
		case *ast.ForStmt:
			if err := l.lowerFor(sc, st); err != nil {
				return err
			}
		case *ast.IfStmt:
			taken, err := evalCond(sc.vars, st.Cond)
			if err != nil {
				return err
			}
			branch := st.Then
			if !taken {
				branch = st.Else
			}
			if branch != nil {
				if err := l.lowerBlock(sc, branch); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("lower: unknown statement %T", s)
		}
	}
	return nil
}

func (l *lowerer) lowerDecl(sc *modScope, st *ast.DeclStmt, shadowed map[string]*regBinding, declared *[]string) error {
	if prev, ok := sc.regs[st.Name]; ok {
		p := prev
		shadowed[st.Name] = &p
	}
	*declared = append(*declared, st.Name)
	if st.Classical {
		sc.regs[st.Name] = regBinding{quantum: false}
		return nil
	}
	size := int64(1)
	if st.Size != nil {
		v, err := evalInt(sc.vars, st.Size)
		if err != nil {
			return err
		}
		size = v
	}
	if size <= 0 {
		return fmt.Errorf("lower: %s: register %q has non-positive size %d", st.Pos, st.Name, size)
	}
	// Hoist loop-body locals: the same declaration site reuses its slots
	// across iterations. Key on name; require a stable size.
	if rng, ok := sc.localCache[st.Name]; ok {
		if rng.Len != int(size) {
			return fmt.Errorf("lower: %s: register %q redeclared with size %d (was %d) across iterations",
				st.Pos, st.Name, size, rng.Len)
		}
		sc.regs[st.Name] = regBinding{rng: rng, quantum: true}
		return nil
	}
	rng := sc.m.AddLocal(st.Name, int(size))
	sc.localCache[st.Name] = rng
	sc.regs[st.Name] = regBinding{rng: rng, quantum: true}
	return nil
}

func (l *lowerer) lowerGate(sc *modScope, st *ast.GateStmt) error {
	op, ok := qasm.ByName(st.Name)
	if !ok {
		return fmt.Errorf("lower: %s: unknown gate %q", st.Pos, st.Name)
	}
	slots := make([]int, 0, len(st.Args))
	for i := range st.Args {
		slot, err := l.resolveSingle(sc, &st.Args[i])
		if err != nil {
			return err
		}
		slots = append(slots, slot)
	}
	angle := 0.0
	if st.Angle != nil {
		v, err := evalAngle(sc.vars, st.Angle)
		if err != nil {
			return err
		}
		angle = v
	}
	sc.m.Ops = append(sc.m.Ops, ir.Op{Kind: ir.GateOp, Gate: op, Angle: angle, Args: slots, Count: 1})
	return nil
}

func (l *lowerer) lowerCall(sc *modScope, st *ast.CallStmt) error {
	callee := l.mods[st.Callee]
	if callee == nil {
		return fmt.Errorf("lower: %s: call to undefined module %q", st.Pos, st.Callee)
	}
	var args []ir.Range
	for i := range st.Args {
		p := callee.Params[i]
		rng, quantum, err := l.resolveRange(sc, &st.Args[i])
		if err != nil {
			return err
		}
		if p.Classical {
			if quantum {
				return fmt.Errorf("lower: %s: quantum register %q bound to classical parameter %q of %s",
					st.Pos, st.Args[i].Name, p.Name, st.Callee)
			}
			continue // classical args carry no slots
		}
		if !quantum {
			return fmt.Errorf("lower: %s: classical register %q bound to quantum parameter %q of %s",
				st.Pos, st.Args[i].Name, p.Name, st.Callee)
		}
		if rng.Len != p.Size {
			return fmt.Errorf("lower: %s: argument %q (%d qubits) does not fit parameter %q[%d] of %s",
				st.Pos, st.Args[i].Name, rng.Len, p.Name, p.Size, st.Callee)
		}
		args = append(args, rng)
	}
	sc.m.Ops = append(sc.m.Ops, ir.Op{Kind: ir.CallOp, Callee: st.Callee, CallArgs: args, Count: 1})
	return nil
}

// resolveSingle resolves a gate operand to one slot.
func (l *lowerer) resolveSingle(sc *modScope, q *ast.QubitExpr) (int, error) {
	rng, quantum, err := l.resolveRange(sc, q)
	if err != nil {
		return 0, err
	}
	if !quantum {
		return 0, fmt.Errorf("lower: %s: classical register %q used as gate operand", q.Pos, q.Name)
	}
	if rng.Len != 1 {
		return 0, fmt.Errorf("lower: %s: gate operand %q is %d qubits wide; gates take single qubits", q.Pos, q.Name, rng.Len)
	}
	return rng.Start, nil
}

// resolveRange resolves a qubit reference to a slot range.
func (l *lowerer) resolveRange(sc *modScope, q *ast.QubitExpr) (ir.Range, bool, error) {
	binding, ok := sc.regs[q.Name]
	if !ok {
		return ir.Range{}, false, fmt.Errorf("lower: %s: undeclared register %q", q.Pos, q.Name)
	}
	if !binding.quantum {
		return ir.Range{}, false, nil
	}
	base := binding.rng
	switch {
	case q.IsWhole():
		return base, true, nil
	case q.IsSlice():
		lo, err := evalInt(sc.vars, q.Index)
		if err != nil {
			return ir.Range{}, false, err
		}
		hi, err := evalInt(sc.vars, q.SliceHi)
		if err != nil {
			return ir.Range{}, false, err
		}
		if lo < 0 || hi > int64(base.Len) || lo >= hi {
			return ir.Range{}, false, fmt.Errorf("lower: %s: slice %s[%d:%d] out of range [0,%d)", q.Pos, q.Name, lo, hi, base.Len)
		}
		return ir.Range{Start: base.Start + int(lo), Len: int(hi - lo)}, true, nil
	default:
		idx, err := evalInt(sc.vars, q.Index)
		if err != nil {
			return ir.Range{}, false, err
		}
		if idx < 0 || idx >= int64(base.Len) {
			return ir.Range{}, false, fmt.Errorf("lower: %s: index %s[%d] out of range [0,%d)", q.Pos, q.Name, idx, base.Len)
		}
		return ir.Range{Start: base.Start + int(idx), Len: 1}, true, nil
	}
}

func (l *lowerer) lowerFor(sc *modScope, st *ast.ForStmt) error {
	lo, err := evalInt(sc.vars, st.Lo)
	if err != nil {
		return err
	}
	hi, err := evalInt(sc.vars, st.Hi)
	if err != nil {
		return err
	}
	trip := hi - lo
	if trip <= 0 {
		return nil
	}
	varDep := blockUsesVar(st.Body, st.Var)
	if !varDep && trip > l.opts.unrollLimit() {
		return l.collapseLoop(sc, st, trip)
	}
	if trip > l.opts.maxUnroll() {
		return fmt.Errorf("lower: %s: loop over %q must unroll %d iterations, exceeding limit %d",
			st.Pos, st.Var, trip, l.opts.maxUnroll())
	}
	for v := lo; v < hi; v++ {
		sc.vars[st.Var] = v
		if err := l.lowerBlock(sc, st.Body); err != nil {
			delete(sc.vars, st.Var)
			return err
		}
	}
	delete(sc.vars, st.Var)
	return nil
}

// collapseLoop lowers a loop-variable-independent body once and repeats it
// with a Count multiplier: directly when the body is a single op,
// otherwise via an outlined synthetic module.
func (l *lowerer) collapseLoop(sc *modScope, st *ast.ForStmt, trip int64) error {
	mark := len(sc.m.Ops)
	if err := l.lowerBlock(sc, st.Body); err != nil {
		return err
	}
	body := sc.m.Ops[mark:]
	switch len(body) {
	case 0:
		sc.m.Ops = sc.m.Ops[:mark]
		return nil
	case 1:
		sc.m.Ops[mark].Count = sc.m.Ops[mark].EffCount() * trip
		return nil
	}
	synth, args, err := l.outline(sc.m, body, fmt.Sprintf("%s.loop%d", sc.m.Name, l.syn))
	if err != nil {
		return err
	}
	l.syn++
	l.out.Add(synth)
	sc.m.Ops = sc.m.Ops[:mark]
	sc.m.Ops = append(sc.m.Ops, ir.Op{Kind: ir.CallOp, Callee: synth.Name, CallArgs: args, Count: trip})
	return nil
}

// outline extracts ops (expressed in parent slot space) into a new module
// whose parameters cover exactly the parent slots the ops touch, returning
// the module and the call argument ranges binding it back to the parent.
func (l *lowerer) outline(parent *ir.Module, body []ir.Op, name string) (*ir.Module, []ir.Range, error) {
	used := map[int]bool{}
	for i := range body {
		for _, s := range body[i].Args {
			used[s] = true
		}
		for _, r := range body[i].CallArgs {
			for s := r.Start; s < r.Start+r.Len; s++ {
				used[s] = true
			}
		}
	}
	slots := make([]int, 0, len(used))
	for s := range used {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	slotMap := make(map[int]int, len(slots))
	for i, s := range slots {
		slotMap[s] = i
	}
	// Parameters: one per maximal contiguous parent run.
	var params []ir.Reg
	var args []ir.Range
	for i := 0; i < len(slots); {
		j := i + 1
		for j < len(slots) && slots[j] == slots[j-1]+1 {
			j++
		}
		params = append(params, ir.Reg{Name: fmt.Sprintf("p%d", len(params)), Size: j - i})
		args = append(args, ir.Range{Start: slots[i], Len: j - i})
		i = j
	}
	synth := ir.NewModule(name, params, nil)
	for i := range body {
		op := body[i]
		newArgs := make([]int, len(op.Args))
		for k, s := range op.Args {
			newArgs[k] = slotMap[s]
		}
		op.Args = newArgs
		newRanges := make([]ir.Range, len(op.CallArgs))
		for k, r := range op.CallArgs {
			// Contiguity is preserved: every slot of r is in the used
			// set, so consecutive parent slots map to consecutive
			// synthetic slots.
			newRanges[k] = ir.Range{Start: slotMap[r.Start], Len: r.Len}
		}
		op.CallArgs = newRanges
		synth.Ops = append(synth.Ops, op)
	}
	return synth, args, nil
}

// blockUsesVar reports whether any expression in the block references the
// named loop variable.
func blockUsesVar(b *ast.Block, name string) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.DeclStmt:
			if st.Size != nil && exprUsesVar(st.Size, name) {
				return true
			}
		case *ast.GateStmt:
			for i := range st.Args {
				if qubitUsesVar(&st.Args[i], name) {
					return true
				}
			}
			if st.Angle != nil && exprUsesVar(st.Angle, name) {
				return true
			}
		case *ast.CallStmt:
			for i := range st.Args {
				if qubitUsesVar(&st.Args[i], name) {
					return true
				}
			}
		case *ast.ForStmt:
			if exprUsesVar(st.Lo, name) || exprUsesVar(st.Hi, name) || blockUsesVar(st.Body, name) {
				return true
			}
		case *ast.IfStmt:
			if exprUsesVar(st.Cond.L, name) || exprUsesVar(st.Cond.R, name) {
				return true
			}
			if blockUsesVar(st.Then, name) {
				return true
			}
			if st.Else != nil && blockUsesVar(st.Else, name) {
				return true
			}
		}
	}
	return false
}

func qubitUsesVar(q *ast.QubitExpr, name string) bool {
	if q.Index != nil && exprUsesVar(q.Index, name) {
		return true
	}
	return q.SliceHi != nil && exprUsesVar(q.SliceHi, name)
}

func exprUsesVar(e ast.Expr, name string) bool {
	switch ex := e.(type) {
	case *ast.VarRef:
		return ex.Name == name
	case *ast.NegExpr:
		return exprUsesVar(ex.E, name)
	case *ast.BinExpr:
		return exprUsesVar(ex.L, name) || exprUsesVar(ex.R, name)
	}
	return false
}

func evalInt(vars map[string]int64, e ast.Expr) (int64, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return ex.Value, nil
	case *ast.FloatLit:
		return 0, fmt.Errorf("lower: %s: float literal in integer context", ex.Pos)
	case *ast.VarRef:
		v, ok := vars[ex.Name]
		if !ok {
			return 0, fmt.Errorf("lower: %s: unbound variable %q", ex.Pos, ex.Name)
		}
		return v, nil
	case *ast.NegExpr:
		v, err := evalInt(vars, ex.E)
		return -v, err
	case *ast.BinExpr:
		a, err := evalInt(vars, ex.L)
		if err != nil {
			return 0, err
		}
		b, err := evalInt(vars, ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case scaffold.Plus:
			return a + b, nil
		case scaffold.Minus:
			return a - b, nil
		case scaffold.Star:
			return a * b, nil
		case scaffold.Slash:
			if b == 0 {
				return 0, fmt.Errorf("lower: %s: division by zero", ex.Pos)
			}
			return a / b, nil
		case scaffold.Percent:
			if b == 0 {
				return 0, fmt.Errorf("lower: %s: modulo by zero", ex.Pos)
			}
			return a % b, nil
		case scaffold.Shl:
			if b < 0 || b > 62 {
				return 0, fmt.Errorf("lower: %s: shift amount %d out of range", ex.Pos, b)
			}
			return a << uint(b), nil
		}
		return 0, fmt.Errorf("lower: %s: unknown operator %s", ex.Pos, ex.Op)
	}
	return 0, fmt.Errorf("lower: unknown expression %T", e)
}

func evalAngle(vars map[string]int64, e ast.Expr) (float64, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		return float64(ex.Value), nil
	case *ast.FloatLit:
		return ex.Value, nil
	case *ast.VarRef:
		v, ok := vars[ex.Name]
		if !ok {
			return 0, fmt.Errorf("lower: %s: unbound variable %q", ex.Pos, ex.Name)
		}
		return float64(v), nil
	case *ast.NegExpr:
		v, err := evalAngle(vars, ex.E)
		return -v, err
	case *ast.BinExpr:
		a, err := evalAngle(vars, ex.L)
		if err != nil {
			return 0, err
		}
		b, err := evalAngle(vars, ex.R)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case scaffold.Plus:
			return a + b, nil
		case scaffold.Minus:
			return a - b, nil
		case scaffold.Star:
			return a * b, nil
		case scaffold.Slash:
			if b == 0 {
				return 0, fmt.Errorf("lower: %s: division by zero in angle", ex.Pos)
			}
			return a / b, nil
		case scaffold.Percent, scaffold.Shl:
			ai, bi := int64(a), int64(b)
			if ex.Op == scaffold.Percent {
				if bi == 0 {
					return 0, fmt.Errorf("lower: %s: modulo by zero in angle", ex.Pos)
				}
				return float64(ai % bi), nil
			}
			if bi < 0 || bi > 62 {
				return 0, fmt.Errorf("lower: %s: shift amount %d out of range", ex.Pos, bi)
			}
			return float64(ai << uint(bi)), nil
		}
		return 0, fmt.Errorf("lower: %s: unknown operator %s", ex.Pos, ex.Op)
	}
	return 0, fmt.Errorf("lower: unknown angle expression %T", e)
}

func evalCond(vars map[string]int64, c ast.Cond) (bool, error) {
	a, err := evalInt(vars, c.L)
	if err != nil {
		return false, err
	}
	b, err := evalInt(vars, c.R)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case scaffold.Lt:
		return a < b, nil
	case scaffold.Le:
		return a <= b, nil
	case scaffold.Gt:
		return a > b, nil
	case scaffold.Ge:
		return a >= b, nil
	case scaffold.EqEq:
		return a == b, nil
	case scaffold.NotEq:
		return a != b, nil
	}
	return false, fmt.Errorf("lower: %s: unknown comparison %s", c.Pos, c.Op)
}
