package lower_test

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lower"
	"github.com/scaffold-go/multisimd/internal/parser"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/sema"
)

func lowerSrc(t *testing.T, src string, opts lower.Options) *ir.Program {
	t.Helper()
	ast, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(ast); err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := lower.Lower(ast, "main", opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestLowerBasic(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q[2];
  H(q[0]);
  CNOT(q[0], q[1]);
}`, lower.Options{})
	m := p.EntryModule()
	if m.TotalSlots() != 2 || len(m.Ops) != 2 {
		t.Fatalf("slots=%d ops=%d", m.TotalSlots(), len(m.Ops))
	}
	if m.Ops[0].Gate != qasm.H || m.Ops[1].Gate != qasm.CNOT {
		t.Errorf("gates: %v %v", m.Ops[0].Gate, m.Ops[1].Gate)
	}
	if m.Ops[1].Args[0] != 0 || m.Ops[1].Args[1] != 1 {
		t.Errorf("CNOT args: %v", m.Ops[1].Args)
	}
}

func TestLowerUnrollsVarDependentLoops(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q[5];
  for (i = 0; i < 5; i++) { H(q[i]); }
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 5 {
		t.Fatalf("expected 5 unrolled ops, got %d", len(m.Ops))
	}
	for i, op := range m.Ops {
		if op.Args[0] != i {
			t.Errorf("op %d targets slot %d", i, op.Args[0])
		}
	}
}

func TestLowerCollapsesSingleOpLoops(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  for (i = 0; i < 1000000; i++) { H(q); }
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 1 {
		t.Fatalf("expected 1 collapsed op, got %d", len(m.Ops))
	}
	if m.Ops[0].Count != 1000000 {
		t.Errorf("count = %d", m.Ops[0].Count)
	}
}

func TestLowerOutlinesMultiOpLoops(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q[2];
  for (i = 0; i < 1000; i++) {
    H(q[0]);
    CNOT(q[0], q[1]);
  }
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 1 || m.Ops[0].Kind != ir.CallOp {
		t.Fatalf("expected 1 synthetic call, got %+v", m.Ops)
	}
	if m.Ops[0].Count != 1000 {
		t.Errorf("count = %d", m.Ops[0].Count)
	}
	synth := p.Modules[m.Ops[0].Callee]
	if synth == nil || len(synth.Ops) != 2 {
		t.Fatalf("synthetic module wrong: %+v", synth)
	}
	// (AB)^n semantics preserved: program gate count is 2000.
	if total := synth.MaterializedSize() * m.Ops[0].Count; total != 2000 {
		t.Errorf("expanded size %d", total)
	}
}

func TestLowerSmallLoopInlines(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q[2];
  for (i = 0; i < 3; i++) {
    H(q[0]);
    CNOT(q[0], q[1]);
  }
}`, lower.Options{})
	if got := len(p.EntryModule().Ops); got != 6 {
		t.Fatalf("expected 6 unrolled ops, got %d", got)
	}
}

func TestLowerIfResolution(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  for (i = 0; i < 4; i++) {
    if (i % 2 == 0) { X(q); } else { Z(q); }
  }
}`, lower.Options{})
	m := p.EntryModule()
	want := []qasm.Opcode{qasm.X, qasm.Z, qasm.X, qasm.Z}
	if len(m.Ops) != 4 {
		t.Fatalf("got %d ops", len(m.Ops))
	}
	for i, op := range m.Ops {
		if op.Gate != want[i] {
			t.Errorf("op %d: %v want %v", i, op.Gate, want[i])
		}
	}
}

func TestLowerLocalHoisting(t *testing.T) {
	// Ancilla declared in a loop body reuses slots across iterations.
	p := lowerSrc(t, `
module main() {
  qbit q;
  for (i = 0; i < 8; i++) {
    qbit anc[2];
    CNOT(q, anc[0]);
    CNOT(q, anc[1]);
  }
}`, lower.Options{})
	m := p.EntryModule()
	if m.TotalSlots() != 3 {
		t.Errorf("expected 3 slots (q + hoisted anc[2]), got %d", m.TotalSlots())
	}
}

func TestLowerSliceArgs(t *testing.T) {
	p := lowerSrc(t, `
module f(qbit x[2]) { CNOT(x[0], x[1]); }
module main() {
  qbit q[6];
  f(q[2:4]);
}`, lower.Options{})
	m := p.EntryModule()
	call := m.Ops[0]
	if call.Kind != ir.CallOp || len(call.CallArgs) != 1 {
		t.Fatalf("call: %+v", call)
	}
	if call.CallArgs[0] != (ir.Range{Start: 2, Len: 2}) {
		t.Errorf("range: %+v", call.CallArgs[0])
	}
}

func TestLowerAngles(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  Rz(q, 3.0/2);
  for (i = 1; i < 3; i++) { Rz(q, i * 0.25); }
}`, lower.Options{})
	m := p.EntryModule()
	if m.Ops[0].Angle != 1.5 {
		t.Errorf("angle 0: %g", m.Ops[0].Angle)
	}
	if m.Ops[1].Angle != 0.25 || m.Ops[2].Angle != 0.5 {
		t.Errorf("loop angles: %g %g", m.Ops[1].Angle, m.Ops[2].Angle)
	}
}

func TestLowerIndexOutOfRange(t *testing.T) {
	ast, err := parser.Parse(`
module main() {
  qbit q[4];
  for (i = 0; i < 5; i++) { H(q[i]); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(ast); err != nil {
		t.Fatal(err)
	}
	if _, err := lower.Lower(ast, "main", lower.Options{}); err == nil {
		t.Error("accepted out-of-range index")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestLowerMaxUnrollGuard(t *testing.T) {
	ast, err := parser.Parse(`
module main() {
  qbit q[8];
  for (i = 0; i < 100; i++) { H(q[i % 8]); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lower.Lower(ast, "main", lower.Options{MaxUnroll: 50}); err == nil {
		t.Error("exceeded MaxUnroll silently")
	}
}

func TestLowerValidatesResult(t *testing.T) {
	p := lowerSrc(t, `
module leaf(qbit a) { H(a); }
module mid(qbit a, qbit b) { leaf(a); leaf(b); }
module main() { qbit q[2]; mid(q[0], q[1]); }`, lower.Options{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo, err := p.Topo(); err != nil || len(topo) != 3 {
		t.Errorf("topo: %v %v", topo, err)
	}
}

func TestLowerExpressionEvaluation(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q[64];
  H(q[(1 << 4) + 3]);
  H(q[10 % 3]);
  H(q[-(-7)]);
  H(q[20 / 4]);
}`, lower.Options{})
	m := p.EntryModule()
	want := []int{19, 1, 7, 5}
	for i, w := range want {
		if m.Ops[i].Args[0] != w {
			t.Errorf("op %d targets %d, want %d", i, m.Ops[i].Args[0], w)
		}
	}
}

func TestLowerCondVariants(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  if (1 <= 1) { X(q); }
  if (2 >= 3) { Y(q); }
  if (2 > 1) { Z(q); }
  if (1 != 1) { H(q); }
  if (4 == 4) { T(q); }
}`, lower.Options{})
	m := p.EntryModule()
	got := make([]qasm.Opcode, len(m.Ops))
	for i := range m.Ops {
		got[i] = m.Ops[i].Gate
	}
	want := []qasm.Opcode{qasm.X, qasm.Z, qasm.T}
	if len(got) != len(want) {
		t.Fatalf("ops: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d: %v want %v", i, got[i], want[i])
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := map[string]string{
		"division by zero":    `module main() { qbit q[4]; H(q[1/0]); }`,
		"modulo by zero":      `module main() { qbit q[4]; H(q[1%0]); }`,
		"shift out of range":  `module main() { qbit q[4]; H(q[1 << 63]); }`,
		"negative decl size":  `module main() { qbit q[1-5]; H(q[0]); }`,
		"slice out of range":  `module f(qbit x[2]) { H(x[0]); } module main() { qbit q[4]; f(q[3:5]); }`,
		"inverted slice":      `module f(qbit x[2]) { H(x[0]); } module main() { qbit q[4]; f(q[3:1]); }`,
		"arg width mismatch":  `module f(qbit x[3]) { H(x[0]); } module main() { qbit q[4]; f(q[0:2]); }`,
		"wide gate operand":   `module main() { qbit q[4]; H(q); }`,
		"angle division zero": `module main() { qbit q; Rz(q, 1.0/0); }`,
	}
	for name, src := range cases {
		ast, err := parser.Parse(src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", name, err)
			continue
		}
		if err := sema.Check(ast); err != nil {
			continue // sema may legitimately catch some
		}
		if _, err := lower.Lower(ast, "main", lower.Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLowerLoopVarAngles(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  for (i = 1; i < 4; i++) {
    Rz(q, i);
  }
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 3 {
		t.Fatalf("ops: %d", len(m.Ops))
	}
	for i, want := range []float64{1, 2, 3} {
		if m.Ops[i].Angle != want {
			t.Errorf("angle %d: %g", i, m.Ops[i].Angle)
		}
	}
}

func TestLowerEmptyLoop(t *testing.T) {
	p := lowerSrc(t, `
module main() {
  qbit q;
  for (i = 5; i < 3; i++) { H(q); }
  X(q);
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 1 || m.Ops[0].Gate != qasm.X {
		t.Errorf("empty loop mis-lowered: %+v", m.Ops)
	}
}

func TestLowerNestedCollapse(t *testing.T) {
	// Outer loop var-independent with a large trip over a body holding
	// an inner unrolled loop: outlined synthetic module, repeated.
	p := lowerSrc(t, `
module main() {
  qbit q[3];
  for (i = 0; i < 500; i++) {
    for (j = 0; j < 3; j++) {
      H(q[j]);
    }
    X(q[0]);
  }
}`, lower.Options{})
	m := p.EntryModule()
	if len(m.Ops) != 1 || m.Ops[0].Kind != ir.CallOp || m.Ops[0].Count != 500 {
		t.Fatalf("outer loop not collapsed: %+v", m.Ops)
	}
	synth := p.Modules[m.Ops[0].Callee]
	if len(synth.Ops) != 4 {
		t.Errorf("synthetic body: %d ops", len(synth.Ops))
	}
}
