package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/scaffold-go/multisimd/internal/ir"
)

// CodecSchema versions the on-wire schedule encoding.
const CodecSchema = 1

// jsonSchedule is the wire form. The module body itself does not ride
// along — a schedule is meaningless without its module, so the encoding
// pins the module by name and content fingerprint and ReadJSON refuses
// to bind to a module that does not hash identically.
type jsonSchedule struct {
	Schema      int         `json:"schema"`
	Module      string      `json:"module"`
	Fingerprint string      `json:"fingerprint"`
	K           int         `json:"k"`
	D           int         `json:"d"`
	Steps       [][][]int32 `json:"steps"`
}

// WriteJSON serializes the schedule as versioned JSON.
func WriteJSON(w io.Writer, s *Schedule) error {
	if s.M == nil {
		return fmt.Errorf("schedule: cannot encode schedule without a module")
	}
	js := jsonSchedule{
		Schema:      CodecSchema,
		Module:      s.M.Name,
		Fingerprint: s.M.Fingerprint().String(),
		K:           s.K,
		D:           s.D,
		Steps:       make([][][]int32, len(s.Steps)),
	}
	for t := range s.Steps {
		js.Steps[t] = s.Steps[t].Regions
	}
	return json.NewEncoder(w).Encode(&js)
}

// ReadJSON decodes a schedule written by WriteJSON and rebinds it to m,
// which must carry the identical content fingerprint the schedule was
// recorded against (op indices are only meaningful relative to that
// exact body). The round trip is lossless: the decoded schedule yields
// the same digest as the original.
func ReadJSON(r io.Reader, m *ir.Module) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: decode: %w", err)
	}
	if js.Schema != CodecSchema {
		return nil, fmt.Errorf("schedule: schema %d, this build reads %d", js.Schema, CodecSchema)
	}
	if m == nil {
		return nil, fmt.Errorf("schedule: no module to bind %q to", js.Module)
	}
	if fp := m.Fingerprint().String(); fp != js.Fingerprint {
		return nil, fmt.Errorf("schedule: recorded against %s fingerprint %s, module %s hashes %s",
			js.Module, js.Fingerprint, m.Name, fp)
	}
	s := &Schedule{M: m, K: js.K, D: js.D, Steps: make([]Step, len(js.Steps))}
	for t := range js.Steps {
		s.Steps[t] = Step{Regions: js.Steps[t]}
	}
	return s, nil
}
