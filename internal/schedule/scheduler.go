package schedule

import (
	"fmt"
	"sort"
	"sync"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
)

// Scheduler is the uniform interface over the fine-grained scheduling
// algorithms (paper §4): given a materialized leaf module and its
// dependency DAG, produce a Multi-SIMD(k,d) schedule. Implementations
// must be deterministic — identical inputs yield identical schedules —
// because the hierarchical evaluation engine characterizes leaves
// concurrently and caches the results by content fingerprint.
type Scheduler interface {
	// Name identifies the algorithm ("rcp", "lpfs") in registries,
	// command-line flags and cache keys.
	Name() string
	// Schedule runs the algorithm on module m with dependency graph g
	// using k SIMD regions of data parallelism d (0 = unbounded).
	Schedule(m *ir.Module, g *dag.Graph, k, d int) (*Schedule, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Scheduler{}
)

// Register adds a scheduler to the global registry under its Name. The
// rcp and lpfs packages self-register at init time; later registrations
// of the same name replace earlier ones, letting experiments swap in
// tuned variants.
func Register(s Scheduler) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[s.Name()] = s
}

// Lookup returns the registered scheduler of the given name.
func Lookup(name string) (Scheduler, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// MustLookup is Lookup for names that are known to be registered (the
// built-in algorithms); it panics otherwise.
func MustLookup(name string) Scheduler {
	s, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("schedule: no registered scheduler %q", name))
	}
	return s
}

// Names lists the registered scheduler names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
