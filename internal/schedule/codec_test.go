package schedule_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"

	_ "github.com/scaffold-go/multisimd/internal/lpfs"
	_ "github.com/scaffold-go/multisimd/internal/rcp"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	// The registry tests in this package register fakes, so iterate the
	// real built-ins explicitly rather than schedule.Names().
	for _, name := range []string{"rcp", "lpfs"} {
		sched := schedule.MustLookup(name)
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 20; trial++ {
			m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 40, Qubits: 4 + trial%3})
			g, err := dag.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			k := 1 + trial%4
			s, err := sched.Schedule(m, g, k, 0)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			var buf bytes.Buffer
			if err := schedule.WriteJSON(&buf, s); err != nil {
				t.Fatalf("%s trial %d: encode: %v", name, trial, err)
			}
			loaded, err := schedule.ReadJSON(bytes.NewReader(buf.Bytes()), m)
			if err != nil {
				t.Fatalf("%s trial %d: decode: %v", name, trial, err)
			}
			if got, want := verify.ScheduleDigest(loaded), verify.ScheduleDigest(s); got != want {
				t.Fatalf("%s trial %d: digest drifted through JSON: %x -> %x", name, trial, want, got)
			}
			if err := loaded.Validate(g); err != nil {
				t.Fatalf("%s trial %d: decoded schedule illegal: %v", name, trial, err)
			}
		}
	}
}

// TestScheduleJSONFingerprintGuard pins the codec's central safety
// property: a schedule cannot be rebound to a module that does not hash
// identically to the one it was recorded against.
func TestScheduleJSONFingerprintGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 20})
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.MustLookup("lpfs").Schedule(m, g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := schedule.WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	other := verify.RandomLeaf(rng, verify.GenOptions{Ops: 20})
	if _, err := schedule.ReadJSON(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("rebound schedule to a different module without error")
	}
	if _, err := schedule.ReadJSON(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("bound schedule to nil module without error")
	}
	if _, err := schedule.ReadJSON(strings.NewReader(`{"schema":99}`), m); err == nil {
		t.Fatal("accepted unknown schema")
	}
}
