package schedule_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func mod(t *testing.T) (*ir.Module, *dag.Graph) {
	t.Helper()
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	m.Gate(qasm.H, 0).Gate(qasm.H, 1).Gate(qasm.CNOT, 0, 1).Gate(qasm.X, 2).Gate(qasm.X, 3)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestSequentialSchedule(t *testing.T) {
	m, g := mod(t)
	s := schedule.Sequential(m, 1)
	if s.Length() != 5 || s.Width() != 1 || s.TotalOps() != 5 {
		t.Fatalf("len=%d width=%d ops=%d", s.Length(), s.Width(), s.TotalOps())
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestValidSIMDSchedule(t *testing.T) {
	m, g := mod(t)
	s := &schedule.Schedule{M: m, K: 2, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}, {3, 4}}}, // H group, X group
		{Regions: [][]int32{{2}}},            // CNOT
	}}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.Width() != 2 {
		t.Errorf("width %d", s.Width())
	}
	at := s.StepOf()
	if at[2] != 1 {
		t.Errorf("CNOT at step %d", at[2])
	}
	reg := s.RegionOf()
	if reg[3] != 1 || reg[0] != 0 {
		t.Errorf("regions: %v", reg)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	m, g := mod(t)
	cases := map[string]*schedule.Schedule{
		"mixed types in region": {M: m, K: 2, Steps: []schedule.Step{
			{Regions: [][]int32{{0, 3}}},
			{Regions: [][]int32{{1, 4}}},
			{Regions: [][]int32{{2}}},
		}},
		"dependency violated": {M: m, K: 2, Steps: []schedule.Step{
			{Regions: [][]int32{{0}, {2}}},
			{Regions: [][]int32{{1}, {3}}},
			{Regions: [][]int32{{4}}},
		}},
		"op missing": {M: m, K: 2, Steps: []schedule.Step{
			{Regions: [][]int32{{0, 1}}},
			{Regions: [][]int32{{2}, {3}}},
		}},
		"op twice": {M: m, K: 2, Steps: []schedule.Step{
			{Regions: [][]int32{{0, 1}}},
			{Regions: [][]int32{{2}, {3}}},
			{Regions: [][]int32{{3, 4}}},
		}},
		"too many regions": {M: m, K: 1, Steps: []schedule.Step{
			{Regions: [][]int32{{0}, {1}}},
			{Regions: [][]int32{{2}}},
			{Regions: [][]int32{{3, 4}}},
		}},
	}
	for name, s := range cases {
		if err := s.Validate(g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDLimit(t *testing.T) {
	m, g := mod(t)
	s := &schedule.Schedule{M: m, K: 1, D: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}}},
		{Regions: [][]int32{{2}}},
		{Regions: [][]int32{{3, 4}}},
	}}
	if err := s.Validate(g); err == nil {
		t.Error("d limit not enforced")
	}
	s.D = 2
	// CNOT uses 2 qubits, fits d=2.
	if err := s.Validate(g); err != nil {
		t.Errorf("d=2 should fit: %v", err)
	}
}

func TestGroupKeyAngles(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Rot(qasm.Rz, 0.5, 0).Rot(qasm.Rz, 0.7, 1)
	k0 := schedule.KeyOf(m, 0)
	k1 := schedule.KeyOf(m, 1)
	if k0 == k1 {
		t.Error("distinct-angle rotations share a group key (Table 2 violated)")
	}
	m2 := ir.NewModule("m2", nil, []ir.Reg{{Name: "q", Size: 2}})
	m2.Gate(qasm.H, 0).Gate(qasm.H, 1)
	if schedule.KeyOf(m2, 0) != schedule.KeyOf(m2, 1) {
		t.Error("same-type gates have different keys")
	}
}
