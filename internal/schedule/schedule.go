// Package schedule defines the Multi-SIMD schedule representation shared
// by all schedulers (paper §4): a list of sequential timesteps, each
// holding per-region unsorted operation lists. Region 0 of the paper's
// representation — the move list — is produced separately by the
// communication pass (package comm), which annotates a Schedule.
package schedule

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// Step is one logical timestep: Regions[r] lists the ops (indices into
// the module body) executing in SIMD region r.
type Step struct {
	Regions [][]int32
}

// Busy returns how many regions execute at least one op.
func (s *Step) Busy() int {
	n := 0
	for _, ops := range s.Regions {
		if len(ops) > 0 {
			n++
		}
	}
	return n
}

// Ops returns the total number of ops in the step.
func (s *Step) Ops() int {
	n := 0
	for _, ops := range s.Regions {
		n += len(ops)
	}
	return n
}

// Schedule is a complete fine-grained schedule of one materialized leaf
// module onto a Multi-SIMD(k,d) machine.
type Schedule struct {
	M     *ir.Module
	K     int
	D     int // qubits per region per step; 0 means unbounded (d = ∞)
	Steps []Step
}

// Length returns the schedule length in logical timesteps.
func (s *Schedule) Length() int { return len(s.Steps) }

// Width returns the highest degree of operation-level parallelism: the
// maximum number of simultaneously busy regions in any step. This is the
// blackbox width used by the hierarchical scheduler (paper §4.3).
func (s *Schedule) Width() int {
	w := 0
	for i := range s.Steps {
		if b := s.Steps[i].Busy(); b > w {
			w = b
		}
	}
	return w
}

// TotalOps returns the number of scheduled operations.
func (s *Schedule) TotalOps() int {
	n := 0
	for i := range s.Steps {
		n += s.Steps[i].Ops()
	}
	return n
}

// GroupKey identifies a SIMD-compatible operation class: a region applies
// one gate type per step, and rotations with distinct angles are distinct
// operations (paper Table 2).
type GroupKey struct {
	Op    qasm.Opcode
	Angle float64
}

// KeyOf returns the group key of op i of module m.
func KeyOf(m *ir.Module, i int32) GroupKey {
	op := &m.Ops[i]
	k := GroupKey{Op: op.Gate}
	if op.Gate.IsRotation() {
		k.Angle = op.Angle
	}
	return k
}

// Validate checks the schedule against the module's dependency graph and
// the Multi-SIMD execution model:
//
//   - every op appears exactly once,
//   - ops sharing a region-step carry the same group key (SIMD),
//   - region-step qubit usage respects d,
//   - every dependency is satisfied in a strictly earlier timestep.
func (s *Schedule) Validate(g *dag.Graph) error {
	if g.M != s.M {
		return fmt.Errorf("schedule: graph is for module %s, schedule for %s", g.M.Name, s.M.Name)
	}
	n := g.Len()
	at := make([]int32, n)
	for i := range at {
		at[i] = -1
	}
	for t := range s.Steps {
		step := &s.Steps[t]
		if len(step.Regions) > s.K {
			return fmt.Errorf("schedule: step %d uses %d regions, k = %d", t, len(step.Regions), s.K)
		}
		for r, ops := range step.Regions {
			if len(ops) == 0 {
				continue
			}
			key := KeyOf(s.M, ops[0])
			qubits := 0
			for _, op := range ops {
				if op < 0 || int(op) >= n {
					return fmt.Errorf("schedule: step %d region %d references op %d of %d", t, r, op, n)
				}
				if at[op] >= 0 {
					return fmt.Errorf("schedule: op %d scheduled twice (steps %d and %d)", op, at[op], t)
				}
				at[op] = int32(t)
				if k := KeyOf(s.M, op); k != key {
					return fmt.Errorf("schedule: step %d region %d mixes %v and %v", t, r, key, k)
				}
				qubits += len(s.M.Ops[op].Args)
			}
			if s.D > 0 && qubits > s.D {
				return fmt.Errorf("schedule: step %d region %d operates on %d qubits, d = %d", t, r, qubits, s.D)
			}
		}
	}
	for i := 0; i < n; i++ {
		if at[i] < 0 {
			return fmt.Errorf("schedule: op %d never scheduled", i)
		}
		for _, p := range g.Preds[i] {
			if at[p] >= at[i] {
				return fmt.Errorf("schedule: op %d at step %d before dependency %d at step %d",
					i, at[i], p, at[p])
			}
		}
	}
	return nil
}

// StepOf returns, for each op, the timestep it is scheduled in. It
// assumes a valid schedule.
func (s *Schedule) StepOf() []int32 {
	at := make([]int32, len(s.M.Ops))
	for i := range at {
		at[i] = -1
	}
	for t := range s.Steps {
		for _, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				at[op] = int32(t)
			}
		}
	}
	return at
}

// RegionOf returns, for each op, the region it is scheduled in.
func (s *Schedule) RegionOf() []int32 {
	at := make([]int32, len(s.M.Ops))
	for i := range at {
		at[i] = -1
	}
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				at[op] = int32(r)
			}
		}
	}
	return at
}

// Sequential builds the trivial 1-op-per-step schedule used as the
// paper's sequential baseline.
func Sequential(m *ir.Module, k int) *Schedule {
	s := &Schedule{M: m, K: k}
	s.Steps = make([]Step, len(m.Ops))
	for i := range m.Ops {
		regions := make([][]int32, 1)
		regions[0] = []int32{int32(i)}
		s.Steps[i] = Step{Regions: regions}
	}
	return s
}
