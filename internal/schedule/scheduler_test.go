package schedule

import (
	"fmt"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
)

type fakeScheduler struct{ name string }

func (f fakeScheduler) Name() string { return f.name }
func (f fakeScheduler) Schedule(m *ir.Module, g *dag.Graph, k, d int) (*Schedule, error) {
	return nil, fmt.Errorf("fake")
}

func TestRegistry(t *testing.T) {
	Register(fakeScheduler{name: "fake-test"})
	s, ok := Lookup("fake-test")
	if !ok || s.Name() != "fake-test" {
		t.Fatalf("Lookup after Register: %v %v", s, ok)
	}
	if _, ok := Lookup("never-registered"); ok {
		t.Error("Lookup of unregistered name succeeded")
	}
	found := false
	for _, n := range Names() {
		if n == "fake-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing fake-test", Names())
	}
	if MustLookup("fake-test").Name() != "fake-test" {
		t.Error("MustLookup mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unregistered name did not panic")
		}
	}()
	MustLookup("never-registered")
}

// TestRegistryReplace pins the latest-wins semantics experiments rely on
// when swapping in tuned variants.
func TestRegistryReplace(t *testing.T) {
	Register(fakeScheduler{name: "replace-test"})
	second := fakeScheduler{name: "replace-test"}
	Register(second)
	s, _ := Lookup("replace-test")
	if s != Scheduler(second) {
		t.Error("second registration did not replace the first")
	}
}
