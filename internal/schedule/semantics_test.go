package schedule_test

import (
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/sim"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// runScheduledOrder applies the module's gates in schedule order
// (timestep by timestep, region by region) to a state.
func runScheduledOrder(t *testing.T, st *sim.State, s *schedule.Schedule) {
	t.Helper()
	for _, step := range s.Steps {
		for _, ops := range step.Regions {
			for _, op := range ops {
				o := &s.M.Ops[op]
				if err := st.Apply(o.Gate, o.Angle, o.Args...); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestScheduledOrderPreservesSemantics is the semantic soundness check
// for the whole scheduling layer: replaying a circuit in its scheduled
// order — which reorders and groups commuting operations — must produce
// the same quantum state as program order, for both schedulers, across
// machine shapes.
func TestScheduledOrderPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nQubits = 5
	for trial := 0; trial < 25; trial++ {
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 60, Qubits: nQubits})
		g, err := dag.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sim.NewRandomState(nQubits, rng)
		if err != nil {
			t.Fatal(err)
		}
		progOrder := ref.Clone()
		if err := progOrder.RunModule(m); err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4} {
			sr, err := rcp.Schedule(m, g, rcp.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			stR := ref.Clone()
			runScheduledOrder(t, stR, sr)
			if !sim.EqualUpToPhase(progOrder, stR, 1e-8) {
				t.Fatalf("trial %d k=%d: RCP schedule changes semantics", trial, k)
			}
			sl, err := lpfs.Schedule(m, g, lpfs.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			stL := ref.Clone()
			runScheduledOrder(t, stL, sl)
			if !sim.EqualUpToPhase(progOrder, stL, 1e-8) {
				t.Fatalf("trial %d k=%d: LPFS schedule changes semantics", trial, k)
			}
		}
	}
}
