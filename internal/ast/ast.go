// Package ast defines the abstract syntax tree for Scaffold-lite programs.
//
// The language is deliberately close to the paper's Scaffold subset that
// matters for scheduling: module definitions over qbit registers, built-in
// gate applications, module calls, and fully classical control flow
// (for loops with compile-time bounds, if/else over compile-time integer
// conditions). All classical expressions are integers except gate angles,
// which are floating point.
package ast

import "github.com/scaffold-go/multisimd/internal/scaffold"

// Program is a parsed source file: an ordered list of module definitions.
type Program struct {
	Modules []*Module
}

// Module is one module definition.
type Module struct {
	Name   string
	Params []Param
	Body   *Block
	Pos    scaffold.Pos
}

// Param declares one qbit (or cbit) parameter. Size 1 denotes a scalar;
// larger sizes are register arrays. Classical parameters are accepted for
// surface compatibility but carry no qubits.
type Param struct {
	Name      string
	Size      int
	Classical bool
	Pos       scaffold.Pos
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// DeclStmt declares a local qbit/cbit register. Size is an integer
// expression resolved during lowering.
type DeclStmt struct {
	Name      string
	Size      Expr // nil for scalar
	Classical bool
	Pos       scaffold.Pos
}

// GateStmt applies a built-in gate. Angle is non-nil for rotations.
type GateStmt struct {
	Name  string
	Args  []QubitExpr
	Angle Expr
	Pos   scaffold.Pos
}

// CallStmt invokes another module.
type CallStmt struct {
	Callee string
	Args   []QubitExpr
	Pos    scaffold.Pos
}

// ForStmt is a classical counted loop: for (i = lo; i < hi; i++) body.
type ForStmt struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Body *Block
	Pos  scaffold.Pos
}

// IfStmt is a classical compile-time conditional.
type IfStmt struct {
	Cond Cond
	Then *Block
	Else *Block // may be nil
	Pos  scaffold.Pos
}

func (*DeclStmt) stmt() {}
func (*GateStmt) stmt() {}
func (*CallStmt) stmt() {}
func (*ForStmt) stmt()  {}
func (*IfStmt) stmt()   {}

// Cond is a comparison between two integer expressions.
type Cond struct {
	Op  scaffold.Kind // Lt, Le, Gt, Ge, EqEq, NotEq
	L   Expr
	R   Expr
	Pos scaffold.Pos
}

// QubitExpr references qubits as a gate or call argument: a whole register
// (Index and SliceHi nil), one element (Index non-nil), or a half-open
// slice name[Lo:Hi] (Index = Lo, SliceHi = Hi).
type QubitExpr struct {
	Name    string
	Index   Expr
	SliceHi Expr
	Pos     scaffold.Pos
}

// IsSlice reports whether the reference is a slice.
func (q QubitExpr) IsSlice() bool { return q.SliceHi != nil }

// IsWhole reports whether the reference names a whole register.
func (q QubitExpr) IsWhole() bool { return q.Index == nil && q.SliceHi == nil }

// Expr is a classical expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   scaffold.Pos
}

// FloatLit is a floating-point literal (angles only).
type FloatLit struct {
	Value float64
	Pos   scaffold.Pos
}

// VarRef references a loop variable.
type VarRef struct {
	Name string
	Pos  scaffold.Pos
}

// BinExpr is a binary arithmetic expression over integers (or one float
// at the top of an angle expression).
type BinExpr struct {
	Op  scaffold.Kind // Plus, Minus, Star, Slash, Percent, Shl
	L   Expr
	R   Expr
	Pos scaffold.Pos
}

// NegExpr is unary negation.
type NegExpr struct {
	E   Expr
	Pos scaffold.Pos
}

func (*IntLit) expr()   {}
func (*FloatLit) expr() {}
func (*VarRef) expr()   {}
func (*BinExpr) expr()  {}
func (*NegExpr) expr()  {}
