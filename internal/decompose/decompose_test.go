package decompose_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/decompose"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/sim"
)

// runBoth runs the original and decomposed versions of a single-gate
// module from random states and compares up to global phase.
func runBoth(t *testing.T, op qasm.Opcode, angle float64, n int, opts decompose.Options) {
	t.Helper()
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: n}})
	args := make([]int, op.Arity())
	for i := range args {
		args[i] = i
	}
	m.Ops = append(m.Ops, ir.Op{Kind: ir.GateOp, Gate: op, Angle: angle, Args: args, Count: 1})
	p.Add(m)

	dp := p.Clone()
	if _, err := decompose.Program(dp, opts); err != nil {
		t.Fatal(err)
	}
	for i := range dp.Modules[dp.Entry].Ops {
		dop := &dp.Modules[dp.Entry].Ops[i]
		if dop.Kind == ir.GateOp && !dop.Gate.IsPrimitive() {
			t.Fatalf("non-primitive %s survived decomposition", dop.Gate)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		orig, err := sim.NewRandomState(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		dec := orig.Clone()
		if err := orig.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		if err := dec.RunProgram(dp); err != nil {
			t.Fatal(err)
		}
		if !sim.EqualUpToPhase(orig, dec, 1e-9) {
			t.Fatalf("%s(%g) decomposition changes semantics", op, angle)
		}
	}
}

func TestToffoliDecomposition(t *testing.T) {
	runBoth(t, qasm.Toffoli, 0, 3, decompose.Options{})
}

func TestFredkinDecomposition(t *testing.T) {
	runBoth(t, qasm.Fredkin, 0, 3, decompose.Options{})
}

func TestSwapDecomposition(t *testing.T) {
	runBoth(t, qasm.Swap, 0, 2, decompose.Options{})
}

func TestExactRotations(t *testing.T) {
	// Multiples of π/4 decompose exactly.
	for k := -8; k <= 8; k++ {
		runBoth(t, qasm.Rz, float64(k)*math.Pi/4, 1, decompose.Options{})
	}
}

func TestExactRxRy(t *testing.T) {
	// Rx/Ry via H/S conjugation of exact Rz.
	runBoth(t, qasm.Rx, math.Pi/2, 1, decompose.Options{})
	runBoth(t, qasm.Ry, math.Pi, 1, decompose.Options{})
}

func TestExactCRz(t *testing.T) {
	// CRz(θ) lowers to Rz(±θ/2) and CNOTs; θ = π/2 keeps both halves
	// exact.
	runBoth(t, qasm.CRz, math.Pi/2, 2, decompose.Options{})
}

func TestApproxSequenceProperties(t *testing.T) {
	// Deterministic per angle; length tracks epsilon; primitive-only.
	a := decompose.ApproxSequence(0.3, 1e-10)
	b := decompose.ApproxSequence(0.3, 1e-10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic sequence")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic sequence content")
		}
	}
	c := decompose.ApproxSequence(0.30001, 1e-10)
	same := len(a) == len(c)
	if same {
		identical := true
		for i := range a {
			if a[i] != c[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("distinct angles produced identical sequences")
		}
	}
	loose := decompose.ApproxSequence(0.3, 1e-4)
	if len(loose) >= len(a) {
		t.Errorf("looser epsilon should shorten: %d vs %d", len(loose), len(a))
	}
	for _, g := range a {
		if !g.IsPrimitive() {
			t.Errorf("non-primitive %s in sequence", g)
		}
	}
	// Equal angles modulo 2π share a sequence (and thus a module).
	d := decompose.ApproxSequence(0.3+2*math.Pi, 1e-10)
	if len(d) != len(a) {
		t.Error("2π-equivalent angles differ")
	}
}

func TestRotationsBecomeBlackboxes(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Rot(qasm.Rz, 0.3, 0)
	m.Rot(qasm.Rz, 0.3, 1)  // same angle: shared module
	m.Rot(qasm.Rz, 0.55, 0) // new angle: new module
	p.Add(m)
	created, err := decompose.Program(p, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if created != 2 {
		t.Errorf("created %d rotation modules, want 2", created)
	}
	calls := 0
	for i := range p.Modules["main"].Ops {
		if p.Modules["main"].Ops[i].Kind == ir.CallOp {
			calls++
		}
	}
	if calls != 3 {
		t.Errorf("%d rotation calls, want 3", calls)
	}
}

func TestInlineRotationsOption(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Rot(qasm.Rz, 0.3, 0)
	p.Add(m)
	created, err := decompose.Program(p, decompose.Options{InlineRotations: true})
	if err != nil {
		t.Fatal(err)
	}
	if created != 0 {
		t.Errorf("created %d modules despite inlining", created)
	}
	if !p.Modules["main"].IsLeaf() {
		t.Error("main should stay a leaf with inline rotations")
	}
	if len(p.Modules["main"].Ops) < 50 {
		t.Errorf("inline sequence suspiciously short: %d", len(p.Modules["main"].Ops))
	}
}

func TestKeepToffoli(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.Toffoli, 0, 1, 2)
	p.Add(m)
	if _, err := decompose.Program(p, decompose.Options{KeepToffoli: true}); err != nil {
		t.Fatal(err)
	}
	if p.Modules["main"].Ops[0].Gate != qasm.Toffoli {
		t.Error("Toffoli expanded despite KeepToffoli")
	}
}

func TestCountedWideGateReplication(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Ops = append(m.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.Toffoli, Args: []int{0, 1, 2}, Count: 4})
	p.Add(m)
	if _, err := decompose.Program(p, decompose.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Modules["main"].Ops); got != 60 { // 4 × 15-gate circuit
		t.Errorf("replicated to %d ops, want 60", got)
	}
}

func TestIdentityRotationVanishes(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Rot(qasm.Rz, 0, 0)
	p.Add(m)
	if _, err := decompose.Program(p, decompose.Options{}); err != nil {
		t.Fatal(err)
	}
	if len(p.Modules["main"].Ops) != 0 {
		t.Errorf("identity rotation left %d ops", len(p.Modules["main"].Ops))
	}
}

func TestEpsilonControlsModuleCount(t *testing.T) {
	// Same angles at different epsilon produce distinct modules (the
	// name is keyed on both), and coarser epsilon means shorter bodies.
	build := func(eps float64) *ir.Program {
		p := ir.NewProgram("main")
		m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
		m.Rot(qasm.Rz, 0.3, 0)
		p.Add(m)
		if _, err := decompose.Program(p, decompose.Options{Epsilon: eps}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	fine := build(1e-12)
	coarse := build(1e-3)
	var fineLen, coarseLen int
	for name, m := range fine.Modules {
		if name != "main" {
			fineLen = len(m.Ops)
		}
	}
	for name, m := range coarse.Modules {
		if name != "main" {
			coarseLen = len(m.Ops)
		}
	}
	if coarseLen >= fineLen {
		t.Errorf("eps=1e-3 body (%d) should be shorter than eps=1e-12 (%d)", coarseLen, fineLen)
	}
}

func TestDecomposeInvalidProgram(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("ghost", ir.Range{Start: 0, Len: 1})
	p.Add(m)
	if _, err := decompose.Program(p, decompose.Options{}); err == nil {
		t.Error("missing callee not reported")
	}
}

func TestApproxLengthMatchesSequence(t *testing.T) {
	for _, eps := range []float64{1e-4, 1e-10, 1e-14} {
		approx := decompose.ApproxLength(eps)
		actual := len(decompose.ApproxSequence(0.77, eps))
		// The skeleton emits 2-3 gates per T plus a Clifford tail; the
		// estimate tracks within a factor of two.
		if actual < approx/2 || actual > 2*approx+4 {
			t.Errorf("eps=%g: estimate %d vs actual %d", eps, approx, actual)
		}
	}
	if decompose.ApproxLength(5) != decompose.ApproxLength(1e-10) {
		t.Error("invalid epsilon not defaulted")
	}
}
