package decompose

import (
	"fmt"
	"math"

	"github.com/scaffold-go/multisimd/internal/qasm"
)

// ApproxSequence is the SQCT substitute (see DESIGN.md, substitutions):
// it produces a deterministic serial Clifford+T sequence standing in for
// the Kliuchnikov–Maslov–Mosca single-qubit circuit toolkit the paper
// uses. The sequence length follows the optimal ancilla-free asymptotic
// of ~3.02·log2(1/ε) T gates interleaved with H (Ross–Selinger), and the
// gate pattern is derived from the angle's bits via a splitmix64 stream,
// so equal angles always produce identical sequences.
//
// The schedulers only depend on rotations decomposing into long serial
// single-qubit chains with the right length distribution; the substitute
// preserves exactly that property. The emitted sequence is NOT claimed to
// approximate the target unitary (the real SQCT/gridsynth number theory
// is out of scope); exact multiples of π/4 never reach this path.
func ApproxSequence(angle float64, epsilon float64) []qasm.Opcode {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 1e-10
	}
	// Canonicalize the angle to [0, 2π) so physically equal rotations
	// share a sequence (and a rotation module).
	angle = canonicalAngle(angle)
	tCount := int(math.Ceil(3.02 * math.Log2(1/epsilon)))
	if tCount < 1 {
		tCount = 1
	}
	rng := splitmix64(math.Float64bits(angle) ^ math.Float64bits(epsilon))
	// H-T skeleton: alternate basis changes and T/T† phases, with
	// occasional S/X corrections, mirroring the shape of real gridsynth
	// output (an <H,T> word with Clifford suffix).
	seq := make([]qasm.Opcode, 0, 2*tCount+3)
	for i := 0; i < tCount; i++ {
		bits := rng()
		if bits&1 == 0 {
			seq = append(seq, qasm.T)
		} else {
			seq = append(seq, qasm.Tdag)
		}
		switch (bits >> 1) & 7 {
		case 0:
			seq = append(seq, qasm.H, qasm.S)
		case 1:
			seq = append(seq, qasm.H, qasm.Sdag)
		default:
			seq = append(seq, qasm.H)
		}
	}
	switch rng() & 3 {
	case 0:
		seq = append(seq, qasm.X)
	case 1:
		seq = append(seq, qasm.Z)
	case 2:
		seq = append(seq, qasm.S)
	}
	return seq
}

// ApproxLength returns the length of the sequence ApproxSequence would
// emit, without building it. Used by resource estimation.
func ApproxLength(epsilon float64) int {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 1e-10
	}
	tCount := int(math.Ceil(3.02 * math.Log2(1/epsilon)))
	if tCount < 1 {
		tCount = 1
	}
	return 2 * tCount // skeleton average; exact length varies by ±tCount
}

func canonicalAngle(angle float64) float64 {
	twoPi := 2 * math.Pi
	a := math.Mod(angle, twoPi)
	if a < 0 {
		a += twoPi
	}
	// Quantize to a 2^-40 grid so angles equal up to floating-point
	// wrap-around error share a canonical value (and thus a rotation
	// module); the grid is far below any decomposition epsilon.
	a = math.Round(a*(1<<40)) / (1 << 40)
	if a >= twoPi {
		a = 0
	}
	return a
}

// rotationModuleName builds the canonical per-angle module name.
func rotationModuleName(angle, epsilon float64) string {
	a := canonicalAngle(angle)
	return fmt.Sprintf("rz_%016x", math.Float64bits(a)^splitmix64(math.Float64bits(epsilon))())
}

// splitmix64 returns a deterministic 64-bit PRNG stream seeded by seed.
func splitmix64(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
