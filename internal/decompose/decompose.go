// Package decompose lowers the wide-gate vocabulary (Toffoli, Fredkin,
// Swap, arbitrary-angle rotations, controlled rotations) into the
// primitive QASM target set (paper §3.1).
//
// Toffoli/Fredkin/Swap expand inline into the standard Clifford+T
// circuits. Arbitrary rotations go through the SQCT substitute (see
// rotation.go): each distinct angle becomes a dedicated leaf module
// holding its serial Clifford+T approximation sequence, and the rotation
// op becomes a call to that module. Keeping rotations as blackboxes is
// exactly what the paper does for Shor's (§5.4) and is what makes its
// schedule k-sensitive: decomposed rotations on distinct qubits can only
// parallelize across distinct SIMD regions.
package decompose

import (
	"fmt"
	"math"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// Options configures decomposition.
type Options struct {
	// Epsilon is the target approximation accuracy of rotation
	// decomposition. Zero defaults to 1e-10.
	Epsilon float64
	// InlineRotations expands rotation sequences inline instead of
	// outlining them into per-angle modules.
	InlineRotations bool
	// KeepToffoli leaves Toffoli/Fredkin gates untouched (used by
	// analyses that want the pre-decomposition circuit).
	KeepToffoli bool
}

func (o Options) epsilon() float64 {
	if o.Epsilon == 0 {
		return 1e-10
	}
	return o.Epsilon
}

// Program decomposes every module of the program in place, adding
// per-angle rotation modules as needed. It returns the number of
// rotation modules created.
func Program(p *ir.Program, opts Options) (int, error) {
	rotMods := map[string]bool{}
	names, err := p.Topo()
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		if rotMods[name] {
			continue
		}
		if err := decomposeModule(p, p.Modules[name], opts, rotMods); err != nil {
			return 0, err
		}
	}
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("decompose: produced invalid program: %w", err)
	}
	return len(rotMods), nil
}

func decomposeModule(p *ir.Program, m *ir.Module, opts Options, rotMods map[string]bool) error {
	out := make([]ir.Op, 0, len(m.Ops))
	emit := func(op qasm.Opcode, args ...int) {
		out = append(out, ir.Op{Kind: ir.GateOp, Gate: op, Args: args, Count: 1})
	}
	for i := range m.Ops {
		op := m.Ops[i]
		if op.Kind != ir.GateOp {
			out = append(out, op)
			continue
		}
		mark := len(out)
		switch op.Gate {
		case qasm.Toffoli:
			if opts.KeepToffoli {
				out = append(out, op)
				continue
			}
			emitToffoli(emit, op.Args[0], op.Args[1], op.Args[2])
		case qasm.Fredkin:
			if opts.KeepToffoli {
				out = append(out, op)
				continue
			}
			// Fredkin(c, a, b) = CNOT(b,a) · Toffoli(c,a,b) · CNOT(b,a).
			emit(qasm.CNOT, op.Args[2], op.Args[1])
			emitToffoli(emit, op.Args[0], op.Args[1], op.Args[2])
			emit(qasm.CNOT, op.Args[2], op.Args[1])
		case qasm.Swap:
			emit(qasm.CNOT, op.Args[0], op.Args[1])
			emit(qasm.CNOT, op.Args[1], op.Args[0])
			emit(qasm.CNOT, op.Args[0], op.Args[1])
		case qasm.Rx:
			// Rx(θ) = H · Rz(θ) · H.
			emit(qasm.H, op.Args[0])
			if err := emitRz(p, &out, m, op.Args[0], op.Angle, opts, rotMods); err != nil {
				return err
			}
			emit(qasm.H, op.Args[0])
		case qasm.Ry:
			// Ry(θ) = S† · H · Rz(θ) · H · S (up to global phase).
			emit(qasm.Sdag, op.Args[0])
			emit(qasm.H, op.Args[0])
			if err := emitRz(p, &out, m, op.Args[0], op.Angle, opts, rotMods); err != nil {
				return err
			}
			emit(qasm.H, op.Args[0])
			emit(qasm.S, op.Args[0])
		case qasm.Rz:
			if err := emitRz(p, &out, m, op.Args[0], op.Angle, opts, rotMods); err != nil {
				return err
			}
		case qasm.CRz:
			// CRz(c,t,θ) = Rz(t,θ/2) · CNOT(c,t) · Rz(t,−θ/2) · CNOT(c,t).
			if err := emitRz(p, &out, m, op.Args[1], op.Angle/2, opts, rotMods); err != nil {
				return err
			}
			emit(qasm.CNOT, op.Args[0], op.Args[1])
			if err := emitRz(p, &out, m, op.Args[1], -op.Angle/2, opts, rotMods); err != nil {
				return err
			}
			emit(qasm.CNOT, op.Args[0], op.Args[1])
		default:
			out = append(out, op)
			continue
		}
		// A repeated wide gate replicates its expansion.
		if reps := op.EffCount(); reps > 1 {
			body := append([]ir.Op(nil), out[mark:]...)
			for r := int64(1); r < reps; r++ {
				out = append(out, body...)
			}
		}
	}
	m.Ops = out
	return nil
}

// emitToffoli writes the standard 15-gate Clifford+T Toffoli
// (Nielsen & Chuang Fig. 4.9) with control qubits a, b and target c.
func emitToffoli(emit func(op qasm.Opcode, args ...int), a, b, c int) {
	emit(qasm.H, c)
	emit(qasm.CNOT, b, c)
	emit(qasm.Tdag, c)
	emit(qasm.CNOT, a, c)
	emit(qasm.T, c)
	emit(qasm.CNOT, b, c)
	emit(qasm.Tdag, c)
	emit(qasm.CNOT, a, c)
	emit(qasm.T, b)
	emit(qasm.T, c)
	emit(qasm.H, c)
	emit(qasm.CNOT, a, b)
	emit(qasm.T, a)
	emit(qasm.Tdag, b)
	emit(qasm.CNOT, a, b)
}

// emitRz lowers one Rz application: exact Clifford+T gates when the angle
// is a multiple of π/4, otherwise the SQCT-substitute sequence, either
// inline or as a call to a shared per-angle module.
func emitRz(p *ir.Program, out *[]ir.Op, m *ir.Module, target int, angle float64, opts Options, rotMods map[string]bool) error {
	seq := exactSequence(angle)
	if seq == nil {
		seq = ApproxSequence(angle, opts.epsilon())
	}
	if len(seq) == 0 {
		return nil // identity rotation
	}
	if opts.InlineRotations || len(seq) <= 4 {
		for _, g := range seq {
			*out = append(*out, ir.Op{Kind: ir.GateOp, Gate: g, Args: []int{target}, Count: 1})
		}
		return nil
	}
	name := rotationModuleName(angle, opts.epsilon())
	if p.Module(name) == nil {
		rm := ir.NewModule(name, []ir.Reg{{Name: "q", Size: 1}}, nil)
		for _, g := range seq {
			rm.Gate(g, 0)
		}
		p.Add(rm)
	}
	rotMods[name] = true
	*out = append(*out, ir.Op{
		Kind:     ir.CallOp,
		Callee:   name,
		CallArgs: []ir.Range{{Start: target, Len: 1}},
		Count:    1,
	})
	return nil
}

// exactSequence returns the exact Clifford+T sequence for angles that are
// multiples of π/4 (mod 2π), or nil when the angle needs approximation.
func exactSequence(angle float64) []qasm.Opcode {
	const quantum = math.Pi / 4
	k := angle / quantum
	r := math.Round(k)
	if math.Abs(k-r) > 1e-12 {
		return nil
	}
	steps := ((int64(r) % 8) + 8) % 8 // Rz(π/4)^steps up to phase
	switch steps {
	case 0:
		return []qasm.Opcode{}
	case 1:
		return []qasm.Opcode{qasm.T}
	case 2:
		return []qasm.Opcode{qasm.S}
	case 3:
		return []qasm.Opcode{qasm.S, qasm.T}
	case 4:
		return []qasm.Opcode{qasm.Z}
	case 5:
		return []qasm.Opcode{qasm.Z, qasm.T}
	case 6:
		return []qasm.Opcode{qasm.Sdag}
	default: // 7
		return []qasm.Opcode{qasm.Tdag}
	}
}
