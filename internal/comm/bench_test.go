package comm_test

import (
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func benchSchedule(b *testing.B, ops int) *schedule.Schedule {
	rng := rand.New(rand.NewSource(42))
	m := verify.RandomLeaf(rng, verify.GenOptions{Ops: ops, Qubits: 12})
	g, err := dag.Build(m)
	if err != nil {
		b.Fatal(err)
	}
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 4})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAnalyzePooled measures the package-level entry point: a
// sync.Pool checkout plus the dense analysis.
func BenchmarkAnalyzePooled(b *testing.B) {
	s := benchSchedule(b, 2000)
	opts := comm.Options{LocalCapacity: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comm.Analyze(s, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeReused measures the steady state the evaluation
// engine sees: one Analyzer per worker slot, reused across every
// (leaf, width) characterization.
func BenchmarkAnalyzeReused(b *testing.B) {
	s := benchSchedule(b, 2000)
	opts := comm.Options{LocalCapacity: -1, EPRBandwidth: 2}
	a := comm.NewAnalyzer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(s, opts); err != nil {
			b.Fatal(err)
		}
	}
}
