package comm_test

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// commOptionCombos is the option grid the differential corpus sweeps:
// every LocalCapacity/NoOverlap/EPRBandwidth combination the experiment
// suite exercises.
func commOptionCombos() []comm.Options {
	var combos []comm.Options
	for _, lc := range []int{0, -1, 1, 2} {
		for _, no := range []bool{false, true} {
			for _, bw := range []int{0, 1, 2} {
				combos = append(combos, comm.Options{LocalCapacity: lc, NoOverlap: no, EPRBandwidth: bw})
			}
		}
	}
	return combos
}

// corpusSchedules builds the seeded schedule corpus: random leaves
// scheduled by both fine-grained schedulers at several machine shapes.
func corpusSchedules(t testing.TB) []*schedule.Schedule {
	var out []*schedule.Schedule
	for seed := int64(0); seed < 12; seed++ {
		for _, wide := range []bool{false, true} {
			rng := rand.New(rand.NewSource(seed))
			m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 60, Qubits: 6, Wide: wide})
			g, err := dag.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4} {
				r, err := rcp.Schedule(m, g, rcp.Options{K: k})
				if err != nil {
					t.Fatal(err)
				}
				l, err := lpfs.Schedule(m, g, lpfs.Options{K: k})
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, r, l)
			}
		}
	}
	return out
}

// TestDenseAnalyzeMatchesReference pins the dense slot-indexed Analyze
// to the pre-refactor map-based implementation field-for-field:
// boundaries (move lists), overhead vectors, cycles, move and EPR
// counts, occupancy and bandwidth peaks — across the seeded corpus and
// the full option grid. A single Analyzer instance serves every case,
// so arena reuse across differently-shaped schedules is covered too.
func TestDenseAnalyzeMatchesReference(t *testing.T) {
	scheds := corpusSchedules(t)
	a := comm.NewAnalyzer()
	for si, s := range scheds {
		for _, opts := range commOptionCombos() {
			want, err := referenceAnalyze(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Analyze(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("schedule %d opts %+v: dense result diverges\n got: %+v\nwant: %+v",
					si, opts, got, want)
			}
			// The pooled package-level entry point must agree as well.
			pooled, err := comm.Analyze(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pooled, want) {
				t.Fatalf("schedule %d opts %+v: pooled result diverges", si, opts)
			}
		}
	}
}

// TestDenseAnalyzeDuplicateUseError pins the error path: the dense use
// list builder must report the same duplicate-use diagnostic as the
// reference.
func TestDenseAnalyzeDuplicateUseError(t *testing.T) {
	s := corpusSchedules(t)[0]
	// Corrupt a copy: schedule the same op twice in one step.
	bad := &schedule.Schedule{M: s.M, K: s.K, D: s.D}
	bad.Steps = append([]schedule.Step(nil), s.Steps...)
	first := bad.Steps[0].Regions[0][0]
	bad.Steps[0] = schedule.Step{Regions: [][]int32{{first, first}}}
	_, refErr := referenceAnalyze(bad, comm.Options{})
	_, denseErr := comm.Analyze(bad, comm.Options{})
	if refErr == nil || denseErr == nil {
		t.Fatalf("expected errors, got ref=%v dense=%v", refErr, denseErr)
	}
	if refErr.Error() != denseErr.Error() {
		t.Fatalf("diagnostics diverge: ref %q, dense %q", refErr, denseErr)
	}
}

// TestAnalyzerSteadyStateAllocs guards the tentpole: a warmed Analyzer
// allocates only the returned Result — the struct, its two vectors, the
// flat move array and the boundary slice headers — regardless of
// schedule size. The map-based original allocated thousands of times on
// the same input.
func TestAnalyzerSteadyStateAllocs(t *testing.T) {
	scheds := corpusSchedules(t)
	s := scheds[len(scheds)-1]
	a := comm.NewAnalyzer()
	opts := comm.Options{LocalCapacity: 2, EPRBandwidth: 2}
	if _, err := a.Analyze(s, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := a.Analyze(s, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Result struct + Boundaries header + flat move array + Overhead.
	if allocs > 6 {
		t.Errorf("steady-state Analyze allocates %.0f times per run, want <= 6", allocs)
	}
}
