package comm_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func sched(t *testing.T, m *ir.Module, steps []schedule.Step, k int) *schedule.Schedule {
	t.Helper()
	s := &schedule.Schedule{M: m, K: k, Steps: steps}
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatalf("test schedule invalid: %v", err)
	}
	return s
}

func TestSerialChainStaysPut(t *testing.T) {
	// A serial chain in one region: only the first use teleports in,
	// masked by pre-distribution, so zero overhead.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	for i := 0; i < 5; i++ {
		m.Gate(qasm.T, 0)
	}
	var steps []schedule.Step
	for i := 0; i < 5; i++ {
		steps = append(steps, schedule.Step{Regions: [][]int32{{int32(i)}}})
	}
	s := sched(t, m, steps, 1)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalMoves != 1 {
		t.Errorf("global moves = %d, want 1 (initial load)", res.GlobalMoves)
	}
	if res.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", res.Cycles)
	}
}

func TestPingPongStalls(t *testing.T) {
	// A qubit alternating between two regions every step pays the full
	// teleport each boundary after the first.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.H, 0)
	m.Gate(qasm.CNOT, 0, 1)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}, nil}},
		{Regions: [][]int32{nil, {1}}},
		{Regions: [][]int32{{2}, nil}},
	}
	s := sched(t, m, steps, 2)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// q0 moves r0->r1 with zero window (used at consecutive steps):
	// stall 4 at boundary 1; then r1->r0: stall 4 at boundary 2.
	if res.Overhead[1] != 4 || res.Overhead[2] != 4 {
		t.Errorf("overheads: %v", res.Overhead)
	}
	if res.Cycles != 3+8 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestMaskingHidesDistantReuse(t *testing.T) {
	// A qubit reused in another region 6 steps later: the teleport
	// hides in the window.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	for i := 0; i < 6; i++ {
		m.Gate(qasm.T, 1)
	}
	m.Gate(qasm.X, 0) // reused far later
	steps := []schedule.Step{
		{Regions: [][]int32{{0}, nil}},
	}
	for i := 0; i < 6; i++ {
		steps = append(steps, schedule.Step{Regions: [][]int32{nil, {int32(i + 1)}}})
	}
	steps = append(steps, schedule.Step{Regions: [][]int32{nil, {7}}})
	s := sched(t, m, steps, 2)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, o := range res.Overhead {
		total += o
	}
	if total != 0 {
		t.Errorf("overhead %v should be fully masked", res.Overhead)
	}
}

func TestNoOverlapCharges(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.H, 1)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
	}
	s := sched(t, m, steps, 1)
	res, err := comm.Analyze(s, comm.Options{NoOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both steps have an initial global in-move: 4 each.
	if res.Cycles != 2+8 {
		t.Errorf("cycles = %d, overhead %v", res.Cycles, res.Overhead)
	}
}

func TestLocalMemoryConvertsEvictions(t *testing.T) {
	// Qubit used in region 0, evicted while region 0 works on others,
	// then reused in region 0: without local memory it round-trips
	// through global (cost 8 in the window), with local memory 2.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0) // step 0, region 0
	m.Gate(qasm.T, 1) // step 1, region 0 (evicts q0)
	m.Gate(qasm.X, 0) // step 2, region 0 (q0 returns)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{2}}},
	}
	s := sched(t, m, steps, 1)

	noLocal, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Window is 1 step, journey 8 -> stall 7.
	if noLocal.Overhead[2] != 7 {
		t.Errorf("no-local overhead: %v", noLocal.Overhead)
	}
	if noLocal.GlobalMoves != 4 { // 2 initial loads + evict + return
		t.Errorf("global moves = %d", noLocal.GlobalMoves)
	}

	withLocal, err := comm.Analyze(s, comm.Options{LocalCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Journey 2 (local out + local in), window 1 -> stall 1.
	if withLocal.Overhead[2] != 1 {
		t.Errorf("local overhead: %v", withLocal.Overhead)
	}
	if withLocal.LocalMoves != 2 || withLocal.GlobalMoves != 2 {
		t.Errorf("moves: %d local, %d global", withLocal.LocalMoves, withLocal.GlobalMoves)
	}
	if withLocal.MaxLocalOccupancy != 1 {
		t.Errorf("occupancy %d", withLocal.MaxLocalOccupancy)
	}
	if withLocal.Cycles >= noLocal.Cycles {
		t.Errorf("local memory did not help: %d vs %d", withLocal.Cycles, noLocal.Cycles)
	}
}

func TestLocalCapacityLimit(t *testing.T) {
	// Two qubits want the scratchpad simultaneously; capacity 1 forces
	// one through global memory.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.CNOT, 0, 1) // step 0 region 0
	m.Gate(qasm.T, 2)       // step 1 region 0 (evicts q0 and q1)
	m.Gate(qasm.CNOT, 0, 1) // step 2 region 0
	steps := []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{2}}},
	}
	s := sched(t, m, steps, 1)
	res, err := comm.Analyze(s, comm.Options{LocalCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalMoves != 2 || res.GlobalMoves != 3+2 {
		t.Errorf("moves: %d local, %d global", res.LocalMoves, res.GlobalMoves)
	}
	if res.MaxLocalOccupancy != 1 {
		t.Errorf("occupancy %d exceeds capacity", res.MaxLocalOccupancy)
	}
}

func TestIdleRegionStoresPassively(t *testing.T) {
	// Qubit used in region 0, region 0 then idles while region 1 works;
	// qubit reused in region 0 later: it never moves.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.T, 1)
	m.Gate(qasm.X, 0)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}, nil}},
		{Regions: [][]int32{nil, {1}}},
		{Regions: [][]int32{{2}, nil}},
	}
	s := sched(t, m, steps, 2)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalMoves != 2 { // only the two initial loads
		t.Errorf("global moves = %d, want 2", res.GlobalMoves)
	}
	if res.Cycles != 3 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

// Property: for any schedule, cycles are bounded below by step count and
// above by the no-overlap accounting; local memory never increases
// cycles; EPR pairs equal global moves.
func TestAccountingInvariantsQuick(t *testing.T) {
	f := func(seed int64, useLPFS bool, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%3) + 1
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 40, Qubits: 5})
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		var s *schedule.Schedule
		if useLPFS {
			s, err = lpfs.Schedule(m, g, lpfs.Options{K: k})
		} else {
			s, err = rcp.Schedule(m, g, rcp.Options{K: k})
		}
		if err != nil {
			return false
		}
		masked, err := comm.Analyze(s, comm.Options{})
		if err != nil {
			return false
		}
		strict, err := comm.Analyze(s, comm.Options{NoOverlap: true})
		if err != nil {
			return false
		}
		local, err := comm.Analyze(s, comm.Options{LocalCapacity: -1})
		if err != nil {
			return false
		}
		if masked.EPRPairs != masked.GlobalMoves {
			return false
		}
		if masked.Cycles < int64(s.Length()) {
			return false
		}
		// Strict accounting bounds each boundary at 4; masking can
		// concentrate a round-trip's 8 cycles at one boundary but can
		// never exceed the total movement volume.
		if masked.Cycles > int64(s.Length())+
			comm.TeleportCycles*masked.GlobalMoves+int64(comm.LocalCycles)*masked.LocalMoves {
			return false
		}
		if local.Cycles > masked.Cycles {
			return false
		}
		// Move counts identical between masked and strict (same policy,
		// different charging).
		return masked.GlobalMoves == strict.GlobalMoves && masked.LocalMoves == strict.LocalMoves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEPRBandwidthThrottling(t *testing.T) {
	// 4 qubits prepared in region 0, then all consumed by region 1:
	// boundary 0 carries 4 pre-distributed first-use loads, boundary 1
	// carries 4 genuine runtime teleports that compete for the channel.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	for i := 0; i < 4; i++ {
		m.Gate(qasm.X, i)
	}
	steps := []schedule.Step{
		{Regions: [][]int32{{0, 1, 2, 3}, nil}},
		{Regions: [][]int32{nil, {4, 5, 6, 7}}},
	}
	s := sched(t, m, steps, 2)

	free, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if free.PeakEPRBandwidth != 4 {
		t.Errorf("peak bandwidth %d, want 4", free.PeakEPRBandwidth)
	}
	// Loads masked; the 4 zero-window teleports stall boundary 1 by 4.
	if free.Cycles != 2+comm.TeleportCycles {
		t.Errorf("unthrottled cycles %d, want %d", free.Cycles, 2+comm.TeleportCycles)
	}

	throttled, err := comm.Analyze(s, comm.Options{EPRBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 runtime teleports through a width-1 channel: 3 extra waves of 4
	// cycles on top of the stall; the first-use loads at boundary 0 are
	// pre-distributed and never throttled.
	if throttled.Overhead[0] != 0 {
		t.Errorf("boundary 0 overhead %d, want 0 (pre-distributed loads)", throttled.Overhead[0])
	}
	if throttled.Cycles != free.Cycles+3*comm.TeleportCycles {
		t.Errorf("throttled cycles %d, want %d", throttled.Cycles, free.Cycles+3*comm.TeleportCycles)
	}

	half, err := comm.Analyze(s, comm.Options{EPRBandwidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if half.Cycles != free.Cycles+1*comm.TeleportCycles {
		t.Errorf("bw=2 cycles %d, want %d", half.Cycles, free.Cycles+comm.TeleportCycles)
	}

	// NoOverlap keeps §4.4's strict accounting: first-use loads charge
	// the channel too (4 at each boundary, 3 extra waves at both).
	strict, err := comm.Analyze(s, comm.Options{NoOverlap: true, EPRBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 + 2*(comm.TeleportCycles+3*comm.TeleportCycles))
	if strict.Cycles != want {
		t.Errorf("strict throttled cycles %d, want %d", strict.Cycles, want)
	}
}

// TestDegenerateSchedules pins Analyze on empty and single-step
// schedules: no phantom moves, and — the regression — a single-step
// schedule's moves are all pre-distributed first-use loads, so a finite
// EPR bandwidth must not serialize them into runtime stalls.
func TestDegenerateSchedules(t *testing.T) {
	empty := ir.NewModule("empty", nil, []ir.Reg{{Name: "q", Size: 2}})
	es := sched(t, empty, nil, 2)
	for _, opts := range []comm.Options{{}, {NoOverlap: true}, {EPRBandwidth: 1}, {LocalCapacity: 1}} {
		res, err := comm.Analyze(es, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if res.Cycles != 0 || res.GlobalMoves != 0 || res.LocalMoves != 0 ||
			len(res.Boundaries) != 0 || res.PeakEPRBandwidth != 0 {
			t.Errorf("opts %+v: empty schedule reports %+v", opts, res)
		}
	}

	m := ir.NewModule("single", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	s := sched(t, m, []schedule.Step{{Regions: [][]int32{{0, 1, 2, 3}}}}, 1)
	for _, bw := range []int{0, 1, 2, 3} {
		res, err := comm.Analyze(s, comm.Options{EPRBandwidth: bw})
		if err != nil {
			t.Fatal(err)
		}
		if res.GlobalMoves != 4 {
			t.Errorf("bw=%d: global moves %d, want 4 initial loads", bw, res.GlobalMoves)
		}
		if res.Cycles != 1 {
			t.Errorf("bw=%d: cycles %d, want 1 (loads ride pre-distribution)", bw, res.Cycles)
		}
	}
	if res, err := comm.Analyze(s, comm.Options{NoOverlap: true, EPRBandwidth: 1}); err != nil {
		t.Fatal(err)
	} else if res.Cycles != 1+4*comm.TeleportCycles {
		// Strict: one 4-cycle charge plus 3 serialization waves.
		t.Errorf("strict bw=1 cycles %d, want %d", res.Cycles, 1+4*comm.TeleportCycles)
	}
}
