package comm_test

// referenceAnalyze is the pre-refactor map-based implementation of
// comm.Analyze, preserved verbatim (modulo renames) as the differential
// oracle: the dense slot-indexed rewrite must reproduce its Result
// field-for-field on every schedule. It exercises only the package's
// exported API, so it lives unexported in the external test package.

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

type refUse struct {
	step   int32
	region int32
}

func referenceAnalyze(s *schedule.Schedule, opts comm.Options) (*comm.Result, error) {
	nSteps := len(s.Steps)
	res := &comm.Result{
		Boundaries: make([][]comm.Move, nSteps),
		Overhead:   make([]int, nSteps),
	}
	if nSteps == 0 {
		return res, nil
	}

	uses, err := refUseLists(s)
	if err != nil {
		return nil, err
	}
	nextActive := refActivityIndex(s)

	loc := map[int]comm.Loc{} // zero value = global memory
	cursor := map[int]int{}   // per-qubit next-use index
	localOcc := make([]int, s.K)

	type eviction struct {
		slot int
		dest comm.Loc
		kind comm.MoveKind
	}
	evictAt := make(map[int][]eviction)
	leaveAt := make(map[int][]int32) // scratchpad departures: region ids

	pending := map[int]int{}
	lastUse := map[int]int{}
	firstLoads := make([]int, nSteps)

	addMove := func(b int, m comm.Move) {
		if b >= nSteps {
			return // trailing rest, never charged
		}
		res.Boundaries[b] = append(res.Boundaries[b], m)
		cost := 0
		switch m.Kind {
		case comm.GlobalMove:
			res.GlobalMoves++
			res.EPRPairs++
			cost = comm.TeleportCycles
		case comm.LocalMove:
			res.LocalMoves++
			cost = comm.LocalCycles
		}
		pending[m.Slot] += cost
		if opts.NoOverlap && res.Overhead[b] < cost {
			res.Overhead[b] = cost
		}
	}

	for t := 0; t < nSteps; t++ {
		for _, r := range leaveAt[t] {
			localOcc[r]--
		}
		for _, ev := range evictAt[t] {
			addMove(t, comm.Move{Slot: ev.slot, Kind: ev.kind, From: loc[ev.slot], To: ev.dest})
			loc[ev.slot] = ev.dest
		}
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					l := loc[slot]
					dst := comm.Loc{Kind: comm.InRegion, Region: int32(r)}
					switch {
					case l.Kind == comm.InRegion && l.Region == int32(r):
						// Already in place.
					case l.Kind == comm.InLocal && l.Region == int32(r):
						addMove(t, comm.Move{Slot: slot, Kind: comm.LocalMove, From: l, To: dst})
					default:
						addMove(t, comm.Move{Slot: slot, Kind: comm.GlobalMove, From: l, To: dst})
						if _, used := lastUse[slot]; !used {
							firstLoads[t]++
						}
					}
					loc[slot] = dst
					if !opts.NoOverlap {
						if prev, used := lastUse[slot]; used {
							window := t - prev - 1
							if stall := pending[slot] - window; stall > res.Overhead[t] {
								res.Overhead[t] = stall
							}
						}
					}
					pending[slot] = 0
					lastUse[slot] = t
				}
			}
		}
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					cursor[slot]++
					us := uses[slot]
					i := cursor[slot]
					if i >= len(us) {
						loc[slot] = comm.Loc{Kind: comm.InGlobal}
						continue
					}
					next := us[i]
					v := int(next.step)
					a := nSteps
					if t+1 < nSteps {
						a = int(nextActive[r][t+1])
					}
					if next.region == int32(r) {
						if a >= v {
							continue
						}
						if opts.LocalCapacity != 0 &&
							(opts.LocalCapacity < 0 || localOcc[r] < opts.LocalCapacity) {
							evictAt[a] = append(evictAt[a], eviction{
								slot: slot,
								dest: comm.Loc{Kind: comm.InLocal, Region: int32(r)},
								kind: comm.LocalMove,
							})
							localOcc[r]++
							if localOcc[r] > res.MaxLocalOccupancy {
								res.MaxLocalOccupancy = localOcc[r]
							}
							leaveAt[v] = append(leaveAt[v], int32(r))
							continue
						}
						evictAt[a] = append(evictAt[a], eviction{
							slot: slot,
							dest: comm.Loc{Kind: comm.InGlobal},
							kind: comm.GlobalMove,
						})
						continue
					}
					if a < v {
						evictAt[a] = append(evictAt[a], eviction{
							slot: slot,
							dest: comm.Loc{Kind: comm.InGlobal},
							kind: comm.GlobalMove,
						})
					}
				}
			}
		}
	}

	for b := range res.Boundaries {
		g := 0
		for _, mv := range res.Boundaries[b] {
			if mv.Kind == comm.GlobalMove {
				g++
			}
		}
		if g > res.PeakEPRBandwidth {
			res.PeakEPRBandwidth = g
		}
		runtime := g
		if !opts.NoOverlap {
			runtime -= firstLoads[b]
		}
		if opts.EPRBandwidth > 0 && runtime > opts.EPRBandwidth {
			waves := (runtime + opts.EPRBandwidth - 1) / opts.EPRBandwidth
			res.Overhead[b] += (waves - 1) * comm.TeleportCycles
		}
	}

	res.Cycles = int64(nSteps)
	for _, o := range res.Overhead {
		res.Cycles += int64(o)
	}
	return res, nil
}

func refUseLists(s *schedule.Schedule) (map[int][]refUse, error) {
	uses := make(map[int][]refUse)
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					us := uses[slot]
					if len(us) > 0 && us[len(us)-1].step == int32(t) {
						return nil, fmt.Errorf("comm: qubit %d used twice in step %d", slot, t)
					}
					uses[slot] = append(us, refUse{step: int32(t), region: int32(r)})
				}
			}
		}
	}
	return uses, nil
}

func refActivityIndex(s *schedule.Schedule) [][]int32 {
	nSteps := len(s.Steps)
	idx := make([][]int32, s.K)
	for r := 0; r < s.K; r++ {
		idx[r] = make([]int32, nSteps+1)
		idx[r][nSteps] = int32(nSteps)
		for t := nSteps - 1; t >= 0; t-- {
			active := r < len(s.Steps[t].Regions) && len(s.Steps[t].Regions[r]) > 0
			if active {
				idx[r][t] = int32(t)
			} else {
				idx[r][t] = idx[r][t+1]
			}
		}
	}
	return idx
}
