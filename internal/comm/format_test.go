package comm_test

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func TestWriteSchedule(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Rot(qasm.Rz, 0.5, 1)
	m.Gate(qasm.CNOT, 0, 1)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}, {1}}},
		{Regions: [][]int32{{2}, nil}},
	}
	s := sched(t, m, steps, 2)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := comm.WriteSchedule(&sb, s, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"t0",
		"r1: H(q[0])",
		"r2: Rz(q[1],0.5)",
		"q[0]:gl->r1*", // initial teleport, starred
		"r1: CNOT(q[0],q[1])",
		"q[1]:r2->r1*", // cross-region teleport into the CNOT
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("expected 2 lines, got %d:\n%s", lines, out)
	}
	// Without annotations the move column prints "-".
	sb.Reset()
	if err := comm.WriteSchedule(&sb, s, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| -") {
		t.Errorf("nil result should print '-':\n%s", sb.String())
	}
}

func TestWriteScheduleLocalMoves(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.T, 1)
	m.Gate(qasm.X, 0)
	steps := []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{2}}},
	}
	s := sched(t, m, steps, 1)
	res, err := comm.Analyze(s, comm.Options{LocalCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := comm.WriteSchedule(&sb, s, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "q[0]:r1->l1") || !strings.Contains(out, "q[0]:l1->r1") {
		t.Errorf("scratchpad round-trip not rendered:\n%s", out)
	}
	// Local moves are unstarred.
	if strings.Contains(out, "l1*") {
		t.Errorf("local move starred as teleport:\n%s", out)
	}
}
