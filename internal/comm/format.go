package comm

import (
	"fmt"
	"io"
	"strings"

	"github.com/scaffold-go/multisimd/internal/schedule"
)

// WriteSchedule renders a schedule in the paper's representation (§4):
// one line per timestep with k+1 columns — region 0 is the move list
// (from the communication annotations, if provided), regions 1..k hold
// the operations executing that step. Operations print as
// gate(operands); moves as slot:src->dst with * marking teleports.
//
//	t0 | q[0]:gl->r1* | r1: H(q[0]) H(q[1])
//	t1 | q[2]:r1->l1  | r1: CNOT(q[0],q[2]) | r2: T(q[3])
//
// res may be nil, in which case the move column prints "-".
func WriteSchedule(w io.Writer, s *schedule.Schedule, res *Result) error {
	for t := range s.Steps {
		var cols []string
		cols = append(cols, moveColumn(s, t, res))
		for r, ops := range s.Steps[t].Regions {
			if len(ops) == 0 {
				continue
			}
			var b strings.Builder
			fmt.Fprintf(&b, "r%d:", r+1)
			for _, op := range ops {
				b.WriteByte(' ')
				b.WriteString(formatOp(s, op))
			}
			cols = append(cols, b.String())
		}
		if _, err := fmt.Fprintf(w, "t%-5d | %s\n", t, strings.Join(cols, " | ")); err != nil {
			return err
		}
	}
	return nil
}

func moveColumn(s *schedule.Schedule, t int, res *Result) string {
	if res == nil || t >= len(res.Boundaries) || len(res.Boundaries[t]) == 0 {
		return "-"
	}
	var parts []string
	for _, mv := range res.Boundaries[t] {
		mark := ""
		if mv.Kind == GlobalMove {
			mark = "*"
		}
		parts = append(parts, fmt.Sprintf("%s:%s->%s%s",
			s.M.SlotName(mv.Slot), locShort(mv.From), locShort(mv.To), mark))
	}
	return strings.Join(parts, " ")
}

func locShort(l Loc) string {
	switch l.Kind {
	case InGlobal:
		return "gl"
	case InRegion:
		return fmt.Sprintf("r%d", l.Region+1)
	case InLocal:
		return fmt.Sprintf("l%d", l.Region+1)
	}
	return "?"
}

func formatOp(s *schedule.Schedule, op int32) string {
	o := &s.M.Ops[op]
	var b strings.Builder
	b.WriteString(o.Gate.String())
	b.WriteByte('(')
	for i, slot := range o.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.M.SlotName(slot))
	}
	if o.Gate.IsRotation() {
		fmt.Fprintf(&b, ",%g", o.Angle)
	}
	b.WriteByte(')')
	return b.String()
}
