// Package comm implements the paper's data-movement analysis (§2.3, §2.4,
// §2.5, §3.2, §4.4). Given a fine-grained schedule it derives the move
// list (the paper's region 0), classifies each move as a 4-cycle global
// quantum teleportation or a 1-cycle ballistic local-memory move, and
// computes the communication-expanded runtime.
//
// Placement policy, following §2.4/§3.2/§4.4:
//
//   - a qubit whose next operation is in the same region stays in place
//     while the region is idle (idle regions act as passive storage);
//   - when its region becomes active with other work first, the qubit is
//     evicted — to the region's local scratchpad if its next operation
//     returns here and capacity allows (1 cycle each way), otherwise to
//     global memory by teleportation (4 cycles each way);
//   - a qubit whose next operation is in a different region likewise
//     rests in place while its region stays idle and teleports directly
//     to the consumer; if its region reactivates first it is flushed to
//     global memory ("unless the source SIMD region is idle, we move such
//     qubits to the global memory", §4.4).
//
// Timestep cost accounting models the paper's teleportation masking
// (§2.3: EPR pre-distribution lets the compiler "schedule QT operations
// in parallel with the computation steps"): a qubit's accumulated
// movement cost since its previous operation stalls the consuming
// timestep only where the idle window between the two operations is too
// short to hide it. A step's charge is the largest residual stall among
// its arriving operands; each timestep itself costs one cycle. First
// uses are free (input data and EPR pairs are pre-distributed, §2.3).
// The strict non-overlapping accounting of §4.4 — any global move at a
// boundary charges the full four cycles, else any local move charges one
// — is available via Options.NoOverlap for ablation.
package comm

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/schedule"
)

// MoveKind classifies a qubit movement.
type MoveKind uint8

const (
	// GlobalMove is a quantum teleportation to or from global memory (or
	// between regions), costing TeleportCycles and one EPR pair.
	GlobalMove MoveKind = iota
	// LocalMove is a ballistic move between a region and its scratchpad.
	LocalMove
)

// TeleportCycles is the latency of one quantum teleportation (Fig. 2:
// CNOT, H, two measurements and classically controlled corrections,
// pipelined as 4 logical timesteps).
const TeleportCycles = 4

// LocalCycles is the latency of a ballistic local-memory move (§2.5).
const LocalCycles = 1

// NaiveFactor is the runtime multiplier of the naive movement model,
// where operands teleport from global memory every timestep (§4).
const NaiveFactor = 1 + TeleportCycles

// Loc describes where a qubit resides.
type Loc struct {
	Kind   LocKind
	Region int32 // meaningful for InRegion and InLocal
}

// LocKind enumerates residence kinds.
type LocKind uint8

const (
	// InGlobal is the global quantum memory.
	InGlobal LocKind = iota
	// InRegion is resident inside a SIMD operating region.
	InRegion
	// InLocal is parked in a region's scratchpad memory.
	InLocal
)

// String renders the location for diagnostics.
func (l Loc) String() string {
	switch l.Kind {
	case InGlobal:
		return "global"
	case InRegion:
		return fmt.Sprintf("region%d", l.Region)
	case InLocal:
		return fmt.Sprintf("local%d", l.Region)
	}
	return "invalid"
}

// Move records one qubit movement charged at a step boundary.
type Move struct {
	Slot int
	Kind MoveKind
	From Loc
	To   Loc
}

// Options configures the analysis.
type Options struct {
	// LocalCapacity is the scratchpad size per SIMD region, in qubits.
	// 0 disables local memory; negative means unlimited.
	LocalCapacity int
	// NoOverlap disables teleportation masking: every boundary with a
	// global move charges TeleportCycles and every boundary with only
	// local moves charges LocalCycles, regardless of slack (§4.4's
	// conservative accounting, used by ablation benches).
	NoOverlap bool
	// EPRBandwidth caps simultaneous teleports per step boundary (the
	// paper's EPR distribution channels, §2.3): a boundary with more
	// runtime global moves serializes them in waves, each extra wave
	// costing TeleportCycles. First-use input loads are exempt under the
	// masked model — they ride the pre-distribution like their cycle
	// cost does — but count under NoOverlap's strict accounting. 0 means
	// unlimited bandwidth (the paper's default model).
	EPRBandwidth int
}

// Result summarizes the communication analysis of one schedule.
type Result struct {
	// Boundaries[b] holds the moves charged at the boundary entering
	// step b.
	Boundaries [][]Move
	// Overhead[b] is the cycle cost at boundary b: TeleportCycles if any
	// global move, else LocalCycles if any local move, else 0.
	Overhead []int
	// Cycles is the communication-expanded runtime:
	// len(Steps) + sum(Overhead).
	Cycles int64
	// GlobalMoves and LocalMoves count individual qubit movements.
	GlobalMoves int64
	LocalMoves  int64
	// EPRPairs consumed (one per teleport).
	EPRPairs int64
	// MaxLocalOccupancy is the peak number of qubits resident in any one
	// region's scratchpad.
	MaxLocalOccupancy int
	// PeakEPRBandwidth is the largest number of teleports at any one
	// step boundary — the EPR distribution rate the machine must
	// sustain (§2.3).
	PeakEPRBandwidth int
}

// StallCycles is the total communication overhead charged on top of the
// bare timestep count: the EPR-stall cycles the movement model could not
// hide behind idle windows (plus wave-serialization overflow under a
// finite EPR bandwidth). Equals Cycles - len(Boundaries).
func (r *Result) StallCycles() int64 {
	var total int64
	for _, o := range r.Overhead {
		total += int64(o)
	}
	return total
}

type use struct {
	step   int32
	region int32
}

// Analyze derives moves and communication cost for a fine-grained
// schedule.
func Analyze(s *schedule.Schedule, opts Options) (*Result, error) {
	nSteps := len(s.Steps)
	res := &Result{
		Boundaries: make([][]Move, nSteps),
		Overhead:   make([]int, nSteps),
	}
	if nSteps == 0 {
		return res, nil
	}

	uses, err := useLists(s)
	if err != nil {
		return nil, err
	}
	nextActive := activityIndex(s)

	loc := map[int]Loc{}    // zero value = global memory
	cursor := map[int]int{} // per-qubit next-use index
	localOcc := make([]int, s.K)

	type eviction struct {
		slot int
		dest Loc
		kind MoveKind
	}
	evictAt := make(map[int][]eviction)
	leaveAt := make(map[int][]int32) // scratchpad departures: region ids

	// pending accumulates each qubit's in-flight movement cost since its
	// previous operation; lastUse records that operation's timestep.
	pending := map[int]int{}
	lastUse := map[int]int{}
	// firstLoads[b] counts first-use global loads charged at boundary b;
	// the masked bandwidth model excludes them from wave serialization.
	firstLoads := make([]int, nSteps)

	addMove := func(b int, m Move) {
		if b >= nSteps {
			return // trailing rest, never charged
		}
		res.Boundaries[b] = append(res.Boundaries[b], m)
		cost := 0
		switch m.Kind {
		case GlobalMove:
			res.GlobalMoves++
			res.EPRPairs++
			cost = TeleportCycles
		case LocalMove:
			res.LocalMoves++
			cost = LocalCycles
		}
		pending[m.Slot] += cost
		if opts.NoOverlap && res.Overhead[b] < cost {
			res.Overhead[b] = cost
		}
	}

	for t := 0; t < nSteps; t++ {
		// Scratchpad departures free capacity first.
		for _, r := range leaveAt[t] {
			localOcc[r]--
		}
		// Planned evictions at this boundary.
		for _, ev := range evictAt[t] {
			addMove(t, Move{Slot: ev.slot, Kind: ev.kind, From: loc[ev.slot], To: ev.dest})
			loc[ev.slot] = ev.dest
		}
		// In-moves: operands of step t reach their regions.
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					l := loc[slot]
					dst := Loc{Kind: InRegion, Region: int32(r)}
					switch {
					case l.Kind == InRegion && l.Region == int32(r):
						// Already in place.
					case l.Kind == InLocal && l.Region == int32(r):
						addMove(t, Move{Slot: slot, Kind: LocalMove, From: l, To: dst})
					default:
						addMove(t, Move{Slot: slot, Kind: GlobalMove, From: l, To: dst})
						if _, used := lastUse[slot]; !used {
							firstLoads[t]++
						}
					}
					loc[slot] = dst
					// Teleportation masking: the journey since the
					// previous use stalls this step only beyond the idle
					// window. First uses ride the pre-distribution.
					if !opts.NoOverlap {
						if prev, used := lastUse[slot]; used {
							window := t - prev - 1
							if stall := pending[slot] - window; stall > res.Overhead[t] {
								res.Overhead[t] = stall
							}
						}
					}
					pending[slot] = 0
					lastUse[slot] = t
				}
			}
		}
		// Out-decisions for step t's operands.
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					cursor[slot]++
					us := uses[slot]
					i := cursor[slot]
					if i >= len(us) {
						// Final use: the region reclaims the qubit as
						// ancilla/EPR stock (§4.4); no move charged.
						loc[slot] = Loc{Kind: InGlobal}
						continue
					}
					next := us[i]
					v := int(next.step)
					// First step strictly after t at which region r is
					// active again (possibly v itself).
					a := nSteps
					if t+1 < nSteps {
						a = int(nextActive[r][t+1])
					}
					if next.region == int32(r) {
						if a >= v {
							continue // rests in place until its next op
						}
						// Evicted before reuse: prefer the scratchpad.
						if opts.LocalCapacity != 0 &&
							(opts.LocalCapacity < 0 || localOcc[r] < opts.LocalCapacity) {
							evictAt[a] = append(evictAt[a], eviction{
								slot: slot,
								dest: Loc{Kind: InLocal, Region: int32(r)},
								kind: LocalMove,
							})
							localOcc[r]++
							if localOcc[r] > res.MaxLocalOccupancy {
								res.MaxLocalOccupancy = localOcc[r]
							}
							leaveAt[v] = append(leaveAt[v], int32(r))
							continue
						}
						evictAt[a] = append(evictAt[a], eviction{
							slot: slot,
							dest: Loc{Kind: InGlobal},
							kind: GlobalMove,
						})
						continue
					}
					// Next use in another region: rest here while idle,
					// teleporting straight to the consumer; flush to
					// global memory if this region reactivates first.
					if a < v {
						evictAt[a] = append(evictAt[a], eviction{
							slot: slot,
							dest: Loc{Kind: InGlobal},
							kind: GlobalMove,
						})
					}
					// Otherwise stays; the in-move at v charges the
					// region-to-region teleport.
				}
			}
		}
	}

	// EPR bandwidth: record the peak teleport burst, and under a finite
	// channel capacity serialize overflowing boundaries into waves.
	for b := range res.Boundaries {
		g := 0
		for _, mv := range res.Boundaries[b] {
			if mv.Kind == GlobalMove {
				g++
			}
		}
		if g > res.PeakEPRBandwidth {
			res.PeakEPRBandwidth = g
		}
		// Pre-distributed first-use loads never stall the runtime under
		// the masked model; only genuine mid-circuit teleports compete
		// for the channel. NoOverlap charges everything, per §4.4.
		runtime := g
		if !opts.NoOverlap {
			runtime -= firstLoads[b]
		}
		if opts.EPRBandwidth > 0 && runtime > opts.EPRBandwidth {
			waves := (runtime + opts.EPRBandwidth - 1) / opts.EPRBandwidth
			res.Overhead[b] += (waves - 1) * TeleportCycles
		}
	}

	res.Cycles = int64(nSteps)
	for _, o := range res.Overhead {
		res.Cycles += int64(o)
	}
	return res, nil
}

// useLists builds per-qubit (step, region) touch lists in step order.
func useLists(s *schedule.Schedule) (map[int][]use, error) {
	uses := make(map[int][]use)
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					us := uses[slot]
					if len(us) > 0 && us[len(us)-1].step == int32(t) {
						return nil, fmt.Errorf("comm: qubit %d used twice in step %d", slot, t)
					}
					uses[slot] = append(us, use{step: int32(t), region: int32(r)})
				}
			}
		}
	}
	return uses, nil
}

// activityIndex returns, per region, the earliest active step >= t for
// every t (nSteps when none).
func activityIndex(s *schedule.Schedule) [][]int32 {
	nSteps := len(s.Steps)
	idx := make([][]int32, s.K)
	for r := 0; r < s.K; r++ {
		idx[r] = make([]int32, nSteps+1)
		idx[r][nSteps] = int32(nSteps)
		for t := nSteps - 1; t >= 0; t-- {
			active := r < len(s.Steps[t].Regions) && len(s.Steps[t].Regions[r]) > 0
			if active {
				idx[r][t] = int32(t)
			} else {
				idx[r][t] = idx[r][t+1]
			}
		}
	}
	return idx
}

// NaiveCycles is the runtime of the paper's baseline: sequential
// execution with operands teleported every timestep (5x the gate count).
func NaiveCycles(gates int64) int64 { return NaiveFactor * gates }
