// Package comm implements the paper's data-movement analysis (§2.3, §2.4,
// §2.5, §3.2, §4.4). Given a fine-grained schedule it derives the move
// list (the paper's region 0), classifies each move as a 4-cycle global
// quantum teleportation or a 1-cycle ballistic local-memory move, and
// computes the communication-expanded runtime.
//
// Placement policy, following §2.4/§3.2/§4.4:
//
//   - a qubit whose next operation is in the same region stays in place
//     while the region is idle (idle regions act as passive storage);
//   - when its region becomes active with other work first, the qubit is
//     evicted — to the region's local scratchpad if its next operation
//     returns here and capacity allows (1 cycle each way), otherwise to
//     global memory by teleportation (4 cycles each way);
//   - a qubit whose next operation is in a different region likewise
//     rests in place while its region stays idle and teleports directly
//     to the consumer; if its region reactivates first it is flushed to
//     global memory ("unless the source SIMD region is idle, we move such
//     qubits to the global memory", §4.4).
//
// Timestep cost accounting models the paper's teleportation masking
// (§2.3: EPR pre-distribution lets the compiler "schedule QT operations
// in parallel with the computation steps"): a qubit's accumulated
// movement cost since its previous operation stalls the consuming
// timestep only where the idle window between the two operations is too
// short to hide it. A step's charge is the largest residual stall among
// its arriving operands; each timestep itself costs one cycle. First
// uses are free (input data and EPR pairs are pre-distributed, §2.3).
// The strict non-overlapping accounting of §4.4 — any global move at a
// boundary charges the full four cycles, else any local move charges one
// — is available via Options.NoOverlap for ablation.
package comm

import (
	"fmt"
)

// MoveKind classifies a qubit movement.
type MoveKind uint8

const (
	// GlobalMove is a quantum teleportation to or from global memory (or
	// between regions), costing TeleportCycles and one EPR pair.
	GlobalMove MoveKind = iota
	// LocalMove is a ballistic move between a region and its scratchpad.
	LocalMove
)

// TeleportCycles is the latency of one quantum teleportation (Fig. 2:
// CNOT, H, two measurements and classically controlled corrections,
// pipelined as 4 logical timesteps).
const TeleportCycles = 4

// LocalCycles is the latency of a ballistic local-memory move (§2.5).
const LocalCycles = 1

// NaiveFactor is the runtime multiplier of the naive movement model,
// where operands teleport from global memory every timestep (§4).
const NaiveFactor = 1 + TeleportCycles

// Loc describes where a qubit resides.
type Loc struct {
	Kind   LocKind
	Region int32 // meaningful for InRegion and InLocal
}

// LocKind enumerates residence kinds.
type LocKind uint8

const (
	// InGlobal is the global quantum memory.
	InGlobal LocKind = iota
	// InRegion is resident inside a SIMD operating region.
	InRegion
	// InLocal is parked in a region's scratchpad memory.
	InLocal
)

// String renders the location for diagnostics.
func (l Loc) String() string {
	switch l.Kind {
	case InGlobal:
		return "global"
	case InRegion:
		return fmt.Sprintf("region%d", l.Region)
	case InLocal:
		return fmt.Sprintf("local%d", l.Region)
	}
	return "invalid"
}

// Move records one qubit movement charged at a step boundary.
type Move struct {
	Slot int
	Kind MoveKind
	From Loc
	To   Loc
}

// Options configures the analysis.
type Options struct {
	// LocalCapacity is the scratchpad size per SIMD region, in qubits.
	// 0 disables local memory; negative means unlimited.
	LocalCapacity int
	// NoOverlap disables teleportation masking: every boundary with a
	// global move charges TeleportCycles and every boundary with only
	// local moves charges LocalCycles, regardless of slack (§4.4's
	// conservative accounting, used by ablation benches).
	NoOverlap bool
	// EPRBandwidth caps simultaneous teleports per step boundary (the
	// paper's EPR distribution channels, §2.3): a boundary with more
	// runtime global moves serializes them in waves, each extra wave
	// costing TeleportCycles. First-use input loads are exempt under the
	// masked model — they ride the pre-distribution like their cycle
	// cost does — but count under NoOverlap's strict accounting. 0 means
	// unlimited bandwidth (the paper's default model).
	EPRBandwidth int
}

// Result summarizes the communication analysis of one schedule.
type Result struct {
	// Boundaries[b] holds the moves charged at the boundary entering
	// step b.
	Boundaries [][]Move
	// Overhead[b] is the cycle cost at boundary b: TeleportCycles if any
	// global move, else LocalCycles if any local move, else 0.
	Overhead []int
	// Cycles is the communication-expanded runtime:
	// len(Steps) + sum(Overhead).
	Cycles int64
	// GlobalMoves and LocalMoves count individual qubit movements.
	GlobalMoves int64
	LocalMoves  int64
	// EPRPairs consumed (one per teleport).
	EPRPairs int64
	// MaxLocalOccupancy is the peak number of qubits resident in any one
	// region's scratchpad.
	MaxLocalOccupancy int
	// PeakEPRBandwidth is the largest number of teleports at any one
	// step boundary — the EPR distribution rate the machine must
	// sustain (§2.3).
	PeakEPRBandwidth int
}

// StallCycles is the total communication overhead charged on top of the
// bare timestep count: the EPR-stall cycles the movement model could not
// hide behind idle windows (plus wave-serialization overflow under a
// finite EPR bandwidth). Equals Cycles - len(Boundaries).
func (r *Result) StallCycles() int64 {
	var total int64
	for _, o := range r.Overhead {
		total += int64(o)
	}
	return total
}

// NaiveCycles is the runtime of the paper's baseline: sequential
// execution with operands teleported every timestep (5x the gate count).
func NaiveCycles(gates int64) int64 { return NaiveFactor * gates }
