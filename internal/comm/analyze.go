package comm

// This file is the dense-state implementation of the movement analysis.
// Qubit slots and timesteps are small dense integers, so all per-qubit
// and per-step bookkeeping lives in slot- and step-indexed slices backed
// by a reusable arena (Analyzer) instead of hash maps: the inner loop
// does O(1) array indexing, and a warmed Analyzer allocates only the
// returned Result. The map-based original is preserved as the
// differential oracle in reference_test.go; TestDenseAnalyzeMatches
// Reference pins the two field-for-field across the random corpus.

import (
	"fmt"
	"sync"

	"github.com/scaffold-go/multisimd/internal/schedule"
)

type use struct {
	step   int32
	region int32
}

// evictNode is one planned eviction, linked into its boundary's
// chronological list (next = arena index, -1 ends the list).
type evictNode struct {
	slot int32
	dest Loc
	kind MoveKind
	next int32
}

// leaveNode is one scratchpad departure (region id), linked like
// evictNode.
type leaveNode struct {
	region int32
	next   int32
}

// Analyzer carries the reusable dense state of the movement analysis.
// The zero value is ready to use; buffers grow to the largest schedule
// analyzed and are reused afterwards, so steady-state calls allocate
// only the Result. An Analyzer must not be used concurrently; the
// package-level Analyze draws from a sync.Pool, and the evaluation
// engine keeps one per worker slot.
type Analyzer struct {
	// Slot-indexed state.
	loc     []Loc   // current residence; zero value = global memory
	cursor  []int32 // index of the slot's next use in its use list
	pending []int32 // in-flight movement cost since the previous op
	lastUse []int32 // timestep of the previous op, -1 = never used

	// Flattened per-slot use lists: uses[useOff[s]:useOff[s+1]].
	useOff []int32
	useFil []int32
	uses   []use

	// Step-indexed state.
	firstLoads []int32 // first-use global loads charged at the boundary
	bStart     []int32 // move-arena offset where each boundary begins
	evictHead  []int32 // per-boundary eviction list heads/tails
	evictTail  []int32
	leaveHead  []int32 // per-step scratchpad-departure list heads/tails
	leaveTail  []int32

	// Region-indexed state.
	localOcc   []int32 // current scratchpad occupancy
	nextActive []int32 // flattened k x (nSteps+1) activity index

	// Arenas.
	evictions []evictNode
	leaves    []leaveNode
	moves     []Move // all moves, in boundary order
}

// NewAnalyzer returns an empty Analyzer. Equivalent to &Analyzer{};
// provided for symmetry with the rest of the toolflow's constructors.
func NewAnalyzer() *Analyzer { return &Analyzer{} }

var analyzerPool = sync.Pool{New: func() any { return NewAnalyzer() }}

// Analyze derives moves and communication cost for a fine-grained
// schedule using a pooled Analyzer.
func Analyze(s *schedule.Schedule, opts Options) (*Result, error) {
	a := analyzerPool.Get().(*Analyzer)
	res, err := a.Analyze(s, opts)
	analyzerPool.Put(a)
	return res, err
}

// grown returns a length-n slice reusing buf's storage when it fits.
// Contents are unspecified; callers reset what they read.
func grown[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// reset sizes every buffer for a (slots, steps, regions) problem and
// clears the state the analysis reads before writing.
func (a *Analyzer) reset(slots, nSteps, k int) {
	a.loc = grown(a.loc, slots)
	a.cursor = grown(a.cursor, slots)
	a.pending = grown(a.pending, slots)
	a.lastUse = grown(a.lastUse, slots)
	clear(a.loc)
	clear(a.cursor)
	clear(a.pending)
	for i := range a.lastUse {
		a.lastUse[i] = -1
	}

	a.useOff = grown(a.useOff, slots+1)
	a.useFil = grown(a.useFil, slots)
	clear(a.useOff)
	clear(a.useFil)

	a.firstLoads = grown(a.firstLoads, nSteps)
	a.bStart = grown(a.bStart, nSteps+1)
	a.evictHead = grown(a.evictHead, nSteps+1)
	a.evictTail = grown(a.evictTail, nSteps+1)
	a.leaveHead = grown(a.leaveHead, nSteps+1)
	a.leaveTail = grown(a.leaveTail, nSteps+1)
	clear(a.firstLoads)
	for i := range a.evictHead {
		a.evictHead[i] = -1
		a.leaveHead[i] = -1
	}

	a.localOcc = grown(a.localOcc, k)
	a.nextActive = grown(a.nextActive, k*(nSteps+1))
	clear(a.localOcc)

	a.evictions = a.evictions[:0]
	a.leaves = a.leaves[:0]
	a.moves = a.moves[:0]
}

// buildUses flattens the per-qubit (step, region) touch lists into the
// arena, preserving the step-order scan (and its duplicate-use error)
// of the map-based original.
func (a *Analyzer) buildUses(s *schedule.Schedule) error {
	for t := range s.Steps {
		for _, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					a.useOff[slot+1]++
				}
			}
		}
	}
	for i := 1; i < len(a.useOff); i++ {
		a.useOff[i] += a.useOff[i-1]
	}
	total := int(a.useOff[len(a.useOff)-1])
	a.uses = grown(a.uses, total)
	for t := range s.Steps {
		for r, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					off, n := a.useOff[slot], a.useFil[slot]
					if n > 0 && a.uses[off+n-1].step == int32(t) {
						return fmt.Errorf("comm: qubit %d used twice in step %d", slot, t)
					}
					a.uses[off+n] = use{step: int32(t), region: int32(r)}
					a.useFil[slot] = n + 1
				}
			}
		}
	}
	return nil
}

// buildActivity fills the flattened activity index: for region r,
// nextActive[r*(nSteps+1)+t] is the earliest active step >= t (nSteps
// when none).
func (a *Analyzer) buildActivity(s *schedule.Schedule) {
	nSteps := len(s.Steps)
	stride := nSteps + 1
	for r := 0; r < s.K; r++ {
		row := a.nextActive[r*stride : (r+1)*stride]
		row[nSteps] = int32(nSteps)
		for t := nSteps - 1; t >= 0; t-- {
			if r < len(s.Steps[t].Regions) && len(s.Steps[t].Regions[r]) > 0 {
				row[t] = int32(t)
			} else {
				row[t] = row[t+1]
			}
		}
	}
}

// planEvict links an eviction of slot to dest into boundary b's list.
func (a *Analyzer) planEvict(b int, slot int32, dest Loc, kind MoveKind) {
	idx := int32(len(a.evictions))
	a.evictions = append(a.evictions, evictNode{slot: slot, dest: dest, kind: kind, next: -1})
	if a.evictHead[b] < 0 {
		a.evictHead[b] = idx
	} else {
		a.evictions[a.evictTail[b]].next = idx
	}
	a.evictTail[b] = idx
}

// planLeave links a scratchpad departure from region r into step v's
// list.
func (a *Analyzer) planLeave(v int, r int32) {
	idx := int32(len(a.leaves))
	a.leaves = append(a.leaves, leaveNode{region: r, next: -1})
	if a.leaveHead[v] < 0 {
		a.leaveHead[v] = idx
	} else {
		a.leaves[a.leaveTail[v]].next = idx
	}
	a.leaveTail[v] = idx
}

// Analyze derives moves and communication cost for a fine-grained
// schedule. The returned Result is independent of the Analyzer and
// remains valid across further calls.
func (a *Analyzer) Analyze(s *schedule.Schedule, opts Options) (*Result, error) {
	nSteps := len(s.Steps)
	res := &Result{
		Boundaries: make([][]Move, nSteps),
		Overhead:   make([]int, nSteps),
	}
	if nSteps == 0 {
		return res, nil
	}
	slots := s.M.TotalSlots()
	a.reset(slots, nSteps, s.K)
	if err := a.buildUses(s); err != nil {
		return nil, err
	}
	a.buildActivity(s)
	stride := nSteps + 1

	// addMove charges one movement at the boundary entering step t.
	// Every call while step t is processed targets boundary t, so the
	// arena stays in boundary order and bStart delimits the slices.
	addMove := func(t int, m Move) {
		a.moves = append(a.moves, m)
		cost := int32(0)
		switch m.Kind {
		case GlobalMove:
			res.GlobalMoves++
			res.EPRPairs++
			cost = TeleportCycles
		case LocalMove:
			res.LocalMoves++
			cost = LocalCycles
		}
		a.pending[m.Slot] += cost
		if opts.NoOverlap && res.Overhead[t] < int(cost) {
			res.Overhead[t] = int(cost)
		}
	}

	for t := 0; t < nSteps; t++ {
		a.bStart[t] = int32(len(a.moves))
		// Scratchpad departures free capacity first.
		for i := a.leaveHead[t]; i >= 0; i = a.leaves[i].next {
			a.localOcc[a.leaves[i].region]--
		}
		// Planned evictions at this boundary.
		for i := a.evictHead[t]; i >= 0; i = a.evictions[i].next {
			ev := &a.evictions[i]
			addMove(t, Move{Slot: int(ev.slot), Kind: ev.kind, From: a.loc[ev.slot], To: ev.dest})
			a.loc[ev.slot] = ev.dest
		}
		// In-moves: operands of step t reach their regions.
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					l := a.loc[slot]
					dst := Loc{Kind: InRegion, Region: int32(r)}
					switch {
					case l.Kind == InRegion && l.Region == int32(r):
						// Already in place.
					case l.Kind == InLocal && l.Region == int32(r):
						addMove(t, Move{Slot: slot, Kind: LocalMove, From: l, To: dst})
					default:
						addMove(t, Move{Slot: slot, Kind: GlobalMove, From: l, To: dst})
						if a.lastUse[slot] < 0 {
							a.firstLoads[t]++
						}
					}
					a.loc[slot] = dst
					// Teleportation masking: the journey since the
					// previous use stalls this step only beyond the idle
					// window. First uses ride the pre-distribution.
					if !opts.NoOverlap {
						if prev := a.lastUse[slot]; prev >= 0 {
							window := int32(t) - prev - 1
							if stall := int(a.pending[slot] - window); stall > res.Overhead[t] {
								res.Overhead[t] = stall
							}
						}
					}
					a.pending[slot] = 0
					a.lastUse[slot] = int32(t)
				}
			}
		}
		// Out-decisions for step t's operands.
		for r := range s.Steps[t].Regions {
			for _, op := range s.Steps[t].Regions[r] {
				for _, slot := range s.M.Ops[op].Args {
					a.cursor[slot]++
					i := a.cursor[slot]
					if i >= a.useOff[slot+1]-a.useOff[slot] {
						// Final use: the region reclaims the qubit as
						// ancilla/EPR stock (§4.4); no move charged.
						a.loc[slot] = Loc{Kind: InGlobal}
						continue
					}
					next := a.uses[a.useOff[slot]+i]
					v := int(next.step)
					// First step strictly after t at which region r is
					// active again (possibly v itself).
					av := nSteps
					if t+1 < nSteps {
						av = int(a.nextActive[r*stride+t+1])
					}
					if next.region == int32(r) {
						if av >= v {
							continue // rests in place until its next op
						}
						// Evicted before reuse: prefer the scratchpad.
						if opts.LocalCapacity != 0 &&
							(opts.LocalCapacity < 0 || int(a.localOcc[r]) < opts.LocalCapacity) {
							a.planEvict(av, int32(slot), Loc{Kind: InLocal, Region: int32(r)}, LocalMove)
							a.localOcc[r]++
							if int(a.localOcc[r]) > res.MaxLocalOccupancy {
								res.MaxLocalOccupancy = int(a.localOcc[r])
							}
							a.planLeave(v, int32(r))
							continue
						}
						a.planEvict(av, int32(slot), Loc{Kind: InGlobal}, GlobalMove)
						continue
					}
					// Next use in another region: rest here while idle,
					// teleporting straight to the consumer; flush to
					// global memory if this region reactivates first.
					if av < v {
						a.planEvict(av, int32(slot), Loc{Kind: InGlobal}, GlobalMove)
					}
					// Otherwise stays; the in-move at v charges the
					// region-to-region teleport.
				}
			}
		}
	}
	a.bStart[nSteps] = int32(len(a.moves))

	// Detach the move list from the arena: one flat allocation, sliced
	// per boundary (nil where a boundary charged nothing, matching the
	// map-based original).
	flat := make([]Move, len(a.moves))
	copy(flat, a.moves)
	for t := 0; t < nSteps; t++ {
		lo, hi := a.bStart[t], a.bStart[t+1]
		if lo < hi {
			res.Boundaries[t] = flat[lo:hi:hi]
		}
	}

	// EPR bandwidth: record the peak teleport burst, and under a finite
	// channel capacity serialize overflowing boundaries into waves.
	for b := range res.Boundaries {
		g := 0
		for _, mv := range res.Boundaries[b] {
			if mv.Kind == GlobalMove {
				g++
			}
		}
		if g > res.PeakEPRBandwidth {
			res.PeakEPRBandwidth = g
		}
		// Pre-distributed first-use loads never stall the runtime under
		// the masked model; only genuine mid-circuit teleports compete
		// for the channel. NoOverlap charges everything, per §4.4.
		runtime := g
		if !opts.NoOverlap {
			runtime -= int(a.firstLoads[b])
		}
		if opts.EPRBandwidth > 0 && runtime > opts.EPRBandwidth {
			waves := (runtime + opts.EPRBandwidth - 1) / opts.EPRBandwidth
			res.Overhead[b] += (waves - 1) * TeleportCycles
		}
	}

	res.Cycles = int64(nSteps)
	for _, o := range res.Overhead {
		res.Cycles += int64(o)
	}
	return res, nil
}
