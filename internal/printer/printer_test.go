package printer_test

import (
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/parser"
	"github.com/scaffold-go/multisimd/internal/printer"
	"github.com/scaffold-go/multisimd/internal/sema"
)

// stripPositions zeroes every Pos field so trees compare structurally.
func stripPositions(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			stripPositions(v.Elem())
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if v.Type().Field(i).Name == "Pos" && f.CanSet() {
				f.Set(reflect.Zero(f.Type()))
				continue
			}
			stripPositions(f)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			stripPositions(v.Index(i))
		}
	}
}

func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	text := printer.Program(p1)
	p2, err := parser.Parse(text)
	if err != nil {
		t.Fatalf("parse printed: %v\nprinted source:\n%s", err, text)
	}
	stripPositions(reflect.ValueOf(p1))
	stripPositions(reflect.ValueOf(p2))
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("round trip diverged.\noriginal:\n%s\nprinted:\n%s", src, text)
	}
	// A second print must be a fixed point.
	if again := printer.Program(p2); again != text {
		t.Error("printer not idempotent")
	}
}

func TestRoundTripHandWritten(t *testing.T) {
	roundTrip(t, `
module helper(qbit a, qbit b[4], cbit out) {
  H(a);
  CNOT(a, b[0]);
  Rz(b[1], 0.5);
  Rz(b[2], -(1.5));
  MeasZ(a);
}
module main() {
  qbit q[8];
  cbit c;
  for (i = 0; i < 8; i++) {
    if (i % 2 == 0) {
      X(q[i]);
    } else {
      Z(q[i]);
    }
  }
  helper(q[0], q[0:4], c);
  helper(q[7], q[4:8], c);
}
`)
}

func TestRoundTripExpressions(t *testing.T) {
	roundTrip(t, `
module main() {
  qbit q[64];
  H(q[1 + 2 * 3]);
  H(q[(1 << 4) / 2]);
  H(q[63 - 10 % 7]);
  for (i = 0; i < 1 << 3; i++) {
    Rz(q[i], i * 0.25 + 1.0 / 8);
  }
  CRz(q[0], q[1], 3.14159 / 4);
}
`)
}

func TestRoundTripBenchmarks(t *testing.T) {
	// Every generated benchmark must survive the round trip and still
	// pass sema — the printer is exercised against tens of thousands of
	// generated statements.
	for _, b := range bench.AllSmall() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p1, err := parser.Parse(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			text := printer.Program(p1)
			p2, err := parser.Parse(text)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if err := sema.Check(p2); err != nil {
				t.Fatalf("printed source fails sema: %v", err)
			}
			stripPositions(reflect.ValueOf(p1))
			stripPositions(reflect.ValueOf(p2))
			if !reflect.DeepEqual(p1, p2) {
				t.Error("round trip diverged")
			}
		})
	}
}

func TestPrinterOutputsReadableSource(t *testing.T) {
	p := &ast.Program{Modules: []*ast.Module{{
		Name: "m",
		Params: []ast.Param{
			{Name: "q", Size: 2},
			{Name: "c", Size: 1, Classical: true},
		},
		Body: &ast.Block{Stmts: []ast.Stmt{
			&ast.GateStmt{Name: "H", Args: []ast.QubitExpr{{Name: "q", Index: &ast.IntLit{Value: 0}}}},
		}},
	}}}
	text := printer.Program(p)
	want := "module m(qbit q[2], cbit c) {\n  H(q[0]);\n}\n"
	if text != want {
		t.Errorf("got:\n%q\nwant:\n%q", text, want)
	}
}
