// Package printer renders Scaffold-lite ASTs back to canonical source
// text. Printing then re-parsing yields a structurally identical tree
// (the round-trip property the package tests enforce), which makes the
// printer usable as a formatter (scaffc -emit scaffold) and as a
// debugging aid for generated benchmarks.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/scaffold"
)

// Program renders a whole program.
func Program(p *ast.Program) string {
	var sb strings.Builder
	for i, m := range p.Modules {
		if i > 0 {
			sb.WriteByte('\n')
		}
		writeModule(&sb, m)
	}
	return sb.String()
}

func writeModule(sb *strings.Builder, m *ast.Module) {
	sb.WriteString("module ")
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		if p.Classical {
			sb.WriteString("cbit ")
		} else {
			sb.WriteString("qbit ")
		}
		sb.WriteString(p.Name)
		if p.Size != 1 {
			fmt.Fprintf(sb, "[%d]", p.Size)
		}
	}
	sb.WriteString(") ")
	writeBlock(sb, m.Body, 0)
	sb.WriteByte('\n')
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeBlock(sb *strings.Builder, b *ast.Block, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		writeStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteByte('}')
}

func writeStmt(sb *strings.Builder, s ast.Stmt, depth int) {
	indent(sb, depth)
	switch st := s.(type) {
	case *ast.DeclStmt:
		if st.Classical {
			sb.WriteString("cbit ")
		} else {
			sb.WriteString("qbit ")
		}
		sb.WriteString(st.Name)
		if st.Size != nil {
			sb.WriteByte('[')
			writeExpr(sb, st.Size)
			sb.WriteByte(']')
		}
		sb.WriteString(";\n")
	case *ast.GateStmt:
		sb.WriteString(st.Name)
		sb.WriteByte('(')
		for i := range st.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeQubit(sb, &st.Args[i])
		}
		if st.Angle != nil {
			if len(st.Args) > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, st.Angle)
		}
		sb.WriteString(");\n")
	case *ast.CallStmt:
		sb.WriteString(st.Callee)
		sb.WriteByte('(')
		for i := range st.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeQubit(sb, &st.Args[i])
		}
		sb.WriteString(");\n")
	case *ast.ForStmt:
		fmt.Fprintf(sb, "for (%s = ", st.Var)
		writeExpr(sb, st.Lo)
		fmt.Fprintf(sb, "; %s < ", st.Var)
		writeExpr(sb, st.Hi)
		fmt.Fprintf(sb, "; %s++) ", st.Var)
		writeBlock(sb, st.Body, depth)
		sb.WriteByte('\n')
	case *ast.IfStmt:
		sb.WriteString("if (")
		writeExpr(sb, st.Cond.L)
		fmt.Fprintf(sb, " %s ", opText(st.Cond.Op))
		writeExpr(sb, st.Cond.R)
		sb.WriteString(") ")
		writeBlock(sb, st.Then, depth)
		if st.Else != nil {
			sb.WriteString(" else ")
			writeBlock(sb, st.Else, depth)
		}
		sb.WriteByte('\n')
	default:
		fmt.Fprintf(sb, "/* unknown stmt %T */\n", s)
	}
}

func writeQubit(sb *strings.Builder, q *ast.QubitExpr) {
	sb.WriteString(q.Name)
	switch {
	case q.IsSlice():
		sb.WriteByte('[')
		writeExpr(sb, q.Index)
		sb.WriteByte(':')
		writeExpr(sb, q.SliceHi)
		sb.WriteByte(']')
	case q.Index != nil:
		sb.WriteByte('[')
		writeExpr(sb, q.Index)
		sb.WriteByte(']')
	}
}

// writeExpr renders an expression fully parenthesized below the top
// level, so precedence survives the round trip without a printer-side
// precedence table.
func writeExpr(sb *strings.Builder, e ast.Expr) {
	switch ex := e.(type) {
	case *ast.IntLit:
		fmt.Fprintf(sb, "%d", ex.Value)
	case *ast.FloatLit:
		s := strconv.FormatFloat(ex.Value, 'g', -1, 64)
		// Keep float literals lexically floats.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		sb.WriteString(s)
	case *ast.VarRef:
		sb.WriteString(ex.Name)
	case *ast.NegExpr:
		sb.WriteString("-(")
		writeExpr(sb, ex.E)
		sb.WriteByte(')')
	case *ast.BinExpr:
		sb.WriteByte('(')
		writeExpr(sb, ex.L)
		fmt.Fprintf(sb, " %s ", opText(ex.Op))
		writeExpr(sb, ex.R)
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "/* unknown expr %T */", e)
	}
}

func opText(k scaffold.Kind) string {
	switch k {
	case scaffold.Plus:
		return "+"
	case scaffold.Minus:
		return "-"
	case scaffold.Star:
		return "*"
	case scaffold.Slash:
		return "/"
	case scaffold.Percent:
		return "%"
	case scaffold.Shl:
		return "<<"
	case scaffold.Lt:
		return "<"
	case scaffold.Le:
		return "<="
	case scaffold.Gt:
		return ">"
	case scaffold.Ge:
		return ">="
	case scaffold.EqEq:
		return "=="
	case scaffold.NotEq:
		return "!="
	}
	return "?"
}
