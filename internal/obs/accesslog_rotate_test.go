package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestAccessLogRotate exercises the operational rotation sequence —
// rename the live file aside, Reopen (the SIGHUP handler's half), keep
// logging — while writers hammer the log concurrently. Every line must
// land whole in exactly one of the two files: none dropped, none split,
// none interleaved.
func TestAccessLogRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "access.log")
	l, err := NewAccessLogFile(path)
	if err != nil {
		t.Fatalf("NewAccessLogFile: %v", err)
	}
	defer l.Close()

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	rotated := path + ".1"
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				l.Log(&AccessEntry{ID: fmt.Sprintf("w%d-%d", w, i), Endpoint: "compile", Status: 200})
			}
		}(w)
	}
	// Rotate mid-stream, racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := os.Rename(path, rotated); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		if err := l.Reopen(); err != nil {
			t.Errorf("Reopen: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	seen := map[string]bool{}
	total := 0
	for _, p := range []string{rotated, path} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var e AccessEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("%s holds a non-JSON line (split or interleaved): %q", p, sc.Text())
			}
			if seen[e.ID] {
				t.Fatalf("line %s appears twice", e.ID)
			}
			seen[e.ID] = true
			total++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if total != writers*perWriter {
		t.Fatalf("%d lines across both files, want %d (lines dropped)", total, writers*perWriter)
	}
	// Post-rotation lines must land in the fresh file, not the renamed one.
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		l.Log(&AccessEntry{ID: "post-rotate", Endpoint: "healthz", Status: 200})
		if fi2, err2 := os.Stat(path); err2 != nil || fi2.Size() == 0 {
			t.Fatalf("fresh file empty after rotation (stat: %v %v)", err, err2)
		}
	}
}

func TestAccessLogReopenNonFileNoop(t *testing.T) {
	var nilLog *AccessLog
	if err := nilLog.Reopen(); err != nil {
		t.Fatalf("nil Reopen: %v", err)
	}
	if err := nilLog.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	l := NewAccessLog(os.Stderr)
	if err := l.Reopen(); err != nil {
		t.Fatalf("non-file Reopen: %v", err)
	}
}
