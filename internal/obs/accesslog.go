package obs

// Structured access logging: one JSON object per line per request, the
// service operator's primary "what is this server doing" stream. The
// schema is part of the operational contract (the server's golden test
// pins the field set); new fields may be added, existing ones must not
// be renamed or change type.

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// AccessCache is the cache-layer traffic one evaluation generated,
// mirrored from core.CacheStats without importing it (core depends on
// obs, not the reverse). A schedule hit with a comm miss is the sweep
// fast path; all-hits is a fully warm request.
type AccessCache struct {
	CommHits    int64 `json:"comm_hits"`
	CommMisses  int64 `json:"comm_misses"`
	SchedHits   int64 `json:"sched_hits"`
	SchedMisses int64 `json:"sched_misses"`
	// DiskHits/DiskMisses are the persistent layer's share: lookups the
	// memory front missed that a disk record served (or failed to).
	// Zero — and omitted — when the cache runs memory-only.
	DiskHits   int64 `json:"disk_hits,omitempty"`
	DiskMisses int64 `json:"disk_misses,omitempty"`
}

// AccessEntry is one access-log record. Omitempty fields only apply to
// evaluation endpoints (compile/verify/report) or to specific statuses
// (QueueDepth on 429s, Phases past the slow threshold).
type AccessEntry struct {
	// Time is the request's completion time, RFC 3339 with milliseconds.
	Time string `json:"ts"`
	// ID is the request id (accepted X-Request-ID or generated).
	ID string `json:"id"`
	// Endpoint is the handler's short name ("compile", "healthz", ...).
	Endpoint string `json:"endpoint"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Status   int    `json:"status"`
	// Bytes counts response body bytes written.
	Bytes int64 `json:"bytes"`
	// DurMS is the full request wall time, decode to last byte.
	DurMS float64 `json:"dur_ms"`

	// Role is the dedup attribution of an evaluation: "leader" ran the
	// engine with at least one follower attached, "solo" ran it alone,
	// "follower" joined a leader's in-flight evaluation.
	Role string `json:"role,omitempty"`
	// LeaderID is the id of the request whose evaluation a follower
	// inherited (set on followers only).
	LeaderID string `json:"leader_id,omitempty"`
	// Fingerprint is the compiled program's content fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Key is the full singleflight/dedup key (fingerprint + config).
	Key string `json:"key,omitempty"`
	// QueueWaitMS is time spent waiting for an admission slot.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// EvalMS is the engine evaluation wall time (leader's, inherited by
	// followers).
	EvalMS float64 `json:"eval_ms,omitempty"`
	// Cache is the cache-layer traffic of this request's evaluation.
	Cache *AccessCache `json:"cache,omitempty"`

	// QueueDepth is the admission queue depth observed when the request
	// was rejected with 429.
	QueueDepth int64 `json:"queue_depth,omitempty"`

	// Slow marks requests over the server's slow threshold; Phases then
	// carries the per-phase span breakdown from the request's Tracer.
	Slow   bool           `json:"slow,omitempty"`
	Phases []PhaseSummary `json:"phases,omitempty"`

	// Err is the error message of a failed request (4xx/5xx).
	Err string `json:"error,omitempty"`
}

// AccessLog serializes AccessEntry records as JSON lines. A nil
// *AccessLog is the disabled logger: Log no-ops and Enabled is false,
// so instrumented paths call straight through without guarding.
type AccessLog struct {
	mu   sync.Mutex
	w    io.Writer
	path string   // non-empty on file-backed logs (Reopen works)
	f    *os.File // the open file of a file-backed log
}

// NewAccessLog returns a logger writing to w (nil w returns the
// disabled nil logger).
func NewAccessLog(w io.Writer) *AccessLog {
	if w == nil {
		return nil
	}
	return &AccessLog{w: w}
}

// NewAccessLogFile returns a logger appending to the file at path
// (created if missing). A file-backed log supports Reopen, the
// log-rotation half of the SIGHUP convention.
func NewAccessLogFile(path string) (*AccessLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &AccessLog{w: f, path: path, f: f}, nil
}

// Reopen closes and reopens a file-backed sink at its original path:
// the operator renames the live file aside, signals SIGHUP, and
// subsequent lines land in a fresh file. The swap happens under the
// write lock, so no line is dropped, split across files, or
// interleaved. On failure the old sink stays in place. Non-file sinks
// (and the nil logger) no-op.
func (l *AccessLog) Reopen() error {
	if l == nil || l.path == "" {
		return nil
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.mu.Lock()
	old := l.f
	l.f, l.w = f, f
	l.mu.Unlock()
	return old.Close()
}

// Close closes a file-backed sink (other sinks are the caller's).
func (l *AccessLog) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Enabled reports whether records are being written. Call sites that
// must gather data to build an entry check this first.
func (l *AccessLog) Enabled() bool { return l != nil }

// Log writes one record as a single JSON line. Marshal happens outside
// the lock; the write is a single call so concurrent records never
// interleave (line-buffered sinks like files and pipes keep lines
// whole).
func (l *AccessLog) Log(e *AccessEntry) {
	if l == nil {
		return
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return // an entry that cannot marshal is dropped, never panics
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}
