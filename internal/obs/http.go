package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// RegisterMetrics mounts the registry's endpoints on an existing mux:
// Prometheus text format at /metrics, the JSON snapshot at
// /metrics.json. Sharing a mux — rather than spawning a dedicated
// listener per pillar — is how the service daemon exposes API, metrics
// and pprof on one port without conflicts.
func RegisterMetrics(mux *http.ServeMux, r *Registry) {
	prom := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}
	mux.HandleFunc("/metrics", prom)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// RegisterPprof mounts net/http/pprof's handlers on an existing mux
// (the stdlib only self-registers on http.DefaultServeMux):
// /debug/pprof/ for the index, /debug/pprof/profile for CPU,
// /debug/pprof/heap, and so on.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler serves the registry: Prometheus text format at the root (and
// /metrics), the JSON snapshot at /metrics.json.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	RegisterMetrics(mux, r)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	return mux
}

// Serve binds addr and serves h on it in the background. The returned
// listener reports the bound address and stops the server when closed.
func Serve(addr string, h http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, h) }()
	return ln, nil
}

// ServeMetrics binds addr and serves the registry on it in the
// background (Prometheus at /metrics, JSON at /metrics.json).
func ServeMetrics(addr string, r *Registry) (net.Listener, error) {
	return Serve(addr, Handler(r))
}

// ServePprof binds addr and serves net/http/pprof's handlers in the
// background: /debug/pprof/ for the index, /debug/pprof/profile for
// CPU, /debug/pprof/heap, and so on.
func ServePprof(addr string) (net.Listener, error) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	return Serve(addr, mux)
}
