package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// Handler serves the registry: Prometheus text format at the root (and
// /metrics), the JSON snapshot at /metrics.json.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	prom := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}
	mux.HandleFunc("/", prom)
	mux.HandleFunc("/metrics", prom)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	return mux
}

// ServeMetrics binds addr and serves the registry on it in the
// background (Prometheus at /metrics, JSON at /metrics.json). The
// returned listener reports the bound address and stops the server when
// closed.
func ServeMetrics(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, Handler(r)) }()
	return ln, nil
}

// ServePprof binds addr and serves net/http/pprof's handlers (the
// default mux) in the background: /debug/pprof/ for the index,
// /debug/pprof/profile for CPU, /debug/pprof/heap, and so on.
func ServePprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, http.DefaultServeMux) }()
	return ln, nil
}
