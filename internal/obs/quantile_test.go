package obs

import (
	"strings"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms")
	// 90 fast observations in the [0,1] bucket, 8 in (7,15], 2 slow in
	// (511,1023]: p50 must land in the first bucket, p95 in the middle,
	// p99 in the tail.
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 8; i++ {
		h.Observe(10)
	}
	h.Observe(600)
	h.Observe(600)

	hs := r.Snapshot().Histograms["latency_ms"]
	if hs.P50 != 1 {
		t.Errorf("p50 = %d, want 1", hs.P50)
	}
	if hs.P95 != 15 {
		t.Errorf("p95 = %d, want 15", hs.P95)
	}
	if hs.P99 != 1023 {
		t.Errorf("p99 = %d, want 1023", hs.P99)
	}
	if got := hs.Quantile(1.0); got != 1023 {
		t.Errorf("Quantile(1.0) = %d, want 1023", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}

	// All observations in the +Inf bucket: the quantile bound is
	// unknowable, reported as -1.
	r := NewRegistry()
	h := r.Histogram("huge")
	h.Observe(int64(1) << 40)
	hs := r.Snapshot().Histograms["huge"]
	if hs.P50 != -1 || hs.P99 != -1 {
		t.Errorf("+Inf-only quantiles = %d/%d, want -1/-1", hs.P50, hs.P99)
	}

	// Single observation: every quantile is its bucket bound.
	r2 := NewRegistry()
	r2.Histogram("one").Observe(5)
	one := r2.Snapshot().Histograms["one"]
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 {
		t.Errorf("single-obs quantiles = %d/%d/%d, want 7/7/7", one.P50, one.P95, one.P99)
	}
}

func TestPrometheusQuantileLines(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req.latency_ms")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_latency_ms_p50 gauge\n",
		"req_latency_ms_p50 63\n",
		"# TYPE req_latency_ms_p95 gauge\n",
		"req_latency_ms_p95 127\n",
		"req_latency_ms_p99 127\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
