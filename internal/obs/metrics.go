package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// (from a nil Registry) is inert.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is inert.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v is larger (peak tracking).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of Histogram: bucket i holds values
// whose bit length is i, i.e. upper bound 2^i - 1, with the last bucket
// catching everything beyond (+Inf).
const histBuckets = 32

// Histogram is a lock-free power-of-two-bucket histogram of int64
// observations. A nil *Histogram is inert.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// bucketBound is bucket i's inclusive upper bound; -1 marks +Inf.
func bucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return (int64(1) << i) - 1
}

// Registry is a named collection of metrics. Lookup methods create the
// metric on first use; instruments are atomics, so the registry lock is
// only held while resolving names. A nil *Registry returns nil
// instruments, whose methods all no-op — disabled metrics cost a nil
// check per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistBucket is one cumulative histogram bucket in a snapshot.
type HistBucket struct {
	// LE is the inclusive upper bound; -1 means +Inf.
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a histogram's state in a snapshot. P50/P95/P99 are
// the quantile bucket bounds derived from the cumulative buckets (see
// Quantile); they are upper bounds, not interpolated values.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	P50     int64        `json:"p50"`
	P95     int64        `json:"p95"`
	P99     int64        `json:"p99"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile returns the upper bound of the first bucket whose cumulative
// count covers quantile q (0 < q <= 1) — the tightest power-of-two
// bound b with P(X <= b) >= q. It returns 0 for an empty histogram and
// -1 when the rank lands in the +Inf bucket. Because it reads only the
// snapshot's already-consistent cumulative bucket list, it is safe
// against torn scrapes by construction.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	for _, bk := range h.Buckets {
		if bk.Count >= rank {
			return bk.LE
		}
	}
	return h.Buckets[len(h.Buckets)-1].LE
}

// Snapshot is a point-in-time copy of every metric, the expvar-style
// JSON form written by -metrics-out.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Sum: h.Sum()}
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			hs.Buckets = append(hs.Buckets, HistBucket{LE: bucketBound(i), Count: cum})
		}
		// Count derives from the buckets rather than the separate count
		// cell: Observe touches count before buckets, so an observation
		// landing between the two reads would otherwise produce a snapshot
		// whose +Inf bucket sits below its count — an invalid (decreasing)
		// Prometheus cumulative series under concurrent scrape.
		hs.Count = cum
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteJSONFile writes the snapshot to path.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// promName maps a metric name onto the Prometheus charset: characters
// outside [a-zA-Z0-9_:] become '_' (so "eval_cache.comm.hits" serves as
// "eval_cache_comm_hits").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (the -metrics-addr endpoint's payload). Histograms emit
// cumulative le-labelled buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		for _, bk := range h.Buckets {
			le := "+Inf"
			if bk.LE >= 0 {
				le = fmt.Sprint(bk.LE)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, bk.Count)
		}
		if n := len(h.Buckets); n == 0 || h.Buckets[n-1].LE >= 0 {
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
		// Quantile bounds export as companion gauges (quantile labels on
		// a TYPE histogram family would be invalid exposition format).
		for _, qb := range [...]struct {
			suffix string
			v      int64
		}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
			fmt.Fprintf(&b, "# TYPE %s_%s gauge\n%s_%s %d\n", pn, qb.suffix, pn, qb.suffix, qb.v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
