// Package telem is the persistent telemetry layer behind qschedd: an
// embedded, append-only time-series store for periodic obs.Registry
// snapshots, plus a flight recorder that turns the recent-request ring
// into self-contained postmortem bundles.
//
// The store follows the internal/cas file discipline: every sealed
// segment is a versioned, CRC-checksummed record written with a temp
// file + atomic rename, and a segment failing validation — a crash
// mid-write, a bad disk, a truncation — is quarantined and skipped,
// never a wrong answer and never a crash. Samples buffer in memory and
// seal every Options.SealSamples appends (Close seals the tail), so a
// kill -9 loses at most one unsealed buffer, and everything sealed
// before it reads back bit-identically after reopen.
//
// Retention is two-tier under one byte budget: segments older than
// Options.Retention are dropped outright; past Options.MaxBytes the
// oldest segments are first rewritten at a coarser step
// (step-aligned downsampling, see Store.maintainLocked) and only then
// dropped. Downsampling level n keeps the last sample in each
// epoch-aligned Step<<n window — counters are cumulative, so the
// window's endpoint preserves exact rates across the gap.
package telem

import (
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// Options configures a Store. Only Dir is required.
type Options struct {
	// Dir is the telemetry root; created if missing. Segments live
	// under Dir/segments, quarantined files under Dir/quarantine, and
	// postmortem bundles under Dir/postmortem.
	Dir string
	// Retention bounds how long sealed segments are kept (enforced at
	// seal time and at Open). Default 24h. Negative disables time-based
	// retention.
	Retention time.Duration
	// MaxBytes bounds sealed-segment bytes on disk; past it the oldest
	// segments are downsampled, then dropped. 0 = unbounded.
	MaxBytes int64
	// Step is the expected sample cadence, anchoring the downsampling
	// grid (level n buckets are Step<<n wide, epoch-aligned). Default
	// 2s, matching the server's sampler.
	Step time.Duration
	// SealSamples is how many samples buffer in memory before sealing
	// into an immutable segment (default 64: ~2 minutes at the default
	// cadence, bounding what a crash can lose).
	SealSamples int
	// Now injects the clock for retention decisions (tests); default
	// time.Now.
	Now func() time.Time
}

func (o Options) retention() time.Duration {
	if o.Retention == 0 {
		return 24 * time.Hour
	}
	return o.Retention
}

func (o Options) step() time.Duration {
	if o.Step <= 0 {
		return 2 * time.Second
	}
	return o.Step
}

func (o Options) sealSamples() int {
	if o.SealSamples <= 0 {
		return 64
	}
	return o.SealSamples
}

func (o Options) now() time.Time {
	if o.Now != nil {
		return o.Now()
	}
	return time.Now()
}

// Flatten spreads a registry snapshot into the flat series the store
// persists: counters and gauges keep their names, histograms expand to
// name.count/.sum/.p50/.p95/.p99 — the same derived quantiles the
// Prometheus endpoint exports, so scraped and persisted views agree.
func Flatten(s obs.Snapshot) map[string]float64 {
	m := make(map[string]float64, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms))
	for k, v := range s.Counters {
		m[k] = float64(v)
	}
	for k, v := range s.Gauges {
		m[k] = float64(v)
	}
	for k, h := range s.Histograms {
		m[k+".count"] = float64(h.Count)
		m[k+".sum"] = float64(h.Sum)
		m[k+".p50"] = float64(h.P50)
		m[k+".p95"] = float64(h.P95)
		m[k+".p99"] = float64(h.P99)
	}
	return m
}
