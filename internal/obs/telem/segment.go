package telem

// Segment framing, following the internal/cas record discipline: a
// fixed little-endian header (magic, version, payload length, CRC-32C
// of the payload) ahead of a schema-versioned JSON payload. Version
// increments on any incompatible layout change; readers treat unknown
// versions as corrupt (quarantined), so old and new binaries can share
// a directory without misreading each other.
//
//	offset 0  magic   "QTSG" (4 bytes)
//	offset 4  version uint32 (currently 1)
//	offset 8  length  uint64 (payload bytes)
//	offset 16 crc     uint32 (Castagnoli CRC-32 of the payload)
//	offset 20 payload (JSON segmentPayload)

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

const (
	segmentVersion = 1
	headerSize     = 20

	// SegmentSchemaVersion versions the JSON payload inside the frame,
	// independently of the frame itself.
	SegmentSchemaVersion = 1
)

var (
	segmentMagic = [4]byte{'Q', 'T', 'S', 'G'}
	crcTable     = crc32.MakeTable(crc32.Castagnoli)
)

// Sample is one telemetry point in time: every series' value at TSMS
// (unix milliseconds).
type Sample struct {
	TSMS   int64              `json:"ts"`
	Values map[string]float64 `json:"v"`
}

// segmentPayload is the JSON inside one sealed segment. Samples are in
// append (time) order; DS is the downsampling level the segment has
// been rewritten at (0 = raw).
type segmentPayload struct {
	Schema  int      `json:"schema"`
	DS      int      `json:"ds"`
	Samples []Sample `json:"samples"`
}

// encodeSegment frames a payload for disk.
func encodeSegment(p segmentPayload) ([]byte, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	data := make([]byte, headerSize+len(body))
	copy(data[0:4], segmentMagic[:])
	binary.LittleEndian.PutUint32(data[4:8], segmentVersion)
	binary.LittleEndian.PutUint64(data[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint32(data[16:20], crc32.Checksum(body, crcTable))
	copy(data[headerSize:], body)
	return data, nil
}

// decodeSegment validates framing and payload schema.
func decodeSegment(data []byte) (segmentPayload, error) {
	var p segmentPayload
	if len(data) < headerSize {
		return p, fmt.Errorf("telem: segment truncated at %d bytes", len(data))
	}
	if [4]byte(data[0:4]) != segmentMagic {
		return p, fmt.Errorf("telem: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segmentVersion {
		return p, fmt.Errorf("telem: segment version %d, this build reads %d", v, segmentVersion)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if uint64(len(data)-headerSize) != n {
		return p, fmt.Errorf("telem: payload length %d, header says %d", len(data)-headerSize, n)
	}
	body := data[headerSize:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(data[16:20]); got != want {
		return p, fmt.Errorf("telem: checksum %08x, header says %08x", got, want)
	}
	if err := json.Unmarshal(body, &p); err != nil {
		return p, fmt.Errorf("telem: segment payload: %w", err)
	}
	if p.Schema != SegmentSchemaVersion {
		return p, fmt.Errorf("telem: payload schema %d, this build reads %d", p.Schema, SegmentSchemaVersion)
	}
	return p, nil
}
