package telem

import (
	"reflect"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// ms builds the fixed test clock: samples land at epoch + n*step so
// step-aligned assertions are exact.
func ms(n int64) time.Time { return time.UnixMilli(n) }

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestAppendSealQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 4})
	for i := int64(0); i < 10; i++ {
		s.Append(ms(i*2000), map[string]float64{"req.total": float64(i), "heap": float64(100 + i)})
	}
	// 10 appends at SealSamples=4: two sealed segments, two buffered.
	st := s.Stats()
	if st.Sealed != 2 || st.BufferedSamples != 2 {
		t.Fatalf("stats = %+v, want 2 sealed / 2 buffered", st)
	}
	pts := s.Query("req.total", ms(0), ms(20000), 0)
	if len(pts) != 10 {
		t.Fatalf("Query returned %d points, want 10 (sealed + buffered)", len(pts))
	}
	for i, p := range pts {
		if p.TSMS != int64(i)*2000 || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	// Sub-range only.
	pts = s.Query("req.total", ms(4000), ms(8000), 0)
	if len(pts) != 3 || pts[0].V != 2 || pts[2].V != 4 {
		t.Fatalf("sub-range = %+v", pts)
	}
	// Unknown series: no points.
	if got := s.Query("nope", ms(0), ms(20000), 0); len(got) != 0 {
		t.Fatalf("unknown series returned %+v", got)
	}
}

func TestQueryStepAlignment(t *testing.T) {
	s := openTest(t, Options{Dir: t.TempDir(), Retention: -1, SealSamples: 100})
	// Samples every 2s; query at a 10s step must keep the last sample of
	// each epoch-aligned 10s bucket.
	for i := int64(0); i < 15; i++ {
		s.Append(ms(i*2000), map[string]float64{"c": float64(i)})
	}
	pts := s.Query("c", ms(0), ms(30000), 10*time.Second)
	want := []Point{{TSMS: 0, V: 4}, {TSMS: 10000, V: 9}, {TSMS: 20000, V: 14}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("aligned points = %+v, want %+v", pts, want)
	}
}

func TestSeriesSorted(t *testing.T) {
	s := openTest(t, Options{Dir: t.TempDir(), Retention: -1})
	s.Append(ms(0), map[string]float64{"zz": 1, "aa": 2, "mm": 3})
	if got, want := s.Series(), []string{"aa", "mm", "zz"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
}

func TestSeriesSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, Retention: -1})
	s.Append(ms(0), map[string]float64{"a": 1, "b": 2})
	s.Close()
	s2 := openTest(t, Options{Dir: dir, Retention: -1})
	if got, want := s2.Series(), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Series after reopen = %v, want %v", got, want)
	}
}

func TestRetentionDropsExpiredSegments(t *testing.T) {
	dir := t.TempDir()
	now := ms(100 * 60 * 1000) // t = 100 minutes
	clock := func() time.Time { return now }
	s := openTest(t, Options{Dir: dir, Retention: 10 * time.Minute, SealSamples: 1, Now: clock})
	// One old segment (sealed immediately at SealSamples=1) and one fresh.
	s.Append(ms(1*60*1000), map[string]float64{"c": 1})
	s.Append(ms(99*60*1000), map[string]float64{"c": 2})
	st := s.Stats()
	if st.DroppedAge != 1 || st.Segments != 1 {
		t.Fatalf("stats = %+v, want 1 dropped by age, 1 kept", st)
	}
	if pts := s.Query("c", ms(0), now, 0); len(pts) != 1 || pts[0].V != 2 {
		t.Fatalf("post-retention query = %+v", pts)
	}
	// Reopen with the same clock: the kept segment stays.
	s.Close()
	s2 := openTest(t, Options{Dir: dir, Retention: 10 * time.Minute, Now: clock})
	if pts := s2.Query("c", ms(0), now, 0); len(pts) != 1 || pts[0].V != 2 {
		t.Fatalf("reopen query = %+v", pts)
	}
}

func TestBudgetDownsamplesThenDrops(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 8, Step: 2 * time.Second})
	for i := int64(0); i < 64; i++ {
		s.Append(ms(i*2000), map[string]float64{"c": float64(i), "pad": float64(i) * 1.5})
	}
	full := s.Stats()
	if full.Sealed != 8 || full.Bytes == 0 {
		t.Fatalf("setup stats = %+v", full)
	}

	// Reopen under a budget roughly half the raw footprint: maintenance
	// must downsample the oldest segments first and only then drop.
	s.Close()
	s2 := openTest(t, Options{Dir: dir, Retention: -1, MaxBytes: full.Bytes / 2, Step: 2 * time.Second})
	st := s2.Stats()
	if st.Bytes > full.Bytes/2 {
		t.Fatalf("budget not enforced: %d > %d", st.Bytes, full.Bytes/2)
	}
	if st.Downsampled == 0 {
		t.Fatalf("stats = %+v, want downsampling before dropping", st)
	}
	// Downsampled history still answers queries (coarser, last-wins),
	// and the series endpoint — the last sample in its window — is
	// always preserved, so rates survive the squeeze.
	pts := s2.Query("c", ms(0), ms(63*2000), 0)
	if len(pts) == 0 || len(pts) >= 64 {
		t.Fatalf("squeezed history has %d points, want 0 < n < 64", len(pts))
	}
	if last := pts[len(pts)-1]; last.V != 63 {
		t.Fatalf("endpoint after squeeze = %+v, want v=63", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TSMS <= pts[i-1].TSMS {
			t.Fatalf("points out of order at %d: %+v", i, pts)
		}
	}
}

func TestDownsampleKeepsWindowEndpoint(t *testing.T) {
	s := openTest(t, Options{Dir: t.TempDir(), Retention: -1, Step: 2 * time.Second})
	for i := int64(0); i < 8; i++ {
		s.Append(ms(i*2000), map[string]float64{"c": float64(i * 10)})
	}
	s.Seal()
	s.mu.Lock()
	m := &s.segs[0]
	s.downsampleLocked(m) // level 1: 4s epoch-aligned windows
	s.mu.Unlock()
	pts := s.Query("c", ms(0), ms(16000), 0)
	// Windows [0,4s) [4,8s) ... keep their last raw sample: t=2s,6s,10s,14s.
	want := []Point{{2000, 10}, {6000, 30}, {10000, 50}, {14000, 70}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("downsampled points = %+v, want %+v", pts, want)
	}
}

func TestNilStoreZeroAllocations(t *testing.T) {
	var s *Store
	values := map[string]float64{"c": 1}
	now := time.Unix(0, 0)
	if n := testing.AllocsPerRun(100, func() {
		s.Append(now, values)
		_ = s.Query("c", now, now, 0)
		_ = s.Series()
		s.Seal()
		s.Close()
	}); n != 0 {
		t.Fatalf("nil store allocated %.1f per run, want 0", n)
	}
	var r *FlightRecorder
	rec := RequestRecord{ID: "x"}
	if n := testing.AllocsPerRun(100, func() {
		r.Record(rec)
		_ = r.Recent()
		_ = r.Len()
	}); n != 0 {
		t.Fatalf("nil recorder allocated %.1f per run, want 0", n)
	}
}

func TestFlattenSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("req.total").Add(7)
	reg.Gauge("inflight").Set(3)
	h := reg.Histogram("lat_ms")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	m := Flatten(reg.Snapshot())
	if m["req.total"] != 7 || m["inflight"] != 3 {
		t.Fatalf("flattened scalars wrong: %v", m)
	}
	if m["lat_ms.count"] != 100 {
		t.Fatalf("lat_ms.count = %v", m["lat_ms.count"])
	}
	for _, k := range []string{"lat_ms.sum", "lat_ms.p50", "lat_ms.p95", "lat_ms.p99"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("missing %s in %v", k, m)
		}
	}
	if m["lat_ms.p50"] > m["lat_ms.p99"] {
		t.Fatalf("quantiles inverted: p50=%v p99=%v", m["lat_ms.p50"], m["lat_ms.p99"])
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}
