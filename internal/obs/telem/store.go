package telem

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxDownsampleLevel bounds how coarse a budget-squeezed segment can
// get: level 6 is one sample per Step*64 window (~2 minutes at the
// default 2s cadence) — past that the segment is cheaper to drop than
// to keep blurring.
const maxDownsampleLevel = 6

// Point is one range-query result point. TSMS is the sample (or, under
// a step, the epoch-aligned bucket) timestamp in unix milliseconds.
type Point struct {
	TSMS int64   `json:"ts_ms"`
	V    float64 `json:"v"`
}

// Stats is a point-in-time store snapshot.
type Stats struct {
	Segments        int   `json:"segments"`
	Bytes           int64 `json:"bytes"`
	BufferedSamples int   `json:"buffered_samples"`
	Series          int   `json:"series"`
	Sealed          int64 `json:"sealed"`
	Downsampled     int64 `json:"downsampled"`
	DroppedAge      int64 `json:"dropped_age"`    // segments dropped by Retention
	DroppedBudget   int64 `json:"dropped_budget"` // segments dropped by MaxBytes
	Corrupt         int64 `json:"corrupt"`        // segments quarantined
}

// segMeta indexes one sealed segment without holding its samples.
type segMeta struct {
	path         string
	fromMS, toMS int64
	seq          int64
	ds           int
	size         int64
}

// Store is the embedded time-series store. Safe for concurrent use; a
// nil *Store is the disabled store (Append, Query, Series and Close all
// no-op without allocating), so telemetry-off paths cost one nil check.
type Store struct {
	opts Options

	mu     sync.Mutex
	active []Sample
	segs   []segMeta // sorted by (fromMS, seq)
	names  map[string]struct{}
	seq    int64

	sealed, downsampled, droppedAge, droppedBudget, corrupt int64
}

// Open opens (and creates) a store rooted at opts.Dir, indexing the
// sealed segments already there: every segment is read and validated up
// front, corrupt ones are quarantined, leftover temp files from a
// crashed writer are removed, and retention is enforced immediately so
// a long-stopped daemon does not come back serving expired history.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("telem: Dir is required")
	}
	s := &Store{opts: opts, names: map[string]struct{}{}}
	for _, d := range []string{s.segmentsDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("telem: %w", err)
		}
	}
	ents, err := os.ReadDir(s.segmentsDir())
	if err != nil {
		return nil, fmt.Errorf("telem: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		path := filepath.Join(s.segmentsDir(), name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(path)
			continue
		}
		m, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		m.path = path
		p, size, err := readSegmentFile(path)
		if err != nil {
			s.corrupt++
			s.quarantine(path)
			continue
		}
		m.size = size
		m.ds = p.DS
		if n := len(p.Samples); n > 0 {
			m.fromMS, m.toMS = p.Samples[0].TSMS, p.Samples[n-1].TSMS
		}
		for _, sm := range p.Samples {
			for k := range sm.Values {
				s.names[k] = struct{}{}
			}
		}
		if m.seq >= s.seq {
			s.seq = m.seq + 1
		}
		s.segs = append(s.segs, m)
	}
	sort.Slice(s.segs, func(i, j int) bool {
		if s.segs[i].fromMS != s.segs[j].fromMS {
			return s.segs[i].fromMS < s.segs[j].fromMS
		}
		return s.segs[i].seq < s.segs[j].seq
	})
	s.mu.Lock()
	s.maintainLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Store) segmentsDir() string   { return filepath.Join(s.opts.Dir, "segments") }
func (s *Store) quarantineDir() string { return filepath.Join(s.opts.Dir, "quarantine") }

// Dir returns the store root (postmortem bundles are written under it).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.opts.Dir
}

// Retention returns the effective retention window.
func (s *Store) Retention() time.Duration {
	if s == nil {
		return 0
	}
	return s.opts.retention()
}

// segmentName renders a sealed segment's file name; parseSegmentName
// inverts it. Sorting by name sorts by (fromMS, seq).
func segmentName(fromMS, seq int64, ds int) string {
	return fmt.Sprintf("seg-%016x-%08x-ds%d.tseg", uint64(fromMS), uint64(seq), ds)
}

func parseSegmentName(name string) (segMeta, bool) {
	var m segMeta
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".tseg") {
		return m, false
	}
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".tseg"), "-")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "ds") {
		return m, false
	}
	from, err1 := strconv.ParseUint(parts[0], 16, 64)
	seq, err2 := strconv.ParseUint(parts[1], 16, 64)
	ds, err3 := strconv.Atoi(strings.TrimPrefix(parts[2], "ds"))
	if err1 != nil || err2 != nil || err3 != nil {
		return m, false
	}
	m.fromMS, m.seq, m.ds = int64(from), int64(seq), ds
	return m, true
}

func readSegmentFile(path string) (segmentPayload, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segmentPayload{}, 0, err
	}
	p, err := decodeSegment(data)
	return p, int64(len(data)), err
}

// quarantine moves a failed segment aside for postmortem; if the move
// fails the file is removed so it cannot fail validation again.
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.quarantineDir(), filepath.Base(path)+".bad")
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// Append buffers one sample (values must not be mutated by the caller
// afterwards — Flatten builds a fresh map). Every SealSamples appends,
// the buffer seals into an immutable segment and retention runs. A nil
// store, or an empty sample, is a no-op.
func (s *Store) Append(t time.Time, values map[string]float64) {
	if s == nil || len(values) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range values {
		if _, ok := s.names[k]; !ok {
			s.names[k] = struct{}{}
		}
	}
	s.active = append(s.active, Sample{TSMS: t.UnixMilli(), Values: values})
	if len(s.active) >= s.opts.sealSamples() {
		s.sealLocked()
	}
}

// Seal forces the buffered tail into a segment (Close calls it; the
// daemon's SIGTERM path therefore persists everything).
func (s *Store) Seal() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked()
}

// Close seals the buffered tail. The store holds no open files between
// calls, so Close never fails.
func (s *Store) Close() {
	s.Seal()
}

func (s *Store) sealLocked() {
	if len(s.active) == 0 {
		return
	}
	payload := segmentPayload{Schema: SegmentSchemaVersion, Samples: s.active}
	m := segMeta{
		fromMS: s.active[0].TSMS,
		toMS:   s.active[len(s.active)-1].TSMS,
		seq:    s.seq,
	}
	m.path = filepath.Join(s.segmentsDir(), segmentName(m.fromMS, m.seq, 0))
	size, err := s.writeSegment(m.path, payload)
	if err != nil {
		// A failed seal only costs history; drop the buffer so memory
		// stays bounded even on a dead disk.
		s.active = nil
		return
	}
	m.size = size
	s.seq++
	s.segs = append(s.segs, m)
	s.sealed++
	s.active = nil
	s.maintainLocked()
}

// writeSegment writes one framed segment atomically (temp + rename).
func (s *Store) writeSegment(path string, p segmentPayload) (int64, error) {
	data, err := encodeSegment(p)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(s.segmentsDir(), "seal-*.tmp")
	if err != nil {
		return 0, err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return 0, werr
		}
		return 0, cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(data)), nil
}

// maintainLocked enforces retention then the byte budget: expired
// segments are dropped; past MaxBytes the oldest segments are first
// rewritten one downsampling level coarser (halving their resolution,
// step-aligned) and, when every survivor is already at the coarsest
// level, dropped oldest-first. Caller holds s.mu.
func (s *Store) maintainLocked() {
	if ret := s.opts.retention(); ret > 0 {
		cutoff := s.opts.now().Add(-ret).UnixMilli()
		kept := s.segs[:0]
		for _, m := range s.segs {
			if m.toMS < cutoff {
				os.Remove(m.path)
				s.droppedAge++
				continue
			}
			kept = append(kept, m)
		}
		s.segs = kept
	}
	if s.opts.MaxBytes <= 0 {
		return
	}
	total := int64(0)
	for _, m := range s.segs {
		total += m.size
	}
	for i := 0; total > s.opts.MaxBytes && i < len(s.segs); i++ {
		if s.segs[i].ds >= maxDownsampleLevel {
			continue
		}
		total += s.downsampleLocked(&s.segs[i])
	}
	for total > s.opts.MaxBytes && len(s.segs) > 0 {
		os.Remove(s.segs[0].path)
		total -= s.segs[0].size
		s.segs = s.segs[1:]
		s.droppedBudget++
	}
}

// downsampleLocked rewrites one segment a level coarser, keeping the
// last sample in each epoch-aligned Step<<(ds+1) window, and returns
// the byte delta. On any failure the segment is left as it was.
func (s *Store) downsampleLocked(m *segMeta) int64 {
	p, _, err := readSegmentFile(m.path)
	if err != nil {
		s.corrupt++
		s.quarantine(m.path)
		// Treat as freed; the caller's running total must not count a
		// quarantined segment against the budget.
		delta := -m.size
		m.size = 0
		return delta
	}
	newDS := m.ds + 1
	bucketMS := s.opts.step().Milliseconds() << newDS
	if bucketMS <= 0 {
		return 0
	}
	kept := make([]Sample, 0, len(p.Samples)/2+1)
	for _, sm := range p.Samples {
		b := sm.TSMS / bucketMS
		if n := len(kept); n > 0 && kept[n-1].TSMS/bucketMS == b {
			kept[n-1] = sm
			continue
		}
		kept = append(kept, sm)
	}
	newPath := filepath.Join(s.segmentsDir(), segmentName(m.fromMS, m.seq, newDS))
	size, err := s.writeSegment(newPath, segmentPayload{Schema: SegmentSchemaVersion, DS: newDS, Samples: kept})
	if err != nil {
		return 0
	}
	if newPath != m.path {
		os.Remove(m.path)
	}
	delta := size - m.size
	m.path, m.ds, m.size = newPath, newDS, size
	if len(kept) > 0 {
		m.fromMS, m.toMS = kept[0].TSMS, kept[len(kept)-1].TSMS
	}
	s.downsampled++
	return delta
}

// Query returns the points of one series inside [from, to], oldest
// first, folded onto an epoch-aligned step grid (the last sample in
// each step window wins; step <= 0 returns raw samples). Sealed
// segments and the unsealed buffer both contribute; a segment failing
// validation mid-run is quarantined and skipped — a gap, never an
// error. A nil store returns nil.
func (s *Store) Query(name string, from, to time.Time, step time.Duration) []Point {
	if s == nil {
		return nil
	}
	fromMS, toMS := from.UnixMilli(), to.UnixMilli()
	var pts []Point
	collect := func(samples []Sample) {
		for _, sm := range samples {
			if sm.TSMS < fromMS || sm.TSMS > toMS {
				continue
			}
			if v, ok := sm.Values[name]; ok {
				pts = append(pts, Point{TSMS: sm.TSMS, V: v})
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.segs); i++ {
		m := s.segs[i]
		if m.toMS < fromMS || m.fromMS > toMS {
			continue
		}
		p, _, err := readSegmentFile(m.path)
		if err != nil {
			s.corrupt++
			s.quarantine(m.path)
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			i--
			continue
		}
		collect(p.Samples)
	}
	collect(s.active)
	return alignStep(pts, step)
}

// alignStep folds time-ordered points onto an epoch-aligned step grid,
// keeping the last point per bucket (series are cumulative counters or
// instantaneous gauges; either way the window's endpoint is the value
// an operator wants at that resolution).
func alignStep(pts []Point, step time.Duration) []Point {
	stepMS := step.Milliseconds()
	if stepMS <= 0 || len(pts) == 0 {
		return pts
	}
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		b := p.TSMS / stepMS * stepMS
		if n := len(out); n > 0 && out[n-1].TSMS == b {
			out[n-1].V = p.V
			continue
		}
		out = append(out, Point{TSMS: b, V: p.V})
	}
	return out
}

// Series lists every series name the store has seen, sorted. A nil
// store returns nil.
func (s *Store) Series() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.names))
	for k := range s.names {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the store's occupancy and maintenance counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:        len(s.segs),
		BufferedSamples: len(s.active),
		Series:          len(s.names),
		Sealed:          s.sealed,
		Downsampled:     s.downsampled,
		DroppedAge:      s.droppedAge,
		DroppedBudget:   s.droppedBudget,
		Corrupt:         s.corrupt,
	}
	for _, m := range s.segs {
		st.Bytes += m.size
	}
	return st
}
