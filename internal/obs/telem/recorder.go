package telem

// The flight recorder: a bounded in-memory ring of recent per-request
// context (phase spans, decision-log tail, cache/queue deltas). When a
// request ends badly — slow, 5xx, 429 — or an operator asks via
// POST /v1/debug/snapshot, the ring is frozen into a postmortem bundle:
// one self-contained, schema-versioned JSON file holding the triggering
// request, the recent-request ring, a full metrics snapshot, the
// server's debug state and a Perfetto-loadable trace fragment rebuilt
// from the recorded spans. Everything needed to reconstruct "what was
// the server doing when this went wrong", without ssh'ing into a box
// that may already have been recycled.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// RequestRecord is one flight-recorder entry: what one request did,
// in the access log's vocabulary, plus the raw spans and decision tail
// the log line only aggregates.
type RequestRecord struct {
	ID       string  `json:"id"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	Time     string  `json:"ts"`
	DurMS    float64 `json:"dur_ms"`
	Role     string  `json:"role,omitempty"`

	QueueWaitMS float64          `json:"queue_wait_ms,omitempty"`
	EvalMS      float64          `json:"eval_ms,omitempty"`
	Cache       *obs.AccessCache `json:"cache,omitempty"`
	Err         string           `json:"error,omitempty"`

	// Phases is the per-phase aggregation the access log carries;
	// Spans are the completed spans it was folded from. Decisions is
	// the tail of the evaluation's scheduler decision log.
	Phases    []obs.PhaseSummary `json:"phases,omitempty"`
	Spans     []obs.SpanEvent    `json:"spans,omitempty"`
	Decisions []obs.Decision     `json:"decisions,omitempty"`
}

// FlightRecorder keeps the most recent request records in a bounded
// ring. A nil *FlightRecorder is disabled: Record no-ops without
// allocating, Recent returns nil. Safe for concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	entries []RequestRecord
	max     int
	total   int64
}

// DefaultFlightRecords is the default ring capacity.
const DefaultFlightRecords = 64

// NewFlightRecorder returns a recorder keeping the last max records
// (<= 0: DefaultFlightRecords).
func NewFlightRecorder(max int) *FlightRecorder {
	if max <= 0 {
		max = DefaultFlightRecords
	}
	return &FlightRecorder{max: max}
}

// Record appends one request record, evicting the oldest past the cap.
func (r *FlightRecorder) Record(rec RequestRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.entries = append(r.entries, rec)
	if len(r.entries) > r.max {
		r.entries = r.entries[len(r.entries)-r.max:]
	}
	r.total++
	r.mu.Unlock()
}

// Recent copies the ring, oldest first.
func (r *FlightRecorder) Recent() []RequestRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, len(r.entries))
	copy(out, r.entries)
	return out
}

// Len reports how many records the ring currently holds.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Total reports how many records were ever recorded (evicted included).
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// BundleSchemaVersion versions the postmortem bundle contract.
const BundleSchemaVersion = 1

// TraceEvent is one Chrome trace-event record of a bundle's trace
// fragment (the exported sibling of obs's internal event type).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFragment is a Perfetto-loadable trace: extracted on its own it
// opens directly in ui.perfetto.dev or chrome://tracing. Each recorded
// request renders as one process (pid), its worker spans as threads.
type TraceFragment struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

// Bundle is one postmortem artifact.
type Bundle struct {
	Schema  int    `json:"schema"`
	Service string `json:"service"`
	// Trigger says why the bundle exists: "slow", "error", "overloaded"
	// (automatic) or "manual" (POST /v1/debug/snapshot).
	Trigger string `json:"trigger"`
	Time    string `json:"ts"`
	// RequestID is the triggering request's id (the snapshot request's
	// own id on manual bundles).
	RequestID string `json:"request_id,omitempty"`
	// Request is the triggering request's record (automatic bundles).
	Request *RequestRecord `json:"request,omitempty"`
	// Recent is the flight-recorder ring at trigger time, oldest first.
	Recent []RequestRecord `json:"recent,omitempty"`
	// Metrics is the full registry snapshot at trigger time.
	Metrics obs.Snapshot `json:"metrics"`
	// State is the server's debug-state snapshot, embedded verbatim so
	// the bundle does not chase the server's schema.
	State json.RawMessage `json:"state,omitempty"`
	// Trace is the Perfetto fragment rebuilt from every recorded span.
	Trace TraceFragment `json:"trace"`
}

// BuildBundle assembles a bundle. req, when non-nil, is the triggering
// request: it renders as pid 1 of the trace fragment, ahead of the ring
// (which skips its duplicate). requestID overrides req's id when req is
// nil (manual snapshots).
func BuildBundle(service, trigger, ts, requestID string, req *RequestRecord, recent []RequestRecord, metrics obs.Snapshot, state json.RawMessage) Bundle {
	b := Bundle{
		Schema:    BundleSchemaVersion,
		Service:   service,
		Trigger:   trigger,
		Time:      ts,
		RequestID: requestID,
		Request:   req,
		Recent:    recent,
		Metrics:   metrics,
		State:     state,
	}
	if req != nil {
		b.RequestID = req.ID
	}
	b.Trace = buildTrace(req, recent)
	return b
}

// buildTrace renders the recorded spans as one trace-viewer process per
// request: a process_name metadata event carrying the request id, then
// the spans on their original worker tids. The triggering request is
// always pid 1.
func buildTrace(req *RequestRecord, recent []RequestRecord) TraceFragment {
	tf := TraceFragment{DisplayTimeUnit: "ms"}
	pid := int64(1)
	add := func(r *RequestRecord) {
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": r.Endpoint, "request_id": r.ID},
		})
		for _, e := range r.Spans {
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: e.Name, Cat: e.Cat, Ph: "X",
				TS: e.TSUS, Dur: e.DurUS, PID: pid, TID: e.TID,
			})
		}
		pid++
	}
	if req != nil {
		add(req)
	}
	for i := range recent {
		r := &recent[i]
		if req != nil && r.ID == req.ID && r.Time == req.Time {
			continue
		}
		add(r)
	}
	return tf
}

// RequestEvents extracts one request's completed spans back out of the
// trace fragment (resolving its pid via the process_name metadata), in
// the shape obs.AggregatePhases folds — the replay path a test runs to
// prove the bundle carries exactly the aggregation the access log
// showed.
func (b Bundle) RequestEvents(id string) []obs.SpanEvent {
	pid := int64(-1)
	for _, e := range b.Trace.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			if got, _ := e.Args["request_id"].(string); got == id {
				pid = e.PID
				break
			}
		}
	}
	if pid < 0 {
		return nil
	}
	var out []obs.SpanEvent
	for _, e := range b.Trace.TraceEvents {
		if e.Ph != "X" || e.PID != pid {
			continue
		}
		out = append(out, obs.SpanEvent{Cat: e.Cat, Name: e.Name, TSUS: e.TS, DurUS: e.Dur, TID: e.TID})
	}
	return out
}

// MaxBundles bounds how many postmortem bundles a directory keeps;
// writing past it prunes oldest-first (file names sort by write time).
const MaxBundles = 32

// bundleSeq disambiguates bundles written within one millisecond.
var bundleSeq atomic.Int64

// WriteBundle writes b into dir (created if missing) atomically and
// prunes the directory to MaxBundles, returning the bundle's path.
func WriteBundle(dir string, b Bundle, now time.Time) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telem: %w", err)
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return "", fmt.Errorf("telem: %w", err)
	}
	data = append(data, '\n')
	name := fmt.Sprintf("pm-%016x-%04x-%s.json", uint64(now.UnixMilli()), uint64(bundleSeq.Add(1))&0xffff, b.Trigger)
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, "pm-*.tmp")
	if err != nil {
		return "", fmt.Errorf("telem: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("telem: %w", werr)
	}
	pruneBundles(dir)
	return path, nil
}

// pruneBundles drops the oldest bundles past MaxBundles. Best-effort.
func pruneBundles(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "pm-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	if len(names) <= MaxBundles {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-MaxBundles] {
		os.Remove(filepath.Join(dir, n))
	}
}

// ReadBundle loads a bundle back (tests, tooling).
func ReadBundle(path string) (Bundle, error) {
	var b Bundle
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("telem: bundle %s: %w", filepath.Base(path), err)
	}
	if b.Schema != BundleSchemaVersion {
		return b, fmt.Errorf("telem: bundle schema %d, this build reads %d", b.Schema, BundleSchemaVersion)
	}
	return b, nil
}
