package telem

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/obs"
)

func TestFlightRecorderRingBound(t *testing.T) {
	r := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(RequestRecord{ID: fmt.Sprintf("req-%d", i)})
	}
	if r.Len() != 3 || r.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 3/10", r.Len(), r.Total())
	}
	recent := r.Recent()
	if recent[0].ID != "req-7" || recent[2].ID != "req-9" {
		t.Fatalf("ring kept %v, want the newest 3 oldest-first", recent)
	}
}

func TestFlightRecorderDefaultCap(t *testing.T) {
	r := NewFlightRecorder(0)
	for i := 0; i < DefaultFlightRecords+5; i++ {
		r.Record(RequestRecord{ID: fmt.Sprintf("r%d", i)})
	}
	if r.Len() != DefaultFlightRecords {
		t.Fatalf("len = %d, want %d", r.Len(), DefaultFlightRecords)
	}
}

func sampleRecord(id string) RequestRecord {
	return RequestRecord{
		ID: id, Endpoint: "compile", Status: 200, DurMS: 12.5,
		Spans: []obs.SpanEvent{
			{Cat: "phase", Name: "parse", TSUS: 0, DurUS: 100, TID: 1},
			{Cat: "phase", Name: "schedule", TSUS: 100, DurUS: 400, TID: 1},
			{Cat: "phase", Name: "schedule", TSUS: 500, DurUS: 200, TID: 2},
		},
	}
}

func TestBuildBundleTraceLayout(t *testing.T) {
	trig := sampleRecord("trigger-1")
	other := sampleRecord("other-2")
	b := BuildBundle("qschedd", "slow", "2026-01-01T00:00:00Z", "",
		&trig, []RequestRecord{other, trig}, obs.Snapshot{}, nil)
	if b.Schema != BundleSchemaVersion || b.RequestID != "trigger-1" {
		t.Fatalf("bundle header = %+v", b)
	}
	// pid 1 is the triggering request; its ring duplicate is skipped, so
	// exactly two processes render.
	pids := map[int64]string{}
	for _, e := range b.Trace.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			pids[e.PID], _ = e.Args["request_id"].(string)
		}
	}
	if len(pids) != 2 || pids[1] != "trigger-1" || pids[2] != "other-2" {
		t.Fatalf("trace processes = %v", pids)
	}
	if b.Trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", b.Trace.DisplayTimeUnit)
	}
}

// TestBundleReplaysAccessLogAggregation is the postmortem contract: the
// spans a bundle carries for a request fold into exactly the per-phase
// aggregation the access log showed for it.
func TestBundleReplaysAccessLogAggregation(t *testing.T) {
	rec := sampleRecord("req-x")
	rec.Phases = obs.AggregatePhases(rec.Spans, 12) // what the access log logs
	b := BuildBundle("qschedd", "slow", "", "", &rec, nil, obs.Snapshot{}, nil)
	replayed := obs.AggregatePhases(b.RequestEvents("req-x"), 12)
	if !reflect.DeepEqual(replayed, rec.Phases) {
		t.Fatalf("replayed phases = %+v, access log had %+v", replayed, rec.Phases)
	}
	if got := b.RequestEvents("absent"); got != nil {
		t.Fatalf("unknown request id returned %+v", got)
	}
}

func TestWriteBundleRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	rec := sampleRecord("req-1")
	b := BuildBundle("qschedd", "manual", "2026-01-01T00:00:00Z", "req-1",
		nil, []RequestRecord{rec}, obs.Snapshot{}, []byte(`{"queued":0}`))
	path, err := WriteBundle(dir, b, time.UnixMilli(1000))
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if got.Trigger != "manual" || got.RequestID != "req-1" || len(got.Recent) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	var state struct {
		Queued *int `json:"queued"`
	}
	if err := json.Unmarshal(got.State, &state); err != nil || state.Queued == nil || *state.Queued != 0 {
		t.Fatalf("state = %s (err %v)", got.State, err)
	}

	// Writing past MaxBundles prunes oldest-first.
	for i := 0; i < MaxBundles+4; i++ {
		if _, err := WriteBundle(dir, b, time.UnixMilli(int64(2000+i))); err != nil {
			t.Fatalf("WriteBundle %d: %v", i, err)
		}
	}
	left, err := filepath.Glob(filepath.Join(dir, "pm-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != MaxBundles {
		t.Fatalf("%d bundles on disk, want %d", len(left), MaxBundles)
	}
	// The very first bundle (oldest name) must be among the pruned.
	for _, p := range left {
		if p == path {
			t.Fatalf("oldest bundle %s survived pruning", path)
		}
	}
}

func TestReadBundleRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pm-test.json")
	if err := os.WriteFile(path, []byte(`{"schema":999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil {
		t.Fatal("ReadBundle accepted schema 999")
	}
}
