package telem

// Crash-safety: the store's on-disk contract mirrors internal/cas —
// every way a segment can be damaged (truncation at any boundary, bad
// magic, unknown version, flipped payload bit, leftover temp file) must
// read back as a quarantined miss, never a wrong answer and never an
// error, and a simulated kill -9 (reopen without Close) must serve the
// sealed history bit-identically.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fillStore seals n samples of series "c" (v = i at t = i*2s) into dir
// and returns the sealed segment paths.
func fillStore(t *testing.T, dir string, n int64) []string {
	t.Helper()
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 4})
	for i := int64(0); i < n; i++ {
		s.Append(ms(i*2000), map[string]float64{"c": float64(i)})
	}
	s.Close()
	return segmentPaths(t, dir)
}

func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "segments", "*.tseg"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func quarantined(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestReopenServesIdenticalResults(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 4})
	for i := int64(0); i < 16; i++ {
		s.Append(ms(i*2000), map[string]float64{"c": float64(i)})
	}
	s.Seal()
	want := s.Query("c", ms(0), ms(32000), 0)
	wantStep := s.Query("c", ms(0), ms(32000), 8*time.Second)
	// Kill -9 simulation: no Close, just open the same dir again.
	s2 := openTest(t, Options{Dir: dir, Retention: -1})
	if got := s2.Query("c", ms(0), ms(32000), 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen raw query = %+v, want %+v", got, want)
	}
	if got := s2.Query("c", ms(0), ms(32000), 8*time.Second); !reflect.DeepEqual(got, wantStep) {
		t.Fatalf("reopen stepped query = %+v, want %+v", got, wantStep)
	}
}

func TestKillBeforeSealLosesOnlyBuffer(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 4})
	for i := int64(0); i < 6; i++ { // 4 sealed + 2 buffered
		s.Append(ms(i*2000), map[string]float64{"c": float64(i)})
	}
	// No Close: the 2 buffered samples die with the process.
	s2 := openTest(t, Options{Dir: dir, Retention: -1})
	pts := s2.Query("c", ms(0), ms(20000), 0)
	if len(pts) != 4 || pts[3].V != 3 {
		t.Fatalf("after kill-9, query = %+v, want the 4 sealed samples", pts)
	}
}

func TestTruncationAtEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	paths := fillStore(t, dir, 4)
	if len(paths) != 1 {
		t.Fatalf("want exactly 1 segment, got %d", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every header boundary plus a mid-payload cut.
	for _, cut := range []int{0, 3, 4, 7, 8, 15, 16, 19, 20, len(data) - 1} {
		if cut >= len(data) {
			continue
		}
		sub := t.TempDir()
		s := openTest(t, Options{Dir: sub, Retention: -1, SealSamples: 4})
		s.Append(ms(0), map[string]float64{"c": 1})
		s.Close()
		segs := segmentPaths(t, sub)
		if err := os.WriteFile(segs[0], data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openTest(t, Options{Dir: sub, Retention: -1})
		if pts := s2.Query("c", ms(0), ms(10000), 0); len(pts) != 0 {
			t.Fatalf("cut=%d: truncated segment served %+v", cut, pts)
		}
		if st := s2.Stats(); st.Corrupt != 1 {
			t.Fatalf("cut=%d: corrupt = %d, want 1", cut, st.Corrupt)
		}
		if q := quarantined(t, sub); len(q) != 1 {
			t.Fatalf("cut=%d: quarantine holds %v, want 1 file", cut, q)
		}
	}
}

func TestCorruptHeaderVariantsQuarantine(t *testing.T) {
	corrupt := func(name string, mut func(data []byte)) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			paths := fillStore(t, dir, 4)
			data, err := os.ReadFile(paths[0])
			if err != nil {
				t.Fatal(err)
			}
			mut(data)
			if err := os.WriteFile(paths[0], data, 0o644); err != nil {
				t.Fatal(err)
			}
			s := openTest(t, Options{Dir: dir, Retention: -1})
			if pts := s.Query("c", ms(0), ms(10000), 0); len(pts) != 0 {
				t.Fatalf("corrupt segment served %+v", pts)
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Segments != 0 {
				t.Fatalf("stats = %+v, want 1 corrupt, 0 segments", st)
			}
			q := quarantined(t, dir)
			if len(q) != 1 || !strings.HasSuffix(q[0], ".bad") {
				t.Fatalf("quarantine holds %v", q)
			}
		})
	}
	corrupt("bad-magic", func(d []byte) { d[0] = 'X' })
	corrupt("future-version", func(d []byte) {
		binary.LittleEndian.PutUint32(d[4:8], segmentVersion+1)
	})
	corrupt("bad-length", func(d []byte) {
		binary.LittleEndian.PutUint64(d[8:16], uint64(len(d))) // claims more than present
	})
	corrupt("bad-checksum", func(d []byte) { d[headerSize] ^= 0x01 })
	corrupt("payload-bit-flip", func(d []byte) { d[len(d)-2] ^= 0x40 })
}

func TestTempFileSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 4)
	tmp := filepath.Join(dir, "segments", "seal-crashed.tmp")
	if err := os.WriteFile(tmp, []byte("half a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, Options{Dir: dir, Retention: -1})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived Open: %v", err)
	}
	if pts := s.Query("c", ms(0), ms(10000), 0); len(pts) != 4 {
		t.Fatalf("query after sweep = %+v", pts)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 4)
	if err := os.WriteFile(filepath.Join(dir, "segments", "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, Options{Dir: dir, Retention: -1})
	st := s.Stats()
	if st.Segments != 1 || st.Corrupt != 0 {
		t.Fatalf("stats with foreign file = %+v", st)
	}
}

func TestSeqResumesPastExistingSegments(t *testing.T) {
	dir := t.TempDir()
	fillStore(t, dir, 8) // two segments, seq 0 and 1
	s := openTest(t, Options{Dir: dir, Retention: -1, SealSamples: 1})
	s.Append(ms(100000), map[string]float64{"c": 99})
	s.Close()
	paths := segmentPaths(t, dir)
	if len(paths) != 3 {
		t.Fatalf("segments = %v, want 3", paths)
	}
	// All three must coexist: the new seal must not have reused seq 0/1.
	s2 := openTest(t, Options{Dir: dir, Retention: -1})
	pts := s2.Query("c", ms(0), ms(200000), 0)
	if len(pts) != 9 || pts[8].V != 99 {
		t.Fatalf("query across generations = %+v", pts)
	}
}
