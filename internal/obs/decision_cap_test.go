package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestDecisionLogCap pins the retention limit: records past the cap are
// counted, not kept, and both renderings note the drop.
func TestDecisionLogCap(t *testing.T) {
	l := NewDecisionLogLimit(LevelStep, 3)
	for i := 0; i < 10; i++ {
		l.Record(LevelStep, Decision{Scheduler: "rcp", Module: "m", Step: i, Op: -1})
	}
	if l.Len() != 3 {
		t.Errorf("kept %d records, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Errorf("dropped %d, want 7", l.Dropped())
	}
	// The head of the run survives.
	for i, d := range l.Entries() {
		if d.Step != i {
			t.Errorf("entry %d has step %d; the cap must keep the head", i, d.Step)
		}
	}

	var text strings.Builder
	if _, err := l.WriteTo(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "# dropped 7 decisions") {
		t.Errorf("text rendering lacks the drop note:\n%s", text.String())
	}
	var jsonl strings.Builder
	if err := l.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), "# dropped 7 decisions") {
		t.Errorf("JSONL rendering lacks the drop note:\n%s", jsonl.String())
	}
}

func TestDecisionLogCapConcurrent(t *testing.T) {
	l := NewDecisionLogLimit(LevelOp, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(LevelOp, Decision{Scheduler: "lpfs", Module: "m", Step: i})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 100 {
		t.Errorf("kept %d, want exactly the 100-record cap", l.Len())
	}
	if l.Dropped() != 700 {
		t.Errorf("dropped %d, want 700", l.Dropped())
	}
}

// TestDecisionLogDefaultsCapped guards against NewDecisionLog quietly
// reverting to unbounded growth — the Shor's-scale OOM this cap exists
// to prevent.
func TestDecisionLogDefaultsCapped(t *testing.T) {
	l := NewDecisionLog(LevelOp)
	if l.limit != DefaultDecisionLimit {
		t.Errorf("default limit %d, want %d", l.limit, DefaultDecisionLimit)
	}
	// Explicit no-limit opt-out stays available.
	u := NewDecisionLogLimit(LevelOp, 0)
	for i := 0; i < 10; i++ {
		u.Record(LevelOp, Decision{})
	}
	if u.Len() != 10 || u.Dropped() != 0 {
		t.Errorf("unlimited log kept %d / dropped %d", u.Len(), u.Dropped())
	}
}

// TestDecisionJSONLRoundTrip writes and re-reads the machine-readable
// form; reasons travel as strings.
func TestDecisionJSONLRoundTrip(t *testing.T) {
	l := NewDecisionLog(LevelOp)
	want := []Decision{
		{Scheduler: "lpfs", Module: "BF.x", Step: 0, Region: 1, Op: 34, Reason: ReasonChosen, Detail: "weight 12"},
		{Scheduler: "lpfs", Module: "BF.x", Step: 1, Region: 0, Op: -1, Reason: ReasonRefill},
		{Scheduler: "rcp", Module: "y", Step: 2, Region: 3, Op: 7, Reason: ReasonDBudget, Detail: "needs 2, 7/8 used"},
	}
	for _, d := range want {
		l.Record(LevelStep, d)
	}
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"reason":"d-budget"`) {
		t.Errorf("reasons must serialize as strings:\n%s", b.String())
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip drift:\n got %+v\nwant %+v", got, want)
	}

	if _, err := ReadJSONL(strings.NewReader(`{"reason":"telepathy"}`)); err == nil {
		t.Error("unknown reason accepted")
	}
	// Comment and blank lines (the drop note) are skipped.
	got, err = ReadJSONL(strings.NewReader("\n# dropped 7 decisions past the 3-record limit\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("comment skip: %v, %d records", err, len(got))
	}
}

func TestReasonParseInvertsString(t *testing.T) {
	for r := ReasonChosen; r <= ReasonRefill; r++ {
		back, err := ParseReason(r.String())
		if err != nil || back != r {
			t.Errorf("reason %d: parse(%q) = %v, %v", r, r.String(), back, err)
		}
	}
	if _, err := ParseReason("unknown"); err == nil {
		t.Error("\"unknown\" parsed as a reason")
	}
}
