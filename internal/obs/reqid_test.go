package obs

import (
	"context"
	"strings"
	"testing"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty ctx id = %q, want \"\"", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("id = %q, want abc123", got)
	}
	// Empty id leaves the context unchanged.
	base := context.Background()
	if WithRequestID(base, "") != base {
		t.Error("WithRequestID(\"\") returned a new context")
	}
	if got := RequestID(nil); got != "" {
		t.Errorf("nil ctx id = %q, want \"\"", got)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("id lengths = %d, %d, want 16", len(a), len(b))
	}
	if a == b {
		t.Errorf("two generated ids collided: %q", a)
	}
	for _, r := range a {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Errorf("id %q contains non-hex rune %q", a, r)
		}
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"demo", "demo"},
		{"", ""},
		{"has space\tand\ncontrol\x7f", "hasspaceandcontrol"},
		{" \n\t", ""},
		{"Ünïcode-ok_123", "Ünïcode-ok_123"},
		{strings.Repeat("x", 300), strings.Repeat("x", 128)},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
