package obs

// Scrape-under-load tests: the HTTP endpoints must serve internally
// consistent snapshots while observations land concurrently. Their full
// value is under -race (CI's instrumented job), but the consistency
// assertions hold on any run: a scraped histogram's cumulative buckets
// must be non-decreasing and its count must equal the last cumulative
// bucket — the invariant Prometheus rejects scrapes without.

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// checkHistConsistency asserts the snapshot invariant on one histogram.
func checkHistConsistency(t *testing.T, name string, hs HistSnapshot) {
	t.Helper()
	var prev int64
	for i, b := range hs.Buckets {
		if b.Count < prev {
			t.Errorf("%s: bucket %d cumulative count decreases: %d after %d", name, i, b.Count, prev)
		}
		prev = b.Count
	}
	if n := len(hs.Buckets); n > 0 && hs.Count != hs.Buckets[n-1].Count {
		t.Errorf("%s: count %d != last cumulative bucket %d", name, hs.Count, hs.Buckets[n-1].Count)
	}
}

// TestScrapeDuringObserve hammers one histogram and both HTTP endpoints
// concurrently and checks every scraped payload for the cumulative
// invariant — the exact tear the pre-fix Snapshot could produce (count
// read before buckets).
func TestScrapeDuringObserve(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := r.Histogram("sched.ops_per_step")
			c := r.Counter("engine.tasks")
			v := seed
			for !stop.Load() {
				v = v*1664525 + 1013904223
				h.Observe(v % 4096)
				c.Inc()
				if v%512 == 0 {
					runtime.Gosched() // let the scraper through
				}
			}
		}(int64(w + 1))
	}

	client := srv.Client()
	for i := 0; i < 25; i++ {
		resp, err := client.Get(srv.URL + "/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		for name, hs := range snap.Histograms {
			checkHistConsistency(t, name, hs)
		}

		resp, err = client.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		checkPromPayload(t, resp.Body, &promState{})
		resp.Body.Close()
	}
	stop.Store(true)
	wg.Wait()
}

type promState struct {
	buckets map[string]int64 // histogram -> last cumulative bucket seen
	counts  map[string]int64 // histogram -> _count value
}

// checkPromPayload parses a Prometheus text payload and asserts every
// histogram's buckets are non-decreasing and agree with _count.
func checkPromPayload(t *testing.T, body interface{ Read([]byte) (int, error) }, st *promState) {
	t.Helper()
	st.buckets = map[string]int64{}
	st.counts = map[string]int64{}
	lastSeen := map[string]int64{}
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		val, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		name := fields[0]
		switch {
		case strings.Contains(name, "_bucket{"):
			base := name[:strings.Index(name, "_bucket{")]
			if val < lastSeen[base] {
				t.Errorf("%s: cumulative bucket decreases: %q yields %d after %d", base, line, val, lastSeen[base])
			}
			lastSeen[base] = val
			st.buckets[base] = val
		case strings.HasSuffix(name, "_count"):
			st.counts[strings.TrimSuffix(name, "_count")] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for base, cum := range st.buckets {
		if c, ok := st.counts[base]; ok && c != cum {
			t.Errorf("%s: _count %d != +Inf bucket %d", base, c, cum)
		}
	}
}

// TestSnapshotTornHistogram reconstructs the pre-fix tear directly: a
// histogram whose bucket cell is ahead of its count cell (exactly what a
// concurrent scrape can see between Observe's two Adds) must still
// snapshot consistently.
func TestSnapshotTornHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("torn")
	h.Observe(3)
	h.Observe(300)
	// Simulate an in-flight Observe caught between count.Add and
	// bucket.Add... by the opposite skew: bucket landed, count not yet.
	h.buckets[2].Add(1)
	snap := r.Snapshot().Histograms["torn"]
	checkHistConsistency(t, "torn", snap)
	if snap.Count != 3 {
		t.Errorf("count %d, want 3 (derived from buckets)", snap.Count)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkPromPayload(t, strings.NewReader(b.String()), &promState{})
}
