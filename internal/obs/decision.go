package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Level grades decision-log verbosity. The zero value is off; schedulers
// check Enabled(level) before building a record, so a disabled log costs
// one nil check on the hot path.
type Level int32

const (
	// LevelOff records nothing (the nil log's level).
	LevelOff Level = iota
	// LevelStep records one entry per placement decision: which group
	// won a region and why (plus structural events: refills, forced
	// placements).
	LevelStep
	// LevelOp additionally records per-op deferrals: d-budget
	// exhaustion, pinned-path claims, slack-priority losses, stalled
	// path heads.
	LevelOp
)

// ParseLevel maps a flag string onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return LevelOff, nil
	case "step":
		return LevelStep, nil
	case "op":
		return LevelOp, nil
	}
	return LevelOff, fmt.Errorf("obs: unknown decision level %q (off, step, op)", s)
}

// Reason classifies why a scheduler acted on (or declined to act on) an
// op.
type Reason uint8

const (
	// ReasonChosen marks a winning (group, region) placement.
	ReasonChosen Reason = iota
	// ReasonDBudget marks an op deferred because the region's data
	// parallelism budget d was exhausted.
	ReasonDBudget
	// ReasonRegionPinned marks a ready op that could not run because a
	// pinned longest-path claims it for a dedicated region (LPFS).
	ReasonRegionPinned
	// ReasonSlackLost marks an op that outweighed the winner before the
	// slack penalty and lost to it after (RCP).
	ReasonSlackLost
	// ReasonHeadStalled marks a pinned path whose head op is not ready,
	// idling its dedicated region (LPFS).
	ReasonHeadStalled
	// ReasonForced marks deadlock avoidance: an op ripped out of a
	// pinned path and executed to guarantee progress (LPFS).
	ReasonForced
	// ReasonRefill marks a dedicated region extracting a fresh longest
	// path after finishing its previous one (LPFS).
	ReasonRefill
)

// String names the reason for log rendering.
func (r Reason) String() string {
	switch r {
	case ReasonChosen:
		return "chosen"
	case ReasonDBudget:
		return "d-budget"
	case ReasonRegionPinned:
		return "region-pinned"
	case ReasonSlackLost:
		return "slack-lost"
	case ReasonHeadStalled:
		return "head-stalled"
	case ReasonForced:
		return "forced"
	case ReasonRefill:
		return "refill"
	}
	return "unknown"
}

// ParseReason inverts String; JSONL round trips through it.
func ParseReason(s string) (Reason, error) {
	for r := ReasonChosen; r <= ReasonRefill; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown decision reason %q", s)
}

// MarshalJSON renders the reason as its string name, keeping the JSONL
// stream readable and stable if the enum ever reorders.
func (r Reason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON parses the string form.
func (r *Reason) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseReason(s)
	if err != nil {
		return err
	}
	*r = parsed
	return nil
}

// Decision is one scheduler introspection record.
type Decision struct {
	Scheduler string `json:"scheduler"`
	Module    string `json:"module"`
	Step      int    `json:"step"`
	Region    int    `json:"region"`
	Op        int32  `json:"op"` // op index within the module; -1 when not op-specific
	Reason    Reason `json:"reason"`
	Detail    string `json:"detail,omitempty"`
	// Request is the request id of the service request whose evaluation
	// produced this decision (empty outside the service).
	Request string `json:"request_id,omitempty"`
}

// DefaultDecisionLimit caps NewDecisionLog's retention. Shor's-scale
// benchmarks at LevelOp emit a decision per deferred op per step —
// unbounded retention would eat the heap long before the run finishes;
// a million records (~80MB worst case) keeps every realistic debugging
// session intact while bounding the pathological ones.
const DefaultDecisionLimit = 1 << 20

// DecisionLog accumulates scheduler decisions at or below its level,
// keeping at most its limit and counting the overflow (Dropped). A nil
// *DecisionLog is the disabled log: Enabled is false and Record no-ops.
// Safe for concurrent use (the engine schedules leaves from a worker
// pool).
type DecisionLog struct {
	level   Level
	limit   int
	mu      sync.Mutex
	entries []Decision
	dropped int64
	request string
}

// NewDecisionLog returns a log recording entries at or below level,
// retaining at most DefaultDecisionLimit records.
func NewDecisionLog(level Level) *DecisionLog {
	return NewDecisionLogLimit(level, DefaultDecisionLimit)
}

// NewDecisionLogLimit returns a log retaining at most limit records
// (<= 0: unlimited). Records past the limit are counted, not kept.
func NewDecisionLogLimit(level Level, limit int) *DecisionLog {
	return &DecisionLog{level: level, limit: limit}
}

// Enabled reports whether records at lv are kept. Schedulers gate
// record construction behind this so the disabled path does no work.
func (l *DecisionLog) Enabled(lv Level) bool {
	return l != nil && lv != LevelOff && l.level >= lv
}

// Record appends d when the log accepts records at lv. Past the
// retention limit it only counts: the head of a run is the part that
// explains a schedule, and a bounded log can't keep both ends.
func (l *DecisionLog) Record(lv Level, d Decision) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	if l.limit > 0 && len(l.entries) >= l.limit {
		l.dropped++
	} else {
		if d.Request == "" {
			d.Request = l.request
		}
		l.entries = append(l.entries, d)
	}
	l.mu.Unlock()
}

// SetRequest stamps every subsequently recorded decision with the
// request id (the service sets it before handing the log to the
// engine), so decision streams from concurrent requests stay
// attributable after they are merged or archived.
func (l *DecisionLog) SetRequest(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.request = id
	l.mu.Unlock()
}

// Request returns the id set by SetRequest ("" when unset).
func (l *DecisionLog) Request() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.request
}

// Dropped reports how many records the retention limit discarded.
func (l *DecisionLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Len reports the number of records kept.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries copies the recorded decisions in record order.
func (l *DecisionLog) Entries() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.entries))
	copy(out, l.entries)
	return out
}

// CountReason tallies records with the given reason.
func (l *DecisionLog) CountReason(r Reason) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.entries {
		if d.Reason == r {
			n++
		}
	}
	return n
}

// WriteTo renders the log as one text line per decision:
//
//	lpfs BF.leaf0 step 12 region 0 op 34 d-budget: needs 2, 7/8 used
func (l *DecisionLog) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, d := range l.entries {
		op := fmt.Sprint(d.Op)
		if d.Op < 0 {
			op = "-"
		}
		line := fmt.Sprintf("%s %s step %d region %d op %s %s",
			d.Scheduler, d.Module, d.Step, d.Region, op, d.Reason)
		if d.Detail != "" {
			line += ": " + d.Detail
		}
		n, err := fmt.Fprintln(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	if l.dropped > 0 {
		n, err := fmt.Fprintf(w, "# dropped %d decisions past the %d-record limit\n", l.dropped, l.limit)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteJSONL renders the log as one JSON object per line — the
// machine-readable sibling of WriteTo, loadable line-by-line without
// holding the whole log in memory. A trailing comment line reports any
// retention-limit drops (ReadJSONL skips it).
func (l *DecisionLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	enc := json.NewEncoder(w)
	for i := range l.entries {
		if err := enc.Encode(&l.entries[i]); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		if _, err := fmt.Fprintf(w, "# dropped %d decisions past the %d-record limit\n", l.dropped, l.limit); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a WriteJSONL stream back into decisions, skipping
// blank and comment lines.
func ReadJSONL(r io.Reader) ([]Decision, error) {
	var out []Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var d Decision
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			return nil, fmt.Errorf("obs: decision JSONL: %w", err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// WriteFile renders the log to path.
func (l *DecisionLog) WriteFile(path string) error {
	if l == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := l.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
