package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Level grades decision-log verbosity. The zero value is off; schedulers
// check Enabled(level) before building a record, so a disabled log costs
// one nil check on the hot path.
type Level int32

const (
	// LevelOff records nothing (the nil log's level).
	LevelOff Level = iota
	// LevelStep records one entry per placement decision: which group
	// won a region and why (plus structural events: refills, forced
	// placements).
	LevelStep
	// LevelOp additionally records per-op deferrals: d-budget
	// exhaustion, pinned-path claims, slack-priority losses, stalled
	// path heads.
	LevelOp
)

// ParseLevel maps a flag string onto a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "", "off":
		return LevelOff, nil
	case "step":
		return LevelStep, nil
	case "op":
		return LevelOp, nil
	}
	return LevelOff, fmt.Errorf("obs: unknown decision level %q (off, step, op)", s)
}

// Reason classifies why a scheduler acted on (or declined to act on) an
// op.
type Reason uint8

const (
	// ReasonChosen marks a winning (group, region) placement.
	ReasonChosen Reason = iota
	// ReasonDBudget marks an op deferred because the region's data
	// parallelism budget d was exhausted.
	ReasonDBudget
	// ReasonRegionPinned marks a ready op that could not run because a
	// pinned longest-path claims it for a dedicated region (LPFS).
	ReasonRegionPinned
	// ReasonSlackLost marks an op that outweighed the winner before the
	// slack penalty and lost to it after (RCP).
	ReasonSlackLost
	// ReasonHeadStalled marks a pinned path whose head op is not ready,
	// idling its dedicated region (LPFS).
	ReasonHeadStalled
	// ReasonForced marks deadlock avoidance: an op ripped out of a
	// pinned path and executed to guarantee progress (LPFS).
	ReasonForced
	// ReasonRefill marks a dedicated region extracting a fresh longest
	// path after finishing its previous one (LPFS).
	ReasonRefill
)

// String names the reason for log rendering.
func (r Reason) String() string {
	switch r {
	case ReasonChosen:
		return "chosen"
	case ReasonDBudget:
		return "d-budget"
	case ReasonRegionPinned:
		return "region-pinned"
	case ReasonSlackLost:
		return "slack-lost"
	case ReasonHeadStalled:
		return "head-stalled"
	case ReasonForced:
		return "forced"
	case ReasonRefill:
		return "refill"
	}
	return "unknown"
}

// Decision is one scheduler introspection record.
type Decision struct {
	Scheduler string
	Module    string
	Step      int
	Region    int
	Op        int32 // op index within the module; -1 when not op-specific
	Reason    Reason
	Detail    string
}

// DecisionLog accumulates scheduler decisions at or below its level. A
// nil *DecisionLog is the disabled log: Enabled is false and Record
// no-ops. Safe for concurrent use (the engine schedules leaves from a
// worker pool).
type DecisionLog struct {
	level   Level
	mu      sync.Mutex
	entries []Decision
}

// NewDecisionLog returns a log recording entries at or below level.
func NewDecisionLog(level Level) *DecisionLog {
	return &DecisionLog{level: level}
}

// Enabled reports whether records at lv are kept. Schedulers gate
// record construction behind this so the disabled path does no work.
func (l *DecisionLog) Enabled(lv Level) bool {
	return l != nil && lv != LevelOff && l.level >= lv
}

// Record appends d when the log accepts records at lv.
func (l *DecisionLog) Record(lv Level, d Decision) {
	if !l.Enabled(lv) {
		return
	}
	l.mu.Lock()
	l.entries = append(l.entries, d)
	l.mu.Unlock()
}

// Len reports the number of records kept.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Entries copies the recorded decisions in record order.
func (l *DecisionLog) Entries() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.entries))
	copy(out, l.entries)
	return out
}

// CountReason tallies records with the given reason.
func (l *DecisionLog) CountReason(r Reason) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.entries {
		if d.Reason == r {
			n++
		}
	}
	return n
}

// WriteTo renders the log as one text line per decision:
//
//	lpfs BF.leaf0 step 12 region 0 op 34 d-budget: needs 2, 7/8 used
func (l *DecisionLog) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, d := range l.entries {
		op := fmt.Sprint(d.Op)
		if d.Op < 0 {
			op = "-"
		}
		line := fmt.Sprintf("%s %s step %d region %d op %s %s",
			d.Scheduler, d.Module, d.Step, d.Region, op, d.Reason)
		if d.Detail != "" {
			line += ": " + d.Detail
		}
		n, err := fmt.Fprintln(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WriteFile renders the log to path.
func (l *DecisionLog) WriteFile(path string) error {
	if l == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := l.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
