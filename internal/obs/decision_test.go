package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestDecisionLogLevels(t *testing.T) {
	l := NewDecisionLog(LevelStep)
	if !l.Enabled(LevelStep) {
		t.Error("step log rejects step records")
	}
	if l.Enabled(LevelOp) {
		t.Error("step log accepts op records")
	}
	if l.Enabled(LevelOff) {
		t.Error("Enabled(LevelOff) must be false")
	}
	l.Record(LevelStep, Decision{Scheduler: "rcp", Module: "m", Reason: ReasonChosen})
	l.Record(LevelOp, Decision{Scheduler: "rcp", Module: "m", Reason: ReasonDBudget})
	if got := l.Len(); got != 1 {
		t.Errorf("len = %d, want 1 (op record must be dropped)", got)
	}
	if got := l.CountReason(ReasonChosen); got != 1 {
		t.Errorf("CountReason(chosen) = %d, want 1", got)
	}
}

func TestDecisionLogRender(t *testing.T) {
	l := NewDecisionLog(LevelOp)
	l.Record(LevelOp, Decision{
		Scheduler: "lpfs", Module: "leaf0", Step: 12, Region: 0, Op: 34,
		Reason: ReasonDBudget, Detail: "needs 2, 7/8 used",
	})
	l.Record(LevelStep, Decision{
		Scheduler: "lpfs", Module: "leaf0", Step: 13, Region: 1, Op: -1,
		Reason: ReasonRefill,
	})
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lpfs leaf0 step 12 region 0 op 34 d-budget: needs 2, 7/8 used") {
		t.Errorf("missing op line:\n%s", out)
	}
	if !strings.Contains(out, "lpfs leaf0 step 13 region 1 op - refill") {
		t.Errorf("missing step line (op -1 renders as -):\n%s", out)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"": LevelOff, "off": LevelOff, "step": LevelStep, "op": LevelOp, "OP": LevelOp,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted unknown level")
	}
}

func TestReasonStrings(t *testing.T) {
	for _, r := range []Reason{ReasonChosen, ReasonDBudget, ReasonRegionPinned,
		ReasonSlackLost, ReasonHeadStalled, ReasonForced, ReasonRefill} {
		if r.String() == "unknown" {
			t.Errorf("reason %d has no name", r)
		}
	}
}

func TestDecisionLogConcurrent(t *testing.T) {
	l := NewDecisionLog(LevelOp)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Record(LevelOp, Decision{Scheduler: "rcp", Op: int32(i)})
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != 800 {
		t.Errorf("len = %d, want 800", got)
	}
}

// TestDisabledDecisionLogAllocatesNothing guards the nil-log fast path
// every production schedule run takes.
func TestDisabledDecisionLogAllocatesNothing(t *testing.T) {
	var l *DecisionLog
	allocs := testing.AllocsPerRun(1000, func() {
		if l.Enabled(LevelOp) {
			t.Fatal("nil log enabled")
		}
		l.Record(LevelStep, Decision{})
		if l.Len() != 0 {
			t.Fatal("nil log non-empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled decision log allocates %v times per op, want 0", allocs)
	}
}

func TestNilObserverAccessors(t *testing.T) {
	var o *Observer
	if o.T() != nil || o.M() != nil || o.D() != nil {
		t.Error("nil observer returned non-nil components")
	}
}
