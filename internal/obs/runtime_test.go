package obs

import (
	"testing"
	"time"
)

func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	if got := r.Gauge(GaugeGoroutines).Value(); got < 1 {
		t.Errorf("goroutines = %d, want >= 1", got)
	}
	if got := r.Gauge(GaugeHeapAlloc).Value(); got <= 0 {
		t.Errorf("heap_alloc = %d, want > 0", got)
	}
	if got := r.Gauge(GaugeHeapSys).Value(); got <= 0 {
		t.Errorf("heap_sys = %d, want > 0", got)
	}
	SampleRuntime(nil) // must not panic
}

func TestStartRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Hour)
	// The sampler samples once synchronously before its first tick.
	if got := r.Gauge(GaugeGoroutines).Value(); got < 1 {
		t.Errorf("goroutines after start = %d, want >= 1", got)
	}
	stop()
	stop() // idempotent
}
