package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAccessLogWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	if !l.Enabled() {
		t.Fatal("logger with writer reports disabled")
	}
	l.Log(&AccessEntry{
		Time: "2026-01-02T03:04:05.678Z", ID: "demo", Endpoint: "compile",
		Method: "POST", Path: "/v1/compile", Status: 200, Bytes: 42, DurMS: 1.5,
		Role: "solo", Fingerprint: "deadbeef",
		Cache: &AccessCache{CommHits: 1, SchedMisses: 2},
	})
	l.Log(&AccessEntry{ID: "second", Endpoint: "healthz", Status: 200})

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var e map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if e["id"] != "demo" || e["endpoint"] != "compile" || e["status"] != float64(200) {
		t.Errorf("unexpected first record: %v", e)
	}
	cache, ok := e["cache"].(map[string]any)
	if !ok || cache["comm_hits"] != float64(1) || cache["sched_misses"] != float64(2) {
		t.Errorf("cache block = %v", e["cache"])
	}
	// Omitempty: the second record has no evaluation fields.
	if strings.Contains(lines[1], "role") || strings.Contains(lines[1], "cache") {
		t.Errorf("empty fields not omitted: %s", lines[1])
	}
}

func TestAccessLogNilDisabled(t *testing.T) {
	var l *AccessLog
	if l.Enabled() {
		t.Error("nil logger reports enabled")
	}
	l.Log(&AccessEntry{ID: "x"}) // must not panic
	if NewAccessLog(nil) != nil {
		t.Error("NewAccessLog(nil) returned a live logger")
	}
}

func TestAccessLogConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Log(&AccessEntry{ID: "concurrent", Endpoint: "compile", Status: 200})
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for i, line := range lines {
		var e AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d torn: %v: %s", i, err, line)
		}
	}
}
