package obs

// Request identity: every request entering the service carries an id —
// accepted from the caller's X-Request-ID header or generated — that is
// threaded through context.Context into the engine, the singleflight
// attribution, the access log and the response envelopes, so one id
// correlates a client's view of a request with everything the server
// did on its behalf.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// reqIDKey is the context key for the request id. An unexported struct
// type cannot collide with keys from other packages.
type reqIDKey struct{}

// WithRequestID returns ctx carrying the request id. An empty id
// returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID extracts the request id from ctx ("" when none was set).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// NewRequestID generates a fresh 16-hex-character request id from
// crypto/rand. Ids only need to be unique enough to correlate log lines
// within a server's lifetime; 64 random bits are plenty.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a constant
		// id keeps the server serving (correlation degrades, nothing
		// else does).
		return "00000000resigned"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds accepted client-supplied ids so a hostile
// header cannot bloat every log line and envelope it is echoed into.
const maxRequestIDLen = 128

// SanitizeRequestID normalizes a client-supplied id for logging and
// echoing: control characters and spaces are dropped (they would break
// the one-line-per-record log framing), and the result is truncated to
// 128 characters. An id that sanitizes to "" is treated as absent.
func SanitizeRequestID(id string) string {
	id = strings.Map(func(r rune) rune {
		if r <= ' ' || r == 0x7f {
			return -1
		}
		return r
	}, id)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return id
}
