package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock ticks a fixed amount per reading, making traces
// deterministic for the golden test.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// TestTraceGolden pins the Chrome trace-event output shape: the
// traceEvents wrapper, metadata-first ordering, complete ("X") and
// instant ("i") phases, microsecond timestamps, and args rendering.
func TestTraceGolden(t *testing.T) {
	tr := newTracerClock(fakeClock(100 * time.Microsecond))
	tr.SetThreadName(0, "main")
	tr.SetThreadName(1, "worker-00")

	outer := tr.Span("engine", "evaluate")
	outer.SetInt("k", 4)
	outer.SetStr("scheduler", "lpfs")
	leaf := tr.SpanTID("leaf", "main w=4", 1)
	leaf.SetInt("steps", 17)
	leaf.End()
	tr.Instant("verify", "rejection", 1)
	outer.End()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceShape checks the loadability invariants Perfetto relies on
// without pinning bytes: valid JSON, a traceEvents array, and complete
// events carrying name/ph/ts/dur/pid/tid.
func TestTraceShape(t *testing.T) {
	tr := NewTracer()
	sp := tr.Span("pipeline", "parse")
	sp.End()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev["name"] != "parse" || ev["ph"] != "X" || ev["cat"] != "pipeline" {
		t.Errorf("unexpected event fields: %v", ev)
	}
	for _, key := range []string{"ts", "dur", "pid", "tid"} {
		if _, ok := ev[key]; !ok && key != "tid" { // tid 0 still serializes
			t.Errorf("event missing %q: %v", key, ev)
		}
	}
	if dur, ok := ev["dur"].(float64); !ok || dur < 1 {
		t.Errorf("dur = %v, want >= 1", ev["dur"])
	}
}

// TestTracerConcurrent exercises concurrent span recording (run under
// -race in CI).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr.SetThreadName(int64(w), "t")
			for i := 0; i < 100; i++ {
				sp := tr.SpanTID("x", "s", int64(w))
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 800 {
		t.Fatalf("recorded %d events, want 800", got)
	}
}

// TestDisabledTracerAllocatesNothing is the overhead guard: the nil
// tracer's span path — the one every uninstrumented run takes — must
// not allocate.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.SpanTID("cat", "name", 3)
		sp.SetInt("k", 42)
		sp.SetStr("s", "v")
		sp.End()
		tr.Instant("cat", "name", 0)
		tr.SetThreadName(1, "w")
		if tr.Enabled() {
			t.Fatal("nil tracer reported enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v times per op, want 0", allocs)
	}
}

func TestNilTracerWriters(t *testing.T) {
	var tr *Tracer
	if n, err := tr.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
	if err := tr.WriteFile(filepath.Join(t.TempDir(), "x.json")); err != nil {
		t.Fatalf("nil WriteFile: %v", err)
	}
}
