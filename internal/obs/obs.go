// Package obs is the toolflow's zero-dependency observability layer:
// span tracing, a metrics registry, and leveled scheduler decision logs.
//
// Everything in the package follows one discipline: the disabled path is
// a nil pointer and every method is nil-safe, so instrumented code calls
// straight through — `tracer.Span(...)`, `counter.Add(1)`,
// `log.Enabled(lvl)` — without guarding, and a disabled run pays only a
// nil check and allocates nothing (see the AllocsPerRun guards in the
// tests). Instrumentation that must format strings or walk data to
// build a record gates itself behind Tracer.Enabled / DecisionLog.Enabled.
//
// The three pillars:
//
//   - Tracer emits hierarchical wall-clock spans serialized as Chrome
//     trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
//     chrome://tracing. Worker-pool spans carry the goroutine slot as
//     their tid, so fan-out utilization reads as a timeline.
//   - Registry holds named counters, gauges and power-of-two-bucket
//     histograms, snapshot as expvar-style JSON or served in Prometheus
//     text format over HTTP.
//   - DecisionLog records why a scheduler deferred or placed an op, at
//     step or op granularity, so schedule regressions are diagnosable.
//
// Observer bundles the three so pipeline options carry one pointer.
package obs

// Observer bundles the observability sinks threaded through the
// toolflow. A nil *Observer (the default) disables everything; any
// subset of fields may be set.
type Observer struct {
	// Trace receives hierarchical spans (nil = tracing off).
	Trace *Tracer
	// Metrics receives counters, gauges and histograms (nil = off).
	Metrics *Registry
	// Decisions receives scheduler introspection records (nil = off).
	Decisions *DecisionLog
}

// T returns the tracer, nil-safe on a nil Observer.
func (o *Observer) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// M returns the metrics registry, nil-safe on a nil Observer.
func (o *Observer) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// D returns the decision log, nil-safe on a nil Observer.
func (o *Observer) D() *DecisionLog {
	if o == nil {
		return nil
	}
	return o.Decisions
}
