package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// TestTracerCap pins the retention contract: past the limit, events are
// counted instead of kept, WriteTo appends a "# dropped" trailer (as a
// metadata event, keeping the file Perfetto-loadable), and the head of
// the trace survives intact — mirroring DecisionLog.
func TestTracerCap(t *testing.T) {
	tr := NewTracerLimit(3)
	for i := 0; i < 7; i++ {
		sp := tr.Span("phase", fmt.Sprintf("step-%d", i))
		sp.End()
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	// The head is kept, the tail counted.
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Name != "step-0" || evs[2].Name != "step-2" {
		t.Fatalf("kept events = %+v", evs)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	// The trailer must ride inside valid trace JSON.
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace with trailer is not valid JSON: %v", err)
	}
	last := f.TraceEvents[len(f.TraceEvents)-1]
	if last.Ph != "M" || last.Name != "# dropped 4 events past the 3-event limit" {
		t.Fatalf("trailer event = %+v", last)
	}
}

func TestTracerNoTrailerUnderCap(t *testing.T) {
	tr := NewTracerLimit(10)
	sp := tr.Span("phase", "only")
	sp.End()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("# dropped")) {
		t.Fatalf("trailer present without drops:\n%s", buf.String())
	}
}

func TestTracerDefaultLimit(t *testing.T) {
	tr := NewTracer()
	if tr.limit != DefaultTraceLimit {
		t.Fatalf("NewTracer limit = %d, want %d", tr.limit, DefaultTraceLimit)
	}
	if tr := NewTracerLimit(0); tr.limit != 0 {
		t.Fatalf("NewTracerLimit(0) limit = %d, want 0 (unbounded)", tr.limit)
	}
}

// TestPhasesMatchAggregateEvents pins that the log-line aggregation and
// the replay path (AggregatePhases over Events) are the same fold.
func TestPhasesMatchAggregateEvents(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 5; i++ {
		sp := tr.SpanTID("phase", "schedule", int64(i%2))
		sp.End()
	}
	sp := tr.Span("engine", "comm")
	sp.End()
	direct := tr.Phases(12)
	replayed := AggregatePhases(tr.Events(), 12)
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("Phases = %+v, AggregatePhases(Events) = %+v", direct, replayed)
	}
	if len(direct) != 2 {
		t.Fatalf("phases = %+v, want 2 rows", direct)
	}
}
