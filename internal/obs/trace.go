package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer collects wall-clock spans and serializes them in the Chrome
// trace-event format (the "JSON Array Format" with a traceEvents
// wrapper), which Perfetto and chrome://tracing load directly.
//
// A nil *Tracer is the disabled tracer: Span returns the zero Span,
// whose methods all no-op, and nothing allocates. Span creation and End
// are safe for concurrent use; the engine's worker pool traces each
// task under the worker's slot id (tid), so the trace viewer renders
// pool utilization as parallel tracks.
//
// Retention is bounded: past the limit, events are counted (Dropped)
// instead of kept, mirroring DecisionLog — a long-lived service request
// that spins must not grow the heap without bound.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	now     func() time.Time
	limit   int
	events  []traceEvent
	dropped int64
	names   map[int64]string
}

// DefaultTraceLimit caps NewTracer's event retention. One event is
// ~100 bytes; a million keeps any realistic request trace whole while
// bounding the pathological ones (the same sizing argument as
// DefaultDecisionLimit).
const DefaultTraceLimit = 1 << 20

// traceEvent is one Chrome trace-event record. Complete spans use
// ph "X" with ts/dur in microseconds; instants use ph "i".
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an enabled tracer whose timestamps are relative to
// now, retaining at most DefaultTraceLimit events.
func NewTracer() *Tracer { return newTracerClock(time.Now) }

// NewTracerLimit returns a tracer retaining at most limit events
// (<= 0: unbounded). Events past the limit are counted, not kept.
func NewTracerLimit(limit int) *Tracer {
	t := newTracerClock(time.Now)
	t.limit = limit
	return t
}

// newTracerClock injects the clock, for deterministic golden tests.
func newTracerClock(now func() time.Time) *Tracer {
	return &Tracer{start: now(), now: now, limit: DefaultTraceLimit, names: map[int64]string{}}
}

// Enabled reports whether spans are being collected. Call sites that
// must format a span name or gather args check this first so the
// disabled path does no work.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) since() int64 {
	return t.now().Sub(t.start).Microseconds()
}

// Span opens a span on the main track (tid 0). cat groups spans for the
// viewer's filtering ("pipeline", "engine", "leaf", ...).
func (t *Tracer) Span(cat, name string) Span { return t.SpanTID(cat, name, 0) }

// SpanTID opens a span on an explicit track. The engine uses
// tid = worker slot + 1, keeping tid 0 for the coordinating goroutine.
func (t *Tracer) SpanTID(cat, name string, tid int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, tid: tid, start: t.since()}
}

// Instant records a zero-duration marker (rendered as an arrow/flag).
func (t *Tracer) Instant(cat, name string, tid int64) {
	if t == nil {
		return
	}
	ev := traceEvent{Name: name, Cat: cat, Ph: "i", TS: t.since(), PID: tracePID, TID: tid, S: "t"}
	t.mu.Lock()
	t.appendLocked(ev)
	t.mu.Unlock()
}

// appendLocked records ev, or only counts it past the retention limit:
// the head of a trace is the part that explains a run, and a bounded
// buffer cannot keep both ends. Caller holds t.mu.
func (t *Tracer) appendLocked(ev traceEvent) {
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Dropped reports how many events the retention limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetThreadName labels a track in the viewer ("main", "worker-03", ...).
func (t *Tracer) SetThreadName(tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[tid] = name
	t.mu.Unlock()
}

// tracePID is the constant pid stamped on every event: the toolflow is
// one process, so one trace-viewer process group.
const tracePID = 1

// Span is one open trace span. The zero Span (from a nil Tracer) is
// inert: SetInt, SetStr and End are no-ops and allocate nothing.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	tid   int64
	start int64
	args  map[string]any
}

// SetInt attaches an integer arg, shown in the viewer's detail pane.
func (s *Span) SetInt(key string, v int64) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// SetStr attaches a string arg.
func (s *Span) SetStr(key, v string) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
}

// End closes the span and records it.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.since()
	dur := end - s.start
	if dur < 1 {
		dur = 1 // Perfetto drops zero-length complete events
	}
	ev := traceEvent{
		Name: s.name, Cat: s.cat, Ph: "X",
		TS: s.start, Dur: dur, PID: tracePID, TID: s.tid, Args: s.args,
	}
	s.t.mu.Lock()
	s.t.appendLocked(ev)
	s.t.mu.Unlock()
	s.t = nil
}

// traceFile is the serialized wrapper object.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteTo serializes the collected events as Chrome trace-event JSON.
// Thread-name metadata events come first (sorted by tid), then spans in
// completion order; viewers sort by timestamp themselves.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	if t == nil {
		return 0, nil
	}
	t.mu.Lock()
	tids := make([]int64, 0, len(t.names))
	for tid := range t.names {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	events := make([]traceEvent, 0, len(t.names)+len(t.events))
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": t.names[tid]},
		})
	}
	events = append(events, t.events...)
	if t.dropped > 0 {
		// The "# dropped" trailer, as a metadata event so the file stays
		// valid Perfetto-loadable JSON (DecisionLog's text trailer has no
		// legal place inside a JSON array).
		events = append(events, traceEvent{
			Name: fmt.Sprintf("# dropped %d events past the %d-event limit", t.dropped, t.limit),
			Ph:   "M", PID: tracePID,
		})
	}
	t.mu.Unlock()

	buf, err := json.MarshalIndent(traceFile{DisplayTimeUnit: "ms", TraceEvents: events}, "", " ")
	if err != nil {
		return 0, err
	}
	buf = append(buf, '\n')
	n, err := w.Write(buf)
	return int64(n), err
}

// WriteFile serializes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PhaseSummary aggregates the completed spans sharing one
// (category, name) pair: how many ran and their total wall-clock. It is
// the compact per-phase breakdown a slow-request log line carries —
// small enough to inline in a log record, detailed enough to say where
// the time went (parse vs schedule vs comm).
type PhaseSummary struct {
	Cat   string  `json:"cat"`
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	MS    float64 `json:"ms"`
}

// SpanEvent is one completed span, the exported shape handed to the
// flight recorder and rebuilt into Perfetto trace fragments by
// postmortem bundles.
type SpanEvent struct {
	Cat  string `json:"cat,omitempty"`
	Name string `json:"name"`
	// TSUS/DurUS are start offset and duration in microseconds.
	TSUS  int64 `json:"ts_us"`
	DurUS int64 `json:"dur_us"`
	TID   int64 `json:"tid,omitempty"`
}

// Events copies the completed spans (instants and metadata excluded) in
// completion order. Nil tracer returns nil.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.events))
	for i := range t.events {
		ev := &t.events[i]
		if ev.Ph != "X" {
			continue
		}
		out = append(out, SpanEvent{Cat: ev.Cat, Name: ev.Name, TSUS: ev.TS, DurUS: ev.Dur, TID: ev.TID})
	}
	return out
}

// Phases folds the recorded spans into per-(cat, name) totals, ordered
// by total duration descending. max bounds the rows (0 = unbounded);
// the overflow is folded into a final "(other)" row per category so the
// summary always accounts for all recorded time. Instants (zero-length
// markers) are excluded. Nil tracer returns nil.
func (t *Tracer) Phases(max int) []PhaseSummary {
	if t == nil {
		return nil
	}
	return AggregatePhases(t.Events(), max)
}

// AggregatePhases is Phases over an explicit span list: the same
// fold, exposed so a postmortem bundle's trace fragment can be replayed
// into exactly the aggregation the access log carried.
func AggregatePhases(events []SpanEvent, max int) []PhaseSummary {
	type key struct{ cat, name string }
	agg := make(map[key]*PhaseSummary)
	var order []key
	for i := range events {
		ev := &events[i]
		k := key{ev.Cat, ev.Name}
		p := agg[k]
		if p == nil {
			p = &PhaseSummary{Cat: ev.Cat, Name: ev.Name}
			agg[k] = p
			order = append(order, k)
		}
		p.Count++
		p.MS += float64(ev.DurUS) / 1000
	}

	out := make([]PhaseSummary, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MS != out[j].MS {
			return out[i].MS > out[j].MS
		}
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	if max > 0 && len(out) > max {
		rest := map[string]*PhaseSummary{}
		var restOrder []string
		for _, p := range out[max:] {
			o := rest[p.Cat]
			if o == nil {
				o = &PhaseSummary{Cat: p.Cat, Name: "(other)"}
				rest[p.Cat] = o
				restOrder = append(restOrder, p.Cat)
			}
			o.Count += p.Count
			o.MS += p.MS
		}
		out = out[:max:max]
		sort.Strings(restOrder)
		for _, cat := range restOrder {
			out = append(out, *rest[cat])
		}
	}
	return out
}

// Len reports the number of recorded events (metadata excluded).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
