package obs

// Runtime sampler: a periodic snapshot of the Go runtime's health —
// goroutine count, heap, GC activity — published as ordinary registry
// gauges so they ride the existing /metrics scrape and the debug-state
// snapshot for free. ReadMemStats stops the world briefly, so the
// sampler runs on its own ticker rather than per scrape; readers see
// values at most one interval stale.

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauge names published by SampleRuntime.
const (
	GaugeGoroutines   = "runtime.goroutines"
	GaugeHeapAlloc    = "runtime.heap_alloc_bytes"
	GaugeHeapSys      = "runtime.heap_sys_bytes"
	GaugeGCCount      = "runtime.gc_count"
	GaugeGCPauseTotal = "runtime.gc_pause_total_ns"
	GaugeGCPauseLast  = "runtime.gc_pause_last_ns"
)

// SampleRuntime takes one snapshot of the runtime into r's gauges. It
// is what the periodic sampler calls each tick; tests and one-shot
// tools can call it directly. A nil registry no-ops.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(GaugeGoroutines).Set(int64(runtime.NumGoroutine()))
	r.Gauge(GaugeHeapAlloc).Set(int64(ms.HeapAlloc))
	r.Gauge(GaugeHeapSys).Set(int64(ms.HeapSys))
	r.Gauge(GaugeGCCount).Set(int64(ms.NumGC))
	r.Gauge(GaugeGCPauseTotal).Set(int64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		r.Gauge(GaugeGCPauseLast).Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// StartRuntimeSampler samples the runtime into r immediately and then
// every interval (minimum 100ms) until the returned stop function is
// called. Stop is idempotent and safe to call from any goroutine.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	SampleRuntime(r)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(r)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
