package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache.hits")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("cache.hits") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("workers.peak")
	g.Set(2)
	g.Max(7)
	g.Max(3) // lower, ignored
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge after Add = %d, want 5", got)
	}

	h := r.Histogram("ops.per_step")
	for _, v := range []int64{0, 1, 2, 3, 5, 100, -4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("hist count = %d, want 7", got)
	}
	if got := h.Sum(); got != 111 { // -4 clamps to 0
		t.Errorf("hist sum = %d, want 111", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Gauge("b").Set(-3)
	r.Histogram("h").Observe(6)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["a"] != 10 || s.Gauges["b"] != -3 {
		t.Errorf("round trip lost values: %+v", s)
	}
	h := s.Histograms["h"]
	if h.Count != 1 || h.Sum != 6 {
		t.Errorf("hist snapshot = %+v", h)
	}
	// 6 has bit length 3, so its bucket's upper bound is 2^3-1 = 7.
	if len(h.Buckets) != 1 || h.Buckets[0].LE != 7 || h.Buckets[0].Count != 1 {
		t.Errorf("hist buckets = %+v", h.Buckets)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("eval_cache.comm.hits").Add(12)
	r.Gauge("engine.workers.peak").Set(8)
	r.Histogram("sched.ops_per_step").Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE eval_cache_comm_hits counter",
		"eval_cache_comm_hits 12",
		"# TYPE engine_workers_peak gauge",
		"engine_workers_peak 8",
		"# TYPE sched_ops_per_step histogram",
		`sched_ops_per_step_bucket{le="3"} 1`,
		`sched_ops_per_step_bucket{le="+Inf"} 1`,
		"sched_ops_per_step_sum 3",
		"sched_ops_per_step_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(5)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "hits 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &s); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if s.Counters["hits"] != 5 {
		t.Errorf("/metrics.json counters = %v", s.Counters)
	}
}

func TestServeMetricsBinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	ln, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x 1") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(int64(i))
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Errorf("gauge max = %d, want 999", got)
	}
}

// TestDisabledMetricsAllocateNothing guards the nil-registry fast path.
func TestDisabledMetricsAllocateNothing(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("c").Add(1)
		r.Gauge("g").Max(9)
		r.Gauge("g").Set(3)
		r.Histogram("h").Observe(100)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocate %v times per op, want 0", allocs)
	}
}

func TestNilRegistrySnapshots(t *testing.T) {
	var r *Registry
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot non-empty: %+v", s)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"eval_cache.comm.hits": "eval_cache_comm_hits",
		"sched-ops/step":       "sched_ops_step",
		"9lives":               "_9lives",
		"ok_name:sub":          "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
