package obs

import (
	"testing"
	"time"
)

// phaseTracer returns a tracer on a fake clock plus a helper recording
// one span of an exact duration, so phase totals are deterministic.
func phaseTracer() (*Tracer, func(cat, name string, durMS int64)) {
	now := time.Unix(0, 0)
	tr := newTracerClock(func() time.Time { return now })
	span := func(cat, name string, durMS int64) {
		s := tr.Span(cat, name)
		now = now.Add(time.Duration(durMS) * time.Millisecond)
		s.End()
	}
	return tr, span
}

func TestTracerPhases(t *testing.T) {
	tr, span := phaseTracer()
	span("engine", "evaluate", 100)
	span("leaf", "schedule", 30)
	span("leaf", "schedule", 20)
	span("pipeline", "parse", 5)
	tr.Instant("engine", "marker", 0) // instants are excluded

	got := tr.Phases(0)
	if len(got) != 3 {
		t.Fatalf("got %d phases, want 3: %+v", len(got), got)
	}
	if got[0].Name != "evaluate" || got[0].MS != 100 || got[0].Count != 1 {
		t.Errorf("top phase = %+v, want evaluate/100ms/1", got[0])
	}
	if got[1].Name != "schedule" || got[1].MS != 50 || got[1].Count != 2 {
		t.Errorf("second phase = %+v, want schedule/50ms/2", got[1])
	}
	if got[2].Name != "parse" || got[2].MS != 5 {
		t.Errorf("third phase = %+v, want parse/5ms", got[2])
	}
}

func TestTracerPhasesOverflow(t *testing.T) {
	tr, span := phaseTracer()
	span("engine", "evaluate", 100)
	span("leaf", "a", 10)
	span("leaf", "b", 8)
	span("leaf", "c", 6)

	got := tr.Phases(2)
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 2 + overflow: %+v", len(got), got)
	}
	last := got[2]
	if last.Name != "(other)" || last.Cat != "leaf" || last.Count != 2 || last.MS != 14 {
		t.Errorf("overflow row = %+v, want leaf/(other)/2/14ms", last)
	}
}

func TestNilTracerPhases(t *testing.T) {
	var tr *Tracer
	if got := tr.Phases(5); got != nil {
		t.Errorf("nil tracer phases = %v, want nil", got)
	}
}
