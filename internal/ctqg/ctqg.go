// Package ctqg is this reproduction's Classical-To-Quantum-Gates
// substitute (paper §3.1): generators for reversible arithmetic and logic
// circuits, emitted as Scaffold-lite source so they flow through the
// complete front end like any hand-written module.
//
// Matching the tool the paper describes, the output is deliberately
// unoptimized and "highly locally serialized" (§5.2): ripple-carry
// adders, Toffoli ladders and copy/uncopy ancilla discipline, exactly the
// structure that gives BF/CN/SHA-1 their low parallelism in Fig. 6.
//
// The arithmetic core is the Cuccaro–Draper–Kutin–Moulton (CDKM)
// ripple-carry adder built from MAJ/UMA blocks; everything else layers on
// top of it. All circuits are verified against the state-vector
// simulator in this package's tests.
package ctqg

import (
	"fmt"
	"strings"
)

// maj emits the CDKM majority block on (x, y, z) = (carry, b, a).
func maj(b *strings.Builder, x, y, z string) {
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", z, y)
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", z, x)
	fmt.Fprintf(b, "  Toffoli(%s, %s, %s);\n", x, y, z)
}

// uma emits the CDKM un-majority-and-add block (2-CNOT form).
func uma(b *strings.Builder, x, y, z string) {
	fmt.Fprintf(b, "  Toffoli(%s, %s, %s);\n", x, y, z)
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", z, x)
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", x, y)
}

// Xor returns a module: b ^= a, bitwise (transversal CNOT).
func Xor(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d]) {\n", name, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    CNOT(a[i], b[i]);\n  }\n", n)
	sb.WriteString("}\n")
	return sb.String()
}

// Adder returns a module implementing the CDKM ripple-carry adder:
//
//	module name(qbit a[n], qbit b[n], qbit cin, qbit cout)
//
// computes b = a + b (mod 2^n), cout ^= carry, with a and cin restored
// (cin must be |0> for plain addition).
func Adder(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit cin, qbit cout) {\n", name, n, n)
	// MAJ ladder up.
	maj(&sb, "cin", "b[0]", "a[0]")
	for i := 1; i < n; i++ {
		maj(&sb, fmt.Sprintf("a[%d]", i-1), fmt.Sprintf("b[%d]", i), fmt.Sprintf("a[%d]", i))
	}
	fmt.Fprintf(&sb, "  CNOT(a[%d], cout);\n", n-1)
	// UMA ladder down.
	for i := n - 1; i >= 1; i-- {
		uma(&sb, fmt.Sprintf("a[%d]", i-1), fmt.Sprintf("b[%d]", i), fmt.Sprintf("a[%d]", i))
	}
	uma(&sb, "cin", "b[0]", "a[0]")
	sb.WriteString("}\n")
	return sb.String()
}

// Subtractor returns a module computing b = b - a (mod 2^n) by
// conjugating the adder with bitwise complement of b:
// b - a = ~(~b + a). Requires an adder module named adderName of the
// same width; cin must be |0>, cout ^= NOT borrow.
func Subtractor(name, adderName string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit cin, qbit cout) {\n", name, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    X(b[i]);\n  }\n", n)
	fmt.Fprintf(&sb, "  %s(a, b, cin, cout);\n", adderName)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    X(b[i]);\n  }\n", n)
	sb.WriteString("}\n")
	return sb.String()
}

// CtrlCopy returns a module: b ^= a when ctrl (bitwise Toffoli fan).
func CtrlCopy(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit ctrl, qbit a[%d], qbit b[%d]) {\n", name, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    Toffoli(ctrl, a[i], b[i]);\n  }\n", n)
	sb.WriteString("}\n")
	return sb.String()
}

// CtrlAdder returns a module computing b += a iff ctrl, using the
// copy–add–uncopy discipline (CTQG's unoptimized style): a is copied
// into a zeroed ancilla register under the control, added, and uncopied.
//
//	module name(qbit ctrl, qbit a[n], qbit b[n], qbit cin, qbit cout)
//
// Requires modules copyName (CtrlCopy) and adderName (Adder) of width n.
// The ancilla register is local and returned clean.
func CtrlAdder(name, copyName, adderName string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit ctrl, qbit a[%d], qbit b[%d], qbit cin, qbit cout) {\n", name, n, n)
	fmt.Fprintf(&sb, "  qbit tmp[%d];\n", n)
	fmt.Fprintf(&sb, "  %s(ctrl, a, tmp);\n", copyName)
	fmt.Fprintf(&sb, "  %s(tmp, b, cin, cout);\n", adderName)
	fmt.Fprintf(&sb, "  %s(ctrl, a, tmp);\n", copyName)
	sb.WriteString("}\n")
	return sb.String()
}

// ConstAdd returns a module adding the classical constant c into b:
// b += c (mod 2^n). The constant materializes in a local ancilla via X
// gates, is added with adderName, and is uncomputed.
func ConstAdd(name, adderName string, n int, c uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit b[%d], qbit cin, qbit cout) {\n", name, n)
	fmt.Fprintf(&sb, "  qbit kreg[%d];\n", n)
	setBits := func() {
		for i := 0; i < n; i++ {
			if c&(1<<uint(i)) != 0 {
				fmt.Fprintf(&sb, "  X(kreg[%d]);\n", i)
			}
		}
	}
	setBits()
	fmt.Fprintf(&sb, "  %s(kreg, b, cin, cout);\n", adderName)
	setBits()
	sb.WriteString("}\n")
	return sb.String()
}

// CarryOf returns a module computing flag ^= carry(a + b + cin) while
// preserving a, b and cin: the CDKM MAJ ladder ripples the carry into
// a[n-1], the flag copies it out, and the reversed ladder uncomputes.
//
//	module name(qbit a[n], qbit b[n], qbit cin, qbit flag)
func CarryOf(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit cin, qbit flag) {\n", name, n, n)
	maj(&sb, "cin", "b[0]", "a[0]")
	for i := 1; i < n; i++ {
		maj(&sb, fmt.Sprintf("a[%d]", i-1), fmt.Sprintf("b[%d]", i), fmt.Sprintf("a[%d]", i))
	}
	fmt.Fprintf(&sb, "  CNOT(a[%d], flag);\n", n-1)
	for i := n - 1; i >= 1; i-- {
		invMaj(&sb, fmt.Sprintf("a[%d]", i-1), fmt.Sprintf("b[%d]", i), fmt.Sprintf("a[%d]", i))
	}
	invMaj(&sb, "cin", "b[0]", "a[0]")
	sb.WriteString("}\n")
	return sb.String()
}

// invMaj emits the inverse of the MAJ block.
func invMaj(b *strings.Builder, x, y, z string) {
	fmt.Fprintf(b, "  Toffoli(%s, %s, %s);\n", x, y, z)
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", z, x)
	fmt.Fprintf(b, "  CNOT(%s, %s);\n", z, y)
}

// LessThan returns a module computing flag ^= (a < b), unsigned,
// preserving a, b and cin (cin must be |0>). It uses the identity
// carry(~a + b) = 1 ⟺ ~a + b ≥ 2^n ⟺ a < b, conjugating a CarryOf
// module (named carryName, same width) with bitwise complement of a.
//
//	module name(qbit a[n], qbit b[n], qbit cin, qbit flag)
func LessThan(name, carryName string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit cin, qbit flag) {\n", name, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    X(a[i]);\n  }\n", n)
	fmt.Fprintf(&sb, "  %s(a, b, cin, flag);\n", carryName)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    X(a[i]);\n  }\n", n)
	sb.WriteString("}\n")
	return sb.String()
}

// Equals returns a module computing flag ^= (a == b): XOR b into a,
// flip, AND-reduce with a Toffoli ladder, then uncompute.
//
//	module name(qbit a[n], qbit b[n], qbit anc[n-1], qbit flag)
//
// anc must be |0...0> and is returned clean (n >= 2).
func Equals(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit anc[%d], qbit flag) {\n", name, n, n, n-1)
	xorFlip := func() {
		fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    CNOT(b[i], a[i]);\n    X(a[i]);\n  }\n", n)
	}
	ladderUp := func() {
		fmt.Fprintf(&sb, "  Toffoli(a[0], a[1], anc[0]);\n")
		for i := 2; i < n; i++ {
			fmt.Fprintf(&sb, "  Toffoli(anc[%d], a[%d], anc[%d]);\n", i-2, i, i-1)
		}
	}
	ladderDown := func() {
		for i := n - 1; i >= 2; i-- {
			fmt.Fprintf(&sb, "  Toffoli(anc[%d], a[%d], anc[%d]);\n", i-2, i, i-1)
		}
		fmt.Fprintf(&sb, "  Toffoli(a[0], a[1], anc[0]);\n")
	}
	xorFlip()
	ladderUp()
	fmt.Fprintf(&sb, "  CNOT(anc[%d], flag);\n", n-2)
	ladderDown()
	xorFlip()
	sb.WriteString("}\n")
	return sb.String()
}

// MultiCX returns a module: target ^= AND(c[0..n-1]) via a Toffoli
// ladder with n-1 clean local ancillae (n >= 2).
func MultiCX(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit c[%d], qbit target) {\n", name, n)
	if n == 2 {
		sb.WriteString("  Toffoli(c[0], c[1], target);\n}\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  qbit anc[%d];\n", n-1)
	fmt.Fprintf(&sb, "  Toffoli(c[0], c[1], anc[0]);\n")
	for i := 2; i < n; i++ {
		fmt.Fprintf(&sb, "  Toffoli(anc[%d], c[%d], anc[%d]);\n", i-2, i, i-1)
	}
	fmt.Fprintf(&sb, "  CNOT(anc[%d], target);\n", n-2)
	for i := n - 1; i >= 2; i-- {
		fmt.Fprintf(&sb, "  Toffoli(anc[%d], c[%d], anc[%d]);\n", i-2, i, i-1)
	}
	fmt.Fprintf(&sb, "  Toffoli(c[0], c[1], anc[0]);\n")
	sb.WriteString("}\n")
	return sb.String()
}

// Multiplier returns a module computing p += a * b over n-bit inputs and
// a 2n-bit product register, by shift-and-add with controlled adders.
//
//	module name(qbit a[n], qbit b[n], qbit p[2n], qbit cin)
//
// Requires ctrlAdderName = CtrlAdder of width n. cin must be |0>.
func Multiplier(name, ctrlAdderName string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit a[%d], qbit b[%d], qbit p[%d], qbit cin) {\n", name, n, n, 2*n)
	for i := 0; i < n; i++ {
		// p[i : i+n] += a iff b[i], carry into p[i+n].
		fmt.Fprintf(&sb, "  %s(b[%d], a, p[%d:%d], cin, p[%d]);\n", ctrlAdderName, i, i, i+n, i+n)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// RotL returns a module rotating the register left by r positions
// in place using the triple-reversal swap network (3·n/2 Swap gates),
// matching how CTQG lowers C bit rotations.
func RotL(name string, n, r int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d]) {\n", name, n)
	rev := func(lo, hi int) { // reverse x[lo:hi]
		for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
			fmt.Fprintf(&sb, "  Swap(x[%d], x[%d]);\n", i, j)
		}
	}
	r = ((r % n) + n) % n
	if r != 0 {
		// Left-rotating bit *values* by r means index i gets the old
		// value of index i-r (mod n) when bit i holds weight 2^i.
		rev(0, n)
		rev(0, r)
		rev(r, n)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ChFunc returns a module computing out ^= Ch(x,y,z) = (x&y)^(~x&z),
// bitwise (SHA-1 rounds 0–19).
func ChFunc(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d], qbit y[%d], qbit z[%d], qbit out[%d]) {\n", name, n, n, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", n)
	sb.WriteString("    Toffoli(x[i], y[i], out[i]);\n")
	sb.WriteString("    X(x[i]);\n")
	sb.WriteString("    Toffoli(x[i], z[i], out[i]);\n")
	sb.WriteString("    X(x[i]);\n")
	sb.WriteString("  }\n}\n")
	return sb.String()
}

// MajFunc returns a module computing out ^= Maj(x,y,z) =
// (x&y)^(x&z)^(y&z), bitwise (SHA-1 rounds 40–59).
func MajFunc(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d], qbit y[%d], qbit z[%d], qbit out[%d]) {\n", name, n, n, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", n)
	sb.WriteString("    Toffoli(x[i], y[i], out[i]);\n")
	sb.WriteString("    Toffoli(x[i], z[i], out[i]);\n")
	sb.WriteString("    Toffoli(y[i], z[i], out[i]);\n")
	sb.WriteString("  }\n}\n")
	return sb.String()
}

// ParityFunc returns a module computing out ^= x^y^z, bitwise
// (SHA-1 rounds 20–39 and 60–79).
func ParityFunc(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d], qbit y[%d], qbit z[%d], qbit out[%d]) {\n", name, n, n, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", n)
	sb.WriteString("    CNOT(x[i], out[i]);\n")
	sb.WriteString("    CNOT(y[i], out[i]);\n")
	sb.WriteString("    CNOT(z[i], out[i]);\n")
	sb.WriteString("  }\n}\n")
	return sb.String()
}
