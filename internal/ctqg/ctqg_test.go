package ctqg_test

import (
	"fmt"
	"math/cmplx"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ctqg"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/sim"
)

// initReg emits X gates setting register reg[size] to value v.
func initReg(sb *strings.Builder, reg string, size int, v uint64) {
	for i := 0; i < size; i++ {
		if v&(1<<uint(i)) != 0 {
			fmt.Fprintf(sb, "  X(%s[%d]);\n", reg, i)
		}
	}
}

// runBasis compiles src (front end only — the simulator understands wide
// gates) and runs it from |0...0> with extra ancilla room, requiring the
// result to be a single computational basis state, which it returns
// along with the entry module for register decoding.
func runBasis(t *testing.T, src string, extraAncilla int) (uint64, *ir.Module) {
	t.Helper()
	p, err := core.Frontend(src, core.PipelineOptions{})
	if err != nil {
		t.Fatalf("compile: %v\nsource:\n%s", err, src)
	}
	entry := p.EntryModule()
	n := entry.TotalSlots() + extraAncilla
	st, err := sim.NewState(n)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if err := st.RunProgram(p); err != nil {
		t.Fatalf("run: %v", err)
	}
	basis := uint64(0)
	found := false
	for i := uint64(0); i < 1<<uint(n); i++ {
		if m := cmplx.Abs(st.Amplitude(i)); m > 0.5 {
			if found {
				t.Fatalf("state is not a basis state (second peak at %d)", i)
			}
			if m < 0.999999 {
				t.Fatalf("basis amplitude %g too small", m)
			}
			basis, found = i, true
		}
	}
	if !found {
		t.Fatal("no dominant basis state")
	}
	return basis, entry
}

// regVal extracts register reg's value from a basis index.
func regVal(t *testing.T, m *ir.Module, basis uint64, reg string) uint64 {
	t.Helper()
	r, ok := m.RegRange(reg)
	if !ok {
		t.Fatalf("no register %q in %s", reg, m.Name)
	}
	var v uint64
	for i := 0; i < r.Len; i++ {
		if basis&(1<<uint(r.Start+i)) != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestAdder(t *testing.T) {
	const n = 4
	for _, tc := range []struct{ a, b uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {3, 5}, {7, 9}, {15, 15}, {8, 8}, {15, 1}, {6, 13},
	} {
		var sb strings.Builder
		sb.WriteString(ctqg.Adder("add4", n))
		sb.WriteString("module main() {\n  qbit a[4];\n  qbit b[4];\n  qbit cin;\n  qbit cout;\n")
		initReg(&sb, "a", n, tc.a)
		initReg(&sb, "b", n, tc.b)
		sb.WriteString("  add4(a, b, cin, cout);\n}\n")
		basis, m := runBasis(t, sb.String(), 0)
		sum := tc.a + tc.b
		if got := regVal(t, m, basis, "b"); got != sum%(1<<n) {
			t.Errorf("a=%d b=%d: sum = %d, want %d", tc.a, tc.b, got, sum%(1<<n))
		}
		if got := regVal(t, m, basis, "a"); got != tc.a {
			t.Errorf("a=%d b=%d: a register clobbered to %d", tc.a, tc.b, got)
		}
		wantCarry := sum >> n
		if got := regVal(t, m, basis, "cout"); got != wantCarry {
			t.Errorf("a=%d b=%d: carry = %d, want %d", tc.a, tc.b, got, wantCarry)
		}
		if got := regVal(t, m, basis, "cin"); got != 0 {
			t.Errorf("a=%d b=%d: cin dirty (%d)", tc.a, tc.b, got)
		}
	}
}

func TestSubtractor(t *testing.T) {
	const n = 4
	for _, tc := range []struct{ a, b uint64 }{
		{0, 0}, {1, 5}, {5, 1}, {15, 15}, {3, 12}, {9, 9}, {1, 0},
	} {
		var sb strings.Builder
		sb.WriteString(ctqg.Adder("add4", n))
		sb.WriteString(ctqg.Subtractor("sub4", "add4", n))
		sb.WriteString("module main() {\n  qbit a[4];\n  qbit b[4];\n  qbit cin;\n  qbit cout;\n")
		initReg(&sb, "a", n, tc.a)
		initReg(&sb, "b", n, tc.b)
		sb.WriteString("  sub4(a, b, cin, cout);\n}\n")
		basis, m := runBasis(t, sb.String(), 0)
		want := (tc.b - tc.a) & (1<<n - 1)
		if got := regVal(t, m, basis, "b"); got != want {
			t.Errorf("b=%d a=%d: b-a = %d, want %d", tc.b, tc.a, got, want)
		}
		if got := regVal(t, m, basis, "a"); got != tc.a {
			t.Errorf("a register clobbered to %d", got)
		}
	}
}

func TestCarryOf(t *testing.T) {
	const n = 3
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			var sb strings.Builder
			sb.WriteString(ctqg.CarryOf("carry3", n))
			sb.WriteString("module main() {\n  qbit a[3];\n  qbit b[3];\n  qbit cin;\n  qbit flag;\n")
			initReg(&sb, "a", n, a)
			initReg(&sb, "b", n, b)
			sb.WriteString("  carry3(a, b, cin, flag);\n}\n")
			basis, m := runBasis(t, sb.String(), 0)
			want := (a + b) >> n
			if got := regVal(t, m, basis, "flag"); got != want {
				t.Errorf("a=%d b=%d: carry = %d, want %d", a, b, got, want)
			}
			if got := regVal(t, m, basis, "a"); got != a {
				t.Errorf("a=%d b=%d: a clobbered to %d", a, b, got)
			}
			if got := regVal(t, m, basis, "b"); got != b {
				t.Errorf("a=%d b=%d: b clobbered to %d", a, b, got)
			}
		}
	}
}

func TestLessThan(t *testing.T) {
	const n = 3
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			var sb strings.Builder
			sb.WriteString(ctqg.CarryOf("carry3", n))
			sb.WriteString(ctqg.LessThan("lt3", "carry3", n))
			sb.WriteString("module main() {\n  qbit a[3];\n  qbit b[3];\n  qbit cin;\n  qbit flag;\n")
			initReg(&sb, "a", n, a)
			initReg(&sb, "b", n, b)
			sb.WriteString("  lt3(a, b, cin, flag);\n}\n")
			basis, m := runBasis(t, sb.String(), 0)
			want := uint64(0)
			if a < b {
				want = 1
			}
			if got := regVal(t, m, basis, "flag"); got != want {
				t.Errorf("a=%d b=%d: lt = %d, want %d", a, b, got, want)
			}
			if regVal(t, m, basis, "a") != a || regVal(t, m, basis, "b") != b {
				t.Errorf("a=%d b=%d: inputs clobbered", a, b)
			}
		}
	}
}

func TestEquals(t *testing.T) {
	const n = 3
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			var sb strings.Builder
			sb.WriteString(ctqg.Equals("eq3", n))
			sb.WriteString("module main() {\n  qbit a[3];\n  qbit b[3];\n  qbit anc[2];\n  qbit flag;\n")
			initReg(&sb, "a", n, a)
			initReg(&sb, "b", n, b)
			sb.WriteString("  eq3(a, b, anc, flag);\n}\n")
			basis, m := runBasis(t, sb.String(), 0)
			want := uint64(0)
			if a == b {
				want = 1
			}
			if got := regVal(t, m, basis, "flag"); got != want {
				t.Errorf("a=%d b=%d: eq = %d, want %d", a, b, got, want)
			}
			if got := regVal(t, m, basis, "anc"); got != 0 {
				t.Errorf("a=%d b=%d: ancilla dirty (%d)", a, b, got)
			}
			if regVal(t, m, basis, "a") != a || regVal(t, m, basis, "b") != b {
				t.Errorf("a=%d b=%d: inputs clobbered", a, b)
			}
		}
	}
}

func TestMultiCX(t *testing.T) {
	for n := 2; n <= 4; n++ {
		for c := uint64(0); c < 1<<uint(n); c++ {
			var sb strings.Builder
			sb.WriteString(ctqg.MultiCX("mcx", n))
			fmt.Fprintf(&sb, "module main() {\n  qbit c[%d];\n  qbit target;\n", n)
			initReg(&sb, "c", n, c)
			sb.WriteString("  mcx(c, target);\n}\n")
			basis, m := runBasis(t, sb.String(), n-1)
			want := uint64(0)
			if c == 1<<uint(n)-1 {
				want = 1
			}
			if got := regVal(t, m, basis, "target"); got != want {
				t.Errorf("n=%d c=%b: target = %d, want %d", n, c, got, want)
			}
			if got := regVal(t, m, basis, "c"); got != c {
				t.Errorf("n=%d: controls clobbered to %b", n, got)
			}
		}
	}
}

func TestCtrlAdder(t *testing.T) {
	const n = 3
	for _, ctrl := range []uint64{0, 1} {
		for _, tc := range []struct{ a, b uint64 }{{3, 4}, {7, 7}, {0, 5}, {6, 3}} {
			var sb strings.Builder
			sb.WriteString(ctqg.Adder("add3", n))
			sb.WriteString(ctqg.CtrlCopy("ccopy3", n))
			sb.WriteString(ctqg.CtrlAdder("cadd3", "ccopy3", "add3", n))
			sb.WriteString("module main() {\n  qbit ctl;\n  qbit a[3];\n  qbit b[3];\n  qbit cin;\n  qbit cout;\n")
			if ctrl == 1 {
				sb.WriteString("  X(ctl);\n")
			}
			initReg(&sb, "a", n, tc.a)
			initReg(&sb, "b", n, tc.b)
			sb.WriteString("  cadd3(ctl, a, b, cin, cout);\n}\n")
			basis, m := runBasis(t, sb.String(), n)
			want := tc.b
			wantCarry := uint64(0)
			if ctrl == 1 {
				want = (tc.a + tc.b) % (1 << n)
				wantCarry = (tc.a + tc.b) >> n
			}
			if got := regVal(t, m, basis, "b"); got != want {
				t.Errorf("ctrl=%d a=%d b=%d: result %d, want %d", ctrl, tc.a, tc.b, got, want)
			}
			if got := regVal(t, m, basis, "cout"); got != wantCarry {
				t.Errorf("ctrl=%d a=%d b=%d: carry %d, want %d", ctrl, tc.a, tc.b, got, wantCarry)
			}
			if regVal(t, m, basis, "a") != tc.a {
				t.Errorf("a clobbered")
			}
		}
	}
}

func TestConstAdd(t *testing.T) {
	const n = 4
	for _, tc := range []struct{ c, b uint64 }{{5, 3}, {0, 9}, {15, 1}, {8, 8}} {
		var sb strings.Builder
		sb.WriteString(ctqg.Adder("add4", n))
		sb.WriteString(ctqg.ConstAdd("kadd", "add4", n, tc.c))
		sb.WriteString("module main() {\n  qbit b[4];\n  qbit cin;\n  qbit cout;\n")
		initReg(&sb, "b", n, tc.b)
		sb.WriteString("  kadd(b, cin, cout);\n}\n")
		basis, m := runBasis(t, sb.String(), n)
		want := (tc.c + tc.b) % (1 << n)
		if got := regVal(t, m, basis, "b"); got != want {
			t.Errorf("c=%d b=%d: result %d, want %d", tc.c, tc.b, got, want)
		}
	}
}

func TestMultiplier(t *testing.T) {
	const n = 2
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			var sb strings.Builder
			sb.WriteString(ctqg.Adder("add2", n))
			sb.WriteString(ctqg.CtrlCopy("ccopy2", n))
			sb.WriteString(ctqg.CtrlAdder("cadd2", "ccopy2", "add2", n))
			sb.WriteString(ctqg.Multiplier("mul2", "cadd2", n))
			sb.WriteString("module main() {\n  qbit a[2];\n  qbit b[2];\n  qbit p[4];\n  qbit cin;\n")
			initReg(&sb, "a", n, a)
			initReg(&sb, "b", n, b)
			sb.WriteString("  mul2(a, b, p, cin);\n}\n")
			basis, m := runBasis(t, sb.String(), n)
			if got := regVal(t, m, basis, "p"); got != a*b {
				t.Errorf("a=%d b=%d: product %d, want %d", a, b, got, a*b)
			}
			if regVal(t, m, basis, "a") != a || regVal(t, m, basis, "b") != b {
				t.Errorf("a=%d b=%d: inputs clobbered", a, b)
			}
		}
	}
}

func TestRotL(t *testing.T) {
	const n = 5
	for r := 0; r < n; r++ {
		for _, v := range []uint64{0b10110, 0b00001, 0b11111, 0b01010} {
			var sb strings.Builder
			sb.WriteString(ctqg.RotL("rot", n, r))
			fmt.Fprintf(&sb, "module main() {\n  qbit x[%d];\n", n)
			initReg(&sb, "x", n, v)
			sb.WriteString("  rot(x);\n}\n")
			basis, m := runBasis(t, sb.String(), 0)
			want := ((v << uint(r)) | (v >> uint(n-r))) & (1<<n - 1)
			if got := regVal(t, m, basis, "x"); got != want {
				t.Errorf("r=%d v=%05b: got %05b, want %05b", r, v, got, want)
			}
		}
	}
}

func TestBitwiseFunctions(t *testing.T) {
	const n = 3
	cases := []struct {
		name string
		src  string
		want func(x, y, z uint64) uint64
	}{
		{"ch", ctqg.ChFunc("f", n), func(x, y, z uint64) uint64 { return (x & y) ^ (^x&z)&7 }},
		{"maj", ctqg.MajFunc("f", n), func(x, y, z uint64) uint64 { return (x & y) ^ (x & z) ^ (y & z) }},
		{"parity", ctqg.ParityFunc("f", n), func(x, y, z uint64) uint64 { return x ^ y ^ z }},
	}
	for _, tc := range cases {
		for _, vals := range [][3]uint64{{5, 3, 6}, {0, 7, 2}, {7, 7, 7}, {1, 2, 4}} {
			var sb strings.Builder
			sb.WriteString(tc.src)
			sb.WriteString("module main() {\n  qbit x[3];\n  qbit y[3];\n  qbit z[3];\n  qbit out[3];\n")
			initReg(&sb, "x", n, vals[0])
			initReg(&sb, "y", n, vals[1])
			initReg(&sb, "z", n, vals[2])
			sb.WriteString("  f(x, y, z, out);\n}\n")
			basis, m := runBasis(t, sb.String(), 0)
			want := tc.want(vals[0], vals[1], vals[2]) & 7
			if got := regVal(t, m, basis, "out"); got != want {
				t.Errorf("%s(%d,%d,%d) = %d, want %d", tc.name, vals[0], vals[1], vals[2], got, want)
			}
		}
	}
}

func TestXor(t *testing.T) {
	const n = 4
	var sb strings.Builder
	sb.WriteString(ctqg.Xor("x4", n))
	sb.WriteString("module main() {\n  qbit a[4];\n  qbit b[4];\n")
	initReg(&sb, "a", n, 0b1011)
	initReg(&sb, "b", n, 0b0110)
	sb.WriteString("  x4(a, b);\n}\n")
	basis, m := runBasis(t, sb.String(), 0)
	if got := regVal(t, m, basis, "b"); got != 0b1101 {
		t.Errorf("xor = %04b, want 1101", got)
	}
}

func TestIncrementDecrement(t *testing.T) {
	const n = 5
	for v := uint64(0); v < 1<<n; v++ {
		var sb strings.Builder
		sb.WriteString(ctqg.IncrementSources("inc", "mcx_inc", n))
		fmt.Fprintf(&sb, "module main() {\n  qbit x[%d];\n", n)
		initReg(&sb, "x", n, v)
		sb.WriteString("  inc(x);\n}\n")
		basis, m := runBasis(t, sb.String(), n)
		want := (v + 1) & (1<<n - 1)
		if got := regVal(t, m, basis, "x"); got != want {
			t.Errorf("inc(%d) = %d, want %d", v, got, want)
		}
	}
	for v := uint64(0); v < 1<<n; v++ {
		var sb strings.Builder
		for k := 3; k < n; k++ {
			sb.WriteString(ctqg.MultiCX(fmt.Sprintf("mcx_inc%d", k), k))
		}
		sb.WriteString(ctqg.Decrement("dec", "mcx_inc", n))
		fmt.Fprintf(&sb, "module main() {\n  qbit x[%d];\n", n)
		initReg(&sb, "x", n, v)
		sb.WriteString("  dec(x);\n}\n")
		basis, m := runBasis(t, sb.String(), n)
		want := (v - 1) & (1<<n - 1)
		if got := regVal(t, m, basis, "x"); got != want {
			t.Errorf("dec(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestNegate(t *testing.T) {
	const n = 4
	for v := uint64(0); v < 1<<n; v++ {
		var sb strings.Builder
		sb.WriteString(ctqg.IncrementSources("inc", "mcx_neg", n))
		sb.WriteString(ctqg.Negate("neg", "inc", n))
		fmt.Fprintf(&sb, "module main() {\n  qbit x[%d];\n", n)
		initReg(&sb, "x", n, v)
		sb.WriteString("  neg(x);\n}\n")
		basis, m := runBasis(t, sb.String(), n)
		want := (-v) & (1<<n - 1)
		if got := regVal(t, m, basis, "x"); got != want {
			t.Errorf("neg(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestCtrlSwapRegs(t *testing.T) {
	const n = 3
	for _, ctl := range []uint64{0, 1} {
		var sb strings.Builder
		sb.WriteString(ctqg.CtrlSwapRegs("cswap", n))
		sb.WriteString("module main() {\n  qbit c;\n  qbit a[3];\n  qbit b[3];\n")
		if ctl == 1 {
			sb.WriteString("  X(c);\n")
		}
		initReg(&sb, "a", n, 0b101)
		initReg(&sb, "b", n, 0b010)
		sb.WriteString("  cswap(c, a, b);\n}\n")
		basis, m := runBasis(t, sb.String(), 0)
		wantA, wantB := uint64(0b101), uint64(0b010)
		if ctl == 1 {
			wantA, wantB = wantB, wantA
		}
		if regVal(t, m, basis, "a") != wantA || regVal(t, m, basis, "b") != wantB {
			t.Errorf("ctl=%d: a=%03b b=%03b", ctl, regVal(t, m, basis, "a"), regVal(t, m, basis, "b"))
		}
	}
}
