package ctqg

import (
	"fmt"
	"strings"
)

// Increment returns a module computing x += 1 (mod 2^n) in place with a
// multi-controlled carry ladder: bit i flips iff all lower bits are 1.
// Emitted most-significant first so controls read pre-increment values.
// Uses the width-k MultiCX modules named mcxPrefix<k> for k = 2..n-1,
// which the caller must also include (see IncrementSources).
func Increment(name, mcxPrefix string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d]) {\n", name, n)
	for i := n - 1; i >= 0; i-- {
		switch i {
		case 0:
			sb.WriteString("  X(x[0]);\n")
		case 1:
			sb.WriteString("  CNOT(x[0], x[1]);\n")
		case 2:
			sb.WriteString("  Toffoli(x[0], x[1], x[2]);\n")
		default:
			fmt.Fprintf(&sb, "  %s%d(x[0:%d], x[%d]);\n", mcxPrefix, i, i, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// IncrementSources returns the Increment module along with every MultiCX
// helper it needs, ready to concatenate into a program.
func IncrementSources(name, mcxPrefix string, n int) string {
	var sb strings.Builder
	for k := 3; k < n; k++ {
		sb.WriteString(MultiCX(fmt.Sprintf("%s%d", mcxPrefix, k), k))
	}
	sb.WriteString(Increment(name, mcxPrefix, n))
	return sb.String()
}

// Negate returns a module computing x = -x (mod 2^n) = ~x + 1, via
// bitwise complement and an increment (incName must be an Increment of
// the same width).
func Negate(name, incName string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d]) {\n", name, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    X(x[i]);\n  }\n", n)
	fmt.Fprintf(&sb, "  %s(x);\n", incName)
	sb.WriteString("}\n")
	return sb.String()
}

// Decrement returns a module computing x -= 1 (mod 2^n): the inverse of
// Increment, i.e. the same ladder in reverse order (all blocks are
// self-inverse).
func Decrement(name, mcxPrefix string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit x[%d]) {\n", name, n)
	for i := 0; i < n; i++ {
		switch i {
		case 0:
			sb.WriteString("  X(x[0]);\n")
		case 1:
			sb.WriteString("  CNOT(x[0], x[1]);\n")
		case 2:
			sb.WriteString("  Toffoli(x[0], x[1], x[2]);\n")
		default:
			fmt.Fprintf(&sb, "  %s%d(x[0:%d], x[%d]);\n", mcxPrefix, i, i, i)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// CtrlSwapRegs returns a module conditionally exchanging two registers
// (bitwise Fredkin fan), the primitive behind reversible conditional
// moves.
func CtrlSwapRegs(name string, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s(qbit ctl, qbit a[%d], qbit b[%d]) {\n", name, n, n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    Fredkin(ctl, a[i], b[i]);\n  }\n", n)
	sb.WriteString("}\n")
	return sb.String()
}

// CopyReg returns a module computing b ^= a (an alias of Xor, kept for
// readability at call sites that mean "copy a basis-state register").
func CopyReg(name string, n int) string { return Xor(name, n) }
