package lpfs

import (
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// BenchmarkSchedule exercises the per-step loop — step membership now
// uses a stamped slice instead of a fresh map per timestep, and the
// blocked-set scratch for path refills is reused.
func BenchmarkSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 2000, Qubits: 12})
	g, err := dag.Build(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(m, g, Options{K: 4, L: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
