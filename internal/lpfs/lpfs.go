// Package lpfs implements the paper's Longest Path First Scheduling
// algorithm (Algorithm 2, §4.2).
//
// LPFS dedicates l < k SIMD regions to the l longest dependency paths of
// the module's DAG, pinning those chains in place so their qubits never
// move — the key to low communication on the paper's "mostly serial"
// benchmarks. Remaining regions consume the free list of off-path ops.
// Two options control the algorithm, both enabled in the paper's
// experiments: SIMD (a path region opportunistically executes ready free
// ops of the same type, or any type while its path head stalls) and
// Refill (a region whose path completes extracts the next longest path
// from the current ready list).
package lpfs

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Options configures LPFS. The paper runs l = 1 with SIMD and Refill on.
type Options struct {
	K int // number of SIMD regions (required, >= 1)
	D int // data parallelism per region; 0 = unbounded
	L int // pinned longest-path regions; 0 defaults to 1, must stay < K unless K == 1

	SIMD   bool
	Refill bool

	// NoOptions suppresses the default-on behavior of SIMD/Refill when
	// both fields are false (for ablation benches).
	NoOptions bool

	// Log, when non-nil, records scheduling decisions: path refills and
	// deadlock-forced placements at LevelStep; stalled pinned heads,
	// d-budget deferrals, and ready-but-path-claimed ops at LevelOp.
	// Logging never changes the schedule and is excluded from cache keys;
	// nil costs a nil check per step.
	Log *obs.DecisionLog
}

func (o Options) l() int {
	l := o.L
	if l == 0 {
		l = 1
	}
	if l > o.K {
		l = o.K
	}
	return l
}

func (o Options) simd() bool   { return o.SIMD || (!o.NoOptions && !o.SIMD && !o.Refill) }
func (o Options) refill() bool { return o.Refill || (!o.NoOptions && !o.SIMD && !o.Refill) }

// Schedule runs LPFS over the materialized leaf module m with dependency
// graph g.
func Schedule(m *ir.Module, g *dag.Graph, opts Options) (*schedule.Schedule, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("lpfs: k must be >= 1, got %d", opts.K)
	}
	if g.M != m {
		return nil, fmt.Errorf("lpfs: graph module %s does not match %s", g.M.Name, m.Name)
	}
	n := g.Len()
	s := &schedule.Schedule{M: m, K: opts.K, D: opts.D}
	if n == 0 {
		return s, nil
	}
	l := opts.l()
	useSIMD, useRefill := opts.simd(), opts.refill()
	log := opts.Log

	pending := make([]int32, n)
	for i := 0; i < n; i++ {
		pending[i] = int32(len(g.Preds[i]))
	}
	ready := g.Roots()
	claimed := make([]bool, n) // op belongs to some pinned path
	done := make([]bool, n)    // op scheduled
	// inStepAt[op] == stamp marks op as placed in the current step; the
	// stamp advances per step, so the buffer never needs clearing (the
	// pre-refactor code allocated a map[int32]bool every step).
	inStepAt := make([]int32, n)
	stamp := int32(0)
	blocked := make([]bool, n) // scratch: done[i] || claimed[i]
	blockedNow := func() []bool {
		for i := range blocked {
			blocked[i] = done[i] || claimed[i]
		}
		return blocked
	}
	paths := make([][]int32, l)
	claim := func(path []int32) {
		for _, op := range path {
			claimed[op] = true
		}
	}
	for i := 0; i < l; i++ {
		paths[i] = g.NextLongestPath(blockedNow(), ready)
		claim(paths[i])
	}

	// The step-scoped helpers are hoisted out of the loop and capture
	// the rolling step state (stamp, current step) instead of being
	// re-created — and re-allocated — every timestep.
	var step schedule.Step
	var placed []int32
	isReady := func(op int32) bool {
		return pending[op] == 0 && !done[op] && inStepAt[op] != stamp
	}
	// fits reports whether op alone respects the d budget. Ops wider
	// than d can never execute; placement skips them so the progress
	// check below surfaces the infeasibility as an error instead of
	// emitting an illegal schedule.
	fits := func(op int32) bool {
		return opts.D <= 0 || len(m.Ops[op].Args) <= opts.D
	}
	// takeFree extracts ready, unclaimed free-list ops matching key,
	// up to the remaining d budget, preserving free-list order.
	takeFree := func(key schedule.GroupKey, qubits int) ([]int32, int) {
		var taken []int32
		for _, op := range ready {
			if claimed[op] || !isReady(op) || schedule.KeyOf(m, op) != key {
				continue
			}
			need := len(m.Ops[op].Args)
			if opts.D > 0 && qubits+need > opts.D {
				if log.Enabled(obs.LevelOp) {
					log.Record(obs.LevelOp, obs.Decision{
						Scheduler: "lpfs", Module: m.Name,
						Step: len(s.Steps), Region: -1, Op: op,
						Reason: obs.ReasonDBudget,
						Detail: fmt.Sprintf("needs %d qubits, %d/%d used", need, qubits, opts.D),
					})
				}
				break
			}
			taken = append(taken, op)
			qubits += need
		}
		return taken, qubits
	}
	place := func(r int, ops []int32) {
		if len(ops) == 0 {
			return
		}
		step.Regions[r] = append(step.Regions[r], ops...)
		for _, op := range ops {
			inStepAt[op] = stamp
		}
		placed = append(placed, ops...)
	}

	scheduled := 0
	for scheduled < n {
		step = schedule.Step{Regions: make([][]int32, opts.K)}
		placed = placed[:0]
		stamp++

		// Pinned path regions.
		for i := 0; i < l; i++ {
			if useRefill && len(paths[i]) == 0 {
				paths[i] = g.NextLongestPath(blockedNow(), ready)
				claim(paths[i])
				if len(paths[i]) > 0 && log.Enabled(obs.LevelStep) {
					log.Record(obs.LevelStep, obs.Decision{
						Scheduler: "lpfs", Module: m.Name,
						Step: len(s.Steps), Region: i, Op: paths[i][0],
						Reason: obs.ReasonRefill,
						Detail: fmt.Sprintf("new pinned path of %d ops", len(paths[i])),
					})
				}
			}
			if len(paths[i]) > 0 && isReady(paths[i][0]) && fits(paths[i][0]) {
				head := paths[i][0]
				paths[i] = paths[i][1:]
				ops := []int32{head}
				qubits := len(m.Ops[head].Args)
				if useSIMD {
					fill, _ := takeFree(schedule.KeyOf(m, head), qubits)
					ops = append(ops, fill...)
				}
				place(i, ops)
				continue
			}
			// Path empty or head stalled: with the SIMD option the region
			// executes arbitrary ready free ops instead of idling.
			if len(paths[i]) > 0 && log.Enabled(obs.LevelOp) {
				head := paths[i][0]
				why := "dependencies unsatisfied"
				if !fits(head) {
					why = fmt.Sprintf("needs %d qubits, d = %d", len(m.Ops[head].Args), opts.D)
				} else if inStepAt[head] == stamp {
					why = "already placed this step"
				}
				log.Record(obs.LevelOp, obs.Decision{
					Scheduler: "lpfs", Module: m.Name,
					Step: len(s.Steps), Region: i, Op: head,
					Reason: obs.ReasonHeadStalled, Detail: why,
				})
			}
			if useSIMD {
				if key, ok := firstFreeKey(m, ready, claimed, isReady); ok {
					ops, _ := takeFree(key, 0)
					place(i, ops)
				}
			}
		}

		// Unallocated regions consume the free list in order.
		for r := l; r < opts.K; r++ {
			key, ok := firstFreeKey(m, ready, claimed, isReady)
			if !ok {
				break
			}
			ops, _ := takeFree(key, 0)
			place(r, ops)
		}

		// Ready ops held back only because a pinned path claims them: the
		// free regions above skipped them even if idle.
		if log.Enabled(obs.LevelOp) {
			for _, op := range ready {
				if claimed[op] && isReady(op) {
					log.Record(obs.LevelOp, obs.Decision{
						Scheduler: "lpfs", Module: m.Name,
						Step: len(s.Steps), Region: -1, Op: op,
						Reason: obs.ReasonRegionPinned,
						Detail: "claimed by a pinned path, waiting for its turn",
					})
				}
			}
		}

		// Deadlock avoidance: if every pinned head stalls on a claimed-
		// but-unready dependency and no free ops exist (possible when
		// SIMD is disabled and k == l), run the first ready op anyway in
		// region 0 to guarantee progress.
		if len(placed) == 0 {
			forced := int32(-1)
			for _, op := range ready {
				if isReady(op) && fits(op) {
					forced = op
					break
				}
			}
			if forced < 0 {
				for _, op := range ready {
					if isReady(op) && !fits(op) {
						return nil, fmt.Errorf("lpfs: op %d operates on %d qubits, d = %d",
							op, len(m.Ops[op].Args), opts.D)
					}
				}
				return nil, fmt.Errorf("lpfs: deadlock with %d/%d ops scheduled", scheduled, n)
			}
			// Unlink the op from whichever path holds it, at any position.
			for i := range paths {
				for j, op := range paths[i] {
					if op == forced {
						paths[i] = append(paths[i][:j:j], paths[i][j+1:]...)
						break
					}
				}
			}
			if log.Enabled(obs.LevelStep) {
				log.Record(obs.LevelStep, obs.Decision{
					Scheduler: "lpfs", Module: m.Name,
					Step: len(s.Steps), Region: 0, Op: forced,
					Reason: obs.ReasonForced,
					Detail: "deadlock avoidance: every pinned head stalled",
				})
			}
			place(0, []int32{forced})
		}

		s.Steps = append(s.Steps, step)
		scheduled += len(placed)
		for _, op := range placed {
			done[op] = true
			for _, child := range g.Succs[op] {
				pending[child]--
				if pending[child] == 0 {
					ready = append(ready, child)
				}
			}
		}
		ready = compactReady(ready, done)
	}
	return s, nil
}

// firstFreeKey returns the group key of the first ready, unclaimed op in
// free-list order (the paper's ready.top()).
func firstFreeKey(m *ir.Module, ready []int32, claimed []bool, isReady func(int32) bool) (schedule.GroupKey, bool) {
	for _, op := range ready {
		if !claimed[op] && isReady(op) {
			return schedule.KeyOf(m, op), true
		}
	}
	return schedule.GroupKey{}, false
}

func compactReady(ready []int32, done []bool) []int32 {
	out := ready[:0]
	for _, op := range ready {
		if !done[op] {
			out = append(out, op)
		}
	}
	return out
}
