package lpfs_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func build(t *testing.T, m *ir.Module) *dag.Graph {
	t.Helper()
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyModule(t *testing.T) {
	m := ir.NewModule("empty", nil, nil)
	g := build(t, m)
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 0 {
		t.Errorf("length %d", s.Length())
	}
}

func TestPinnedPathStaysInRegionZero(t *testing.T) {
	// One long chain plus independent side gates: the chain must run
	// entirely in region 0 (the pinned longest-path region).
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 10; i++ {
		m.Gate(qasm.T, 0)
	}
	m.Gate(qasm.H, 1).Gate(qasm.H, 2).Gate(qasm.H, 3)
	g := build(t, m)
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	reg := s.RegionOf()
	for i := 0; i < 10; i++ {
		if reg[i] != 0 {
			t.Errorf("chain op %d in region %d", i, reg[i])
		}
	}
	if s.Length() != 10 {
		t.Errorf("length %d, want 10 (chain with free ops absorbed)", s.Length())
	}
}

func TestRefillPicksNextPath(t *testing.T) {
	// Two disjoint chains of different lengths; with refill the shorter
	// region picks up the second chain after the first completes... and
	// with l=1, k=1, both run in region 0 back to back.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	for i := 0; i < 6; i++ {
		m.Gate(qasm.T, 0)
	}
	for i := 0; i < 3; i++ {
		m.Gate(qasm.H, 1)
	}
	g := build(t, m)
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, SIMD: false, Refill: true, NoOptions: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.Length() != 9 {
		t.Errorf("k=1 two chains: %d steps, want 9", s.Length())
	}
}

func TestSIMDOptionFillsPathRegion(t *testing.T) {
	// Chain of T on q0 plus many independent T gates: with SIMD on,
	// free T gates ride along in the path region.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 5}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.T, 0)
	}
	for q := 1; q < 5; q++ {
		m.Gate(qasm.T, q)
	}
	g := build(t, m)
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, SIMD: true, Refill: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.Length() != 4 {
		t.Errorf("SIMD fill: %d steps, want 4", s.Length())
	}
	// Without SIMD at k=1: path first (4 steps), then... the free ops
	// can never run in the path region, but the deadlock-avoidance
	// fallback must still complete the schedule.
	s2, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, NoOptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s2.Length() < 5 {
		t.Errorf("no-SIMD should be longer, got %d", s2.Length())
	}
}

func TestDistinctAngleRotationsSerialize(t *testing.T) {
	// Table 2 at the LPFS level: k=1 forces full serialization of
	// distinct-angle rotations; k=n runs them in one step.
	const n = 6
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: n}})
	for i := 0; i < n; i++ {
		m.Rot(qasm.Rz, 0.1*float64(i+1), i)
	}
	g := build(t, m)
	s1, err := lpfs.Schedule(m, g, lpfs.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Length() != n {
		t.Errorf("k=1: %d steps, want %d", s1.Length(), n)
	}
	sn, err := lpfs.Schedule(m, g, lpfs.Options{K: n})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Length() != 1 {
		t.Errorf("k=%d: %d steps, want 1", n, sn.Length())
	}
}

func TestMultiplePinnedPaths(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 3}})
	for i := 0; i < 5; i++ {
		m.Gate(qasm.T, 0)
		m.Gate(qasm.H, 1)
		m.Gate(qasm.X, 2)
	}
	g := build(t, m)
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 3, L: 2, SIMD: true, Refill: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.Length() != 5 {
		t.Errorf("3 disjoint chains on k=3 l=2: %d steps, want 5", s.Length())
	}
}

// TestDTooSmallForGateErrors pins the fix for a verifier-found bug: the
// pinned-path and deadlock-avoidance placements used to skip the d
// budget, so a 2-qubit gate landed in a d=1 region and produced an
// illegal schedule. Infeasible d must error instead.
func TestDTooSmallForGateErrors(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.CNOT, 0, 1)
	g := build(t, m)
	for _, opts := range []lpfs.Options{
		{K: 2, D: 1},
		{K: 1, D: 1, NoOptions: true}, // forced-placement path
		{K: 2, D: 1, SIMD: true, Refill: true},
	} {
		s, err := lpfs.Schedule(m, g, opts)
		if err == nil {
			t.Errorf("opts %+v: accepted a 2-qubit gate with d=1: %d steps", opts, s.Length())
		}
	}
	// A d that fits still schedules and validates.
	s, err := lpfs.Schedule(m, g, lpfs.Options{K: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: LPFS schedules are always valid and bounded by cp and op
// count, across option combinations.
func TestScheduleValidityQuick(t *testing.T) {
	f := func(seed int64, kRaw, optRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 1
		opts := lpfs.Options{K: k}
		switch optRaw % 4 {
		case 0:
			opts.SIMD, opts.Refill = true, true
		case 1:
			opts.SIMD, opts.NoOptions = true, true
		case 2:
			opts.Refill, opts.NoOptions = true, true
		default:
			opts.NoOptions = true
		}
		if k > 1 && optRaw%8 >= 4 {
			opts.L = 2
		}
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 50, Qubits: 6})
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		s, err := lpfs.Schedule(m, g, opts)
		if err != nil {
			return false
		}
		if s.Validate(g) != nil {
			return false
		}
		return s.Length() >= g.CriticalPath() && s.Length() <= len(m.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
