package lpfs_test

import (
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

func TestDecisionLogRecordsRefill(t *testing.T) {
	// Two disjoint 3-op chains at k=1 with Refill: the pinned region
	// exhausts the first chain, then refills with the second.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	for i := 0; i < 3; i++ {
		m.Gate(qasm.T, 0)
	}
	for i := 0; i < 3; i++ {
		m.Gate(qasm.S, 1)
	}
	g := build(t, m)

	plain, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, Refill: true})
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewDecisionLog(obs.LevelOp)
	logged, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, Refill: true, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Steps, logged.Steps) {
		t.Fatal("decision logging changed the schedule")
	}
	if got := log.CountReason(obs.ReasonRefill); got == 0 {
		t.Error("no refill recorded for two disjoint chains at k=1")
	}
	for _, d := range log.Entries() {
		if d.Scheduler != "lpfs" || d.Module != "m" {
			t.Fatalf("bad decision identity: %+v", d)
		}
	}
}

func TestDecisionLogRecordsDBudget(t *testing.T) {
	// 10 parallel H at k=1, d=3 with SIMD fill: the pinned head takes one
	// qubit and the free fill stops at the budget, deferring the rest.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 10}})
	for i := 0; i < 10; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	log := obs.NewDecisionLog(obs.LevelOp)
	if _, err := lpfs.Schedule(m, g, lpfs.Options{K: 1, D: 3, Log: log}); err != nil {
		t.Fatal(err)
	}
	if got := log.CountReason(obs.ReasonDBudget); got == 0 {
		t.Error("no d-budget deferrals recorded at d=3 with 10 ready ops")
	}
}

func TestDecisionLogOffRecordsNothing(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	log := obs.NewDecisionLog(obs.LevelOff)
	if _, err := lpfs.Schedule(m, g, lpfs.Options{K: 2, Log: log}); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 0 {
		t.Errorf("LevelOff log has %d entries", log.Len())
	}
}

func TestAdapterConfigIgnoresLog(t *testing.T) {
	base := lpfs.New(lpfs.Options{L: 2, SIMD: true})
	logged := base.WithDecisionLog(obs.NewDecisionLog(obs.LevelStep))
	cfg, ok := logged.(interface{ Config() string })
	if !ok {
		t.Fatal("WithDecisionLog result lost the Config method")
	}
	if base.Config() != cfg.Config() {
		t.Errorf("cache key differs with logging: %q vs %q", base.Config(), cfg.Config())
	}
}
