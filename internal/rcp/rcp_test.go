package rcp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func build(t *testing.T, m *ir.Module) *dag.Graph {
	t.Helper()
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyModule(t *testing.T) {
	m := ir.NewModule("empty", nil, nil)
	g := build(t, m)
	s, err := rcp.Schedule(m, g, rcp.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 0 {
		t.Errorf("length %d", s.Length())
	}
}

func TestRejectsBadK(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Gate(qasm.H, 0)
	g := build(t, m)
	if _, err := rcp.Schedule(m, g, rcp.Options{K: 0}); err == nil {
		t.Error("accepted k=0")
	}
}

func TestSIMDGrouping(t *testing.T) {
	// 8 independent H gates group into one region-step with k=1.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 8}})
	for i := 0; i < 8; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	s, err := rcp.Schedule(m, g, rcp.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 1 {
		t.Errorf("8 parallel H took %d steps", s.Length())
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMixedTypesNeedRegionsOrSteps(t *testing.T) {
	// 4 H and 4 X, all independent: k=2 fits both groups in one step,
	// k=1 needs two.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 8}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	for i := 4; i < 8; i++ {
		m.Gate(qasm.X, i)
	}
	g := build(t, m)
	s2, err := rcp.Schedule(m, g, rcp.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Length() != 1 {
		t.Errorf("k=2: %d steps", s2.Length())
	}
	s1, err := rcp.Schedule(m, g, rcp.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Length() != 2 {
		t.Errorf("k=1: %d steps", s1.Length())
	}
}

func TestDistinctAnglesDoNotGroup(t *testing.T) {
	// Table 2: Rz with different angles cannot share a region-step.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Rot(qasm.Rz, float64(i)+0.5, i)
	}
	g := build(t, m)
	s, err := rcp.Schedule(m, g, rcp.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 2 {
		t.Errorf("4 distinct rotations on k=2 took %d steps, want 2", s.Length())
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestDLimitRespected(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 10}})
	for i := 0; i < 10; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	s, err := rcp.Schedule(m, g, rcp.Options{K: 1, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 4 { // ceil(10/3)
		t.Errorf("steps = %d, want 4", s.Length())
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityPreference(t *testing.T) {
	// Two serial chains on distinct qubits: with k=2 and w_dist at
	// work, each chain should stay in one region (minimizing movement).
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	for i := 0; i < 6; i++ {
		m.Gate(qasm.T, 0)
		m.Gate(qasm.H, 1)
	}
	g := build(t, m)
	s, err := rcp.Schedule(m, g, rcp.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Count region switches per qubit.
	reg := s.RegionOf()
	at := s.StepOf()
	switches := 0
	lastRegion := map[int]int32{}
	type ev struct {
		step int32
		reg  int32
	}
	perQubit := map[int][]ev{}
	for op := range m.Ops {
		for _, slot := range m.Ops[op].Args {
			perQubit[slot] = append(perQubit[slot], ev{at[int32(op)], reg[int32(op)]})
		}
	}
	for _, evs := range perQubit {
		for i := 1; i < len(evs); i++ {
			if evs[i].reg != evs[i-1].reg {
				switches++
			}
		}
	}
	_ = lastRegion
	if switches > 2 {
		t.Errorf("chains ping-pong between regions: %d switches", switches)
	}
}

// TestDTooSmallForGateErrors pins the infeasibility contract: a machine
// whose d cannot fit a gate's operands must yield an error, never an
// illegal schedule.
func TestDTooSmallForGateErrors(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.CNOT, 0, 1)
	g := build(t, m)
	if _, err := rcp.Schedule(m, g, rcp.Options{K: 2, D: 1}); err == nil {
		t.Error("d=1 accepted a 2-qubit gate")
	}
	s, err := rcp.Schedule(m, g, rcp.Options{K: 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
}

// Property: RCP schedules are always valid, never beat the critical
// path, and never exceed the op count.
func TestScheduleValidityQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 1
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 50, Qubits: 6})
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		s, err := rcp.Schedule(m, g, rcp.Options{K: k})
		if err != nil {
			return false
		}
		if s.Validate(g) != nil {
			return false
		}
		return s.Length() >= g.CriticalPath() && s.Length() <= len(m.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: more regions never hurt (monotone non-increasing length).
func TestMonotoneInKQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 40, Qubits: 5})
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		prev := -1
		for _, k := range []int{1, 2, 4} {
			s, err := rcp.Schedule(m, g, rcp.Options{K: k})
			if err != nil {
				return false
			}
			if prev >= 0 && s.Length() > prev+prev/4+2 {
				// Greedy schedulers are not strictly monotone, but a
				// large regression signals a bug.
				return false
			}
			prev = s.Length()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
