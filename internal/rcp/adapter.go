package rcp

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Scheduler adapts the RCP algorithm to the schedule.Scheduler
// interface. The zero value runs the paper's default weights; Opts
// carries tuning for ablations (its K and D fields are ignored — the
// interface call supplies them).
type Scheduler struct {
	Opts Options
}

// New returns an RCP scheduler with the given tuning.
func New(opts Options) Scheduler { return Scheduler{Opts: opts} }

// Name implements schedule.Scheduler.
func (s Scheduler) Name() string { return "rcp" }

// String renders the scheduler for diagnostics and reports.
func (s Scheduler) String() string { return s.Name() }

// Config renders the tuning knobs canonically, for cache keys. The
// decision log is dropped first: logging never changes the schedule, so
// a logging and a non-logging run must share cache entries (and a
// pointer's address would poison the key anyway).
func (s Scheduler) Config() string {
	o := s.Opts
	o.Log = nil
	return fmt.Sprintf("rcp%+v", o)
}

// WithDecisionLog returns a copy of the scheduler that records its
// placement decisions into l (see Options.Log).
func (s Scheduler) WithDecisionLog(l *obs.DecisionLog) schedule.Scheduler {
	s.Opts.Log = l
	return s
}

// DecisionLog returns the attached introspection log (nil when none),
// so callers like the service engine can stamp per-request context on
// it without knowing the scheduler's concrete type.
func (s Scheduler) DecisionLog() *obs.DecisionLog { return s.Opts.Log }

// Schedule implements schedule.Scheduler.
func (s Scheduler) Schedule(m *ir.Module, g *dag.Graph, k, d int) (*schedule.Schedule, error) {
	o := s.Opts
	o.K, o.D = k, d
	return Schedule(m, g, o)
}

func init() { schedule.Register(Scheduler{}) }
