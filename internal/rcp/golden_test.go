package rcp_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// update rewrites the golden schedule digests instead of comparing:
//
//	go test ./internal/rcp -run TestScheduleCorpusGolden -update
var update = flag.Bool("update", false, "rewrite testdata/corpus_digests.json")

// TestScheduleCorpusGolden pins RCP's output bit-for-bit across a seeded
// random-leaf corpus: any rewrite of the scheduler's internals (scratch
// buffers, dense state) must reproduce exactly these schedules. The
// digests were generated from the pre-refactor map-allocating
// implementation.
func TestScheduleCorpusGolden(t *testing.T) {
	got := map[string]string{}
	for seed := int64(0); seed < 25; seed++ {
		for _, cfg := range []struct {
			k, d int
			wide bool
		}{
			{k: 1, d: 0}, {k: 2, d: 0}, {k: 4, d: 0},
			{k: 4, d: 3}, {k: 4, d: 3, wide: true},
		} {
			rng := rand.New(rand.NewSource(seed))
			m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 60, Qubits: 6, Wide: cfg.wide})
			g, err := dag.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			s, err := rcp.Schedule(m, g, rcp.Options{K: cfg.k, D: cfg.d})
			if err != nil {
				t.Fatalf("seed %d k=%d d=%d: %v", seed, cfg.k, cfg.d, err)
			}
			key := fmt.Sprintf("seed%d/k%d/d%d/wide%t", seed, cfg.k, cfg.d, cfg.wide)
			got[key] = fmt.Sprintf("%016x", verify.ScheduleDigest(s))
		}
	}
	path := filepath.Join("testdata", "corpus_digests.json")
	if *update {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("corpus size drifted: golden has %d entries, run produced %d", len(want), len(got))
	}
	for key, d := range got {
		if want[key] != d {
			t.Errorf("%s: digest %s, golden %s — schedule changed", key, d, want[key])
		}
	}
}
