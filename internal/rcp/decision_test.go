package rcp_test

import (
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func TestDecisionLogRecordsChosenAndDBudget(t *testing.T) {
	// 10 parallel H at k=1, d=3: 4 steps, each a Chosen pick, and the
	// over-budget ops of each step get d-budget deferrals.
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 10}})
	for i := 0; i < 10; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)

	plain, err := rcp.Schedule(m, g, rcp.Options{K: 1, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewDecisionLog(obs.LevelOp)
	logged, err := rcp.Schedule(m, g, rcp.Options{K: 1, D: 3, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Steps, logged.Steps) {
		t.Fatal("decision logging changed the schedule")
	}
	if got := log.CountReason(obs.ReasonChosen); got != 4 {
		t.Errorf("Chosen count = %d, want 4 (one per step)", got)
	}
	if got := log.CountReason(obs.ReasonDBudget); got == 0 {
		t.Error("no d-budget deferrals recorded at d=3 with 10 ready ops")
	}
	for _, d := range log.Entries() {
		if d.Scheduler != "rcp" || d.Module != "m" {
			t.Fatalf("bad decision identity: %+v", d)
		}
	}
}

func TestDecisionLogStepLevelSkipsOpDetail(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 10}})
	for i := 0; i < 10; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	log := obs.NewDecisionLog(obs.LevelStep)
	if _, err := rcp.Schedule(m, g, rcp.Options{K: 1, D: 3, Log: log}); err != nil {
		t.Fatal(err)
	}
	if got := log.CountReason(obs.ReasonDBudget); got != 0 {
		t.Errorf("LevelStep recorded %d op-level deferrals", got)
	}
	if got := log.CountReason(obs.ReasonChosen); got != 4 {
		t.Errorf("Chosen count = %d, want 4", got)
	}
}

func TestAdapterConfigIgnoresLog(t *testing.T) {
	base := rcp.New(rcp.Options{WOp: 2, ExplicitWeights: true})
	logged := base.WithDecisionLog(obs.NewDecisionLog(obs.LevelOp))
	cfg, ok := logged.(interface{ Config() string })
	if !ok {
		t.Fatal("WithDecisionLog result lost the Config method")
	}
	if base.Config() != cfg.Config() {
		t.Errorf("cache key differs with logging: %q vs %q", base.Config(), cfg.Config())
	}
}

func TestAdapterWithDecisionLogRecords(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	g := build(t, m)
	log := obs.NewDecisionLog(obs.LevelStep)
	s := rcp.New(rcp.Options{}).WithDecisionLog(log)
	if _, err := s.(schedule.Scheduler).Schedule(m, g, 2, 0); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Error("adapter-injected log recorded nothing")
	}
}
