package rcp

import (
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// BenchmarkSchedule exercises the auction inner loop — prevalence map,
// locality counts and candidate list now live in hoisted scratch buffers,
// so allocs/op tracks only the schedule being built.
func BenchmarkSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 2000, Qubits: 12})
	g, err := dag.Build(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(m, g, Options{K: 4, D: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
