// Package rcp implements the paper's Ready Critical Path scheduler
// (Algorithm 1), extended for the Multi-SIMD execution model.
//
// RCP keeps a ready list — only ops whose dependencies are all satisfied —
// and, at every timestep, repeatedly picks the (SIMD region, operation
// type) pair of maximum weight until regions run out:
//
//	weight = w_op·prevalence(optype) + w_dist·locality(op, region) − w_slack·slack(op)
//
// prevalence groups qubits to expose data parallelism, locality counts
// operands already resident in the candidate region (movement cost), and
// slack demotes ops whose next use is far away. All scheduled ops of the
// chosen type land in the chosen region in one step.
package rcp

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Options configures the scheduler. The paper's experiments use the zero
// Weights value (all weights 1) and D = 0 (d = ∞).
type Options struct {
	K int // number of SIMD regions (required, >= 1)
	D int // data parallelism per region; 0 = unbounded

	// WOp, WDist and WSlack scale the three weight terms; zero values
	// default to 1. Set a term negative to invert it (used by ablations).
	WOp    float64
	WDist  float64
	WSlack float64
	// weightsSet marks that zero weights were given explicitly.
	ExplicitWeights bool

	// Log, when non-nil, records placement decisions: each winning
	// (group, region) pick at LevelStep, plus per-op deferrals — ops of
	// the winning group dropped for the d budget, and ops that outranked
	// the winner before the slack penalty — at LevelOp. Logging never
	// changes the schedule and is excluded from cache keys; nil costs a
	// nil check per step.
	Log *obs.DecisionLog
}

func (o Options) weights() (wop, wdist, wslack float64) {
	if o.ExplicitWeights {
		return o.WOp, o.WDist, o.WSlack
	}
	wop, wdist, wslack = o.WOp, o.WDist, o.WSlack
	if wop == 0 {
		wop = 1
	}
	if wdist == 0 {
		wdist = 1
	}
	if wslack == 0 {
		wslack = 1
	}
	return
}

// Schedule runs RCP over the materialized leaf module m with dependency
// graph g.
func Schedule(m *ir.Module, g *dag.Graph, opts Options) (*schedule.Schedule, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("rcp: k must be >= 1, got %d", opts.K)
	}
	if g.M != m {
		return nil, fmt.Errorf("rcp: graph module %s does not match %s", g.M.Name, m.Name)
	}
	wop, wdist, wslack := opts.weights()
	n := g.Len()
	s := &schedule.Schedule{M: m, K: opts.K, D: opts.D}
	if n == 0 {
		return s, nil
	}
	log := opts.Log

	pending := make([]int32, n) // unsatisfied dependency counts
	for i := 0; i < n; i++ {
		pending[i] = int32(len(g.Preds[i]))
	}
	ready := g.Roots()
	loc := make([]int32, m.TotalSlots()) // qubit slot -> region, -1 = memory
	for i := range loc {
		loc[i] = -1
	}
	scheduled := 0

	// Scratch buffers hoisted out of the per-step and per-candidate
	// loops: the prevalence map is cleared (not reallocated) every
	// auction round, and the per-op locality counts reuse one k-sized
	// slice instead of allocating per ready candidate.
	prev := make(map[schedule.GroupKey]int, 16)
	counts := make([]int, opts.K)
	regionFree := make([]bool, opts.K)
	// cand weights are retained only when op-level decision logging asks
	// for them (slack-lost detection).
	type cand struct {
		op          int32
		w, wNoSlack float64
	}
	var cands []cand

	for scheduled < n {
		if len(ready) == 0 {
			return nil, fmt.Errorf("rcp: deadlock with %d/%d ops scheduled", scheduled, n)
		}
		step := schedule.Step{Regions: make([][]int32, opts.K)}
		var placed []int32
		for r := range regionFree {
			regionFree[r] = true
		}
		freeRegions := opts.K

		for freeRegions > 0 && len(ready) > 0 {
			// Prevalence of each group key in the ready list.
			clear(prev)
			for _, op := range ready {
				prev[schedule.KeyOf(m, op)]++
			}
			// Find the max-weight (op, region) pair.
			bestW := 0.0
			bestOp := int32(-1)
			bestRegion := -1
			cands = cands[:0]
			logOps := log.Enabled(obs.LevelOp)
			for _, op := range ready {
				key := schedule.KeyOf(m, op)
				base := wop*float64(prev[key]) - wslack*float64(g.Slack(op))
				// Locality: prefer the free region already holding the
				// most operands of this op, lowest region index on ties
				// (a map here would let Go's random iteration order pick
				// the winner and make schedules nondeterministic);
				// memory-resident operands fall back to the first free
				// region.
				locality := 0
				region := -1
				for r := range counts {
					counts[r] = 0
				}
				for _, slot := range m.Ops[op].Args {
					if r := loc[slot]; r >= 0 && regionFree[r] {
						counts[r]++
					}
				}
				for r, c := range counts {
					if c > locality {
						locality = c
						region = r
					}
				}
				if region < 0 {
					for r := 0; r < opts.K; r++ {
						if regionFree[r] {
							region = r
							break
						}
					}
				}
				w := base + wdist*float64(locality)
				if logOps {
					cands = append(cands, cand{op: op, w: w, wNoSlack: w + wslack*float64(g.Slack(op))})
				}
				if bestOp < 0 || w > bestW {
					bestW = w
					bestOp = op
					bestRegion = region
				}
			}
			if bestOp < 0 {
				break
			}
			// Extract all ready ops of the winning type into the region,
			// respecting the d limit.
			key := schedule.KeyOf(m, bestOp)
			var taken []int32
			qubits := 0
			rest := ready[:0]
			for _, op := range ready {
				if schedule.KeyOf(m, op) == key {
					need := len(m.Ops[op].Args)
					if opts.D == 0 || qubits+need <= opts.D {
						taken = append(taken, op)
						qubits += need
						continue
					}
					if logOps {
						log.Record(obs.LevelOp, obs.Decision{
							Scheduler: "rcp", Module: m.Name,
							Step: len(s.Steps), Region: bestRegion, Op: op,
							Reason: obs.ReasonDBudget,
							Detail: fmt.Sprintf("needs %d qubits, %d/%d used", need, qubits, opts.D),
						})
					}
				}
				rest = append(rest, op)
			}
			ready = rest
			if log.Enabled(obs.LevelStep) {
				log.Record(obs.LevelStep, obs.Decision{
					Scheduler: "rcp", Module: m.Name,
					Step: len(s.Steps), Region: bestRegion, Op: bestOp,
					Reason: obs.ReasonChosen,
					Detail: fmt.Sprintf("weight %.3g, group of %d", bestW, len(taken)),
				})
			}
			if logOps {
				for _, c := range cands {
					if c.op != bestOp && c.w < bestW && c.wNoSlack > bestW {
						log.Record(obs.LevelOp, obs.Decision{
							Scheduler: "rcp", Module: m.Name,
							Step: len(s.Steps), Region: bestRegion, Op: c.op,
							Reason: obs.ReasonSlackLost,
							Detail: fmt.Sprintf("weight %.3g beat winner before slack (%.3g after)", c.wNoSlack, c.w),
						})
					}
				}
			}
			step.Regions[bestRegion] = taken
			placed = append(placed, taken...)
			regionFree[bestRegion] = false
			freeRegions--
			for _, op := range taken {
				for _, slot := range m.Ops[op].Args {
					loc[slot] = int32(bestRegion)
				}
			}
		}

		if len(placed) == 0 {
			return nil, fmt.Errorf("rcp: made no progress at step %d", len(s.Steps))
		}
		s.Steps = append(s.Steps, step)
		scheduled += len(placed)
		// Release children whose dependencies completed this step.
		for _, op := range placed {
			for _, child := range g.Succs[op] {
				pending[child]--
				if pending[child] == 0 {
					ready = append(ready, child)
				}
			}
		}
	}
	return s, nil
}
