// Package sema performs static semantic checks on Scaffold-lite ASTs
// before lowering: module/table consistency, call-graph acyclicity, gate
// arities, register declarations, and loop-variable scoping. Index range
// checks that depend on loop-variable values happen during lowering, when
// control flow is resolved.
package sema

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/scaffold"
)

// Check validates the program and returns the first error found.
func Check(prog *ast.Program) error {
	mods := map[string]*ast.Module{}
	for _, m := range prog.Modules {
		if _, dup := mods[m.Name]; dup {
			return fmt.Errorf("sema: %s: module %q redefined", m.Pos, m.Name)
		}
		if _, isGate := qasm.ByName(m.Name); isGate {
			return fmt.Errorf("sema: %s: module name %q shadows a built-in gate", m.Pos, m.Name)
		}
		mods[m.Name] = m
	}
	for _, m := range prog.Modules {
		if err := checkModule(mods, m); err != nil {
			return err
		}
	}
	return checkAcyclic(mods)
}

type scope struct {
	regs     map[string]regInfo
	loopVars map[string]bool
}

type regInfo struct {
	array     bool // declared with a size (even size 1 via qbit x[1])
	classical bool
}

func checkModule(mods map[string]*ast.Module, m *ast.Module) error {
	sc := &scope{regs: map[string]regInfo{}, loopVars: map[string]bool{}}
	for _, p := range m.Params {
		if _, dup := sc.regs[p.Name]; dup {
			return fmt.Errorf("sema: %s: parameter %q redeclared in module %s", p.Pos, p.Name, m.Name)
		}
		sc.regs[p.Name] = regInfo{array: p.Size > 1, classical: p.Classical}
	}
	return checkBlock(mods, m, sc, m.Body)
}

func checkBlock(mods map[string]*ast.Module, m *ast.Module, sc *scope, b *ast.Block) error {
	declared := []string{}
	defer func() {
		for _, name := range declared {
			delete(sc.regs, name)
		}
	}()
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.DeclStmt:
			if _, dup := sc.regs[st.Name]; dup {
				return fmt.Errorf("sema: %s: register %q redeclared", st.Pos, st.Name)
			}
			if sc.loopVars[st.Name] {
				return fmt.Errorf("sema: %s: register %q shadows a loop variable", st.Pos, st.Name)
			}
			if st.Size != nil {
				if err := checkExpr(sc, st.Size, st.Pos); err != nil {
					return err
				}
			}
			sc.regs[st.Name] = regInfo{array: st.Size != nil, classical: st.Classical}
			declared = append(declared, st.Name)
		case *ast.GateStmt:
			if err := checkGate(sc, st); err != nil {
				return err
			}
		case *ast.CallStmt:
			callee, ok := mods[st.Callee]
			if !ok {
				return fmt.Errorf("sema: %s: call to undefined module %q", st.Pos, st.Callee)
			}
			if len(st.Args) != len(callee.Params) {
				return fmt.Errorf("sema: %s: call to %s passes %d args, wants %d",
					st.Pos, st.Callee, len(st.Args), len(callee.Params))
			}
			for i := range st.Args {
				if err := checkQubitExpr(sc, &st.Args[i]); err != nil {
					return err
				}
			}
		case *ast.ForStmt:
			if err := checkExpr(sc, st.Lo, st.Pos); err != nil {
				return err
			}
			if err := checkExpr(sc, st.Hi, st.Pos); err != nil {
				return err
			}
			if sc.loopVars[st.Var] {
				return fmt.Errorf("sema: %s: loop variable %q shadows an outer loop variable", st.Pos, st.Var)
			}
			if _, isReg := sc.regs[st.Var]; isReg {
				return fmt.Errorf("sema: %s: loop variable %q shadows a register", st.Pos, st.Var)
			}
			sc.loopVars[st.Var] = true
			err := checkBlock(mods, m, sc, st.Body)
			delete(sc.loopVars, st.Var)
			if err != nil {
				return err
			}
		case *ast.IfStmt:
			if err := checkExpr(sc, st.Cond.L, st.Pos); err != nil {
				return err
			}
			if err := checkExpr(sc, st.Cond.R, st.Pos); err != nil {
				return err
			}
			if err := checkBlock(mods, m, sc, st.Then); err != nil {
				return err
			}
			if st.Else != nil {
				if err := checkBlock(mods, m, sc, st.Else); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("sema: unknown statement type %T", s)
		}
	}
	return nil
}

func checkGate(sc *scope, st *ast.GateStmt) error {
	op, ok := qasm.ByName(st.Name)
	if !ok {
		return fmt.Errorf("sema: %s: unknown gate %q", st.Pos, st.Name)
	}
	if len(st.Args) != op.Arity() {
		return fmt.Errorf("sema: %s: gate %s wants %d qubit operands, has %d",
			st.Pos, st.Name, op.Arity(), len(st.Args))
	}
	if op.IsRotation() != (st.Angle != nil) {
		return fmt.Errorf("sema: %s: gate %s angle mismatch", st.Pos, st.Name)
	}
	if st.Angle != nil {
		if err := checkAngle(sc, st.Angle, st.Pos); err != nil {
			return err
		}
	}
	for i := range st.Args {
		q := &st.Args[i]
		if q.IsSlice() {
			return fmt.Errorf("sema: %s: gate %s operand %s cannot be a slice", st.Pos, st.Name, q.Name)
		}
		if err := checkQubitExpr(sc, q); err != nil {
			return err
		}
		if info := sc.regs[q.Name]; info.classical && op != qasm.MeasZ {
			return fmt.Errorf("sema: %s: gate %s applied to classical register %q", st.Pos, st.Name, q.Name)
		}
	}
	return nil
}

func checkQubitExpr(sc *scope, q *ast.QubitExpr) error {
	if _, ok := sc.regs[q.Name]; !ok {
		return fmt.Errorf("sema: %s: undeclared register %q", q.Pos, q.Name)
	}
	if q.Index != nil {
		if err := checkExpr(sc, q.Index, q.Pos); err != nil {
			return err
		}
	}
	if q.SliceHi != nil {
		if err := checkExpr(sc, q.SliceHi, q.Pos); err != nil {
			return err
		}
	}
	return nil
}

// checkExpr validates an integer expression: variables must be loop
// variables in scope and no float literals may appear.
func checkExpr(sc *scope, e ast.Expr, pos scaffold.Pos) error {
	switch ex := e.(type) {
	case *ast.IntLit:
		return nil
	case *ast.FloatLit:
		return fmt.Errorf("sema: %s: float literal in integer expression", ex.Pos)
	case *ast.VarRef:
		if !sc.loopVars[ex.Name] {
			return fmt.Errorf("sema: %s: unknown variable %q (only loop variables may appear in expressions)", ex.Pos, ex.Name)
		}
		return nil
	case *ast.NegExpr:
		return checkExpr(sc, ex.E, pos)
	case *ast.BinExpr:
		if err := checkExpr(sc, ex.L, ex.Pos); err != nil {
			return err
		}
		return checkExpr(sc, ex.R, ex.Pos)
	}
	return fmt.Errorf("sema: %s: unknown expression type %T", pos, e)
}

// checkAngle validates an angle expression: float literals allowed.
func checkAngle(sc *scope, e ast.Expr, pos scaffold.Pos) error {
	switch ex := e.(type) {
	case *ast.IntLit, *ast.FloatLit:
		return nil
	case *ast.VarRef:
		if !sc.loopVars[ex.Name] {
			return fmt.Errorf("sema: %s: unknown variable %q in angle", ex.Pos, ex.Name)
		}
		return nil
	case *ast.NegExpr:
		return checkAngle(sc, ex.E, pos)
	case *ast.BinExpr:
		if err := checkAngle(sc, ex.L, ex.Pos); err != nil {
			return err
		}
		return checkAngle(sc, ex.R, ex.Pos)
	}
	return fmt.Errorf("sema: %s: unknown angle expression type %T", pos, e)
}

func checkAcyclic(mods map[string]*ast.Module) error {
	const (
		white = iota
		gray
		black
	)
	color := map[string]int{}
	var visit func(name string, from scaffold.Pos) error
	visit = func(name string, from scaffold.Pos) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("sema: %s: recursive call to module %q (quantum programs must have classical, acyclic call graphs)", from, name)
		case black:
			return nil
		}
		color[name] = gray
		var walk func(b *ast.Block) error
		walk = func(b *ast.Block) error {
			for _, s := range b.Stmts {
				switch st := s.(type) {
				case *ast.CallStmt:
					if err := visit(st.Callee, st.Pos); err != nil {
						return err
					}
				case *ast.ForStmt:
					if err := walk(st.Body); err != nil {
						return err
					}
				case *ast.IfStmt:
					if err := walk(st.Then); err != nil {
						return err
					}
					if st.Else != nil {
						if err := walk(st.Else); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}
		if err := walk(mods[name].Body); err != nil {
			return err
		}
		color[name] = black
		return nil
	}
	for name, m := range mods {
		if err := visit(name, m.Pos); err != nil {
			return err
		}
	}
	return nil
}
