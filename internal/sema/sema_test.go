package sema_test

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/parser"
	"github.com/scaffold-go/multisimd/internal/sema"
)

func check(t *testing.T, src string) error {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sema.Check(p)
}

func TestCheckAccepts(t *testing.T) {
	for name, src := range map[string]string{
		"basic": `
module f(qbit a, qbit b[2]) { CNOT(a, b[0]); }
module main() { qbit q[3]; f(q[0], q[1:3]); }`,
		"loops and ifs": `
module main() {
  qbit q[4];
  for (i = 0; i < 4; i++) {
    if (i < 2) { H(q[i]); } else { X(q[i]); }
  }
}`,
		"classical params": `
module m(qbit q, cbit c) { MeasZ(q); }
module main() { qbit q; cbit c; m(q, c); }`,
		"shadow register in block": `
module main() {
  qbit q;
  for (i = 0; i < 2; i++) { qbit t; CNOT(q, t); }
}`,
	} {
		if err := check(t, src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	cases := map[string]string{
		"redefined module":      `module m() { } module m() { }`,
		"gate-name module":      `module CNOT(qbit a, qbit b) { }`,
		"unknown callee":        `module main() { qbit q; nothere(q); }`,
		"arg count":             `module f(qbit a, qbit b) { CNOT(a,b); } module main() { qbit q; f(q); }`,
		"undeclared register":   `module main() { H(q); }`,
		"redeclared register":   `module main() { qbit q; qbit q; H(q); }`,
		"unknown gate arity":    `module main() { qbit q[2]; CNOT(q[0]); }`,
		"slice as gate operand": `module main() { qbit q[4]; H(q[0:2]); }`,
		"gate on classical":     `module main() { cbit c; H(c); }`,
		"loop var shadows":      `module main() { qbit q[4]; for (i = 0; i < 2; i++) { for (i = 0; i < 2; i++) { H(q[i]); } } }`,
		"loop var is register":  `module main() { qbit i; for (i = 0; i < 2; i++) { H(i); } }`,
		"recursion":             `module a() { b(); } module b() { a(); } module main() { a(); }`,
		"self recursion":        `module main() { main(); }`,
		"free variable":         `module main() { qbit q[4]; H(q[n]); }`,
		"float in index":        `module main() { qbit q[4]; H(q[1.5]); }`,
	}
	for name, src := range cases {
		if err := check(t, src); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		} else if !strings.HasPrefix(err.Error(), "sema:") {
			t.Errorf("%s: error not from sema: %v", name, err)
		}
	}
}

func TestBlockScoping(t *testing.T) {
	// A register declared inside a loop body is out of scope afterwards.
	err := check(t, `
module main() {
  qbit q;
  for (i = 0; i < 2; i++) { qbit t; CNOT(q, t); }
  H(t);
}`)
	if err == nil {
		t.Error("block-scoped register leaked")
	}
}

func TestCheckCondExpressions(t *testing.T) {
	if err := check(t, `
module main() {
  qbit q;
  if (1.5 < 2) { H(q); }
}`); err == nil {
		t.Error("float in condition accepted")
	}
	if err := check(t, `
module main() {
  qbit q;
  if (x < 2) { H(q); }
}`); err == nil {
		t.Error("free variable in condition accepted")
	}
}

func TestCheckAngleScoping(t *testing.T) {
	if err := check(t, `
module main() {
  qbit q;
  Rz(q, theta);
}`); err == nil {
		t.Error("free variable in angle accepted")
	}
	if err := check(t, `
module main() {
  qbit q;
  for (i = 0; i < 3; i++) { Rz(q, i * 0.5 + 1.0/4); }
}`); err != nil {
		t.Errorf("valid angle arithmetic rejected: %v", err)
	}
}

func TestCheckClassicalArgBinding(t *testing.T) {
	// Binding quantum register to classical parameter and vice versa is
	// caught during lowering; sema only checks arity — this documents
	// the division of labor.
	if err := check(t, `
module m(qbit q, cbit c) { MeasZ(q); }
module main() { qbit a; cbit b; m(a, b); }`); err != nil {
		t.Errorf("valid classical binding rejected: %v", err)
	}
}

func TestCheckSliceInCall(t *testing.T) {
	if err := check(t, `
module f(qbit x[2]) { H(x[0]); }
module main() { qbit q[8]; f(q[2:4]); }`); err != nil {
		t.Errorf("slice call rejected: %v", err)
	}
}
