package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/qasm"
)

func twoQubitLeaf(name string) *Module {
	m := NewModule(name, []Reg{{Name: "a", Size: 1}, {Name: "b", Size: 1}}, nil)
	m.Gate(qasm.H, 0).Gate(qasm.CNOT, 0, 1)
	return m
}

func TestSlotLayout(t *testing.T) {
	m := NewModule("m", []Reg{{Name: "p", Size: 3}, {Name: "q", Size: 1}}, []Reg{{Name: "anc", Size: 2}})
	if m.ParamSlots() != 4 || m.TotalSlots() != 6 || m.LocalSlots() != 2 {
		t.Fatalf("layout: %d %d %d", m.ParamSlots(), m.TotalSlots(), m.LocalSlots())
	}
	if m.SlotName(0) != "p[0]" || m.SlotName(3) != "q" || m.SlotName(5) != "anc[1]" {
		t.Errorf("names: %q %q %q", m.SlotName(0), m.SlotName(3), m.SlotName(5))
	}
	r, ok := m.RegRange("anc")
	if !ok || r != (Range{Start: 4, Len: 2}) {
		t.Errorf("anc range: %+v %v", r, ok)
	}
	if _, ok := m.RegRange("nope"); ok {
		t.Error("found nonexistent register")
	}
	added := m.AddLocal("extra", 3)
	if added != (Range{Start: 6, Len: 3}) || m.TotalSlots() != 9 {
		t.Errorf("AddLocal: %+v total=%d", added, m.TotalSlots())
	}
}

func TestValidateCatches(t *testing.T) {
	build := func(f func(p *Program)) error {
		p := NewProgram("main")
		main := NewModule("main", nil, []Reg{{Name: "q", Size: 2}})
		p.Add(main)
		f(p)
		return p.Validate()
	}
	if err := build(func(p *Program) {
		p.Modules["main"].Gate(qasm.CNOT, 0, 1)
	}); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	cases := map[string]func(p *Program){
		"slot out of range": func(p *Program) { p.Modules["main"].Gate(qasm.H, 5) },
		"negative slot":     func(p *Program) { p.Modules["main"].Gate(qasm.H, -1) },
		"arity":             func(p *Program) { p.Modules["main"].Gate(qasm.CNOT, 0) },
		"no-cloning gate":   func(p *Program) { p.Modules["main"].Gate(qasm.CNOT, 1, 1) },
		"missing callee":    func(p *Program) { p.Modules["main"].Call("ghost", Range{Start: 0, Len: 1}) },
		"arg size mismatch": func(p *Program) {
			p.Add(twoQubitLeaf("leaf"))
			p.Modules["main"].Call("leaf", Range{Start: 0, Len: 1})
		},
		"aliased call args": func(p *Program) {
			p.Add(twoQubitLeaf("leaf"))
			p.Modules["main"].Call("leaf", Range{Start: 0, Len: 1}, Range{Start: 0, Len: 1})
		},
	}
	for name, f := range cases {
		if err := build(f); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTopoAndRecursion(t *testing.T) {
	p := NewProgram("main")
	p.Add(twoQubitLeaf("leaf"))
	mid := NewModule("mid", []Reg{{Name: "x", Size: 2}}, nil)
	mid.Call("leaf", Range{Start: 0, Len: 2})
	p.Add(mid)
	main := NewModule("main", nil, []Reg{{Name: "q", Size: 2}})
	main.Call("mid", Range{Start: 0, Len: 2})
	p.Add(main)
	order, err := p.Topo()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "leaf" || order[2] != "main" {
		t.Errorf("order: %v", order)
	}
	// Introduce recursion.
	p.Modules["leaf"].Call("main")
	if _, err := p.Topo(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion not caught: %v", err)
	}
}

func TestMaterialize(t *testing.T) {
	m := NewModule("m", nil, []Reg{{Name: "q", Size: 1}})
	m.Ops = append(m.Ops, Op{Kind: GateOp, Gate: qasm.H, Args: []int{0}, Count: 5})
	m.Gate(qasm.X, 0)
	if m.MaterializedSize() != 6 {
		t.Fatalf("size %d", m.MaterializedSize())
	}
	mat, err := m.Materialize(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.Ops) != 6 {
		t.Fatalf("materialized %d ops", len(mat.Ops))
	}
	for i := 0; i < 5; i++ {
		if mat.Ops[i].Gate != qasm.H || mat.Ops[i].Count != 1 {
			t.Errorf("op %d: %+v", i, mat.Ops[i])
		}
	}
	if _, err := m.Materialize(3); err == nil {
		t.Error("limit not enforced")
	}
}

func TestInlineCall(t *testing.T) {
	p := NewProgram("main")
	leaf := NewModule("leaf", []Reg{{Name: "x", Size: 2}}, []Reg{{Name: "anc", Size: 1}})
	leaf.Gate(qasm.CNOT, 0, 2).Gate(qasm.CNOT, 1, 2)
	p.Add(leaf)
	main := NewModule("main", nil, []Reg{{Name: "q", Size: 4}})
	main.Call("leaf", Range{Start: 2, Len: 2})
	p.Add(main)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n, err := p.InlineCall(main, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(main.Ops) != 2 {
		t.Fatalf("inlined %d ops, body %d", n, len(main.Ops))
	}
	// leaf slots 0,1 -> caller 2,3; leaf local 2 -> fresh caller local 4.
	if main.Ops[0].Args[0] != 2 || main.Ops[0].Args[1] != 4 {
		t.Errorf("op0 args: %v", main.Ops[0].Args)
	}
	if main.Ops[1].Args[0] != 3 || main.Ops[1].Args[1] != 4 {
		t.Errorf("op1 args: %v", main.Ops[1].Args)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("post-inline validate: %v", err)
	}
}

func TestInlineCallWithCount(t *testing.T) {
	p := NewProgram("main")
	leaf := twoQubitLeaf("leaf")
	p.Add(leaf)
	main := NewModule("main", nil, []Reg{{Name: "q", Size: 2}})
	main.CallN("leaf", 3, Range{Start: 0, Len: 2})
	p.Add(main)
	if _, err := p.InlineCall(main, 0); err != nil {
		t.Fatal(err)
	}
	if len(main.Ops) != 6 {
		t.Fatalf("replicated body: %d ops", len(main.Ops))
	}
}

func TestInlineCallNestedCallRemap(t *testing.T) {
	p := NewProgram("main")
	p.Add(twoQubitLeaf("leaf"))
	mid := NewModule("mid", []Reg{{Name: "x", Size: 2}}, nil)
	mid.Call("leaf", Range{Start: 0, Len: 2})
	p.Add(mid)
	main := NewModule("main", nil, []Reg{{Name: "q", Size: 5}})
	main.Call("mid", Range{Start: 3, Len: 2})
	p.Add(main)
	if _, err := p.InlineCall(main, 0); err != nil {
		t.Fatal(err)
	}
	call := main.Ops[0]
	if call.Kind != CallOp || call.Callee != "leaf" {
		t.Fatalf("expected remapped call, got %+v", call)
	}
	if call.CallArgs[0] != (Range{Start: 3, Len: 2}) {
		t.Errorf("nested call range: %+v", call.CallArgs[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProgram("main")
	m := twoQubitLeaf("main")
	p.Add(m)
	c := p.Clone()
	c.Modules["main"].Ops[0].Args[0] = 1
	c.Modules["main"].Gate(qasm.X, 0)
	if m.Ops[0].Args[0] != 0 || len(m.Ops) != 2 {
		t.Error("clone shares storage with original")
	}
}

// Property: materializing any random Count assignment preserves total
// expanded size and never produces Count > 1 ops.
func TestMaterializeQuick(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 || len(counts) > 50 {
			return true
		}
		m := NewModule("m", nil, []Reg{{Name: "q", Size: 1}})
		var want int64
		for _, c := range counts {
			n := int64(c%7) + 1
			m.Ops = append(m.Ops, Op{Kind: GateOp, Gate: qasm.H, Args: []int{0}, Count: n})
			want += n
		}
		mat, err := m.Materialize(0)
		if err != nil {
			return false
		}
		if int64(len(mat.Ops)) != want {
			return false
		}
		for i := range mat.Ops {
			if mat.Ops[i].EffCount() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
