package ir

import "fmt"

// Validate checks structural well-formedness of the whole program:
// slot indices in range, gate arities respected, call argument shapes
// matching callee parameter layouts, counts positive, and an acyclic call
// graph reachable from the entry.
func (p *Program) Validate() error {
	if _, err := p.Topo(); err != nil {
		return err
	}
	for _, name := range p.Order {
		if err := p.validateModule(p.Modules[name]); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateModule(m *Module) error {
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Count < 0 {
			return fmt.Errorf("ir: %s op %d: negative count %d", m.Name, i, op.Count)
		}
		switch op.Kind {
		case GateOp:
			if err := m.validateGate(i, op); err != nil {
				return err
			}
		case CallOp:
			if err := p.validateCall(m, i, op); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ir: %s op %d: unknown op kind %d", m.Name, i, op.Kind)
		}
	}
	return nil
}

func (m *Module) validateGate(i int, op *Op) error {
	if !op.Gate.Valid() {
		return fmt.Errorf("ir: %s op %d: invalid opcode %d", m.Name, i, op.Gate)
	}
	if len(op.Args) != op.Gate.Arity() {
		return fmt.Errorf("ir: %s op %d: %s wants %d operands, has %d",
			m.Name, i, op.Gate, op.Gate.Arity(), len(op.Args))
	}
	seen := make(map[int]bool, len(op.Args))
	for _, slot := range op.Args {
		if slot < 0 || slot >= m.totalSlots {
			return fmt.Errorf("ir: %s op %d: slot %d out of range [0,%d)",
				m.Name, i, slot, m.totalSlots)
		}
		if seen[slot] {
			// No-cloning: a gate cannot take the same qubit twice.
			return fmt.Errorf("ir: %s op %d: %s repeats operand slot %d",
				m.Name, i, op.Gate, slot)
		}
		seen[slot] = true
	}
	return nil
}

func (p *Program) validateCall(m *Module, i int, op *Op) error {
	callee := p.Modules[op.Callee]
	if callee == nil {
		return fmt.Errorf("ir: %s op %d: call to missing module %q", m.Name, i, op.Callee)
	}
	total := 0
	for _, r := range op.CallArgs {
		if r.Len <= 0 || r.Start < 0 || r.Start+r.Len > m.totalSlots {
			return fmt.Errorf("ir: %s op %d: call arg range [%d,%d) out of range [0,%d)",
				m.Name, i, r.Start, r.Start+r.Len, m.totalSlots)
		}
		total += r.Len
	}
	if total != callee.ParamSlots() {
		return fmt.Errorf("ir: %s op %d: call to %s passes %d slots, callee wants %d",
			m.Name, i, op.Callee, total, callee.ParamSlots())
	}
	// No-cloning across call arguments: the concatenated ranges must not
	// alias the same caller slot twice.
	seen := make(map[int]bool, total)
	for _, r := range op.CallArgs {
		for s := r.Start; s < r.Start+r.Len; s++ {
			if seen[s] {
				return fmt.Errorf("ir: %s op %d: call to %s aliases slot %d",
					m.Name, i, op.Callee, s)
			}
			seen[s] = true
		}
	}
	return nil
}
