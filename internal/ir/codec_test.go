package ir_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func TestProgramJSONRoundTrip(t *testing.T) {
	profiles := []verify.ProgramGenOptions{
		{},
		{Depth: 3, Loops: true},
		{Wide: true, Measure: true, Loops: true},
	}
	for pi, opts := range profiles {
		for seed := int64(1); seed <= 10; seed++ {
			p := verify.RandomProgram(rand.New(rand.NewSource(seed)), opts)
			var buf bytes.Buffer
			if err := ir.WriteJSON(&buf, p); err != nil {
				t.Fatalf("profile %d seed %d: encode: %v", pi, seed, err)
			}
			q, err := ir.ReadJSON(&buf)
			if err != nil {
				t.Fatalf("profile %d seed %d: decode: %v", pi, seed, err)
			}
			if p.Fingerprint() != q.Fingerprint() {
				t.Fatalf("profile %d seed %d: fingerprint drifted through JSON: %s -> %s",
					pi, seed, p.Fingerprint(), q.Fingerprint())
			}
			if len(q.Order) != len(p.Order) {
				t.Fatalf("profile %d seed %d: module count %d -> %d", pi, seed, len(p.Order), len(q.Order))
			}
			// Register names are not fingerprinted; check them separately
			// so the encoding is lossless for diagnostics too.
			for _, name := range p.Order {
				pm, qm := p.Modules[name], q.Modules[name]
				if qm == nil {
					t.Fatalf("profile %d seed %d: module %s lost", pi, seed, name)
				}
				for s := 0; s < pm.TotalSlots(); s++ {
					if pm.SlotName(s) != qm.SlotName(s) {
						t.Fatalf("profile %d seed %d: %s slot %d renamed %s -> %s",
							pi, seed, name, s, pm.SlotName(s), qm.SlotName(s))
					}
				}
			}
		}
	}
}

func TestProgramJSONExactAngles(t *testing.T) {
	rz, ok := qasm.ByName("Rz")
	if !ok {
		t.Fatal("no Rz opcode")
	}
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 2}})
	angles := []float64{0, 1.0 / 3.0, 3.141592653589793, 2.220446049250313e-16, -0.1}
	for _, a := range angles {
		m.Rot(rz, a, 0)
	}
	p := ir.NewProgram("main")
	p.Add(m)
	var buf bytes.Buffer
	if err := ir.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ir.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range angles {
		if got := q.Modules["main"].Ops[i].Angle; got != a {
			t.Errorf("angle %v decoded as %v", a, got)
		}
	}
}

func TestProgramJSONRejects(t *testing.T) {
	cases := map[string]string{
		"bad schema":     `{"schema":99,"entry":"main","modules":[]}`,
		"no entry":       `{"schema":1,"modules":[]}`,
		"unknown gate":   `{"schema":1,"entry":"main","modules":[{"name":"main","locals":[{"name":"q","size":2}],"ops":[{"gate":"Bogus","args":[0]}]}]}`,
		"gate+callee":    `{"schema":1,"entry":"main","modules":[{"name":"main","locals":[{"name":"q","size":2}],"ops":[{"gate":"H","callee":"x","args":[0]}]}]}`,
		"empty op":       `{"schema":1,"entry":"main","modules":[{"name":"main","locals":[{"name":"q","size":2}],"ops":[{"args":[0]}]}]}`,
		"cloning":        `{"schema":1,"entry":"main","modules":[{"name":"main","locals":[{"name":"q","size":2}],"ops":[{"gate":"CNOT","args":[0,0]}]}]}`,
		"missing callee": `{"schema":1,"entry":"main","modules":[{"name":"main","locals":[{"name":"q","size":2}],"ops":[{"callee":"ghost","call_args":[[0,2]]}]}]}`,
		"duplicate":      `{"schema":1,"entry":"main","modules":[{"name":"main","ops":[]},{"name":"main","ops":[]}]}`,
	}
	for name, src := range cases {
		if _, err := ir.ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
