package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint is a content hash of a module body. Two modules with equal
// fingerprints schedule identically: the hash covers everything the
// schedulers and the communication pass observe — slot layout, operation
// sequence, gate opcodes, rotation angles, operand slots, callee names,
// call argument ranges and repetition counts — and nothing they do not
// (module and register names). It is the content-addressed key of the
// evaluation engine's characterization cache, so structurally identical
// leaves (e.g. Shor's per-angle rotation blackboxes that decompose to
// the same gate sequence) share cached schedules.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Fingerprint computes the module's content hash. It walks the ops once;
// callers that need it repeatedly should memoize (the module itself does
// not, because passes mutate bodies in place).
func (m *Module) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	// Slot layout: parameter and local register sizes, in order. Register
	// names are cosmetic; sizes define the slot space.
	u64(uint64(len(m.Params)))
	for _, p := range m.Params {
		u64(uint64(p.Size))
	}
	u64(uint64(len(m.Locals)))
	for _, l := range m.Locals {
		u64(uint64(l.Size))
	}

	u64(uint64(len(m.Ops)))
	for i := range m.Ops {
		op := &m.Ops[i]
		u64(uint64(op.Kind))
		u64(uint64(op.EffCount()))
		switch op.Kind {
		case GateOp:
			u64(uint64(op.Gate))
			u64(math.Float64bits(op.Angle))
			u64(uint64(len(op.Args)))
			for _, a := range op.Args {
				u64(uint64(a))
			}
		case CallOp:
			str(op.Callee)
			u64(uint64(len(op.CallArgs)))
			for _, r := range op.CallArgs {
				u64(uint64(r.Start))
				u64(uint64(r.Len))
			}
		}
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Fingerprint computes a whole-program content hash: the entry name plus
// every module's (name, body-fingerprint) pair in definition order.
// Module names participate here — unlike in the per-module hash — because
// call ops reference callees by name, so two programs with identical
// bodies but re-wired call graphs must not collide. It is the dedup key
// of the service daemon's singleflight layer: structurally identical
// submissions (millions of users compiling the same textbook circuit)
// hash equal and share one evaluation.
func (p *Program) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	str := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	str(p.Entry)
	for _, name := range p.Order {
		str(name)
		f := p.Modules[name].Fingerprint()
		h.Write(f[:])
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
