// Package ir defines the hierarchical quantum intermediate representation
// used by every pass in the toolflow.
//
// A Program is a set of Modules. A Module is a linear sequence of
// operations over a flat, module-local qubit slot space: parameter slots
// first, then local (ancilla) slots. Operations are either primitive gate
// applications or calls to other modules. Control flow is fully resolved
// at compile time (the paper's "deeply-analyzable" property, §3.1):
// classical loops either unroll during lowering or collapse into a Count
// multiplier on the repeated operation, which lets resource estimation
// reach paper-scale (10^12-gate) programs without materializing them.
package ir

import (
	"fmt"
	"sort"

	"github.com/scaffold-go/multisimd/internal/qasm"
)

// Reg describes a named qubit register: a parameter or a local.
type Reg struct {
	Name string
	Size int
}

// Range addresses a contiguous run of qubit slots in a module's slot space.
type Range struct {
	Start int
	Len   int
}

// OpKind distinguishes gate applications from module calls.
type OpKind uint8

const (
	// GateOp applies a quantum gate to qubit slots.
	GateOp OpKind = iota
	// CallOp invokes another module, passing slot ranges as arguments.
	CallOp
)

// Op is one operation in a module body.
//
// For GateOp: Gate, Angle and Args are meaningful; Args holds one slot
// index per gate operand. For CallOp: Callee names the target module and
// CallArgs lists caller slot ranges that, concatenated, bind to the
// callee's parameter slots in order.
//
// Count is a repetition multiplier (>= 1): the operation executes Count
// times back to back. It is how classically counted loops that do not
// index by their induction variable stay symbolic.
type Op struct {
	Kind     OpKind
	Gate     qasm.Opcode
	Angle    float64
	Args     []int
	Callee   string
	CallArgs []Range
	Count    int64
}

// EffCount returns the repetition count, treating 0 as 1 so that
// zero-valued Ops behave as single operations.
func (o *Op) EffCount() int64 {
	if o.Count <= 0 {
		return 1
	}
	return o.Count
}

// Module is one procedure: parameters, locals, and a body.
type Module struct {
	Name   string
	Params []Reg
	Locals []Reg
	Ops    []Op

	paramSlots int
	totalSlots int
	names      []string
}

// NewModule constructs a module and computes its slot layout.
func NewModule(name string, params, locals []Reg) *Module {
	m := &Module{Name: name, Params: params, Locals: locals}
	m.relayout()
	return m
}

func (m *Module) relayout() {
	m.paramSlots = 0
	for _, p := range m.Params {
		m.paramSlots += p.Size
	}
	m.totalSlots = m.paramSlots
	for _, l := range m.Locals {
		m.totalSlots += l.Size
	}
	m.names = nil
}

// ParamSlots returns the number of slots occupied by parameters.
func (m *Module) ParamSlots() int { return m.paramSlots }

// TotalSlots returns the full size of the module's qubit slot space.
func (m *Module) TotalSlots() int { return m.totalSlots }

// LocalSlots returns the number of local (ancilla) slots.
func (m *Module) LocalSlots() int { return m.totalSlots - m.paramSlots }

// AddLocal appends a local register and returns the range it occupies.
func (m *Module) AddLocal(name string, size int) Range {
	m.Locals = append(m.Locals, Reg{Name: name, Size: size})
	start := m.totalSlots
	m.totalSlots += size
	m.names = nil
	return Range{Start: start, Len: size}
}

// SlotName returns a human-readable name for a slot index, used by QASM
// emission and diagnostics.
func (m *Module) SlotName(slot int) string {
	if m.names == nil {
		m.names = make([]string, 0, m.totalSlots)
		emit := func(regs []Reg) {
			for _, r := range regs {
				if r.Size == 1 {
					m.names = append(m.names, r.Name)
					continue
				}
				for i := 0; i < r.Size; i++ {
					m.names = append(m.names, fmt.Sprintf("%s[%d]", r.Name, i))
				}
			}
		}
		emit(m.Params)
		emit(m.Locals)
	}
	if slot < 0 || slot >= len(m.names) {
		return fmt.Sprintf("slot%d", slot)
	}
	return m.names[slot]
}

// RegRange returns the slot range of the named register (parameter or
// local), or false if no such register exists.
func (m *Module) RegRange(name string) (Range, bool) {
	off := 0
	for _, p := range m.Params {
		if p.Name == name {
			return Range{Start: off, Len: p.Size}, true
		}
		off += p.Size
	}
	for _, l := range m.Locals {
		if l.Name == name {
			return Range{Start: off, Len: l.Size}, true
		}
		off += l.Size
	}
	return Range{}, false
}

// Gate appends a single gate op and returns the module for chaining.
func (m *Module) Gate(op qasm.Opcode, slots ...int) *Module {
	m.Ops = append(m.Ops, Op{Kind: GateOp, Gate: op, Args: slots, Count: 1})
	return m
}

// Rot appends a rotation gate with an angle.
func (m *Module) Rot(op qasm.Opcode, angle float64, slots ...int) *Module {
	m.Ops = append(m.Ops, Op{Kind: GateOp, Gate: op, Angle: angle, Args: slots, Count: 1})
	return m
}

// Call appends a call op.
func (m *Module) Call(callee string, args ...Range) *Module {
	m.Ops = append(m.Ops, Op{Kind: CallOp, Callee: callee, CallArgs: args, Count: 1})
	return m
}

// CallN appends a call op repeated count times.
func (m *Module) CallN(callee string, count int64, args ...Range) *Module {
	m.Ops = append(m.Ops, Op{Kind: CallOp, Callee: callee, CallArgs: args, Count: count})
	return m
}

// IsLeaf reports whether the module contains no call operations
// (paper §3.1: leaf modules are composed solely of primitive gates).
func (m *Module) IsLeaf() bool {
	for i := range m.Ops {
		if m.Ops[i].Kind == CallOp {
			return false
		}
	}
	return true
}

// Callees returns the distinct callee names, sorted.
func (m *Module) Callees() []string {
	set := map[string]bool{}
	for i := range m.Ops {
		if m.Ops[i].Kind == CallOp {
			set[m.Ops[i].Callee] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the module.
func (m *Module) Clone() *Module {
	c := &Module{
		Name:       m.Name,
		Params:     append([]Reg(nil), m.Params...),
		Locals:     append([]Reg(nil), m.Locals...),
		Ops:        make([]Op, len(m.Ops)),
		paramSlots: m.paramSlots,
		totalSlots: m.totalSlots,
	}
	for i := range m.Ops {
		o := m.Ops[i]
		o.Args = append([]int(nil), o.Args...)
		o.CallArgs = append([]Range(nil), o.CallArgs...)
		c.Ops[i] = o
	}
	return c
}

// Program is a compiled quantum program: a call DAG of modules rooted at
// Entry.
type Program struct {
	Modules map[string]*Module
	Order   []string // definition order, for deterministic iteration
	Entry   string
}

// NewProgram returns an empty program with the given entry name.
func NewProgram(entry string) *Program {
	return &Program{Modules: map[string]*Module{}, Entry: entry}
}

// Add registers a module, replacing any previous module of the same name.
func (p *Program) Add(m *Module) {
	if _, exists := p.Modules[m.Name]; !exists {
		p.Order = append(p.Order, m.Name)
	}
	p.Modules[m.Name] = m
}

// Module returns the named module or nil.
func (p *Program) Module(name string) *Module { return p.Modules[name] }

// EntryModule returns the entry module or nil.
func (p *Program) EntryModule() *Module { return p.Modules[p.Entry] }

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := NewProgram(p.Entry)
	for _, name := range p.Order {
		c.Add(p.Modules[name].Clone())
	}
	return c
}

// Topo returns module names in bottom-up topological order of the call
// graph (callees before callers), restricted to modules reachable from the
// entry. It returns an error on recursion or missing callees.
func (p *Program) Topo() ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("ir: recursive module %q", name)
		case black:
			return nil
		}
		m := p.Modules[name]
		if m == nil {
			return fmt.Errorf("ir: missing module %q", name)
		}
		color[name] = gray
		for _, callee := range m.Callees() {
			if err := visit(callee); err != nil {
				return err
			}
		}
		color[name] = black
		order = append(order, name)
		return nil
	}
	if err := visit(p.Entry); err != nil {
		return nil, err
	}
	return order, nil
}

// SetLocals replaces the module's local registers and recomputes the
// slot layout. Callers must have rewritten all op slot references to the
// new layout already (used by optimization passes like ancilla reuse).
func (m *Module) SetLocals(locals []Reg) {
	m.Locals = locals
	m.relayout()
}
