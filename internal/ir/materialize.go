package ir

import "fmt"

// ErrTooLarge is wrapped by materialization errors when expansion would
// exceed the caller's op limit.
var ErrTooLarge = fmt.Errorf("ir: materialization exceeds op limit")

// MaterializedSize returns the number of ops the module body expands to
// once Count multipliers are unrolled (calls count as one op per
// repetition).
func (m *Module) MaterializedSize() int64 {
	var n int64
	for i := range m.Ops {
		n += m.Ops[i].EffCount()
	}
	return n
}

// Materialize returns a copy of the module with every Count > 1 operation
// replicated into Count consecutive ops. limit bounds the resulting body
// size; it returns an error wrapping ErrTooLarge when exceeded.
func (m *Module) Materialize(limit int64) (*Module, error) {
	need := m.MaterializedSize()
	if limit > 0 && need > limit {
		return nil, fmt.Errorf("%w: module %s needs %d ops, limit %d", ErrTooLarge, m.Name, need, limit)
	}
	out := m.Clone()
	out.Ops = make([]Op, 0, need)
	for i := range m.Ops {
		op := m.Ops[i]
		n := op.EffCount()
		unit := op
		unit.Count = 1
		unit.Args = append([]int(nil), op.Args...)
		unit.CallArgs = append([]Range(nil), op.CallArgs...)
		for r := int64(0); r < n; r++ {
			out.Ops = append(out.Ops, unit)
		}
	}
	return out, nil
}

// ExpandCall appends the expansion of call op `call` (owned by caller)
// to dst and returns the extended slice: the callee's body remapped
// through the call's argument ranges, with callee locals added as fresh
// caller locals named with the given tag, replicated Count times. The
// callee module itself is not modified.
func (p *Program) ExpandCall(dst []Op, caller *Module, call *Op, tag int) ([]Op, error) {
	callee := p.Modules[call.Callee]
	if callee == nil {
		return dst, fmt.Errorf("ir: ExpandCall: missing module %q", call.Callee)
	}
	// Build the slot map: callee slot -> caller slot.
	slotMap := make([]int, callee.TotalSlots())
	n := 0
	for _, r := range call.CallArgs {
		for s := r.Start; s < r.Start+r.Len; s++ {
			slotMap[n] = s
			n++
		}
	}
	if n != callee.ParamSlots() {
		return dst, fmt.Errorf("ir: ExpandCall: %s->%s arg slots %d != params %d",
			caller.Name, call.Callee, n, callee.ParamSlots())
	}
	// Callee locals become fresh caller locals (ancilla are reusable
	// across inlined bodies in principle, but fresh locals keep the
	// transformation simple and correct; the resource estimator models
	// reuse separately).
	for _, l := range callee.Locals {
		r := caller.AddLocal(fmt.Sprintf("%s.%d.%s", callee.Name, tag, l.Name), l.Size)
		for s := 0; s < l.Size; s++ {
			slotMap[n] = r.Start + s
			n++
		}
	}

	reps := call.EffCount()
	for r := int64(0); r < reps; r++ {
		for j := range callee.Ops {
			op := callee.Ops[j]
			clone := op
			clone.Args = make([]int, len(op.Args))
			for k, s := range op.Args {
				clone.Args[k] = slotMap[s]
			}
			clone.CallArgs = make([]Range, 0, len(op.CallArgs))
			for _, cr := range op.CallArgs {
				clone.CallArgs = append(clone.CallArgs, remapRange(cr, slotMap)...)
			}
			dst = append(dst, clone)
		}
	}
	return dst, nil
}

// InlineCall replaces the call op at index i in caller with the callee's
// body (see ExpandCall). It returns the number of ops the call expanded
// to.
func (p *Program) InlineCall(caller *Module, i int) (int, error) {
	if i < 0 || i >= len(caller.Ops) || caller.Ops[i].Kind != CallOp {
		return 0, fmt.Errorf("ir: InlineCall: op %d of %s is not a call", i, caller.Name)
	}
	call := caller.Ops[i]
	body, err := p.ExpandCall(nil, caller, &call, i)
	if err != nil {
		return 0, err
	}
	newOps := make([]Op, 0, len(caller.Ops)-1+len(body))
	newOps = append(newOps, caller.Ops[:i]...)
	newOps = append(newOps, body...)
	newOps = append(newOps, caller.Ops[i+1:]...)
	caller.Ops = newOps
	return len(body), nil
}

// remapRange maps a contiguous callee range through the slot map,
// coalescing the image into maximal contiguous runs. Ranges that address
// a single register (the common case) stay a single range; a range that
// spans registers whose images are scattered splits into several.
func remapRange(r Range, slotMap []int) []Range {
	if r.Len == 0 {
		return nil
	}
	out := []Range{{Start: slotMap[r.Start], Len: 1}}
	for k := 1; k < r.Len; k++ {
		s := slotMap[r.Start+k]
		last := &out[len(out)-1]
		if s == last.Start+last.Len {
			last.Len++
		} else {
			out = append(out, Range{Start: s, Len: 1})
		}
	}
	return out
}
