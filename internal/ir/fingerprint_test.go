package ir

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/qasm"
)

func fpModule() *Module {
	m := NewModule("m", []Reg{{Name: "q", Size: 2}}, []Reg{{Name: "a", Size: 1}})
	m.Gate(qasm.H, 0)
	m.Rot(qasm.Rz, 0.5, 1)
	m.Ops = append(m.Ops, Op{Kind: GateOp, Gate: qasm.CNOT, Args: []int{0, 2}, Count: 3})
	return m
}

func TestFingerprintStable(t *testing.T) {
	a, b := fpModule(), fpModule()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical modules fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := fpModule()
	b := fpModule()
	b.Name = "other"
	b.Params[0].Name = "p"
	b.Locals[0].Name = "anc"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("module/register names should not affect the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpModule().Fingerprint()
	mutations := map[string]func(*Module){
		"gate":        func(m *Module) { m.Ops[0].Gate = qasm.X },
		"angle":       func(m *Module) { m.Ops[1].Angle = 0.25 },
		"arg slot":    func(m *Module) { m.Ops[0].Args = []int{1} },
		"count":       func(m *Module) { m.Ops[2].Count = 4 },
		"extra op":    func(m *Module) { m.Gate(qasm.T, 0) },
		"param size":  func(m *Module) { m.Params[0].Size = 3; m.relayout() },
		"local size":  func(m *Module) { m.Locals[0].Size = 2; m.relayout() },
		"callee name": func(m *Module) { m.Ops[2] = Op{Kind: CallOp, Callee: "f", CallArgs: []Range{{0, 2}}, Count: 3} },
	}
	for name, mutate := range mutations {
		m := fpModule()
		mutate(m)
		if m.Fingerprint() == base {
			t.Errorf("%s change not reflected in fingerprint", name)
		}
	}
}

// fpProgram is a two-module program for the program-level hash tests.
func fpProgram() *Program {
	p := NewProgram("main")
	leaf := NewModule("leaf", []Reg{{Name: "q", Size: 2}}, nil)
	leaf.Gate(qasm.H, 0)
	main := NewModule("main", nil, []Reg{{Name: "q", Size: 2}})
	main.Ops = append(main.Ops, Op{Kind: CallOp, Callee: "leaf", CallArgs: []Range{{Start: 0, Len: 2}}, Count: 1})
	p.Add(leaf)
	p.Add(main)
	return p
}

func TestProgramFingerprintStable(t *testing.T) {
	if fpProgram().Fingerprint() != fpProgram().Fingerprint() {
		t.Error("identical programs fingerprint differently")
	}
}

func TestProgramFingerprintSensitivity(t *testing.T) {
	base := fpProgram().Fingerprint()
	mutations := map[string]func(*Program){
		"entry":       func(p *Program) { p.Entry = "leaf" },
		"module body": func(p *Program) { p.Modules["leaf"].Gate(qasm.T, 1) },
		"module name": func(p *Program) {
			// Rewire leaf -> leaf2: per-module hashes are name-blind, the
			// program hash must not be (call graphs resolve by name).
			m := p.Modules["leaf"]
			m.Name = "leaf2"
			delete(p.Modules, "leaf")
			p.Modules["leaf2"] = m
			p.Order[0] = "leaf2"
			p.Modules["main"].Ops[0].Callee = "leaf2"
		},
	}
	for name, mutate := range mutations {
		p := fpProgram()
		mutate(p)
		if p.Fingerprint() == base {
			t.Errorf("%s change not reflected in program fingerprint", name)
		}
	}
}

func TestFingerprintCallArgs(t *testing.T) {
	a := fpModule()
	a.Ops[2] = Op{Kind: CallOp, Callee: "f", CallArgs: []Range{{Start: 0, Len: 2}}, Count: 1}
	b := fpModule()
	b.Ops[2] = Op{Kind: CallOp, Callee: "f", CallArgs: []Range{{Start: 1, Len: 2}}, Count: 1}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("call argument ranges should affect the fingerprint")
	}
}
