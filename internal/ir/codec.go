package ir

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/scaffold-go/multisimd/internal/qasm"
)

// CodecSchema versions the on-wire program encoding. Bump it on any
// incompatible change to the JSON shapes below; ReadJSON rejects
// schemas it does not understand.
const CodecSchema = 1

// The wire DTOs. Angles ride as float64 — encoding/json emits the
// shortest decimal that parses back to the identical bit pattern, so
// the round trip is exact (NaN/Inf are rejected by the encoder, which
// is fine: no pass produces them).
type jsonProgram struct {
	Schema  int          `json:"schema"`
	Entry   string       `json:"entry"`
	Modules []jsonModule `json:"modules"`
}

type jsonModule struct {
	Name   string    `json:"name"`
	Params []jsonReg `json:"params,omitempty"`
	Locals []jsonReg `json:"locals,omitempty"`
	Ops    []jsonOp  `json:"ops"`
}

type jsonReg struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

type jsonOp struct {
	Gate     string   `json:"gate,omitempty"` // opcode name; empty means a call
	Angle    float64  `json:"angle,omitempty"`
	Args     []int    `json:"args,omitempty"`
	Callee   string   `json:"callee,omitempty"`
	CallArgs [][2]int `json:"call_args,omitempty"` // [start, len] pairs
	Count    int64    `json:"count,omitempty"`     // omitted when 1
}

// WriteJSON serializes the program as versioned JSON. The encoding is
// lossless up to Fingerprint: ReadJSON(WriteJSON(p)) reproduces the
// identical program fingerprint (register names and definition order
// included, although only the latter is fingerprinted).
func WriteJSON(w io.Writer, p *Program) error {
	jp := jsonProgram{Schema: CodecSchema, Entry: p.Entry}
	for _, name := range p.Order {
		m := p.Modules[name]
		if m == nil {
			return fmt.Errorf("ir: program order names missing module %q", name)
		}
		jm := jsonModule{Name: m.Name, Params: regsToJSON(m.Params), Locals: regsToJSON(m.Locals), Ops: make([]jsonOp, len(m.Ops))}
		for i := range m.Ops {
			op := &m.Ops[i]
			jo := jsonOp{Args: op.Args, Callee: op.Callee}
			if op.Count > 1 {
				jo.Count = op.Count
			}
			switch op.Kind {
			case GateOp:
				jo.Gate = op.Gate.String()
				if op.Gate.IsRotation() {
					if math.IsNaN(op.Angle) || math.IsInf(op.Angle, 0) {
						return fmt.Errorf("ir: module %s op %d: unencodable angle %v", m.Name, i, op.Angle)
					}
					jo.Angle = op.Angle
				}
			case CallOp:
				for _, rr := range op.CallArgs {
					jo.CallArgs = append(jo.CallArgs, [2]int{rr.Start, rr.Len})
				}
			default:
				return fmt.Errorf("ir: module %s op %d: unknown kind %d", m.Name, i, op.Kind)
			}
			jm.Ops[i] = jo
		}
		jp.Modules = append(jp.Modules, jm)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jp)
}

// ReadJSON decodes a program written by WriteJSON, rebuilding slot
// layouts and validating the result (gate arity, no-cloning, call
// shapes, acyclicity) before returning it.
func ReadJSON(r io.Reader) (*Program, error) {
	var jp jsonProgram
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("ir: decode program: %w", err)
	}
	if jp.Schema != CodecSchema {
		return nil, fmt.Errorf("ir: program schema %d, this build reads %d", jp.Schema, CodecSchema)
	}
	if jp.Entry == "" {
		return nil, fmt.Errorf("ir: program has no entry")
	}
	p := NewProgram(jp.Entry)
	for _, jm := range jp.Modules {
		if jm.Name == "" {
			return nil, fmt.Errorf("ir: unnamed module in program")
		}
		if p.Modules[jm.Name] != nil {
			return nil, fmt.Errorf("ir: duplicate module %q", jm.Name)
		}
		m := NewModule(jm.Name, regsFromJSON(jm.Params), regsFromJSON(jm.Locals))
		m.Ops = make([]Op, len(jm.Ops))
		for i, jo := range jm.Ops {
			op := Op{Args: jo.Args, Count: jo.Count}
			if op.Count <= 0 {
				op.Count = 1
			}
			switch {
			case jo.Gate != "" && jo.Callee != "":
				return nil, fmt.Errorf("ir: module %s op %d: both gate and callee set", jm.Name, i)
			case jo.Gate != "":
				gate, ok := qasm.ByName(jo.Gate)
				if !ok {
					return nil, fmt.Errorf("ir: module %s op %d: unknown gate %q", jm.Name, i, jo.Gate)
				}
				op.Kind = GateOp
				op.Gate = gate
				op.Angle = jo.Angle
			case jo.Callee != "":
				op.Kind = CallOp
				op.Callee = jo.Callee
				for _, pair := range jo.CallArgs {
					op.CallArgs = append(op.CallArgs, Range{Start: pair[0], Len: pair[1]})
				}
			default:
				return nil, fmt.Errorf("ir: module %s op %d: neither gate nor callee", jm.Name, i)
			}
			m.Ops[i] = op
		}
		p.Add(m)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ir: decoded program invalid: %w", err)
	}
	return p, nil
}

func regsToJSON(regs []Reg) []jsonReg {
	out := make([]jsonReg, len(regs))
	for i, r := range regs {
		out[i] = jsonReg{Name: r.Name, Size: r.Size}
	}
	return out
}

func regsFromJSON(regs []jsonReg) []Reg {
	if len(regs) == 0 {
		return nil
	}
	out := make([]Reg, len(regs))
	for i, r := range regs {
		out[i] = Reg{Name: r.Name, Size: r.Size}
	}
	return out
}
