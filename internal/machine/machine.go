// Package machine models the Multi-SIMD(k,d) quantum architecture (§2.4)
// and provides an executor that replays a fine-grained schedule together
// with its communication annotations, verifying every placement invariant
// of the execution model and tallying architectural statistics (cycles,
// teleports, EPR pairs, region and scratchpad occupancy).
//
// The executor is deliberately independent of the scheduler and the
// communication pass: it re-derives qubit locations from the move lists
// alone and cross-checks them against the operations, acting as the
// integration oracle for the whole toolflow.
package machine

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Config describes one Multi-SIMD(k,d) machine instance.
type Config struct {
	// K is the number of independent SIMD operating regions (limited by
	// microwave signal count, §2.4; the paper studies 2–128).
	K int
	// D is the data parallelism per region (100–10,000 physically;
	// 0 models the paper's d = ∞).
	D int
	// LocalCapacity is the per-region scratchpad size in qubits:
	// 0 = no local memories, negative = unbounded.
	LocalCapacity int
	// NoOverlap selects the strict §4.4 boundary accounting instead of
	// the default teleportation-masking model; it must match the
	// comm.Options the Result was produced with.
	NoOverlap bool
	// EPRBandwidth caps simultaneous teleports per boundary; it must
	// match the comm.Options the Result was produced with. 0 means
	// unlimited.
	EPRBandwidth int
}

// Validate rejects ill-formed configurations.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("machine: k must be >= 1, got %d", c.K)
	}
	if c.D < 0 {
		return fmt.Errorf("machine: d must be >= 0, got %d", c.D)
	}
	return nil
}

// Stats aggregates one execution.
type Stats struct {
	Timesteps       int64
	Cycles          int64 // timesteps + movement overhead
	GateOps         int64
	QubitTouches    int64
	Teleports       int64
	LocalMoves      int64
	EPRPairs        int64
	MaxRegionQubits int // peak operated qubits in one region-step
	MaxLocalQubits  int // peak scratchpad occupancy in one region
	MaxGlobalQubits int // peak global-memory residency (touched qubits only)
}

// Execute replays schedule s with communication annotations res on the
// configured machine. It returns statistics or the first invariant
// violation.
func Execute(cfg Config, s *schedule.Schedule, res *comm.Result) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s.K > cfg.K {
		return nil, fmt.Errorf("machine: schedule uses %d regions, machine has %d", s.K, cfg.K)
	}
	if len(res.Boundaries) != len(s.Steps) {
		return nil, fmt.Errorf("machine: %d move boundaries for %d steps", len(res.Boundaries), len(s.Steps))
	}

	stats := &Stats{Timesteps: int64(len(s.Steps))}
	loc := map[int]comm.Loc{} // zero value: global memory
	localOcc := make([]int, cfg.K)
	globalOcc := 0
	seen := map[int]bool{}
	pending := map[int]int{} // in-flight movement cost per qubit
	lastUse := map[int]int{} // previous operation timestep per qubit

	track := func(slot int) {
		if !seen[slot] {
			seen[slot] = true
			globalOcc++
			if globalOcc > stats.MaxGlobalQubits {
				stats.MaxGlobalQubits = globalOcc
			}
		}
	}

	for t := range s.Steps {
		// Apply boundary moves.
		stepOverhead := 0
		boundaryTeleports := 0
		for _, mv := range res.Boundaries[t] {
			track(mv.Slot)
			cur := loc[mv.Slot]
			if cur != mv.From {
				return nil, fmt.Errorf("machine: step %d: qubit %d moves from %s but is at %s",
					t, mv.Slot, mv.From, cur)
			}
			switch mv.Kind {
			case comm.LocalMove:
				if !localMoveOK(mv.From, mv.To) {
					return nil, fmt.Errorf("machine: step %d: qubit %d local move %s -> %s crosses regions",
						t, mv.Slot, mv.From, mv.To)
				}
				stats.LocalMoves++
				pending[mv.Slot] += comm.LocalCycles
				if cfg.NoOverlap && stepOverhead < comm.LocalCycles {
					stepOverhead = comm.LocalCycles
				}
			case comm.GlobalMove:
				stats.Teleports++
				stats.EPRPairs++
				boundaryTeleports++
				pending[mv.Slot] += comm.TeleportCycles
				if cfg.NoOverlap {
					stepOverhead = comm.TeleportCycles
				}
			default:
				return nil, fmt.Errorf("machine: step %d: unknown move kind %d", t, mv.Kind)
			}
			// Occupancy transitions.
			if cur.Kind == comm.InLocal {
				localOcc[cur.Region]--
			}
			if cur.Kind == comm.InGlobal {
				// leaving global memory
				globalOcc--
			}
			if mv.To.Kind == comm.InLocal {
				r := int(mv.To.Region)
				if r < 0 || r >= cfg.K {
					return nil, fmt.Errorf("machine: step %d: qubit %d moved to scratchpad of region %d (k=%d)",
						t, mv.Slot, r, cfg.K)
				}
				localOcc[r]++
				if cfg.LocalCapacity == 0 {
					return nil, fmt.Errorf("machine: step %d: qubit %d parked in scratchpad but machine has none", t, mv.Slot)
				}
				if cfg.LocalCapacity > 0 && localOcc[r] > cfg.LocalCapacity {
					return nil, fmt.Errorf("machine: step %d: scratchpad %d over capacity (%d > %d)",
						t, r, localOcc[r], cfg.LocalCapacity)
				}
				if localOcc[r] > stats.MaxLocalQubits {
					stats.MaxLocalQubits = localOcc[r]
				}
			}
			if mv.To.Kind == comm.InGlobal {
				globalOcc++
				if globalOcc > stats.MaxGlobalQubits {
					stats.MaxGlobalQubits = globalOcc
				}
			}
			loc[mv.Slot] = mv.To
		}
		// Execute the step's operations.
		for r, ops := range s.Steps[t].Regions {
			if len(ops) == 0 {
				continue
			}
			key := schedule.KeyOf(s.M, ops[0])
			qubits := 0
			for _, op := range ops {
				if k := schedule.KeyOf(s.M, op); k != key {
					return nil, fmt.Errorf("machine: step %d region %d mixes gate types %v and %v", t, r, key, k)
				}
				stats.GateOps++
				for _, slot := range s.M.Ops[op].Args {
					track(slot)
					stats.QubitTouches++
					qubits++
					if !cfg.NoOverlap {
						if prev, used := lastUse[slot]; used {
							if stall := pending[slot] - (t - prev - 1); stall > stepOverhead {
								stepOverhead = stall
							}
						}
					}
					pending[slot] = 0
					lastUse[slot] = t
					l := loc[slot]
					if l.Kind == comm.InGlobal && res.Boundaries != nil {
						// Qubits at their first-ever use teleport in via a
						// boundary move; reaching here still in global
						// memory means the move list missed it.
						return nil, fmt.Errorf("machine: step %d region %d: operand %d still in global memory",
							t, r, slot)
					}
					if l.Kind != comm.InRegion || l.Region != int32(r) {
						return nil, fmt.Errorf("machine: step %d region %d: operand %d is at %s",
							t, r, slot, l)
					}
				}
			}
			if cfg.D > 0 && qubits > cfg.D {
				return nil, fmt.Errorf("machine: step %d region %d operates on %d qubits, d=%d",
					t, r, qubits, cfg.D)
			}
			if qubits > stats.MaxRegionQubits {
				stats.MaxRegionQubits = qubits
			}
		}
		if cfg.EPRBandwidth > 0 && boundaryTeleports > cfg.EPRBandwidth {
			waves := (boundaryTeleports + cfg.EPRBandwidth - 1) / cfg.EPRBandwidth
			stepOverhead += (waves - 1) * comm.TeleportCycles
		}
		if stepOverhead != res.Overhead[t] {
			return nil, fmt.Errorf("machine: step %d: replayed overhead %d != annotated %d",
				t, stepOverhead, res.Overhead[t])
		}
	}

	stats.Cycles = int64(len(s.Steps))
	for _, o := range res.Overhead {
		stats.Cycles += int64(o)
	}
	if stats.Cycles != res.Cycles {
		return nil, fmt.Errorf("machine: replayed cycles %d != annotated %d", stats.Cycles, res.Cycles)
	}
	if stats.Teleports != res.GlobalMoves || stats.LocalMoves != res.LocalMoves {
		return nil, fmt.Errorf("machine: replayed moves (%d global, %d local) != annotated (%d, %d)",
			stats.Teleports, stats.LocalMoves, res.GlobalMoves, res.LocalMoves)
	}
	return stats, nil
}

func localMoveOK(from, to comm.Loc) bool {
	switch {
	case from.Kind == comm.InRegion && to.Kind == comm.InLocal:
		return from.Region == to.Region
	case from.Kind == comm.InLocal && to.Kind == comm.InRegion:
		return from.Region == to.Region
	default:
		return false
	}
}
