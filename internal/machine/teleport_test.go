package machine_test

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/scaffold-go/multisimd/internal/machine"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/sim"
)

// TestTeleportationFig2 verifies the paper's Fig. 2: an arbitrary
// single-qubit state moves from the source to the destination through a
// pre-distributed EPR pair, with the source state destroyed.
func TestTeleportationFig2(t *testing.T) {
	cases := []struct {
		name   string
		prep   []qasm.Opcode
		angles []float64
	}{
		{"zero state", nil, nil},
		{"one state", []qasm.Opcode{qasm.Rx}, []float64{math.Pi}},
		{"plus state", []qasm.Opcode{qasm.Ry}, []float64{math.Pi / 2}},
		{"generic", []qasm.Opcode{qasm.Ry, qasm.Rz}, []float64{1.234, 0.567}},
		{"another", []qasm.Opcode{qasm.Rx, qasm.Rz, qasm.Ry}, []float64{2.5, -0.9, 0.3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, err := machine.TeleportProgram(tc.prep, tc.angles)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.NewState(3)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.RunProgram(prog); err != nil {
				t.Fatal(err)
			}
			// Reference: the prepared state on a single qubit.
			ref, err := sim.NewState(1)
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range tc.prep {
				if err := ref.Apply(g, tc.angles[i], 0); err != nil {
					t.Fatal(err)
				}
			}
			// Qubits 0 and 1 were measured out; the destination (qubit
			// 2) must hold the prepared state: amplitudes of |q2=b> with
			// q0=q1 at their collapsed values.
			var a0, a1 complex128
			found := false
			for low := uint64(0); low < 4 && !found; low++ {
				c0 := st.Amplitude(low)     // q2 = 0
				c1 := st.Amplitude(low | 4) // q2 = 1
				if cmplx.Abs(c0)+cmplx.Abs(c1) > 1e-6 {
					a0, a1 = c0, c1
					found = true
				}
			}
			if !found {
				t.Fatal("no support found in teleported state")
			}
			// Compare (a0, a1) with the reference state up to phase.
			r0, r1 := ref.Amplitude(0), ref.Amplitude(1)
			var phase complex128
			switch {
			case cmplx.Abs(r0) > 1e-9:
				phase = a0 / r0
			case cmplx.Abs(r1) > 1e-9:
				phase = a1 / r1
			default:
				t.Fatal("degenerate reference")
			}
			if math.Abs(cmplx.Abs(phase)-1) > 1e-9 {
				t.Fatalf("teleported state not normalized relative to reference: |phase| = %g", cmplx.Abs(phase))
			}
			if cmplx.Abs(a0-phase*r0) > 1e-9 || cmplx.Abs(a1-phase*r1) > 1e-9 {
				t.Errorf("teleported state mismatch: got (%v, %v), want phase*(%v, %v)", a0, a1, r0, r1)
			}
		})
	}
}

// TestTeleportCircuitShape pins the structure the scheduler charges 4
// cycles for.
func TestTeleportCircuitShape(t *testing.T) {
	m := machine.TeleportCircuit()
	if m.ParamSlots() != 3 {
		t.Fatalf("param slots %d", m.ParamSlots())
	}
	if len(m.Ops) != 8 {
		t.Fatalf("ops %d", len(m.Ops))
	}
	if !m.IsLeaf() {
		t.Fatal("teleport circuit must be a leaf")
	}
}

func TestTeleportProgramValidation(t *testing.T) {
	if _, err := machine.TeleportProgram([]qasm.Opcode{qasm.Rx}, nil); err == nil {
		t.Error("angle/gate mismatch accepted")
	}
	if _, err := machine.TeleportProgram([]qasm.Opcode{qasm.CNOT}, []float64{0}); err == nil {
		t.Error("two-qubit prep gate accepted")
	}
}
