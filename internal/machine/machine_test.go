package machine_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/machine"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

func TestConfigValidation(t *testing.T) {
	if err := (machine.Config{K: 0}).Validate(); err == nil {
		t.Error("accepted k=0")
	}
	if err := (machine.Config{K: 1, D: -1}).Validate(); err == nil {
		t.Error("accepted d=-1")
	}
	if err := (machine.Config{K: 4, D: 0, LocalCapacity: -1}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
}

func randomLeaf(rng *rand.Rand, nOps, nQubits int) *ir.Module {
	m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: nQubits}})
	for i := 0; i < nOps; i++ {
		switch rng.Intn(3) {
		case 0:
			m.Gate(qasm.H, rng.Intn(nQubits))
		case 1:
			a := rng.Intn(nQubits)
			b := (a + 1 + rng.Intn(nQubits-1)) % nQubits
			m.Gate(qasm.CNOT, a, b)
		default:
			m.Gate(qasm.T, rng.Intn(nQubits))
		}
	}
	return m
}

// TestExecutorAgreesWithAnalysis replays scheduler+comm output and
// verifies the executor confirms every annotation, across schedulers,
// region counts and scratchpad capacities.
func TestExecutorAgreesWithAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := randomLeaf(rng, 60, 6)
		g, err := dag.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4} {
			for _, cap := range []int{0, 1, -1} {
				var s *schedule.Schedule
				if trial%2 == 0 {
					s, err = rcp.Schedule(m, g, rcp.Options{K: k})
				} else {
					s, err = lpfs.Schedule(m, g, lpfs.Options{K: k})
				}
				if err != nil {
					t.Fatal(err)
				}
				res, err := comm.Analyze(s, comm.Options{LocalCapacity: cap})
				if err != nil {
					t.Fatal(err)
				}
				stats, err := machine.Execute(machine.Config{K: k, LocalCapacity: cap}, s, res)
				if err != nil {
					t.Fatalf("trial %d k=%d cap=%d: %v", trial, k, cap, err)
				}
				if stats.Cycles != res.Cycles || stats.Teleports != res.GlobalMoves {
					t.Fatalf("stats mismatch: %+v vs %+v", stats, res)
				}
				if stats.GateOps != int64(len(m.Ops)) {
					t.Fatalf("gate ops %d != %d", stats.GateOps, len(m.Ops))
				}
			}
		}
	}
}

func TestExecutorCatchesForgedMoves(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0).Gate(qasm.H, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rcp.Schedule(m, g, rcp.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Forge: drop all moves — operands never arrive.
	forged := *res
	forged.Boundaries = make([][]comm.Move, len(res.Boundaries))
	_, err = machine.Execute(machine.Config{K: 1}, s, &forged)
	if err == nil || !strings.Contains(err.Error(), "global memory") {
		t.Errorf("missing moves not caught: %v", err)
	}
}

func TestExecutorCatchesWrongOverhead(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.CNOT, 0, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rcp.Schedule(m, g, rcp.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forged := *res
	forged.Overhead = append([]int(nil), res.Overhead...)
	forged.Overhead[0] += 3
	forged.Cycles += 3
	if _, err := machine.Execute(machine.Config{K: 1}, s, &forged); err == nil {
		t.Error("wrong overhead not caught")
	}
}

func TestExecutorEnforcesCapacity(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.CNOT, 0, 1).Gate(qasm.T, 2).Gate(qasm.CNOT, 0, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{2}}},
	}}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{LocalCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Machine with a smaller scratchpad than the analysis assumed.
	if _, err := machine.Execute(machine.Config{K: 1, LocalCapacity: 1}, s, res); err == nil {
		t.Error("capacity overflow not caught")
	}
	// Machine with no scratchpad at all.
	if _, err := machine.Execute(machine.Config{K: 1, LocalCapacity: 0}, s, res); err == nil {
		t.Error("scratchpad use on scratchpad-less machine not caught")
	}
	// Matching machine executes fine.
	if _, err := machine.Execute(machine.Config{K: 1, LocalCapacity: 2}, s, res); err != nil {
		t.Errorf("valid execution rejected: %v", err)
	}
}

func TestExecutorEnforcesD(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 4}})
	for i := 0; i < 4; i++ {
		m.Gate(qasm.H, i)
	}
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rcp.Schedule(m, g, rcp.Options{K: 1}) // groups all 4 in one step
	if err != nil {
		t.Fatal(err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Execute(machine.Config{K: 1, D: 2}, s, res); err == nil {
		t.Error("d violation not caught")
	}
}

// Property: executor statistics are internally consistent for arbitrary
// scheduled circuits.
func TestExecutorStatsQuick(t *testing.T) {
	f := func(seed int64, kRaw uint8, localCap int8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%3) + 1
		capOpt := int(localCap % 3)
		if capOpt == 2 {
			capOpt = -1
		}
		m := randomLeaf(rng, 30, 4)
		g, err := dag.Build(m)
		if err != nil {
			return false
		}
		s, err := lpfs.Schedule(m, g, lpfs.Options{K: k})
		if err != nil {
			return false
		}
		res, err := comm.Analyze(s, comm.Options{LocalCapacity: capOpt})
		if err != nil {
			return false
		}
		stats, err := machine.Execute(machine.Config{K: k, LocalCapacity: capOpt}, s, res)
		if err != nil {
			return false
		}
		if stats.Timesteps != int64(s.Length()) || stats.EPRPairs != stats.Teleports {
			return false
		}
		if stats.MaxLocalQubits > 0 && capOpt == 0 {
			return false
		}
		var touches int64
		for i := range m.Ops {
			touches += int64(len(m.Ops[i].Args))
		}
		return stats.QubitTouches == touches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
