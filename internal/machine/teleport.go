package machine

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// TeleportCircuit returns the paper's Fig. 2 quantum-teleportation
// circuit as a leaf module: the state of parameter src transfers onto
// parameter dst through the pre-distributed EPR pair (epr0 near the
// source, epr1 = dst at the destination), using measurement and
// classically controlled X/Z corrections.
//
// The logical schedule charges this sequence as comm.TeleportCycles = 4
// timesteps: (1) the source-side CNOT, (2) the source Hadamard, (3) the
// two measurements, (4) the corrections. The returned module encodes the
// corrections as coherent controlled gates (CNOT/CZ from the measured
// qubits), the standard deferred-measurement form, so the simulator can
// verify the transfer end to end.
//
// Layout: slot 0 = src (state to move, destroyed), slot 1 = epr half at
// the source, slot 2 = dst (epr half at the destination; receives the
// state). The EPR pair is created in-circuit from |00>: H(epr0),
// CNOT(epr0, dst) — physically this happens at the global memory before
// distribution (§2.3).
func TeleportCircuit() *ir.Module {
	m := ir.NewModule("teleport", []ir.Reg{
		{Name: "src", Size: 1},
		{Name: "epr0", Size: 1},
		{Name: "dst", Size: 1},
	}, nil)
	// EPR pair preparation (pre-distribution).
	m.Gate(qasm.H, 1)
	m.Gate(qasm.CNOT, 1, 2)
	// Fig. 2: Bell measurement of src against the source EPR half...
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.H, 0)
	// ...and classically controlled corrections at the destination,
	// in deferred-measurement form.
	m.Gate(qasm.CNOT, 1, 2) // X correction controlled by the q2 outcome
	m.Gate(qasm.CZ, 0, 2)   // Z correction controlled by the q1 outcome
	// The consumed qubits are measured out and reclaimed as ancilla/EPR
	// stock (§4.4).
	m.Gate(qasm.MeasZ, 0)
	m.Gate(qasm.MeasZ, 1)
	return m
}

// TeleportProgram wraps TeleportCircuit in a standalone program whose
// entry prepares an arbitrary single-qubit state via the supplied prep
// gates on qubit 0 and teleports it to qubit 2.
func TeleportProgram(prep []qasm.Opcode, angles []float64) (*ir.Program, error) {
	if len(prep) != len(angles) {
		return nil, fmt.Errorf("machine: %d prep gates but %d angles", len(prep), len(angles))
	}
	p := ir.NewProgram("main")
	p.Add(TeleportCircuit())
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 3}})
	for i, g := range prep {
		if g.Arity() != 1 {
			return nil, fmt.Errorf("machine: prep gate %s is not single-qubit", g)
		}
		main.Rot(g, angles[i], 0)
	}
	main.Call("teleport", ir.Range{Start: 0, Len: 3})
	p.Add(main)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
