// Package reuse implements ancilla recycling on materialized leaf
// modules: local qubits with disjoint live ranges share physical slots.
//
// Flattening (ir.ExpandCall) allocates fresh locals per inlined call
// site for simplicity, which inflates a leaf's footprint well past the
// paper's Table 1 metric Q — defined with "maximal possible reuse of
// ancilla qubits across functions". This pass restores that reuse on
// the flat form: an interval-graph coloring over ancilla live ranges,
// exactly the classical register-allocation view of the paper's
// sequential-reuse model.
//
// Soundness rests on the clean-ancilla convention: every local starts
// in |0> and is returned to |0> by its last use (the discipline all
// internal/ctqg circuits follow and their tests verify). A slot is only
// reused after its previous occupant's final operation.
package reuse

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/scaffold-go/multisimd/internal/ir"
)

// Stats reports what the pass did.
type Stats struct {
	// LocalsBefore and LocalsAfter count local slots.
	LocalsBefore int
	LocalsAfter  int
	// Dropped counts locals that were never used at all.
	Dropped int
}

// Saved returns the number of local slots eliminated.
func (s Stats) Saved() int { return s.LocalsBefore - s.LocalsAfter }

// Leaf rewrites a materialized leaf module in place, remapping local
// slots so ancillae with disjoint live ranges share storage. Parameter
// slots are never touched. Returns statistics or an error if the module
// is not a materialized leaf.
func Leaf(m *ir.Module) (Stats, error) {
	params := m.ParamSlots()
	total := m.TotalSlots()
	st := Stats{LocalsBefore: total - params}
	if st.LocalsBefore == 0 {
		return st, nil
	}

	// Live ranges of local slots.
	first := make([]int, total)
	last := make([]int, total)
	for s := range first {
		first[s] = -1
	}
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Kind != ir.GateOp {
			return st, fmt.Errorf("reuse: module %s op %d is a call; flatten first", m.Name, i)
		}
		if op.EffCount() != 1 {
			return st, fmt.Errorf("reuse: module %s op %d has count %d; materialize first", m.Name, i, op.Count)
		}
		for _, s := range op.Args {
			if first[s] < 0 {
				first[s] = i
			}
			last[s] = i
		}
	}

	// Interval coloring, processing locals by first use; a min-heap of
	// (releaseOp, physSlot) recycles freed storage.
	type interval struct {
		slot        int
		first, last int
	}
	var ivs []interval
	for s := params; s < total; s++ {
		if first[s] < 0 {
			st.Dropped++
			continue
		}
		ivs = append(ivs, interval{slot: s, first: first[s], last: last[s]})
	}
	// Inlined locals are not necessarily in first-use order; sort.
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].first < ivs[b].first })

	remap := make([]int, total)
	for s := 0; s < params; s++ {
		remap[s] = s
	}
	for s := params; s < total; s++ {
		remap[s] = -1
	}
	free := &releaseHeap{}
	next := params
	for _, iv := range ivs {
		if free.Len() > 0 && (*free)[0].release < iv.first {
			slot := heap.Pop(free).(release).slot
			remap[iv.slot] = slot
			heap.Push(free, release{release: iv.last, slot: slot})
			continue
		}
		remap[iv.slot] = next
		heap.Push(free, release{release: iv.last, slot: next})
		next++
	}
	st.LocalsAfter = next - params

	// Rewrite ops and the locals table.
	for i := range m.Ops {
		args := m.Ops[i].Args
		for j, s := range args {
			if remap[s] < 0 {
				return st, fmt.Errorf("reuse: slot %d used but unmapped", s)
			}
			args[j] = remap[s]
		}
	}
	var locals []ir.Reg
	if st.LocalsAfter > 0 {
		locals = []ir.Reg{{Name: "anc", Size: st.LocalsAfter}}
	}
	m.SetLocals(locals)
	return st, nil
}

type release struct {
	release int
	slot    int
}

type releaseHeap []release

func (h releaseHeap) Len() int            { return len(h) }
func (h releaseHeap) Less(i, j int) bool  { return h[i].release < h[j].release }
func (h releaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x interface{}) { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
