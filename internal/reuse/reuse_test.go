package reuse_test

import (
	"fmt"
	"math/cmplx"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ctqg"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/reuse"
	"github.com/scaffold-go/multisimd/internal/sim"
)

func TestDisjointAncillaeShare(t *testing.T) {
	// Two ancillae with back-to-back live ranges collapse into one.
	m := ir.NewModule("m", []ir.Reg{{Name: "q", Size: 1}},
		[]ir.Reg{{Name: "a", Size: 1}, {Name: "b", Size: 1}})
	m.Gate(qasm.CNOT, 0, 1) // a live [0,1]
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.CNOT, 0, 2) // b live [2,3]
	m.Gate(qasm.CNOT, 0, 2)
	st, err := reuse.Leaf(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalsBefore != 2 || st.LocalsAfter != 1 || st.Saved() != 1 {
		t.Errorf("stats: %+v", st)
	}
	if m.TotalSlots() != 2 {
		t.Errorf("slots: %d", m.TotalSlots())
	}
	// Both pairs now target the same physical ancilla.
	if m.Ops[0].Args[1] != m.Ops[2].Args[1] {
		t.Errorf("ancillae not shared: %v vs %v", m.Ops[0].Args, m.Ops[2].Args)
	}
}

func TestOverlappingAncillaeDoNotShare(t *testing.T) {
	m := ir.NewModule("m", []ir.Reg{{Name: "q", Size: 1}},
		[]ir.Reg{{Name: "a", Size: 1}, {Name: "b", Size: 1}})
	m.Gate(qasm.CNOT, 0, 1) // a live [0,3]
	m.Gate(qasm.CNOT, 0, 2) // b live [1,2]
	m.Gate(qasm.CNOT, 0, 2)
	m.Gate(qasm.CNOT, 0, 1)
	st, err := reuse.Leaf(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalsAfter != 2 {
		t.Errorf("overlapping ancillae merged: %+v", st)
	}
	if m.Ops[0].Args[1] == m.Ops[1].Args[1] {
		t.Error("live ranges overlap but share a slot")
	}
}

func TestUnusedLocalsDropped(t *testing.T) {
	m := ir.NewModule("m", []ir.Reg{{Name: "q", Size: 1}},
		[]ir.Reg{{Name: "dead", Size: 5}})
	m.Gate(qasm.H, 0)
	st, err := reuse.Leaf(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 5 || st.LocalsAfter != 0 || m.TotalSlots() != 1 {
		t.Errorf("stats: %+v, slots %d", st, m.TotalSlots())
	}
}

func TestRejectsUnmaterialized(t *testing.T) {
	m := ir.NewModule("m", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("f", ir.Range{Start: 0, Len: 1})
	if _, err := reuse.Leaf(m); err == nil {
		t.Error("call op accepted")
	}
	m2 := ir.NewModule("m2", nil, []ir.Reg{{Name: "q", Size: 1}})
	m2.Ops = append(m2.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.H, Args: []int{0}, Count: 3})
	if _, err := reuse.Leaf(m2); err == nil {
		t.Error("counted op accepted")
	}
}

// TestReuseOnFlattenedArithmetic runs the pass over a flattened CTQG
// composite (sequential adders, each with its own inlined ancillae) and
// verifies both the footprint reduction and unchanged semantics on the
// simulator.
func TestReuseOnFlattenedArithmetic(t *testing.T) {
	const n = 3
	var sb strings.Builder
	sb.WriteString(ctqg.Adder("add", n))
	sb.WriteString(ctqg.CtrlCopy("ccopy", n))
	sb.WriteString(ctqg.CtrlAdder("cadd", "ccopy", "add", n))
	// work's parameters are the data registers; each cadd inlines a
	// fresh tmp[3] ancilla set.
	sb.WriteString("module work(qbit ctl, qbit a[3], qbit b[3], qbit cin, qbit cout) {\n")
	sb.WriteString("  cadd(ctl, a, b, cin, cout);\n")
	sb.WriteString("  cadd(ctl, a, b, cin, cout);\n}\n")
	sb.WriteString("module main() {\n  qbit ctl;\n  qbit a[3];\n  qbit b[3];\n  qbit cin;\n  qbit cout;\n")
	sb.WriteString("  X(ctl);\n  X(a[0]);\n  X(a[1]);\n  X(b[0]);\n")
	sb.WriteString("  work(ctl, a, b, cin, cout);\n}\n")

	prog, err := core.Build(sb.String(), core.PipelineOptions{SkipDecompose: true, FTh: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// Flattening turns everything into leaves; restore the call
	// structure for the test by rebuilding main around the flattened
	// work leaf (whose parameters pin the data registers).
	work := prog.Module("work")
	if work == nil || !work.IsLeaf() {
		t.Fatal("work not flattened to a leaf")
	}
	main := ir.NewModule("main", nil, []ir.Reg{
		{Name: "ctl", Size: 1}, {Name: "a", Size: 3}, {Name: "b", Size: 3},
		{Name: "cin", Size: 1}, {Name: "cout", Size: 1},
	})
	main.Gate(qasm.X, 0).Gate(qasm.X, 1).Gate(qasm.X, 2).Gate(qasm.X, 4)
	main.Call("work",
		ir.Range{Start: 0, Len: 1}, ir.Range{Start: 1, Len: 3},
		ir.Range{Start: 4, Len: 3}, ir.Range{Start: 7, Len: 1}, ir.Range{Start: 8, Len: 1})
	prog.Add(main)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}

	simQubits := 9 + work.LocalSlots()
	if simQubits > 20 {
		simQubits = 20
	}
	ref, err := sim.NewState(simQubits)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunProgram(prog); err != nil {
		t.Fatal(err)
	}

	st, err := reuse.Leaf(work)
	if err != nil {
		t.Fatal(err)
	}
	if st.Saved() < 3 {
		t.Errorf("expected at least one tmp register (3 slots) saved, got %d (stats %+v)", st.Saved(), st)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("post-reuse validate: %v", err)
	}
	if g, err := dag.Build(work); err != nil || g.Len() != len(work.Ops) {
		t.Fatalf("post-reuse dag: %v", err)
	}

	after, err := sim.NewState(simQubits)
	if err != nil {
		t.Fatal(err)
	}
	if err := after.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	refBasis := dominantBasis(t, ref)
	newBasis := dominantBasis(t, after)
	dataBits := uint64(1)<<uint(9) - 1 // main's registers occupy qubits 0..8
	if refBasis&dataBits != newBasis&dataBits {
		t.Errorf("data registers diverged: %09b vs %09b", refBasis&dataBits, newBasis&dataBits)
	}
	// a=3, b=1, ctl=1: after two controlled adds b = 1 + 3 + 3 = 7.
	bVal := (newBasis >> 4) & 7
	if bVal != 7 {
		t.Errorf("b = %d, want 7", bVal)
	}
}

func dominantBasis(t *testing.T, st *sim.State) uint64 {
	t.Helper()
	n := st.N()
	for i := uint64(0); i < 1<<uint(n); i++ {
		if cmplx.Abs(st.Amplitude(i)) > 0.999 {
			return i
		}
	}
	t.Fatal("no dominant basis state")
	return 0
}

// TestReuseNeverIncreasesAndStaysValid sweeps the flattened small
// benchmarks' leaves.
func TestReuseNeverIncreasesAndStaysValid(t *testing.T) {
	// Build one representative flattened arithmetic-heavy program.
	var sb strings.Builder
	sb.WriteString(ctqg.Adder("add", 4))
	sb.WriteString(ctqg.CtrlCopy("ccopy", 4))
	sb.WriteString(ctqg.CtrlAdder("cadd", "ccopy", "add", 4))
	sb.WriteString(ctqg.Multiplier("mul", "cadd", 4))
	sb.WriteString("module main() {\n  qbit a[4];\n  qbit b[4];\n  qbit p[8];\n  qbit cin;\n")
	sb.WriteString("  mul(a, b, p, cin);\n}\n")
	prog, err := core.Build(sb.String(), core.PipelineOptions{SkipDecompose: true, FTh: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	m := prog.EntryModule()
	before := m.LocalSlots()
	st, err := reuse.Leaf(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalsAfter > before {
		t.Errorf("reuse grew locals: %d -> %d", before, st.LocalsAfter)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("multiplier leaf: %d -> %d ancilla slots (%s)", before, st.LocalsAfter,
		fmt.Sprintf("saved %d", st.Saved()))
}
