package core_test

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ir"
)

const toySource = `
module inner(qbit x[2]) {
  H(x[0]);
  CNOT(x[0], x[1]);
  T(x[1]);
}
module main() {
  qbit q[4];
  inner(q[0:2]);
  inner(q[2:4]);
  for (i = 0; i < 100; i++) {
    inner(q[0:2]);
  }
}
`

func TestBuildPipeline(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.EntryModule() == nil {
		t.Fatal("no entry")
	}
}

func TestFrontendSkipsMidend(t *testing.T) {
	src := `module main() { qbit q[3]; Toffoli(q[0], q[1], q[2]); }`
	p, err := core.Frontend(src, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryModule().Ops[0].Gate.IsPrimitive() {
		t.Error("Frontend decomposed the Toffoli")
	}
	p2, err := core.Build(src, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.EntryModule().Ops) != 15 {
		t.Errorf("Build should decompose Toffoli to 15 gates, got %d", len(p2.EntryModule().Ops))
	}
}

func TestEvaluateMetricsConsistency(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{FTh: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Scheduler{core.RCP, core.LPFS} {
		m, err := core.Evaluate(p, core.EvalOptions{Scheduler: s, K: 2, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.TotalGates != 306 { // 3 gates x 102 invocations
			t.Errorf("%v gates = %d", s, m.TotalGates)
		}
		if m.SeqCycles != m.TotalGates || m.NaiveCycles != 5*m.TotalGates {
			t.Errorf("%v baselines: %+v", s, m)
		}
		if m.CriticalPath <= 0 || m.CriticalPath > m.SeqCycles {
			t.Errorf("%v cp = %d", s, m.CriticalPath)
		}
		if m.ZeroCommSteps < m.CriticalPath/2 {
			t.Errorf("%v steps %d below half cp %d (impossible)", s, m.ZeroCommSteps, m.CriticalPath)
		}
		if m.CommCycles < m.ZeroCommSteps {
			t.Errorf("%v comm %d < steps %d", s, m.CommCycles, m.ZeroCommSteps)
		}
		if m.SpeedupVsSeq() <= 0 || m.SpeedupVsNaive() <= 0 {
			t.Errorf("%v speedups: %g %g", s, m.SpeedupVsSeq(), m.SpeedupVsNaive())
		}
	}
}

func TestEvaluateLocalMemoryNeverHurts(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{FTh: 50})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	withLocal, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4, Comm: comm.Options{LocalCapacity: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if withLocal.CommCycles > base.CommCycles {
		t.Errorf("local memory hurt: %d > %d", withLocal.CommCycles, base.CommCycles)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := core.Table2(6, []int{1, 2, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	ks := res.SortedKs()
	if len(ks) != 4 {
		t.Fatalf("ks: %v", ks)
	}
	// Steps must shrink monotonically with k and k=6 must beat k=1 by
	// roughly the rotation count.
	prev := int64(1 << 62)
	for _, k := range ks {
		if res.StepsAtK[k] > prev {
			t.Errorf("k=%d regressed: %d > %d", k, res.StepsAtK[k], prev)
		}
		prev = res.StepsAtK[k]
	}
	if res.StepsAtK[1] < 3*res.StepsAtK[6] {
		t.Errorf("serialization too weak: k=1 %d vs k=6 %d", res.StepsAtK[1], res.StepsAtK[6])
	}
}

func TestEmitAndParseQASM(t *testing.T) {
	p, err := core.Build(`
module f(qbit x[2]) { CNOT(x[0], x[1]); }
module main() {
  qbit q[2];
  H(q[0]);
  f(q);
  Rz(q[1], 0.785398163397448);
}
`, core.PipelineOptions{SkipDecompose: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	n, err := core.EmitQASM(&sb, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("emitted %d instructions", n)
	}
	text := sb.String()
	for _, want := range []string{"qubit q[0]", "H(q[0])", "CNOT(q[0],q[1])", "Rz(q[1],"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	back, err := core.ParseQASM(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(back.EntryModule().Ops); got != 3 {
		t.Errorf("parsed %d ops", got)
	}
}

func TestEmitQASMLimit(t *testing.T) {
	p, err := core.Build(`
module main() {
  qbit q;
  for (i = 0; i < 1000000; i++) { T(q); }
}
`, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := core.EmitQASM(&sb, p, 100); err == nil {
		t.Error("limit not enforced")
	}
}

func TestEmitQASMAncillaNames(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, []ir.Reg{{Name: "a", Size: 1}})
	leaf.Gate(0 /* X */, 1)
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Call("leaf", ir.Range{Start: 0, Len: 1})
	main.Call("leaf", ir.Range{Start: 0, Len: 1})
	p.Add(main)
	var sb strings.Builder
	if _, err := core.EmitQASM(&sb, p, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "anc0") || !strings.Contains(sb.String(), "anc1") {
		t.Errorf("ancilla naming: %s", sb.String())
	}
}

func TestExperimentDriversRunOnToy(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{FTh: 50})
	if err != nil {
		t.Fatal(err)
	}
	unflat, err := core.Build(toySource, core.PipelineOptions{SkipFlatten: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := []core.Workload{{Name: "toy", Params: "-", Prog: p}}
	wsUnflat := []core.Workload{{Name: "toy", Params: "-", Prog: unflat}}
	if rows, err := core.Fig5(wsUnflat, 1000); err != nil || len(rows) != 1 {
		t.Errorf("fig5: %v", err)
	}
	if rows, err := core.Fig6(ws); err != nil || len(rows) != 1 {
		t.Errorf("fig6: %v", err)
	} else if rows[0].RCP4 <= 0 || rows[0].CP <= 0 {
		t.Errorf("fig6 row: %+v", rows[0])
	}
	if rows, err := core.Fig7(ws); err != nil || len(rows) != 1 {
		t.Errorf("fig7: %v", err)
	}
	if rows, err := core.Fig8(ws); err != nil || len(rows) != 1 {
		t.Errorf("fig8: %v", err)
	} else {
		r := rows[0]
		if r.LPFS[3] < r.LPFS[0] {
			t.Errorf("fig8: infinite local memory hurt: %+v", r)
		}
	}
	if rows, err := core.Fig9(core.Workload{Name: "toy", Prog: p}); err != nil || len(rows) == 0 {
		t.Errorf("fig9: %v", err)
	}
	if rows, err := core.Table1(ws); err != nil || len(rows) != 1 || rows[0].Q <= 0 {
		t.Errorf("table1: %v", err)
	}
}

func TestAncillaReuseOption(t *testing.T) {
	src := `
module f(qbit x) {
  qbit anc[4];
  CNOT(x, anc[0]);
  CNOT(x, anc[0]);
  CNOT(x, anc[1]);
  CNOT(x, anc[1]);
}
module main() {
  qbit q;
  f(q);
  f(q);
}`
	plain, err := core.Build(src, core.PipelineOptions{FTh: 1000})
	if err != nil {
		t.Fatal(err)
	}
	reused, err := core.Build(src, core.PipelineOptions{FTh: 1000, AncillaReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	p0 := plain.EntryModule().TotalSlots()
	p1 := reused.EntryModule().TotalSlots()
	if p1 >= p0 {
		t.Errorf("ancilla reuse did not shrink footprint: %d -> %d", p0, p1)
	}
	// Both inlined f bodies use 4 ancillae, live ranges sequential and
	// pairwise disjoint: the whole program needs q + 1 shared ancilla.
	if p1 != 2 {
		t.Errorf("reused footprint %d, want 2", p1)
	}
	if err := reused.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseQASMErrors(t *testing.T) {
	if _, err := core.ParseQASM(strings.NewReader("qubit q\nqubit q\n")); err == nil {
		t.Error("duplicate qubit accepted")
	}
	if _, err := core.ParseQASM(strings.NewReader("H q\n")); err == nil {
		t.Error("malformed instruction accepted")
	}
	// Implicit ancillae declare on first use.
	p, err := core.ParseQASM(strings.NewReader("qubit q\nCNOT(q,anc7)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryModule().TotalSlots() != 2 {
		t.Errorf("slots: %d", p.EntryModule().TotalSlots())
	}
}

func TestBuildSources(t *testing.T) {
	lib := `module helper(qbit x) { H(x); }`
	mainSrc := `module main() { qbit q; helper(q); }`
	p, err := core.BuildSources(core.PipelineOptions{}, lib, mainSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildSourcesErrorPositions pins the fragment-relative diagnostics:
// each fragment parses on its own, so an error in fragment 2 reports
// fragment 2's line numbers, not positions shifted by fragment 1's
// length (the old bare-"\n" concatenation mangled them).
func TestBuildSourcesErrorPositions(t *testing.T) {
	lib := "module helper(qbit x) {\n  H(x);\n}\n\nmodule helper2(qbit x) {\n  X(x);\n}\n"
	bad := "module main() {\n  qbit q;\n  !!!;\n}\n"
	_, err := core.BuildSources(core.PipelineOptions{}, lib, bad)
	if err == nil {
		t.Fatal("syntax error in fragment 2 not reported")
	}
	if !strings.Contains(err.Error(), "fragment 2") {
		t.Errorf("error does not name the fragment: %v", err)
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error position not relative to its fragment (want line 3): %v", err)
	}
	if strings.Contains(err.Error(), "10:") {
		t.Errorf("error position shifted by preceding fragment: %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on bad source")
		}
	}()
	core.MustBuild("not a program", core.PipelineOptions{})
}

func TestEvaluateErrors(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Evaluate(p, core.EvalOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := core.SchedulerByName("no-such-algorithm"); err == nil {
		t.Error("unknown scheduler name accepted")
	}
	if _, err := core.Evaluate(p, core.EvalOptions{K: 2, MaterializeLimit: 3}); err == nil {
		t.Error("tiny materialize limit accepted")
	}
}
