package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs"
)

// TestEvaluateObservability is the acceptance check that the metrics
// snapshot agrees with the Metrics Evaluate returns, and that the trace
// a run emits is well-formed Chrome trace-event JSON.
func TestEvaluateObservability(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["Grovers"]
	if p == nil {
		t.Fatal("no Grovers workload")
	}
	o := &obs.Observer{
		Trace:     obs.NewTracer(),
		Metrics:   obs.NewRegistry(),
		Decisions: obs.NewDecisionLog(obs.LevelOp),
	}
	cache := core.NewEvalCache()
	opts := core.EvalOptions{
		Scheduler: core.WithDecisionLog(core.LPFS, o.Decisions),
		K:         4,
		Cache:     cache,
		Obs:       o,
	}
	m, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	r := o.Metrics
	for _, g := range []struct {
		name string
		want int64
	}{
		{"eval.total_gates", m.TotalGates},
		{"eval.min_qubits", m.MinQubits},
		{"eval.modules", int64(m.Modules)},
		{"eval.leaves", int64(m.Leaves)},
		{"eval.critical_path", m.CriticalPath},
		{"eval.zero_comm_steps", m.ZeroCommSteps},
		{"eval.comm_cycles", m.CommCycles},
		{"eval.global_moves", m.GlobalMoves},
		{"eval.local_moves", m.LocalMoves},
	} {
		if got := r.Gauge(g.name).Value(); got != g.want {
			t.Errorf("gauge %s = %d, want %d (reported Metrics)", g.name, got, g.want)
		}
	}
	st := cache.Stats()
	for _, c := range []struct {
		name string
		want int64
	}{
		{"eval_cache.comm.hits", st.CommHits},
		{"eval_cache.comm.misses", st.CommMisses},
		{"eval_cache.sched.hits", st.SchedHits},
		{"eval_cache.sched.misses", st.SchedMisses},
		{"eval_cache.cp.hits", st.CPHits},
		{"eval_cache.cp.misses", st.CPMisses},
	} {
		if got := r.Counter(c.name).Value(); got != c.want {
			t.Errorf("counter %s = %d, want %d (cache.Stats())", c.name, got, c.want)
		}
	}
	if r.Counter("sched.fresh").Value() == 0 {
		t.Error("cold run characterized no fresh schedules")
	}

	if o.Decisions.Len() == 0 {
		t.Error("LevelOp decision log recorded nothing")
	}

	var buf bytes.Buffer
	if _, err := o.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("malformed trace: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.PID != 1 {
			t.Fatalf("event %q has pid %d, want 1", ev.Name, ev.PID)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"evaluate", "characterize-leaves", "compose"} {
		if !seen[want] {
			t.Errorf("trace lacks the %q engine span", want)
		}
	}
}

// TestEngineObservabilityRace runs the fully instrumented engine with a
// wide worker pool, twice per scheduler so warm cache paths count too.
// Its value is under -race in CI: every tracer, registry and decision
// write races against seven siblings unless properly synchronized.
func TestEngineObservabilityRace(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["SHA-1"]
	if p == nil {
		t.Fatal("no SHA-1 workload")
	}
	for _, sched := range []core.Scheduler{core.RCP, core.LPFS} {
		o := &obs.Observer{
			Trace:     obs.NewTracer(),
			Metrics:   obs.NewRegistry(),
			Decisions: obs.NewDecisionLog(obs.LevelOp),
		}
		opts := core.EvalOptions{
			Scheduler: core.WithDecisionLog(sched, o.Decisions),
			K:         4,
			Comm:      comm.Options{LocalCapacity: -1},
			Workers:   8,
			Cache:     core.NewEvalCache(),
			Obs:       o,
		}
		for run := 0; run < 2; run++ {
			if _, err := core.Evaluate(p, opts); err != nil {
				t.Fatalf("%s run %d: %v", sched.Name(), run, err)
			}
		}
		if o.Trace.Len() == 0 {
			t.Errorf("%s: no spans recorded", sched.Name())
		}
	}
}

// BenchmarkEvaluateObsOff and ...ObsOn bound the enabled and disabled
// instrumentation cost; the overhead guard compares their wall times.
func BenchmarkEvaluateObsOff(b *testing.B) {
	benchmarkEvaluate(b, nil)
}

func BenchmarkEvaluateObsOn(b *testing.B) {
	benchmarkEvaluate(b, &obs.Observer{
		Trace:   obs.NewTracer(),
		Metrics: obs.NewRegistry(),
	})
}

func benchmarkEvaluate(b *testing.B, o *obs.Observer) {
	bm, ok := bench.ByName("BF")
	if !ok {
		b.Fatal("no BF benchmark")
	}
	opts := bm.Pipeline
	opts.FTh = 2000
	p, err := core.Build(bm.Source, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4, Obs: o}); err != nil {
			b.Fatal(err)
		}
	}
}
