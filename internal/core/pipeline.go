// Package core is the public face of the toolflow: it wires the front
// end (parser, sema, lower), the mid-end passes (decompose, flatten) and
// the back end (fine-grained RCP/LPFS scheduling, hierarchical coarse
// scheduling, communication analysis) into the paper's complete
// compile-and-evaluate flow, and exposes the experiment drivers behind
// every table and figure (see experiments.go).
package core

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/ast"
	"github.com/scaffold-go/multisimd/internal/decompose"
	"github.com/scaffold-go/multisimd/internal/flatten"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lower"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/parser"
	"github.com/scaffold-go/multisimd/internal/reuse"
	"github.com/scaffold-go/multisimd/internal/sema"
)

// PipelineOptions configures compilation from Scaffold-lite source to a
// scheduled-ready IR program.
type PipelineOptions struct {
	// Entry is the entry module name; empty means "main".
	Entry string
	// UnrollLimit forwards to lower.Options.
	UnrollLimit int64
	// MaxUnroll forwards to lower.Options.
	MaxUnroll int64

	// SkipDecompose leaves wide gates (Toffoli, rotations) in place.
	SkipDecompose bool
	// Epsilon is the rotation decomposition accuracy (0 = 1e-10).
	Epsilon float64
	// InlineRotations expands rotations inline instead of as per-angle
	// blackbox modules.
	InlineRotations bool
	// KeepToffoli skips Toffoli/Fredkin expansion during decomposition.
	KeepToffoli bool

	// SkipFlatten disables the FTh inlining pass.
	SkipFlatten bool
	// FTh is the flattening threshold in gates (0 = paper default 2M).
	FTh int64

	// AncillaReuse runs the ancilla-recycling pass over every fully
	// materialized leaf after flattening, recovering the paper's
	// maximal-ancilla-reuse footprint (Table 1's Q definition) on the
	// flat form. Requires the clean-ancilla convention (see package
	// reuse).
	AncillaReuse bool

	// Obs, when non-nil, traces each compilation phase (parse, sema,
	// lower, decompose, flatten, ancilla-reuse) as a span under the
	// "pipeline" category. Nil disables tracing for free.
	Obs *obs.Observer
}

func (o PipelineOptions) entry() string {
	if o.Entry == "" {
		return "main"
	}
	return o.Entry
}

// Frontend parses, checks and lowers source into IR without running any
// mid-end pass.
func Frontend(src string, opts PipelineOptions) (*ir.Program, error) {
	tr := opts.Obs.T()
	psp := tr.Span("pipeline", "parse")
	prog, err := parser.Parse(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	return frontendAST(prog, opts)
}

// frontendAST checks and lowers an already parsed program.
func frontendAST(prog *ast.Program, opts PipelineOptions) (*ir.Program, error) {
	tr := opts.Obs.T()
	ssp := tr.Span("pipeline", "sema")
	err := sema.Check(prog)
	ssp.End()
	if err != nil {
		return nil, err
	}
	lsp := tr.Span("pipeline", "lower")
	p, err := lower.Lower(prog, opts.entry(), lower.Options{
		UnrollLimit: opts.UnrollLimit,
		MaxUnroll:   opts.MaxUnroll,
	})
	lsp.End()
	return p, err
}

// Build runs the full compilation pipeline: front end, gate
// decomposition, and FTh flattening.
func Build(src string, opts PipelineOptions) (*ir.Program, error) {
	p, err := Frontend(src, opts)
	if err != nil {
		return nil, err
	}
	return midend(p, opts)
}

// midend runs the post-frontend passes on a lowered program.
func midend(p *ir.Program, opts PipelineOptions) (*ir.Program, error) {
	tr := opts.Obs.T()
	if !opts.SkipDecompose {
		sp := tr.Span("pipeline", "decompose")
		_, err := decompose.Program(p, decompose.Options{
			Epsilon:         opts.Epsilon,
			InlineRotations: opts.InlineRotations,
			KeepToffoli:     opts.KeepToffoli,
		})
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if !opts.SkipFlatten {
		sp := tr.Span("pipeline", "flatten")
		st, err := flatten.Program(p, flatten.Options{Threshold: opts.FTh})
		if st != nil {
			sp.SetInt("inlined_call_ops", int64(st.InlinedCallOps))
		}
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if opts.AncillaReuse {
		sp := tr.Span("pipeline", "ancilla-reuse")
		err := reuseLeaves(p)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// reuseLeaves applies ancilla recycling to each leaf whose body is fully
// materialized (no Count multipliers); symbolic leaves are left alone.
func reuseLeaves(p *ir.Program) error {
	names, err := p.Topo()
	if err != nil {
		return err
	}
	for _, name := range names {
		m := p.Modules[name]
		if !m.IsLeaf() {
			continue
		}
		materialized := true
		for i := range m.Ops {
			if m.Ops[i].EffCount() != 1 {
				materialized = false
				break
			}
		}
		if !materialized {
			continue
		}
		if _, err := reuse.Leaf(m); err != nil {
			return fmt.Errorf("core: ancilla reuse on %s: %w", name, err)
		}
	}
	return p.Validate()
}

// BuildSources combines several source fragments (module libraries plus
// a main) and builds them as one program. Each fragment parses
// separately so diagnostics carry line numbers relative to the fragment
// they occur in (a naive concatenation would shift every fragment after
// the first), prefixed with the 1-based fragment index.
func BuildSources(opts PipelineOptions, srcs ...string) (*ir.Program, error) {
	merged := &ast.Program{}
	psp := opts.Obs.T().Span("pipeline", "parse")
	for i, s := range srcs {
		frag, err := parser.Parse(s)
		if err != nil {
			psp.End()
			return nil, fmt.Errorf("core: fragment %d: %w", i+1, err)
		}
		merged.Modules = append(merged.Modules, frag.Modules...)
	}
	psp.End()
	p, err := frontendAST(merged, opts)
	if err != nil {
		return nil, err
	}
	return midend(p, opts)
}

// MustBuild is a test/example helper that panics on compile errors.
func MustBuild(src string, opts PipelineOptions) *ir.Program {
	p, err := Build(src, opts)
	if err != nil {
		panic(fmt.Sprintf("core.MustBuild: %v", err))
	}
	return p
}
