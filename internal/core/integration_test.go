package core_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/machine"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/resource"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// TestBenchmarkLeavesExecuteOnMachine is the deep end-to-end check: for
// every leaf module of every (scaled) paper benchmark, both schedulers'
// outputs are validated against the dependency DAG and then replayed on
// the Multi-SIMD machine executor, which independently re-derives every
// move, stall and cycle from the communication annotations. Any
// disagreement anywhere in the toolflow fails here.
func TestBenchmarkLeavesExecuteOnMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("machine replay across all benchmark leaves is slow; run without -short")
	}
	for _, b := range bench.AllSmall() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opts := b.Pipeline
			opts.FTh = 2000
			prog, err := core.Build(b.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			est, err := resource.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			leaves := 0
			for _, name := range est.Reachable() {
				mod := prog.Modules[name]
				if !mod.IsLeaf() {
					continue
				}
				leaves++
				mat, err := mod.Materialize(1 << 22)
				if err != nil {
					t.Fatalf("%s: materialize: %v", name, err)
				}
				g, err := dag.Build(mat)
				if err != nil {
					t.Fatalf("%s: dag: %v", name, err)
				}
				for _, cfg := range []struct {
					sched string
					k     int
					cap   int
				}{
					{"rcp", 2, 0}, {"rcp", 4, -1},
					{"lpfs", 2, 0}, {"lpfs", 4, -1}, {"lpfs", 4, 2},
				} {
					var s *schedule.Schedule
					if cfg.sched == "rcp" {
						s, err = rcp.Schedule(mat, g, rcp.Options{K: cfg.k})
					} else {
						s, err = lpfs.Schedule(mat, g, lpfs.Options{K: cfg.k})
					}
					if err != nil {
						t.Fatalf("%s %s k=%d: %v", name, cfg.sched, cfg.k, err)
					}
					if err := s.Validate(g); err != nil {
						t.Fatalf("%s %s k=%d: invalid schedule: %v", name, cfg.sched, cfg.k, err)
					}
					res, err := comm.Analyze(s, comm.Options{LocalCapacity: cfg.cap})
					if err != nil {
						t.Fatalf("%s %s k=%d: comm: %v", name, cfg.sched, cfg.k, err)
					}
					stats, err := machine.Execute(machine.Config{K: cfg.k, LocalCapacity: cfg.cap}, s, res)
					if err != nil {
						t.Fatalf("%s %s k=%d cap=%d: machine: %v", name, cfg.sched, cfg.k, cfg.cap, err)
					}
					if stats.GateOps != int64(len(mat.Ops)) {
						t.Fatalf("%s: executed %d ops of %d", name, stats.GateOps, len(mat.Ops))
					}
				}
			}
			if leaves == 0 {
				t.Error("benchmark has no leaves")
			}
			t.Logf("%s: %d leaves machine-verified under 5 configurations", b.Name, leaves)
		})
	}
}
