package core_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ir"
)

var (
	enginePrograms    map[string]*ir.Program
	engineProgOnce    sync.Once
	engineProgBuildEr error
)

// engineWorkloads compiles every small benchmark once for the engine
// tests (the same FTh bench_test.go uses).
func engineWorkloads(t *testing.T) map[string]*ir.Program {
	engineProgOnce.Do(func() {
		enginePrograms = map[string]*ir.Program{}
		for _, w := range bench.AllSmall() {
			opts := w.Pipeline
			opts.FTh = 2000
			p, err := core.Build(w.Source, opts)
			if err != nil {
				engineProgBuildEr = fmt.Errorf("%s: %w", w.Name, err)
				return
			}
			enginePrograms[w.Name] = p
		}
	})
	if engineProgBuildEr != nil {
		t.Fatal(engineProgBuildEr)
	}
	return enginePrograms
}

// TestEngineDeterminism is the issue's acceptance gate: Evaluate with
// Workers: 1 and Workers: 8 must produce identical Metrics for every
// benchmark generator and both schedulers.
func TestEngineDeterminism(t *testing.T) {
	progs := engineWorkloads(t)
	if len(progs) != 8 {
		t.Fatalf("expected 8 benchmark generators, got %d", len(progs))
	}
	for name, p := range progs {
		for _, sched := range []core.Scheduler{core.RCP, core.LPFS} {
			opts := core.EvalOptions{
				Scheduler: sched,
				K:         4,
				Comm:      comm.Options{LocalCapacity: -1},
				Verify:    true,
			}
			serialOpts := opts
			serialOpts.Workers = 1
			serial, err := core.Evaluate(p, serialOpts)
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", name, sched.Name(), err)
			}
			parOpts := opts
			parOpts.Workers = 8
			par, err := core.Evaluate(p, parOpts)
			if err != nil {
				t.Fatalf("%s/%s workers=8: %v", name, sched.Name(), err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s/%s: workers=1 metrics %+v != workers=8 metrics %+v",
					name, sched.Name(), serial, par)
			}
		}
	}
}

// TestEvalCacheTransparent asserts a warm cache returns identical
// Metrics to a cold, uncached run, and that the warm run actually hit.
func TestEvalCacheTransparent(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["Grovers"]
	if p == nil {
		for _, q := range progs {
			p = q
			break
		}
	}
	opts := core.EvalOptions{Scheduler: core.LPFS, K: 4}
	cold, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	cache := core.NewEvalCache()
	opts.Cache = cache
	first, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, first) || !reflect.DeepEqual(cold, warm) {
		t.Errorf("cache not transparent:\ncold  %+v\nfirst %+v\nwarm  %+v", cold, first, warm)
	}
	st := cache.Stats()
	if st.CommHits == 0 {
		t.Errorf("warm run recorded no comm-layer hits: %+v", st)
	}
	if st.CommEntries == 0 || st.SchedEntries == 0 {
		t.Errorf("cache holds no entries after two runs: %+v", st)
	}
}

// TestEvalCacheScheduleReuse pins the fig8 fast path: when only comm
// options change, the zero-communication schedules are reused (schedule
// layer hits) and only the movement analysis re-runs.
func TestEvalCacheScheduleReuse(t *testing.T) {
	progs := engineWorkloads(t)
	var p *ir.Program
	for _, q := range progs {
		p = q
		break
	}
	cache := core.NewEvalCache()
	base := core.EvalOptions{Scheduler: core.LPFS, K: 4, Cache: cache}
	if _, err := core.Evaluate(p, base); err != nil {
		t.Fatal(err)
	}
	st0 := cache.Stats()

	withLocal := base
	withLocal.Comm = comm.Options{LocalCapacity: -1}
	got, err := core.Evaluate(p, withLocal)
	if err != nil {
		t.Fatal(err)
	}
	st1 := cache.Stats()
	if st1.SchedHits <= st0.SchedHits {
		t.Errorf("comm-only change did not reuse schedules: before %+v after %+v", st0, st1)
	}
	if st1.SchedEntries != st0.SchedEntries {
		t.Errorf("comm-only change grew the schedule layer: before %+v after %+v", st0, st1)
	}

	fresh := withLocal
	fresh.Cache = nil
	want, err := core.Evaluate(p, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("schedule-layer reuse changed results: got %+v want %+v", got, want)
	}
}

// TestRemovedEvalOptionFields pins the post-cleanup engine surface: the
// transitional comm-forwarding fields and per-algorithm option structs
// must stay deleted from EvalOptions. Comm options live on the embedded
// comm.Options; tuned schedulers come from lpfs.New / rcp.New or the
// registry.
func TestRemovedEvalOptionFields(t *testing.T) {
	removed := []string{"LocalCapacity", "NoOverlap", "EPRBandwidth", "LPFSOpts", "RCPOpts"}
	typ := reflect.TypeOf(core.EvalOptions{})
	for _, name := range removed {
		if _, ok := typ.FieldByName(name); ok {
			t.Errorf("EvalOptions still carries removed field %s", name)
		}
	}
	if _, ok := typ.FieldByName("Comm"); !ok {
		t.Error("EvalOptions lost its Comm field")
	}
}

// TestEvaluateWithVerify runs the in-engine legality oracle over every
// small benchmark with both schedulers: verification must pass on real
// workloads and must be transparent — identical Metrics with it off —
// including on a warm cache, where Verify bypasses the comm fast path.
func TestEvaluateWithVerify(t *testing.T) {
	progs := engineWorkloads(t)
	for name, p := range progs {
		for _, sched := range []core.Scheduler{core.RCP, core.LPFS} {
			cache := core.NewEvalCache()
			opts := core.EvalOptions{
				Scheduler: sched,
				K:         4,
				Comm:      comm.Options{LocalCapacity: 4},
				Verify:    true,
				Cache:     cache,
			}
			cold, err := core.Evaluate(p, opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, sched.Name(), err)
			}
			warm, err := core.Evaluate(p, opts)
			if err != nil {
				t.Fatalf("%s/%s warm: %v", name, sched.Name(), err)
			}
			plain := opts
			plain.Verify = false
			plain.Cache = nil
			want, err := core.Evaluate(p, plain)
			if err != nil {
				t.Fatalf("%s/%s unverified: %v", name, sched.Name(), err)
			}
			if !reflect.DeepEqual(cold, want) || !reflect.DeepEqual(warm, want) {
				t.Errorf("%s/%s: verification changed metrics:\ncold %+v\nwarm %+v\nwant %+v",
					name, sched.Name(), cold, warm, want)
			}
		}
	}
}

// TestSchedulerByName resolves registered algorithms and distinguishes
// them.
func TestSchedulerByName(t *testing.T) {
	r, err := core.SchedulerByName("rcp")
	if err != nil || r.Name() != "rcp" {
		t.Fatalf("rcp lookup: %v %v", r, err)
	}
	l, err := core.SchedulerByName("lpfs")
	if err != nil || l.Name() != "lpfs" {
		t.Fatalf("lpfs lookup: %v %v", l, err)
	}
	if r == l {
		t.Error("rcp and lpfs resolved to the same scheduler")
	}
	if r != core.RCP || l != core.LPFS {
		t.Error("registry defaults differ from package defaults")
	}
}
