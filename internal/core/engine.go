package core

// This file is the hierarchical evaluation engine. Leaf
// characterization — scheduling each leaf module at every blackbox width
// and analyzing its movement — is embarrassingly parallel: no
// (module, width) point depends on any other. The engine fans those
// points out over a bounded worker pool and memoizes them in a
// content-addressed EvalCache, then composes non-leaf modules serially
// in topological order (the only place child results are actually
// consumed). Determinism: schedulers are deterministic and every result
// lands in a pre-assigned slot, so Metrics are identical at any worker
// count and on any cache temperature.
//
// Observability (EvalOptions.Obs) threads through here: every pool task
// traces a span on its worker slot's track, fresh schedules and comm
// analyses feed the metrics registry, and verifier rejections count and
// mark the trace. All of it is nil-guarded — a run without an Observer
// takes only nil checks (see TestDisabled*AllocatesNothing in
// internal/obs).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/verify"
)

func (o EvalOptions) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

type engine struct {
	ctx    context.Context
	p      *ir.Program
	opts   EvalOptions
	sched  Scheduler
	cfg    string
	comm   comm.Options
	widths []int
	cache  *EvalCache
	// rec is this run's cache-traffic view: the caller's recorder
	// (EvalOptions.CacheStats) or a private one, never nil — so
	// publish() reports exactly this evaluation's traffic even while
	// other runs share the cache.
	rec *CacheRecorder
	eo  engObs
	// an holds one reusable comm analyzer per worker slot, so every
	// characterization on a slot reuses the same dense scratch state
	// instead of allocating per (leaf, width) point. Slots are stable per
	// pool goroutine (see runTasks), so no locking is needed.
	an []*comm.Analyzer
}

// engObs is the engine's pre-resolved observability handles: the tracer
// plus every instrument it updates, looked up once per run so the hot
// path never touches the registry's name map. All fields may be nil
// (instrument methods no-op on nil receivers).
type engObs struct {
	tr *obs.Tracer

	tasks      *obs.Counter // pool tasks executed
	schedFresh *obs.Counter // schedules computed (cache misses)
	schedSteps *obs.Counter // timesteps across fresh schedules
	commGlobal *obs.Counter // teleports across fresh comm analyses
	commLocal  *obs.Counter // local moves across fresh comm analyses
	commStall  *obs.Counter // EPR-stall overhead cycles across fresh analyses
	verifyRej  *obs.Counter // legality-oracle rejections

	queueDepth  *obs.Gauge // tasks not yet claimed by a worker
	workersPeak *obs.Gauge // peak concurrently running pool tasks

	opsPerStep *obs.Histogram // ops scheduled per timestep (fresh schedules)
}

func newEngObs(o *obs.Observer) engObs {
	eo := engObs{tr: o.T()}
	r := o.M()
	if r == nil {
		return eo
	}
	eo.tasks = r.Counter("engine.tasks")
	eo.schedFresh = r.Counter("sched.fresh")
	eo.schedSteps = r.Counter("sched.steps")
	eo.commGlobal = r.Counter("comm.global_moves")
	eo.commLocal = r.Counter("comm.local_moves")
	eo.commStall = r.Counter("comm.stall_cycles")
	eo.verifyRej = r.Counter("verify.rejections")
	eo.queueDepth = r.Gauge("engine.queue.depth")
	eo.workersPeak = r.Gauge("engine.workers.peak")
	eo.opsPerStep = r.Histogram("sched.ops_per_step")
	return eo
}

func newEngine(ctx context.Context, p *ir.Program, opts EvalOptions) *engine {
	cache := opts.Cache
	if cache == nil {
		// An ephemeral per-run cache still dedupes structurally identical
		// leaves within the program (content-addressed fingerprints).
		cache = NewEvalCache()
	}
	sched := opts.scheduler()
	rec := opts.CacheStats
	if rec == nil {
		rec = &CacheRecorder{}
	}
	return &engine{
		ctx:    ctx,
		p:      p,
		opts:   opts,
		sched:  sched,
		cfg:    schedulerConfig(sched),
		comm:   opts.Comm,
		widths: widthSet(opts.K),
		cache:  cache,
		rec:    rec,
		eo:     newEngObs(opts.Obs),
	}
}

// schedulerConfig renders a scheduler's identity plus tuning knobs for
// cache keys. Adapters expose Config(); anything else falls back to a
// %+v rendering of the concrete value.
func schedulerConfig(s Scheduler) string {
	if c, ok := s.(interface{ Config() string }); ok {
		return c.Config()
	}
	return fmt.Sprintf("%s|%+v", s.Name(), s)
}

// run evaluates every reachable module, bottom-up, and returns the
// per-module characterizations. order is the topological order from the
// resource estimator (callees before callers).
func (e *engine) run(order []string, m *Metrics) (map[string]*moduleEval, error) {
	evals := make(map[string]*moduleEval, len(order))
	var leaves []*leafState
	for _, name := range order {
		mod := e.p.Modules[name]
		m.Modules++
		if mod.IsLeaf() {
			m.Leaves++
			leaves = append(leaves, &leafState{
				name:  name,
				mod:   mod,
				fp:    mod.Fingerprint(),
				slots: make([]commEntry, len(e.widths)),
			})
		}
	}

	lsp := e.eo.tr.Span("engine", "characterize-leaves")
	lsp.SetInt("leaves", int64(len(leaves)))
	lsp.SetInt("widths", int64(len(e.widths)))
	err := e.evalLeaves(leaves)
	lsp.End()
	if err != nil {
		return nil, err
	}
	for _, ls := range leaves {
		evals[ls.name] = ls.assemble(e.widths)
	}

	// Non-leaf composition consumes child dims, so it follows the
	// topological order; the coarse scheduler is cheap relative to leaf
	// characterization, so it stays serial.
	csp := e.eo.tr.Span("engine", "compose")
	for _, name := range order {
		if err := e.ctx.Err(); err != nil {
			csp.End()
			return nil, err
		}
		mod := e.p.Modules[name]
		if mod.IsLeaf() {
			continue
		}
		var msp obs.Span
		if e.eo.tr.Enabled() {
			msp = e.eo.tr.Span("compose", name)
		}
		ev, err := evalNonLeaf(e.p, mod, e.widths, evals, e.eo.tr)
		msp.End()
		if err != nil {
			csp.End()
			return nil, fmt.Errorf("core: module %s: %w", name, err)
		}
		evals[name] = ev
	}
	csp.End()
	return evals, nil
}

// leafState carries one leaf through the pool: its fingerprint, a
// lazily built (once-guarded) materialization + DAG shared by the
// per-width tasks, and a pre-assigned result slot per width.
type leafState struct {
	name string
	mod  *ir.Module
	fp   ir.Fingerprint

	once   sync.Once
	mat    *ir.Module
	g      *dag.Graph
	matErr error

	cp    int64
	slots []commEntry
}

// graph materializes the leaf and builds its dependency DAG exactly
// once, however many width tasks need it. Cache hits never call it —
// a fully warm leaf skips materialization entirely.
func (ls *leafState) graph(limit int64) (*ir.Module, *dag.Graph, error) {
	ls.once.Do(func() {
		mat, err := ls.mod.Materialize(limit)
		if err != nil {
			ls.matErr = err
			return
		}
		g, err := dag.Build(mat)
		if err != nil {
			ls.matErr = err
			return
		}
		ls.mat, ls.g = mat, g
	})
	return ls.mat, ls.g, ls.matErr
}

// assemble folds the per-width slots into a moduleEval, widths ascending
// — identical output regardless of task completion order.
func (ls *leafState) assemble(widths []int) *moduleEval {
	ev := &moduleEval{cp: ls.cp}
	for wi, w := range widths {
		ce := ls.slots[wi]
		ev.zero.Widths = append(ev.zero.Widths, w)
		ev.zero.Lengths = append(ev.zero.Lengths, ce.zeroLen)
		ev.withComm.Widths = append(ev.withComm.Widths, w)
		ev.withComm.Lengths = append(ev.withComm.Lengths, ce.cycles)
	}
	if n := len(widths); n > 0 {
		ev.globals = ls.slots[n-1].globals
		ev.locals = ls.slots[n-1].locals
	}
	return ev
}

// evalLeaves characterizes every (leaf, width) point on the worker pool.
// Each task traces a span on its worker slot's track (tid = slot + 1;
// tid 0 is the coordinating goroutine), so the trace shows pool
// utilization as a timeline; a running-task high-water mark and the
// unclaimed-queue depth feed the registry.
func (e *engine) evalLeaves(leaves []*leafState) error {
	nW := len(e.widths)
	n := len(leaves) * nW
	workers := e.opts.workers()
	if e.eo.tr.Enabled() {
		e.eo.tr.SetThreadName(0, "main")
		nw := workers
		if nw > n {
			nw = n
		}
		for s := 0; s < nw; s++ {
			e.eo.tr.SetThreadName(int64(s+1), fmt.Sprintf("worker-%02d", s))
		}
	}
	e.an = make([]*comm.Analyzer, workers)
	var running atomic.Int64
	task := func(slot, i int) error {
		ls := leaves[i/nW]
		wi := i % nW
		e.eo.tasks.Inc()
		e.eo.queueDepth.Set(int64(n - 1 - i))
		e.eo.workersPeak.Max(running.Add(1))
		defer running.Add(-1)
		var sp obs.Span
		if e.eo.tr.Enabled() {
			sp = e.eo.tr.SpanTID("leaf", fmt.Sprintf("%s w=%d", ls.name, e.widths[wi]), int64(slot+1))
		}
		err := e.characterize(ls, wi, slot, &sp)
		sp.End()
		if err != nil {
			return fmt.Errorf("core: module %s: %w", ls.name, err)
		}
		return nil
	}
	return runTasks(e.ctx, n, workers, task)
}

// profiled reports whether this width slot feeds the schedule profiler:
// leaves are profiled once, at the machine width k — the last entry of
// the ascending width set.
func (e *engine) profiled(wi int) bool {
	return e.opts.Profile != nil && wi == len(e.widths)-1
}

// characterize fills one leaf's width slot, consulting the cache layers
// outermost-first: a comm hit is free; a schedule hit re-runs only
// comm.Analyze; a miss schedules and analyzes, then populates both.
// sp is the task's trace span, annotated with which layer served the
// point (inert when tracing is off).
func (e *engine) characterize(ls *leafState, wi, slot int, sp *obs.Span) error {
	if wi == 0 {
		cp, ok := e.cache.criticalPath(ls.fp, e.rec)
		if !ok {
			_, g, err := ls.graph(e.opts.materializeLimit())
			if err != nil {
				return err
			}
			cp = int64(g.CriticalPath())
			e.cache.putCriticalPath(ls.fp, cp)
		}
		ls.cp = cp
	}

	w := e.widths[wi]
	sk := schedKey{fp: ls.fp, config: e.cfg, w: w, d: e.opts.D}
	ck := commKey{sk: sk, comm: e.comm}
	// Verification re-derives the move list, so it bypasses the warm
	// fast path: a cached result may predate the oracle. Profiling needs
	// the schedule and move lists too, but only at the profiled width.
	if ce, ok := e.cache.commResult(ck, e.rec); ok && !e.opts.Verify && !e.profiled(wi) {
		sp.SetStr("cache", "comm-hit")
		ls.slots[wi] = ce
		return nil
	}
	// The schedule layer may be serving a persisted record, which only
	// decodes against its materialized module; bind hands the cache this
	// leaf's once-guarded materializer for exactly that path.
	bind := func() (*ir.Module, error) {
		mat, _, err := ls.graph(e.opts.materializeLimit())
		return mat, err
	}
	s, ok := e.cache.schedule(sk, e.rec, bind)
	if !ok {
		sp.SetStr("cache", "miss")
		mat, g, err := ls.graph(e.opts.materializeLimit())
		if err != nil {
			return err
		}
		if s, err = e.sched.Schedule(mat, g, w, e.opts.D); err != nil {
			return err
		}
		e.cache.putSchedule(sk, s)
		e.eo.schedFresh.Inc()
		e.eo.schedSteps.Add(int64(len(s.Steps)))
		if e.eo.opsPerStep != nil {
			for _, st := range s.Steps {
				var ops int64
				for _, reg := range st.Regions {
					ops += int64(len(reg))
				}
				e.eo.opsPerStep.Observe(ops)
			}
		}
	} else {
		sp.SetStr("cache", "sched-hit")
	}
	if e.an[slot] == nil {
		e.an[slot] = comm.NewAnalyzer()
	}
	res, err := e.an[slot].Analyze(s, e.comm)
	if err != nil {
		return err
	}
	e.eo.commGlobal.Add(res.GlobalMoves)
	e.eo.commLocal.Add(res.LocalMoves)
	e.eo.commStall.Add(res.StallCycles())
	sp.SetInt("steps", int64(s.Length()))
	sp.SetInt("cycles", res.Cycles)
	sp.SetInt("global_moves", res.GlobalMoves)
	sp.SetInt("local_moves", res.LocalMoves)
	sp.SetInt("stall_cycles", res.StallCycles())
	if e.opts.Verify {
		// The cached schedule may hang off a structurally identical
		// module from another leaf (content-addressed keys); the DAG
		// shape is the same, so this leaf's graph checks it.
		_, g, err := ls.graph(e.opts.materializeLimit())
		if err != nil {
			return err
		}
		if err := verify.Full(s, g, res, e.comm); err != nil {
			e.eo.verifyRej.Inc()
			e.eo.tr.Instant("verify", "rejection: "+ls.name, 0)
			return fmt.Errorf("width %d: %w", w, err)
		}
	}
	if e.profiled(wi) {
		// Analyze copies everything it keeps, so the slot's reusable
		// analyzer arena is free to serve the next task.
		_, g, err := ls.graph(e.opts.materializeLimit())
		if err != nil {
			return err
		}
		e.opts.Profile.Add(ls.name, s, g, res)
	}
	ce := commEntry{
		zeroLen: int64(s.Length()),
		cycles:  res.Cycles,
		globals: res.GlobalMoves,
		locals:  res.LocalMoves,
	}
	e.cache.putCommResult(ck, ce)
	ls.slots[wi] = ce
	return nil
}

// runTasks executes task(slot, 0..n-1) on up to `workers` goroutines;
// slot identifies the executing worker (0-based, stable per goroutine).
// With one worker it degenerates to today's serial loop — no goroutines,
// stop at the first error. In parallel mode workers claim indices in
// order from an atomic counter; on error the pool drains and the error
// with the lowest task index is returned, which is the same error the
// serial path would have surfaced (tasks are deterministic, and every
// index below a claimed one has itself been claimed). Context
// cancellation is checked before each claim: in-flight tasks finish,
// nothing new starts, and the context's error is returned.
func runTasks(ctx context.Context, n, workers int, task func(slot, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = n
		firstEr error
	)
	next.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := task(slot, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstEr
}
