package core

import (
	"fmt"
	"time"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
)

// unlimitedLocal is the Fig. 8 "Inf" scratchpad setting used by the
// ablation studies.
var unlimitedLocal = comm.Options{LocalCapacity: -1}

// SensDRow is one point of the d-sensitivity study (§5.4: "decreasing
// [d] to below 32 qubits only causes marginal changes").
type SensDRow struct {
	Name    string
	D       int // 0 means unlimited
	Speedup float64
}

// SensD sweeps the per-region data parallelism d at fixed k, reporting
// the communication-aware speedup over naive movement.
func SensD(ws []Workload, sched Scheduler, k int, ds []int) ([]SensDRow, error) {
	var rows []SensDRow
	for _, w := range ws {
		for _, d := range ds {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: sched, K: k, D: d, Comm: comm.Options{LocalCapacity: -1}}))
			if err != nil {
				return nil, fmt.Errorf("sensd %s d=%d: %w", w.Name, d, err)
			}
			rows = append(rows, SensDRow{Name: w.Name, D: d, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// SensEPRRow is one point of the EPR-bandwidth study (§2.3: finite
// distribution channels serialize teleport bursts).
type SensEPRRow struct {
	Name      string
	Bandwidth int // teleports per boundary; 0 = unlimited
	Speedup   float64
	PeakNeed  int64 // teleports the schedule wants at its busiest boundary
}

// SensEPR sweeps the EPR distribution bandwidth at fixed k.
func SensEPR(ws []Workload, sched Scheduler, k int, bws []int) ([]SensEPRRow, error) {
	var rows []SensEPRRow
	for _, w := range ws {
		for _, bw := range bws {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: sched, K: k, Comm: comm.Options{EPRBandwidth: bw}}))
			if err != nil {
				return nil, fmt.Errorf("sensepr %s bw=%d: %w", w.Name, bw, err)
			}
			rows = append(rows, SensEPRRow{Name: w.Name, Bandwidth: bw, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// AblationRow is one scheduler-variant measurement.
type AblationRow struct {
	Name    string // benchmark
	Variant string
	Speedup float64 // over naive movement, k = 4, unlimited local memory
}

// AblationLPFS compares LPFS option settings (§4.2: the paper runs
// l = 1 with SIMD and Refill enabled).
func AblationLPFS(ws []Workload, k int) ([]AblationRow, error) {
	variants := []struct {
		name string
		opts EvalOptions
	}{
		{"simd+refill", EvalOptions{Scheduler: LPFS, K: k, Comm: unlimitedLocal}},
		{"simd only", EvalOptions{Scheduler: lpfs.New(lpfsOpts(true, false)), K: k, Comm: unlimitedLocal}},
		{"refill only", EvalOptions{Scheduler: lpfs.New(lpfsOpts(false, true)), K: k, Comm: unlimitedLocal}},
		{"neither", EvalOptions{Scheduler: lpfs.New(lpfsOpts(false, false)), K: k, Comm: unlimitedLocal}},
		{"l=2", EvalOptions{Scheduler: lpfs.New(lpfsL(2)), K: k, Comm: unlimitedLocal}},
	}
	var rows []AblationRow
	for _, w := range ws {
		for _, v := range variants {
			m, err := Evaluate(w.Prog, w.evalOptions(v.opts))
			if err != nil {
				return nil, fmt.Errorf("ablation lpfs %s %s: %w", w.Name, v.name, err)
			}
			rows = append(rows, AblationRow{Name: w.Name, Variant: v.name, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// AblationRCP compares RCP weight settings (§4.1: w_op groups for data
// parallelism, w_dist captures locality, w_slack defers slack ops).
func AblationRCP(ws []Workload, k int) ([]AblationRow, error) {
	variants := []struct {
		name              string
		wop, wdist, wslak float64
	}{
		{"all weights", 1, 1, 1},
		{"no locality", 1, 0, 1},
		{"no slack", 1, 1, 0},
		{"prevalence only", 1, 0, 0},
	}
	var rows []AblationRow
	for _, w := range ws {
		for _, v := range variants {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{
				Scheduler: rcp.New(rcpWeights(v.wop, v.wdist, v.wslak)),
				K:         k, Comm: unlimitedLocal,
			}))
			if err != nil {
				return nil, fmt.Errorf("ablation rcp %s %s: %w", w.Name, v.name, err)
			}
			rows = append(rows, AblationRow{Name: w.Name, Variant: v.name, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// AblationComm compares the teleport-masking movement model (§2.3)
// against the strict per-boundary accounting (§4.4).
func AblationComm(ws []Workload, sched Scheduler, k int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, w := range ws {
		for _, v := range []struct {
			name string
			no   bool
		}{{"masked (pipelined QT)", false}, {"strict (no overlap)", true}} {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: sched, K: k, Comm: comm.Options{NoOverlap: v.no}}))
			if err != nil {
				return nil, fmt.Errorf("ablation comm %s %s: %w", w.Name, v.name, err)
			}
			rows = append(rows, AblationRow{Name: w.Name, Variant: v.name, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// FThRow is one point of the flattening-threshold study (§3.1.1).
type FThRow struct {
	Name    string
	FTh     int64
	Leaves  int
	Modules int
	Speedup float64
	// AnalysisMS is the wall-clock cost of compiling and scheduling at
	// this threshold — the other side of the paper's FTh trade-off
	// ("when leaf modules are too large the scheduling time becomes
	// unacceptably long").
	AnalysisMS int64
}

// SweepFTh rebuilds each workload's source at several thresholds and
// measures the resulting schedule quality — the paper's motivation for
// picking FTh = 2M: too little flattening loses parallelism at module
// boundaries (Fig. 4), too much blows up scheduling time.
func SweepFTh(sources []SourceWorkload, sched Scheduler, k int, fths []int64) ([]FThRow, error) {
	var rows []FThRow
	for _, sw := range sources {
		for _, fth := range fths {
			opts := sw.Pipeline
			opts.FTh = fth
			start := time.Now()
			prog, err := Build(sw.Source, opts)
			if err != nil {
				return nil, fmt.Errorf("fth %s %d: %w", sw.Name, fth, err)
			}
			m, err := Evaluate(prog, EvalOptions{Scheduler: sched, K: k, Comm: comm.Options{LocalCapacity: -1}})
			if err != nil {
				return nil, fmt.Errorf("fth %s %d: %w", sw.Name, fth, err)
			}
			rows = append(rows, FThRow{
				Name: sw.Name, FTh: fth,
				Leaves: m.Leaves, Modules: m.Modules,
				Speedup:    m.SpeedupVsNaive(),
				AnalysisMS: time.Since(start).Milliseconds(),
			})
		}
	}
	return rows, nil
}

// SourceWorkload carries un-compiled source for rebuild sweeps.
type SourceWorkload struct {
	Name     string
	Source   string
	Pipeline PipelineOptions
}
