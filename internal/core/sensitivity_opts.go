package core

import (
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/rcp"
)

// lpfsOpts builds explicit LPFS option settings for ablations.
func lpfsOpts(simd, refill bool) lpfs.Options {
	return lpfs.Options{SIMD: simd, Refill: refill, NoOptions: !simd && !refill}
}

// lpfsL pins l longest-path regions with both options on.
func lpfsL(l int) lpfs.Options {
	return lpfs.Options{L: l, SIMD: true, Refill: true}
}

// rcpWeights builds explicit RCP weight settings for ablations.
func rcpWeights(wop, wdist, wslack float64) rcp.Options {
	return rcp.Options{WOp: wop, WDist: wdist, WSlack: wslack, ExplicitWeights: true}
}
