package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/scaffold-go/multisimd/internal/coarse"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/report"
	"github.com/scaffold-go/multisimd/internal/resource"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Scheduler is the fine-grained scheduling algorithm interface shared
// with package schedule. Algorithms self-register; look them up by name
// with SchedulerByName or use the RCP/LPFS defaults.
type Scheduler = schedule.Scheduler

var (
	// RCP is the Ready Critical Path scheduler (Algorithm 1) at its
	// paper-default weights.
	RCP Scheduler = rcp.Scheduler{}
	// LPFS is Longest Path First Scheduling (Algorithm 2), run with
	// l = 1, SIMD and Refill as in the paper.
	LPFS Scheduler = lpfs.Scheduler{}
)

// SchedulerByName resolves a scheduler from the global registry, the
// lookup behind every command-line -sched flag.
func SchedulerByName(name string) (Scheduler, error) {
	if s, ok := schedule.Lookup(name); ok {
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown scheduler %q (registered: %s)",
		name, strings.Join(schedule.Names(), ", "))
}

// WithDecisionLog returns s with the introspection log attached, when
// the scheduler supports one (the rcp and lpfs adapters do). Schedulers
// without the hook — and a nil log — pass through unchanged, so callers
// can apply it unconditionally. Decision logging does not alter
// schedules; the log is excluded from cache-key configuration strings.
func WithDecisionLog(s Scheduler, l *obs.DecisionLog) Scheduler {
	if l == nil || s == nil {
		return s
	}
	if w, ok := s.(interface {
		WithDecisionLog(*obs.DecisionLog) schedule.Scheduler
	}); ok {
		return w.WithDecisionLog(l)
	}
	return s
}

// EvalOptions configures a hierarchical evaluation run.
type EvalOptions struct {
	// Scheduler is the fine-grained algorithm; nil defaults to RCP.
	// Tuned variants come from rcp.New / lpfs.New or the registry.
	Scheduler Scheduler
	// K is the number of SIMD regions; D the per-region data parallelism
	// (0 = ∞, the paper's setting).
	K int
	D int

	// Comm bundles the communication-model knobs (scratchpad capacity,
	// movement accounting, EPR bandwidth) declared once and shared with
	// comm.Analyze and the characterization cache key.
	Comm comm.Options

	// MaterializeLimit bounds leaf materialization (0 = 4M ops).
	MaterializeLimit int64

	// Verify runs the independent legality oracle (internal/verify) over
	// every leaf characterization: the Multi-SIMD schedule contract plus
	// move-list consistency of the communication analysis. Verification
	// needs the leaf's dependency graph, so it forces materialization
	// even on warm cache entries; the engine's tests and the qsched
	// -verify flag turn it on, perf-sensitive sweeps leave it off.
	Verify bool

	// Obs, when non-nil, receives the run's observability streams: a
	// span per pipeline phase, engine stage and worker-pool task on
	// Obs.Trace; cache, schedule, movement and verifier instruments on
	// Obs.Metrics (names in DESIGN.md); nothing on Obs.Decisions — the
	// scheduler decision log attaches to the scheduler itself (see
	// WithDecisionLog). Nil disables all instrumentation at the cost of
	// nil checks only.
	Obs *obs.Observer

	// Profile, when non-nil, collects schedule-level analytics for every
	// leaf characterized at full width k: per-step occupancy, utilization,
	// move breakdowns and slack (internal/report). Assemble the run's
	// Report with BuildReport afterward. Profiling needs the leaf's
	// schedule and dependency graph, so — like Verify — it bypasses the
	// warm comm-cache fast path at the profiled width; nil costs a nil
	// check only.
	Profile *report.Collector

	// Workers bounds the engine's leaf-characterization concurrency:
	// 0 uses runtime.GOMAXPROCS(0), 1 runs the serial path. Results are
	// identical at any worker count (see engine.go).
	Workers int
	// Cache, when non-nil, memoizes leaf characterizations across
	// Evaluate calls, keyed by content fingerprint, scheduler
	// configuration, width and comm options. Experiment sweeps share one
	// cache per benchmark so repeated configurations reuse schedules and
	// only re-run comm.Analyze when comm options change.
	Cache *EvalCache

	// CacheStats, when non-nil, receives this evaluation's own cache
	// traffic (hits, misses, disk-layer traffic) — an exact attribution
	// even when many evaluations share one Cache concurrently. The
	// service fills its per-request access-log cache blocks from here;
	// reading the shared cache's global Stats() around a run would bleed
	// concurrent flights' traffic into each other.
	CacheStats *CacheRecorder
}

func (o EvalOptions) materializeLimit() int64 {
	if o.MaterializeLimit == 0 {
		return 4 << 20
	}
	return o.MaterializeLimit
}

// scheduler resolves the effective scheduler, defaulting to RCP. Tuned
// variants come from lpfs.New / rcp.New or the schedule registry; the
// options struct no longer carries per-algorithm knobs.
func (o EvalOptions) scheduler() Scheduler {
	if o.Scheduler == nil {
		return RCP
	}
	return o.Scheduler
}

// Metrics is the paper's per-benchmark measurement set.
type Metrics struct {
	// Program shape.
	TotalGates int64 // fully expanded gate count (sequential timesteps)
	MinQubits  int64 // Table 1's Q
	Modules    int
	Leaves     int

	// Parallelism-only (Fig. 6).
	CriticalPath  int64 // hierarchical critical-path estimate
	ZeroCommSteps int64 // scheduled length, zero-cost communication

	// Communication-aware (Figs. 7–9).
	CommCycles  int64 // schedule length including movement overhead
	GlobalMoves int64 // estimated teleport count (≈ EPR pairs)
	LocalMoves  int64

	// Baselines.
	SeqCycles   int64 // sequential execution: one gate per timestep
	NaiveCycles int64 // sequential + naive movement (5x)
}

// SpeedupVsSeq is the Fig. 6 y-axis: sequential gates over scheduled
// steps with free communication.
func (m *Metrics) SpeedupVsSeq() float64 {
	if m.ZeroCommSteps == 0 {
		return 0
	}
	return float64(m.SeqCycles) / float64(m.ZeroCommSteps)
}

// CPSpeedup is the theoretical parallelism bound (Fig. 6 "cp" bars).
func (m *Metrics) CPSpeedup() float64 {
	if m.CriticalPath == 0 {
		return 0
	}
	return float64(m.SeqCycles) / float64(m.CriticalPath)
}

// SpeedupVsNaive is the Figs. 7–9 y-axis: naive-movement sequential
// runtime over the communication-aware scheduled runtime.
func (m *Metrics) SpeedupVsNaive() float64 {
	if m.CommCycles == 0 {
		return 0
	}
	return float64(m.NaiveCycles) / float64(m.CommCycles)
}

// moduleEval caches one module's blackbox characterizations.
type moduleEval struct {
	zero     coarse.Dims // schedule length per width, free communication
	withComm coarse.Dims // cycles per width, movement included
	cp       int64       // critical-path estimate
	globals  int64       // teleports per invocation (at full width)
	locals   int64
}

// Evaluate compiles nothing: it takes a built program (post decompose and
// flatten) and evaluates it hierarchically on a Multi-SIMD(k,d) machine,
// reproducing the paper's measurement flow: fine-grained schedules and
// flexible blackbox dims for leaves, coarse-grained composition above.
// Leaf characterizations fan out over EvalOptions.Workers goroutines and
// memoize through EvalOptions.Cache; both are transparent — the returned
// Metrics are identical to the serial, uncached path.
func Evaluate(p *ir.Program, opts EvalOptions) (*Metrics, error) {
	return EvaluateContext(context.Background(), p, opts)
}

// EvaluateContext is Evaluate under a context: cancellation or deadline
// expiry stops the run between leaf-characterization tasks (in-flight
// scheduler calls finish; nothing new starts) and between non-leaf
// compositions, returning the context's error. Partial results never
// leak — the cache only ever receives completed characterizations, so an
// abandoned run leaves it consistent for the next caller. The service
// daemon threads each request's context through here; batch callers use
// Evaluate.
func EvaluateContext(ctx context.Context, p *ir.Program, opts EvalOptions) (*Metrics, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1")
	}
	e := newEngine(ctx, p, opts)
	esp := e.eo.tr.Span("engine", "evaluate")
	esp.SetInt("k", int64(opts.K))
	esp.SetStr("scheduler", e.sched.Name())
	if id := obs.RequestID(ctx); id != "" {
		// The service threads its request id through the context; stamp
		// it on the run span and the scheduler's decision log so traces
		// and decision streams correlate with access-log lines.
		esp.SetStr("request_id", id)
		if dl, ok := e.sched.(interface{ DecisionLog() *obs.DecisionLog }); ok {
			dl.DecisionLog().SetRequest(id)
		}
	}
	m, err := e.evaluate(p, opts)
	if m != nil {
		esp.SetInt("comm_cycles", m.CommCycles)
	}
	esp.End()
	if err != nil {
		return nil, err
	}
	e.publish(m)
	return m, nil
}

// evaluate is Evaluate's body, separated so the run span brackets it.
func (e *engine) evaluate(p *ir.Program, opts EvalOptions) (*Metrics, error) {
	rsp := e.eo.tr.Span("engine", "resource")
	est, err := resource.New(p)
	if err != nil {
		rsp.End()
		return nil, err
	}
	m := &Metrics{}
	if m.TotalGates, err = est.TotalGates(); err != nil {
		rsp.End()
		return nil, err
	}
	if m.MinQubits, err = est.MinQubits(); err != nil {
		rsp.End()
		return nil, err
	}
	rsp.End()
	m.SeqCycles = m.TotalGates
	m.NaiveCycles = comm.NaiveCycles(m.TotalGates)

	evals, err := e.run(est.Reachable(), m)
	if err != nil {
		return nil, err
	}
	entry := evals[p.Entry]
	if entry == nil {
		return nil, fmt.Errorf("core: entry module %q not evaluated", p.Entry)
	}
	_, zeroLen, ok := entry.zero.Best(opts.K)
	if !ok {
		return nil, fmt.Errorf("core: entry has no schedule within k=%d", opts.K)
	}
	_, commLen, ok := entry.withComm.Best(opts.K)
	if !ok {
		return nil, fmt.Errorf("core: entry has no comm schedule within k=%d", opts.K)
	}
	m.ZeroCommSteps = zeroLen
	m.CommCycles = commLen
	m.CriticalPath = entry.cp
	m.GlobalMoves = entry.globals
	m.LocalMoves = entry.locals
	return m, nil
}

// publish pushes the run's results into the metrics registry: the
// final Metrics as eval.* gauges (so a -metrics-out snapshot agrees
// with the printed report by construction) and this run's cache-layer
// traffic as eval_cache.* counters. Traffic comes from the engine's
// per-run recorder — exact even when concurrent runs share the cache —
// while occupancy gauges read the shared cache's absolutes.
func (e *engine) publish(m *Metrics) {
	r := e.opts.Obs.M()
	if r == nil {
		return
	}
	d := e.rec.Stats()
	r.Counter("eval_cache.comm.hits").Add(d.CommHits)
	r.Counter("eval_cache.comm.misses").Add(d.CommMisses)
	r.Counter("eval_cache.sched.hits").Add(d.SchedHits)
	r.Counter("eval_cache.sched.misses").Add(d.SchedMisses)
	r.Counter("eval_cache.cp.hits").Add(d.CPHits)
	r.Counter("eval_cache.cp.misses").Add(d.CPMisses)
	r.Counter("eval_cache.disk.hits").Add(d.DiskHits)
	r.Counter("eval_cache.disk.misses").Add(d.DiskMisses)
	occ := e.cache.Stats()
	r.Gauge("eval_cache.sched.entries").Set(int64(occ.SchedEntries))
	r.Gauge("eval_cache.comm.entries").Set(int64(occ.CommEntries))
	r.Gauge("eval_cache.mem.bytes").Set(occ.MemBytes)
	r.Gauge("eval_cache.mem.evictions").Set(occ.MemEvictions)
	r.Gauge("eval_cache.disk.entries").Set(int64(occ.DiskEntries))
	r.Gauge("eval_cache.disk.bytes").Set(occ.DiskBytes)

	r.Gauge("eval.total_gates").Set(m.TotalGates)
	r.Gauge("eval.min_qubits").Set(m.MinQubits)
	r.Gauge("eval.modules").Set(int64(m.Modules))
	r.Gauge("eval.leaves").Set(int64(m.Leaves))
	r.Gauge("eval.critical_path").Set(m.CriticalPath)
	r.Gauge("eval.zero_comm_steps").Set(m.ZeroCommSteps)
	r.Gauge("eval.comm_cycles").Set(m.CommCycles)
	r.Gauge("eval.global_moves").Set(m.GlobalMoves)
	r.Gauge("eval.local_moves").Set(m.LocalMoves)
}

// widthSet picks the blackbox widths characterized per module: all
// widths up to 8 regions, powers of two beyond (plus k itself).
func widthSet(k int) []int {
	var ws []int
	for w := 1; w <= k && w <= 8; w++ {
		ws = append(ws, w)
	}
	for w := 16; w < k; w *= 2 {
		ws = append(ws, w)
	}
	if k > 8 {
		ws = append(ws, k)
	}
	return ws
}

// evalNonLeaf characterizes a non-leaf via coarse scheduling over its
// callees' cached dims.
func evalNonLeaf(p *ir.Program, mod *ir.Module, widths []int, evals map[string]*moduleEval, tr *obs.Tracer) (*moduleEval, error) {
	ev := &moduleEval{}
	dimsZero := func(callee string) (coarse.Dims, error) {
		c := evals[callee]
		if c == nil {
			return coarse.Dims{}, fmt.Errorf("core: callee %s not yet evaluated", callee)
		}
		return c.zero, nil
	}
	dimsComm := func(callee string) (coarse.Dims, error) {
		c := evals[callee]
		if c == nil {
			return coarse.Dims{}, fmt.Errorf("core: callee %s not yet evaluated", callee)
		}
		return c.withComm, nil
	}
	for _, w := range widths {
		rz, err := coarse.Schedule(mod, coarse.Options{K: w, Cost: coarse.ZeroComm, Dims: dimsZero, Trace: tr})
		if err != nil {
			return nil, err
		}
		rc, err := coarse.Schedule(mod, coarse.Options{K: w, Cost: coarse.WithComm, Dims: dimsComm, Trace: tr})
		if err != nil {
			return nil, err
		}
		ev.zero.Widths = append(ev.zero.Widths, w)
		ev.zero.Lengths = append(ev.zero.Lengths, rz.Length)
		ev.withComm.Widths = append(ev.withComm.Widths, w)
		ev.withComm.Lengths = append(ev.withComm.Lengths, rc.Length)
	}
	// Critical path: longest dependency chain with callee CPs as weights.
	ev.cp = coarseCriticalPath(mod, func(callee string) int64 {
		if c := evals[callee]; c != nil {
			return c.cp
		}
		return 1
	})
	// Movement estimate: callee moves scale by invocation counts; stray
	// coarse-level gates teleport their operands (cost model WithComm).
	for i := range mod.Ops {
		op := &mod.Ops[i]
		switch op.Kind {
		case ir.GateOp:
			ev.globals += op.EffCount()
		case ir.CallOp:
			if c := evals[op.Callee]; c != nil {
				ev.globals = satAdd(ev.globals, satMul(c.globals, op.EffCount()))
				ev.locals = satAdd(ev.locals, satMul(c.locals, op.EffCount()))
			}
		}
	}
	return ev, nil
}

// coarseCriticalPath computes the longest dependency chain of a module
// where gates weigh their count and calls weigh count x callee CP.
func coarseCriticalPath(mod *ir.Module, cpOf func(string) int64) int64 {
	finish := make([]int64, len(mod.Ops))
	last := make(map[int]int) // slot -> op index
	var total int64
	for i := range mod.Ops {
		op := &mod.Ops[i]
		var start int64
		touch := func(slot int) {
			if p, ok := last[slot]; ok && finish[p] > start {
				start = finish[p]
			}
		}
		for _, s := range op.Args {
			touch(s)
		}
		for _, r := range op.CallArgs {
			for s := r.Start; s < r.Start+r.Len; s++ {
				touch(s)
			}
		}
		var w int64
		switch op.Kind {
		case ir.GateOp:
			w = op.EffCount()
		case ir.CallOp:
			w = satMul(cpOf(op.Callee), op.EffCount())
		}
		finish[i] = satAdd(start, w)
		if finish[i] > total {
			total = finish[i]
		}
		for _, s := range op.Args {
			last[s] = i
		}
		for _, r := range op.CallArgs {
			for s := r.Start; s < r.Start+r.Len; s++ {
				last[s] = i
			}
		}
	}
	return total
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
