package core_test

// Scrape-under-evaluation race test: the obs HTTP endpoints serve live
// Prometheus and JSON snapshots while the engine's worker pool hammers
// the same registry. Run under -race in CI's instrumented job; the
// consistency assertions (cumulative histogram buckets non-decreasing,
// count equal to the +Inf bucket) hold on any run.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/obs"
)

func TestScrapeDuringEvaluate(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["SHA-1"]
	if p == nil {
		t.Fatal("no SHA-1 workload")
	}
	reg := obs.NewRegistry()
	ln, err := obs.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	var stop atomic.Bool
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for !stop.Load() {
			resp, err := http.Get(base + "/metrics.json")
			if err != nil {
				continue
			}
			var snap obs.Snapshot
			decErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if decErr != nil {
				t.Errorf("scrape: %v", decErr)
				break
			}
			for name, hs := range snap.Histograms {
				var prev int64
				for i, b := range hs.Buckets {
					if b.Count < prev {
						t.Errorf("%s: bucket %d decreases: %d after %d", name, i, b.Count, prev)
					}
					prev = b.Count
				}
				if l := len(hs.Buckets); l > 0 && hs.Count != hs.Buckets[l-1].Count {
					t.Errorf("%s: count %d != +Inf bucket %d", name, hs.Count, hs.Buckets[l-1].Count)
				}
			}

			resp, err = http.Get(base + "/metrics")
			if err != nil {
				continue
			}
			checkPromScrape(t, resp)
			resp.Body.Close()
			n++
		}
		scraped <- n
	}()

	o := &obs.Observer{Metrics: reg}
	for run := 0; run < 6; run++ {
		opts := core.EvalOptions{K: 4, Workers: 8, Obs: o}
		if _, err := core.Evaluate(p, opts); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	if n := <-scraped; n == 0 {
		t.Log("no scrape completed during the evaluations (slow host); race coverage reduced")
	}
}

// checkPromScrape asserts bucket monotonicity and _count agreement on a
// live Prometheus payload.
func checkPromScrape(t *testing.T, resp *http.Response) {
	t.Helper()
	last := map[string]int64{}
	counts := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		switch name := fields[0]; {
		case strings.Contains(name, "_bucket{"):
			hist := name[:strings.Index(name, "_bucket{")]
			if v < last[hist] {
				t.Errorf("%s: cumulative bucket decreases (%d after %d)", hist, v, last[hist])
			}
			last[hist] = v
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for hist, cum := range last {
		if c, ok := counts[hist]; ok && c != cum {
			t.Errorf("%s: _count %d != +Inf bucket %d", hist, c, cum)
		}
	}
}
