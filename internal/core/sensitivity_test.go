package core_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
)

func toyWorkloads(t *testing.T) []core.Workload {
	t.Helper()
	p, err := core.Build(toySource, core.PipelineOptions{FTh: 50})
	if err != nil {
		t.Fatal(err)
	}
	return []core.Workload{{Name: "toy", Params: "-", Prog: p}}
}

func TestSensDMonotone(t *testing.T) {
	ws := toyWorkloads(t)
	// d starts at 2: the toy program contains CNOTs, and a d=1 machine
	// cannot execute a 2-qubit gate — schedulers reject it (the old d=1
	// row existed only while LPFS ignored d for pinned-path heads).
	rows, err := core.SensD(ws, core.LPFS, 4, []int{2, 3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Larger d never hurts (0 = unlimited comes last).
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup*0.99 {
			t.Errorf("d=%d speedup %.3f regressed from d=%d %.3f",
				rows[i].D, rows[i].Speedup, rows[i-1].D, rows[i-1].Speedup)
		}
	}
}

func TestSensEPRMonotone(t *testing.T) {
	ws := toyWorkloads(t)
	rows, err := core.SensEPR(ws, core.LPFS, 4, []int{1, 2, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup*0.99 {
			t.Errorf("bw=%d speedup %.3f regressed from bw=%d %.3f",
				rows[i].Bandwidth, rows[i].Speedup, rows[i-1].Bandwidth, rows[i-1].Speedup)
		}
	}
	// A bandwidth of 1 must not beat unlimited.
	if rows[0].Speedup > rows[len(rows)-1].Speedup+1e-9 {
		t.Errorf("throttled beats unlimited: %.3f vs %.3f", rows[0].Speedup, rows[len(rows)-1].Speedup)
	}
}

func TestAblationsRun(t *testing.T) {
	ws := toyWorkloads(t)
	lp, err := core.AblationLPFS(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp) != 5 {
		t.Errorf("lpfs variants: %d", len(lp))
	}
	rc, err := core.AblationRCP(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc) != 4 {
		t.Errorf("rcp variants: %d", len(rc))
	}
	cm, err := core.AblationComm(ws, core.LPFS, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != 2 {
		t.Fatalf("comm variants: %d", len(cm))
	}
	// Masked accounting is never slower than strict.
	if cm[0].Speedup < cm[1].Speedup-1e-9 {
		t.Errorf("masked %.3f below strict %.3f", cm[0].Speedup, cm[1].Speedup)
	}
	for _, r := range append(append(lp, rc...), cm...) {
		if r.Speedup <= 0 {
			t.Errorf("%s/%s: non-positive speedup", r.Name, r.Variant)
		}
	}
}

func TestSweepFTh(t *testing.T) {
	srcs := []core.SourceWorkload{{Name: "toy", Source: toySource}}
	rows, err := core.SweepFTh(srcs, core.LPFS, 2, []int64{10, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Below the inner module's size, the program stays modular; above,
	// it flattens into fewer modules.
	if rows[0].Modules <= rows[1].Modules {
		t.Errorf("fth=10 modules %d should exceed fth=1000 modules %d",
			rows[0].Modules, rows[1].Modules)
	}
}
