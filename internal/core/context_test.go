package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// manyLeafSource builds a program with n structurally distinct leaf
// modules so an evaluation has plenty of independent pool tasks to
// abandon mid-run.
func manyLeafSource(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "module leaf%d() {\n  qbit q[2];\n", i)
		for j := 0; j <= i; j++ {
			sb.WriteString("  H(q[0]);\n  CNOT(q[0], q[1]);\n")
		}
		sb.WriteString("}\n")
	}
	sb.WriteString("module main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  leaf%d();\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// gatedScheduler counts Schedule calls and blocks each one until the
// test releases it, then delegates to LPFS. It lets the cancellation
// tests freeze an evaluation mid-flight deterministically.
type gatedScheduler struct {
	calls   *atomic.Int64
	started chan struct{} // receives one token per Schedule call start
	release chan struct{} // closed to let calls proceed
}

func (g gatedScheduler) Name() string { return "gated-test" }

func (g gatedScheduler) Schedule(m *ir.Module, gr *dag.Graph, k, d int) (*schedule.Schedule, error) {
	g.calls.Add(1)
	select {
	case g.started <- struct{}{}:
	default:
	}
	<-g.release
	return core.LPFS.Schedule(m, gr, k, d)
}

// TestEvaluateContextCancellation is the service daemon's contract with
// the engine: cancelling the context mid-evaluation stops the run — the
// in-flight scheduler call finishes, no further task starts — and the
// context's error surfaces.
func TestEvaluateContextCancellation(t *testing.T) {
	p, err := core.Build(manyLeafSource(6), core.PipelineOptions{SkipFlatten: true})
	if err != nil {
		t.Fatal(err)
	}
	g := gatedScheduler{
		calls:   &atomic.Int64{},
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := core.EvaluateContext(ctx, p, core.EvalOptions{Scheduler: g, K: 2, Workers: 1})
		done <- err
	}()

	select {
	case <-g.started:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler never started")
	}
	cancel()
	close(g.release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("EvaluateContext returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("EvaluateContext did not return after cancellation")
	}
	// 6 leaves x widths {1, 2} = 12 tasks; the serial engine checks the
	// context before each claim, so only the one in-flight call ran.
	if n := g.calls.Load(); n != 1 {
		t.Errorf("scheduler ran %d times after cancellation, want 1 (of 12 tasks)", n)
	}
}

// TestEvaluateContextCancelledParallel exercises the pooled path: with
// several workers frozen mid-task, cancellation drains the pool without
// letting the remaining tasks start.
func TestEvaluateContextCancelledParallel(t *testing.T) {
	p, err := core.Build(manyLeafSource(8), core.PipelineOptions{SkipFlatten: true})
	if err != nil {
		t.Fatal(err)
	}
	g := gatedScheduler{
		calls:   &atomic.Int64{},
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := core.EvaluateContext(ctx, p, core.EvalOptions{Scheduler: g, K: 2, Workers: 4})
		done <- err
	}()
	for i := 0; i < 4; i++ {
		select {
		case <-g.started:
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d never started", i)
		}
	}
	cancel()
	close(g.release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("EvaluateContext returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("EvaluateContext did not return after cancellation")
	}
	// 8 leaves x widths {1, 2} = 16 tasks; the 4 frozen calls may finish,
	// nothing new starts.
	if n := g.calls.Load(); n > 4 {
		t.Errorf("scheduler ran %d times after cancellation, want <= 4 (of 16 tasks)", n)
	}
}

// TestEvaluateContextDeadline: an already-expired deadline fails fast
// with DeadlineExceeded before any scheduling work happens.
func TestEvaluateContextDeadline(t *testing.T) {
	p, err := core.Build(toySource, core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	calls := &atomic.Int64{}
	g := gatedScheduler{calls: calls, started: make(chan struct{}, 64), release: make(chan struct{})}
	close(g.release)
	_, err = core.EvaluateContext(ctx, p, core.EvalOptions{Scheduler: g, K: 2, Workers: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvaluateContext returned %v, want context.DeadlineExceeded", err)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("scheduler ran %d times under an expired deadline", n)
	}
}
