package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// EmitQASM writes the fully linearized QASM-HL instruction stream of the
// program's entry module: calls are expanded on the fly (hierarchical
// programs never materialize in memory), qubits are named by their slot
// path, and limit bounds the number of emitted instructions (0 means
// 10 million). This is the back end the paper's toolflow targets (§3.1).
func EmitQASM(w io.Writer, p *ir.Program, limit int64) (int64, error) {
	if limit == 0 {
		limit = 10_000_000
	}
	entry := p.EntryModule()
	if entry == nil {
		return 0, fmt.Errorf("core: missing entry module %q", p.Entry)
	}
	if entry.ParamSlots() != 0 {
		return 0, fmt.Errorf("core: entry module %s takes parameters", entry.Name)
	}
	bw := bufio.NewWriter(w)
	for s := 0; s < entry.TotalSlots(); s++ {
		if _, err := fmt.Fprintf(bw, "qubit %s\n", entry.SlotName(s)); err != nil {
			return 0, err
		}
	}
	names := make([]string, entry.TotalSlots())
	for s := range names {
		names[s] = entry.SlotName(s)
	}
	e := &emitter{p: p, w: bw, limit: limit}
	if err := e.module(entry, names); err != nil {
		return e.count, err
	}
	return e.count, bw.Flush()
}

type emitter struct {
	p     *ir.Program
	w     *bufio.Writer
	count int64
	limit int64
	anc   int64
}

func (e *emitter) module(m *ir.Module, names []string) error {
	for i := range m.Ops {
		op := &m.Ops[i]
		for rep := int64(0); rep < op.EffCount(); rep++ {
			switch op.Kind {
			case ir.GateOp:
				if e.count >= e.limit {
					return fmt.Errorf("core: EmitQASM: instruction limit %d exceeded", e.limit)
				}
				e.count++
				if _, err := e.w.WriteString(op.Gate.String()); err != nil {
					return err
				}
				e.w.WriteByte('(')
				for j, s := range op.Args {
					if j > 0 {
						e.w.WriteByte(',')
					}
					e.w.WriteString(names[s])
				}
				if op.Gate.IsRotation() {
					e.w.WriteByte(',')
					e.w.WriteString(strconv.FormatFloat(op.Angle, 'g', -1, 64))
				}
				e.w.WriteString(")\n")
			case ir.CallOp:
				callee := e.p.Modules[op.Callee]
				if callee == nil {
					return fmt.Errorf("core: EmitQASM: missing module %q", op.Callee)
				}
				sub := make([]string, 0, callee.TotalSlots())
				for _, r := range op.CallArgs {
					for s := r.Start; s < r.Start+r.Len; s++ {
						sub = append(sub, names[s])
					}
				}
				for len(sub) < callee.TotalSlots() {
					// Fresh ancilla names per dynamic instance; the
					// declaration block does not cover them, matching
					// ScaffCC's implicit ancilla pool.
					sub = append(sub, fmt.Sprintf("anc%d", e.anc))
					e.anc++
				}
				if err := e.module(callee, sub); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ParseQASM reads back a flat QASM-HL stream as a single-module leaf
// program, the inverse of EmitQASM for fully flattened output. Useful
// for feeding externally produced circuits to the schedulers.
func ParseQASM(r io.Reader) (*ir.Program, error) {
	decl, insts, err := qasm.Parse(r)
	if err != nil {
		return nil, err
	}
	slots := map[string]int{}
	for _, name := range decl {
		if _, dup := slots[name]; dup {
			return nil, fmt.Errorf("core: ParseQASM: duplicate qubit %q", name)
		}
		slots[name] = len(slots)
	}
	m := ir.NewModule("main", nil, nil)
	for _, name := range decl {
		m.AddLocal(name, 1)
	}
	for _, in := range insts {
		args := make([]int, len(in.Qubits))
		for i, q := range in.Qubits {
			s, ok := slots[q]
			if !ok {
				// Implicit ancilla declaration.
				s = len(slots)
				slots[q] = s
				m.AddLocal(q, 1)
			}
			args[i] = s
		}
		m.Ops = append(m.Ops, ir.Op{Kind: ir.GateOp, Gate: in.Op, Angle: in.Angle, Args: args, Count: 1})
	}
	p := ir.NewProgram("main")
	p.Add(m)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
