package core

import "github.com/scaffold-go/multisimd/internal/report"

// BuildReport assembles the versioned schedule report of one evaluation
// from the profiles a Collector gathered (EvalOptions.Profile) and the
// run's final Metrics. The Totals block denormalizes Metrics plus its
// derived ratios so the report is self-contained; Modules carries the
// per-leaf analytics sorted by name.
func BuildReport(c *report.Collector, benchmark string, m *Metrics, opts EvalOptions) *report.Report {
	r := &report.Report{
		Schema:    report.SchemaVersion,
		Benchmark: benchmark,
		Scheduler: opts.scheduler().Name(),
		K:         opts.K,
		D:         opts.D,
		Comm:      report.CommConfigOf(opts.Comm),
		Totals: report.Totals{
			TotalGates:     m.TotalGates,
			MinQubits:      m.MinQubits,
			Modules:        m.Modules,
			Leaves:         m.Leaves,
			CriticalPath:   m.CriticalPath,
			ZeroCommSteps:  m.ZeroCommSteps,
			CommCycles:     m.CommCycles,
			GlobalMoves:    m.GlobalMoves,
			LocalMoves:     m.LocalMoves,
			SeqCycles:      m.SeqCycles,
			NaiveCycles:    m.NaiveCycles,
			SpeedupVsSeq:   m.SpeedupVsSeq(),
			SpeedupVsNaive: m.SpeedupVsNaive(),
			CPSpeedup:      m.CPSpeedup(),
		},
		Modules: c.Modules(),
	}
	if m.CommCycles > 0 && m.CommCycles > m.ZeroCommSteps {
		r.Totals.CommOverheadFraction =
			float64(m.CommCycles-m.ZeroCommSteps) / float64(m.CommCycles)
	}
	return r
}
