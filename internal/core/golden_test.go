package core_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
)

// update rewrites the golden metric snapshots instead of comparing:
//
//	go test ./internal/core -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenWorkloads wraps the compiled small benchmarks as experiment
// workloads, each with its own cache so fig6 warms fig8's schedules.
func goldenWorkloads(t *testing.T) []core.Workload {
	t.Helper()
	progs := engineWorkloads(t)
	var ws []core.Workload
	for _, b := range bench.AllSmall() {
		p := progs[b.Name]
		if p == nil {
			t.Fatalf("benchmark %s not compiled", b.Name)
		}
		ws = append(ws, core.Workload{
			Name:   b.Name,
			Params: b.Params,
			Prog:   p,
			Cache:  core.NewEvalCache(),
		})
	}
	return ws
}

// checkGolden compares got against testdata/golden/<name>, or rewrites
// the snapshot under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the snapshot)", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden snapshot (run with -update if intended):\n--- want\n%s--- got\n%s",
			name, want, got)
	}
}

// TestGoldenFig6 snapshots the parallelism-only speedups (paper Fig. 6)
// for every small benchmark. Schedulers and the evaluation engine are
// deterministic, so any drift is a behavior change — intended changes
// re-baseline with -update.
func TestGoldenFig6(t *testing.T) {
	rows, err := core.Fig6(goldenWorkloads(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("name\tparams\trcp2\trcp4\tlpfs2\tlpfs4\tcp\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			r.Name, r.Params, r.RCP2, r.RCP4, r.LPFS2, r.LPFS4, r.CP)
	}
	checkGolden(t, "fig6.tsv", sb.String())
}

// TestGoldenFig8 snapshots the local-memory study (paper Fig. 8).
func TestGoldenFig8(t *testing.T) {
	rows, err := core.Fig8(goldenWorkloads(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("name\tparams\tq\trcp_none\trcp_q4\trcp_q2\trcp_inf\tlpfs_none\tlpfs_q4\tlpfs_q2\tlpfs_inf\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\t%s\t%d", r.Name, r.Params, r.Q)
		for _, v := range r.RCP {
			fmt.Fprintf(&sb, "\t%.4f", v)
		}
		for _, v := range r.LPFS {
			fmt.Fprintf(&sb, "\t%.4f", v)
		}
		sb.WriteByte('\n')
	}
	checkGolden(t, "fig8.tsv", sb.String())
}
