package core_test

// Engine-side tests of the schedule profiler hook (EvalOptions.Profile):
// the collector sees every leaf at machine width, warm caches do not
// starve it, worker-pool order does not perturb it, and the assembled
// report agrees with the Metrics the evaluation returns.

import (
	"reflect"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/report"
)

func TestEvaluateProfileCollectsLeaves(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["Grovers"]
	if p == nil {
		t.Fatal("no Grovers workload")
	}
	opts := core.EvalOptions{
		K:       4,
		Comm:    comm.Options{LocalCapacity: -1},
		Profile: report.NewCollector(),
		Verify:  true, // profiled numbers ride on verified move lists
	}
	m, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := opts.Profile.Len(); got != m.Leaves {
		t.Fatalf("profiled %d modules, evaluation had %d leaves", got, m.Leaves)
	}
	r := core.BuildReport(opts.Profile, "Grovers", m, opts)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Totals.CommCycles != m.CommCycles || r.Totals.ZeroCommSteps != m.ZeroCommSteps ||
		r.Totals.GlobalMoves != m.GlobalMoves || r.Totals.CriticalPath != m.CriticalPath {
		t.Errorf("report totals %+v disagree with Metrics %+v", r.Totals, m)
	}
	if r.Scheduler != "rcp" || r.K != 4 {
		t.Errorf("report config %s/k=%d, want rcp/k=4", r.Scheduler, r.K)
	}
	for _, mod := range r.Modules {
		if mod.Width != 4 {
			t.Errorf("module %s profiled at width %d, want machine width 4", mod.Name, mod.Width)
		}
	}
}

// TestProfileOnWarmCache is the cache-interaction pin: a fully warm
// cache serves comm entries without schedules, so a profiled run must
// bypass that fast path (like Verify) and still see every leaf.
func TestProfileOnWarmCache(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["BWT"]
	if p == nil {
		t.Fatal("no BWT workload")
	}
	cache := core.NewEvalCache()
	opts := core.EvalOptions{K: 4, Cache: cache}
	m1, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Profile = report.NewCollector()
	m2, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("profiling changed the metrics: %+v vs %+v", m1, m2)
	}
	if got := opts.Profile.Len(); got != m2.Leaves {
		t.Fatalf("warm run profiled %d modules, want %d leaves", got, m2.Leaves)
	}
}

// TestProfileWorkerInvariance runs the profiled evaluation serially and
// on a wide pool; the assembled reports must be identical.
func TestProfileWorkerInvariance(t *testing.T) {
	progs := engineWorkloads(t)
	p := progs["SHA-1"]
	if p == nil {
		t.Fatal("no SHA-1 workload")
	}
	var reports []*report.Report
	for _, workers := range []int{1, 8} {
		opts := core.EvalOptions{
			K:       4,
			Comm:    comm.Options{LocalCapacity: 2},
			Workers: workers,
			Profile: report.NewCollector(),
		}
		m, err := core.Evaluate(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, core.BuildReport(opts.Profile, "SHA-1", m, opts))
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Error("report differs between Workers=1 and Workers=8")
	}
}
