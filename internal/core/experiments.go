package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/flatten"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// Workload names one benchmark instance handed to the experiment
// drivers: its compiled program plus identity strings for the reports.
type Workload struct {
	Name   string
	Params string
	Prog   *ir.Program

	// Cache, when non-nil, memoizes leaf characterizations across every
	// Evaluate the drivers run for this workload, so sweeps that revisit
	// a (scheduler, k, d) configuration reuse its schedules and only
	// re-run comm.Analyze when movement options change (fig7 after fig6
	// is fully warm; fig8's capacity sweep re-analyzes one schedule).
	Cache *EvalCache
	// Workers overrides the engine's leaf-characterization concurrency
	// (0 = GOMAXPROCS, 1 = serial). Results are identical either way.
	Workers int
	// Obs, when non-nil, instruments every Evaluate the drivers run for
	// this workload (spans + metrics; see EvalOptions.Obs).
	Obs *obs.Observer
}

// evalOptions stamps the workload's cache, concurrency and
// observability settings onto a driver's base evaluation options.
func (w Workload) evalOptions(o EvalOptions) EvalOptions {
	o.Cache = w.Cache
	o.Workers = w.Workers
	o.Obs = w.Obs
	return o
}

// Fig5Row is one benchmark's module gate-count histogram (paper Fig. 5).
type Fig5Row struct {
	Name    string
	Params  string
	Percent []float64 // aligned with resource.Fig5Buckets
	// FlattenedPct is the percentage of modules at or under the FTh used.
	FlattenedPct float64
	FTh          int64
}

// Fig5 computes the histogram of module gate counts for each workload.
// The workloads should be compiled *without* the flattening pass (the
// figure characterizes the initial modularity used to choose FTh).
func Fig5(ws []Workload, fth int64) ([]Fig5Row, error) {
	if fth == 0 {
		fth = flatten.DefaultThreshold
	}
	rows := make([]Fig5Row, 0, len(ws))
	for _, w := range ws {
		est, err := resource.New(w.Prog)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", w.Name, err)
		}
		pct, err := est.Histogram()
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", w.Name, err)
		}
		fp, err := est.FlattenableFraction(fth)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", w.Name, err)
		}
		rows = append(rows, Fig5Row{Name: w.Name, Params: w.Params, Percent: pct, FlattenedPct: fp, FTh: fth})
	}
	return rows, nil
}

// Fig6Row is one benchmark's parallelism-only speedups (paper Fig. 6):
// RCP and LPFS at k = 2 and 4 against the critical-path bound.
type Fig6Row struct {
	Name, Params string
	RCP2, RCP4   float64
	LPFS2, LPFS4 float64
	CP           float64
}

// Fig6 runs both schedulers at k = 2 and 4 with zero-cost communication.
func Fig6(ws []Workload) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(ws))
	for _, w := range ws {
		row := Fig6Row{Name: w.Name, Params: w.Params}
		for _, cfg := range []struct {
			s Scheduler
			k int
			f *float64
		}{
			{RCP, 2, &row.RCP2}, {RCP, 4, &row.RCP4},
			{LPFS, 2, &row.LPFS2}, {LPFS, 4, &row.LPFS4},
		} {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: cfg.s, K: cfg.k}))
			if err != nil {
				return nil, fmt.Errorf("fig6 %s %v k=%d: %w", w.Name, cfg.s, cfg.k, err)
			}
			*cfg.f = m.SpeedupVsSeq()
			if cfg.k == 4 && cfg.s == LPFS {
				row.CP = m.CPSpeedup()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Row is one benchmark's communication-aware speedups over the naive
// movement model (paper Fig. 7).
type Fig7Row struct {
	Name, Params string
	RCP2, RCP4   float64
	LPFS2, LPFS4 float64
}

// Fig7 runs both schedulers at k = 2 and 4 with movement accounted and
// no local memories.
func Fig7(ws []Workload) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(ws))
	for _, w := range ws {
		row := Fig7Row{Name: w.Name, Params: w.Params}
		for _, cfg := range []struct {
			s Scheduler
			k int
			f *float64
		}{
			{RCP, 2, &row.RCP2}, {RCP, 4, &row.RCP4},
			{LPFS, 2, &row.LPFS2}, {LPFS, 4, &row.LPFS4},
		} {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: cfg.s, K: cfg.k}))
			if err != nil {
				return nil, fmt.Errorf("fig7 %s %v k=%d: %w", w.Name, cfg.s, cfg.k, err)
			}
			*cfg.f = m.SpeedupVsNaive()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row is one benchmark's local-memory study on Multi-SIMD(4,∞)
// (paper Fig. 8): speedups over the naive model with no local memory,
// Q/4, Q/2, and unlimited scratchpads, for both schedulers.
type Fig8Row struct {
	Name, Params string
	Q            int64
	// Indexed: [scheduler][capacity class] with capacity classes
	// None, Q/4, Q/2, Inf.
	RCP  [4]float64
	LPFS [4]float64
}

// Fig8CapacityLabels names the capacity classes in order.
var Fig8CapacityLabels = [4]string{"No Local Memory", "Q/4 Local Memory", "Q/2 Local Memory", "Inf Local Memory"}

// Fig8 runs the local-memory sweep at k = 4.
func Fig8(ws []Workload) ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, len(ws))
	for _, w := range ws {
		est, err := resource.New(w.Prog)
		if err != nil {
			return nil, err
		}
		q, err := est.MinQubits()
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Name: w.Name, Params: w.Params, Q: q}
		caps := [4]int{0, int(q / 4), int(q / 2), -1}
		for si, s := range []Scheduler{RCP, LPFS} {
			for ci, c := range caps {
				m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: s, K: 4, Comm: comm.Options{LocalCapacity: c}}))
				if err != nil {
					return nil, fmt.Errorf("fig8 %s %v cap=%d: %w", w.Name, s, c, err)
				}
				if si == 0 {
					row.RCP[ci] = m.SpeedupVsNaive()
				} else {
					row.LPFS[ci] = m.SpeedupVsNaive()
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Row is Shor's k-sensitivity (paper Fig. 9): speedup over the naive
// model with local memory, for k in {8, 16, 32, 128}.
type Fig9Row struct {
	Scheduler Scheduler
	K         int
	Speedup   float64
}

// Fig9Ks are the swept region counts. The paper sweeps {8, 16, 32, 128}
// on a 512-bit Shor's whose half-million rotation blackboxes saturate
// hundreds of regions; the scaled-down workload's inverse QFT offers
// proportionally less operation-level parallelism, so the sweep starts
// lower to expose the same rising-then-saturating shape.
var Fig9Ks = []int{2, 4, 8, 16, 32}

// Fig9 sweeps k for one workload (Shor's) with unlimited local memory.
func Fig9(w Workload) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, s := range []Scheduler{RCP, LPFS} {
		for _, k := range Fig9Ks {
			m, err := Evaluate(w.Prog, w.evalOptions(EvalOptions{Scheduler: s, K: k, Comm: comm.Options{LocalCapacity: -1}}))
			if err != nil {
				return nil, fmt.Errorf("fig9 %v k=%d: %w", s, k, err)
			}
			rows = append(rows, Fig9Row{Scheduler: s, K: k, Speedup: m.SpeedupVsNaive()})
		}
	}
	return rows, nil
}

// Table1Row is one benchmark's minimum qubit count Q (paper Table 1).
type Table1Row struct {
	Name, Params string
	Q            int64
}

// Table1 computes Q for each workload.
func Table1(ws []Workload) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(ws))
	for _, w := range ws {
		est, err := resource.New(w.Prog)
		if err != nil {
			return nil, err
		}
		q, err := est.MinQubits()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Name: w.Name, Params: w.Params, Q: q})
	}
	return rows, nil
}

// Table2Result demonstrates the paper's Table 2: n parallel rotations on
// distinct qubits cannot share a SIMD region once decomposed, so their
// schedule serializes unless k grows to accommodate them.
type Table2Result struct {
	Rotations int
	// StepsAtK[k] is the zero-comm schedule length with k regions.
	StepsAtK map[int]int64
}

// Table2 builds a program of n data-parallel Rz gates with distinct
// angles, decomposes them, and schedules at increasing k.
func Table2(n int, ks []int) (*Table2Result, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module main() {\n  qbit q[%d];\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  Rz(q[%d], %g);\n", i, 0.1+0.71*float64(i))
	}
	sb.WriteString("}\n")
	prog, err := Build(sb.String(), PipelineOptions{})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Rotations: n, StepsAtK: map[int]int64{}}
	cache := NewEvalCache() // the k sweep shares every width below max(ks)
	for _, k := range ks {
		m, err := Evaluate(prog, EvalOptions{Scheduler: LPFS, K: k, Cache: cache})
		if err != nil {
			return nil, err
		}
		res.StepsAtK[k] = m.ZeroCommSteps
	}
	return res, nil
}

// SortedKs returns the swept ks of a Table2Result in ascending order.
func (t *Table2Result) SortedKs() []int {
	ks := make([]int, 0, len(t.StepsAtK))
	for k := range t.StepsAtK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// WriteTSV writes rows of tab-separated values with a header, a shared
// helper for the qbench tool and EXPERIMENTS.md generation.
func WriteTSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}
