package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scaffold-go/multisimd/internal/cas"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// schedKey identifies one leaf characterization input up to (but not
// including) the communication model: what the fine-grained scheduler
// sees. Content-addressing via the fingerprint means structurally
// identical leaves — even across programs — share entries.
type schedKey struct {
	fp     ir.Fingerprint
	config string // scheduler name + tuning knobs
	w, d   int
}

// commKey extends schedKey with the communication options, the full key
// of one characterized (width, config) point.
type commKey struct {
	sk   schedKey
	comm comm.Options
}

// commEntry is a fully characterized leaf width: the zero-communication
// schedule length plus the movement-expanded cost. It is all the
// hierarchical composition needs, so a hit here skips scheduling and
// analysis entirely.
type commEntry struct {
	zeroLen int64
	cycles  int64
	globals int64
	locals  int64
}

// Content-address domains for the persistent layer. The version suffix
// is part of the key: an incompatible payload-encoding change bumps it
// and old records simply stop matching.
const (
	casDomainComm  = "evalcache/comm/v1"
	casDomainSched = "evalcache/sched/v1"
	casDomainCP    = "evalcache/cp/v1"
)

func (k schedKey) widthDepth() [16]byte {
	var wd [16]byte
	binary.LittleEndian.PutUint64(wd[0:8], uint64(k.w))
	binary.LittleEndian.PutUint64(wd[8:16], uint64(k.d))
	return wd
}

func (k schedKey) casKey() cas.Key {
	wd := k.widthDepth()
	return cas.NewKey(casDomainSched, k.fp[:], []byte(k.config), wd[:])
}

func (k commKey) casKey() cas.Key {
	wd := k.sk.widthDepth()
	// %+v renders every comm.Options field by name, so a future option
	// automatically changes the key instead of silently aliasing records
	// characterized under a different movement model.
	return cas.NewKey(casDomainComm, k.sk.fp[:], []byte(k.sk.config), wd[:],
		[]byte(fmt.Sprintf("%+v", k.comm)))
}

func cpCasKey(fp ir.Fingerprint) cas.Key {
	return cas.NewKey(casDomainCP, fp[:])
}

func encodeCommEntry(e commEntry) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:8], uint64(e.zeroLen))
	binary.LittleEndian.PutUint64(b[8:16], uint64(e.cycles))
	binary.LittleEndian.PutUint64(b[16:24], uint64(e.globals))
	binary.LittleEndian.PutUint64(b[24:32], uint64(e.locals))
	return b
}

func decodeCommEntry(b []byte) (commEntry, bool) {
	if len(b) != 32 {
		return commEntry{}, false
	}
	return commEntry{
		zeroLen: int64(binary.LittleEndian.Uint64(b[0:8])),
		cycles:  int64(binary.LittleEndian.Uint64(b[8:16])),
		globals: int64(binary.LittleEndian.Uint64(b[16:24])),
		locals:  int64(binary.LittleEndian.Uint64(b[24:32])),
	}, true
}

// CacheStats counts EvalCache traffic, split by layer. A "schedule" hit
// with a "comm" miss is the sweep fast path: the zero-communication
// schedule is reused and only comm.Analyze re-runs under the new
// movement options. Disk counters cover the persistent layer: DiskHits
// are lookups the memory front missed but a disk record served (they
// are also counted as hits of their logical layer), DiskMisses went all
// the way through and will recompute. Entry counts and byte sizes are
// absolute occupancy, not traffic.
type CacheStats struct {
	CommHits     int64
	CommMisses   int64
	SchedHits    int64
	SchedMisses  int64
	CPHits       int64
	CPMisses     int64
	DiskHits     int64
	DiskMisses   int64
	DiskWrites   int64
	DiskCorrupt  int64
	MemEvictions int64
	SchedEntries int
	CommEntries  int
	MemBytes     int64
	DiskEntries  int
	DiskBytes    int64
}

// CommHitRate is the comm-layer hit fraction (0 when the layer is
// untouched), the headline number of qbench's perf records.
func (s CacheStats) CommHitRate() float64 {
	total := s.CommHits + s.CommMisses
	if total == 0 {
		return 0
	}
	return float64(s.CommHits) / float64(total)
}

// Sub returns the per-layer traffic accumulated since an earlier
// snapshot (entry counts and byte sizes are carried over as-is — they
// are absolute).
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{
		CommHits:     s.CommHits - earlier.CommHits,
		CommMisses:   s.CommMisses - earlier.CommMisses,
		SchedHits:    s.SchedHits - earlier.SchedHits,
		SchedMisses:  s.SchedMisses - earlier.SchedMisses,
		CPHits:       s.CPHits - earlier.CPHits,
		CPMisses:     s.CPMisses - earlier.CPMisses,
		DiskHits:     s.DiskHits - earlier.DiskHits,
		DiskMisses:   s.DiskMisses - earlier.DiskMisses,
		DiskWrites:   s.DiskWrites - earlier.DiskWrites,
		DiskCorrupt:  s.DiskCorrupt - earlier.DiskCorrupt,
		MemEvictions: s.MemEvictions - earlier.MemEvictions,
		SchedEntries: s.SchedEntries,
		CommEntries:  s.CommEntries,
		MemBytes:     s.MemBytes,
		DiskEntries:  s.DiskEntries,
		DiskBytes:    s.DiskBytes,
	}
}

// CacheRecorder is a per-evaluation view of cache traffic. The shared
// EvalCache serves many concurrent evaluations; its global counters
// cannot attribute a hit to a request. Every cache lookup therefore
// also increments the recorder the engine was handed
// (EvalOptions.CacheStats), giving each run an exact, bleed-free
// delta — this is what the service's access-log `cache` blocks report.
// All methods are nil-safe; the zero value is ready to use.
type CacheRecorder struct {
	commHits, commMisses   atomic.Int64
	schedHits, schedMisses atomic.Int64
	cpHits, cpMisses       atomic.Int64
	diskHits, diskMisses   atomic.Int64
}

// recCount resolves one of r's counters by a stable index; nil
// receivers drop the count. Field addresses are only taken on non-nil
// receivers.
func (r *CacheRecorder) recCount(which int) {
	if r == nil {
		return
	}
	switch which {
	case recCommHit:
		r.commHits.Add(1)
	case recCommMiss:
		r.commMisses.Add(1)
	case recSchedHit:
		r.schedHits.Add(1)
	case recSchedMiss:
		r.schedMisses.Add(1)
	case recCPHit:
		r.cpHits.Add(1)
	case recCPMiss:
		r.cpMisses.Add(1)
	case recDiskHit:
		r.diskHits.Add(1)
	case recDiskMiss:
		r.diskMisses.Add(1)
	}
}

const (
	recCommHit = iota
	recCommMiss
	recSchedHit
	recSchedMiss
	recCPHit
	recCPMiss
	recDiskHit
	recDiskMiss
)

// Stats snapshots the recorder as a CacheStats (traffic fields only;
// occupancy belongs to the shared cache). Nil receivers return zero.
func (r *CacheRecorder) Stats() CacheStats {
	if r == nil {
		return CacheStats{}
	}
	return CacheStats{
		CommHits:    r.commHits.Load(),
		CommMisses:  r.commMisses.Load(),
		SchedHits:   r.schedHits.Load(),
		SchedMisses: r.schedMisses.Load(),
		CPHits:      r.cpHits.Load(),
		CPMisses:    r.cpMisses.Load(),
		DiskHits:    r.diskHits.Load(),
		DiskMisses:  r.diskMisses.Load(),
	}
}

// cacheStripes is the lock-striping fan-out. Stripes are selected by
// the first fingerprint byte (a sha256 byte: uniform), so concurrent
// lookups of different leaves almost never share a lock.
const cacheStripes = 64

// lruNode is one memory-resident entry, threaded on its stripe's
// recency list. A node belongs to exactly one layer: isSched picks
// which key/value pair is live.
type lruNode struct {
	prev, next *lruNode
	size       int64
	isSched    bool
	sk         schedKey
	ck         commKey
	sched      *schedule.Schedule
	comm       commEntry
}

// cacheStripe is 1/64th of the memory front: its own maps, its own
// recency list, its own counters — all guarded by one mutex, so a
// stripe's entry counts and hit/miss counters are always mutually
// consistent (a Stats fold never observes misses < entries).
type cacheStripe struct {
	mu     sync.Mutex
	scheds map[schedKey]*lruNode
	comms  map[commKey]*lruNode
	cps    map[ir.Fingerprint]int64
	lru    lruNode // sentinel: lru.next is most recent
	bytes  int64

	commHits, commMisses   int64
	schedHits, schedMisses int64
	cpHits, cpMisses       int64
	diskHits, diskMisses   int64
	evictions              int64
}

func (st *cacheStripe) moveFront(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	st.pushFront(n)
}

func (st *cacheStripe) pushFront(n *lruNode) {
	n.prev = &st.lru
	n.next = st.lru.next
	n.prev.next = n
	n.next.prev = n
}

// CacheConfig configures a persistent EvalCache (see OpenEvalCache).
// The zero value is a memory-only, unbounded cache — exactly what
// NewEvalCache returns.
type CacheConfig struct {
	// Dir is the read-write persistent store; "" keeps the cache
	// memory-only. Safe to share between processes.
	Dir string
	// Preload is a read-only seed store (e.g. the committed
	// bench/baselines/cas corpus) consulted after Dir on memory misses;
	// never written.
	Preload string
	// MemEntries bounds memory-resident sched+comm entries (0 =
	// unbounded). The bound is enforced per stripe at MemEntries/64.
	MemEntries int
	// MemBytes bounds estimated memory-resident bytes the same way.
	MemBytes int64
	// DiskBytes bounds the read-write store; background compaction
	// evicts least-recently-used records past it (0 = unbounded).
	DiskBytes int64
	// CompactEvery is the background compaction period (default 1m,
	// meaningful only with DiskBytes > 0).
	CompactEvery time.Duration
}

// EvalCache memoizes leaf characterizations across Evaluate calls. It
// is safe for concurrent use — the evaluation engine's workers read and
// write it while fanning out — and transparent: a warm cache returns
// byte-identical Metrics to a cold run because schedulers are
// deterministic and entries are keyed by everything they observe
// (content fingerprint, scheduler configuration, width, data
// parallelism, comm options).
//
// Three layers serve the experiment sweeps:
//
//   - the comm layer caches finished characterizations, hit when a
//     sweep repeats an exact configuration (fig6 and fig7 run the same
//     evaluations; fig9's k sweep shares all smaller widths);
//   - the schedule layer caches zero-communication schedules, hit when
//     only comm options changed (fig8's local-capacity sweep), so only
//     the cheap comm.Analyze re-runs;
//   - the critical-path layer caches per-fingerprint DAG depths.
//
// The memory front is sharded into 64 lock stripes keyed by fingerprint
// prefix with an optional LRU budget; behind it sit up to two
// content-addressed disk stores (internal/cas): a read-write store that
// persists every result write-through (so restarts start warm and
// memory eviction never loses work) and an optional read-only seed
// store preloaded from a committed corpus. Disk records are versioned
// and checksummed; a torn or corrupt record is a miss, never a crash.
type EvalCache struct {
	stripes    [cacheStripes]*cacheStripe
	maxEntries int   // per stripe; 0 = unbounded
	maxBytes   int64 // per stripe; 0 = unbounded

	disk *cas.Store // read-write; nil when memory-only
	seed *cas.Store // read-only preload; nil when absent
}

// NewEvalCache returns an empty, memory-only, unbounded cache.
func NewEvalCache() *EvalCache {
	c, _ := OpenEvalCache(CacheConfig{})
	return c
}

// OpenEvalCache builds a cache per cfg, opening (and creating) the
// persistent stores when configured. Close the cache when done to stop
// background compaction.
func OpenEvalCache(cfg CacheConfig) (*EvalCache, error) {
	c := &EvalCache{}
	for i := range c.stripes {
		st := &cacheStripe{
			scheds: map[schedKey]*lruNode{},
			comms:  map[commKey]*lruNode{},
			cps:    map[ir.Fingerprint]int64{},
		}
		st.lru.next, st.lru.prev = &st.lru, &st.lru
		c.stripes[i] = st
	}
	if cfg.MemEntries > 0 {
		c.maxEntries = (cfg.MemEntries + cacheStripes - 1) / cacheStripes
	}
	if cfg.MemBytes > 0 {
		c.maxBytes = (cfg.MemBytes + cacheStripes - 1) / cacheStripes
	}
	if cfg.Dir != "" {
		every := cfg.CompactEvery
		if every == 0 {
			every = time.Minute
		}
		disk, err := cas.Open(cas.Options{
			Dir:          cfg.Dir,
			MaxBytes:     cfg.DiskBytes,
			CompactEvery: every,
		})
		if err != nil {
			return nil, fmt.Errorf("core: cache dir: %w", err)
		}
		c.disk = disk
	}
	if cfg.Preload != "" {
		seed, err := cas.Open(cas.Options{Dir: cfg.Preload, ReadOnly: true})
		if err != nil {
			if c.disk != nil {
				c.disk.Close()
			}
			return nil, fmt.Errorf("core: cache preload: %w", err)
		}
		c.seed = seed
	}
	return c, nil
}

// Close stops the persistent stores' background work. Memory-only
// caches need no Close (it is a no-op).
func (c *EvalCache) Close() {
	if c.disk != nil {
		c.disk.Close()
	}
	if c.seed != nil {
		c.seed.Close()
	}
}

func (c *EvalCache) stripe(fp ir.Fingerprint) *cacheStripe {
	return c.stripes[fp[0]&(cacheStripes-1)]
}

func (c *EvalCache) hasDisk() bool { return c.disk != nil || c.seed != nil }

// diskGet consults the read-write store, then the read-only seed.
func (c *EvalCache) diskGet(k cas.Key) ([]byte, bool) {
	if c.disk != nil {
		if b, ok := c.disk.Get(k); ok {
			return b, true
		}
	}
	if c.seed != nil {
		if b, ok := c.seed.Get(k); ok {
			return b, true
		}
	}
	return nil, false
}

func (c *EvalCache) diskPut(k cas.Key, payload []byte) {
	if c.disk != nil {
		c.disk.Put(k, payload)
	}
}

// Stats snapshots traffic and occupancy. Each stripe is folded under
// its own lock, so the per-stripe invariant (entries never exceed
// misses plus disk hits) holds in every snapshot — the torn reads the
// old atomic-counters-outside-the-mutex implementation allowed cannot
// happen.
func (c *EvalCache) Stats() CacheStats {
	var out CacheStats
	for _, st := range c.stripes {
		st.mu.Lock()
		out.CommHits += st.commHits
		out.CommMisses += st.commMisses
		out.SchedHits += st.schedHits
		out.SchedMisses += st.schedMisses
		out.CPHits += st.cpHits
		out.CPMisses += st.cpMisses
		out.DiskHits += st.diskHits
		out.DiskMisses += st.diskMisses
		out.MemEvictions += st.evictions
		out.SchedEntries += len(st.scheds)
		out.CommEntries += len(st.comms)
		out.MemBytes += st.bytes
		st.mu.Unlock()
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		out.DiskWrites += ds.Writes
		out.DiskCorrupt += ds.Corrupt
		out.DiskEntries += ds.Entries
		out.DiskBytes += ds.Bytes
	}
	if c.seed != nil {
		ss := c.seed.Stats()
		out.DiskCorrupt += ss.Corrupt
		out.DiskEntries += ss.Entries
		out.DiskBytes += ss.Bytes
	}
	return out
}

// commEntrySize and scheduleSize estimate memory footprints for the
// byte budget. Schedule estimates deliberately overcount (the pinned
// materialized module is attributed to every schedule that references
// it) — for a budget, too big is the safe direction.
const commEntrySize = 192

func scheduleSize(s *schedule.Schedule) int64 {
	sz := int64(256)
	for i := range s.Steps {
		sz += 48
		for _, r := range s.Steps[i].Regions {
			sz += 24 + 4*int64(len(r))
		}
	}
	if s.M != nil {
		sz += 96 * int64(len(s.M.Ops))
	}
	return sz
}

// insert adds a node to its stripe's maps and recency list, then evicts
// from the cold end until the stripe is back under budget. The fresh
// node is never evicted. Write-through persistence means eviction just
// drops memory — the disk layer still has the record. Caller holds
// st.mu.
func (c *EvalCache) insert(st *cacheStripe, n *lruNode) {
	if n.isSched {
		st.scheds[n.sk] = n
	} else {
		st.comms[n.ck] = n
	}
	st.pushFront(n)
	st.bytes += n.size
	over := func() bool {
		if c.maxEntries > 0 && len(st.scheds)+len(st.comms) > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && st.bytes > c.maxBytes
	}
	for over() {
		victim := st.lru.prev
		if victim == &st.lru || victim == n {
			return
		}
		victim.prev.next = victim.next
		victim.next.prev = victim.prev
		if victim.isSched {
			delete(st.scheds, victim.sk)
		} else {
			delete(st.comms, victim.ck)
		}
		st.bytes -= victim.size
		st.evictions++
	}
}

// commResult looks up a finished characterization: memory stripe first,
// then the persistent stores (promoting a disk record into memory).
func (c *EvalCache) commResult(k commKey, rec *CacheRecorder) (commEntry, bool) {
	st := c.stripe(k.sk.fp)
	st.mu.Lock()
	if n, ok := st.comms[k]; ok {
		st.moveFront(n)
		st.commHits++
		st.mu.Unlock()
		rec.recCount(recCommHit)
		return n.comm, true
	}
	if !c.hasDisk() {
		st.commMisses++
		st.mu.Unlock()
		rec.recCount(recCommMiss)
		return commEntry{}, false
	}
	st.mu.Unlock()

	ck := k.casKey()
	if payload, ok := c.diskGet(ck); ok {
		if e, ok := decodeCommEntry(payload); ok {
			st.mu.Lock()
			if n, dup := st.comms[k]; dup {
				e = n.comm
				st.moveFront(n)
			} else {
				c.insert(st, &lruNode{size: commEntrySize, ck: k, comm: e})
			}
			st.commHits++
			st.diskHits++
			st.mu.Unlock()
			rec.recCount(recCommHit)
			rec.recCount(recDiskHit)
			return e, true
		}
		// Framing was valid but the payload shape is wrong: a stale
		// record from an incompatible build. Drop it and recompute.
		if c.disk != nil {
			c.disk.Delete(ck)
		}
	}
	st.mu.Lock()
	st.commMisses++
	st.diskMisses++
	st.mu.Unlock()
	rec.recCount(recCommMiss)
	rec.recCount(recDiskMiss)
	return commEntry{}, false
}

func (c *EvalCache) putCommResult(k commKey, e commEntry) {
	st := c.stripe(k.sk.fp)
	st.mu.Lock()
	if n, ok := st.comms[k]; ok {
		st.moveFront(n)
		st.mu.Unlock()
	} else {
		c.insert(st, &lruNode{size: commEntrySize, ck: k, comm: e})
		st.mu.Unlock()
	}
	c.diskPut(k.casKey(), encodeCommEntry(e))
}

// schedule looks up a zero-communication schedule. A disk record is
// JSON that only binds to its materialized module, so the caller passes
// bind — the leaf's once-guarded materializer — invoked only on the
// memory-miss/disk-hit path. A record that no longer binds (stale
// fingerprint) is deleted and treated as a miss.
func (c *EvalCache) schedule(k schedKey, rec *CacheRecorder, bind func() (*ir.Module, error)) (*schedule.Schedule, bool) {
	st := c.stripe(k.fp)
	st.mu.Lock()
	if n, ok := st.scheds[k]; ok {
		st.moveFront(n)
		st.schedHits++
		st.mu.Unlock()
		rec.recCount(recSchedHit)
		return n.sched, true
	}
	if !c.hasDisk() {
		st.schedMisses++
		st.mu.Unlock()
		rec.recCount(recSchedMiss)
		return nil, false
	}
	st.mu.Unlock()

	ck := k.casKey()
	if payload, ok := c.diskGet(ck); ok && bind != nil {
		// Materialization and decode run outside the stripe lock: both
		// can be expensive and neither touches stripe state.
		if s := decodeSchedule(payload, bind); s != nil {
			st.mu.Lock()
			if n, dup := st.scheds[k]; dup {
				s = n.sched
				st.moveFront(n)
			} else {
				c.insert(st, &lruNode{size: scheduleSize(s), isSched: true, sk: k, sched: s})
			}
			st.schedHits++
			st.diskHits++
			st.mu.Unlock()
			rec.recCount(recSchedHit)
			rec.recCount(recDiskHit)
			return s, true
		}
		if c.disk != nil {
			c.disk.Delete(ck)
		}
	}
	st.mu.Lock()
	st.schedMisses++
	st.diskMisses++
	st.mu.Unlock()
	rec.recCount(recSchedMiss)
	rec.recCount(recDiskMiss)
	return nil, false
}

func decodeSchedule(payload []byte, bind func() (*ir.Module, error)) *schedule.Schedule {
	m, err := bind()
	if err != nil {
		return nil
	}
	s, err := schedule.ReadJSON(bytes.NewReader(payload), m)
	if err != nil {
		return nil
	}
	return s
}

func (c *EvalCache) putSchedule(k schedKey, s *schedule.Schedule) {
	st := c.stripe(k.fp)
	st.mu.Lock()
	if n, ok := st.scheds[k]; ok {
		st.moveFront(n)
		st.mu.Unlock()
	} else {
		c.insert(st, &lruNode{size: scheduleSize(s), isSched: true, sk: k, sched: s})
		st.mu.Unlock()
	}
	if c.disk != nil {
		var buf bytes.Buffer
		if err := schedule.WriteJSON(&buf, s); err == nil {
			c.disk.Put(k.casKey(), buf.Bytes())
		}
	}
}

func (c *EvalCache) criticalPath(fp ir.Fingerprint, rec *CacheRecorder) (int64, bool) {
	st := c.stripe(fp)
	st.mu.Lock()
	if cp, ok := st.cps[fp]; ok {
		st.cpHits++
		st.mu.Unlock()
		rec.recCount(recCPHit)
		return cp, true
	}
	if !c.hasDisk() {
		st.cpMisses++
		st.mu.Unlock()
		rec.recCount(recCPMiss)
		return 0, false
	}
	st.mu.Unlock()

	if payload, ok := c.diskGet(cpCasKey(fp)); ok && len(payload) == 8 {
		cp := int64(binary.LittleEndian.Uint64(payload))
		st.mu.Lock()
		st.cps[fp] = cp
		st.cpHits++
		st.diskHits++
		st.mu.Unlock()
		rec.recCount(recCPHit)
		rec.recCount(recDiskHit)
		return cp, true
	}
	st.mu.Lock()
	st.cpMisses++
	st.diskMisses++
	st.mu.Unlock()
	rec.recCount(recCPMiss)
	rec.recCount(recDiskMiss)
	return 0, false
}

func (c *EvalCache) putCriticalPath(fp ir.Fingerprint, cp int64) {
	st := c.stripe(fp)
	st.mu.Lock()
	st.cps[fp] = cp
	st.mu.Unlock()
	if c.disk != nil {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(cp))
		c.disk.Put(cpCasKey(fp), b)
	}
}
