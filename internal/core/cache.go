package core

import (
	"sync"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// schedKey identifies one leaf characterization input up to (but not
// including) the communication model: what the fine-grained scheduler
// sees. Content-addressing via the fingerprint means structurally
// identical leaves — even across programs — share entries.
type schedKey struct {
	fp     ir.Fingerprint
	config string // scheduler name + tuning knobs
	w, d   int
}

// commKey extends schedKey with the communication options, the full key
// of one characterized (width, config) point.
type commKey struct {
	sk   schedKey
	comm comm.Options
}

// commEntry is a fully characterized leaf width: the zero-communication
// schedule length plus the movement-expanded cost. It is all the
// hierarchical composition needs, so a hit here skips scheduling and
// analysis entirely.
type commEntry struct {
	zeroLen int64
	cycles  int64
	globals int64
	locals  int64
}

// CacheStats counts EvalCache traffic, split by layer. A "schedule" hit
// with a "comm" miss is the sweep fast path: the zero-communication
// schedule is reused and only comm.Analyze re-runs under the new
// movement options.
type CacheStats struct {
	CommHits     int64
	CommMisses   int64
	SchedHits    int64
	SchedMisses  int64
	CPHits       int64
	CPMisses     int64
	SchedEntries int
	CommEntries  int
}

// EvalCache memoizes leaf characterizations across Evaluate calls. It is
// safe for concurrent use — the evaluation engine's workers read and
// write it while fanning out — and transparent: a warm cache returns
// byte-identical Metrics to a cold run because schedulers are
// deterministic and entries are keyed by everything they observe
// (content fingerprint, scheduler configuration, width, data
// parallelism, comm options).
//
// Two layers serve the experiment sweeps:
//
//   - the comm layer caches finished characterizations, hit when a
//     sweep repeats an exact configuration (fig6 and fig7 run the same
//     evaluations; fig9's k sweep shares all smaller widths);
//   - the schedule layer caches zero-communication schedules, hit when
//     only comm options changed (fig8's local-capacity sweep), so only
//     the cheap comm.Analyze re-runs.
type EvalCache struct {
	mu     sync.Mutex
	scheds map[schedKey]*schedule.Schedule
	comms  map[commKey]commEntry
	cps    map[ir.Fingerprint]int64
	stats  CacheStats
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{
		scheds: map[schedKey]*schedule.Schedule{},
		comms:  map[commKey]commEntry{},
		cps:    map[ir.Fingerprint]int64{},
	}
}

// Stats snapshots the hit/miss counters and entry counts.
func (c *EvalCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.SchedEntries = len(c.scheds)
	s.CommEntries = len(c.comms)
	return s
}

func (c *EvalCache) commResult(k commKey) (commEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.comms[k]
	if ok {
		c.stats.CommHits++
	} else {
		c.stats.CommMisses++
	}
	return e, ok
}

func (c *EvalCache) putCommResult(k commKey, e commEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.comms[k] = e
}

func (c *EvalCache) schedule(k schedKey) (*schedule.Schedule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.scheds[k]
	if ok {
		c.stats.SchedHits++
	} else {
		c.stats.SchedMisses++
	}
	return s, ok
}

func (c *EvalCache) putSchedule(k schedKey, s *schedule.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scheds[k] = s
}

func (c *EvalCache) criticalPath(fp ir.Fingerprint) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.cps[fp]
	if ok {
		c.stats.CPHits++
	} else {
		c.stats.CPMisses++
	}
	return cp, ok
}

func (c *EvalCache) putCriticalPath(fp ir.Fingerprint, cp int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cps[fp] = cp
}
