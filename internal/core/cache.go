package core

import (
	"sync"
	"sync/atomic"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// schedKey identifies one leaf characterization input up to (but not
// including) the communication model: what the fine-grained scheduler
// sees. Content-addressing via the fingerprint means structurally
// identical leaves — even across programs — share entries.
type schedKey struct {
	fp     ir.Fingerprint
	config string // scheduler name + tuning knobs
	w, d   int
}

// commKey extends schedKey with the communication options, the full key
// of one characterized (width, config) point.
type commKey struct {
	sk   schedKey
	comm comm.Options
}

// commEntry is a fully characterized leaf width: the zero-communication
// schedule length plus the movement-expanded cost. It is all the
// hierarchical composition needs, so a hit here skips scheduling and
// analysis entirely.
type commEntry struct {
	zeroLen int64
	cycles  int64
	globals int64
	locals  int64
}

// CacheStats counts EvalCache traffic, split by layer. A "schedule" hit
// with a "comm" miss is the sweep fast path: the zero-communication
// schedule is reused and only comm.Analyze re-runs under the new
// movement options.
type CacheStats struct {
	CommHits     int64
	CommMisses   int64
	SchedHits    int64
	SchedMisses  int64
	CPHits       int64
	CPMisses     int64
	SchedEntries int
	CommEntries  int
}

// CommHitRate is the comm-layer hit fraction (0 when the layer is
// untouched), the headline number of qbench's perf records.
func (s CacheStats) CommHitRate() float64 {
	total := s.CommHits + s.CommMisses
	if total == 0 {
		return 0
	}
	return float64(s.CommHits) / float64(total)
}

// Sub returns the per-layer traffic accumulated since an earlier
// snapshot (entry counts are carried over as-is — they are absolute).
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{
		CommHits:     s.CommHits - earlier.CommHits,
		CommMisses:   s.CommMisses - earlier.CommMisses,
		SchedHits:    s.SchedHits - earlier.SchedHits,
		SchedMisses:  s.SchedMisses - earlier.SchedMisses,
		CPHits:       s.CPHits - earlier.CPHits,
		CPMisses:     s.CPMisses - earlier.CPMisses,
		SchedEntries: s.SchedEntries,
		CommEntries:  s.CommEntries,
	}
}

// EvalCache memoizes leaf characterizations across Evaluate calls. It is
// safe for concurrent use — the evaluation engine's workers read and
// write it while fanning out — and transparent: a warm cache returns
// byte-identical Metrics to a cold run because schedulers are
// deterministic and entries are keyed by everything they observe
// (content fingerprint, scheduler configuration, width, data
// parallelism, comm options).
//
// Two layers serve the experiment sweeps:
//
//   - the comm layer caches finished characterizations, hit when a
//     sweep repeats an exact configuration (fig6 and fig7 run the same
//     evaluations; fig9's k sweep shares all smaller widths);
//   - the schedule layer caches zero-communication schedules, hit when
//     only comm options changed (fig8's local-capacity sweep), so only
//     the cheap comm.Analyze re-runs.
//
// Hit/miss traffic is counted per layer in atomic counters, read via
// Stats without perturbing concurrent lookups.
type EvalCache struct {
	mu     sync.Mutex
	scheds map[schedKey]*schedule.Schedule
	comms  map[commKey]commEntry
	cps    map[ir.Fingerprint]int64

	commHits, commMisses   atomic.Int64
	schedHits, schedMisses atomic.Int64
	cpHits, cpMisses       atomic.Int64
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{
		scheds: map[schedKey]*schedule.Schedule{},
		comms:  map[commKey]commEntry{},
		cps:    map[ir.Fingerprint]int64{},
	}
}

// Stats snapshots the hit/miss counters and entry counts.
func (c *EvalCache) Stats() CacheStats {
	c.mu.Lock()
	se, ce := len(c.scheds), len(c.comms)
	c.mu.Unlock()
	return CacheStats{
		CommHits:     c.commHits.Load(),
		CommMisses:   c.commMisses.Load(),
		SchedHits:    c.schedHits.Load(),
		SchedMisses:  c.schedMisses.Load(),
		CPHits:       c.cpHits.Load(),
		CPMisses:     c.cpMisses.Load(),
		SchedEntries: se,
		CommEntries:  ce,
	}
}

// hit increments h on ok, m otherwise, and passes ok through.
func hit(ok bool, h, m *atomic.Int64) bool {
	if ok {
		h.Add(1)
	} else {
		m.Add(1)
	}
	return ok
}

func (c *EvalCache) commResult(k commKey) (commEntry, bool) {
	c.mu.Lock()
	e, ok := c.comms[k]
	c.mu.Unlock()
	return e, hit(ok, &c.commHits, &c.commMisses)
}

func (c *EvalCache) putCommResult(k commKey, e commEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.comms[k] = e
}

func (c *EvalCache) schedule(k schedKey) (*schedule.Schedule, bool) {
	c.mu.Lock()
	s, ok := c.scheds[k]
	c.mu.Unlock()
	return s, hit(ok, &c.schedHits, &c.schedMisses)
}

func (c *EvalCache) putSchedule(k schedKey, s *schedule.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scheds[k] = s
}

func (c *EvalCache) criticalPath(fp ir.Fingerprint) (int64, bool) {
	c.mu.Lock()
	cp, ok := c.cps[fp]
	c.mu.Unlock()
	return cp, hit(ok, &c.cpHits, &c.cpMisses)
}

func (c *EvalCache) putCriticalPath(fp ir.Fingerprint, cp int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cps[fp] = cp
}
