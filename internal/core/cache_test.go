package core

import (
	"sync"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// TestCacheLayerAccounting drives each cache layer directly: a lookup
// before a put counts a miss, after a put counts a hit, and the layers
// never bleed into each other's counters.
func TestCacheLayerAccounting(t *testing.T) {
	c := NewEvalCache()
	fp := ir.Fingerprint{1, 2, 3}
	sk := schedKey{fp: fp, config: "test", w: 4, d: 0}
	ck := commKey{sk: sk, comm: comm.Options{LocalCapacity: -1}}

	if _, ok := c.schedule(sk); ok {
		t.Fatal("empty cache returned a schedule")
	}
	c.putSchedule(sk, &schedule.Schedule{K: 4})
	if s, ok := c.schedule(sk); !ok || s.K != 4 {
		t.Fatal("put schedule not returned")
	}
	if _, ok := c.commResult(ck); ok {
		t.Fatal("empty comm layer returned an entry")
	}
	c.putCommResult(ck, commEntry{zeroLen: 7, cycles: 21})
	if e, ok := c.commResult(ck); !ok || e.cycles != 21 {
		t.Fatal("put comm entry not returned")
	}
	if _, ok := c.criticalPath(fp); ok {
		t.Fatal("empty cp layer returned an entry")
	}
	c.putCriticalPath(fp, 99)
	if cp, ok := c.criticalPath(fp); !ok || cp != 99 {
		t.Fatal("put critical path not returned")
	}

	want := CacheStats{
		CommHits: 1, CommMisses: 1,
		SchedHits: 1, SchedMisses: 1,
		CPHits: 1, CPMisses: 1,
		SchedEntries: 1, CommEntries: 1,
	}
	if got := c.Stats(); got != want {
		t.Errorf("Stats() = %+v, want %+v", got, want)
	}
}

// TestCacheKeyDiscrimination pins the layering: a different comm option
// misses the comm layer while the same schedKey still hits the schedule
// layer (the fig8 sweep fast path), and a different width misses both.
func TestCacheKeyDiscrimination(t *testing.T) {
	c := NewEvalCache()
	sk := schedKey{config: "rcp", w: 4}
	c.putSchedule(sk, &schedule.Schedule{K: 4})
	c.putCommResult(commKey{sk: sk}, commEntry{cycles: 5})

	if _, ok := c.commResult(commKey{sk: sk, comm: comm.Options{LocalCapacity: 8}}); ok {
		t.Error("comm layer hit across different comm options")
	}
	if _, ok := c.schedule(sk); !ok {
		t.Error("schedule layer missed its exact key")
	}
	if _, ok := c.schedule(schedKey{config: "rcp", w: 2}); ok {
		t.Error("schedule layer hit across different widths")
	}
	st := c.Stats()
	if st.SchedHits != 1 || st.SchedMisses != 1 || st.CommMisses != 1 {
		t.Errorf("unexpected traffic: %+v", st)
	}
}

// TestCacheStatsHelpers checks the Sub delta and the hit-rate maths.
func TestCacheStatsHelpers(t *testing.T) {
	a := CacheStats{CommHits: 10, CommMisses: 2, SchedHits: 4, SchedEntries: 3, CommEntries: 5}
	b := CacheStats{CommHits: 4, CommMisses: 1, SchedHits: 1}
	d := a.Sub(b)
	if d.CommHits != 6 || d.CommMisses != 1 || d.SchedHits != 3 {
		t.Errorf("Sub = %+v", d)
	}
	if d.SchedEntries != 3 || d.CommEntries != 5 {
		t.Errorf("Sub dropped absolute entry counts: %+v", d)
	}
	if got := (CacheStats{CommHits: 3, CommMisses: 1}).CommHitRate(); got != 0.75 {
		t.Errorf("CommHitRate = %v, want 0.75", got)
	}
	if got := (CacheStats{}).CommHitRate(); got != 0 {
		t.Errorf("CommHitRate of empty stats = %v, want 0", got)
	}
}

// TestCacheCountersConcurrent hammers both layers from many goroutines
// so -race exercises the atomic counters, then checks totals.
func TestCacheCountersConcurrent(t *testing.T) {
	c := NewEvalCache()
	sk := schedKey{config: "x", w: 1}
	c.putSchedule(sk, &schedule.Schedule{K: 1})
	c.putCommResult(commKey{sk: sk}, commEntry{})
	const goroutines, iters = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.schedule(sk)                    // hit
				c.schedule(schedKey{config: "y"}) // miss
				c.commResult(commKey{sk: sk})     // hit
				c.commResult(commKey{})           // miss
				c.criticalPath(ir.Fingerprint{1}) // miss
				c.putCriticalPath(ir.Fingerprint{1}, 1)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	n := int64(goroutines * iters)
	if st.SchedHits != n || st.SchedMisses != n || st.CommHits != n || st.CommMisses != n {
		t.Errorf("lost counts under concurrency: %+v (want %d per column)", st, n)
	}
	if st.CPHits+st.CPMisses != n {
		t.Errorf("cp traffic %d+%d, want total %d", st.CPHits, st.CPMisses, n)
	}
}
