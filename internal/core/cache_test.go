package core

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// TestCacheLayerAccounting drives each cache layer directly: a lookup
// before a put counts a miss, after a put counts a hit, and the layers
// never bleed into each other's counters.
func TestCacheLayerAccounting(t *testing.T) {
	c := NewEvalCache()
	fp := ir.Fingerprint{1, 2, 3}
	sk := schedKey{fp: fp, config: "test", w: 4, d: 0}
	ck := commKey{sk: sk, comm: comm.Options{LocalCapacity: -1}}

	if _, ok := c.schedule(sk, nil, nil); ok {
		t.Fatal("empty cache returned a schedule")
	}
	c.putSchedule(sk, &schedule.Schedule{K: 4})
	if s, ok := c.schedule(sk, nil, nil); !ok || s.K != 4 {
		t.Fatal("put schedule not returned")
	}
	if _, ok := c.commResult(ck, nil); ok {
		t.Fatal("empty comm layer returned an entry")
	}
	c.putCommResult(ck, commEntry{zeroLen: 7, cycles: 21})
	if e, ok := c.commResult(ck, nil); !ok || e.cycles != 21 {
		t.Fatal("put comm entry not returned")
	}
	if _, ok := c.criticalPath(fp, nil); ok {
		t.Fatal("empty cp layer returned an entry")
	}
	c.putCriticalPath(fp, 99)
	if cp, ok := c.criticalPath(fp, nil); !ok || cp != 99 {
		t.Fatal("put critical path not returned")
	}

	got := c.Stats()
	if got.MemBytes <= 0 {
		t.Errorf("MemBytes = %d, want > 0", got.MemBytes)
	}
	got.MemBytes = 0
	want := CacheStats{
		CommHits: 1, CommMisses: 1,
		SchedHits: 1, SchedMisses: 1,
		CPHits: 1, CPMisses: 1,
		SchedEntries: 1, CommEntries: 1,
	}
	if got != want {
		t.Errorf("Stats() = %+v, want %+v", got, want)
	}
}

// TestCacheKeyDiscrimination pins the layering: a different comm option
// misses the comm layer while the same schedKey still hits the schedule
// layer (the fig8 sweep fast path), and a different width misses both.
func TestCacheKeyDiscrimination(t *testing.T) {
	c := NewEvalCache()
	sk := schedKey{config: "rcp", w: 4}
	c.putSchedule(sk, &schedule.Schedule{K: 4})
	c.putCommResult(commKey{sk: sk}, commEntry{cycles: 5})

	if _, ok := c.commResult(commKey{sk: sk, comm: comm.Options{LocalCapacity: 8}}, nil); ok {
		t.Error("comm layer hit across different comm options")
	}
	if _, ok := c.schedule(sk, nil, nil); !ok {
		t.Error("schedule layer missed its exact key")
	}
	if _, ok := c.schedule(schedKey{config: "rcp", w: 2}, nil, nil); ok {
		t.Error("schedule layer hit across different widths")
	}
	st := c.Stats()
	if st.SchedHits != 1 || st.SchedMisses != 1 || st.CommMisses != 1 {
		t.Errorf("unexpected traffic: %+v", st)
	}
}

// TestCacheStatsHelpers checks the Sub delta and the hit-rate maths.
func TestCacheStatsHelpers(t *testing.T) {
	a := CacheStats{
		CommHits: 10, CommMisses: 2, SchedHits: 4,
		DiskHits: 6, DiskMisses: 3, DiskWrites: 9, MemEvictions: 4,
		SchedEntries: 3, CommEntries: 5, MemBytes: 100, DiskEntries: 7, DiskBytes: 900,
	}
	b := CacheStats{CommHits: 4, CommMisses: 1, SchedHits: 1, DiskHits: 2, DiskWrites: 4, MemEvictions: 1}
	d := a.Sub(b)
	if d.CommHits != 6 || d.CommMisses != 1 || d.SchedHits != 3 {
		t.Errorf("Sub = %+v", d)
	}
	if d.DiskHits != 4 || d.DiskMisses != 3 || d.DiskWrites != 5 || d.MemEvictions != 3 {
		t.Errorf("Sub disk traffic = %+v", d)
	}
	if d.SchedEntries != 3 || d.CommEntries != 5 || d.MemBytes != 100 || d.DiskEntries != 7 || d.DiskBytes != 900 {
		t.Errorf("Sub dropped absolute occupancy: %+v", d)
	}
	if got := (CacheStats{CommHits: 3, CommMisses: 1}).CommHitRate(); got != 0.75 {
		t.Errorf("CommHitRate = %v, want 0.75", got)
	}
	if got := (CacheStats{}).CommHitRate(); got != 0 {
		t.Errorf("CommHitRate of empty stats = %v, want 0", got)
	}
}

// TestCacheCountersConcurrent hammers both layers from many goroutines
// so -race exercises the striped counters, then checks the global
// totals and that per-goroutine recorders sum exactly to them — the
// attribution contract the service's access logs depend on.
func TestCacheCountersConcurrent(t *testing.T) {
	c := NewEvalCache()
	sk := schedKey{config: "x", w: 1}
	c.putSchedule(sk, &schedule.Schedule{K: 1})
	c.putCommResult(commKey{sk: sk}, commEntry{})
	c.putCriticalPath(ir.Fingerprint{1}, 1)
	before := c.Stats()
	const goroutines, iters = 8, 100
	recs := make([]*CacheRecorder, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		recs[i] = &CacheRecorder{}
		wg.Add(1)
		go func(rec *CacheRecorder) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				c.schedule(sk, rec, nil)                    // hit
				c.schedule(schedKey{config: "y"}, rec, nil) // miss
				c.commResult(commKey{sk: sk}, rec)          // hit
				c.commResult(commKey{}, rec)                // miss
				c.criticalPath(ir.Fingerprint{1}, rec)      // hit
				c.criticalPath(ir.Fingerprint{2}, rec)      // miss
			}
		}(recs[i])
	}
	wg.Wait()
	st := c.Stats().Sub(before)
	n := int64(goroutines * iters)
	if st.SchedHits != n || st.SchedMisses != n || st.CommHits != n || st.CommMisses != n ||
		st.CPHits != n || st.CPMisses != n {
		t.Errorf("lost counts under concurrency: %+v (want %d per column)", st, n)
	}
	var sum CacheStats
	for _, rec := range recs {
		rs := rec.Stats()
		sum.SchedHits += rs.SchedHits
		sum.SchedMisses += rs.SchedMisses
		sum.CommHits += rs.CommHits
		sum.CommMisses += rs.CommMisses
		sum.CPHits += rs.CPHits
		sum.CPMisses += rs.CPMisses
	}
	if sum.SchedHits != st.SchedHits || sum.SchedMisses != st.SchedMisses ||
		sum.CommHits != st.CommHits || sum.CommMisses != st.CommMisses ||
		sum.CPHits != st.CPHits || sum.CPMisses != st.CPMisses {
		t.Errorf("recorder sum %+v != global delta %+v", sum, st)
	}
}

// sameStripeKey builds the i-th schedKey landing on stripe 0, so
// eviction tests control exactly which stripe fills up.
func sameStripeKey(i int) commKey {
	var fp ir.Fingerprint
	fp[1] = byte(i)
	fp[2] = byte(i >> 8)
	return commKey{sk: schedKey{fp: fp, config: "ev", w: 1}}
}

// TestCacheMemEntryBudget: with a per-stripe entry budget of 2, the
// least-recently-used entry of a stripe is evicted on overflow — and a
// fresh Get keeps an entry alive (true LRU, not FIFO).
func TestCacheMemEntryBudget(t *testing.T) {
	// MemEntries is a global budget split across 64 stripes.
	c, err := OpenEvalCache(CacheConfig{MemEntries: 2 * cacheStripes})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := sameStripeKey(1), sameStripeKey(2), sameStripeKey(3)
	c.putCommResult(a, commEntry{cycles: 1})
	c.putCommResult(b, commEntry{cycles: 2})
	if _, ok := c.commResult(a, nil); !ok { // a is now most recent
		t.Fatal("a missing before overflow")
	}
	c.putCommResult(d, commEntry{cycles: 3}) // evicts b, the coldest
	if _, ok := c.commResult(b, nil); ok {
		t.Error("LRU victim b survived eviction")
	}
	for _, k := range []commKey{a, d} {
		if _, ok := c.commResult(k, nil); !ok {
			t.Errorf("entry %v evicted out of LRU order", k.sk.fp[:3])
		}
	}
	st := c.Stats()
	if st.MemEvictions != 1 || st.CommEntries != 2 {
		t.Errorf("stats = %+v; want 1 eviction, 2 entries", st)
	}
}

// TestCacheMemByteBudget: the byte budget evicts as well.
func TestCacheMemByteBudget(t *testing.T) {
	c, err := OpenEvalCache(CacheConfig{MemBytes: commEntrySize * cacheStripes})
	if err != nil {
		t.Fatal(err)
	}
	c.putCommResult(sameStripeKey(1), commEntry{})
	c.putCommResult(sameStripeKey(2), commEntry{})
	st := c.Stats()
	if st.CommEntries != 1 || st.MemEvictions != 1 {
		t.Errorf("stats = %+v; want 1 entry after byte-budget eviction", st)
	}
	if st.MemBytes > commEntrySize {
		t.Errorf("MemBytes = %d over per-stripe budget %d", st.MemBytes, commEntrySize)
	}
}

// testLeafModule builds a tiny real leaf whose fingerprint anchors
// persisted schedule records.
func testLeafModule() *ir.Module {
	m := ir.NewModule("leaf", []ir.Reg{{Name: "q", Size: 2}}, nil)
	m.Gate(0, 0)
	m.Gate(0, 1)
	return m
}

// TestCachePersistentRoundTrip is the restart story: results written by
// one cache instance are served — byte-identical — by a fresh instance
// over the same directory, for all three layers, counted as disk hits.
func TestCachePersistentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := testLeafModule()
	fp := m.Fingerprint()
	sk := schedKey{fp: fp, config: "rcp", w: 2}
	ck := commKey{sk: sk, comm: comm.Options{LocalCapacity: 4}}
	sched := &schedule.Schedule{M: m, K: 2, Steps: []schedule.Step{
		{Regions: [][]int32{{0}, {1}}},
	}}

	c1, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.putSchedule(sk, sched)
	c1.putCommResult(ck, commEntry{zeroLen: 1, cycles: 9, globals: 2, locals: 3})
	c1.putCriticalPath(fp, 17)
	c1.Close()

	c2, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rec := &CacheRecorder{}
	e, ok := c2.commResult(ck, rec)
	if !ok || (e != commEntry{zeroLen: 1, cycles: 9, globals: 2, locals: 3}) {
		t.Fatalf("comm round trip = %+v, %v", e, ok)
	}
	cp, ok := c2.criticalPath(fp, rec)
	if !ok || cp != 17 {
		t.Fatalf("cp round trip = %d, %v", cp, ok)
	}
	bind := func() (*ir.Module, error) { return m, nil }
	s2, ok := c2.schedule(sk, rec, bind)
	if !ok {
		t.Fatal("schedule round trip missed")
	}
	if s2.K != sched.K || !reflect.DeepEqual(s2.Steps, sched.Steps) {
		t.Fatalf("schedule round trip differs: %+v vs %+v", s2, sched)
	}
	if rs := rec.Stats(); rs.DiskHits != 3 || rs.DiskMisses != 0 {
		t.Errorf("recorder = %+v; want 3 disk hits", rs)
	}
	// Promoted into memory: a repeat lookup is a pure memory hit.
	beforeRepeat := c2.Stats()
	if _, ok := c2.commResult(ck, nil); !ok {
		t.Fatal("promoted entry missing")
	}
	if d := c2.Stats().Sub(beforeRepeat); d.DiskHits != 0 || d.CommHits != 1 {
		t.Errorf("repeat lookup delta = %+v; want pure memory hit", d)
	}
}

// TestCachePreloadSeed: a read-only seed corpus (CacheConfig.Preload)
// serves hits without being written or mutated.
func TestCachePreloadSeed(t *testing.T) {
	seedDir := t.TempDir()
	fp := ir.Fingerprint{42}
	ck := commKey{sk: schedKey{fp: fp, config: "rcp", w: 4}}
	w, err := OpenEvalCache(CacheConfig{Dir: seedDir})
	if err != nil {
		t.Fatal(err)
	}
	w.putCommResult(ck, commEntry{cycles: 5})
	w.Close()

	rwDir := t.TempDir()
	c, err := OpenEvalCache(CacheConfig{Dir: rwDir, Preload: seedDir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if e, ok := c.commResult(ck, nil); !ok || e.cycles != 5 {
		t.Fatalf("seed lookup = %+v, %v", e, ok)
	}
	// New results land in the read-write dir, never the seed.
	other := commKey{sk: schedKey{fp: ir.Fingerprint{43}, config: "rcp", w: 4}}
	c.putCommResult(other, commEntry{cycles: 6})
	seedOnly, err := OpenEvalCache(CacheConfig{Preload: seedDir})
	if err != nil {
		t.Fatal(err)
	}
	defer seedOnly.Close()
	if _, ok := seedOnly.commResult(other, nil); ok {
		t.Error("write leaked into the read-only seed corpus")
	}
}

// TestCacheStaleScheduleRecordIsMiss: a persisted schedule whose module
// no longer hashes the same (a stale corpus against changed code) must
// degrade to a miss and drop the record — never bind or crash.
func TestCacheStaleScheduleRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	m := testLeafModule()
	sk := schedKey{fp: m.Fingerprint(), config: "rcp", w: 2}
	c1, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.putSchedule(sk, &schedule.Schedule{M: m, K: 2, Steps: []schedule.Step{{Regions: [][]int32{{0}}}}})
	c1.Close()

	c2, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	different := ir.NewModule("leaf", []ir.Reg{{Name: "q", Size: 3}}, nil)
	different.Gate(0, 2)
	bind := func() (*ir.Module, error) { return different, nil }
	if _, ok := c2.schedule(sk, nil, bind); ok {
		t.Fatal("stale schedule record bound to a different module")
	}
	// The bad record is gone: a rebuilt module misses cleanly without
	// re-reading it.
	if st := c2.Stats(); st.SchedMisses != 1 || st.DiskMisses != 1 {
		t.Errorf("stats after stale bind = %+v", st)
	}
}

// TestCacheEvictedEntryServedFromDisk: write-through persistence means
// memory eviction costs a disk read, not a recompute.
func TestCacheEvictedEntryServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenEvalCache(CacheConfig{Dir: dir, MemEntries: cacheStripes}) // 1 per stripe
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	a, b := sameStripeKey(1), sameStripeKey(2)
	c.putCommResult(a, commEntry{cycles: 11})
	c.putCommResult(b, commEntry{cycles: 22}) // evicts a from memory
	e, ok := c.commResult(a, nil)
	if !ok || e.cycles != 11 {
		t.Fatalf("evicted entry not restored from disk: %+v, %v", e, ok)
	}
	st := c.Stats()
	if st.MemEvictions < 1 || st.DiskHits != 1 {
		t.Errorf("stats = %+v; want eviction + disk hit", st)
	}
}

// TestCacheSurvivesAbruptStop is the kill-9 half of the crash-safety
// contract at the cache level: no Close, no flush — every completed Put
// must already be durable (write-through + atomic rename), and a fresh
// cache over the directory serves identical bytes.
func TestCacheSurvivesAbruptStop(t *testing.T) {
	dir := t.TempDir()
	m := testLeafModule()
	sk := schedKey{fp: m.Fingerprint(), config: "lpfs", w: 2}
	sched := &schedule.Schedule{M: m, K: 2, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}}},
		{Regions: [][]int32{{1}, {0}}},
	}}
	c1, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.putSchedule(sk, sched)
	// Simulated kill -9: c1 is abandoned, never Closed.

	c2, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2, ok := c2.schedule(sk, nil, func() (*ir.Module, error) { return m, nil })
	if !ok {
		t.Fatal("schedule lost after abrupt stop")
	}
	if !reflect.DeepEqual(s2.Steps, sched.Steps) {
		t.Fatalf("schedule differs after abrupt stop: %+v vs %+v", s2.Steps, sched.Steps)
	}
	c1.Close() // only to stop goroutines under -race cleanliness
}

// TestCacheCorruptDiskRecordIsMiss: flipping bits in a persisted record
// demotes it to a miss (and quarantine) at the cache level too.
func TestCacheCorruptDiskRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	ck := commKey{sk: schedKey{fp: ir.Fingerprint{7}, config: "rcp", w: 1}}
	c1, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.putCommResult(ck, commEntry{cycles: 5})
	c1.Close()

	// Corrupt every record file under the store.
	var corrupted int
	filepath.Walk(filepath.Join(dir, "shards"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			data, rerr := os.ReadFile(path)
			if rerr == nil && len(data) > 0 {
				data[len(data)-1] ^= 0xff
				os.WriteFile(path, data, 0o644)
				corrupted++
			}
		}
		return nil
	})
	if corrupted == 0 {
		t.Fatal("no record files found to corrupt")
	}

	c2, err := OpenEvalCache(CacheConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.commResult(ck, nil); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if st := c2.Stats(); st.DiskCorrupt != 1 || st.CommMisses != 1 {
		t.Errorf("stats = %+v; want 1 corrupt, 1 comm miss", st)
	}
}
