// Package request defines the one validated compilation-request surface
// shared by the qsched command line and the qschedd daemon: a Config
// names a program (inline source or bundled benchmark), a scheduler from
// the registry, the Multi-SIMD(k,d) machine shape and the communication
// model, plus the verify/profile toggles. Flag parsing (RegisterFlags)
// and JSON decoding produce the same struct, so both front ends share a
// single validation path (Validate) and build/evaluate identically.
package request

import (
	"flag"
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/obs"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Default values applied by WithDefaults when a field is unset.
const (
	DefaultScheduler = "lpfs"
	DefaultK         = 4
	DefaultEntry     = "main"
	DefaultFTh       = 2000 // exploration-scale flattening threshold
)

// Config is one compilation request. The zero value plus a Source (or
// Bench) is valid after WithDefaults. JSON field names are the daemon's
// v1 wire contract; the flag names RegisterFlags installs are qsched's.
type Config struct {
	// Source is inline Scaffold-lite source. Exactly one of Source and
	// Bench must be set.
	Source string `json:"source,omitempty"`
	// Bench names a bundled benchmark (bench.ByName).
	Bench string `json:"bench,omitempty"`
	// Entry is the entry module (default "main").
	Entry string `json:"entry,omitempty"`
	// FTh is the flattening threshold in gates (default 2000).
	FTh int64 `json:"fth,omitempty"`

	// Scheduler is a registered fine-grained scheduler name
	// (default "lpfs").
	Scheduler string `json:"scheduler,omitempty"`
	// K is the number of SIMD regions (default 4); D the per-region data
	// parallelism (0 = unlimited).
	K int `json:"k,omitempty"`
	D int `json:"d,omitempty"`

	// Local is the per-region scratchpad capacity: 0 none, negative
	// unlimited.
	Local int `json:"local,omitempty"`
	// NoOverlap selects the strict (unmasked) §4.4 movement accounting.
	NoOverlap bool `json:"no_overlap,omitempty"`
	// EPRBandwidth caps teleports per step boundary (0 = unlimited).
	EPRBandwidth int `json:"epr_bandwidth,omitempty"`

	// Verify runs the independent legality oracle over every leaf.
	Verify bool `json:"verify,omitempty"`
	// Profile collects schedule-level analytics (internal/report).
	Profile bool `json:"profile,omitempty"`
}

// RegisterFlags installs the shared surface on fs, binding each flag to
// the corresponding Config field. Program selection (source file
// argument vs -bench) stays with the caller; everything else is common.
func (c *Config) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Scheduler, "sched", DefaultScheduler,
		fmt.Sprintf("fine-grained scheduler (registered: %s)", strings.Join(schedule.Names(), ", ")))
	fs.IntVar(&c.K, "k", DefaultK, "SIMD regions")
	fs.IntVar(&c.D, "d", 0, "data parallelism per region (0 = unlimited)")
	fs.IntVar(&c.Local, "local", 0, "scratchpad capacity per region (-1 = unlimited)")
	fs.BoolVar(&c.NoOverlap, "no-overlap", false, "strict §4.4 movement accounting (no teleport masking)")
	fs.IntVar(&c.EPRBandwidth, "epr", 0, "EPR distribution bandwidth: teleports per step boundary (0 = unlimited)")
	fs.Int64Var(&c.FTh, "fth", DefaultFTh, "flattening threshold")
	fs.StringVar(&c.Entry, "entry", DefaultEntry, "entry module")
	fs.StringVar(&c.Bench, "bench", "", "built-in benchmark name")
	fs.BoolVar(&c.Verify, "verify", false, "check every leaf schedule and move list with the legality oracle")
}

// WithDefaults fills unset fields with the package defaults and returns
// the completed config. JSON requests omit most fields; the CLI's flag
// defaults make this a no-op there.
func (c Config) WithDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = DefaultScheduler
	}
	if c.K == 0 {
		c.K = DefaultK
	}
	if c.Entry == "" {
		c.Entry = DefaultEntry
	}
	if c.FTh == 0 {
		c.FTh = DefaultFTh
	}
	return c
}

// Validate is the single validation path for both front ends. It
// assumes WithDefaults has run (the zero scheduler/k are rejected, not
// defaulted, so a raw zero Config fails loudly rather than silently
// diverging from the defaulted one).
func (c Config) Validate() error {
	switch {
	case c.Source == "" && c.Bench == "":
		return fmt.Errorf("request: one of source or bench is required")
	case c.Source != "" && c.Bench != "":
		return fmt.Errorf("request: source and bench are mutually exclusive")
	}
	if c.Bench != "" {
		if _, ok := bench.ByName(c.Bench); !ok {
			return fmt.Errorf("request: unknown benchmark %q", c.Bench)
		}
	}
	if _, ok := schedule.Lookup(c.Scheduler); !ok {
		return fmt.Errorf("request: unknown scheduler %q (registered: %s)",
			c.Scheduler, strings.Join(schedule.Names(), ", "))
	}
	if c.K < 1 {
		return fmt.Errorf("request: k must be >= 1, got %d", c.K)
	}
	if c.D < 0 {
		return fmt.Errorf("request: d must be >= 0, got %d", c.D)
	}
	if c.FTh < 0 {
		return fmt.Errorf("request: fth must be >= 0, got %d", c.FTh)
	}
	if c.EPRBandwidth < 0 {
		return fmt.Errorf("request: epr_bandwidth must be >= 0, got %d", c.EPRBandwidth)
	}
	if c.Entry == "" {
		return fmt.Errorf("request: entry module name is required")
	}
	return nil
}

// Label names the request in reports: the benchmark name or a generic
// source tag.
func (c Config) Label() string {
	if c.Bench != "" {
		return c.Bench
	}
	return "program"
}

// Comm bundles the communication-model fields as the engine consumes
// them.
func (c Config) Comm() comm.Options {
	return comm.Options{
		LocalCapacity: c.Local,
		NoOverlap:     c.NoOverlap,
		EPRBandwidth:  c.EPRBandwidth,
	}
}

// Build compiles the named program through the full pipeline. The
// observer (nil = off) traces the compile phases.
func (c Config) Build(o *obs.Observer) (*ir.Program, error) {
	src := c.Source
	if c.Bench != "" {
		b, _ := bench.ByName(c.Bench)
		src = b.Source
	}
	return core.Build(src, core.PipelineOptions{Entry: c.Entry, FTh: c.FTh, Obs: o})
}

// EvalOptions resolves the scheduler and assembles the engine options
// the config describes. Run-scoped extras (Obs, Cache, Workers, Profile
// collector) are the caller's to attach.
func (c Config) EvalOptions() (core.EvalOptions, error) {
	sched, err := core.SchedulerByName(c.Scheduler)
	if err != nil {
		return core.EvalOptions{}, err
	}
	return core.EvalOptions{
		Scheduler: sched,
		K:         c.K,
		D:         c.D,
		Comm:      c.Comm(),
		Verify:    c.Verify,
	}, nil
}

// Key is the singleflight/dedup identity of an evaluation: the compiled
// program's content fingerprint plus every option the engine observes.
// Two requests with equal keys perform identical work — the daemon
// collapses them onto one in-flight evaluation. Source text is
// deliberately absent: a bench submission and the equivalent inline
// source dedupe against each other through the program fingerprint.
func (c Config) Key(p *ir.Program) string {
	return fmt.Sprintf("%s|sched=%s|k=%d|d=%d|local=%d|noover=%t|epr=%d|verify=%t|profile=%t",
		p.Fingerprint(), c.Scheduler, c.K, c.D,
		c.Local, c.NoOverlap, c.EPRBandwidth, c.Verify, c.Profile)
}
