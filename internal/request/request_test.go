package request_test

import (
	"encoding/json"
	"flag"
	"reflect"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/request"
)

const tinySource = `
module kernel(qbit x[2]) {
  H(x[0]);
  CNOT(x[0], x[1]);
}
module main() {
  qbit q[4];
  kernel(q[0:2]);
  kernel(q[2:4]);
}
`

func valid() request.Config {
	return request.Config{Source: tinySource}.WithDefaults()
}

func TestWithDefaults(t *testing.T) {
	c := valid()
	if c.Scheduler != "lpfs" || c.K != 4 || c.Entry != "main" || c.FTh != 2000 {
		t.Errorf("defaults not applied: %+v", c)
	}
	// Explicit settings survive.
	c = request.Config{Source: tinySource, Scheduler: "rcp", K: 2, Entry: "kernel", FTh: 7}.WithDefaults()
	if c.Scheduler != "rcp" || c.K != 2 || c.Entry != "kernel" || c.FTh != 7 {
		t.Errorf("explicit fields clobbered: %+v", c)
	}
}

// TestFlagJSONParity is the satellite's point: flag parsing and JSON
// decoding land in the same struct, so one validation path covers both
// front ends. Every shared field set via flags must equal the same
// request decoded from JSON.
func TestFlagJSONParity(t *testing.T) {
	var fromFlags request.Config
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fromFlags.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-sched", "rcp", "-k", "8", "-d", "16", "-local", "-1",
		"-no-overlap", "-epr", "2", "-fth", "500", "-entry", "main",
		"-bench", "Grovers", "-verify",
	})
	if err != nil {
		t.Fatal(err)
	}

	var fromJSON request.Config
	blob := `{"bench":"Grovers","scheduler":"rcp","k":8,"d":16,"local":-1,
	          "no_overlap":true,"epr_bandwidth":2,"fth":500,"entry":"main","verify":true}`
	if err := json.Unmarshal([]byte(blob), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFlags.WithDefaults(), fromJSON.WithDefaults()) {
		t.Errorf("flag and JSON decoding diverge:\nflags %+v\njson  %+v", fromFlags, fromJSON)
	}
	if err := fromJSON.WithDefaults().Validate(); err != nil {
		t.Errorf("shared config failed validation: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*request.Config)
		want string // substring of the error; empty = valid
	}{
		{"valid source", func(c *request.Config) {}, ""},
		{"valid bench", func(c *request.Config) { c.Source = ""; c.Bench = "Grovers" }, ""},
		{"no program", func(c *request.Config) { c.Source = "" }, "one of source or bench"},
		{"both programs", func(c *request.Config) { c.Bench = "Grovers" }, "mutually exclusive"},
		{"unknown bench", func(c *request.Config) { c.Source = ""; c.Bench = "nope" }, "unknown benchmark"},
		{"unknown scheduler", func(c *request.Config) { c.Scheduler = "quantum" }, "unknown scheduler"},
		{"bad k", func(c *request.Config) { c.K = -2 }, "k must be"},
		{"bad d", func(c *request.Config) { c.D = -1 }, "d must be"},
		{"bad fth", func(c *request.Config) { c.FTh = -1 }, "fth must be"},
		{"bad epr", func(c *request.Config) { c.EPRBandwidth = -1 }, "epr_bandwidth must be"},
	}
	for _, tc := range cases {
		c := valid()
		tc.mut(&c)
		err := c.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildAndEvalOptions(t *testing.T) {
	c := valid()
	c.Local = -1
	c.Verify = true
	p, err := c.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := c.EvalOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Scheduler.Name() != "lpfs" || opts.K != 4 || !opts.Verify {
		t.Errorf("EvalOptions mismatch: %+v", opts)
	}
	if opts.Comm != (comm.Options{LocalCapacity: -1}) {
		t.Errorf("Comm mismatch: %+v", opts.Comm)
	}
	m, err := core.Evaluate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalGates == 0 || m.CommCycles == 0 {
		t.Errorf("degenerate metrics: %+v", m)
	}
}

// TestKeyDedupesAcrossSpelling pins the singleflight contract: the same
// circuit submitted as inline source and with cosmetic renames keys
// identically, while any engine-visible difference (k, comm model,
// verify) separates keys.
func TestKeyDedupesAcrossSpelling(t *testing.T) {
	c := valid()
	p1, err := c.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	renamed := strings.ReplaceAll(tinySource, "x[", "y[")
	renamed = strings.ReplaceAll(renamed, "(qbit x", "(qbit y")
	c2 := request.Config{Source: renamed}.WithDefaults()
	p2, err := c2.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key(p1) != c2.Key(p2) {
		t.Error("register renaming changed the dedup key")
	}

	for name, mut := range map[string]func(*request.Config){
		"k":       func(c *request.Config) { c.K = 8 },
		"d":       func(c *request.Config) { c.D = 2 },
		"local":   func(c *request.Config) { c.Local = -1 },
		"overlap": func(c *request.Config) { c.NoOverlap = true },
		"epr":     func(c *request.Config) { c.EPRBandwidth = 1 },
		"verify":  func(c *request.Config) { c.Verify = true },
		"profile": func(c *request.Config) { c.Profile = true },
		"sched":   func(c *request.Config) { c.Scheduler = "rcp" },
	} {
		mod := valid()
		mut(&mod)
		if mod.Key(p1) == c.Key(p1) {
			t.Errorf("changing %s did not change the dedup key", name)
		}
	}
}

func TestLabel(t *testing.T) {
	if got := (request.Config{Bench: "SHA-1"}).Label(); got != "SHA-1" {
		t.Errorf("bench label %q", got)
	}
	if got := (request.Config{Source: "x"}).Label(); got != "program" {
		t.Errorf("source label %q", got)
	}
}
