// Package obscli is the observability layer's shared command-line
// surface: qsched and qbench both register the same flag set, build one
// obs.Observer from it, optionally serve live endpoints (Prometheus
// metrics, net/http/pprof) for the duration of the run, and write the
// trace / metrics / decision-log artifacts on exit.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"net/http"

	"github.com/scaffold-go/multisimd/internal/obs"
)

// Flags holds the observability command-line options.
type Flags struct {
	Trace         string // -trace: Chrome trace-event JSON output path
	MetricsOut    string // -metrics-out: JSON metrics snapshot path
	MetricsAddr   string // -metrics-addr: live Prometheus endpoint
	PprofAddr     string // -pprof-addr: live net/http/pprof endpoint
	Decisions     string // -decisions: scheduler decision-log path
	DecisionLevel string // -decision-level: off, step or op
}

// Register installs the flags on fs (flag.CommandLine in the tools).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "",
		"write a Chrome trace-event JSON `file` of the run (open in Perfetto or chrome://tracing)")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write a JSON metrics snapshot `file` on exit")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve Prometheus text metrics on `addr` (host:port) while the run is in flight")
	fs.StringVar(&f.PprofAddr, "pprof-addr", "",
		"serve net/http/pprof on `addr` (host:port) while the run is in flight")
	fs.StringVar(&f.Decisions, "decisions", "",
		"write the scheduler decision log to `file`")
	fs.StringVar(&f.DecisionLevel, "decision-level", "",
		"decision-log detail: off, step or op (defaults to step when -decisions is set)")
}

// enabled reports whether any observability output was requested.
func (f *Flags) enabled() bool {
	return f.Trace != "" || f.MetricsOut != "" || f.MetricsAddr != "" ||
		f.Decisions != "" || f.DecisionLevel != ""
}

// Setup builds the observer the flags describe and starts any live
// endpoints, announcing their addresses on w (the tools pass stderr so
// report output stays clean). It returns nil — free to thread through
// every option struct — when no observability flag was given.
func (f *Flags) Setup(w io.Writer) (*obs.Observer, error) {
	if !f.enabled() {
		return nil, nil
	}
	o := &obs.Observer{}
	if f.Trace != "" {
		o.Trace = obs.NewTracer()
	}
	if f.MetricsOut != "" || f.MetricsAddr != "" {
		o.Metrics = obs.NewRegistry()
	}
	level, err := obs.ParseLevel(f.DecisionLevel)
	if err != nil {
		return nil, err
	}
	if level == obs.LevelOff && f.Decisions != "" {
		level = obs.LevelStep
	}
	if level != obs.LevelOff {
		o.Decisions = obs.NewDecisionLog(level)
	}
	if f.MetricsAddr != "" && f.MetricsAddr == f.PprofAddr {
		// Same address for both endpoints: bind once and serve a shared
		// mux — two listeners on one port would fail with EADDRINUSE.
		mux := http.NewServeMux()
		obs.RegisterMetrics(mux, o.Metrics)
		obs.RegisterPprof(mux)
		ln, err := obs.Serve(f.MetricsAddr, mux)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		fmt.Fprintf(w, "serving metrics on http://%s/metrics\n", ln.Addr())
		fmt.Fprintf(w, "serving pprof on http://%s/debug/pprof/\n", ln.Addr())
		return o, nil
	}
	if f.MetricsAddr != "" {
		ln, err := obs.ServeMetrics(f.MetricsAddr, o.Metrics)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		fmt.Fprintf(w, "serving metrics on http://%s/metrics\n", ln.Addr())
	}
	if f.PprofAddr != "" {
		ln, err := obs.ServePprof(f.PprofAddr)
		if err != nil {
			return nil, fmt.Errorf("-pprof-addr: %w", err)
		}
		fmt.Fprintf(w, "serving pprof on http://%s/debug/pprof/\n", ln.Addr())
	}
	return o, nil
}

// Finish writes the artifacts the flags requested from what o gathered.
// Safe to call with a nil observer (writes nothing).
func (f *Flags) Finish(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	if f.Trace != "" && o.Trace != nil {
		if err := o.Trace.WriteFile(f.Trace); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
	}
	if f.MetricsOut != "" && o.Metrics != nil {
		if err := o.Metrics.WriteJSONFile(f.MetricsOut); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
	}
	if f.Decisions != "" && o.Decisions != nil {
		if err := o.Decisions.WriteFile(f.Decisions); err != nil {
			return fmt.Errorf("-decisions: %w", err)
		}
	}
	return nil
}
