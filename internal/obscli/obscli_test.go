package obscli

import (
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/obs"
)

func TestSetupDisabledReturnsNil(t *testing.T) {
	var f Flags
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("no flags set but observer built")
	}
	if err := f.Finish(o); err != nil {
		t.Fatal(err)
	}
}

func TestSetupBuildsRequestedPillars(t *testing.T) {
	f := Flags{Trace: "t.json", MetricsOut: "m.json", Decisions: "d.log"}
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Trace == nil || o.Metrics == nil || o.Decisions == nil {
		t.Fatalf("missing pillar: %+v", o)
	}
	// -decisions without -decision-level defaults to step.
	if !o.Decisions.Enabled(obs.LevelStep) || o.Decisions.Enabled(obs.LevelOp) {
		t.Error("default decision level is not step")
	}
}

func TestSetupRejectsBadLevel(t *testing.T) {
	f := Flags{DecisionLevel: "chatty"}
	if _, err := f.Setup(io.Discard); err == nil {
		t.Error("bad -decision-level accepted")
	}
}

// TestSetupSharedMetricsPprofAddr is the single-port regression test:
// pointing -metrics-addr and -pprof-addr at the same address must bind
// one listener serving both endpoint families, not fail with
// "address already in use".
func TestSetupSharedMetricsPprofAddr(t *testing.T) {
	// Reserve a concrete free port, release it, and hand the same
	// address to both flags.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	f := Flags{MetricsAddr: addr, PprofAddr: addr}
	var banner strings.Builder
	o, err := f.Setup(&banner)
	if err != nil {
		t.Fatalf("shared metrics/pprof address rejected: %v", err)
	}
	if o == nil || o.Metrics == nil {
		t.Fatal("shared-address setup built no metrics registry")
	}
	o.Metrics.Counter("test.shared").Inc()

	for _, path := range []string{"/metrics", "/metrics.json", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
	for _, want := range []string{"/metrics", "/debug/pprof/"} {
		if !strings.Contains(banner.String(), want) {
			t.Errorf("setup banner %q missing %s endpoint", banner.String(), want)
		}
	}
}

func TestFinishWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		Trace:      filepath.Join(dir, "t.json"),
		MetricsOut: filepath.Join(dir, "m.json"),
		Decisions:  filepath.Join(dir, "d.log"),
	}
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sp := o.Trace.Span("test", "work")
	sp.End()
	o.Metrics.Counter("test.count").Inc()
	o.Decisions.Record(obs.LevelStep, obs.Decision{Scheduler: "rcp", Module: "m", Op: -1})
	if err := f.Finish(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.Trace, f.MetricsOut, f.Decisions} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
