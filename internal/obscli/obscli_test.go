package obscli

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/scaffold-go/multisimd/internal/obs"
)

func TestSetupDisabledReturnsNil(t *testing.T) {
	var f Flags
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("no flags set but observer built")
	}
	if err := f.Finish(o); err != nil {
		t.Fatal(err)
	}
}

func TestSetupBuildsRequestedPillars(t *testing.T) {
	f := Flags{Trace: "t.json", MetricsOut: "m.json", Decisions: "d.log"}
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Trace == nil || o.Metrics == nil || o.Decisions == nil {
		t.Fatalf("missing pillar: %+v", o)
	}
	// -decisions without -decision-level defaults to step.
	if !o.Decisions.Enabled(obs.LevelStep) || o.Decisions.Enabled(obs.LevelOp) {
		t.Error("default decision level is not step")
	}
}

func TestSetupRejectsBadLevel(t *testing.T) {
	f := Flags{DecisionLevel: "chatty"}
	if _, err := f.Setup(io.Discard); err == nil {
		t.Error("bad -decision-level accepted")
	}
}

func TestFinishWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		Trace:      filepath.Join(dir, "t.json"),
		MetricsOut: filepath.Join(dir, "m.json"),
		Decisions:  filepath.Join(dir, "d.log"),
	}
	o, err := f.Setup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sp := o.Trace.Span("test", "work")
	sp.End()
	o.Metrics.Counter("test.count").Inc()
	o.Decisions.Record(obs.LevelStep, obs.Decision{Scheduler: "rcp", Module: "m", Op: -1})
	if err := f.Finish(o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.Trace, f.MetricsOut, f.Decisions} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
