// Package resource implements the paper's resource-estimation analyses
// (§3.1.1, §5.3): hierarchical gate counts that never materialize the
// flat circuit (so 10^12-gate benchmarks remain analyzable), the module
// gate-count histogram behind Fig. 5, and the minimum qubit count Q of
// Table 1 (sequential execution with maximal ancilla reuse).
package resource

import (
	"fmt"
	"math"
	"sort"

	"github.com/scaffold-go/multisimd/internal/ir"
)

// Estimator memoizes per-module analyses over one program.
type Estimator struct {
	prog   *ir.Program
	gates  map[string]int64
	peak   map[string]int64
	topo   []string
	topoOK bool
}

// New builds an estimator for the program. The program's call graph must
// be acyclic (guaranteed by ir.Validate / sema).
func New(prog *ir.Program) (*Estimator, error) {
	topo, err := prog.Topo()
	if err != nil {
		return nil, err
	}
	return &Estimator{
		prog:  prog,
		gates: make(map[string]int64, len(topo)),
		peak:  make(map[string]int64, len(topo)),
		topo:  topo,
	}, nil
}

// saturating add/mul guard against overflow on absurd parameterizations.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// Gates returns the total primitive-and-wide gate count of the named
// module, fully expanded through calls and Count multipliers.
func (e *Estimator) Gates(name string) (int64, error) {
	if n, ok := e.gates[name]; ok {
		return n, nil
	}
	m := e.prog.Module(name)
	if m == nil {
		return 0, fmt.Errorf("resource: missing module %q", name)
	}
	// Bottom-up over the memo: callees of anything in topo order come
	// first, so recursion depth is bounded by call-graph depth.
	var total int64
	for i := range m.Ops {
		op := &m.Ops[i]
		switch op.Kind {
		case ir.GateOp:
			total = satAdd(total, op.EffCount())
		case ir.CallOp:
			sub, err := e.Gates(op.Callee)
			if err != nil {
				return 0, err
			}
			total = satAdd(total, satMul(sub, op.EffCount()))
		}
	}
	e.gates[name] = total
	return total, nil
}

// TotalGates returns the gate count of the whole program (entry module).
func (e *Estimator) TotalGates() (int64, error) { return e.Gates(e.prog.Entry) }

// MinQubits returns Q, the paper's Table 1 metric: the minimum number of
// qubits needed to run the benchmark sequentially with maximal reuse of
// ancilla across functions. Under stack discipline, a module's footprint
// is its own locals plus the deepest callee footprint live at any time
// (calls are sequential, so callee ancillae reuse the same space), and the
// program's Q adds the entry module's parameter qubits.
func (e *Estimator) MinQubits() (int64, error) {
	entry := e.prog.EntryModule()
	if entry == nil {
		return 0, fmt.Errorf("resource: missing entry module %q", e.prog.Entry)
	}
	peak, err := e.peakLocals(e.prog.Entry)
	if err != nil {
		return 0, err
	}
	return satAdd(int64(entry.ParamSlots()), peak), nil
}

func (e *Estimator) peakLocals(name string) (int64, error) {
	if p, ok := e.peak[name]; ok {
		return p, nil
	}
	m := e.prog.Module(name)
	if m == nil {
		return 0, fmt.Errorf("resource: missing module %q", name)
	}
	var deepest int64
	for _, callee := range m.Callees() {
		p, err := e.peakLocals(callee)
		if err != nil {
			return 0, err
		}
		if p > deepest {
			deepest = p
		}
	}
	p := satAdd(int64(m.LocalSlots()), deepest)
	e.peak[name] = p
	return p, nil
}

// ModuleGates returns each reachable module's expanded gate count,
// in bottom-up topological order.
func (e *Estimator) ModuleGates() (map[string]int64, error) {
	out := make(map[string]int64, len(e.topo))
	for _, name := range e.topo {
		n, err := e.Gates(name)
		if err != nil {
			return nil, err
		}
		out[name] = n
	}
	return out, nil
}

// Reachable returns the names of modules reachable from the entry, in
// bottom-up topological order.
func (e *Estimator) Reachable() []string { return append([]string(nil), e.topo...) }

// Bucket is one histogram bin of Fig. 5.
type Bucket struct {
	Label string
	Lo    int64 // inclusive
	Hi    int64 // exclusive; math.MaxInt64 for the open top bucket
}

// Fig5Buckets reproduces the paper's gate-count ranges.
var Fig5Buckets = []Bucket{
	{Label: "0 - 1k", Lo: 0, Hi: 1_000},
	{Label: "1k - 5k", Lo: 1_000, Hi: 5_000},
	{Label: "5k - 10k", Lo: 5_000, Hi: 10_000},
	{Label: "10k - 50k", Lo: 10_000, Hi: 50_000},
	{Label: "50k - 100k", Lo: 50_000, Hi: 100_000},
	{Label: "100k - 150k", Lo: 100_000, Hi: 150_000},
	{Label: "150k - 1M", Lo: 150_000, Hi: 1_000_000},
	{Label: "1M - 2M", Lo: 1_000_000, Hi: 2_000_000},
	{Label: "2M - 8M", Lo: 2_000_000, Hi: 8_000_000},
	{Label: "8M - 20M", Lo: 8_000_000, Hi: 20_000_000},
	{Label: ">20M", Lo: 20_000_000, Hi: math.MaxInt64},
}

// Histogram reports, for each Fig. 5 bucket, the percentage of reachable
// modules whose expanded gate count falls in the bucket.
func (e *Estimator) Histogram() ([]float64, error) {
	counts := make([]int, len(Fig5Buckets))
	gates, err := e.ModuleGates()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, n := range gates {
		for bi, b := range Fig5Buckets {
			if n >= b.Lo && n < b.Hi {
				counts[bi]++
				break
			}
		}
		total++
	}
	pct := make([]float64, len(Fig5Buckets))
	if total == 0 {
		return pct, nil
	}
	for i, c := range counts {
		pct[i] = 100 * float64(c) / float64(total)
	}
	return pct, nil
}

// FlattenableFraction returns the percentage of reachable modules whose
// gate count is at most fth — the quantity the paper uses to choose the
// flattening threshold ("80% or more of the modules" at FTh = 2M).
func (e *Estimator) FlattenableFraction(fth int64) (float64, error) {
	gates, err := e.ModuleGates()
	if err != nil {
		return 0, err
	}
	if len(gates) == 0 {
		return 0, nil
	}
	n := 0
	for _, g := range gates {
		if g <= fth {
			n++
		}
	}
	return 100 * float64(n) / float64(len(gates)), nil
}

// SortedModuleGates returns (name, gates) pairs sorted by descending gate
// count, for reporting.
func (e *Estimator) SortedModuleGates() ([]ModuleCount, error) {
	gates, err := e.ModuleGates()
	if err != nil {
		return nil, err
	}
	out := make([]ModuleCount, 0, len(gates))
	for name, n := range gates {
		out = append(out, ModuleCount{Name: name, Gates: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gates != out[j].Gates {
			return out[i].Gates > out[j].Gates
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// ModuleCount pairs a module with its expanded gate count.
type ModuleCount struct {
	Name  string
	Gates int64
}
