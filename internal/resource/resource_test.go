package resource_test

import (
	"math"
	"testing"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/resource"
)

func TestHierarchicalGateCounts(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, nil)
	leaf.Gate(qasm.T, 0).Gate(qasm.H, 0)
	p.Add(leaf)
	mid := ir.NewModule("mid", []ir.Reg{{Name: "y", Size: 1}}, nil)
	mid.CallN("leaf", 1000, ir.Range{Start: 0, Len: 1})
	mid.Gate(qasm.X, 0)
	p.Add(mid)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.CallN("mid", 1_000_000, ir.Range{Start: 0, Len: 1})
	p.Add(main)

	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := est.TotalGates()
	if err != nil {
		t.Fatal(err)
	}
	// (2*1000 + 1) * 1e6 = 2.001e9 — paper-scale counting without
	// materialization.
	if g != 2_001_000_000 {
		t.Errorf("gates = %d", g)
	}
}

func TestSaturationNotOverflow(t *testing.T) {
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, nil)
	leaf.Ops = append(leaf.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.T, Args: []int{0}, Count: math.MaxInt64 / 2})
	p.Add(leaf)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.CallN("leaf", math.MaxInt64/2, ir.Range{Start: 0, Len: 1})
	p.Add(main)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := est.TotalGates()
	if err != nil {
		t.Fatal(err)
	}
	if g != math.MaxInt64 {
		t.Errorf("expected saturation, got %d", g)
	}
}

func TestMinQubitsStackReuse(t *testing.T) {
	// leaf uses 3 ancillae; mid adds 2 and calls leaf twice (serially:
	// ancilla reuse); main has 4 data qubits and calls mid twice.
	p := ir.NewProgram("main")
	leaf := ir.NewModule("leaf", []ir.Reg{{Name: "x", Size: 1}}, []ir.Reg{{Name: "a", Size: 3}})
	leaf.Gate(qasm.CNOT, 0, 1)
	p.Add(leaf)
	mid := ir.NewModule("mid", []ir.Reg{{Name: "y", Size: 2}}, []ir.Reg{{Name: "b", Size: 2}})
	mid.Call("leaf", ir.Range{Start: 0, Len: 1})
	mid.Call("leaf", ir.Range{Start: 1, Len: 1})
	p.Add(mid)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 4}})
	main.Call("mid", ir.Range{Start: 0, Len: 2})
	main.Call("mid", ir.Range{Start: 2, Len: 2})
	p.Add(main)

	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := est.MinQubits()
	if err != nil {
		t.Fatal(err)
	}
	// 4 (main) + 2 (mid locals) + 3 (leaf locals) = 9 with full reuse.
	if q != 9 {
		t.Errorf("Q = %d, want 9", q)
	}
}

func TestHistogramBuckets(t *testing.T) {
	p := ir.NewProgram("main")
	// tiny: 2 gates -> bucket 0; big: 1500 gates -> bucket "1k-5k";
	// main calls both, total > 1k.
	tiny := ir.NewModule("tiny", []ir.Reg{{Name: "x", Size: 1}}, nil)
	tiny.Gate(qasm.H, 0).Gate(qasm.H, 0)
	p.Add(tiny)
	big := ir.NewModule("big", []ir.Reg{{Name: "x", Size: 1}}, nil)
	big.Ops = append(big.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.T, Args: []int{0}, Count: 1500})
	p.Add(big)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Call("tiny", ir.Range{Start: 0, Len: 1})
	main.Call("big", ir.Range{Start: 0, Len: 1})
	p.Add(main)

	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	pct, err := est.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if len(pct) != len(resource.Fig5Buckets) {
		t.Fatalf("bucket count %d", len(pct))
	}
	var sum float64
	for _, v := range pct {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percentages sum to %g", sum)
	}
	// tiny in bucket 0; big and main (1502) in bucket 1.
	if math.Abs(pct[0]-100.0/3) > 1e-9 || math.Abs(pct[1]-200.0/3) > 1e-9 {
		t.Errorf("buckets: %v", pct[:3])
	}
}

func TestFlattenableFraction(t *testing.T) {
	p := ir.NewProgram("main")
	big := ir.NewModule("big", []ir.Reg{{Name: "x", Size: 1}}, nil)
	big.Ops = append(big.Ops, ir.Op{Kind: ir.GateOp, Gate: qasm.T, Args: []int{0}, Count: 5000})
	p.Add(big)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Gate(qasm.H, 0)
	main.Call("big", ir.Range{Start: 0, Len: 1})
	p.Add(main)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := est.FlattenableFraction(1000)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("fth=1000: %g%%, want 0 (both modules over)", f)
	}
	f, err = est.FlattenableFraction(5000)
	if err != nil {
		t.Fatal(err)
	}
	if f != 50 {
		t.Errorf("fth=5000: %g%%, want 50", f)
	}
}

func TestReachabilityExcludesDeadModules(t *testing.T) {
	p := ir.NewProgram("main")
	dead := ir.NewModule("dead", []ir.Reg{{Name: "x", Size: 1}}, nil)
	dead.Gate(qasm.H, 0)
	p.Add(dead)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.Gate(qasm.H, 0)
	p.Add(main)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	reach := est.Reachable()
	if len(reach) != 1 || reach[0] != "main" {
		t.Errorf("reachable: %v", reach)
	}
}

func TestSortedModuleGates(t *testing.T) {
	p := ir.NewProgram("main")
	a := ir.NewModule("a", []ir.Reg{{Name: "x", Size: 1}}, nil)
	a.Gate(qasm.H, 0)
	p.Add(a)
	main := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	main.CallN("a", 10, ir.Range{Start: 0, Len: 1})
	p.Add(main)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := est.SortedModuleGates()
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != 2 || sorted[0].Name != "main" || sorted[0].Gates != 10 {
		t.Errorf("sorted: %+v", sorted)
	}
}

func TestMissingModuleErrors(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Gate(qasm.H, 0)
	p.Add(m)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Gates("ghost"); err == nil {
		t.Error("missing module accepted")
	}
}

func TestNewRejectsRecursion(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", nil, []ir.Reg{{Name: "q", Size: 1}})
	m.Call("main")
	p.Add(m)
	if _, err := resource.New(p); err == nil {
		t.Error("recursive program accepted")
	}
}

func TestEntryParamsCountTowardQ(t *testing.T) {
	p := ir.NewProgram("main")
	m := ir.NewModule("main", []ir.Reg{{Name: "in", Size: 7}}, []ir.Reg{{Name: "anc", Size: 2}})
	m.Gate(qasm.H, 0)
	p.Add(m)
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := est.MinQubits()
	if err != nil {
		t.Fatal(err)
	}
	if q != 9 {
		t.Errorf("Q = %d, want 9 (7 params + 2 locals)", q)
	}
}
