package bench

import (
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ctqg"
)

// CN generates the Class Number benchmark (§3.3, Hallgren): computing
// the class group of a real quadratic number field, parameterized by p,
// the number of digits kept after the radix point. The quantum core is
// period finding over the regulator, whose oracle is fixed-point
// arithmetic — CTQG adders, multipliers and comparators over p-digit
// operands — making CN the most arithmetic-bound benchmark in the suite.
func CN(p int) Benchmark { return CNSized(p, 4*p, 2*p) }

// CNSized exposes the operand width in bits and the period-finding
// superposition width directly (the default derivation uses 4 bits per
// digit).
func CNSized(p, width, expBits int) Benchmark {
	w := width
	var sb strings.Builder
	sb.WriteString(ctqg.Adder("cn_add", w))
	sb.WriteString(ctqg.CtrlCopy("cn_ccopy", w))
	sb.WriteString(ctqg.CtrlAdder("cn_cadd", "cn_ccopy", "cn_add", w))
	sb.WriteString(ctqg.Multiplier("cn_mul", "cn_cadd", w))
	sb.WriteString(ctqg.CarryOf("cn_carry", w))
	sb.WriteString(ctqg.LessThan("cn_lt", "cn_carry", w))
	sb.WriteString(ctqg.ConstAdd("cn_kadd", "cn_add", w, 0xB))

	// One step of the continued-fraction/regulator iteration: a
	// fixed-point multiply, a constant offset, and a comparison driving
	// a controlled correction (all reversible, inputs preserved).
	fmt.Fprintf(&sb, "module cn_step(qbit u[%d], qbit v[%d], qbit prod[%d], qbit flag, qbit cin) {\n", w, w, 2*w)
	sb.WriteString("  cn_mul(u, v, prod, cin);\n")
	fmt.Fprintf(&sb, "  cn_kadd(prod[0:%d], cin, prod[%d]);\n", w, w)
	fmt.Fprintf(&sb, "  cn_lt(u, prod[0:%d], cin, flag);\n", w)
	fmt.Fprintf(&sb, "  cn_cadd(flag, u, v, cin, prod[%d]);\n", 2*w-1)
	sb.WriteString("}\n")

	// Controlled oracle power for period finding: the exponent qubit
	// gates the whole iteration via a controlled seed injection.
	fmt.Fprintf(&sb, "module cn_ctrl_step(qbit ctl, qbit u[%d], qbit v[%d], qbit prod[%d], qbit flag, qbit cin) {\n", w, w, 2*w)
	fmt.Fprintf(&sb, "  cn_ccopy(ctl, u, v);\n")
	sb.WriteString("  cn_step(u, v, prod, flag, cin);\n")
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit expo[%d];\n  qbit u[%d];\n  qbit v[%d];\n  qbit prod[%d];\n  qbit flag;\n  qbit cin;\n",
		expBits, w, w, 2*w)
	hWall(&sb, "expo", expBits)
	// Seed the fixed-point registers with the fundamental-unit
	// approximation pattern.
	for i := 0; i < w; i += 3 {
		fmt.Fprintf(&sb, "  X(u[%d]);\n", i)
	}
	for j := 0; j < expBits; j++ {
		// Period finding applies the j-th controlled power U^(2^j) as
		// 2^j repetitions of the regulator iteration.
		reps := int64(1) << uint(j)
		fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    cn_ctrl_step(expo[%d], u, v, prod, flag, cin);\n  }\n", reps, j)
	}
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    H(expo[i]);\n    MeasZ(expo[i]);\n  }\n", expBits)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "CN",
		Params: fmt.Sprintf("p=%d", p),
		Source: sb.String(),
	}
}
