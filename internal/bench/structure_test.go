package bench_test

import (
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// TestShorsIsRotationDominated asserts the structural property behind
// Fig. 9: after decomposition, most of Shor's gates live inside
// per-angle rotation blackbox modules.
func TestShorsIsRotationDominated(t *testing.T) {
	b := bench.ShorsSized(4, 8)
	p, err := core.Build(b.Source, core.PipelineOptions{SkipFlatten: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := resource.New(p)
	if err != nil {
		t.Fatal(err)
	}
	total, err := est.TotalGates()
	if err != nil {
		t.Fatal(err)
	}
	rotMods := 0
	for _, name := range est.Reachable() {
		if strings.HasPrefix(name, "rz_") {
			rotMods++
		}
	}
	if rotMods < 10 {
		t.Errorf("only %d rotation blackbox modules", rotMods)
	}
	// Count gates attributable to rotation modules by zeroing them out:
	// each rotation module body is ~200 gates; calls dominate.
	var rotGates int64
	for _, name := range est.Reachable() {
		if !strings.HasPrefix(name, "rz_") {
			continue
		}
		g, err := est.Gates(name)
		if err != nil {
			t.Fatal(err)
		}
		rotGates += g
	}
	// rotGates counts one instance per module; the proper attribution
	// needs call multiplicity, so just sanity-check totals and module
	// presence here.
	if total < 1000 {
		t.Errorf("suspiciously small Shor's: %d gates", total)
	}
}

// TestGSEIsSerial asserts the §5.2 property that makes GSE the
// communication-awareness champion: its critical path is essentially
// its gate count.
func TestGSEIsSerial(t *testing.T) {
	b := bench.GSESized(2, 3, 4)
	p, err := core.Build(b.Source, core.PipelineOptions{FTh: 2000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(m.CriticalPath) / float64(m.TotalGates); ratio < 0.9 {
		t.Errorf("GSE should be >90%% serial, cp/gates = %.2f", ratio)
	}
}

// TestSHA1UsesThreeMillionFTh pins the paper's §3.1.1 special case.
func TestSHA1UsesThreeMillionFTh(t *testing.T) {
	b := bench.SHA1(448)
	if b.Pipeline.FTh != 3_000_000 {
		t.Errorf("SHA-1 FTh = %d, want 3M", b.Pipeline.FTh)
	}
}

// TestBenchmarkNamesAndLookups verifies the registry used by the tools.
func TestBenchmarkNamesAndLookups(t *testing.T) {
	want := []string{"BF", "BWT", "CN", "Grovers", "GSE", "SHA-1", "Shors", "TFP"}
	small := bench.AllSmall()
	if len(small) != len(want) {
		t.Fatalf("AllSmall has %d entries", len(small))
	}
	for i, name := range want {
		if small[i].Name != name {
			t.Errorf("AllSmall[%d] = %s, want %s", i, small[i].Name, name)
		}
		if _, ok := bench.ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := bench.ByName("NotABenchmark"); ok {
		t.Error("ByName accepted junk")
	}
	paper := bench.All()
	if len(paper) != len(want) {
		t.Fatalf("All has %d entries", len(paper))
	}
	for i := range want {
		if paper[i].Name != small[i].Name {
			t.Errorf("paper/small name mismatch at %d", i)
		}
	}
}

// TestPaperParamsMatchTable1 pins the parameter strings against the
// paper's Table 1 row labels.
func TestPaperParamsMatchTable1(t *testing.T) {
	want := map[string]string{
		"BF":      "x=2, y=2",
		"BWT":     "n=300, s=3000",
		"CN":      "p=6",
		"Grovers": "n=40",
		"GSE":     "M=10",
		"SHA-1":   "n=448",
		"Shors":   "n=512",
		"TFP":     "n=5",
	}
	for _, b := range bench.All() {
		if b.Params != want[b.Name] {
			t.Errorf("%s params %q, want %q", b.Name, b.Params, want[b.Name])
		}
	}
}

// TestCTQGBenchmarksAreLocallySerial asserts §5.2's characterization:
// BF, CN and SHA-1 built on CTQG modules have limited parallelism
// (critical path over half the gate count).
func TestCTQGBenchmarksAreLocallySerial(t *testing.T) {
	for _, b := range []bench.Benchmark{
		bench.BFSized(2, 2, 3),
		bench.CNSized(2, 4, 3),
		bench.SHA1Sized(6, 8, 8, 2),
	} {
		p, err := core.Build(b.Source, core.PipelineOptions{FTh: 2000})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		m, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if m.CPSpeedup() > 3.0 {
			t.Errorf("%s: CTQG benchmark too parallel (cp speedup %.2f)", b.Name, m.CPSpeedup())
		}
	}
}

// TestGroverIterationCounts checks the π/4·√N schedule and clamping.
func TestGroverIterationCounts(t *testing.T) {
	// Accessible indirectly: Grovers(4) should run 3 iterations,
	// observable via the source text.
	b := bench.GroversSized(4, 3)
	if !strings.Contains(b.Source, "i < 3") {
		t.Error("iteration count not embedded")
	}
	big := bench.Grovers(400) // would overflow without clamping
	if !strings.Contains(big.Source, "i < 1099511627776") {
		t.Error("2^40 clamp not applied for huge search spaces")
	}
}
