package bench

import (
	"fmt"
	"strings"
)

// BWT generates the Binary Welded Tree benchmark (§3.3): a discrete-time
// quantum random walk on two height-n binary trees welded at the leaves,
// run for s steps to traverse entry to exit (Childs et al.).
//
// Each walk step diffuses a coin register and conditionally updates the
// node register through the welded-edge coloring: per tree level, the
// coin controls an ancestor/descendant shift realized with Toffoli and
// CNOT ladders — the mixture of short data-parallel layers and coin
// serialization that gives BWT its mid-pack parallelism in the paper.
func BWT(n, s int) Benchmark {
	var sb strings.Builder
	nodeBits := n + 2 // node label width: height n plus tree/weld tag

	// Coin diffusion: Hadamard coin over the 2-qubit coin register plus
	// an entangling layer with the node tag.
	fmt.Fprintf(&sb, "module coin_flip(qbit coin[2], qbit node[%d]) {\n", nodeBits)
	sb.WriteString("  H(coin[0]);\n  H(coin[1]);\n")
	fmt.Fprintf(&sb, "  CNOT(coin[0], node[%d]);\n", nodeBits-1)
	fmt.Fprintf(&sb, "  CNOT(coin[1], node[%d]);\n", nodeBits-2)
	sb.WriteString("}\n")

	// Edge-color shift: for each level, conditionally propagate the walk
	// along color-c edges: Toffoli ladder controlled by the coin.
	for c := 0; c < 3; c++ {
		fmt.Fprintf(&sb, "module shift_c%d(qbit coin[2], qbit node[%d]) {\n", c, nodeBits)
		// Color selection: X-conjugate the coin so the ladder fires for
		// coin value c.
		if c&1 == 0 {
			sb.WriteString("  X(coin[0]);\n")
		}
		if c&2 == 0 {
			sb.WriteString("  X(coin[1]);\n")
		}
		for i := 0; i+1 < nodeBits; i++ {
			fmt.Fprintf(&sb, "  Toffoli(coin[0], coin[1], node[%d]);\n", i)
			fmt.Fprintf(&sb, "  CNOT(node[%d], node[%d]);\n", i, i+1)
		}
		if c&1 == 0 {
			sb.WriteString("  X(coin[0]);\n")
		}
		if c&2 == 0 {
			sb.WriteString("  X(coin[1]);\n")
		}
		sb.WriteString("}\n")
	}

	fmt.Fprintf(&sb, "module walk_step(qbit coin[2], qbit node[%d]) {\n", nodeBits)
	sb.WriteString("  coin_flip(coin, node);\n")
	for c := 0; c < 3; c++ {
		fmt.Fprintf(&sb, "  shift_c%d(coin, node);\n", c)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit coin[2];\n  qbit node[%d];\n", nodeBits)
	// Start at the entry node |0...0>, walk s steps, measure.
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    walk_step(coin, node);\n  }\n", s)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(node[i]);\n  }\n", nodeBits)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "BWT",
		Params: fmt.Sprintf("n=%d, s=%d", n, s),
		Source: sb.String(),
	}
}
