package bench_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/resource"
)

// TestSmallBenchmarksCompile pushes every scaled-down benchmark through
// the complete pipeline and evaluates it under both schedulers.
func TestSmallBenchmarksCompile(t *testing.T) {
	for _, b := range bench.AllSmall() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opts := b.Pipeline
			opts.FTh = 2000 // small-scale FTh keeps hierarchy interesting
			p, err := core.Build(b.Source, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			est, err := resource.New(p)
			if err != nil {
				t.Fatal(err)
			}
			gates, err := est.TotalGates()
			if err != nil {
				t.Fatal(err)
			}
			if gates < 100 {
				t.Errorf("suspiciously small benchmark: %d gates", gates)
			}
			q, err := est.MinQubits()
			if err != nil {
				t.Fatal(err)
			}
			if q < 5 {
				t.Errorf("suspiciously few qubits: %d", q)
			}
			for _, sched := range []core.Scheduler{core.RCP, core.LPFS} {
				m, err := core.Evaluate(p, core.EvalOptions{Scheduler: sched, K: 4})
				if err != nil {
					t.Fatalf("%v evaluate: %v", sched, err)
				}
				if m.ZeroCommSteps <= 0 || m.ZeroCommSteps > m.SeqCycles {
					t.Errorf("%v: zero-comm steps %d outside (0, %d]", sched, m.ZeroCommSteps, m.SeqCycles)
				}
				if m.CommCycles < m.ZeroCommSteps {
					t.Errorf("%v: comm cycles %d below step count %d", sched, m.CommCycles, m.ZeroCommSteps)
				}
				if m.CommCycles > m.NaiveCycles*2 {
					t.Errorf("%v: comm cycles %d wildly above naive %d", sched, m.CommCycles, m.NaiveCycles)
				}
				t.Logf("%s %v: gates=%d Q=%d cp=%d steps=%d comm=%d speedup(seq)=%.2f speedup(naive)=%.2f",
					b.Name, sched, gates, q, m.CriticalPath, m.ZeroCommSteps, m.CommCycles,
					m.SpeedupVsSeq(), m.SpeedupVsNaive())
			}
		})
	}
}

// TestPaperScaleResourceEstimation checks the paper-parameter benchmarks
// stay analyzable without materialization and land in the paper's
// 10^7–10^12 gate range.
func TestPaperScaleResourceEstimation(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation is slow; run without -short")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opts := b.Pipeline
			p, err := core.Build(b.Source, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			est, err := resource.New(p)
			if err != nil {
				t.Fatal(err)
			}
			gates, err := est.TotalGates()
			if err != nil {
				t.Fatal(err)
			}
			if gates < 1_000_000 {
				t.Errorf("paper-scale %s has only %d gates", b.Name, gates)
			}
			t.Logf("%s (%s): %d gates", b.Name, b.Params, gates)
		})
	}
}
