package bench

import (
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ctqg"
)

// BF generates the Boolean Formula benchmark (§3.3, Ambainis et al.):
// evaluating a winning strategy for Hex on an x-by-y board by quantum
// walk over the AND-OR formula tree. Following the paper, the formula
// evaluation core is CTQG-produced classical logic — unoptimized and
// locally serial (§5.2) — wrapped in amplitude amplification. The walk
// repetition count follows the N^(1/2+o(1)) formula-evaluation bound
// with the constant chosen to land in the paper's reported gate range.
func BF(x, y int) Benchmark { return BFSized(x, y, int64(1)<<uint(4*(x+y))) }

// BFSized exposes the amplification count for scaled-down runs.
func BFSized(x, y int, iterations int64) Benchmark {
	cells := x * y
	var sb strings.Builder
	sb.WriteString(ctqg.MultiCX("mcx_row", y))
	sb.WriteString(ctqg.MultiCX("mcx_cells", cells))

	// Formula leaf evaluation: per row, AND of the row's cells (a Hex
	// chain) computed into a row flag; the formula value ORs the rows.
	fmt.Fprintf(&sb, "module eval_rows(qbit board[%d], qbit rows[%d]) {\n", cells, x)
	for r := 0; r < x; r++ {
		if y >= 2 {
			fmt.Fprintf(&sb, "  mcx_row(board[%d:%d], rows[%d]);\n", r*y, (r+1)*y, r)
		} else {
			fmt.Fprintf(&sb, "  CNOT(board[%d], rows[%d]);\n", r*y, r)
		}
	}
	sb.WriteString("}\n")

	// OR via De Morgan: flag ^= NOT(AND(NOT rows)).
	fmt.Fprintf(&sb, "module or_rows(qbit rows[%d], qbit flag) {\n", x)
	xWall(&sb, "rows", x)
	if x >= 2 {
		sb.WriteString("  mcx_or(rows, flag);\n")
	} else {
		sb.WriteString("  CNOT(rows[0], flag);\n")
	}
	sb.WriteString("  X(flag);\n")
	xWall(&sb, "rows", x)
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module formula_oracle(qbit board[%d], qbit rows[%d], qbit anc) {\n", cells, x)
	sb.WriteString("  eval_rows(board, rows);\n")
	sb.WriteString("  or_rows(rows, anc);\n")
	sb.WriteString("  eval_rows(board, rows);\n")
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module bf_diffusion(qbit board[%d], qbit anc) {\n", cells)
	hWall(&sb, "board", cells)
	xWall(&sb, "board", cells)
	if cells >= 2 {
		sb.WriteString("  mcx_cells(board, anc);\n")
	} else {
		sb.WriteString("  CNOT(board[0], anc);\n")
	}
	xWall(&sb, "board", cells)
	hWall(&sb, "board", cells)
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit board[%d];\n  qbit rows[%d];\n  qbit anc;\n", cells, x)
	sb.WriteString("  X(anc);\n  H(anc);\n")
	hWall(&sb, "board", cells)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", iterations)
	sb.WriteString("    formula_oracle(board, rows, anc);\n    bf_diffusion(board, anc);\n  }\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(board[i]);\n  }\n", cells)
	sb.WriteString("}\n")

	src := sb.String()
	if x >= 2 {
		src = ctqg.MultiCX("mcx_or", x) + src
	}
	return Benchmark{
		Name:   "BF",
		Params: fmt.Sprintf("x=%d, y=%d", x, y),
		Source: src,
	}
}
