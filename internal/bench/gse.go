package bench

import (
	"fmt"
	"strings"
)

// GSE generates Ground State Estimation (§3.3): quantum phase estimation
// of a molecular Hamiltonian (Whitfield et al.), parameterized by the
// molecular weight M. The paper defaults are derived as: state register
// of 2M+2 spin orbitals, 12 bits of phase precision, first-order Trotter.
func GSE(m int) Benchmark { return GSESized(m, 12, 2*m+2) }

// GSESized exposes the phase precision and state width directly.
//
// The circuit shape is the one the paper highlights (§5.2): two key
// registers — phase and state — where the state register undergoes long
// sequences of controlled rotations and CNOT ladders without moving,
// which is why GSE gains the most (+308%) from communication-aware
// scheduling.
func GSESized(m, precision, stateBits int) Benchmark {
	var sb strings.Builder

	// One first-order Trotter step of the electronic Hamiltonian,
	// controlled on a phase qubit: for each of the hopping terms, a
	// basis change, a CNOT parity ladder, a controlled rotation with a
	// term-specific angle, and the ladder undone (Whitfield et al.'s
	// standard compilation).
	terms := stateBits - 1
	fmt.Fprintf(&sb, "module ctrl_trotter(qbit ctl, qbit state[%d]) {\n", stateBits)
	for term := 0; term < terms; term++ {
		a, b := term, term+1
		angle := 0.1 + 0.37*float64(term) // distinct per-term angles
		fmt.Fprintf(&sb, "  H(state[%d]);\n  H(state[%d]);\n", a, b)
		fmt.Fprintf(&sb, "  CNOT(state[%d], state[%d]);\n", a, b)
		fmt.Fprintf(&sb, "  CRz(ctl, state[%d], %g);\n", b, angle)
		fmt.Fprintf(&sb, "  CNOT(state[%d], state[%d]);\n", a, b)
		fmt.Fprintf(&sb, "  H(state[%d]);\n  H(state[%d]);\n", a, b)
	}
	sb.WriteString("}\n")

	// Inverse QFT over the phase register: H and controlled rotations
	// by -π/2^k.
	fmt.Fprintf(&sb, "module inv_qft(qbit phase[%d]) {\n", precision)
	for j := precision - 1; j >= 0; j-- {
		for k := precision - 1; k > j; k-- {
			angle := -3.14159265358979 / float64(int64(1)<<uint(k-j))
			fmt.Fprintf(&sb, "  CRz(phase[%d], phase[%d], %g);\n", k, j, angle)
		}
		fmt.Fprintf(&sb, "  H(phase[%d]);\n", j)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit phase[%d];\n  qbit state[%d];\n", precision, stateBits)
	// Reference state preparation: fill the lowest orbitals.
	for i := 0; i < stateBits/2; i++ {
		fmt.Fprintf(&sb, "  X(state[%d]);\n", i)
	}
	hWall(&sb, "phase", precision)
	// Controlled powers U^(2^j) via repeated Trotter steps.
	for j := 0; j < precision; j++ {
		reps := int64(1) << uint(j)
		fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    ctrl_trotter(phase[%d], state);\n  }\n", reps, j)
	}
	sb.WriteString("  inv_qft(phase);\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(phase[i]);\n  }\n", precision)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "GSE",
		Params: fmt.Sprintf("M=%d", m),
		Source: sb.String(),
	}
}
