package bench

import (
	"fmt"
	"math"
	"strings"
)

// QFT generates the standalone n-qubit quantum Fourier transform — the
// rotation-cascade kernel inside Shor's, exposed as its own benchmark.
// Each target qubit gets a per-stage module (H plus the controlled
// rotations feeding it, truncated at the approximate-QFT cutoff), so the
// hierarchical scheduler sees one blackbox per stage; the final module
// reverses the register with a Swap network. Every stage's rotations
// carry distinct angles — after decomposition each angle is its own
// serial blackbox, so the stage cascade is the minimal instance of the
// paper's Table 2 parallelism-vs-decomposition tension.
func QFT(n int) Benchmark {
	var sb strings.Builder

	// One module per target: H then the controlled-rotation cascade
	// from the lower-indexed qubits (serial within the stage — every
	// rotation targets q[j]).
	for j := n - 1; j >= 0; j-- {
		fmt.Fprintf(&sb, "module qft_stage%d(qbit q[%d]) {\n", j, n)
		fmt.Fprintf(&sb, "  H(q[%d]);\n", j)
		for k := j - 1; k >= 0 && j-k <= aqftCutoff; k-- {
			angle := math.Pi * math.Pow(2, -float64(j-k))
			fmt.Fprintf(&sb, "  CRz(q[%d], q[%d], %.15g);\n", k, j, angle)
		}
		sb.WriteString("}\n")
	}

	fmt.Fprintf(&sb, "module qft(qbit q[%d]) {\n", n)
	for j := n - 1; j >= 0; j-- {
		fmt.Fprintf(&sb, "  qft_stage%d(q);\n", j)
	}
	sb.WriteString("}\n")

	// Bit-reversal permutation: disjoint Swaps, fully data-parallel.
	fmt.Fprintf(&sb, "module qft_reverse(qbit q[%d]) {\n", n)
	for i := 0; i < n/2; i++ {
		fmt.Fprintf(&sb, "  Swap(q[%d], q[%d]);\n", i, n-1-i)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit q[%d];\n", n)
	// A nontrivial input state: X on alternating qubits, then the
	// transform and readout.
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&sb, "  X(q[%d]);\n", i)
	}
	sb.WriteString("  qft(q);\n  qft_reverse(q);\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(q[i]);\n  }\n", n)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "QFT",
		Params: fmt.Sprintf("n=%d", n),
		Source: sb.String(),
	}
}
