package bench_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/bench"
	"github.com/scaffold-go/multisimd/internal/core"
)

// TestExtendedNamesAndLookups pins the extended registry: the paper set
// stays exactly eight, the extended workloads ride behind Gated/ByName.
func TestExtendedNamesAndLookups(t *testing.T) {
	want := []string{"QAOA", "QFT", "QPE"}
	ext := bench.Extended()
	if len(ext) != len(want) {
		t.Fatalf("Extended has %d entries, want %d", len(ext), len(want))
	}
	for i, name := range want {
		if ext[i].Name != name {
			t.Errorf("Extended[%d] = %s, want %s", i, ext[i].Name, name)
		}
		if _, ok := bench.ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if got := len(bench.Gated()); got != len(bench.AllSmall())+len(ext) {
		t.Errorf("Gated has %d entries, want %d", got, len(bench.AllSmall())+len(ext))
	}
	if got := len(bench.All()); got != 8 {
		t.Errorf("paper set grew to %d — extended workloads must not join All()", got)
	}
}

// TestExtendedBenchmarksCompileAndEvaluate runs each extended workload
// through the full pipeline and engine at the perf-gate configuration.
func TestExtendedBenchmarksCompileAndEvaluate(t *testing.T) {
	for _, b := range bench.Extended() {
		opts := b.Pipeline
		p, err := core.Build(b.Source, opts)
		if err != nil {
			t.Fatalf("%s: build: %v", b.Name, err)
		}
		m, err := core.Evaluate(p, core.EvalOptions{Scheduler: core.LPFS, K: 4, Verify: true})
		if err != nil {
			t.Fatalf("%s: evaluate: %v", b.Name, err)
		}
		if m.TotalGates == 0 || m.Leaves == 0 || m.CommCycles == 0 {
			t.Errorf("%s: degenerate metrics %+v", b.Name, *m)
		}
	}
}

// TestQFTStageStructure asserts the benchmark's scheduling shape: one
// stage module per target qubit, each stage's rotations all distinct.
func TestQFTStageStructure(t *testing.T) {
	b := bench.QFT(8)
	for j := 0; j < 8; j++ {
		if !strings.Contains(b.Source, fmt.Sprintf("module qft_stage%d(", j)) {
			t.Errorf("missing stage module %d", j)
		}
	}
	if !strings.Contains(b.Source, "Swap(q[0], q[7])") {
		t.Error("missing bit-reversal swap network")
	}
}

// TestQPEAnglesAllDistinct asserts the phase-fold keeps every
// controlled-power angle distinct (the per-angle blackbox property).
func TestQPEAnglesAllDistinct(t *testing.T) {
	b := bench.QPE(6)
	seen := map[string]bool{}
	for _, line := range strings.Split(b.Source, "\n") {
		if !strings.Contains(line, "CRz(c, u, ") {
			continue
		}
		if seen[line] {
			t.Errorf("duplicate controlled-power angle: %s", line)
		}
		seen[line] = true
	}
	if len(seen) != 6 {
		t.Errorf("found %d controlled powers, want 6", len(seen))
	}
}

// TestQAOACostLayerShape asserts the ring structure: n ZZ terms per
// cost layer, each angle shared within a layer and distinct across
// layers.
func TestQAOACostLayerShape(t *testing.T) {
	b := bench.QAOA(8, 2)
	perLayer := map[int]map[string]int{0: {}, 1: {}}
	for l := 0; l < 2; l++ {
		start := strings.Index(b.Source, fmt.Sprintf("module qaoa_cost%d(", l))
		if start < 0 {
			t.Fatalf("missing cost layer %d", l)
		}
		end := strings.Index(b.Source[start:], "}")
		body := b.Source[start : start+end]
		for _, line := range strings.Split(body, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "Rz(") {
				comma := strings.LastIndex(line, ", ")
				perLayer[l][line[comma+2:]]++
			}
		}
	}
	for l, angles := range perLayer {
		if len(angles) != 1 {
			t.Errorf("cost layer %d has %d distinct angles, want 1 (SIMD wall)", l, len(angles))
		}
		for _, count := range angles {
			if count != 8 {
				t.Errorf("cost layer %d has %d ZZ terms, want 8 (ring edges)", l, count)
			}
		}
	}
	for a := range perLayer[0] {
		if perLayer[1][a] != 0 {
			t.Errorf("layers 0 and 1 share angle %s", a)
		}
	}
}
