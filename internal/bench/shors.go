package bench

import (
	"fmt"
	"math"
	"strings"
)

// aqftCutoff truncates controlled rotations with angle below π/2^24 in
// the QFTs (Beauregard's approximate QFT); beyond this depth the
// rotations fall under any practical decomposition accuracy.
const aqftCutoff = 24

// phaseGrid quantizes phase-addition rotation angles to 2π·m/4096. The
// schedulers only see per-angle blackboxes, so the grid bounds the
// number of distinct rotation modules at paper scale without changing
// the schedule structure (see DESIGN.md substitutions).
const phaseGrid = 4096

// Shors generates Shor's factoring algorithm (§3.3) for an n-bit
// modulus in the Beauregard/Draper style the ScaffCC benchmark uses:
// modular exponentiation by constant phase-addition in Fourier space.
// A 2n-bit exponent register controls per-bit constant additions into an
// n-qubit accumulator held in the Fourier basis, where each addition is
// a layer of n controlled rotations with distinct angles on distinct
// qubits — theoretically data-parallel, but once decomposed each angle
// becomes its own serial Clifford+T blackbox, so exploiting the
// parallelism demands one SIMD region per rotation. This is exactly the
// structure behind the paper's Table 2 and Shor's k-sensitivity (§5.4,
// Fig. 9).
func Shors(n int) Benchmark { return ShorsSized(n, 2*n) }

// ShorsSized exposes the exponent width for scaled-down runs.
func ShorsSized(n, expBits int) Benchmark {
	var sb strings.Builder

	// QFT over the accumulator: Hadamards and controlled rotations
	// π/2^d, chained (serial within the register).
	emitQFT := func(name string, reg string, width int, inverse bool) {
		fmt.Fprintf(&sb, "module %s(qbit %s[%d]) {\n", name, reg, width)
		sign := 1.0
		if inverse {
			sign = -1
		}
		if !inverse {
			for j := width - 1; j >= 0; j-- {
				fmt.Fprintf(&sb, "  H(%s[%d]);\n", reg, j)
				for k := j - 1; k >= 0 && j-k <= aqftCutoff; k-- {
					angle := sign * math.Pi * math.Pow(2, -float64(j-k))
					fmt.Fprintf(&sb, "  CRz(%s[%d], %s[%d], %.15g);\n", reg, k, reg, j, angle)
				}
			}
		} else {
			for j := 0; j < width; j++ {
				for k := j - aqftCutoff; k < j; k++ {
					if k < 0 {
						continue
					}
					angle := sign * math.Pi * math.Pow(2, -float64(j-k))
					fmt.Fprintf(&sb, "  CRz(%s[%d], %s[%d], %.15g);\n", reg, k, reg, j, angle)
				}
				fmt.Fprintf(&sb, "  H(%s[%d]);\n", reg, j)
			}
		}
		sb.WriteString("}\n")
	}
	emitQFT("shor_qft_acc", "acc", n, false)
	emitQFT("shor_iqft_acc", "acc", n, true)
	emitQFT("shor_iqft_exp", "e", expBits, true)

	// Controlled constant phase addition: acc (in Fourier space) gains
	// the classical constant c_j = a^(2^j) mod N under control of one
	// exponent qubit. The control fans out over a CNOT tree onto n-1
	// ancillae (a basis-state copy, not cloning) so the n rotations act
	// on disjoint (control, target) pairs: a genuinely data-parallel
	// rotation layer, serialized only by decomposition — Table 2's
	// scenario and the source of Fig. 9's k-sensitivity.
	// At paper scale, emitting one constant-adder module per exponent
	// bit makes the source gigantic; 64 distinct constants reused
	// cyclically preserve the structure (distinct rotation angles per
	// layer, one blackbox per angle) at tractable compile times.
	distinct := expBits
	if distinct > 64 {
		distinct = 64
	}
	cj := uint64(7) // running a^(2^j) mod N stand-in pattern
	modMask := uint64(1)<<uint(n) - 1
	for j := 0; j < distinct; j++ {
		fmt.Fprintf(&sb, "module shor_cphase%d(qbit ctl, qbit acc[%d]) {\n", j, n)
		if n > 1 {
			fmt.Fprintf(&sb, "  qbit fan[%d];\n", n-1)
		}
		// Doubling fan-out: sources are ctl and already-written copies.
		fanSrc := func(i int) string {
			if i == 0 {
				return "ctl"
			}
			return fmt.Sprintf("fan[%d]", i-1)
		}
		emitFan := func() {
			written := 1
			for written < n {
				limit := written
				for s := 0; s < limit && written < n; s++ {
					fmt.Fprintf(&sb, "  CNOT(%s, fan[%d]);\n", fanSrc(s), written-1)
					written++
				}
			}
		}
		emitFan()
		for i := 0; i < n; i++ {
			scale := math.Pow(2, -float64(i+1))
			var mask uint64 = math.MaxUint64
			if i+1 < 64 {
				mask = uint64(1)<<uint(i+1) - 1
			}
			frac := float64(cj&mask) * scale
			m := int(math.Round(frac * phaseGrid))
			if m <= 0 {
				m = 1
			}
			angle := 2 * math.Pi * float64(m) / phaseGrid
			fmt.Fprintf(&sb, "  CRz(%s, acc[%d], %.15g);\n", fanSrc(i), i, angle)
		}
		emitFan() // un-fan (CNOT tree is self-inverse in this order per level pair)
		sb.WriteString("}\n")
		cj = (cj * cj) & modMask // square mod 2^n as the a^(2^j) pattern
		if cj == 0 {
			cj = 5
		}
	}

	fmt.Fprintf(&sb, "module main() {\n  qbit e[%d];\n  qbit acc[%d];\n", expBits, n)
	hWall(&sb, "e", expBits)
	sb.WriteString("  X(acc[0]);\n") // acc = 1
	sb.WriteString("  shor_qft_acc(acc);\n")
	for j := 0; j < expBits; j++ {
		fmt.Fprintf(&sb, "  shor_cphase%d(e[%d], acc);\n", j%distinct, j)
	}
	sb.WriteString("  shor_iqft_acc(acc);\n")
	sb.WriteString("  shor_iqft_exp(e);\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(e[i]);\n  }\n", expBits)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "Shors",
		Params: fmt.Sprintf("n=%d", n),
		Source: sb.String(),
	}
}
