package bench

import (
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ctqg"
)

// Grovers generates Grover's database search over 2^n elements (§3.3),
// amplitude amplification with round(π/4·√2^n) iterations of an oracle
// marking a fixed element followed by the diffusion operator.
func Grovers(n int) Benchmark { return GroversSized(n, groverIterations(n)) }

// GroversSized exposes the iteration count for scaled-down runs.
func GroversSized(n int, iterations int64) Benchmark {
	var sb strings.Builder
	sb.WriteString(ctqg.MultiCX("mcx", n))

	// Oracle: phase-flip the marked element (alternating bit pattern)
	// via X-conjugated multi-controlled Z (H·MCX·H on the last qubit).
	sb.WriteString(fmt.Sprintf("module oracle(qbit q[%d], qbit anc) {\n", n))
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&sb, "  X(q[%d]);\n", i)
	}
	sb.WriteString("  mcx(q, anc);\n")
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&sb, "  X(q[%d]);\n", i)
	}
	sb.WriteString("}\n")

	// Diffusion: H wall, X wall, multi-controlled Z over q via the
	// phase-kickback ancilla, undo.
	sb.WriteString(fmt.Sprintf("module diffusion(qbit q[%d], qbit anc) {\n", n))
	{
		hWall(&sb, "q", n)
		xWall(&sb, "q", n)
		sb.WriteString("  mcx(q, anc);\n")
		xWall(&sb, "q", n)
		hWall(&sb, "q", n)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module grover_iter(qbit q[%d], qbit anc) {\n", n)
	sb.WriteString("  oracle(q, anc);\n  diffusion(q, anc);\n}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit q[%d];\n  qbit anc;\n", n)
	// Phase-kickback ancilla in |−>.
	sb.WriteString("  X(anc);\n  H(anc);\n")
	hWall(&sb, "q", n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    grover_iter(q, anc);\n  }\n", iterations)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(q[i]);\n  }\n", n)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "Grovers",
		Params: fmt.Sprintf("n=%d", n),
		Source: sb.String(),
	}
}
