package bench

import (
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ctqg"
)

// SHA1 generates the SHA-1 preimage benchmark (§3.3): the reversible
// SHA-1 compression function used as the oracle inside Grover's search
// over an n-bit message. All round logic — Ch/Parity/Maj choice
// functions, the 5-way modular additions and the rotations — is
// CTQG-style reversible logic over 32-bit words, 80 rounds.
// The amplification count is capped at 2^20 iterations, which already
// drives the full benchmark to the paper's ~10^12-gate scale.
func SHA1(n int) Benchmark { return SHA1Sized(n, 32, 80, groverIterationsCapped(n, 1<<20)) }

// SHA1Sized exposes the word width, round count and Grover iterations
// for scaled-down runs.
func SHA1Sized(n, word, rounds int, iterations int64) Benchmark {
	w := word
	var sb strings.Builder
	sb.WriteString(ctqg.Adder("sha_add", w))
	sb.WriteString(ctqg.ChFunc("sha_ch", w))
	sb.WriteString(ctqg.ParityFunc("sha_parity", w))
	sb.WriteString(ctqg.MajFunc("sha_maj", w))
	sb.WriteString(ctqg.RotL("sha_rotl5", w, 5%w))
	sb.WriteString(ctqg.RotL("sha_rotl5inv", w, w-5%w))
	sb.WriteString(ctqg.RotL("sha_rotl30", w, 30%w))
	sb.WriteString(ctqg.ConstAdd("sha_k0", "sha_add", w, 0x5A827999&uint64(1<<uint(w)-1)))
	sb.WriteString(ctqg.ConstAdd("sha_k1", "sha_add", w, 0x6ED9EBA1&uint64(1<<uint(w)-1)))
	sb.WriteString(ctqg.ConstAdd("sha_k2", "sha_add", w, 0x8F1BBCDC&uint64(1<<uint(w)-1)))
	sb.WriteString(ctqg.ConstAdd("sha_k3", "sha_add", w, 0xCA62C1D6&uint64(1<<uint(w)-1)))

	// One SHA-1 round: f(b,c,d) into a temp, e += rotl5(a) + f + k + w_t,
	// then b <- rotl30(b) and the register renaming is realized by
	// rotating the role of the word registers in the caller.
	fName := func(r int) (string, string) {
		switch {
		case r < rounds/4:
			return "sha_ch", "sha_k0"
		case r < rounds/2:
			return "sha_parity", "sha_k1"
		case r < 3*rounds/4:
			return "sha_maj", "sha_k2"
		default:
			return "sha_parity", "sha_k3"
		}
	}
	for _, fn := range []string{"sha_ch", "sha_parity", "sha_maj"} {
		fmt.Fprintf(&sb, "module sha_round_%s(qbit a[%d], qbit b[%d], qbit c[%d], qbit d[%d], qbit e[%d], qbit wt[%d], qbit f[%d], qbit cin, qbit cout) {\n",
			strings.TrimPrefix(fn, "sha_"), w, w, w, w, w, w, w)
		fmt.Fprintf(&sb, "  %s(b, c, d, f);\n", fn)
		sb.WriteString("  sha_rotl5(a);\n")
		sb.WriteString("  sha_add(a, e, cin, cout);\n")
		sb.WriteString("  sha_rotl5inv(a);\n") // restore a
		sb.WriteString("  sha_add(f, e, cin, cout);\n")
		sb.WriteString("  sha_add(wt, e, cin, cout);\n")
		fmt.Fprintf(&sb, "  %s(b, c, d, f);\n", fn) // uncompute f
		sb.WriteString("  sha_rotl30(b);\n")
		sb.WriteString("}\n")
	}

	// Message schedule: w_t = rotl1(w_{t-3} ^ w_{t-8} ^ w_{t-14} ^
	// w_{t-16}); realized over a window of schedule registers with
	// CNOT fans.
	sb.WriteString(ctqg.RotL("sha_rotl1", w, 1%w))
	// In-place form: wt is w_{t-16}'s register, so only three source
	// words XOR into it (FIPS 180-4's circular schedule window).
	fmt.Fprintf(&sb, "module sha_expand(qbit w3[%d], qbit w8[%d], qbit w14[%d], qbit wt[%d]) {\n", w, w, w, w)
	for i := 0; i < w; i++ {
		fmt.Fprintf(&sb, "  CNOT(w3[%d], wt[%d]);\n", i, i)
		fmt.Fprintf(&sb, "  CNOT(w8[%d], wt[%d]);\n", i, i)
		fmt.Fprintf(&sb, "  CNOT(w14[%d], wt[%d]);\n", i, i)
	}
	sb.WriteString("  sha_rotl1(wt);\n")
	sb.WriteString("}\n")

	// Compression over the message block: 16 schedule words live in the
	// message register window; rounds rotate the a..e roles statically.
	msgWords := 16
	if rounds < 16 {
		msgWords = rounds
	}
	fmt.Fprintf(&sb, "module sha_compress(qbit msg[%d], qbit h[%d], qbit f[%d], qbit cin, qbit cout) {\n",
		msgWords*w, 5*w, w)
	role := func(r, k int) string {
		idx := ((k-r)%5 + 5) % 5
		return fmt.Sprintf("h[%d:%d]", idx*w, (idx+1)*w)
	}
	for r := 0; r < rounds; r++ {
		fn, kmod := fName(r)
		wt := fmt.Sprintf("msg[%d:%d]", (r%msgWords)*w, (r%msgWords+1)*w)
		if r >= msgWords {
			fmt.Fprintf(&sb, "  sha_expand(msg[%d:%d], msg[%d:%d], msg[%d:%d], %s);\n",
				((r-3)%msgWords)*w, ((r-3)%msgWords+1)*w,
				((r-8)%msgWords)*w, ((r-8)%msgWords+1)*w,
				((r-14)%msgWords)*w, ((r-14)%msgWords+1)*w,
				wt)
		}
		fmt.Fprintf(&sb, "  sha_round_%s(%s, %s, %s, %s, %s, %s, f, cin, cout);\n",
			strings.TrimPrefix(fn, "sha_"),
			role(r, 0), role(r, 1), role(r, 2), role(r, 3), role(r, 4), wt)
		fmt.Fprintf(&sb, "  %s(%s, cin, cout);\n", kmod, role(r, 4))
	}
	sb.WriteString("}\n")

	// Oracle: compress, phase-flip on target digest bit, uncompress
	// approximated by a second compression (structural; real inversion
	// reverses the rounds).
	msgBits := msgWords * w
	fmt.Fprintf(&sb, "module sha_oracle(qbit msg[%d], qbit h[%d], qbit f[%d], qbit cin, qbit cout, qbit anc) {\n", msgBits, 5*w, w)
	sb.WriteString("  sha_compress(msg, h, f, cin, cout);\n")
	sb.WriteString("  CNOT(h[0], anc);\n")
	sb.WriteString("  sha_compress(msg, h, f, cin, cout);\n")
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module sha_diffusion(qbit msg[%d], qbit anc) {\n", n)
	hWall(&sb, "msg", n)
	xWall(&sb, "msg", n)
	sb.WriteString("  sha_mcx(msg, anc);\n")
	xWall(&sb, "msg", n)
	hWall(&sb, "msg", n)
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit msg[%d];\n  qbit h[%d];\n  qbit f[%d];\n  qbit cin;\n  qbit cout;\n  qbit anc;\n",
		msgBits, 5*w, w)
	sb.WriteString("  X(anc);\n  H(anc);\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    H(msg[i]);\n  }\n", n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", iterations)
	fmt.Fprintf(&sb, "    sha_oracle(msg, h, f, cin, cout, anc);\n    sha_diffusion(msg[0:%d], anc);\n  }\n", n)
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(msg[i]);\n  }\n", n)
	sb.WriteString("}\n")

	src := ctqg.MultiCX("sha_mcx", n) + sb.String()
	return Benchmark{
		Name:   "SHA-1",
		Params: fmt.Sprintf("n=%d", n),
		Source: src,
		Pipeline: core.PipelineOptions{
			FTh: 3_000_000, // paper §3.1.1: SHA-1 uses FTh = 3M
		},
	}
}
