package bench

import (
	"fmt"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ctqg"
)

// TFP generates the Triangle Finding Problem (§3.3, Magniez et al.):
// locate a triangle in a dense undirected graph of n nodes by amplitude
// amplification over vertex-triple registers, with an oracle that tests
// the three adjacency bits of the candidate triple. The iteration count
// models the nested quantum-walk repetitions of the O(n^1.3) algorithm,
// scaled to the paper's reported gate range.
func TFP(n int) Benchmark { return TFPSized(n, int64(1)<<uint(4*bitsFor(n)+2)) }

// TFPSized exposes the iteration count for scaled-down runs.
func TFPSized(n int, iterations int64) Benchmark {
	vb := bitsFor(n) // bits per vertex index
	var sb strings.Builder

	// Adjacency test: edge (u,v) present iff the XOR-parity of the two
	// vertex registers matches the dense-graph pattern; computed into an
	// edge flag via Toffoli ladders (structural stand-in for an
	// adjacency-matrix lookup).
	fmt.Fprintf(&sb, "module edge_test(qbit u[%d], qbit v[%d], qbit flag) {\n", vb, vb)
	for i := 0; i < vb; i++ {
		fmt.Fprintf(&sb, "  CNOT(u[%d], v[%d]);\n", i, i)
	}
	for i := 0; i < vb; i++ {
		fmt.Fprintf(&sb, "  X(v[%d]);\n", i)
	}
	if vb >= 2 {
		sb.WriteString("  mcxv(v, flag);\n")
	} else {
		sb.WriteString("  CNOT(v[0], flag);\n")
	}
	for i := 0; i < vb; i++ {
		fmt.Fprintf(&sb, "  X(v[%d]);\n", i)
	}
	for i := 0; i < vb; i++ {
		fmt.Fprintf(&sb, "  CNOT(u[%d], v[%d]);\n", i, i)
	}
	sb.WriteString("}\n")

	// Triangle oracle: all three edges present -> phase flip via the
	// kickback ancilla.
	fmt.Fprintf(&sb, "module tri_oracle(qbit a[%d], qbit b[%d], qbit c[%d], qbit e[3], qbit anc) {\n", vb, vb, vb)
	sb.WriteString("  edge_test(a, b, e[0]);\n")
	sb.WriteString("  edge_test(b, c, e[1]);\n")
	sb.WriteString("  edge_test(a, c, e[2]);\n")
	sb.WriteString("  mcx3(e, anc);\n")
	sb.WriteString("  edge_test(a, c, e[2]);\n")
	sb.WriteString("  edge_test(b, c, e[1]);\n")
	sb.WriteString("  edge_test(a, b, e[0]);\n")
	sb.WriteString("}\n")

	// Diffusion over the 3 vertex registers jointly.
	fmt.Fprintf(&sb, "module tri_diffusion(qbit a[%d], qbit b[%d], qbit c[%d], qbit anc) {\n", vb, vb, vb)
	for _, reg := range []string{"a", "b", "c"} {
		hWall(&sb, reg, vb)
		xWall(&sb, reg, vb)
	}
	// Multi-controlled Z across all vertex bits: copy into a joint
	// ladder via mcx over each register chained on the ancilla.
	sb.WriteString("  mcxa(a, anc);\n  mcxb(b, anc);\n  mcxc(c, anc);\n")
	sb.WriteString("  mcxb(b, anc);\n  mcxa(a, anc);\n")
	for _, reg := range []string{"a", "b", "c"} {
		xWall(&sb, reg, vb)
		hWall(&sb, reg, vb)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit a[%d];\n  qbit b[%d];\n  qbit c[%d];\n  qbit e[3];\n  qbit anc;\n", vb, vb, vb)
	sb.WriteString("  X(anc);\n  H(anc);\n")
	for _, reg := range []string{"a", "b", "c"} {
		hWall(&sb, reg, vb)
	}
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n", iterations)
	sb.WriteString("    tri_oracle(a, b, c, e, anc);\n    tri_diffusion(a, b, c, anc);\n  }\n")
	for _, reg := range []string{"a", "b", "c"} {
		fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(%s[i]);\n  }\n", vb, reg)
	}
	sb.WriteString("}\n")

	src := ctqg.MultiCX("mcx3", 3)
	if vb >= 2 {
		src += ctqg.MultiCX("mcxv", vb)
		src += ctqg.MultiCX("mcxa", vb) + ctqg.MultiCX("mcxb", vb) + ctqg.MultiCX("mcxc", vb)
	} else {
		src += "module mcxa(qbit c[1], qbit t) {\n  CNOT(c[0], t);\n}\n"
		src += "module mcxb(qbit c[1], qbit t) {\n  CNOT(c[0], t);\n}\n"
		src += "module mcxc(qbit c[1], qbit t) {\n  CNOT(c[0], t);\n}\n"
	}
	return Benchmark{
		Name:   "TFP",
		Params: fmt.Sprintf("n=%d", n),
		Source: src + sb.String(),
	}
}

// bitsFor returns ceil(log2(n)) with a floor of 1.
func bitsFor(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}
