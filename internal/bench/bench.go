// Package bench generates the paper's eight large-scale quantum
// benchmarks (§3.3) as Scaffold-lite source: Grover's Search (GS),
// Binary Welded Tree (BWT), Ground State Estimation (GSE), Triangle
// Finding (TFP), Boolean Formula (BF), Class Number (CN), SHA-1, and
// Shor's Factoring. Each generator is parameterized exactly as the paper
// parameterizes it and produces modular circuits whose structure —
// CTQG-serialized arithmetic in BF/CN/SHA-1, rotation-heavy QFT in
// Shor's, pinned registers in GSE — drives the scheduling behavior the
// evaluation reproduces.
//
// The paper's parameter settings explode to 10^7–10^12 gates, which the
// resource estimator handles symbolically; Small() presets shrink each
// benchmark to a size whose leaves can be materialized and scheduled in
// tests and benches while preserving the module structure (see DESIGN.md
// substitutions).
package bench

import (
	"fmt"
	"math"
	"strings"

	"github.com/scaffold-go/multisimd/internal/core"
)

// Benchmark bundles a generated program with its identity and the
// pipeline options the paper uses for it (e.g. SHA-1's 3M FTh).
type Benchmark struct {
	Name     string
	Params   string
	Source   string
	Pipeline core.PipelineOptions
}

// groverIterations returns round(π/4·√N) for an n-qubit search space,
// clamped to 2^40 so paper-scale parameterizations stay inside int64
// resource arithmetic.
func groverIterations(n int) int64 {
	f := math.Round(math.Pi / 4 * math.Pow(2, float64(n)/2))
	if !(f >= 1) {
		return 1
	}
	if f > float64(int64(1)<<40) {
		return 1 << 40
	}
	return int64(f)
}

// groverIterationsCapped additionally clamps to the given bound.
func groverIterationsCapped(n int, cap int64) int64 {
	r := groverIterations(n)
	if r > cap {
		return cap
	}
	return r
}

// hWall emits H on every qubit of reg[n].
func hWall(sb *strings.Builder, reg string, n int) {
	fmt.Fprintf(sb, "  for (i = 0; i < %d; i++) {\n    H(%s[i]);\n  }\n", n, reg)
}

// xWall emits X on every qubit of reg[n].
func xWall(sb *strings.Builder, reg string, n int) {
	fmt.Fprintf(sb, "  for (i = 0; i < %d; i++) {\n    X(%s[i]);\n  }\n", n, reg)
}

// All returns the eight benchmarks at the paper's parameterizations
// (Fig. 6/7 variants: SHA-1 at n=128 appears in the speedup figures,
// n=448 in Fig. 5 and Table 1 — this set uses the Table 1 settings).
func All() []Benchmark {
	return []Benchmark{
		BF(2, 2),
		BWT(300, 3000),
		CN(6),
		Grovers(40),
		GSE(10),
		SHA1(448),
		Shors(512),
		TFP(5),
	}
}

// AllSmall returns structurally faithful scaled-down instances whose
// leaves materialize and schedule quickly (used by tests and the bench
// harness; see DESIGN.md).
func AllSmall() []Benchmark {
	return []Benchmark{
		BFSized(2, 2, 3),
		BWT(8, 12),
		CNSized(2, 4, 3),
		GroversSized(6, 4),
		GSESized(2, 3, 4),
		SHA1Sized(6, 8, 8, 2),
		ShorsSized(4, 8),
		TFPSized(4, 2),
	}
}

// Extended returns the workload-diversity benchmarks beyond the
// paper's eight, at sizes whose leaves materialize and schedule quickly:
// QAOA's shared-angle SIMD walls and QFT/QPE's all-distinct-angle
// cascades bracket the Table 2 scheduling spectrum from both ends
// (ROADMAP item 3). They ride the same baseline/report machinery as
// AllSmall — see Gated.
func Extended() []Benchmark {
	return []Benchmark{
		QAOA(8, 2),
		QFT(8),
		QPE(6),
	}
}

// Gated returns every benchmark the perf/report regression gates cover:
// the paper's eight small presets plus the extended workloads.
func Gated() []Benchmark {
	return append(AllSmall(), Extended()...)
}

// ByName returns the small-preset or extended benchmark with the given
// name — the lookup behind qsched -bench and the service's
// {"bench": ...} requests.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Gated() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
