package bench

import (
	"fmt"
	"math"
	"strings"
)

// QAOA generates a depth-p QAOA MaxCut ansatz on an n-vertex ring
// graph: per layer, a cost module of ZZ interactions (CNOT·Rz·CNOT per
// edge) and a mixer module of Rx rotations. Within one layer every ZZ
// edge shares one angle and every mixer rotation shares another, so
// each layer is two wide SIMD-friendly walls over disjoint qubit pairs
// — the opposite scheduling regime from QFT/QPE's all-distinct-angle
// cascades, which is exactly why it rides along: together they bracket
// the paper's Table 2 spectrum. Layer angles follow the standard linear
// ramp (γ rising, β falling), so every layer is still a distinct set of
// rotation blackboxes.
func QAOA(n, p int) Benchmark {
	var sb strings.Builder

	for l := 0; l < p; l++ {
		gamma := math.Pi * (0.35 + 0.3*float64(l)/float64(p))
		beta := math.Pi * (0.75 - 0.3*float64(l)/float64(p))

		// Cost layer: ring edges (i, i+1 mod n), even-start edges first
		// then odd-start — for even n the two groups are disjoint
		// data-parallel waves.
		fmt.Fprintf(&sb, "module qaoa_cost%d(qbit q[%d]) {\n", l, n)
		for _, parity := range []int{0, 1} {
			for i := parity; i < n; i += 2 {
				j := (i + 1) % n
				if i == j {
					continue // n == 1: no edges
				}
				fmt.Fprintf(&sb, "  CNOT(q[%d], q[%d]);\n", i, j)
				fmt.Fprintf(&sb, "  Rz(q[%d], %.15g);\n", j, 2*gamma)
				fmt.Fprintf(&sb, "  CNOT(q[%d], q[%d]);\n", i, j)
			}
		}
		sb.WriteString("}\n")

		fmt.Fprintf(&sb, "module qaoa_mix%d(qbit q[%d]) {\n", l, n)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "  Rx(q[%d], %.15g);\n", i, 2*beta)
		}
		sb.WriteString("}\n")

		fmt.Fprintf(&sb, "module qaoa_layer%d(qbit q[%d]) {\n  qaoa_cost%d(q);\n  qaoa_mix%d(q);\n}\n", l, n, l, l)
	}

	fmt.Fprintf(&sb, "module main() {\n  qbit q[%d];\n", n)
	hWall(&sb, "q", n)
	for l := 0; l < p; l++ {
		fmt.Fprintf(&sb, "  qaoa_layer%d(q);\n", l)
	}
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(q[i]);\n  }\n", n)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "QAOA",
		Params: fmt.Sprintf("n=%d p=%d", n, p),
		Source: sb.String(),
	}
}
