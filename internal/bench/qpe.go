package bench

import (
	"fmt"
	"math"
	"strings"
)

// QPE generates quantum phase estimation with t counting qubits reading
// out the eigenphase of a single-qubit phase unitary (φ = (√5−1)/2, the
// golden-ratio conjugate, whose doubling orbit mod 1 never repeats — so
// no counting width is exact and every controlled-power angle is
// distinct). Each controlled-U^(2^j) is its
// own module with its own rotation angle — t distinct per-angle
// blackboxes whose controls sit on distinct counting qubits, so the
// layer is data-parallel across SIMD regions while each blackbox is
// decomposition-serial inside (the paper's Table 2 regime) — followed
// by the inverse QFT's serial cascade on the counting register.
func QPE(t int) Benchmark {
	var sb strings.Builder

	// Controlled powers of U: angle 2π·φ·2^j folded into [0, 2π). The
	// fold keeps every angle distinct (φ is irrational, so its doubling
	// orbit never cycles).
	phi := (math.Sqrt(5) - 1) / 2
	for j := 0; j < t; j++ {
		phase := math.Mod(math.Pow(2, float64(j))*phi, 1.0)
		angle := 2 * math.Pi * phase
		fmt.Fprintf(&sb, "module qpe_cu%d(qbit c, qbit u) {\n  CRz(c, u, %.15g);\n}\n", j, angle)
	}

	// Inverse QFT over the counting register (Shor's iqft shape).
	fmt.Fprintf(&sb, "module qpe_iqft(qbit c[%d]) {\n", t)
	for j := 0; j < t; j++ {
		for k := j - aqftCutoff; k < j; k++ {
			if k < 0 {
				continue
			}
			angle := -math.Pi * math.Pow(2, -float64(j-k))
			fmt.Fprintf(&sb, "  CRz(c[%d], c[%d], %.15g);\n", k, j, angle)
		}
		fmt.Fprintf(&sb, "  H(c[%d]);\n", j)
	}
	sb.WriteString("}\n")

	fmt.Fprintf(&sb, "module main() {\n  qbit c[%d];\n  qbit u;\n", t)
	sb.WriteString("  X(u);\n") // eigenstate |1> of the phase unitary
	hWall(&sb, "c", t)
	for j := 0; j < t; j++ {
		fmt.Fprintf(&sb, "  qpe_cu%d(c[%d], u);\n", j, j)
	}
	sb.WriteString("  qpe_iqft(c);\n")
	fmt.Fprintf(&sb, "  for (i = 0; i < %d; i++) {\n    MeasZ(c[i]);\n  }\n", t)
	sb.WriteString("}\n")

	return Benchmark{
		Name:   "QPE",
		Params: fmt.Sprintf("t=%d", t),
		Source: sb.String(),
	}
}
