package verify

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// GenOptions shapes RandomLeaf's output. The zero value produces the
// generator the scheduling tests historically used: 60 operations over a
// 5-qubit register drawn from the unitary mix {H, CNOT, T, Rz, CZ}.
// Every default below is pinned by TestGenOptionsZeroValuePinned, so
// seeded corpora recorded against one release keep meaning the same
// circuits in the next.
type GenOptions struct {
	// Ops is the number of gate operations. Zero and negative values
	// both mean the default of 60 (a negative count is treated as
	// unset, not as an error).
	Ops int
	// Qubits is the register size. Zero and negative values mean the
	// default of 5. Explicit positive values are raised to the minimum
	// the gate mix needs rather than rejected: at least 2 (CNOT/CZ need
	// two distinct operands), and at least 3 when Wide is set (the
	// three-qubit gates need three).
	Qubits int
	// Wide adds the three-qubit gates (Toffoli, Fredkin) and Swap to the
	// mix. Leave unset for machines with d < 3.
	Wide bool
	// Measure adds PrepZ/MeasZ. Circuits with measurements schedule and
	// analyze normally but cannot be replay-checked against a state
	// vector, so the differential harness leaves this unset.
	Measure bool
}

func (o GenOptions) ops() int {
	if o.Ops <= 0 {
		return 60
	}
	return o.Ops
}

func (o GenOptions) qubits() int {
	q := o.Qubits
	if q <= 0 {
		q = 5
	}
	if q < 2 {
		q = 2
	}
	if o.Wide && q < 3 {
		q = 3
	}
	return q
}

// RandomLeaf builds a seeded random leaf module: a flat circuit over one
// register, suitable for scheduling, communication analysis and — when
// opts.Measure is unset — state-vector replay. It generalizes the ad-hoc
// generators that grew inside the schedule, rcp and lpfs test suites;
// those suites now draw from here so every layer fuzzes the same
// distribution. Determinism: identical (rng stream, opts) yield
// identical modules.
func RandomLeaf(rng *rand.Rand, opts GenOptions) *ir.Module {
	nOps, nQubits := opts.ops(), opts.qubits()
	m := ir.NewModule("rand", nil, []ir.Reg{{Name: "q", Size: nQubits}})
	appendRandomOps(rng, m, nOps, nQubits, opts.Wide, opts.Measure)
	return m
}

// appendRandomOps appends nOps random gate operations over the first
// nQubits slots of m. It is the draw loop shared by RandomLeaf and
// RandomProgram's leaf bodies; its rng consumption is part of the seeded
// contract — any change invalidates every recorded corpus digest, so the
// per-case draws below must stay exactly as they are.
func appendRandomOps(rng *rand.Rand, m *ir.Module, nOps, nQubits int, wide, measure bool) {
	// distinct returns n distinct qubit indices.
	distinct := func(n int) []int {
		picked := make([]int, 0, n)
		for len(picked) < n {
			q := rng.Intn(nQubits)
			dup := false
			for _, p := range picked {
				dup = dup || p == q
			}
			if !dup {
				picked = append(picked, q)
			}
		}
		return picked
	}

	for i := 0; i < nOps; i++ {
		// The base mix keeps the historical five-way draw so existing
		// seeds stay meaningful; extensions draw extra cases beyond it.
		ways := 5
		if wide {
			ways += 3
		}
		if measure {
			ways += 2
		}
		c := rng.Intn(ways)
		if c >= 5 && !wide {
			c += 3 // skip the wide cases straight to measurement
		}
		switch c {
		case 0:
			m.Gate(qasm.H, rng.Intn(nQubits))
		case 1:
			ab := distinct(2)
			m.Gate(qasm.CNOT, ab[0], ab[1])
		case 2:
			m.Gate(qasm.T, rng.Intn(nQubits))
		case 3:
			m.Rot(qasm.Rz, rng.Float64()*3, rng.Intn(nQubits))
		case 4:
			ab := distinct(2)
			m.Gate(qasm.CZ, ab[0], ab[1])
		case 5:
			abc := distinct(3)
			m.Gate(qasm.Toffoli, abc[0], abc[1], abc[2])
		case 6:
			abc := distinct(3)
			m.Gate(qasm.Fredkin, abc[0], abc[1], abc[2])
		case 7:
			ab := distinct(2)
			m.Gate(qasm.Swap, ab[0], ab[1])
		case 8:
			m.Gate(qasm.PrepZ, rng.Intn(nQubits))
		default:
			m.Gate(qasm.MeasZ, rng.Intn(nQubits))
		}
	}
}

// QASM renders a leaf module as a flat QASM-HL stream (declaration block
// plus one instruction per line) — the text the toolflow's back end
// emits. Fuzz corpora for the QASM reader seed from this.
func QASM(m *ir.Module) (string, error) {
	decl := make([]string, m.TotalSlots())
	for s := range decl {
		decl[s] = m.SlotName(s)
	}
	insts := make([]qasm.Inst, 0, len(m.Ops))
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Kind != ir.GateOp {
			return "", fmt.Errorf("verify: module %s op %d is a call, not QASM-HL", m.Name, i)
		}
		qs := make([]string, len(op.Args))
		for j, s := range op.Args {
			qs[j] = m.SlotName(s)
		}
		insts = append(insts, qasm.Inst{Op: op.Gate, Angle: op.Angle, Qubits: qs})
	}
	var sb strings.Builder
	if err := qasm.Write(&sb, decl, insts); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Scaffold renders a leaf module as Scaffold-lite source with the module
// as the program entry — generator output fed to the front end, and the
// seed shape for the parser fuzz corpus.
func Scaffold(m *ir.Module) (string, error) {
	var sb strings.Builder
	sb.WriteString("module main() {\n")
	for _, r := range append(append([]ir.Reg{}, m.Params...), m.Locals...) {
		if r.Size == 1 {
			fmt.Fprintf(&sb, "  qbit %s;\n", r.Name)
		} else {
			fmt.Fprintf(&sb, "  qbit %s[%d];\n", r.Name, r.Size)
		}
	}
	for i := range m.Ops {
		op := &m.Ops[i]
		if op.Kind != ir.GateOp {
			return "", fmt.Errorf("verify: module %s op %d is a call, not a leaf gate", m.Name, i)
		}
		sb.WriteString("  ")
		sb.WriteString(op.Gate.String())
		sb.WriteByte('(')
		for j, s := range op.Args {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(m.SlotName(s))
		}
		if op.Gate.IsRotation() {
			fmt.Fprintf(&sb, ", %g", op.Angle)
		}
		sb.WriteString(");\n")
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
