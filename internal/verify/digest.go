package verify

import (
	"hash/fnv"

	"github.com/scaffold-go/multisimd/internal/schedule"
)

// ScheduleDigest returns a stable FNV-1a fingerprint of a schedule's
// observable structure: machine shape (k, d) plus every (step, region,
// op) assignment in order. Two schedules digest equally iff they place
// the same ops in the same regions at the same timesteps — the
// bit-identity the refactoring corpus tests pin across scheduler
// rewrites.
func ScheduleDigest(s *schedule.Schedule) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w(uint64(s.K))
	w(uint64(s.D))
	w(uint64(len(s.Steps)))
	for t := range s.Steps {
		regions := s.Steps[t].Regions
		w(uint64(len(regions)))
		for r, ops := range regions {
			w(uint64(r))
			w(uint64(len(ops)))
			for _, op := range ops {
				w(uint64(op))
			}
		}
	}
	return h.Sum64()
}
