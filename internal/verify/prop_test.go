package verify_test

import (
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// TestWidthAndCapacityBounds pins the machine-shape properties for both
// schedulers across the k x d grid: Schedule.Width() never exceeds k,
// and no region-step ever operates on more than d qubits.
func TestWidthAndCapacityBounds(t *testing.T) {
	for _, name := range schedule.Names() {
		sched := schedule.MustLookup(name)
		for _, k := range []int{1, 2, 4, 8} {
			for _, d := range []int{0, 2, 4} {
				var trial int
				var seed int64
				gopts := verify.GenOptions{Ops: 45, Qubits: 6}
				disarm := logReplayOnFailure(t, &trial, &seed, &gopts)
				for trial = 0; trial < 10; trial++ {
					seed = int64(1000*k+d)*100 + int64(trial)
					m := verify.RandomLeaf(rand.New(rand.NewSource(seed)), gopts)
					g, err := dag.Build(m)
					if err != nil {
						t.Fatal(err)
					}
					s, err := sched.Schedule(m, g, k, d)
					if err != nil {
						t.Fatalf("%s k=%d d=%d: %v", name, k, d, err)
					}
					if w := s.Width(); w > k {
						t.Fatalf("%s k=%d d=%d trial %d: width %d exceeds k", name, k, d, trial, w)
					}
					if s.K != k || s.D != d {
						t.Fatalf("%s: schedule stamped (k=%d,d=%d), want (%d,%d)", name, s.K, s.D, k, d)
					}
					for st := range s.Steps {
						for r, ops := range s.Steps[st].Regions {
							qubits := 0
							for _, op := range ops {
								qubits += len(m.Ops[op].Args)
							}
							if d > 0 && qubits > d {
								t.Fatalf("%s k=%d d=%d trial %d: step %d region %d uses %d qubits",
									name, k, d, trial, st, r, qubits)
							}
						}
					}
					if err := verify.Schedule(s, g); err != nil {
						t.Fatalf("%s k=%d d=%d trial %d: %v", name, k, d, trial, err)
					}
				}
				disarm()
			}
		}
	}
}

// TestScheduleNeverBeatsCriticalPath pins the lower bound: no legal
// schedule is shorter than the dependency critical path, and none is
// longer than the op count.
func TestScheduleNeverBeatsCriticalPath(t *testing.T) {
	for _, name := range schedule.Names() {
		sched := schedule.MustLookup(name)
		var trial int
		var seed int64
		gopts := verify.GenOptions{Ops: 50, Qubits: 5}
		disarm := logReplayOnFailure(t, &trial, &seed, &gopts)
		for trial = 0; trial < 30; trial++ {
			seed = 5_000 + int64(trial)
			m := verify.RandomLeaf(rand.New(rand.NewSource(seed)), gopts)
			g, err := dag.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			k := 1 + trial%8
			s, err := sched.Schedule(m, g, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s.Length() < g.CriticalPath() || s.Length() > len(m.Ops) {
				t.Fatalf("%s k=%d: length %d outside [cp=%d, ops=%d]",
					name, k, s.Length(), g.CriticalPath(), len(m.Ops))
			}
		}
		disarm()
	}
}
