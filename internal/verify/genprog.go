package verify

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/qasm"
)

// ProgramGenOptions shapes RandomProgram's output. Like GenOptions, the
// zero value is a meaningful default (pinned by
// TestProgramGenOptionsZeroValuePinned): a three-level program — entry,
// one intermediate layer, one leaf layer — of 3 modules per layer with
// up-to-3-way fanout, 32-op leaves and registers up to 3 qubits wide.
// Non-positive values of any count field select its default.
type ProgramGenOptions struct {
	// Depth is the number of call-graph levels below the entry module
	// (default 2, minimum 1). Depth 1 means the entry calls leaves
	// directly; depth 2 inserts one layer of intermediate modules, and
	// so on. Modules at the deepest level are leaves (gates only).
	Depth int
	// ModulesPerLevel is how many modules each level below the entry
	// holds (default 3, minimum 1). Every one of them is reachable from
	// the entry.
	ModulesPerLevel int
	// Fanout bounds the number of extra (beyond those required for
	// reachability) call sites drawn per non-leaf body (default 3,
	// minimum 1).
	Fanout int
	// LeafOps is the number of random gate operations per leaf body
	// (default 32), drawn from the same mix RandomLeaf uses.
	LeafOps int
	// BodyGates is the number of stray coarse-level gates interleaved
	// with the calls in each non-leaf body (default 3). The engine
	// teleports their operands around the call schedule, so they
	// exercise the mixed gate+call path.
	BodyGates int
	// MaxRegSize bounds register widths — parameters, locals and
	// ancillae alike (default 3, minimum 1).
	MaxRegSize int
	// Loops wraps a fraction of call sites and leaf gates in
	// classically-counted repetition (ir.Op.Count) with trip counts in
	// [33, 128] — above lower's default unroll limit of 32, so the
	// Scaffold rendering's for-loops collapse back to the identical
	// Count on re-parse instead of unrolling.
	Loops bool
	// Wide admits three-qubit gates and Swap into the leaf mix (see
	// GenOptions.Wide). Machines with 0 < d < 3 cannot schedule them.
	Wide bool
	// Measure admits PrepZ/MeasZ into the leaf mix, gives leaf ancillae
	// an explicit PrepZ-allocate / MeasZ-free envelope, and appends a
	// measurement wall to the entry module.
	Measure bool
}

func (o ProgramGenOptions) depth() int {
	if o.Depth <= 0 {
		return 2
	}
	return o.Depth
}

func (o ProgramGenOptions) modulesPerLevel() int {
	if o.ModulesPerLevel <= 0 {
		return 3
	}
	return o.ModulesPerLevel
}

func (o ProgramGenOptions) fanout() int {
	if o.Fanout <= 0 {
		return 3
	}
	return o.Fanout
}

func (o ProgramGenOptions) leafOps() int {
	if o.LeafOps <= 0 {
		return 32
	}
	return o.LeafOps
}

func (o ProgramGenOptions) bodyGates() int {
	if o.BodyGates <= 0 {
		return 3
	}
	return o.BodyGates
}

func (o ProgramGenOptions) maxRegSize() int {
	if o.MaxRegSize <= 0 {
		return 3
	}
	return o.MaxRegSize
}

// loopTrip draws a repetition count strictly above lower's default
// unroll limit, so rendered for-loops collapse rather than unroll.
func loopTrip(rng *rand.Rand) int64 { return 33 + int64(rng.Intn(96)) }

// RandomProgram builds a seeded random hierarchical program: a layered
// module call DAG rooted at a parameterless "main", with every module
// reachable from the entry, exact-size whole-register call arguments,
// leaf bodies drawn from the RandomLeaf gate mix, optional ancilla
// allocate/free envelopes, counted loops and measurement placement.
//
// The output is designed to survive the front end exactly:
// ProgramScaffold renders it as Scaffold source whose
// parse → sema → lower pipeline reproduces the identical
// ir.Fingerprint, so one seed exercises the schedulers and the language
// front end on the same program. Determinism: identical (rng stream,
// opts) yield identical programs.
func RandomProgram(rng *rand.Rand, opts ProgramGenOptions) *ir.Program {
	depth := opts.depth()
	perLevel := opts.modulesPerLevel()
	fanout := opts.fanout()
	maxReg := opts.maxRegSize()

	minLeafSlots := 2
	if opts.Wide {
		minLeafSlots = 3
	}

	// Shell phase: fix every module's name and parameter shape first, so
	// callers can bind arguments while bodies are generated top-down.
	// levels[l] holds level l+1's modules (level 0 is the entry).
	type shell struct {
		name   string
		params []ir.Reg
		level  int // 1-based; depth == leaf level
	}
	levels := make([][]*shell, depth)
	for l := 1; l <= depth; l++ {
		mods := make([]*shell, perLevel)
		for i := range mods {
			nParams := 1 + rng.Intn(2)
			params := make([]ir.Reg, nParams)
			total := 0
			for j := range params {
				params[j] = ir.Reg{Name: fmt.Sprintf("p%d", j), Size: 1 + rng.Intn(maxReg)}
				total += params[j].Size
			}
			if l == depth && total < minLeafSlots {
				// Leaves need enough operands for the widest gate in
				// the mix.
				params[nParams-1].Size += minLeafSlots - total
			}
			mods[i] = &shell{name: fmt.Sprintf("sub%d_%d", l, i), params: params, level: l}
		}
		levels[l-1] = mods
	}

	// Reachability phase: every module below level 1 draws one required
	// caller from the level directly above; every level-1 module is
	// required in main. Induction makes the whole DAG reachable.
	required := make(map[string][]*shell) // caller name -> required callees
	for _, s := range levels[0] {
		required["main"] = append(required["main"], s)
	}
	for l := 2; l <= depth; l++ {
		for _, s := range levels[l-1] {
			caller := levels[l-2][rng.Intn(perLevel)]
			required[caller.name] = append(required[caller.name], s)
		}
	}

	p := ir.NewProgram("main")

	// deeper collects candidate callees strictly below a level.
	deeper := func(level int) []*shell {
		var out []*shell
		for l := level + 1; l <= depth; l++ {
			out = append(out, levels[l-1]...)
		}
		return out
	}

	// fillNonLeaf plans calls (binding whole registers of the exact
	// callee parameter sizes, allocating locals when the caller has no
	// free register of that size), sprinkles stray coarse-level gates,
	// and shuffles the body so call/gate placement varies.
	fillNonLeaf := func(m *ir.Module, level int) {
		candidates := deeper(level)
		calls := append([]*shell(nil), required[m.Name]...)
		target := 1 + rng.Intn(fanout)
		for len(calls) < target {
			calls = append(calls, candidates[rng.Intn(len(candidates))])
		}
		for _, callee := range calls {
			args := make([]ir.Range, len(callee.params))
			used := make(map[string]bool, len(callee.params))
			for j, cp := range callee.params {
				name := ""
				for _, r := range append(append([]ir.Reg{}, m.Params...), m.Locals...) {
					if r.Size == cp.Size && !used[r.Name] {
						name = r.Name
						break
					}
				}
				if name == "" {
					name = fmt.Sprintf("a%d", len(m.Locals))
					m.AddLocal(name, cp.Size)
				}
				used[name] = true
				rr, _ := m.RegRange(name)
				args[j] = rr
			}
			count := int64(1)
			if opts.Loops && rng.Intn(4) == 0 {
				count = loopTrip(rng)
			}
			m.CallN(callee.name, count, args...)
		}
		if m.TotalSlots() < 2 {
			m.AddLocal(fmt.Sprintf("a%d", len(m.Locals)), 2-m.TotalSlots())
		}
		appendRandomOps(rng, m, opts.bodyGates(), m.TotalSlots(), false, false)
		rng.Shuffle(len(m.Ops), func(i, j int) { m.Ops[i], m.Ops[j] = m.Ops[j], m.Ops[i] })
	}

	// fillLeaf draws the RandomLeaf mix over the leaf's full slot space,
	// wrapping it in a PrepZ-allocate / MeasZ-free ancilla envelope when
	// the leaf carries an ancilla register.
	fillLeaf := func(m *ir.Module) {
		var anc ir.Range
		if rng.Intn(2) == 0 {
			anc = m.AddLocal("anc", 1+rng.Intn(maxReg))
			for s := anc.Start; s < anc.Start+anc.Len; s++ {
				m.Gate(qasm.PrepZ, s)
			}
		}
		appendRandomOps(rng, m, opts.leafOps(), m.TotalSlots(), opts.Wide, opts.Measure)
		if opts.Loops {
			for i := anc.Len; i < len(m.Ops); i++ {
				if rng.Intn(8) == 0 {
					m.Ops[i].Count = loopTrip(rng)
				}
			}
		}
		if opts.Measure && anc.Len > 0 {
			for s := anc.Start; s < anc.Start+anc.Len; s++ {
				m.Gate(qasm.MeasZ, s)
			}
		}
	}

	main := ir.NewModule("main", nil, nil)
	p.Add(main)
	fillNonLeaf(main, 0)
	if opts.Measure && len(main.Locals) > 0 {
		rr, _ := main.RegRange(main.Locals[0].Name)
		for s := rr.Start; s < rr.Start+rr.Len; s++ {
			main.Gate(qasm.MeasZ, s)
		}
	}
	for l := 1; l <= depth; l++ {
		for _, s := range levels[l-1] {
			m := ir.NewModule(s.name, append([]ir.Reg(nil), s.params...), nil)
			p.Add(m)
			if l == depth {
				fillLeaf(m)
			} else {
				fillNonLeaf(m, l)
			}
		}
	}
	return p
}

// ProgramScaffold renders a hierarchical program as Scaffold source, the
// inverse of the front end: parse + sema + lower of the result
// reproduces the program (identical ir.Fingerprint) provided the
// program stays inside the renderable subset — every call argument is a
// whole caller register whose size exactly matches the callee
// parameter, and every op Count is either 1 or greater than lower's
// unroll limit (counted ops render as for-loops; trips of 2..32 would
// unroll into separate ops on re-parse). RandomProgram emits only this
// subset.
func ProgramScaffold(p *ir.Program) (string, error) {
	var sb strings.Builder
	for idx, name := range p.Order {
		m := p.Modules[name]
		if m == nil {
			return "", fmt.Errorf("verify: program order names missing module %q", name)
		}
		if idx > 0 {
			sb.WriteByte('\n')
		}
		if err := writeModuleScaffold(&sb, p, m); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

func writeModuleScaffold(sb *strings.Builder, p *ir.Program, m *ir.Module) error {
	sb.WriteString("module ")
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, r := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		if r.Size == 1 {
			fmt.Fprintf(sb, "qbit %s", r.Name)
		} else {
			fmt.Fprintf(sb, "qbit %s[%d]", r.Name, r.Size)
		}
	}
	sb.WriteString(") {\n")
	for _, r := range m.Locals {
		if r.Size == 1 {
			fmt.Fprintf(sb, "  qbit %s;\n", r.Name)
		} else {
			fmt.Fprintf(sb, "  qbit %s[%d];\n", r.Name, r.Size)
		}
	}

	// regOf resolves a slot range back to the register that spans it
	// exactly — the only call-argument shape the renderer supports.
	regOf := func(rr ir.Range) (string, bool) {
		for _, r := range append(append([]ir.Reg{}, m.Params...), m.Locals...) {
			cand, ok := m.RegRange(r.Name)
			if ok && cand == rr {
				return r.Name, true
			}
		}
		return "", false
	}

	for i := range m.Ops {
		op := &m.Ops[i]
		var stmt string
		switch op.Kind {
		case ir.GateOp:
			var b strings.Builder
			b.WriteString(op.Gate.String())
			b.WriteByte('(')
			for j, s := range op.Args {
				if j > 0 {
					b.WriteString(", ")
				}
				if s < 0 || s >= m.TotalSlots() {
					return fmt.Errorf("verify: module %s op %d: slot %d out of range", m.Name, i, s)
				}
				b.WriteString(m.SlotName(s))
			}
			if op.Gate.IsRotation() {
				if math.IsNaN(op.Angle) || math.IsInf(op.Angle, 0) {
					return fmt.Errorf("verify: module %s op %d: unrenderable angle %v", m.Name, i, op.Angle)
				}
				b.WriteString(", ")
				b.WriteString(strconv.FormatFloat(op.Angle, 'g', -1, 64))
			}
			b.WriteByte(')')
			stmt = b.String()
		case ir.CallOp:
			if p.Modules[op.Callee] == nil {
				return fmt.Errorf("verify: module %s op %d: missing callee %q", m.Name, i, op.Callee)
			}
			var b strings.Builder
			b.WriteString(op.Callee)
			b.WriteByte('(')
			for j, rr := range op.CallArgs {
				if j > 0 {
					b.WriteString(", ")
				}
				name, ok := regOf(rr)
				if !ok {
					return fmt.Errorf("verify: module %s op %d: call arg %d (%+v) is not a whole register", m.Name, i, j, rr)
				}
				b.WriteString(name)
			}
			b.WriteByte(')')
			stmt = b.String()
		default:
			return fmt.Errorf("verify: module %s op %d: unknown kind %d", m.Name, i, op.Kind)
		}
		if n := op.EffCount(); n > 1 {
			fmt.Fprintf(sb, "  for (i = 0; i < %d; i++) {\n    %s;\n  }\n", n, stmt)
		} else {
			fmt.Fprintf(sb, "  %s;\n", stmt)
		}
	}
	sb.WriteString("}\n")
	return nil
}
