package verify_test

import (
	"testing"

	"github.com/scaffold-go/multisimd/internal/verify"
)

// logReplayOnFailure arms a trial loop with a failure replay line: if
// the test fails while the loop is still running, the cleanup logs the
// trial and seed that were current at the failure plus a ready-to-paste
// RandomLeaf call reproducing the failing module. Register before the
// loop, update the pointed-at variables inside it, and call the returned
// disarm func after the loop so completed loops stay silent when a later
// loop on the same t fails. Because every trial reseeds its own rng from
// the derived seed, the snippet reproduces the module without replaying
// the preceding trials.
func logReplayOnFailure(t *testing.T, trial *int, seed *int64, opts *verify.GenOptions) (disarm func()) {
	t.Helper()
	armed := true
	t.Cleanup(func() {
		if t.Failed() && armed {
			t.Logf("failing trial %d seed %d; replay: m := verify.RandomLeaf(rand.New(rand.NewSource(%d)), verify.GenOptions{Ops: %d, Qubits: %d, Wide: %t, Measure: %t})",
				*trial, *seed, *seed, opts.Ops, opts.Qubits, opts.Wide, opts.Measure)
		}
	})
	return func() { armed = false }
}
