// Package verify is the independent legality oracle for Multi-SIMD
// schedules (paper §3–§4). It re-checks, from first principles, every
// contract the schedulers and the communication analysis promise:
//
//  1. every operation of the module is scheduled exactly once;
//  2. dependencies execute in strictly earlier timesteps;
//  3. each SIMD region applies one gate type per step (schedule.KeyOf);
//  4. region counts stay within k and region qubit usage within d;
//  5. no qubit is touched by two regions (or two ops) in one step;
//  6. the move list produced by comm.Analyze is consistent — every
//     operand is resident in its region when its operation fires, moves
//     depart from where the qubit actually is, scratchpad capacity is
//     respected and the summary counters match the boundary lists.
//
// The checks are deliberately written against the execution model
// rather than against any scheduler's implementation, so they serve as
// a differential oracle: schedule.Validate, the machine executor and
// this package all fail independently if the toolflow drifts.
package verify

import (
	"fmt"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/schedule"
)

// Error is a structured legality violation. Step, Region and Op locate
// the failure inside the schedule; fields that do not apply are -1.
type Error struct {
	Module string // module name
	Check  string // invariant identifier, e.g. "simd-homogeneity"
	Step   int    // timestep, -1 if not applicable
	Region int    // SIMD region, -1 if not applicable
	Op     int    // op index into the module body, -1 if not applicable
	Detail string // human-readable description
}

// Error implements the error interface with a fully located diagnostic.
func (e *Error) Error() string {
	s := fmt.Sprintf("verify: module %q: check %s", e.Module, e.Check)
	if e.Step >= 0 {
		s += fmt.Sprintf(" step %d", e.Step)
	}
	if e.Region >= 0 {
		s += fmt.Sprintf(" region %d", e.Region)
	}
	if e.Op >= 0 {
		s += fmt.Sprintf(" op %d", e.Op)
	}
	return s + ": " + e.Detail
}

func fail(s *schedule.Schedule, check string, step, region, op int, format string, args ...any) error {
	return &Error{
		Module: s.M.Name,
		Check:  check,
		Step:   step,
		Region: region,
		Op:     op,
		Detail: fmt.Sprintf(format, args...),
	}
}

// Schedule checks invariants 1–5 of a fine-grained schedule against its
// dependency graph. It is an independent reimplementation of the
// Multi-SIMD(k,d) contract, not a call into schedule.Validate.
func Schedule(s *schedule.Schedule, g *dag.Graph) error {
	n := len(s.M.Ops)
	if g.Len() != n {
		return fail(s, "graph-shape", -1, -1, -1,
			"dependency graph has %d nodes, module has %d ops", g.Len(), n)
	}
	if s.K < 1 {
		return fail(s, "machine-shape", -1, -1, -1, "k = %d, want >= 1", s.K)
	}

	stepOf := make([]int, n)
	for i := range stepOf {
		stepOf[i] = -1
	}

	for t := range s.Steps {
		step := &s.Steps[t]
		// (4) k-region bound.
		if len(step.Regions) > s.K {
			return fail(s, "k-regions", t, -1, -1,
				"step uses %d regions, machine has k = %d", len(step.Regions), s.K)
		}
		// (5) every qubit touched at most once per step, across regions.
		qubitAt := map[int]int{} // slot -> region of first touch this step
		for r, ops := range step.Regions {
			if len(ops) == 0 {
				continue
			}
			key := schedule.KeyOf(s.M, ops[0])
			qubits := 0
			for _, op := range ops {
				if op < 0 || int(op) >= n {
					return fail(s, "op-range", t, r, int(op),
						"op index out of range [0,%d)", n)
				}
				// (1) exactly once.
				if prev := stepOf[op]; prev >= 0 {
					return fail(s, "op-once", t, r, int(op),
						"op already scheduled at step %d", prev)
				}
				stepOf[op] = t
				// (3) SIMD homogeneity.
				if k := schedule.KeyOf(s.M, op); k != key {
					return fail(s, "simd-homogeneity", t, r, int(op),
						"region mixes %v and %v", key, k)
				}
				for _, slot := range s.M.Ops[op].Args {
					if slot < 0 || slot >= s.M.TotalSlots() {
						return fail(s, "qubit-range", t, r, int(op),
							"qubit slot %d out of range [0,%d)", slot, s.M.TotalSlots())
					}
					if r0, seen := qubitAt[slot]; seen {
						return fail(s, "qubit-exclusive", t, r, int(op),
							"qubit %s already touched in region %d this step",
							s.M.SlotName(slot), r0)
					}
					qubitAt[slot] = r
					qubits++
				}
			}
			// (4) d-capacity.
			if s.D > 0 && qubits > s.D {
				return fail(s, "d-capacity", t, r, -1,
					"region operates on %d qubits, d = %d", qubits, s.D)
			}
		}
	}

	// (1) completeness and (2) dependency order.
	for i := 0; i < n; i++ {
		if stepOf[i] < 0 {
			return fail(s, "op-once", -1, -1, i, "op never scheduled")
		}
		for _, p := range g.Preds[i] {
			if stepOf[p] >= stepOf[i] {
				return fail(s, "dependency-order", stepOf[i], -1, i,
					"scheduled at step %d, but dependency op %d runs at step %d",
					stepOf[i], p, stepOf[p])
			}
		}
	}
	return nil
}

// Moves checks invariant 6: the move list of a communication analysis is
// consistent with qubit locations over time. It replays res.Boundaries
// against the schedule, tracking each qubit's residence: every move must
// depart from the qubit's current location, local moves must connect a
// region to its own scratchpad, scratchpad occupancy must respect the
// configured capacity, every operand must be resident in its region when
// its operation fires, and the Result's summary counters must match the
// boundary lists. opts must be the options the analysis ran under.
func Moves(s *schedule.Schedule, res *comm.Result, opts comm.Options) error {
	if len(res.Boundaries) != len(s.Steps) || len(res.Overhead) != len(s.Steps) {
		return fail(s, "move-shape", -1, -1, -1,
			"%d boundaries / %d overheads for %d steps",
			len(res.Boundaries), len(res.Overhead), len(s.Steps))
	}

	loc := map[int]comm.Loc{} // zero value = global memory
	localOcc := make([]int, s.K)
	var globals, locals int64
	var peakLocal, peakEPR int

	for t := range s.Steps {
		boundaryEPR := 0
		for mi, mv := range res.Boundaries[t] {
			if mv.Slot < 0 || mv.Slot >= s.M.TotalSlots() {
				return fail(s, "move-slot", t, -1, -1,
					"boundary move %d references slot %d of %d", mi, mv.Slot, s.M.TotalSlots())
			}
			if err := checkLocRegion(s, t, mv.From); err != nil {
				return err
			}
			if err := checkLocRegion(s, t, mv.To); err != nil {
				return err
			}
			if cur := loc[mv.Slot]; mv.From != cur {
				return fail(s, "move-source", t, int(regionOf(mv.From)), -1,
					"qubit %s moves from %v but resides at %v",
					s.M.SlotName(mv.Slot), mv.From, cur)
			}
			if mv.From == mv.To {
				return fail(s, "move-noop", t, int(regionOf(mv.To)), -1,
					"qubit %s moves from %v to itself", s.M.SlotName(mv.Slot), mv.From)
			}
			switch mv.Kind {
			case comm.LocalMove:
				// Ballistic moves connect a region to its own scratchpad.
				if !localPair(mv.From, mv.To) {
					return fail(s, "move-kind", t, int(regionOf(mv.To)), -1,
						"local move %v -> %v does not connect a region to its scratchpad",
						mv.From, mv.To)
				}
				locals++
			case comm.GlobalMove:
				if localPair(mv.From, mv.To) {
					return fail(s, "move-kind", t, int(regionOf(mv.To)), -1,
						"teleport %v -> %v connects a region to its own scratchpad",
						mv.From, mv.To)
				}
				globals++
				boundaryEPR++
			default:
				return fail(s, "move-kind", t, -1, -1, "unknown move kind %d", mv.Kind)
			}
			if mv.From.Kind == comm.InLocal {
				localOcc[mv.From.Region]--
			}
			if mv.To.Kind == comm.InLocal {
				r := int(mv.To.Region)
				localOcc[r]++
				if localOcc[r] > peakLocal {
					peakLocal = localOcc[r]
				}
				if opts.LocalCapacity == 0 {
					return fail(s, "local-capacity", t, r, -1,
						"qubit %s parked in a scratchpad, but local memory is disabled",
						s.M.SlotName(mv.Slot))
				}
				if opts.LocalCapacity > 0 && localOcc[r] > opts.LocalCapacity {
					return fail(s, "local-capacity", t, r, -1,
						"scratchpad holds %d qubits, capacity %d", localOcc[r], opts.LocalCapacity)
				}
			}
			loc[mv.Slot] = mv.To
		}
		if boundaryEPR > peakEPR {
			peakEPR = boundaryEPR
		}
		// Residency: after the boundary's moves, every operand of step t
		// must sit in the region operating on it.
		for r, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				for _, slot := range s.M.Ops[op].Args {
					want := comm.Loc{Kind: comm.InRegion, Region: int32(r)}
					if got := loc[slot]; got != want {
						return fail(s, "residency", t, r, int(op),
							"operand %s resides at %v, not in its region",
							s.M.SlotName(slot), got)
					}
				}
			}
		}
		if res.Overhead[t] < 0 {
			return fail(s, "overhead", t, -1, -1, "negative overhead %d", res.Overhead[t])
		}
	}

	// Summary counters must match the boundary lists they summarize.
	if res.GlobalMoves != globals || res.LocalMoves != locals {
		return fail(s, "move-counters", -1, -1, -1,
			"result counts %d global / %d local moves, boundaries hold %d / %d",
			res.GlobalMoves, res.LocalMoves, globals, locals)
	}
	if res.EPRPairs != globals {
		return fail(s, "epr-counters", -1, -1, -1,
			"result counts %d EPR pairs for %d teleports", res.EPRPairs, globals)
	}
	if res.PeakEPRBandwidth != peakEPR {
		return fail(s, "epr-counters", -1, -1, -1,
			"result reports peak EPR bandwidth %d, boundaries peak at %d",
			res.PeakEPRBandwidth, peakEPR)
	}
	// The analysis reserves scratchpad slots from eviction-planning time,
	// so its reported peak may exceed the replayed arrival-time peak but
	// never undercount it, and must itself respect the capacity.
	if res.MaxLocalOccupancy < peakLocal {
		return fail(s, "local-capacity", -1, -1, -1,
			"result reports peak scratchpad occupancy %d, replay reaches %d",
			res.MaxLocalOccupancy, peakLocal)
	}
	if opts.LocalCapacity > 0 && res.MaxLocalOccupancy > opts.LocalCapacity {
		return fail(s, "local-capacity", -1, -1, -1,
			"result reports peak scratchpad occupancy %d, capacity %d",
			res.MaxLocalOccupancy, opts.LocalCapacity)
	}
	var cycles int64
	for _, o := range res.Overhead {
		cycles += int64(o)
	}
	cycles += int64(len(s.Steps))
	if res.Cycles != cycles {
		return fail(s, "cycle-accounting", -1, -1, -1,
			"result reports %d cycles, steps + overheads sum to %d", res.Cycles, cycles)
	}
	return nil
}

// Full runs the complete legality check: the Multi-SIMD schedule
// contract (invariants 1–5) followed by move-list consistency (6).
// res may be nil to skip the communication checks.
func Full(s *schedule.Schedule, g *dag.Graph, res *comm.Result, opts comm.Options) error {
	if err := Schedule(s, g); err != nil {
		return err
	}
	if res == nil {
		return nil
	}
	return Moves(s, res, opts)
}

// checkLocRegion rejects locations naming a region outside [0, k).
func checkLocRegion(s *schedule.Schedule, t int, l comm.Loc) error {
	switch l.Kind {
	case comm.InGlobal:
		return nil
	case comm.InRegion, comm.InLocal:
		if l.Region < 0 || int(l.Region) >= s.K {
			return fail(s, "move-region", t, int(l.Region), -1,
				"location %v names a region outside [0,%d)", l, s.K)
		}
		return nil
	}
	return fail(s, "move-region", t, -1, -1, "unknown location kind %d", l.Kind)
}

// localPair reports whether from/to connect a region to its own
// scratchpad (in either direction) — the only legal ballistic move.
func localPair(from, to comm.Loc) bool {
	return (from.Kind == comm.InRegion && to.Kind == comm.InLocal ||
		from.Kind == comm.InLocal && to.Kind == comm.InRegion) &&
		from.Region == to.Region
}

// regionOf extracts a region index for diagnostics; -1 for global.
func regionOf(l comm.Loc) int32 {
	if l.Kind == comm.InGlobal {
		return -1
	}
	return l.Region
}
