package verify_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/lpfs"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/rcp"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// twoQubitChain is H(0) CNOT(0,1) T(1): a 3-op dependent chain.
func twoQubitChain() (*ir.Module, *dag.Graph) {
	m := ir.NewModule("chain", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.T, 1)
	g, err := dag.Build(m)
	if err != nil {
		panic(err)
	}
	return m, g
}

// wantCheck asserts err is a *verify.Error flagging the given check.
func wantCheck(t *testing.T, err error, check string) *verify.Error {
	t.Helper()
	if err == nil {
		t.Fatalf("illegal schedule accepted, want %s violation", check)
	}
	var ve *verify.Error
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T (%v), want *verify.Error", err, err)
	}
	if ve.Check != check {
		t.Fatalf("check = %s (%v), want %s", ve.Check, ve, check)
	}
	return ve
}

func TestLegalScheduleAccepted(t *testing.T) {
	m, g := twoQubitChain()
	s := schedule.Sequential(m, 2)
	if err := verify.Schedule(s, g); err != nil {
		t.Fatalf("sequential schedule rejected: %v", err)
	}
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Full(s, g, res, comm.Options{}); err != nil {
		t.Fatalf("legal analysis rejected: %v", err)
	}
}

func TestOpScheduledTwice(t *testing.T) {
	m, g := twoQubitChain()
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{1}}}, // op 1 again, op 2 missing
	}}
	ve := wantCheck(t, verify.Schedule(s, g), "op-once")
	if ve.Step != 2 || ve.Op != 1 {
		t.Errorf("diagnostic located at step %d op %d, want step 2 op 1", ve.Step, ve.Op)
	}
}

func TestOpMissing(t *testing.T) {
	m, g := twoQubitChain()
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
	}}
	ve := wantCheck(t, verify.Schedule(s, g), "op-once")
	if ve.Op != 2 {
		t.Errorf("diagnostic names op %d, want 2", ve.Op)
	}
}

func TestDependencyOrderViolated(t *testing.T) {
	m, g := twoQubitChain()
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{2}}}, // T before its producer CNOT
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{0}}},
	}}
	wantCheck(t, verify.Schedule(s, g), "dependency-order")
}

func TestSIMDHomogeneityViolated(t *testing.T) {
	m := ir.NewModule("mix", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.T, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}}}, // H and T share a region-step
	}}
	ve := wantCheck(t, verify.Schedule(s, g), "simd-homogeneity")
	if ve.Step != 0 || ve.Region != 0 || ve.Op != 1 {
		t.Errorf("diagnostic at step %d region %d op %d, want 0/0/1", ve.Step, ve.Region, ve.Op)
	}
}

func TestDistinctAnglesAreDistinctTypes(t *testing.T) {
	m := ir.NewModule("rot", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Rot(qasm.Rz, 0.25, 0)
	m.Rot(qasm.Rz, 0.75, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}}},
	}}
	wantCheck(t, verify.Schedule(s, g), "simd-homogeneity")
}

func TestKRegionBoundViolated(t *testing.T) {
	m := ir.NewModule("wide", nil, []ir.Reg{{Name: "q", Size: 2}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.H, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}, {1}}}, // two regions on a k=1 machine
	}}
	wantCheck(t, verify.Schedule(s, g), "k-regions")
}

func TestDCapacityViolated(t *testing.T) {
	m := ir.NewModule("fat", nil, []ir.Reg{{Name: "q", Size: 4}})
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.CNOT, 2, 3)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, D: 2, Steps: []schedule.Step{
		{Regions: [][]int32{{0, 1}}}, // 4 qubits in a d=2 region
	}}
	ve := wantCheck(t, verify.Schedule(s, g), "d-capacity")
	if ve.Step != 0 || ve.Region != 0 {
		t.Errorf("diagnostic at step %d region %d, want 0/0", ve.Step, ve.Region)
	}
}

func TestQubitInTwoRegionsAtOnce(t *testing.T) {
	// Two H gates on the same qubit: dependency-free by construction of a
	// doctored graph is impossible, so build two modules' worth of ops on
	// distinct qubits and forge the schedule to alias them. Simpler: two
	// ops on overlapping operand sets placed in the same step in
	// different regions — CNOT(0,1) and a forged H(1) placement.
	m := ir.NewModule("alias", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.CNOT, 0, 1)
	m.Gate(qasm.H, 1)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 2, Steps: []schedule.Step{
		{Regions: [][]int32{{0}, {1}}}, // q[1] touched by both regions
	}}
	// The same placement also violates dependency order (same step), but
	// the per-step qubit exclusivity check fires first.
	wantCheck(t, verify.Schedule(s, g), "qubit-exclusive")
}

func TestMoveSourceMismatch(t *testing.T) {
	m, g := twoQubitChain()
	s := schedule.Sequential(m, 1)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Full(s, g, res, comm.Options{}); err != nil {
		t.Fatalf("legal analysis rejected: %v", err)
	}
	// Corrupt the first boundary's first move to claim a wrong source.
	if len(res.Boundaries[0]) == 0 {
		t.Fatal("expected an initial load at boundary 0")
	}
	res.Boundaries[0][0].From = comm.Loc{Kind: comm.InLocal, Region: 0}
	err = verify.Moves(s, res, comm.Options{})
	ve := wantCheck(t, err, "move-source")
	if ve.Step != 0 {
		t.Errorf("diagnostic at step %d, want 0", ve.Step)
	}
}

func TestMissingResidencyMove(t *testing.T) {
	m, _ := twoQubitChain()
	s := schedule.Sequential(m, 1)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Drop the initial load of q[0]: op 0 then fires on a qubit the move
	// list says is still in global memory.
	if len(res.Boundaries[0]) != 1 {
		t.Fatalf("boundary 0 has %d moves, want 1", len(res.Boundaries[0]))
	}
	res.Boundaries[0] = nil
	res.GlobalMoves--
	res.EPRPairs--
	recountPeak(res)
	err = verify.Moves(s, res, comm.Options{})
	ve := wantCheck(t, err, "residency")
	if ve.Step != 0 || ve.Region != 0 || ve.Op != 0 {
		t.Errorf("diagnostic at step %d region %d op %d, want 0/0/0", ve.Step, ve.Region, ve.Op)
	}
}

func TestCounterMismatch(t *testing.T) {
	m, _ := twoQubitChain()
	s := schedule.Sequential(m, 1)
	res, err := comm.Analyze(s, comm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.GlobalMoves++
	wantCheck(t, verify.Moves(s, res, comm.Options{}), "move-counters")
	res.GlobalMoves--
	res.Cycles++
	wantCheck(t, verify.Moves(s, res, comm.Options{}), "cycle-accounting")
}

func TestScratchpadCapacityViolationDetected(t *testing.T) {
	// A qubit that leaves and returns to an active region parks in the
	// scratchpad under capacity 1; claim capacity was 0 and the verifier
	// must object.
	m := ir.NewModule("park", nil, []ir.Reg{{Name: "q", Size: 3}})
	m.Gate(qasm.H, 0)
	m.Gate(qasm.T, 1)
	m.Gate(qasm.H, 0)
	g, err := dag.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{2}}},
	}}
	res, err := comm.Analyze(s, comm.Options{LocalCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.Full(s, g, res, comm.Options{LocalCapacity: 1}); err != nil {
		t.Fatalf("legal parking rejected: %v", err)
	}
	if res.LocalMoves == 0 {
		t.Fatal("expected a scratchpad round trip")
	}
	wantCheck(t, verify.Moves(s, res, comm.Options{LocalCapacity: 0}), "local-capacity")
}

// recountPeak recomputes PeakEPRBandwidth after a test doctors the
// boundary lists.
func recountPeak(res *comm.Result) {
	res.PeakEPRBandwidth = 0
	for _, b := range res.Boundaries {
		g := 0
		for _, mv := range b {
			if mv.Kind == comm.GlobalMove {
				g++
			}
		}
		if g > res.PeakEPRBandwidth {
			res.PeakEPRBandwidth = g
		}
	}
}

func TestVerifierAgreesWithScheduleValidate(t *testing.T) {
	// Cross-oracle: on random schedules from both real schedulers, the
	// independent verifier and schedule.Validate must agree (both accept).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := verify.RandomLeaf(rng, verify.GenOptions{Ops: 40, Qubits: 5})
		g, err := dag.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3} {
			sr, err := rcp.Schedule(m, g, rcp.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			sl, err := lpfs.Schedule(m, g, lpfs.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []*schedule.Schedule{sr, sl} {
				if err := s.Validate(g); err != nil {
					t.Fatalf("trial %d k=%d: Validate rejects: %v", trial, k, err)
				}
				if err := verify.Schedule(s, g); err != nil {
					t.Fatalf("trial %d k=%d: verifier rejects: %v", trial, k, err)
				}
			}
		}
	}
}

func TestErrorRendering(t *testing.T) {
	m, g := twoQubitChain()
	s := &schedule.Schedule{M: m, K: 1, Steps: []schedule.Step{
		{Regions: [][]int32{{0}}},
		{Regions: [][]int32{{1}}},
		{Regions: [][]int32{{1}}},
	}}
	err := verify.Schedule(s, g)
	if err == nil {
		t.Fatal("illegal schedule accepted")
	}
	msg := err.Error()
	for _, want := range []string{"chain", "op-once", "step 2", "op 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}
