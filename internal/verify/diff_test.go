package verify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/sim"
	"github.com/scaffold-go/multisimd/internal/verify"

	// Side-effect imports: the differential harness runs every scheduler
	// in the global registry, so the built-in algorithms must register.
	_ "github.com/scaffold-go/multisimd/internal/lpfs"
	_ "github.com/scaffold-go/multisimd/internal/rcp"
)

// diffTrials is the per-scheduler module count of the differential
// harness. Every trial exercises one random module under a rotating
// (k, d, comm) configuration.
const diffTrials = 200

// diffConfig derives the trial's machine and movement configuration.
func diffConfig(trial int) (k, d int, copts comm.Options) {
	k = []int{1, 2, 3, 4, 8}[trial%5]
	d = []int{0, 0, 2, 4}[trial%4]
	switch trial % 3 {
	case 1:
		copts.LocalCapacity = 1 + trial%4
	case 2:
		copts.LocalCapacity = -1
	}
	if trial%7 == 3 {
		copts.NoOverlap = true
	}
	if trial%11 == 5 {
		copts.EPRBandwidth = 1 + trial%3
	}
	return k, d, copts
}

// TestDifferentialSchedulers is the randomized cross-scheduler oracle:
// every registered scheduler runs on the same seeded random modules, and
// for each schedule the independent verifier checks full Multi-SIMD
// legality plus move-list consistency, while the state-vector simulator
// replays the scheduled order against program order. Any scheduler,
// analysis or cache regression that bends the execution contract fails
// here with a (module, step, region, op) diagnostic.
func TestDifferentialSchedulers(t *testing.T) {
	names := schedule.Names()
	if len(names) < 2 {
		t.Fatalf("registry holds %v, want at least rcp and lpfs", names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sched := schedule.MustLookup(name)
			var trial int
			var seed int64
			gopts := verify.GenOptions{Ops: 50}
			disarm := logReplayOnFailure(t, &trial, &seed, &gopts)
			for trial = 0; trial < diffTrials; trial++ {
				k, d, copts := diffConfig(trial)
				nQubits := 4 + trial%3
				// Per-trial seed: a failure replays from this one seed
				// without re-running the earlier trials.
				seed = 20260806 + int64(trial)
				rng := rand.New(rand.NewSource(seed))
				gopts.Qubits = nQubits
				m := verify.RandomLeaf(rng, gopts)
				g, err := dag.Build(m)
				if err != nil {
					t.Fatal(err)
				}
				s, err := sched.Schedule(m, g, k, d)
				if err != nil {
					t.Fatalf("trial %d k=%d d=%d: %v", trial, k, d, err)
				}
				res, err := comm.Analyze(s, copts)
				if err != nil {
					t.Fatalf("trial %d k=%d d=%d: comm: %v", trial, k, d, err)
				}
				if err := verify.Full(s, g, res, copts); err != nil {
					t.Fatalf("trial %d k=%d d=%d opts=%+v: %v", trial, k, d, copts, err)
				}
				// Semantic equivalence: scheduled order replays to the
				// same state as program order.
				ref, err := sim.NewRandomState(nQubits, rng)
				if err != nil {
					t.Fatal(err)
				}
				progOrder := ref.Clone()
				if err := progOrder.RunModule(m); err != nil {
					t.Fatal(err)
				}
				schedOrder := ref.Clone()
				if err := runScheduledOrder(schedOrder, s); err != nil {
					t.Fatal(err)
				}
				if !sim.EqualUpToPhase(progOrder, schedOrder, 1e-8) {
					t.Fatalf("trial %d k=%d d=%d: schedule changes circuit semantics", trial, k, d)
				}
			}
			disarm()
		})
	}
}

// runScheduledOrder applies the module's gates in schedule order —
// timestep by timestep, region by region — to a state.
func runScheduledOrder(st *sim.State, s *schedule.Schedule) error {
	for t := range s.Steps {
		for _, ops := range s.Steps[t].Regions {
			for _, op := range ops {
				o := &s.M.Ops[op]
				if err := st.Apply(o.Gate, o.Angle, o.Args...); err != nil {
					return fmt.Errorf("step %d op %d: %w", t, op, err)
				}
			}
		}
	}
	return nil
}

// TestDifferentialWideGates runs a shorter sweep with Toffoli, Fredkin
// and Swap in the mix (d unbounded — wide gates need 3 qubits).
func TestDifferentialWideGates(t *testing.T) {
	for _, name := range schedule.Names() {
		sched := schedule.MustLookup(name)
		var trial int
		var seed int64
		gopts := verify.GenOptions{Ops: 40, Qubits: 5, Wide: true}
		disarm := logReplayOnFailure(t, &trial, &seed, &gopts)
		for trial = 0; trial < 40; trial++ {
			k := 1 + trial%4
			seed = 17_000 + int64(trial)
			rng := rand.New(rand.NewSource(seed))
			m := verify.RandomLeaf(rng, gopts)
			g, err := dag.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			s, err := sched.Schedule(m, g, k, 0)
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			res, err := comm.Analyze(s, comm.Options{LocalCapacity: -1})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Full(s, g, res, comm.Options{LocalCapacity: -1}); err != nil {
				t.Fatalf("%s trial %d k=%d: %v", name, trial, k, err)
			}
			ref, err := sim.NewRandomState(5, rng)
			if err != nil {
				t.Fatal(err)
			}
			progOrder := ref.Clone()
			if err := progOrder.RunModule(m); err != nil {
				t.Fatal(err)
			}
			schedOrder := ref.Clone()
			if err := runScheduledOrder(schedOrder, s); err != nil {
				t.Fatal(err)
			}
			if !sim.EqualUpToPhase(progOrder, schedOrder, 1e-8) {
				t.Fatalf("%s trial %d k=%d: schedule changes circuit semantics", name, trial, k)
			}
		}
		disarm()
	}
}

// TestDifferentialSequentialBaseline pins the trivial baseline: the
// 1-op-per-step sequential schedule of any random module verifies fully.
func TestDifferentialSequentialBaseline(t *testing.T) {
	var trial int
	var seed int64
	gopts := verify.GenOptions{Ops: 30, Qubits: 4, Measure: true}
	disarm := logReplayOnFailure(t, &trial, &seed, &gopts)
	for trial = 0; trial < 50; trial++ {
		seed = 3_000 + int64(trial)
		m := verify.RandomLeaf(rand.New(rand.NewSource(seed)), gopts)
		g, err := dag.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		s := schedule.Sequential(m, 1)
		res, err := comm.Analyze(s, comm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Full(s, g, res, comm.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	disarm()
}
