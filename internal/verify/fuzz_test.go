package verify_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/scaffold-go/multisimd/internal/comm"
	"github.com/scaffold-go/multisimd/internal/dag"
	"github.com/scaffold-go/multisimd/internal/qasm"
	"github.com/scaffold-go/multisimd/internal/schedule"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// FuzzVerifySchedule is the randomized legality fuzzer: any seeded
// module, scheduled by any registered scheduler on any machine shape,
// must produce a schedule and move list the verifier accepts. Seeds run
// in the normal suite; `go test -fuzz FuzzVerifySchedule ./internal/verify`
// explores further (the CI smoke job runs it for 30s).
func FuzzVerifySchedule(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(5), uint8(2), uint8(0), uint8(0))
	f.Add(int64(2), uint8(80), uint8(4), uint8(4), uint8(3), uint8(1))
	f.Add(int64(3), uint8(1), uint8(2), uint8(1), uint8(0), uint8(2))
	f.Add(int64(99), uint8(0), uint8(7), uint8(8), uint8(2), uint8(7))
	f.Add(int64(-7), uint8(200), uint8(3), uint8(3), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nOps, nQubits, kRaw, dRaw, optRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		opts := verify.GenOptions{
			Ops:     int(nOps)%120 + 1,
			Qubits:  int(nQubits)%8 + 2,
			Wide:    optRaw&1 != 0,
			Measure: optRaw&2 != 0,
		}
		t.Cleanup(func() {
			if t.Failed() {
				t.Logf("failing seed %d; replay: m := verify.RandomLeaf(rand.New(rand.NewSource(%d)), verify.GenOptions{Ops: %d, Qubits: %d, Wide: %t, Measure: %t})",
					seed, seed, opts.Ops, opts.Qubits, opts.Wide, opts.Measure)
			}
		})
		m := verify.RandomLeaf(rng, opts)
		g, err := dag.Build(m)
		if err != nil {
			t.Fatalf("generator emitted an unbuildable module: %v", err)
		}
		k := int(kRaw)%8 + 1
		d := int(dRaw) % 6
		maxArity := 0
		for i := range m.Ops {
			if a := len(m.Ops[i].Args); a > maxArity {
				maxArity = a
			}
		}
		copts := comm.Options{}
		switch optRaw >> 2 & 3 {
		case 1:
			copts.LocalCapacity = int(optRaw)%5 + 1
		case 2:
			copts.LocalCapacity = -1
		}
		copts.NoOverlap = optRaw&16 != 0
		if optRaw&32 != 0 {
			copts.EPRBandwidth = int(optRaw)%4 + 1
		}
		for _, name := range schedule.Names() {
			s, err := schedule.MustLookup(name).Schedule(m, g, k, d)
			if err != nil {
				if d > 0 && maxArity > d {
					continue // infeasible d: erroring out is the contract
				}
				t.Fatalf("%s k=%d d=%d on %d ops: %v", name, k, d, len(m.Ops), err)
			}
			if err := verify.Schedule(s, g); err != nil {
				t.Fatalf("%s: illegal schedule: %v", name, err)
			}
			res, err := comm.Analyze(s, copts)
			if err != nil {
				t.Fatalf("%s: comm: %v", name, err)
			}
			if err := verify.Moves(s, res, copts); err != nil {
				t.Fatalf("%s opts=%+v: inconsistent move list: %v", name, copts, err)
			}
		}
	})
}

// FuzzGeneratorQASMRoundTrip asserts the generator's QASM-HL emission is
// always accepted by the QASM reader and round-trips shape-identically —
// the invariant behind seeding the parser corpora from generator output.
func FuzzGeneratorQASMRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(4), uint8(0))
	f.Add(int64(42), uint8(60), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nOps, nQubits, optRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		opts := verify.GenOptions{
			Ops:     int(nOps)%100 + 1,
			Qubits:  int(nQubits)%8 + 2,
			Wide:    optRaw&1 != 0,
			Measure: optRaw&2 != 0,
		}
		t.Cleanup(func() {
			if t.Failed() {
				t.Logf("failing seed %d; replay: m := verify.RandomLeaf(rand.New(rand.NewSource(%d)), verify.GenOptions{Ops: %d, Qubits: %d, Wide: %t, Measure: %t})",
					seed, seed, opts.Ops, opts.Qubits, opts.Wide, opts.Measure)
			}
		})
		m := verify.RandomLeaf(rng, opts)
		src, err := verify.QASM(m)
		if err != nil {
			t.Fatal(err)
		}
		decl, insts, err := qasm.Parse(strings.NewReader(src))
		if err != nil {
			t.Fatalf("generator QASM rejected: %v\n%s", err, src)
		}
		if len(decl) != m.TotalSlots() || len(insts) != len(m.Ops) {
			t.Fatalf("round trip changed shape: %d/%d decls, %d/%d insts",
				len(decl), m.TotalSlots(), len(insts), len(m.Ops))
		}
	})
}
