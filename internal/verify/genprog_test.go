package verify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/scaffold-go/multisimd/internal/core"
	"github.com/scaffold-go/multisimd/internal/ir"
	"github.com/scaffold-go/multisimd/internal/verify"
)

// genProfiles is the option matrix the generator tests sweep: every
// feature axis on its own and all of them together.
var genProfiles = map[string]verify.ProgramGenOptions{
	"zero":    {},
	"deep":    {Depth: 3, ModulesPerLevel: 2, Fanout: 2},
	"loops":   {Loops: true},
	"wide":    {Wide: true},
	"measure": {Measure: true},
	"all":     {Depth: 3, Fanout: 4, LeafOps: 20, Loops: true, Wide: true, Measure: true},
}

func TestRandomProgramValidAndDeterministic(t *testing.T) {
	for name, opts := range genProfiles {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				p := verify.RandomProgram(rand.New(rand.NewSource(seed)), opts)
				if err := p.Validate(); err != nil {
					t.Fatalf("seed %d: invalid program: %v\nreplay: verify.RandomProgram(rand.New(rand.NewSource(%d)), %+v)", seed, err, seed, opts)
				}
				order, err := p.Topo()
				if err != nil {
					t.Fatalf("seed %d: topo: %v", seed, err)
				}
				if len(order) != len(p.Order) {
					t.Fatalf("seed %d: %d of %d modules reachable from entry", seed, len(order), len(p.Order))
				}
				again := verify.RandomProgram(rand.New(rand.NewSource(seed)), opts)
				if p.Fingerprint() != again.Fingerprint() {
					t.Fatalf("seed %d: two generations from one seed differ", seed)
				}
			}
		})
	}
}

func TestRandomProgramShape(t *testing.T) {
	opts := verify.ProgramGenOptions{Depth: 3, ModulesPerLevel: 2, Loops: true}
	p := verify.RandomProgram(rand.New(rand.NewSource(7)), opts)
	if got, want := len(p.Order), 1+3*2; got != want {
		t.Fatalf("modules = %d, want %d", got, want)
	}
	leaves, loops := 0, 0
	for _, name := range p.Order {
		m := p.Modules[name]
		if m.IsLeaf() {
			leaves++
		}
		for i := range m.Ops {
			if m.Ops[i].EffCount() > 1 {
				loops++
				if c := m.Ops[i].EffCount(); c <= 32 || c > 128 {
					t.Errorf("%s op %d: count %d outside (32, 128]", name, i, c)
				}
			}
		}
	}
	if leaves != 2 {
		t.Errorf("leaves = %d, want 2 (the deepest level)", leaves)
	}
	if loops == 0 {
		t.Errorf("Loops requested but no counted ops generated")
	}
	if p.Modules["main"].ParamSlots() != 0 {
		t.Errorf("entry has parameters")
	}
}

// TestProgramScaffoldRoundTrip is the tentpole contract: rendering a
// generated program to Scaffold source and running it back through
// parse + sema + lower reproduces the exact program fingerprint, so the
// generator exercises the front end on the same circuits the schedulers
// see.
func TestProgramScaffoldRoundTrip(t *testing.T) {
	for name, opts := range genProfiles {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				p := verify.RandomProgram(rand.New(rand.NewSource(seed)), opts)
				src, err := verify.ProgramScaffold(p)
				if err != nil {
					t.Fatalf("seed %d: render: %v", seed, err)
				}
				q, err := core.Frontend(src, core.PipelineOptions{})
				if err != nil {
					t.Fatalf("seed %d: frontend rejected generated source: %v\nsource:\n%s", seed, err, src)
				}
				if p.Fingerprint() != q.Fingerprint() {
					t.Fatalf("seed %d: round trip drifted: generated %s, reparsed %s\nsource:\n%s",
						seed, p.Fingerprint(), q.Fingerprint(), src)
				}
			}
		})
	}
}

// TestRandomProgramBuilds runs generated source through the full Build
// pipeline (decompose + flatten included) — the path qsched/qschedd use.
func TestRandomProgramBuilds(t *testing.T) {
	for name, opts := range genProfiles {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				p := verify.RandomProgram(rand.New(rand.NewSource(seed)), opts)
				src, err := verify.ProgramScaffold(p)
				if err != nil {
					t.Fatalf("seed %d: render: %v", seed, err)
				}
				if _, err := core.Build(src, core.PipelineOptions{}); err != nil {
					t.Fatalf("seed %d: build: %v\nsource:\n%s", seed, err, src)
				}
			}
		})
	}
}

// TestGenOptionsZeroValuePinned pins the zero-value defaults of both
// generators: the exact circuit each seed yields is part of the
// generator's compatibility contract (recorded corpora and golden
// digests depend on it), so a drift in defaults or in rng consumption
// must fail loudly here, not silently invalidate seeds elsewhere.
func TestGenOptionsZeroValuePinned(t *testing.T) {
	leaf := verify.RandomLeaf(rand.New(rand.NewSource(1)), verify.GenOptions{})
	if leaf.TotalSlots() != 5 {
		t.Errorf("zero-value RandomLeaf register = %d qubits, want 5", leaf.TotalSlots())
	}
	if len(leaf.Ops) != 60 {
		t.Errorf("zero-value RandomLeaf ops = %d, want 60", len(leaf.Ops))
	}
	lp := ir.NewProgram(leaf.Name)
	lp.Add(leaf)
	if got := fmt.Sprint(lp.Fingerprint()); got != pinnedLeafFP {
		t.Errorf("zero-value RandomLeaf(seed 1) fingerprint = %s, want %s\n(defaults or rng consumption drifted — recorded corpora are invalidated)", got, pinnedLeafFP)
	}

	prog := verify.RandomProgram(rand.New(rand.NewSource(1)), verify.ProgramGenOptions{})
	if got, want := len(prog.Order), 1+2*3; got != want {
		t.Errorf("zero-value RandomProgram modules = %d, want %d", got, want)
	}
	if got := fmt.Sprint(prog.Fingerprint()); got != pinnedProgramFP {
		t.Errorf("zero-value RandomProgram(seed 1) fingerprint = %s, want %s\n(defaults or rng consumption drifted — recorded corpora are invalidated)", got, pinnedProgramFP)
	}
}

// The pinned zero-value fingerprints. Regenerate (and call out in
// review!) only on an intentional, corpus-invalidating generator change.
const (
	pinnedLeafFP    = "c049284ca95f77c59839fa1fb7f26d5573d74a93e143cc9d25c9bc1203e60a9a"
	pinnedProgramFP = "30c6da6fd48981aa11d8425359f6d63f575d3c7717336586abec2a23195bbb44"
)
