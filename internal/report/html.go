package report

// This file renders a Report as one fully self-contained HTML document:
// inline CSS, inline SVG, zero external assets (no scripts, stylesheets,
// fonts or images are fetched), so the file can be archived next to a
// BENCH_*.json record and opened years later. Everything geometric is
// precomputed in Go and handed to a stdlib html/template as plain
// numbers and strings; the template only lays structure out.

import (
	"fmt"
	"html/template"
	"io"
	"os"
	"strings"
)

// Gantt geometry (pixels).
const (
	laneH     = 16  // region lane height
	laneGap   = 2   // gap between lanes
	ganttMaxW = 960 // max drawing width; step width shrinks to fit
	railH     = 10  // global-memory rail height
	sparkW    = 640 // sparkline box
	sparkH    = 48
)

// svgRect is one Gantt cell.
type svgRect struct {
	X, Y, W, H float64
	Fill       string
	Title      string
}

// svgLine is one move arrow (or scratchpad tick).
type svgLine struct {
	X1, Y1, X2, Y2 float64
	Stroke         string
	Width          float64
	Dash           string
}

// svgText is an axis or lane label.
type svgText struct {
	X, Y float64
	S    string
}

// ganttView is the precomputed SVG scene of one module timeline.
type ganttView struct {
	W, H   float64
	Rects  []svgRect
	Lines  []svgLine
	Labels []svgText
	Note   string
}

// sparkView is a utilization sparkline scene.
type sparkView struct {
	W, H      float64
	Points    string // polyline points
	MaxLabel  string
	Truncated bool
}

// histView renders a small inline bar strip for a histogram.
type histBar struct {
	X, H  float64
	Title string
}
type histView struct {
	W, H float64
	BarW float64
	Bars []histBar
}

// moduleView pairs a ModuleReport with its precomputed drawings.
type moduleView struct {
	ModuleReport
	UtilPct     string
	OverheadPct string
	SlackMean   string
	Spark       *sparkView
	Gantt       *ganttView
	DFill       *histView
	SlackH      *histView
	Anchor      string
}

// pageView is the full template payload.
type pageView struct {
	*Report
	OverheadPct string
	Speedup     string
	SpeedupSeq  string
	CPBound     string
	CommDesc    string
	Modules     []moduleView
}

// WriteHTML renders the report as a self-contained HTML document.
func (r *Report) WriteHTML(w io.Writer) error {
	pv := pageView{
		Report:      r,
		OverheadPct: pct(r.Totals.CommOverheadFraction),
		Speedup:     fmt.Sprintf("%.2f", r.Totals.SpeedupVsNaive),
		SpeedupSeq:  fmt.Sprintf("%.2f", r.Totals.SpeedupVsSeq),
		CPBound:     fmt.Sprintf("%.2f", r.Totals.CPSpeedup),
		CommDesc:    commDesc(r.Comm),
	}
	for _, m := range r.Modules {
		mv := moduleView{
			ModuleReport: m,
			UtilPct:      pct(m.Utilization),
			OverheadPct:  pct(m.CommOverheadFraction),
			SlackMean:    fmt.Sprintf("%.2f", m.Slack.Mean),
			Anchor:       anchor(m.Name),
			Spark:        buildSpark(&m),
			DFill:        buildHist(m.DFillHist, "region-steps on %d qubits"),
			SlackH:       buildHist(m.Slack.Hist, "ops with slack %d"),
		}
		if m.Gantt != nil {
			mv.Gantt = buildGanttView(&m)
		}
		pv.Modules = append(pv.Modules, mv)
	}
	return pageTmpl.Execute(w, pv)
}

// WriteHTMLFile renders the report to path.
func (r *Report) WriteHTMLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteHTML(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func anchor(name string) string {
	return "mod-" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, name)
}

func commDesc(c CommConfig) string {
	local := "no scratchpads"
	switch {
	case c.LocalCapacity < 0:
		local = "unlimited scratchpads"
	case c.LocalCapacity > 0:
		local = fmt.Sprintf("scratchpad capacity %d", c.LocalCapacity)
	}
	model := "masked movement"
	if c.NoOverlap {
		model = "strict (no-overlap) movement"
	}
	bw := "unlimited EPR bandwidth"
	if c.EPRBandwidth > 0 {
		bw = fmt.Sprintf("EPR bandwidth %d/boundary", c.EPRBandwidth)
	}
	return local + ", " + model + ", " + bw
}

// buildSpark turns the per-step occupancy series into a polyline.
func buildSpark(m *ModuleReport) *sparkView {
	if len(m.StepOccupancy) == 0 || m.Width == 0 {
		return nil
	}
	sv := &sparkView{W: sparkW, H: sparkH, MaxLabel: fmt.Sprint(m.Width), Truncated: m.Truncated}
	n := len(m.StepOccupancy)
	var b strings.Builder
	for t, occ := range m.StepOccupancy {
		x := float64(t) / float64(max(n-1, 1)) * (sparkW - 2)
		y := (sparkH - 4) * (1 - float64(occ)/float64(m.Width))
		fmt.Fprintf(&b, "%.1f,%.1f ", x+1, y+2)
	}
	sv.Points = strings.TrimSpace(b.String())
	return sv
}

// buildHist renders a histogram as a fixed-height bar strip.
func buildHist(hist []int64, titleFmt string) *histView {
	var peak int64
	last := -1
	for i, v := range hist {
		if v > peak {
			peak = v
		}
		if v > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	hv := &histView{H: 36, BarW: 10}
	hv.W = float64(last+1) * 12
	for i := 0; i <= last; i++ {
		h := 0.0
		if peak > 0 {
			h = 32 * float64(hist[i]) / float64(peak)
		}
		label := fmt.Sprintf(titleFmt, i)
		if i == len(hist)-1 {
			label = strings.Replace(label, fmt.Sprint(i), fmt.Sprintf(">=%d", i), 1)
		}
		hv.Bars = append(hv.Bars, histBar{X: float64(i) * 12, H: h, Title: fmt.Sprintf("%s: %d", label, hist[i])})
	}
	return hv
}

// fillFor shades a cell by its d-fill (qubits touched), light to dark.
func fillFor(qubits, peak int) string {
	f := 1.0
	if peak > 0 {
		f = float64(qubits) / float64(peak)
	}
	// Interpolate lightness 85% -> 45% on a fixed blue hue.
	l := 85 - 40*f
	return fmt.Sprintf("hsl(212,55%%,%.0f%%)", l)
}

// buildGanttView lays the timeline out: one lane per region, a global
// rail below, boundary move arrows overlaid (teleports solid, local
// scratchpad moves dashed ticks).
func buildGanttView(m *ModuleReport) *ganttView {
	g := m.Gantt
	stepW := 12.0
	if w := float64(g.Steps) * stepW; w > ganttMaxW {
		stepW = ganttMaxW / float64(g.Steps)
	}
	if stepW < 1.5 {
		stepW = 1.5
	}
	labelW := 52.0
	lanes := m.Width
	railY := float64(lanes) * (laneH + laneGap)
	gv := &ganttView{
		W: labelW + float64(g.Steps)*stepW + 8,
		H: railY + railH + 18,
	}
	laneY := func(r int) float64 {
		if r < 0 {
			return railY + railH/2 // global rail center
		}
		return float64(r)*(laneH+laneGap) + laneH/2
	}
	for r := 0; r < lanes; r++ {
		gv.Labels = append(gv.Labels, svgText{X: 2, Y: laneY(r) + 4, S: fmt.Sprintf("r%d", r)})
	}
	gv.Labels = append(gv.Labels, svgText{X: 2, Y: laneY(-1) + 4, S: "glob"})
	gv.Labels = append(gv.Labels, svgText{X: labelW, Y: railY + railH + 14, S: "t=0"})
	gv.Labels = append(gv.Labels, svgText{
		X: labelW + float64(g.Steps-1)*stepW, Y: railY + railH + 14, S: fmt.Sprintf("t=%d", g.Steps-1)})

	peak := 1
	for _, c := range g.Cells {
		if c.Qubits > peak {
			peak = c.Qubits
		}
	}
	for _, c := range g.Cells {
		gv.Rects = append(gv.Rects, svgRect{
			X: labelW + float64(c.Step)*stepW, Y: float64(c.Region) * (laneH + laneGap),
			W: stepW - 0.5, H: laneH,
			Fill:  fillFor(c.Qubits, peak),
			Title: fmt.Sprintf("t=%d r=%d: %d ops, %d qubits", c.Step, c.Region, c.Ops, c.Qubits),
		})
	}
	// Global-memory rail backdrop.
	gv.Rects = append(gv.Rects, svgRect{
		X: labelW, Y: railY, W: float64(g.Steps) * stepW, H: railH, Fill: "#e8e3da",
	})
	for _, mv := range g.Moves {
		x := labelW + float64(mv.Step)*stepW
		if mv.Global {
			gv.Lines = append(gv.Lines, svgLine{
				X1: x, Y1: laneY(mv.From), X2: x, Y2: laneY(mv.To),
				Stroke: "#b5543a", Width: 1.1,
			})
			// Arrowhead: a short chevron toward the destination.
			dir := 3.0
			if laneY(mv.To) < laneY(mv.From) {
				dir = -3.0
			}
			gv.Lines = append(gv.Lines,
				svgLine{X1: x - 2.5, Y1: laneY(mv.To) - dir, X2: x, Y2: laneY(mv.To), Stroke: "#b5543a", Width: 1.1},
				svgLine{X1: x + 2.5, Y1: laneY(mv.To) - dir, X2: x, Y2: laneY(mv.To), Stroke: "#b5543a", Width: 1.1})
		} else {
			// Local scratchpad move: dashed tick hanging off the lane.
			y := laneY(mv.To)
			gv.Lines = append(gv.Lines, svgLine{
				X1: x, Y1: y - laneH/2, X2: x, Y2: y + laneH/2,
				Stroke: "#4a7d4a", Width: 1.1, Dash: "2,2",
			})
		}
	}
	if g.MovesTruncated {
		gv.Note = fmt.Sprintf("move overlay truncated to the first %d moves", ganttMoveCap)
	}
	return gv
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var pageTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"sub": func(a, b float64) float64 { return a - b },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>schedule report: {{.Benchmark}} ({{.Scheduler}}, k={{.K}})</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; color: #1f1d1a; background: #faf8f5; margin: 2rem auto; max-width: 1040px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; border-top: 1px solid #ddd6cb; padding-top: 1rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { text-align: right; padding: .15rem .6rem; border-bottom: 1px solid #e8e3da; }
th { font-weight: 600; } td.l, th.l { text-align: left; }
.muted { color: #6e6a63; font-size: .85rem; }
svg { display: block; margin: .4rem 0; }
a { color: #23527c; }
.legend span { display: inline-block; margin-right: 1.2rem; }
.key { display: inline-block; width: 1.6em; height: .7em; vertical-align: baseline; }
</style>
</head>
<body>
<h1>Schedule report — {{.Benchmark}}</h1>
<p class="muted">scheduler {{.Scheduler}}, Multi-SIMD({{.K}},{{if .D}}{{.D}}{{else}}&infin;{{end}}); {{.CommDesc}}; schema v{{.Schema}}</p>

<table>
<tr><th class="l">total gates</th><td>{{.Totals.TotalGates}}</td>
    <th class="l">min qubits Q</th><td>{{.Totals.MinQubits}}</td>
    <th class="l">modules / leaves</th><td>{{.Totals.Modules}} / {{.Totals.Leaves}}</td></tr>
<tr><th class="l">critical path</th><td>{{.Totals.CriticalPath}}</td>
    <th class="l">zero-comm steps</th><td>{{.Totals.ZeroCommSteps}}</td>
    <th class="l">comm-aware cycles</th><td>{{.Totals.CommCycles}}</td></tr>
<tr><th class="l">teleports (EPR)</th><td>{{.Totals.GlobalMoves}}</td>
    <th class="l">local moves</th><td>{{.Totals.LocalMoves}}</td>
    <th class="l">comm overhead</th><td>{{.OverheadPct}}</td></tr>
<tr><th class="l">speedup vs naive</th><td>{{.Speedup}}&times;</td>
    <th class="l">speedup vs seq</th><td>{{.SpeedupSeq}}&times;</td>
    <th class="l">cp bound</th><td>{{.CPBound}}&times;</td></tr>
</table>

<h2>Profiled leaf modules</h2>
<table>
<tr><th class="l">module</th><th>steps</th><th>cp</th><th>cycles</th><th>util</th><th>overhead</th><th>teleports</th><th>local</th><th>mean slack</th></tr>
{{range .Modules}}<tr><td class="l"><a href="#{{.Anchor}}">{{.Name}}</a></td><td>{{.Steps}}</td><td>{{.CriticalPath}}</td><td>{{.Cycles}}</td><td>{{.UtilPct}}</td><td>{{.OverheadPct}}</td><td>{{.Moves.Global}}</td><td>{{.Moves.Local}}</td><td>{{.SlackMean}}</td></tr>
{{end}}</table>

{{range .Modules}}
<h2 id="{{.Anchor}}">{{.Name}}</h2>
<p class="muted">{{.Ops}} ops in {{.Steps}} steps on {{.Width}} regions (critical path {{.CriticalPath}});
{{.Cycles}} cycles with movement, {{.StallCycles}} stalled ({{.OverheadPct}});
utilization {{.UtilPct}}; max slack {{.Slack.Max}}, mean {{.SlackMean}}.
moves: {{.Moves.Global}} teleports / {{.Moves.Local}} local
({{.Moves.Arrivals}} arrivals, {{.Moves.EvictToLocal}} to scratchpad, {{.Moves.EvictToGlobal}} flushed, {{.Moves.FromLocal}} departures);
peak EPR burst {{.Moves.PeakEPRBandwidth}}, peak scratchpad occupancy {{.Moves.MaxLocalOccupancy}}.</p>

{{with .Spark}}
<svg width="{{.W}}" height="{{.H}}" viewBox="0 0 {{.W}} {{.H}}" role="img" aria-label="busy regions per timestep">
  <rect x="0" y="0" width="{{.W}}" height="{{.H}}" fill="#f1ede6"/>
  <polyline points="{{.Points}}" fill="none" stroke="#23527c" stroke-width="1.2"/>
  <text x="4" y="12" font-size="10" fill="#6e6a63">busy regions per step (max {{.MaxLabel}}){{if .Truncated}} — series truncated{{end}}</text>
</svg>
{{end}}

{{with .Gantt}}
<svg width="{{.W}}" height="{{.H}}" viewBox="0 0 {{.W}} {{.H}}" role="img" aria-label="region timeline with move arrows">
  {{range .Rects}}<rect x="{{.X}}" y="{{.Y}}" width="{{.W}}" height="{{.H}}" fill="{{.Fill}}">{{if .Title}}<title>{{.Title}}</title>{{end}}</rect>
  {{end}}{{range .Lines}}<line x1="{{.X1}}" y1="{{.Y1}}" x2="{{.X2}}" y2="{{.Y2}}" stroke="{{.Stroke}}" stroke-width="{{.Width}}"{{if .Dash}} stroke-dasharray="{{.Dash}}"{{end}} opacity="0.75"/>
  {{end}}{{range .Labels}}<text x="{{.X}}" y="{{.Y}}" font-size="10" fill="#6e6a63">{{.S}}</text>
  {{end}}
</svg>
<p class="legend muted"><span><span class="key" style="background:hsl(212,55%,60%)"></span> region busy (darker = fuller d lanes)</span>
<span><span class="key" style="background:#b5543a"></span> teleport (arrow into destination lane; bottom rail = global memory)</span>
<span><span class="key" style="background:#4a7d4a"></span> scratchpad move (dashed tick)</span>{{if .Note}} <span>{{.Note}}</span>{{end}}</p>
{{else}}
<p class="muted">timeline omitted ({{.Steps}} steps exceeds the {{240}}-step Gantt cap); the sparkline above carries the occupancy series.</p>
{{end}}

{{with .DFill}}<p class="muted">d-fill (qubits per busy region-step):</p>
<svg width="{{.W}}" height="{{.H}}" viewBox="0 0 {{.W}} {{.H}}" role="img" aria-label="d-fill histogram">
  {{$h := .H}}{{range .Bars}}<rect x="{{.X}}" y="{{sub $h .H}}" width="10" height="{{.H}}" fill="#23527c"><title>{{.Title}}</title></rect>
  {{end}}
</svg>{{end}}

{{with .SlackH}}<p class="muted">slack (steps past ASAP level per op):</p>
<svg width="{{.W}}" height="{{.H}}" viewBox="0 0 {{.W}} {{.H}}" role="img" aria-label="slack histogram">
  {{$h := .H}}{{range .Bars}}<rect x="{{.X}}" y="{{sub $h .H}}" width="10" height="{{.H}}" fill="#7c5223"><title>{{.Title}}</title></rect>
  {{end}}
</svg>{{end}}
{{end}}

<p class="muted">generated by the multisimd toolflow (qsched -report); self-contained, no external assets.</p>
</body>
</html>
`))
