package report

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Run identifies one side of a comparison.
type Run struct {
	Benchmark string     `json:"benchmark"`
	Scheduler string     `json:"scheduler"`
	K         int        `json:"k"`
	D         int        `json:"d"`
	Comm      CommConfig `json:"comm"`
}

func runOf(r *Report) Run {
	return Run{Benchmark: r.Benchmark, Scheduler: r.Scheduler, K: r.K, D: r.D, Comm: r.Comm}
}

// TotalsDelta is the whole-benchmark movement between two runs (B - A).
type TotalsDelta struct {
	CommCycles    int64 `json:"comm_cycles"`
	ZeroCommSteps int64 `json:"zero_comm_steps"`
	CriticalPath  int64 `json:"critical_path"`
	GlobalMoves   int64 `json:"global_moves"`
	LocalMoves    int64 `json:"local_moves"`
	TotalGates    int64 `json:"total_gates"`
}

// RegionDelta names a region whose utilization moved between the runs.
type RegionDelta struct {
	Region int     `json:"region"`
	Delta  float64 `json:"delta"`
}

// ModuleDelta attributes one module's share of the run-to-run movement.
type ModuleDelta struct {
	Name string `json:"name"`
	// Presence is "both", "a-only" or "b-only"; deltas are meaningful
	// only for "both".
	Presence string `json:"presence"`

	Steps            int     `json:"steps"`  // B - A
	Cycles           int64   `json:"cycles"` // B - A
	StallCycles      int64   `json:"stall_cycles"`
	GlobalMoves      int64   `json:"global_moves"`
	LocalMoves       int64   `json:"local_moves"`
	Utilization      float64 `json:"utilization"`
	CriticalPathSame bool    `json:"critical_path_same"`

	// FirstDivergentStep is the earliest timestep whose busy-region
	// count differs between the runs (-1: occupancy series agree over
	// their shared, untruncated prefix).
	FirstDivergentStep int `json:"first_divergent_step"`
	// Regions lists per-region utilization movement beyond 0.1%,
	// largest first.
	Regions []RegionDelta `json:"regions,omitempty"`
}

// DiffReport is the structured comparison of two reports, attributing
// whole-benchmark deltas to specific modules, regions and steps.
type DiffReport struct {
	Schema int         `json:"schema"`
	A      Run         `json:"a"`
	B      Run         `json:"b"`
	Totals TotalsDelta `json:"totals"`
	// Regression reports whether B is worse than A on a schedule-quality
	// axis: longer comm-expanded runtime or longer zero-comm schedule.
	Regression bool `json:"regression"`
	// ConfigDrift is set when the two runs used different scheduler /
	// machine / comm configurations — deltas then reflect configuration,
	// not code.
	ConfigDrift bool `json:"config_drift,omitempty"`
	// Modules is sorted by absolute cycle delta, largest first; modules
	// with no movement at all are omitted.
	Modules []ModuleDelta `json:"modules"`
}

// Diff compares two reports (A the baseline, B the fresh run) and
// attributes their metric deltas. Both sides should profile the same
// benchmark; mismatched configurations are flagged, not rejected.
func Diff(a, b *Report) *DiffReport {
	d := &DiffReport{
		Schema: SchemaVersion,
		A:      runOf(a),
		B:      runOf(b),
		Totals: TotalsDelta{
			CommCycles:    b.Totals.CommCycles - a.Totals.CommCycles,
			ZeroCommSteps: b.Totals.ZeroCommSteps - a.Totals.ZeroCommSteps,
			CriticalPath:  b.Totals.CriticalPath - a.Totals.CriticalPath,
			GlobalMoves:   b.Totals.GlobalMoves - a.Totals.GlobalMoves,
			LocalMoves:    b.Totals.LocalMoves - a.Totals.LocalMoves,
			TotalGates:    b.Totals.TotalGates - a.Totals.TotalGates,
		},
	}
	d.Regression = d.Totals.CommCycles > 0 || d.Totals.ZeroCommSteps > 0
	d.ConfigDrift = d.A != d.B

	am := map[string]*ModuleReport{}
	for i := range a.Modules {
		am[a.Modules[i].Name] = &a.Modules[i]
	}
	seen := map[string]bool{}
	for i := range b.Modules {
		mb := &b.Modules[i]
		seen[mb.Name] = true
		ma, ok := am[mb.Name]
		if !ok {
			d.Modules = append(d.Modules, ModuleDelta{
				Name: mb.Name, Presence: "b-only",
				Steps: mb.Steps, Cycles: mb.Cycles, FirstDivergentStep: -1,
			})
			continue
		}
		md := moduleDelta(ma, mb)
		if md != nil {
			d.Modules = append(d.Modules, *md)
		}
	}
	for i := range a.Modules {
		if !seen[a.Modules[i].Name] {
			d.Modules = append(d.Modules, ModuleDelta{
				Name: a.Modules[i].Name, Presence: "a-only",
				Steps: -a.Modules[i].Steps, Cycles: -a.Modules[i].Cycles,
				FirstDivergentStep: -1,
			})
		}
	}
	sort.Slice(d.Modules, func(i, j int) bool {
		ci := abs64(d.Modules[i].Cycles)
		cj := abs64(d.Modules[j].Cycles)
		if ci != cj {
			return ci > cj
		}
		return d.Modules[i].Name < d.Modules[j].Name
	})
	return d
}

// moduleDelta compares one module across both runs; nil when nothing
// moved.
func moduleDelta(a, b *ModuleReport) *ModuleDelta {
	md := &ModuleDelta{
		Name: a.Name, Presence: "both",
		Steps:              b.Steps - a.Steps,
		Cycles:             b.Cycles - a.Cycles,
		StallCycles:        b.StallCycles - a.StallCycles,
		GlobalMoves:        b.Moves.Global - a.Moves.Global,
		LocalMoves:         b.Moves.Local - a.Moves.Local,
		Utilization:        b.Utilization - a.Utilization,
		CriticalPathSame:   b.CriticalPath == a.CriticalPath,
		FirstDivergentStep: -1,
	}
	n := len(a.StepOccupancy)
	if len(b.StepOccupancy) < n {
		n = len(b.StepOccupancy)
	}
	for t := 0; t < n; t++ {
		if a.StepOccupancy[t] != b.StepOccupancy[t] {
			md.FirstDivergentStep = t
			break
		}
	}
	if md.FirstDivergentStep < 0 && md.Steps != 0 && !a.Truncated && !b.Truncated {
		// Same prefix, different length: divergence is the first step
		// one run has and the other does not.
		md.FirstDivergentStep = n
	}
	nr := len(a.RegionUtil)
	if len(b.RegionUtil) < nr {
		nr = len(b.RegionUtil)
	}
	for r := 0; r < nr; r++ {
		if dl := b.RegionUtil[r] - a.RegionUtil[r]; math.Abs(dl) > 0.001 {
			md.Regions = append(md.Regions, RegionDelta{Region: r, Delta: dl})
		}
	}
	sort.Slice(md.Regions, func(i, j int) bool {
		return math.Abs(md.Regions[i].Delta) > math.Abs(md.Regions[j].Delta)
	})
	if md.Steps == 0 && md.Cycles == 0 && md.StallCycles == 0 &&
		md.GlobalMoves == 0 && md.LocalMoves == 0 &&
		md.FirstDivergentStep < 0 && len(md.Regions) == 0 {
		return nil
	}
	return md
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Changed reports whether the comparison found any movement at all.
func (d *DiffReport) Changed() bool {
	return d.Totals != (TotalsDelta{}) || len(d.Modules) > 0
}

// WriteText renders the attribution as a human-readable summary, the
// qbench -report-against output:
//
//	SHA-1: comm cycles +120 (+3.4%), zero-comm steps +20
//	  sha1_round: +100 cycles (steps +20, stall +80), diverges at step 42
//	    region 1 utilization -12.5%
func (d *DiffReport) WriteText(w io.Writer) error {
	name := d.B.Benchmark
	if name == "" {
		name = "(unnamed)"
	}
	if !d.Changed() {
		_, err := fmt.Fprintf(w, "%s: no schedule-level changes\n", name)
		return err
	}
	line := fmt.Sprintf("%s: comm cycles %s", name, signed(d.Totals.CommCycles))
	if d.Totals.ZeroCommSteps != 0 {
		line += fmt.Sprintf(", zero-comm steps %s", signed(d.Totals.ZeroCommSteps))
	}
	if d.Totals.GlobalMoves != 0 {
		line += fmt.Sprintf(", teleports %s", signed(d.Totals.GlobalMoves))
	}
	if d.Totals.LocalMoves != 0 {
		line += fmt.Sprintf(", local moves %s", signed(d.Totals.LocalMoves))
	}
	if d.Totals.CriticalPath != 0 {
		line += fmt.Sprintf(", critical path %s", signed(d.Totals.CriticalPath))
	}
	if d.ConfigDrift {
		line += "  [configuration drift: deltas reflect config, not code]"
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, m := range d.Modules {
		switch m.Presence {
		case "a-only":
			if _, err := fmt.Fprintf(w, "  %s: only in baseline (%s cycles)\n", m.Name, signed(m.Cycles)); err != nil {
				return err
			}
			continue
		case "b-only":
			if _, err := fmt.Fprintf(w, "  %s: new in this run (%s cycles)\n", m.Name, signed(m.Cycles)); err != nil {
				return err
			}
			continue
		}
		line := fmt.Sprintf("  %s: %s cycles (steps %s, stall %s, teleports %s)",
			m.Name, signed(m.Cycles), signed(int64(m.Steps)), signed(m.StallCycles), signed(m.GlobalMoves))
		if m.FirstDivergentStep >= 0 {
			line += fmt.Sprintf(", diverges at step %d", m.FirstDivergentStep)
		}
		if !m.CriticalPathSame {
			line += ", critical path changed (program content differs)"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for i, r := range m.Regions {
			if i >= 4 {
				break
			}
			if _, err := fmt.Fprintf(w, "    region %d utilization %+0.1f%%\n", r.Region, 100*r.Delta); err != nil {
				return err
			}
		}
	}
	return nil
}

// signed renders an int64 with an explicit sign.
func signed(v int64) string { return fmt.Sprintf("%+d", v) }
